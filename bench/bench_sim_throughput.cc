/**
 * @file
 * Simulator-core throughput bench: instructions stepped per second,
 * reported per host-SIMD step-kernel path and per batch width instead
 * of the old google-benchmark aggregate wall time -- the interesting
 * axis is how throughput scales as one trace pass advances more
 * configurations, and which step kernel (fused serial, SoA scalar,
 * SSE2, AVX2, AVX-512) is doing the stepping.
 *
 * Three sections, all min-of-reps and bit-identity-checked against the
 * fused serial oracle:
 *
 *   simulate  : single-configuration runTrace() across flavours and
 *               machine widths (the classic per-config number);
 *   tracegen  : trace generation itself, cache bypassed on purpose;
 *   batched   : the headline grid -- every runnable step-kernel path
 *               x batch widths {1, 2, 4, 8, 12}, each timed on the
 *               same pre-decoded rgb stream.  Width 1 always takes
 *               the fused serial step (the dispatch rule), so its row
 *               is identical across paths and printed once.
 *
 * Everything lands in BENCH_sim_throughput.json as
 * sim.<path>.w<width>.instsPerSec rows for CI trend tracking.
 */

#include <algorithm>
#include <chrono>

#include "bench_util.hh"
#include "sim/simd_dispatch.hh"

using namespace vmmx;
using namespace vmmx::bench;

namespace
{

using clock_t_ = std::chrono::steady_clock;

double
seconds(clock_t_::time_point a, clock_t_::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

constexpr int reps = 3;

} // namespace

int
main()
{
    setQuiet(true);
    telemetry::setEnabled(false);

    PerfRecord rec("sim_throughput");
    bool identical = true;

    // ---- simulate: single-config runTrace across flavours/widths -----
    {
        struct Case
        {
            SimdKind kind;
            unsigned way;
        };
        const Case cases[] = {{SimdKind::MMX64, 2},
                              {SimdKind::MMX128, 4},
                              {SimdKind::VMMX64, 4},
                              {SimdKind::VMMX128, 8}};
        TextTable table({"simulate (1 config)", "records", "wall s",
                         "insts/s"});
        for (const Case &c : cases) {
            const auto &trace = kernelTrace("idct", c.kind);
            auto machine = makeMachine(c.kind, c.way);
            double t = 1e9;
            for (int r = 0; r < reps; ++r) {
                auto t0 = clock_t_::now();
                RunResult res = runTrace(machine, trace);
                t = std::min(t, seconds(t0, clock_t_::now()));
                if (res.core.instructions != trace.size())
                    identical = false;
            }
            double ips = double(trace.size()) / t;
            std::string label = std::string(name(c.kind)) + " " +
                                std::to_string(c.way) + "-way";
            table.addRow({label, std::to_string(trace.size()),
                          TextTable::num(t, 4), TextTable::num(ips, 0)});
            rec.metric("simulate." + std::string(name(c.kind)) + ".w" +
                           std::to_string(c.way) + ".instsPerSec",
                       ips);
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    // ---- tracegen: generation cost, cache bypassed on purpose --------
    {
        TextTable table({"trace generation", "records", "wall s",
                         "insts/s"});
        for (SimdKind kind : {SimdKind::MMX64, SimdKind::VMMX128}) {
            double t = 1e9;
            size_t records = 0;
            for (int r = 0; r < reps; ++r) {
                auto t0 = clock_t_::now();
                auto k = makeKernel("motion1");
                MemImage mem(16u << 20);
                Rng rng(0xbeef);
                k->prepare(mem, rng);
                Program p(mem, kind);
                k->emit(p);
                auto trace = p.takeTrace();
                t = std::min(t, seconds(t0, clock_t_::now()));
                records = trace.size();
            }
            double ips = double(records) / t;
            table.addRow({name(kind), std::to_string(records),
                          TextTable::num(t, 4), TextTable::num(ips, 0)});
            rec.metric("tracegen." + std::string(name(kind)) +
                           ".instsPerSec",
                       ips);
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    // ---- batched: step-kernel path x batch width ---------------------
    // Lane-instructions per second: one pass over W configs steps
    // trace.size() * W lane-instructions.  A fixed knob spread keeps
    // every lane's timing state distinct (no accidental uniformity).
    // The rgb trace is the longest kernel trace, so each timed pass is
    // milliseconds, not microseconds; passes > 1 steadies the short
    // narrow-batch rows further.
    {
        TraceRepository repo(nullptr, 0, 0);
        auto trace = repo.kernel("rgb", SimdKind::VMMX128);
        auto stream = repo.decoded(trace.shared());
        const u64 records = stream.records();
        constexpr int passes = 3;

        const std::vector<size_t> widths = {1, 2, 4, 8, 12};
        const s64 robs[] = {16, 24, 32, 48, 64, 96, 128, 160, 192, 40,
                            80, 112};
        auto machinesFor = [&](size_t w) {
            std::vector<MachineConfig> ms;
            for (size_t i = 0; i < w; ++i) {
                Config knobs;
                knobs.set("core.rob", robs[i]);
                ms.push_back(makeMachine(SimdKind::VMMX128, 4, knobs));
            }
            return ms;
        };

        // Oracle per width: independent fused serial runs.
        std::map<size_t, std::vector<RunResult>> oracle;
        for (size_t w : widths)
            for (const MachineConfig &m : machinesFor(w))
                oracle[w].push_back(runTrace(m, stream.stream()));

        TextTable table({"step kernel", "batch", "wall s",
                         "lane-insts/s", "vs serial"});
        // Width 1 dispatches to the fused serial step regardless of the
        // pinned path; time it once as every path's shared first row.
        double tSerial1 = 1e9;
        {
            auto ms = machinesFor(1);
            for (int r = 0; r < reps; ++r) {
                auto t0 = clock_t_::now();
                std::vector<RunResult> runs;
                for (int it = 0; it < passes; ++it)
                    runs = runTraceBatch(ms, stream.stream());
                tSerial1 = std::min(tSerial1,
                                    seconds(t0, clock_t_::now()));
                if (!(runs[0] == oracle[1][0]))
                    identical = false;
            }
            tSerial1 /= passes;
            table.addRow({"serial fused", "1", TextTable::num(tSerial1, 4),
                          TextTable::num(double(records) / tSerial1, 0),
                          TextTable::num(1.0)});
            rec.metric("sim.serial.w1.instsPerSec",
                       double(records) / tSerial1);
        }

        u32 usable = simd::compiledMask() & simd::supportedMask();
        for (unsigned ord = 0; ord < simd::numPaths; ++ord) {
            if (!(usable & (u32(1) << ord)))
                continue;
            simd::Path path = simd::Path(ord);
            std::string err = simd::setActivePath(path);
            if (!err.empty())
                panic("pinning %s: %s", simd::pathName(path), err.c_str());
            for (size_t w : widths) {
                if (w < 2)
                    continue; // the shared serial row above
                auto ms = machinesFor(w);
                double t = 1e9;
                std::vector<RunResult> runs;
                for (int r = 0; r < reps; ++r) {
                    auto t0 = clock_t_::now();
                    for (int it = 0; it < passes; ++it)
                        runs = runTraceBatch(ms, stream.stream());
                    t = std::min(t, seconds(t0, clock_t_::now()));
                }
                t /= passes;
                for (size_t i = 0; i < runs.size(); ++i)
                    if (!(runs[i] == oracle[w][i])) {
                        identical = false;
                        std::cout << "MISMATCH " << simd::pathName(path)
                                  << " w" << w << " config " << i << "\n";
                    }
                double laneIps = double(records) * double(w) / t;
                // vs serial: the same W configs as W fused serial
                // passes would cost W * tSerial1.
                double vsSerial = double(w) * tSerial1 / t;
                table.addRow({simd::pathName(path), std::to_string(w),
                              TextTable::num(t, 4),
                              TextTable::num(laneIps, 0),
                              TextTable::num(vsSerial)});
                rec.metric("sim." + std::string(simd::pathName(path)) +
                               ".w" + std::to_string(w) + ".instsPerSec",
                           laneIps);
            }
        }
        simd::setActivePathAuto();
        table.print(std::cout);
        rec.note("batched.trace",
                 "rgb vmmx128, " + std::to_string(records) + " records");
    }

    std::cout << "\nresults bit-identical across paths and widths: "
              << (identical ? "yes" : "NO") << '\n';
    if (rec.write())
        std::cout << "perf record written to " << rec.path() << '\n';
    return identical ? 0 : 1;
}
