/**
 * @file
 * google-benchmark timing of the simulator itself: instructions
 * simulated per second across flavours and widths, trace-generation
 * cost, and the sweep engine's serial vs threaded throughput on a
 * fig5-style grid.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace vmmx;
using namespace vmmx::bench;

namespace
{

void
BM_SimulateKernel(benchmark::State &state)
{
    setQuiet(true);
    SimdKind kind = SimdKind(state.range(0));
    unsigned way = unsigned(state.range(1));
    const auto &trace = kernelTrace("idct", kind);
    auto machine = makeMachine(kind, way);

    u64 insts = 0;
    for (auto _ : state) {
        RunResult r = runTrace(machine, trace);
        benchmark::DoNotOptimize(r.core.cycles);
        insts += trace.size();
    }
    state.counters["insts/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}

void
BM_TraceGeneration(benchmark::State &state)
{
    setQuiet(true);
    SimdKind kind = SimdKind(state.range(0));
    u64 insts = 0;
    for (auto _ : state) {
        // Bypass the cache on purpose: this measures generation itself.
        auto k = makeKernel("motion1");
        MemImage mem(16u << 20);
        Rng rng(0xbeef);
        k->prepare(mem, rng);
        Program p(mem, kind);
        k->emit(p);
        auto trace = p.takeTrace();
        benchmark::DoNotOptimize(trace.data());
        insts += trace.size();
    }
    state.counters["insts/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}

/** A 16-point fig5-style grid: four kernels x four flavours, 2-way. */
Sweep
makeGrid(unsigned threads)
{
    SweepOptions opts;
    opts.threads = threads;
    Sweep sweep(opts);
    const std::vector<SimdKind> kinds(allSimdKinds.begin(),
                                      allSimdKinds.end());
    sweep.addKernelGrid({"idct", "motion1", "rgb", "h2v2"}, kinds, {2});
    return sweep;
}

void
BM_SweepSerial(benchmark::State &state)
{
    setQuiet(true);
    Sweep sweep = makeGrid(1);
    u64 points = 0;
    for (auto _ : state) {
        auto results = sweep.runSerial();
        benchmark::DoNotOptimize(results.data());
        points += results.size();
    }
    state.counters["points/s"] = benchmark::Counter(
        double(points), benchmark::Counter::kIsRate);
}

void
BM_SweepThreaded(benchmark::State &state)
{
    setQuiet(true);
    Sweep sweep = makeGrid(unsigned(state.range(0)));
    u64 points = 0;
    for (auto _ : state) {
        auto results = sweep.run();
        benchmark::DoNotOptimize(results.data());
        points += results.size();
    }
    state.counters["points/s"] = benchmark::Counter(
        double(points), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_SimulateKernel)
    ->Args({int(SimdKind::MMX64), 2})
    ->Args({int(SimdKind::MMX128), 4})
    ->Args({int(SimdKind::VMMX64), 4})
    ->Args({int(SimdKind::VMMX128), 8});

BENCHMARK(BM_TraceGeneration)
    ->Arg(int(SimdKind::MMX64))
    ->Arg(int(SimdKind::VMMX128));

BENCHMARK(BM_SweepSerial);
BENCHMARK(BM_SweepThreaded)->Arg(2)->Arg(4);

BENCHMARK_MAIN();
