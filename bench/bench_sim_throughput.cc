/**
 * @file
 * google-benchmark timing of the simulator itself (instructions
 * simulated per second across flavours and widths).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"

using namespace vmmx;
using namespace vmmx::bench;

namespace
{

void
BM_SimulateKernel(benchmark::State &state)
{
    setQuiet(true);
    SimdKind kind = SimdKind(state.range(0));
    unsigned way = unsigned(state.range(1));
    auto trace = kernelTrace("idct", kind);
    auto machine = makeMachine(kind, way);

    u64 insts = 0;
    for (auto _ : state) {
        RunResult r = runTrace(machine, trace);
        benchmark::DoNotOptimize(r.core.cycles);
        insts += trace.size();
    }
    state.counters["insts/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}

void
BM_TraceGeneration(benchmark::State &state)
{
    setQuiet(true);
    SimdKind kind = SimdKind(state.range(0));
    u64 insts = 0;
    for (auto _ : state) {
        auto trace = kernelTrace("motion1", kind);
        benchmark::DoNotOptimize(trace.data());
        insts += trace.size();
    }
    state.counters["insts/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_SimulateKernel)
    ->Args({int(SimdKind::MMX64), 2})
    ->Args({int(SimdKind::MMX128), 4})
    ->Args({int(SimdKind::VMMX64), 4})
    ->Args({int(SimdKind::VMMX128), 8});

BENCHMARK(BM_TraceGeneration)
    ->Arg(int(SimdKind::MMX64))
    ->Arg(int(SimdKind::VMMX128));

BENCHMARK_MAIN();
