/**
 * @file
 * Figure 5: full-application speed-up for 2/4/8-way machines, all four
 * SIMD flavours, normalised to the 2-way MMX64 run of the same app.
 *
 * The whole (app x flavour x width) grid is one declarative Study --
 * the in-code twin of specs/fig5.study, which CI diffs this binary's
 * tables against (both render through Study::writeReport, so the spec
 * file and the bench cannot drift apart silently).  Each app trace is
 * generated once (trace repository) and the 12 machine runs per app
 * proceed concurrently through the thread-pool backend.
 */

#include <chrono>
#include <iostream>

#include "apps/app.hh"
#include "bench_util.hh"
#include "common/logging.hh"
#include "harness/study.hh"

using namespace vmmx;

int
main()
{
    setQuiet(true);
    std::cout << "Figure 5: full-application speed-up over the 2-way "
                 "MMX64 baseline\n\n";

    StudySpec spec;
    spec.apps = appNames();
    spec.report.layout = ReportSpec::Layout::Pivot;
    spec.report.pivot = ReportSpec::Metric::Speedup;
    spec.report.baselineKind = SimdKind::MMX64;
    spec.report.baselineWay = 2;
    spec.report.geomean = true;

    Study study(std::move(spec));
    auto start = std::chrono::steady_clock::now();
    auto results = study.run();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    study.writeReport(std::cout, results);

    std::cout << "\nPaper headline checks: mpeg2enc gains the most; a "
                 "2-way VMMX128 is\ncomparable to an 8-way MMX128 on "
                 "mpeg2enc; the GSM pair barely moves.\n";

    // Perf record only -- CI byte-diffs this binary's stdout against
    // vmmx_study on specs/fig5.study, so the write must stay silent.
    bench::PerfRecord rec("fig5_app_speedup");
    rec.metric("points", double(results.size()));
    rec.metric("wallSec", seconds);
    rec.metric("pointsPerSec",
               seconds > 0 ? double(results.size()) / seconds : 0.0);
    rec.write();
    return 0;
}
