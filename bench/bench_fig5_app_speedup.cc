/**
 * @file
 * Figure 5: full-application speed-up for 2/4/8-way machines, all four
 * SIMD flavours, normalised to the 2-way MMX64 run of the same app.
 *
 * The whole (app x flavour x width) grid is submitted as one parallel
 * sweep: each app trace is generated once (trace repository) and the 12
 * machine runs per app proceed concurrently.
 */

#include <cmath>

#include "bench_util.hh"

using namespace vmmx;
using namespace vmmx::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Figure 5: full-application speed-up over the 2-way "
                 "MMX64 baseline\n\n";

    const auto apps = appNames();
    const std::vector<SimdKind> kinds(allSimdKinds.begin(),
                                      allSimdKinds.end());
    const std::vector<unsigned> ways = {2, 4, 8};

    // Submission order: app-major, then kind, then way.
    Sweep sweep;
    sweep.addAppGrid(apps, kinds, ways);
    auto results = sweep.run();

    auto cyclesAt = [&](size_t app, size_t kind, size_t way) {
        return double(
            results[(app * kinds.size() + kind) * ways.size() + way]
                .cycles());
    };

    std::array<std::array<double, 4>, 3> geoSum{};
    for (size_t ai = 0; ai < apps.size(); ++ai) {
        TextTable table({"config", "mmx64", "mmx128", "vmmx64",
                         "vmmx128"});
        double base = cyclesAt(ai, size_t(SimdKind::MMX64), 0);
        for (size_t wi = 0; wi < ways.size(); ++wi) {
            std::vector<std::string> row = {std::to_string(ways[wi]) +
                                            "-way"};
            for (size_t f = 0; f < kinds.size(); ++f) {
                double sp = base / cyclesAt(ai, f, wi);
                geoSum[wi][f] += std::log(sp);
                row.push_back(TextTable::num(sp));
            }
            table.addRow(std::move(row));
        }
        std::cout << apps[ai] << ":\n";
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "average (geometric mean over the six applications):\n";
    TextTable avg({"config", "mmx64", "mmx128", "vmmx64", "vmmx128"});
    for (size_t wi = 0; wi < ways.size(); ++wi) {
        std::vector<std::string> row = {std::to_string(ways[wi]) +
                                        "-way"};
        for (auto kind : allSimdKinds)
            row.push_back(TextTable::num(
                std::exp(geoSum[wi][size_t(kind)] / double(apps.size()))));
        avg.addRow(std::move(row));
    }
    avg.print(std::cout);

    std::cout << "\nPaper headline checks: mpeg2enc gains the most; a "
                 "2-way VMMX128 is\ncomparable to an 8-way MMX128 on "
                 "mpeg2enc; the GSM pair barely moves.\n";
    return 0;
}
