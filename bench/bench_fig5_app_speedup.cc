/**
 * @file
 * Figure 5: full-application speed-up for 2/4/8-way machines, all four
 * SIMD flavours, normalised to the 2-way MMX64 run of the same app.
 */

#include <cmath>

#include "bench_util.hh"

using namespace vmmx;
using namespace vmmx::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Figure 5: full-application speed-up over the 2-way "
                 "MMX64 baseline\n\n";

    TraceCache cache;
    std::array<std::array<double, 4>, 3> geoSum{};
    const unsigned ways[3] = {2, 4, 8};

    for (const auto &an : appNames()) {
        TextTable table({"config", "mmx64", "mmx128", "vmmx64",
                         "vmmx128"});
        double base = 0;
        for (unsigned wi = 0; wi < 3; ++wi) {
            std::vector<std::string> row = {std::to_string(ways[wi]) +
                                            "-way"};
            for (auto kind : allSimdKinds) {
                auto t = time(cache.app(an, kind), kind, ways[wi]);
                double c = double(t.result.cycles());
                if (wi == 0 && kind == SimdKind::MMX64)
                    base = c;
                double sp = base / c;
                geoSum[wi][size_t(kind)] += std::log(sp);
                row.push_back(TextTable::num(sp));
            }
            table.addRow(std::move(row));
        }
        std::cout << an << ":\n";
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "average (geometric mean over the six applications):\n";
    TextTable avg({"config", "mmx64", "mmx128", "vmmx64", "vmmx128"});
    for (unsigned wi = 0; wi < 3; ++wi) {
        std::vector<std::string> row = {std::to_string(ways[wi]) +
                                        "-way"};
        for (auto kind : allSimdKinds)
            row.push_back(TextTable::num(
                std::exp(geoSum[wi][size_t(kind)] / 6.0)));
        avg.addRow(std::move(row));
    }
    avg.print(std::cout);

    std::cout << "\nPaper headline checks: mpeg2enc gains the most; a "
                 "2-way VMMX128 is\ncomparable to an 8-way MMX128 on "
                 "mpeg2enc; the GSM pair barely moves.\n";
    return 0;
}
