/**
 * @file
 * Table I: register-file capacity, complexity and area of the four SIMD
 * extensions on the 4-way and 8-way machines (Rixner-style model).
 */

#include <iostream>

#include "common/table.hh"
#include "cost/rf_model.hh"

using namespace vmmx;

namespace
{

// Paper Table I reference values: storage KB and area (x mmx64 4-way).
struct PaperRow
{
    double storage;
    double area;
};

const PaperRow paperRows[2][4] = {
    // 4-way: mmx64, mmx128, vmmx64, vmmx128
    {{0.5, 1.0}, {1.0, 2.0}, {4.6, 1.41}, {9.21, 2.63}},
    // 8-way (paper prints 9.12 for 4-way vmmx128; 36x16x128 bits is
    // 9.216 decimal KB, so we list the recomputed value)
    {{0.77, 5.14}, {1.54, 10.29}, {8.19, 2.10}, {16.3, 4.20}},
};

} // namespace

int
main()
{
    std::cout << "Table I: scaling register files for SIMD extensions\n"
              << "(area normalised to the 4-way MMX64 design)\n\n";

    TextTable table({"way", "ext", "log regs", "phys regs", "lanes",
                     "banks/lane", "R/bank", "W/bank", "storage KB",
                     "area", "paper KB", "paper area"});

    const unsigned ways[2] = {4, 8};
    for (unsigned wi = 0; wi < 2; ++wi) {
        for (auto kind : allSimdKinds) {
            RfDesign d = RfDesign::forMachine(kind, ways[wi]);
            const SimdGeometry &g = geometry(kind);
            const PaperRow &ref = paperRows[wi][size_t(kind)];
            table.addRow({std::to_string(ways[wi]), name(kind),
                          std::to_string(g.logicalRegs),
                          std::to_string(d.physRegs),
                          std::to_string(d.lanes),
                          std::to_string(d.banksPerLane),
                          std::to_string(d.readPortsPerBank),
                          std::to_string(d.writePortsPerBank),
                          TextTable::num(d.storageKB(), 2),
                          TextTable::num(normalizedArea(d), 2) + "X",
                          TextTable::num(ref.storage, 2),
                          TextTable::num(ref.area, 2) + "X"});
        }
    }
    table.print(std::cout);
    std::cout << "\nKey claim preserved: the 8-way VMMX128 register file "
                 "costs less area\nthan the 8-way MMX128 one despite ~10x "
                 "the storage, thanks to\nlane-partitioned banking.\n";
    return 0;
}
