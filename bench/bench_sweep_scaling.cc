/**
 * @file
 * Sweep-engine scaling microbench: a fig5-style grid of
 * (kernel x flavour x width) points timed three ways --
 *
 *   serial/uncached : the pre-sweep-engine path (regenerate the trace at
 *                     every point, run points one by one);
 *   serial/cached   : the sweep engine pinned to one thread (trace cache
 *                     active, no thread pool);
 *   sweep/4-thread  : the full engine with four workers.
 *
 * Every variant must produce bit-identical RunResults; the bench exits
 * nonzero on any mismatch.  The headline number is the wall-clock
 * speedup of the 4-thread sweep over the serial/uncached baseline,
 * reported as the best of three repetitions after a warm-up pass.
 */

#include <algorithm>
#include <chrono>

#include "bench_util.hh"

using namespace vmmx;
using namespace vmmx::bench;

namespace
{

/** The seed-era serial path: fresh trace generation at every point. */
std::vector<SweepResult>
runSerialUncached(const std::vector<SweepPoint> &points)
{
    std::vector<SweepResult> out;
    out.reserve(points.size());
    for (const auto &pt : points) {
        auto k = makeKernel(pt.name);
        MemImage mem(TraceCache::kernelImageBytes);
        Rng rng(TraceCache::defaultSeed);
        k->prepare(mem, rng);
        Program p(mem, pt.kind);
        k->emit(p);
        auto trace = p.takeTrace();

        SweepResult r;
        r.point = pt;
        r.traceLength = trace.size();
        r.result = runTrace(makeMachine(pt.kind, pt.way, pt.overrides),
                            trace);
        out.push_back(std::move(r));
    }
    return out;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

int
main()
{
    setQuiet(true);

    // 6 kernels x 4 flavours x 3 widths = 72 points, 24 distinct traces.
    // The motion/GSM/block kernels have short dynamic traces, so the grid
    // is dominated by trace generation -- exactly the regime the shared
    // cache is for (the long-trace kernels are covered by fig4/fig5).
    const std::vector<std::string> kernels = {"motion1", "motion2", "comp",
                                              "addblock", "ltppar",
                                              "ltpfilt"};
    const std::vector<SimdKind> kinds(allSimdKinds.begin(),
                                      allSimdKinds.end());
    const std::vector<unsigned> ways = {2, 4, 8};

    SweepOptions serialOpts;
    serialOpts.threads = 1;
    SweepOptions poolOpts;
    poolOpts.threads = 4;

    Sweep serialSweep(serialOpts);
    serialSweep.addKernelGrid(kernels, kinds, ways);
    Sweep poolSweep(poolOpts);
    poolSweep.addKernelGrid(kernels, kinds, ways);

    std::cout << "sweep scaling: " << serialSweep.size()
              << " (kernel, flavour, width) points, "
              << kernels.size() * kinds.size() << " distinct traces\n\n";

    using clock = std::chrono::steady_clock;
    constexpr int reps = 3;

    // Warm up: fault in the allocator and populate the trace cache so
    // every variant is timed at steady state (min of three reps).
    auto pooled = poolSweep.run();

    double tBase = 1e9, tCached = 1e9, tPooled = 1e9;
    std::vector<SweepResult> baseline, cached;
    for (int r = 0; r < reps; ++r) {
        auto t0 = clock::now();
        baseline = runSerialUncached(serialSweep.points());
        auto t1 = clock::now();
        cached = serialSweep.run(); // 1 thread: cache only
        auto t2 = clock::now();
        pooled = poolSweep.run(); // 4 threads + cache
        auto t3 = clock::now();
        tBase = std::min(tBase, seconds(t0, t1));
        tCached = std::min(tCached, seconds(t1, t2));
        tPooled = std::min(tPooled, seconds(t2, t3));
    }

    bool identical = true;
    for (size_t i = 0; i < baseline.size(); ++i) {
        if (!baseline[i].sameRun(cached[i]) ||
            !baseline[i].sameRun(pooled[i])) {
            identical = false;
            std::cout << "MISMATCH at point " << i << " ("
                      << baseline[i].point.label() << ")\n";
        }
    }

    TextTable table({"variant", "wall s", "speedup"});
    table.addRow({"serial/uncached", TextTable::num(tBase, 3),
                  TextTable::num(1.0)});
    table.addRow({"serial/cached", TextTable::num(tCached, 3),
                  TextTable::num(tBase / tCached)});
    table.addRow({"sweep/4-thread", TextTable::num(tPooled, 3),
                  TextTable::num(tBase / tPooled)});
    table.print(std::cout);

    // Sweep summary: resident bytes and any VMMX_TRACE_CACHE_BUDGET are
    // part of the one-line cache report.
    std::cout << '\n' << TraceCache::instance().summary() << '\n';
    std::cout << "results bit-identical across variants: "
              << (identical ? "yes" : "NO") << '\n';

    double speedup = tBase / tPooled;
    std::cout << "4-thread sweep speedup vs serial/uncached: "
              << TextTable::num(speedup) << "x ("
              << (speedup >= 2.0 ? "PASS" : "below 2x on this host")
              << ")\n";

    return identical ? 0 : 1;
}
