/**
 * @file
 * Sweep-engine scaling microbench: a fig5-style grid of
 * (kernel x flavour x width) points timed four ways --
 *
 *   serial/uncached : the pre-sweep-engine path (regenerate the trace at
 *                     every point, run points one by one);
 *   serial/cached   : the sweep engine pinned to one thread, per-point
 *                     jobs (trace repository active, no thread pool);
 *   sweep/unbatched : the engine with four workers and one runTrace job
 *                     per point (the PR-2 dispatch);
 *   sweep/batched   : the engine with four workers dispatching whole
 *                     trace groups, each run as one batched pass over a
 *                     shared decoded stream from the repository's
 *                     tier 2 -- the decode is paid once per trace per
 *                     process, not once per group.
 *
 * Every variant must produce bit-identical RunResults; the bench exits
 * nonzero on any mismatch, and also if the sweeps failed to share
 * decoded streams across groups (decoded-tier hits must be > 0).  A
 * host-SIMD section times every runnable SoA step kernel on a wide
 * (12-config) group and enforces the 2x gate: the best vector path must
 * at least double the scalar SoA reference's points/s.  The
 * headline numbers are the wall-clock speedups over the unbatched sweep
 * and the serial/uncached baseline, plus a decode-amortization
 * comparison: the same trace group timed as the *first* group on a
 * trace (decode included) and as a *warm* group (decoded-tier hit).
 * The per-tier TraceRepository::summary() table is printed at the end.
 */

#include <algorithm>
#include <chrono>
#include <map>

#include "bench_util.hh"
#include "sim/simd_dispatch.hh"

using namespace vmmx;
using namespace vmmx::bench;

namespace
{

/** The seed-era serial path: fresh trace generation at every point. */
std::vector<SweepResult>
runSerialUncached(const std::vector<SweepPoint> &points)
{
    std::vector<SweepResult> out;
    out.reserve(points.size());
    for (const auto &pt : points) {
        auto k = makeKernel(pt.name);
        MemImage mem(TraceRepository::kernelImageBytes);
        Rng rng(TraceRepository::defaultSeed);
        k->prepare(mem, rng);
        Program p(mem, pt.kind);
        k->emit(p);
        auto trace = p.takeTrace();

        SweepResult r;
        r.point = pt;
        r.traceLength = trace.size();
        r.result = runTrace(makeMachine(pt.kind, pt.way, pt.overrides),
                            trace);
        out.push_back(std::move(r));
    }
    return out;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

int
main()
{
    setQuiet(true);
    // All headline timings run with telemetry disabled (the default);
    // pin it so a stray VMMX_TELEMETRY=1 can't skew the baselines.  The
    // explicit enabled-vs-disabled comparison happens at the end.
    telemetry::setEnabled(false);

    // 6 kernels x 4 flavours x 3 widths = 72 points, 24 distinct traces
    // (so 24 trace groups of 3 widths each).  The motion/GSM/block
    // kernels have short dynamic traces, so the unbatched grid is
    // dominated by trace generation and re-streaming -- exactly the
    // regime the shared repository and the batched pass are for (the
    // long-trace kernels are covered by fig4/fig5).
    const std::vector<std::string> kernels = {"motion1", "motion2", "comp",
                                              "addblock", "ltppar",
                                              "ltpfilt"};
    const std::vector<SimdKind> kinds(allSimdKinds.begin(),
                                      allSimdKinds.end());
    const std::vector<unsigned> ways = {2, 4, 8};

    // decoded is pinned on explicitly: the decoded-hit gate below must
    // not turn into a spurious failure on a host that exported the
    // VMMX_SWEEP_DECODED=0 escape hatch.
    SweepOptions serialOpts;
    serialOpts.threads = 1;
    serialOpts.batch = false;
    serialOpts.decoded = true;
    SweepOptions poolOpts;
    poolOpts.threads = 4;
    poolOpts.batch = false;
    poolOpts.decoded = true;
    SweepOptions batchOpts;
    batchOpts.threads = 4;
    batchOpts.batch = true;
    batchOpts.decoded = true;

    Sweep serialSweep(serialOpts);
    serialSweep.addKernelGrid(kernels, kinds, ways);
    Sweep poolSweep(poolOpts);
    poolSweep.addKernelGrid(kernels, kinds, ways);
    Sweep batchSweep(batchOpts);
    batchSweep.addKernelGrid(kernels, kinds, ways);

    const size_t nPoints = serialSweep.size();
    std::cout << "sweep scaling: " << nPoints
              << " (kernel, flavour, width) points, "
              << kernels.size() * kinds.size()
              << " distinct traces / batch groups\n\n";

    using clock = std::chrono::steady_clock;
    constexpr int reps = 3;

    // Warm up: fault in the allocator and populate the trace repository
    // so every variant is timed at steady state (min of three reps).
    auto batched = batchSweep.run();

    double tBase = 1e9, tCached = 1e9, tPooled = 1e9, tBatched = 1e9;
    std::vector<SweepResult> baseline, cached, pooled;
    for (int r = 0; r < reps; ++r) {
        auto t0 = clock::now();
        baseline = runSerialUncached(serialSweep.points());
        auto t1 = clock::now();
        cached = serialSweep.run(); // 1 thread: repository only
        auto t2 = clock::now();
        pooled = poolSweep.run(); // 4 threads + repo, per-point jobs
        auto t3 = clock::now();
        batched = batchSweep.run(); // 4 threads + repo + trace groups
        auto t4 = clock::now();
        tBase = std::min(tBase, seconds(t0, t1));
        tCached = std::min(tCached, seconds(t1, t2));
        tPooled = std::min(tPooled, seconds(t2, t3));
        tBatched = std::min(tBatched, seconds(t3, t4));
    }

    bool identical = true;
    for (size_t i = 0; i < baseline.size(); ++i) {
        if (!baseline[i].sameRun(cached[i]) ||
            !baseline[i].sameRun(pooled[i]) ||
            !baseline[i].sameRun(batched[i])) {
            identical = false;
            std::cout << "MISMATCH at point " << i << " ("
                      << baseline[i].point.label() << ")\n";
        }
    }

    auto pps = [&](double t) { return TextTable::num(nPoints / t, 1); };
    TextTable table({"variant", "wall s", "points/s", "speedup"});
    table.addRow({"serial/uncached", TextTable::num(tBase, 3), pps(tBase),
                  TextTable::num(1.0)});
    table.addRow({"serial/cached", TextTable::num(tCached, 3), pps(tCached),
                  TextTable::num(tBase / tCached)});
    table.addRow({"sweep/unbatched (4t)", TextTable::num(tPooled, 3),
                  pps(tPooled), TextTable::num(tBase / tPooled)});
    table.addRow({"sweep/batched (4t)", TextTable::num(tBatched, 3),
                  pps(tBatched), TextTable::num(tBase / tBatched)});
    table.print(std::cout);

    // ---- decode amortization: first group vs warm group --------------
    // One trace group (3 widths of idct/vmmx128) timed against a
    // *private* repository so the tier states are exact: "first group"
    // pays the full-trace decode (raw tier pre-warmed, decoded tier
    // cold), "warm group" replays the decoded-tier stream.  This is the
    // per-group cost every group after the first now avoids.
    double tDecodeFirst = 0, tDecodeWarm = 0;
    {
        const TraceKey key{false, "idct", SimdKind::VMMX128,
                           TraceRepository::kernelImageBytes,
                           TraceRepository::defaultSeed};
        std::vector<MachineConfig> machines;
        for (unsigned way : ways)
            machines.push_back(makeMachine(SimdKind::VMMX128, way));

        double tFirst = 1e9, tWarm = 1e9;
        std::vector<RunResult> firstRuns, warmRuns;
        for (int r = 0; r < reps; ++r) {
            TraceRepository repo(nullptr, 0, 0);
            { auto prewarm = repo.raw(key); } // raw tier hot, decode cold
            auto t0 = clock::now();
            {
                auto stream = repo.decoded(key); // pays the decode
                firstRuns = runTraceBatch(machines, stream.stream());
            }
            auto t1 = clock::now();
            {
                auto stream = repo.decoded(key); // decoded-tier hit
                warmRuns = runTraceBatch(machines, stream.stream());
            }
            auto t2 = clock::now();
            tFirst = std::min(tFirst, seconds(t0, t1));
            tWarm = std::min(tWarm, seconds(t1, t2));
        }
        for (size_t i = 0; i < firstRuns.size(); ++i)
            if (!(firstRuns[i] == warmRuns[i])) {
                identical = false;
                std::cout << "MISMATCH first-vs-warm group at config " << i
                          << "\n";
            }

        auto gpps = [&](double t) {
            return TextTable::num(machines.size() / t, 1);
        };
        TextTable amort({"group on one trace", "wall s", "points/s",
                         "speedup"});
        amort.addRow({"first (decode+run)", TextTable::num(tFirst, 3),
                      gpps(tFirst), TextTable::num(1.0)});
        amort.addRow({"warm (cached decode)", TextTable::num(tWarm, 3),
                      gpps(tWarm), TextTable::num(tFirst / tWarm)});
        std::cout << '\n';
        amort.print(std::cout);
        std::cout << "decode amortization (warm vs first group): "
                  << TextTable::num(tFirst / tWarm) << "x\n";
        tDecodeFirst = tFirst;
        tDecodeWarm = tWarm;
    }

    // ---- host-SIMD step kernels on a wide group ----------------------
    // One trace replayed on 12 knob variants -- wide enough that every
    // compiled path runs full vectors (AVX-512 steps 8 configs per op)
    // plus a partial tail.  Each runnable path is pinned in turn and
    // timed on the same pre-decoded stream, so the only variable is the
    // step kernel; the fused per-config serial loop (runTrace x 12, the
    // oracle every path must match bit-for-bit) is the baseline row.
    // The acceptance gate: the best path must clear 2x the points/s of
    // the scalar SoA reference on this wide group.  The group runs the
    // rgb trace -- the longest, most compute-dominated kernel -- because
    // the gate measures the vectorized timing phases; the short branchy
    // kernels spend most of their stepping in the per-lane scalar
    // sub-phases (memory disambiguation, free lists, ROB ring) that no
    // path can vectorize, and bound every kernel near 1.5x by Amdahl.
    double simdBestSpeedup = 1.0;
    bool simdIdentical = true, simdGate = true;
    std::map<std::string, double> simdPps;
    {
        std::vector<MachineConfig> wideGroup;
        for (s64 rob : {16, 24, 32, 40, 48, 64, 80, 96, 112, 128, 160,
                        192}) {
            Config knobs;
            knobs.set("core.rob", rob);
            wideGroup.push_back(makeMachine(SimdKind::VMMX128, 4, knobs));
        }
        TraceRepository simdRepo(nullptr, 0, 0);
        auto trace = simdRepo.kernel("rgb", SimdKind::VMMX128);
        auto stream = simdRepo.decoded(trace.shared());

        // The idct group is sub-millisecond per pass; time several
        // passes per rep so the 2x gate rests on stable numbers.
        constexpr int passes = 20;
        std::vector<RunResult> oracle;
        double tSerial = 1e9;
        for (int r = 0; r < reps; ++r) {
            auto t0 = clock::now();
            for (int it = 0; it < passes; ++it) {
                oracle.clear();
                for (const MachineConfig &m : wideGroup)
                    oracle.push_back(runTrace(m, stream.stream()));
            }
            tSerial = std::min(tSerial, seconds(t0, clock::now()));
        }

        auto gpps = [&](double t) {
            return wideGroup.size() * passes / t;
        };
        TextTable simdTable({"step kernel (12-config group)", "wall s",
                             "points/s", "speedup"});
        simdTable.addRow({"serial fused (per-config)",
                          TextTable::num(tSerial, 3),
                          TextTable::num(gpps(tSerial), 1),
                          TextTable::num(1.0)});
        double tScalar = 0;
        u32 usable = simd::compiledMask() & simd::supportedMask();
        for (unsigned ord = 0; ord < simd::numPaths; ++ord) {
            if (!(usable & (u32(1) << ord)))
                continue;
            simd::Path path = simd::Path(ord);
            std::string err = simd::setActivePath(path);
            if (!err.empty())
                panic("pinning %s: %s", simd::pathName(path), err.c_str());
            double tPath = 1e9;
            std::vector<RunResult> runs;
            for (int r = 0; r < reps; ++r) {
                auto t0 = clock::now();
                for (int it = 0; it < passes; ++it)
                    runs = runTraceBatch(wideGroup, stream.stream());
                tPath = std::min(tPath, seconds(t0, clock::now()));
            }
            for (size_t i = 0; i < oracle.size(); ++i)
                if (!(runs[i] == oracle[i])) {
                    simdIdentical = false;
                    std::cout << "MISMATCH " << simd::pathName(path)
                              << " vs serial at config " << i << "\n";
                }
            if (path == simd::Path::Scalar)
                tScalar = tPath;
            double speedup = tScalar / tPath;
            simdBestSpeedup = std::max(simdBestSpeedup, speedup);
            simdPps[simd::pathName(path)] = gpps(tPath);
            simdTable.addRow(
                {std::string("SoA ") + simd::pathName(path) + " (" +
                     std::to_string(simd::pathLanes(path)) + " lanes)",
                 TextTable::num(tPath, 3), TextTable::num(gpps(tPath), 1),
                 TextTable::num(tSerial / tPath)});
        }
        simd::setActivePathAuto();
        std::cout << '\n';
        simdTable.print(std::cout);
        // The gate only binds where a vector path can actually run; a
        // scalar-only host (or build) still reports its numbers.
        bool vectorRunnable = (usable & ~u32(1)) != 0;
        if (vectorRunnable) {
            simdGate = simdBestSpeedup >= 2.0;
            std::cout << "best SIMD path vs scalar SoA reference: "
                      << TextTable::num(simdBestSpeedup) << "x ("
                      << (simdGate ? "PASS" : "FAIL: below 2x") << ")\n";
        } else {
            std::cout << "no vector path compiled+supported on this host; "
                         "2x gate skipped\n";
        }
    }

    // Repository summary: the per-tier occupancy/hit table, including
    // any VMMX_TRACE_CACHE_BUDGET / VMMX_DECODED_CACHE_BUDGET.
    std::cout << '\n' << TraceRepository::instance().summary() << '\n';
    std::cout << "results bit-identical across variants: "
              << (identical ? "yes" : "NO") << '\n';

    // The sweeps above replay 24 traces across groups, threads and
    // repetitions; if decode sharing works, almost all of those lookups
    // are decoded-tier hits.
    u64 decodedHits = TraceRepository::instance().decodedStats().hits;
    std::cout << "decoded-tier hits across groups: " << decodedHits << " ("
              << (decodedHits > 0 ? "PASS" : "FAIL: no decode reuse")
              << ")\n";

    double batchSpeedup = tPooled / tBatched;
    std::cout << "batched vs unbatched sweep (same 4-thread pool): "
              << TextTable::num(batchSpeedup) << "x, "
              << pps(tBatched) << " points/s\n";

    double speedup = tBase / tBatched;
    std::cout << "batched sweep speedup vs serial/uncached: "
              << TextTable::num(speedup) << "x ("
              << (speedup >= 2.0 ? "PASS" : "below 2x on this host")
              << ")\n";

    // ---- telemetry overhead: the same batched sweep, spans on --------
    // tBatched above ran with telemetry disabled -- the default mode,
    // whose only cost over not compiling the hooks in at all is one
    // relaxed atomic load + branch per unit/span site.  Rerun the
    // batched sweep with spans and per-unit records enabled and compare:
    // the delta is the full tracing cost, and results must stay
    // bit-identical (telemetry is purely observational).
    double tTelem = 1e9;
    size_t spansPerRun = 0;
    {
        telemetry::setEnabled(true);
        std::vector<SweepResult> telem;
        for (int r = 0; r < reps; ++r) {
            telemetry::Tracer::instance().clear();
            telemetry::Registry::instance().clear();
            auto t0 = clock::now();
            telem = batchSweep.run();
            tTelem = std::min(tTelem, seconds(t0, clock::now()));
        }
        spansPerRun = telemetry::Tracer::instance().size();
        telemetry::Tracer::instance().clear();
        telemetry::Registry::instance().clear();
        telemetry::setEnabled(false);
        for (size_t i = 0; i < baseline.size(); ++i)
            if (!baseline[i].sameRun(telem[i])) {
                identical = false;
                std::cout << "MISMATCH telemetry-on at point " << i << " ("
                          << baseline[i].point.label() << ")\n";
            }
    }
    double telemOverheadPct = (tTelem / tBatched - 1.0) * 100.0;
    std::cout << "telemetry disabled (baseline above): "
              << TextTable::num(tBatched, 3)
              << " s; enabled (spans + unit records, " << spansPerRun
              << " spans/run): " << TextTable::num(tTelem, 3) << " s -> "
              << TextTable::num(telemOverheadPct, 1)
              << "% overhead; disabled-mode overhead is one atomic "
                 "load+branch per span site\n";

    // Machine-readable perf record for CI trend tracking.
    PerfRecord rec("sweep_scaling");
    rec.note("grid", std::to_string(nPoints) + " points, " +
                         std::to_string(kernels.size() * kinds.size()) +
                         " trace groups");
    rec.metric("points", double(nPoints));
    rec.metric("serialUncached.pointsPerSec", nPoints / tBase);
    rec.metric("serialCached.pointsPerSec", nPoints / tCached);
    rec.metric("sweepUnbatched.pointsPerSec", nPoints / tPooled);
    rec.metric("sweepBatched.pointsPerSec", nPoints / tBatched);
    rec.metric("batchedSpeedupVsSerialUncached", speedup);
    rec.metric("batchedSpeedupVsUnbatched", batchSpeedup);
    rec.metric("decode.firstGroupSec", tDecodeFirst);
    rec.metric("decode.warmGroupSec", tDecodeWarm);
    rec.metric("decode.amortization", tDecodeFirst / tDecodeWarm);
    rec.metric("telemetry.enabledSec", tTelem);
    rec.metric("telemetry.disabledSec", tBatched);
    rec.metric("telemetry.enabledOverheadPct", telemOverheadPct);
    rec.metric("telemetry.spansPerRun", double(spansPerRun));
    rec.metric("decodedTierHits", double(decodedHits));
    rec.note("simd.active", simd::pathName(simd::bestPath()));
    for (const auto &[path, pps12] : simdPps)
        rec.metric("simd." + path + ".pointsPerSec", pps12);
    rec.metric("simd.bestSpeedupVsScalar", simdBestSpeedup);
    if (rec.write())
        std::cout << "perf record written to " << rec.path() << '\n';

    return identical && simdIdentical && simdGate && decodedHits > 0 ? 0
                                                                     : 1;
}
