/**
 * @file
 * Sweep-engine scaling microbench: a fig5-style grid of
 * (kernel x flavour x width) points timed four ways --
 *
 *   serial/uncached : the pre-sweep-engine path (regenerate the trace at
 *                     every point, run points one by one);
 *   serial/cached   : the sweep engine pinned to one thread, per-point
 *                     jobs (trace cache active, no thread pool);
 *   sweep/unbatched : the engine with four workers and one runTrace job
 *                     per point (the PR-2 dispatch);
 *   sweep/batched   : the engine with four workers dispatching whole
 *                     trace groups, each run as one batched pass that
 *                     decodes and streams the trace once for all of the
 *                     group's machine configurations.
 *
 * Every variant must produce bit-identical RunResults; the bench exits
 * nonzero on any mismatch.  The headline numbers are the wall-clock
 * speedup of the batched sweep over the unbatched one (the tentpole of
 * the batched-simulation PR) and over the serial/uncached baseline,
 * reported as the best of three repetitions after a warm-up pass,
 * together with each variant's points-per-second throughput.
 */

#include <algorithm>
#include <chrono>

#include "bench_util.hh"

using namespace vmmx;
using namespace vmmx::bench;

namespace
{

/** The seed-era serial path: fresh trace generation at every point. */
std::vector<SweepResult>
runSerialUncached(const std::vector<SweepPoint> &points)
{
    std::vector<SweepResult> out;
    out.reserve(points.size());
    for (const auto &pt : points) {
        auto k = makeKernel(pt.name);
        MemImage mem(TraceCache::kernelImageBytes);
        Rng rng(TraceCache::defaultSeed);
        k->prepare(mem, rng);
        Program p(mem, pt.kind);
        k->emit(p);
        auto trace = p.takeTrace();

        SweepResult r;
        r.point = pt;
        r.traceLength = trace.size();
        r.result = runTrace(makeMachine(pt.kind, pt.way, pt.overrides),
                            trace);
        out.push_back(std::move(r));
    }
    return out;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

int
main()
{
    setQuiet(true);

    // 6 kernels x 4 flavours x 3 widths = 72 points, 24 distinct traces
    // (so 24 trace groups of 3 widths each).  The motion/GSM/block
    // kernels have short dynamic traces, so the unbatched grid is
    // dominated by trace generation and re-streaming -- exactly the
    // regime the shared cache and the batched pass are for (the
    // long-trace kernels are covered by fig4/fig5).
    const std::vector<std::string> kernels = {"motion1", "motion2", "comp",
                                              "addblock", "ltppar",
                                              "ltpfilt"};
    const std::vector<SimdKind> kinds(allSimdKinds.begin(),
                                      allSimdKinds.end());
    const std::vector<unsigned> ways = {2, 4, 8};

    SweepOptions serialOpts;
    serialOpts.threads = 1;
    serialOpts.batch = false;
    SweepOptions poolOpts;
    poolOpts.threads = 4;
    poolOpts.batch = false;
    SweepOptions batchOpts;
    batchOpts.threads = 4;
    batchOpts.batch = true;

    Sweep serialSweep(serialOpts);
    serialSweep.addKernelGrid(kernels, kinds, ways);
    Sweep poolSweep(poolOpts);
    poolSweep.addKernelGrid(kernels, kinds, ways);
    Sweep batchSweep(batchOpts);
    batchSweep.addKernelGrid(kernels, kinds, ways);

    const size_t nPoints = serialSweep.size();
    std::cout << "sweep scaling: " << nPoints
              << " (kernel, flavour, width) points, "
              << kernels.size() * kinds.size()
              << " distinct traces / batch groups\n\n";

    using clock = std::chrono::steady_clock;
    constexpr int reps = 3;

    // Warm up: fault in the allocator and populate the trace cache so
    // every variant is timed at steady state (min of three reps).
    auto batched = batchSweep.run();

    double tBase = 1e9, tCached = 1e9, tPooled = 1e9, tBatched = 1e9;
    std::vector<SweepResult> baseline, cached, pooled;
    for (int r = 0; r < reps; ++r) {
        auto t0 = clock::now();
        baseline = runSerialUncached(serialSweep.points());
        auto t1 = clock::now();
        cached = serialSweep.run(); // 1 thread: cache only
        auto t2 = clock::now();
        pooled = poolSweep.run(); // 4 threads + cache, per-point jobs
        auto t3 = clock::now();
        batched = batchSweep.run(); // 4 threads + cache + trace groups
        auto t4 = clock::now();
        tBase = std::min(tBase, seconds(t0, t1));
        tCached = std::min(tCached, seconds(t1, t2));
        tPooled = std::min(tPooled, seconds(t2, t3));
        tBatched = std::min(tBatched, seconds(t3, t4));
    }

    bool identical = true;
    for (size_t i = 0; i < baseline.size(); ++i) {
        if (!baseline[i].sameRun(cached[i]) ||
            !baseline[i].sameRun(pooled[i]) ||
            !baseline[i].sameRun(batched[i])) {
            identical = false;
            std::cout << "MISMATCH at point " << i << " ("
                      << baseline[i].point.label() << ")\n";
        }
    }

    auto pps = [&](double t) { return TextTable::num(nPoints / t, 1); };
    TextTable table({"variant", "wall s", "points/s", "speedup"});
    table.addRow({"serial/uncached", TextTable::num(tBase, 3), pps(tBase),
                  TextTable::num(1.0)});
    table.addRow({"serial/cached", TextTable::num(tCached, 3), pps(tCached),
                  TextTable::num(tBase / tCached)});
    table.addRow({"sweep/unbatched (4t)", TextTable::num(tPooled, 3),
                  pps(tPooled), TextTable::num(tBase / tPooled)});
    table.addRow({"sweep/batched (4t)", TextTable::num(tBatched, 3),
                  pps(tBatched), TextTable::num(tBase / tBatched)});
    table.print(std::cout);

    // Sweep summary: resident bytes and any VMMX_TRACE_CACHE_BUDGET are
    // part of the one-line cache report.
    std::cout << '\n' << TraceCache::instance().summary() << '\n';
    std::cout << "results bit-identical across variants: "
              << (identical ? "yes" : "NO") << '\n';

    double batchSpeedup = tPooled / tBatched;
    std::cout << "batched vs unbatched sweep (same 4-thread pool): "
              << TextTable::num(batchSpeedup) << "x, "
              << pps(tBatched) << " points/s ("
              << (batchSpeedup >= 1.5 ? "PASS" : "below 1.5x on this host")
              << ")\n";

    double speedup = tBase / tBatched;
    std::cout << "batched sweep speedup vs serial/uncached: "
              << TextTable::num(speedup) << "x ("
              << (speedup >= 2.0 ? "PASS" : "below 2x on this host")
              << ")\n";

    return identical ? 0 : 1;
}
