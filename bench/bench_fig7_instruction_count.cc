/**
 * @file
 * Figure 7: dynamic instruction count per application and flavour,
 * split into the paper's five categories and normalised to the MMX64
 * build of the same application.
 */

#include "bench_util.hh"

using namespace vmmx;
using namespace vmmx::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Figure 7: dynamic instruction count "
                 "(normalised to mmx64 = 100 per app)\n\n";

    double reduction[4]{};

    for (const auto &an : appNames()) {
        TextTable table({"flavour", "smem", "sarith", "sctrl", "vmem",
                         "varith", "total"});
        double base = 0;
        for (auto kind : allSimdKinds) {
            const auto &trace = appTrace(an, kind);
            std::array<u64, numInstClasses> byClass{};
            for (const auto &inst : trace)
                ++byClass[size_t(inst.cls())];
            double total = double(trace.size());
            if (kind == SimdKind::MMX64)
                base = total;
            std::vector<std::string> row = {name(kind)};
            for (unsigned c = 0; c < numInstClasses; ++c)
                row.push_back(
                    TextTable::num(100.0 * double(byClass[c]) / base, 1));
            row.push_back(TextTable::num(100.0 * total / base, 1));
            table.addRow(std::move(row));
            reduction[size_t(kind)] += total / base;
        }
        std::cout << an << ":\n";
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "average dynamic instruction count vs mmx64:\n";
    for (auto kind : allSimdKinds) {
        std::cout << "  " << name(kind) << ": "
                  << TextTable::num(100.0 * reduction[size_t(kind)] / 6.0,
                                    1)
                  << "%\n";
    }
    std::cout << "\nPaper headline checks: the VMMX builds execute ~30% "
                 "fewer instructions\nthan MMX64, MMX128 ~15% fewer.\n";
    return 0;
}
