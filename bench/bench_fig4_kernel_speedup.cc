/**
 * @file
 * Figure 4: kernel speed-up of the four SIMD flavours on the 2-way
 * machine, normalised to 2-way MMX64 (the paper's baseline).
 *
 * The (kernel x flavour) grid is a declarative Study run through the
 * thread-pool backend; the table interleaves the study's speedup metric
 * with the paper's read-off bar values, so rendering stays custom while
 * the grid, execution, and derived metric come from the Study API.
 */

#include <map>

#include "bench_util.hh"
#include "harness/study.hh"

using namespace vmmx;
using namespace vmmx::bench;

namespace
{

// Paper bar values (read off Figure 4) for the shape comparison.
const std::map<std::string, std::array<double, 3>> paperRef = {
    // {mmx128, vmmx64, vmmx128}
    {"idct", {1.47, 2.20, 4.10}},    {"motion1", {1.10, 1.60, 2.29}},
    {"motion2", {1.10, 1.70, 2.43}}, {"comp", {1.05, 1.20, 1.25}},
    {"addblock", {1.25, 1.45, 1.50}}, {"rgb", {1.10, 1.50, 1.90}},
    {"ycc", {1.43, 1.90, 2.71}},     {"h2v2", {1.19, 1.80, 2.20}},
    {"ltppar", {1.10, 1.50, 1.55}},  {"ltpfilt", {1.15, 1.60, 1.75}},
};

} // namespace

int
main()
{
    setQuiet(true);
    std::cout << "Figure 4: kernel speed-up over the 2-way MMX64 baseline "
                 "(2-way machines)\n\n";

    StudySpec spec;
    spec.kernels = kernelNames();
    spec.ways = {2};
    spec.report.pivot = ReportSpec::Metric::Speedup;
    Study study(std::move(spec));
    auto results = study.run();

    const auto &kernels = study.spec().kernels;
    const auto &kinds = study.spec().kinds;
    TextTable table({"kernel", "mmx64", "mmx128", "vmmx64", "vmmx128",
                     "paper mmx128", "paper vmmx64", "paper vmmx128"});

    for (size_t ki = 0; ki < kernels.size(); ++ki) {
        // Submission order is kernel-major, flavour inner (one width).
        std::array<double, 4> speedup{};
        for (size_t f = 0; f < kinds.size(); ++f) {
            const SweepResult &r = results[ki * kinds.size() + f];
            speedup[f] = metricValue(
                ReportSpec::Metric::Speedup, r,
                Study::baselineFor(study.spec().report, results, r));
        }
        const auto &kn = kernels[ki];
        auto ref = paperRef.count(kn) ? paperRef.at(kn)
                                      : std::array<double, 3>{0, 0, 0};
        table.addRow({kn, TextTable::num(speedup[0]),
                      TextTable::num(speedup[1]),
                      TextTable::num(speedup[2]),
                      TextTable::num(speedup[3]),
                      ref[0] ? TextTable::num(ref[0]) : "-",
                      ref[1] ? TextTable::num(ref[1]) : "-",
                      ref[2] ? TextTable::num(ref[2]) : "-"});
    }
    table.print(std::cout);
    std::cout << "\n(fdct is Table II's extra kernel; Figure 4 omits it)\n";
    return 0;
}
