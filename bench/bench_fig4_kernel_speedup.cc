/**
 * @file
 * Figure 4: kernel speed-up of the four SIMD flavours on the 2-way
 * machine, normalised to 2-way MMX64 (the paper's baseline).
 *
 * The (kernel x flavour) grid runs through the parallel sweep engine;
 * results come back in submission order, so rows are assembled by index.
 */

#include <map>

#include "bench_util.hh"

using namespace vmmx;
using namespace vmmx::bench;

namespace
{

// Paper bar values (read off Figure 4) for the shape comparison.
const std::map<std::string, std::array<double, 3>> paperRef = {
    // {mmx128, vmmx64, vmmx128}
    {"idct", {1.47, 2.20, 4.10}},    {"motion1", {1.10, 1.60, 2.29}},
    {"motion2", {1.10, 1.70, 2.43}}, {"comp", {1.05, 1.20, 1.25}},
    {"addblock", {1.25, 1.45, 1.50}}, {"rgb", {1.10, 1.50, 1.90}},
    {"ycc", {1.43, 1.90, 2.71}},     {"h2v2", {1.19, 1.80, 2.20}},
    {"ltppar", {1.10, 1.50, 1.55}},  {"ltpfilt", {1.15, 1.60, 1.75}},
};

} // namespace

int
main()
{
    setQuiet(true);
    std::cout << "Figure 4: kernel speed-up over the 2-way MMX64 baseline "
                 "(2-way machines)\n\n";

    const auto kernels = kernelNames();
    const std::vector<SimdKind> kinds(allSimdKinds.begin(),
                                      allSimdKinds.end());
    Sweep sweep;
    sweep.addKernelGrid(kernels, kinds, {2});
    auto results = sweep.run();

    TextTable table({"kernel", "mmx64", "mmx128", "vmmx64", "vmmx128",
                     "paper mmx128", "paper vmmx64", "paper vmmx128"});

    for (size_t ki = 0; ki < kernels.size(); ++ki) {
        std::array<double, 4> cycles{};
        for (size_t f = 0; f < kinds.size(); ++f)
            cycles[f] = double(results[ki * kinds.size() + f].cycles());
        double base = cycles[size_t(SimdKind::MMX64)];
        const auto &kn = kernels[ki];
        auto ref = paperRef.count(kn) ? paperRef.at(kn)
                                      : std::array<double, 3>{0, 0, 0};
        table.addRow({kn, TextTable::num(1.0),
                      TextTable::num(base / cycles[1]),
                      TextTable::num(base / cycles[2]),
                      TextTable::num(base / cycles[3]),
                      ref[0] ? TextTable::num(ref[0]) : "-",
                      ref[1] ? TextTable::num(ref[1]) : "-",
                      ref[2] ? TextTable::num(ref[2]) : "-"});
    }
    table.print(std::cout);
    std::cout << "\n(fdct is Table II's extra kernel; Figure 4 omits it)\n";
    return 0;
}
