/**
 * @file
 * Tables III and IV: the modelled processor and memory configurations.
 *
 * The machine grid is enumerated through the sweep API (same helper the
 * timing sweeps use), so the rows here are exactly the machines a
 * default (flavour x width) sweep would run.
 */

#include <iostream>

#include "common/table.hh"
#include "harness/sweep.hh"

using namespace vmmx;

int
main()
{
    // Enumerate the canonical grid once; Table III prints every machine,
    // Table IV prints the memory system per width (flavour-invariant).
    Sweep grid;
    for (unsigned way : {2u, 4u, 8u})
        for (auto kind : allSimdKinds)
            grid.addKernel("idct", kind, way);

    std::cout << "Table III: modelled processors\n\n";
    TextTable t3({"config", "phys SIMD", "fetch/commit", "int FUs",
                  "FP FUs", "SIMD issue", "SIMD FUs", "lanes",
                  "mem ports", "ROB", "IQ"});
    for (const SweepPoint &pt : grid.points()) {
        auto m = makeMachine(pt.kind, pt.way, pt.overrides);
        t3.addRow({m.label(), std::to_string(m.core.physSimd),
                   std::to_string(m.core.way),
                   std::to_string(m.core.intFus),
                   std::to_string(m.core.fpFus),
                   std::to_string(m.core.simdIssue),
                   std::to_string(m.core.simdFus),
                   std::to_string(m.core.lanesPerFu),
                   std::to_string(m.core.memPorts),
                   std::to_string(m.core.robSize),
                   std::to_string(m.core.iqSize)});
    }
    t3.print(std::cout);

    std::cout << "\nTable IV: memory hierarchy\n\n";
    TextTable t4({"config", "L1", "L1 ports", "L2", "fill B/cyc",
                  "vec port B/cyc", "mem latency"});
    for (const SweepPoint &pt : grid.points()) {
        if (pt.kind != SimdKind::VMMX128)
            continue;
        auto m = makeMachine(pt.kind, pt.way, pt.overrides);
        auto cache = [](const CacheParams &c) {
            return std::to_string(c.sizeBytes / 1024) + "KB/" +
                   std::to_string(c.assoc) + "way/" +
                   std::to_string(c.lineBytes) + "B/" +
                   std::to_string(c.banks) + "banks/lat" +
                   std::to_string(unsigned(c.latency));
        };
        t4.addRow({m.label(), cache(m.mem.l1),
                   std::to_string(m.mem.l1Ports), cache(m.mem.l2),
                   std::to_string(m.mem.l2FillBytes),
                   std::to_string(m.mem.vecPortBytes),
                   std::to_string(unsigned(m.mem.memLatency))});
    }
    t4.print(std::cout);
    return 0;
}
