/**
 * @file
 * Ablation C: main-memory latency tolerance.  The paper deliberately
 * models high latencies "to determine the ability of the proposed
 * extensions to tolerate high latencies in the memory subsystem".
 */

#include "bench_util.hh"

using namespace vmmx;
using namespace vmmx::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Ablation: main-memory latency sweep (2-way, h2v2 "
                 "kernel cycles)\n\n";

    TextTable table({"latency", "mmx64", "mmx128", "vmmx64", "vmmx128",
                     "vmmx128 slowdown"});
    double base = 0;
    for (u64 lat : {100, 300, 500, 800}) {
        std::vector<std::string> row = {std::to_string(lat)};
        double v128 = 0;
        for (auto kind : allSimdKinds) {
            Config cfg;
            cfg.set("mem.latency", s64(lat));
            auto t = time(kernelTrace("h2v2", kind), kind, 2, cfg);
            row.push_back(std::to_string(t.result.cycles()));
            if (kind == SimdKind::VMMX128)
                v128 = double(t.result.cycles());
        }
        if (lat == 100)
            base = v128;
        row.push_back(TextTable::num(v128 / base, 2) + "X");
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nLong matrix transfers amortise the latency: the "
                 "VMMX builds degrade\nmore gently than the short 1-D "
                 "accesses.\n";
    return 0;
}
