/**
 * @file
 * Ablation A: the vector cache's stride-one fast path.  Sweeps the L2
 * vector port width and the strided transfer rate for the memory-
 * intensive matrix kernels (DESIGN.md design-choice study).
 */

#include "bench_util.hh"

using namespace vmmx;
using namespace vmmx::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Ablation: vector-cache port width and strided rate "
                 "(2-way VMMX128 cycles)\n\n";

    TextTable table({"kernel", "port 8B", "port 16B", "port 32B",
                     "strided 16B/cyc"});
    for (const std::string kn :
         {"motion1", "idct", "ycc", "h2v2", "ltppar"}) {
        const auto &trace = kernelTrace(kn, SimdKind::VMMX128);
        std::vector<std::string> row = {kn};
        for (u64 port : {8, 16, 32}) {
            Config cfg;
            cfg.set("mem.vec.port_bytes", s64(port));
            auto t = time(trace, SimdKind::VMMX128, 2, cfg);
            row.push_back(std::to_string(t.result.cycles()));
        }
        Config cfg;
        cfg.set("mem.vec.strided_bytes", s64(16));
        auto t = time(trace, SimdKind::VMMX128, 2, cfg);
        row.push_back(std::to_string(t.result.cycles()));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nStride-one kernels (ycc, h2v2, idct) scale with the "
                 "port; the strided\nmotion kernels need the per-element "
                 "path and benefit from a faster one.\n";
    return 0;
}
