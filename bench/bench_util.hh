/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries: build a
 * kernel or app trace for a flavour and time it on a Table III/IV
 * machine.
 *
 * Traces are resolved through the process-wide vmmx::TraceCache, so a
 * bench that touches the same (workload, flavour) many times -- every
 * multi-way sweep does -- generates each trace exactly once.  All
 * helpers here are safe to call from sweep worker threads: the cache is
 * internally locked, machine construction is pure, and setQuiet() is
 * atomic.
 */

#ifndef VMMX_BENCH_BENCH_UTIL_HH
#define VMMX_BENCH_BENCH_UTIL_HH

#include <iostream>

#include "apps/app.hh"
#include "common/table.hh"
#include "harness/sweep.hh"
#include "kernels/kernel.hh"
#include "trace/trace_cache.hh"

namespace vmmx::bench
{

struct TimedRun
{
    RunResult result;
    u64 traceLength = 0;
    std::array<u64, numInstClasses> instByClass{};
};

/** Kernel trace for (name, kind), memoized in the process-wide cache. */
inline const std::vector<InstRecord> &
kernelTrace(const std::string &kernel, SimdKind kind)
{
    // The cache retains the shared trace for the process lifetime, so the
    // reference stays valid.
    return *TraceCache::instance().kernel(kernel, kind);
}

/** App trace for (name, kind), memoized in the process-wide cache. */
inline const std::vector<InstRecord> &
appTrace(const std::string &app, SimdKind kind)
{
    return *TraceCache::instance().app(app, kind);
}

inline TimedRun
time(const std::vector<InstRecord> &trace, SimdKind kind, unsigned way,
     const Config &overrides = {})
{
    TimedRun t;
    t.traceLength = trace.size();
    auto machine = makeMachine(kind, way, overrides);
    t.result = runTrace(machine, trace);
    t.instByClass = t.result.core.instByClass;
    return t;
}

} // namespace vmmx::bench

#endif // VMMX_BENCH_BENCH_UTIL_HH
