/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries: build a
 * kernel or app trace for a flavour and time it on a Table III/IV
 * machine.
 *
 * Traces are resolved through the process-wide vmmx::TraceCache, so a
 * bench that touches the same (workload, flavour) many times -- every
 * multi-way sweep does -- generates each trace exactly once.  All
 * helpers here are safe to call from sweep worker threads: the cache is
 * internally locked, machine construction is pure, and setQuiet() is
 * atomic.
 */

#ifndef VMMX_BENCH_BENCH_UTIL_HH
#define VMMX_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <map>
#include <mutex>
#include <tuple>

#include "apps/app.hh"
#include "common/table.hh"
#include "harness/sweep.hh"
#include "kernels/kernel.hh"
#include "trace/trace_cache.hh"

namespace vmmx::bench
{

struct TimedRun
{
    RunResult result;
    u64 traceLength = 0;
    std::array<u64, numInstClasses> instByClass{};
};

/**
 * Trace-by-reference lookup with a process-lifetime pin.  The helpers
 * below hand out references; with a VMMX_TRACE_CACHE_BUDGET set the
 * process-wide cache may drop RAM copies of disk-backed traces (and a
 * reload builds a *new* vector), so the first trace seen for a key is
 * pinned here and every later call returns that same pinned object --
 * stable references, no per-call growth.
 */
inline const std::vector<InstRecord> &
pinnedTrace(bool isApp, const std::string &name, SimdKind kind)
{
    static std::mutex mu;
    static std::map<std::tuple<bool, std::string, SimdKind>, SharedTrace>
        pinned;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = pinned.find({isApp, name, kind});
        if (it != pinned.end())
            return *it->second;
    }
    SharedTrace t = isApp ? TraceCache::instance().app(name, kind)
                          : TraceCache::instance().kernel(name, kind);
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = pinned.try_emplace({isApp, name, kind},
                                             std::move(t));
    return *it->second;
}

/** Kernel trace for (name, kind), memoized in the process-wide cache. */
inline const std::vector<InstRecord> &
kernelTrace(const std::string &kernel, SimdKind kind)
{
    return pinnedTrace(false, kernel, kind);
}

/** App trace for (name, kind), memoized in the process-wide cache. */
inline const std::vector<InstRecord> &
appTrace(const std::string &app, SimdKind kind)
{
    return pinnedTrace(true, app, kind);
}

inline TimedRun
time(const std::vector<InstRecord> &trace, SimdKind kind, unsigned way,
     const Config &overrides = {})
{
    TimedRun t;
    t.traceLength = trace.size();
    auto machine = makeMachine(kind, way, overrides);
    t.result = runTrace(machine, trace);
    t.instByClass = t.result.core.instByClass;
    return t;
}

} // namespace vmmx::bench

#endif // VMMX_BENCH_BENCH_UTIL_HH
