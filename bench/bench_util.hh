/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries: build a
 * kernel or app trace for a flavour and time it on a Table III/IV
 * machine.
 *
 * Traces are resolved through the repository an ExecutionPolicy names
 * (the process-wide vmmx::TraceRepository by default), so a bench that
 * touches the same (workload, flavour) many times -- every multi-way
 * sweep does -- generates each trace exactly once.  The helpers hand
 * out references, so the first handle seen for a (repository, key) pair
 * is kept alive here for the process lifetime; its RAII pin makes the
 * repository's eviction skip the entry even under a tiny
 * VMMX_TRACE_CACHE_BUDGET, so the references stay stable with no
 * re-materialization churn.  All helpers are safe to call from sweep
 * worker threads: the repository is internally locked, machine
 * construction is pure, and setQuiet() is atomic.
 */

#ifndef VMMX_BENCH_BENCH_UTIL_HH
#define VMMX_BENCH_BENCH_UTIL_HH

#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

#include <unistd.h>

#include "apps/app.hh"
#include "common/table.hh"
#include "common/telemetry.hh"
#include "harness/executor.hh"
#include "harness/study.hh"
#include "kernels/kernel.hh"
#include "trace/trace_repo.hh"

namespace vmmx::bench
{

struct TimedRun
{
    RunResult result;
    u64 traceLength = 0;
    std::array<u64, numInstClasses> instByClass{};
};

/** Trace-by-reference lookup, pinned for the process lifetime.  The
 *  trace resolves through @p policy's repository, so a bench running
 *  against a private repository gets (and pins) entries there, not in
 *  the process-wide instance; the pin map keys on the repository too,
 *  so the same trace may be pinned once per repository. */
inline const std::vector<InstRecord> &
pinnedTrace(bool isApp, const std::string &name, SimdKind kind,
            const ExecutionPolicy &policy = {})
{
    TraceRepository &repo = policy.repository();
    using Key = std::tuple<TraceRepository *, bool, std::string, SimdKind>;
    static std::mutex mu;
    static std::map<Key, TraceRepository::TraceHandle> pinned;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = pinned.find({&repo, isApp, name, kind});
        if (it != pinned.end())
            return *it->second;
    }
    // Resolve outside the map lock so distinct traces generate in
    // parallel; a lost race just drops the duplicate handle.
    TraceRepository::TraceHandle h =
        isApp ? repo.app(name, kind) : repo.kernel(name, kind);
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] =
        pinned.try_emplace({&repo, isApp, name, kind}, std::move(h));
    return *it->second;
}

/** Kernel trace for (name, kind), pinned in the policy's repository. */
inline const std::vector<InstRecord> &
kernelTrace(const std::string &kernel, SimdKind kind,
            const ExecutionPolicy &policy = {})
{
    return pinnedTrace(false, kernel, kind, policy);
}

/** App trace for (name, kind), pinned in the policy's repository. */
inline const std::vector<InstRecord> &
appTrace(const std::string &app, SimdKind kind,
         const ExecutionPolicy &policy = {})
{
    return pinnedTrace(true, app, kind, policy);
}

inline TimedRun
time(const std::vector<InstRecord> &trace, SimdKind kind, unsigned way,
     const Config &overrides = {})
{
    TimedRun t;
    t.traceLength = trace.size();
    auto machine = makeMachine(kind, way, overrides);
    t.result = runTrace(machine, trace);
    t.instByClass = t.result.core.instByClass;
    return t;
}

/**
 * Standardized machine-readable perf record: one JSON object per bench
 * run, written as BENCH_<name>.json in the working directory so CI can
 * archive the perf trajectory across PRs.  Numeric metrics and string
 * notes are both name-sorted (std::map) for stable diffs; host identity
 * (hostname, core count) rides along so numbers from different machines
 * are never naively compared.
 */
class PerfRecord
{
  public:
    explicit PerfRecord(std::string name) : name_(std::move(name)) {}

    void metric(const std::string &key, double v) { metrics_[key] = v; }
    void note(const std::string &key, const std::string &v)
    {
        notes_[key] = v;
    }

    std::string path() const { return "BENCH_" + name_ + ".json"; }

    /** Write the record; @return false (and warn) on I/O failure. */
    bool
    write() const
    {
        char host[256] = {};
        if (::gethostname(host, sizeof(host) - 1) != 0)
            std::snprintf(host, sizeof(host), "unknown");
        std::ofstream out(path());
        if (!out) {
            warn("cannot write perf record '%s'", path().c_str());
            return false;
        }
        out << "{\n  \"bench\": \"" << telemetry::jsonEscape(name_)
            << "\",\n  \"host\": \"" << telemetry::jsonEscape(host)
            << "\",\n  \"sanitizer\": \""
            << telemetry::jsonEscape(telemetry::sanitizerName())
            << "\",\n  \"hardwareConcurrency\": "
            << std::thread::hardware_concurrency();
        for (const auto &[k, v] : notes_)
            out << ",\n  \"" << telemetry::jsonEscape(k) << "\": \""
                << telemetry::jsonEscape(v) << "\"";
        out << ",\n  \"metrics\": {";
        bool first = true;
        for (const auto &[k, v] : metrics_) {
            out << (first ? "\n" : ",\n") << "    \""
                << telemetry::jsonEscape(k) << "\": " << v;
            first = false;
        }
        out << (first ? "}" : "\n  }") << "\n}\n";
        return bool(out);
    }

  private:
    std::string name_;
    std::map<std::string, double> metrics_;
    std::map<std::string, std::string> notes_;
};

} // namespace vmmx::bench

#endif // VMMX_BENCH_BENCH_UTIL_HH
