/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries: build a
 * kernel or app trace for a flavour and time it on a Table III/IV
 * machine.
 */

#ifndef VMMX_BENCH_BENCH_UTIL_HH
#define VMMX_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <map>

#include "apps/app.hh"
#include "common/table.hh"
#include "harness/runner.hh"
#include "kernels/kernel.hh"

namespace vmmx::bench
{

struct TimedRun
{
    RunResult result;
    u64 traceLength = 0;
    std::array<u64, numInstClasses> instByClass{};
};

inline std::vector<InstRecord>
kernelTrace(const std::string &kernel, SimdKind kind)
{
    auto k = makeKernel(kernel);
    MemImage mem(16u << 20);
    Rng rng(0xbeef);
    k->prepare(mem, rng);
    Program p(mem, kind);
    k->emit(p);
    return p.takeTrace();
}

inline std::vector<InstRecord>
appTrace(const std::string &app, SimdKind kind)
{
    auto a = makeApp(app);
    MemImage mem(32u << 20);
    Rng rng(0xbeef);
    a->prepare(mem, rng);
    Program p(mem, kind);
    a->emit(p);
    return p.takeTrace();
}

inline TimedRun
time(const std::vector<InstRecord> &trace, SimdKind kind, unsigned way,
     const Config &overrides = {})
{
    TimedRun t;
    t.traceLength = trace.size();
    auto machine = makeMachine(kind, way, overrides);
    t.result = runTrace(machine, trace);
    t.instByClass = t.result.core.instByClass;
    return t;
}

/** Cache of traces keyed by (name, kind) for multi-way sweeps. */
class TraceCache
{
  public:
    const std::vector<InstRecord> &
    kernel(const std::string &name, SimdKind kind)
    {
        auto key = name + "/" + vmmx::name(kind);
        auto it = cache_.find(key);
        if (it == cache_.end())
            it = cache_.emplace(key, kernelTrace(name, kind)).first;
        return it->second;
    }

    const std::vector<InstRecord> &
    app(const std::string &name, SimdKind kind)
    {
        auto key = "app:" + name + "/" + vmmx::name(kind);
        auto it = cache_.find(key);
        if (it == cache_.end())
            it = cache_.emplace(key, appTrace(name, kind)).first;
        return it->second;
    }

  private:
    std::map<std::string, std::vector<InstRecord>> cache_;
};

} // namespace vmmx::bench

#endif // VMMX_BENCH_BENCH_UTIL_HH
