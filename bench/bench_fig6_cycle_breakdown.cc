/**
 * @file
 * Figure 6: dynamic cycle distribution of jpegdec -- vector-region vs
 * scalar cycles, normalised to the 2-way MMX64 total.
 *
 * The grid and the normalised breakdown are a declarative Study: the
 * points-layout report with the *_of_base metrics renders each
 * configuration's scalar / vector / total cycles as a percentage of the
 * baseline (2-way mmx64) total -- the Figure 6 shape -- plus the vector
 * share of each configuration's own runtime.
 */

#include <iostream>

#include "common/logging.hh"
#include "harness/study.hh"

using namespace vmmx;

int
main()
{
    setQuiet(true);
    std::cout << "Figure 6: cycle count distribution, jpegdec "
                 "(normalised to 2-way mmx64 = 100)\n\n";

    StudySpec spec;
    spec.apps = {"jpegdec"};
    spec.report.layout = ReportSpec::Layout::Points;
    spec.report.metrics = {ReportSpec::Metric::ScalarOfBase,
                           ReportSpec::Metric::VectorOfBase,
                           ReportSpec::Metric::TotalOfBase,
                           ReportSpec::Metric::VectorPct};
    spec.report.precision = 1;

    Study study(std::move(spec));
    study.writeReport(std::cout, study.run());

    std::cout << "\nPaper headline checks: VMMX128 removes most of the "
                 "2-way MMX64 vector-region\ntime; on the 8-way VMMX128 "
                 "the vector region is a few percent of the total\n"
                 "(Amdahl: the scalar code now dominates).\n";
    return 0;
}
