/**
 * @file
 * Figure 6: dynamic cycle distribution of jpegdec -- vector-region vs
 * scalar cycles, normalised to the 2-way MMX64 total.
 */

#include "bench_util.hh"

using namespace vmmx;
using namespace vmmx::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Figure 6: cycle count distribution, jpegdec "
                 "(normalised to 2-way mmx64 = 100)\n\n";

    double base = 0;

    TextTable table({"config", "scalar", "vector", "total",
                     "vector %"});
    for (unsigned way : {2u, 4u, 8u}) {
        for (auto kind : allSimdKinds) {
            auto t = time(appTrace("jpegdec", kind), kind, way);
            double sc = double(t.result.core.scalarCycles);
            double vc = double(t.result.core.vectorCycles);
            if (way == 2 && kind == SimdKind::MMX64)
                base = sc + vc;
            table.addRow({std::to_string(way) + "-way " + name(kind),
                          TextTable::num(100.0 * sc / base, 1),
                          TextTable::num(100.0 * vc / base, 1),
                          TextTable::num(100.0 * (sc + vc) / base, 1),
                          TextTable::num(100.0 * vc / (sc + vc), 1)});
        }
    }
    table.print(std::cout);

    std::cout << "\nPaper headline checks: VMMX128 removes most of the "
                 "2-way MMX64 vector-region\ntime; on the 8-way VMMX128 "
                 "the vector region is a few percent of the total\n"
                 "(Amdahl: the scalar code now dominates).\n";
    return 0;
}
