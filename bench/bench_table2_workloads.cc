/**
 * @file
 * Table II: the benchmark set, augmented with measured per-flavour
 * trace characteristics (dynamic instructions and vector share).
 */

#include "bench_util.hh"

using namespace vmmx;
using namespace vmmx::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Table II: benchmark set description (measured)\n\n";

    TextTable table({"kernel", "description", "data size", "insts mmx64",
                     "insts vmmx128", "vec% mmx64", "vec% vmmx128"});

    for (const auto &kn : kernelNames()) {
        auto k = makeKernel(kn);
        std::array<u64, 4> total{};
        std::array<u64, 4> vec{};
        for (auto kind : {SimdKind::MMX64, SimdKind::VMMX128}) {
            const auto &trace = kernelTrace(kn, kind);
            for (const auto &inst : trace) {
                ++total[size_t(kind)];
                if (inst.isVector())
                    ++vec[size_t(kind)];
            }
        }
        auto pct = [&](SimdKind kind) {
            size_t i = size_t(kind);
            return TextTable::num(100.0 * double(vec[i]) /
                                  double(total[i]), 1);
        };
        table.addRow({kn, k->description(), k->dataSize(),
                      std::to_string(total[size_t(SimdKind::MMX64)]),
                      std::to_string(total[size_t(SimdKind::VMMX128)]),
                      pct(SimdKind::MMX64), pct(SimdKind::VMMX128)});
    }
    table.print(std::cout);

    std::cout << "\nApplications:\n\n";
    TextTable apps({"app", "description", "insts mmx64", "insts vmmx128"});
    for (const auto &an : appNames()) {
        auto a = makeApp(an);
        u64 m64 = appTrace(an, SimdKind::MMX64).size();
        u64 v128 = appTrace(an, SimdKind::VMMX128).size();
        apps.addRow({an, a->description(), std::to_string(m64),
                     std::to_string(v128)});
    }
    apps.print(std::cout);
    return 0;
}
