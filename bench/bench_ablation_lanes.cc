/**
 * @file
 * Ablation B: vector lanes per VMMX functional unit (the paper scales
 * performance by adding lanes without growing register-file ports).
 */

#include "bench_util.hh"

using namespace vmmx;
using namespace vmmx::bench;

int
main()
{
    setQuiet(true);
    std::cout << "Ablation: lanes per vector FU (2-way VMMX128 cycles)\n\n";

    TextTable table({"kernel", "1 lane", "2 lanes", "4 lanes",
                     "8 lanes"});
    for (const std::string kn :
         {"idct", "motion1", "motion2", "ycc", "h2v2"}) {
        const auto &trace = kernelTrace(kn, SimdKind::VMMX128);
        std::vector<std::string> row = {kn};
        for (u64 lanes : {1, 2, 4, 8}) {
            Config cfg;
            cfg.set("core.lanes", s64(lanes));
            auto t = time(trace, SimdKind::VMMX128, 2, cfg);
            row.push_back(std::to_string(t.result.cycles()));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nReturns diminish past 4 lanes: VL=16 and the memory "
                 "port bound the benefit\n(the paper's rationale for "
                 "1x4/2x4/3x4 configurations).\n";
    return 0;
}
