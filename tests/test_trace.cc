/**
 * @file
 * Trace-DSL tests: scalar semantics vs native C++, control-flow
 * emission, register frames, bitstream round trips, and the matrix
 * engine's memory/transpose/partial operations.
 */

#include <gtest/gtest.h>

#include "apps/bitstream.hh"
#include "harness/runner.hh"
#include "kernels/kernel.hh"
#include "common/rng.hh"
#include "common/saturate.hh"
#include "trace/mmx.hh"
#include "trace/program.hh"
#include "trace/vmmx.hh"

namespace vmmx
{
namespace
{

TEST(ProgramScalar, ArithmeticMatchesNative)
{
    MemImage mem(1 << 16);
    Program p(mem, SimdKind::MMX64);
    Rng rng(5);
    SReg a = p.sreg();
    SReg b = p.sreg();
    SReg c = p.sreg();
    for (int i = 0; i < 200; ++i) {
        u64 x = rng.next();
        u64 y = rng.next() | 1;
        p.li(a, x);
        p.li(b, y);
        p.add(c, a, b);
        EXPECT_EQ(p.val(c), x + y);
        p.sub(c, a, b);
        EXPECT_EQ(p.val(c), x - y);
        p.mul(c, a, b);
        EXPECT_EQ(p.val(c), x * y);
        p.and_(c, a, b);
        EXPECT_EQ(p.val(c), x & y);
        p.srai(c, a, 9);
        EXPECT_EQ(s64(p.val(c)), asr64(s64(x), 9));
        p.srl(c, a, b);
        EXPECT_EQ(p.val(c), x >> (y & 63));
    }
}

TEST(ProgramScalar, LoadStoreSizesAndSignExtension)
{
    MemImage mem(1 << 16);
    Program p(mem, SimdKind::MMX64);
    Addr buf = mem.alloc(64);
    SReg a = p.sreg();
    SReg addr = p.sreg();
    p.li(addr, buf);
    p.li(a, 0xfff6); // -10 as s16
    p.store(a, addr, 0, 2);
    p.load(a, addr, 0, 2, true);
    EXPECT_EQ(s64(p.val(a)), -10);
    p.load(a, addr, 0, 2, false);
    EXPECT_EQ(p.val(a), 0xfff6u);
}

TEST(ProgramScalar, ForLoopEmitsOverhead)
{
    MemImage mem(1 << 16);
    Program p(mem, SimdKind::MMX64);
    SReg acc = p.sreg();
    p.li(acc, 0);
    size_t before = p.trace().size();
    p.forLoop(10, [&](SReg i) { p.add(acc, acc, i); });
    size_t emitted = p.trace().size() - before;
    // init (2) + 10 x (body 1 + incr 1 + branch 1)
    EXPECT_EQ(emitted, 2u + 30u);
    EXPECT_EQ(p.val(acc), 45u);
    // The loop branch is taken 9 times, not-taken once.
    unsigned taken = 0, total = 0;
    for (const auto &inst : p.trace()) {
        if (inst.isBranch()) {
            ++total;
            taken += inst.taken;
        }
    }
    EXPECT_EQ(total, 10u);
    EXPECT_EQ(taken, 9u);
}

TEST(ProgramScalar, FramesReuseRegisters)
{
    MemImage mem(1 << 16);
    Program p(mem, SimdKind::MMX64);
    auto f = p.mark();
    SReg a = p.sreg();
    u8 first = a.idx;
    p.release(f);
    SReg b = p.sreg();
    EXPECT_EQ(b.idx, first);
}

TEST(ProgramScalar, BranchSitesDiffer)
{
    MemImage mem(1 << 16);
    Program p(mem, SimdKind::MMX64);
    SReg a = p.sreg();
    p.li(a, 1);
    p.brEqI(a, 1);
    p.brEqI(a, 1);
    const auto &tr = p.trace();
    ASSERT_GE(tr.size(), 3u);
    EXPECT_NE(tr[1].staticId, tr[2].staticId);
}

TEST(Bitstream, RoundTripRandomFields)
{
    MemImage mem(1 << 16);
    Addr buf = mem.alloc(4096);
    Rng rng(11);
    std::vector<std::pair<u64, unsigned>> fields;
    {
        Program p(mem, SimdKind::MMX64);
        DslBitWriter bw(p, buf);
        SReg v = p.sreg();
        for (int i = 0; i < 300; ++i) {
            unsigned n = 1 + unsigned(rng.below(24));
            u64 val = rng.next() & ((u64(1) << n) - 1);
            fields.push_back({val, n});
            p.li(v, val);
            bw.put(v, n);
        }
        bw.flush();
    }
    {
        Program p(mem, SimdKind::MMX64);
        DslBitReader br(p, buf);
        SReg v = p.sreg();
        for (auto [val, n] : fields)
            EXPECT_EQ(br.get(v, n), val);
    }
}

TEST(VmmxEngine, StridedLoadGathersRows)
{
    MemImage mem(1 << 16);
    Addr buf = mem.alloc(4096);
    for (unsigned i = 0; i < 1024; ++i)
        mem.write8(buf + i, u8(i));
    Program p(mem, SimdKind::VMMX64);
    Vmmx v(p);
    SReg base = p.sreg();
    SReg stride = p.sreg();
    p.li(base, buf);
    p.li(stride, 100);
    v.setvl(4);
    VR x = p.vreg();
    v.load(x, base, 3, stride);
    for (unsigned r = 0; r < 4; ++r)
        for (unsigned c = 0; c < 8; ++c)
            EXPECT_EQ(p.mval(x)[r].byte(c), u8(3 + 100 * r + c));
}

TEST(VmmxEngine, TransposeIsInvolution)
{
    MemImage mem(1 << 16);
    Addr buf = mem.alloc(4096);
    Rng rng(13);
    for (unsigned i = 0; i < 256; ++i)
        mem.write8(buf + i, rng.byte());
    Program p(mem, SimdKind::VMMX128);
    Vmmx v(p);
    SReg base = p.sreg();
    p.li(base, buf);
    v.setvl(8);
    VR x = p.vreg();
    VR t = p.vreg();
    VR u = p.vreg();
    v.loadU(x, base, 0);
    v.vtransp(t, x);
    v.vtransp(u, t);
    for (unsigned r = 0; r < 8; ++r) {
        for (unsigned c = 0; c < 8; ++c) {
            EXPECT_EQ(p.mval(t)[r].word(c), p.mval(x)[c].word(r));
            EXPECT_EQ(p.mval(u)[r].word(c), p.mval(x)[r].word(c));
        }
    }
}

TEST(VmmxEngine, PartialOpsPreserveOtherRows)
{
    MemImage mem(1 << 16);
    Addr buf = mem.alloc(4096);
    for (unsigned i = 0; i < 512; ++i)
        mem.write8(buf + i, u8(i * 7));
    Program p(mem, SimdKind::VMMX64);
    Vmmx v(p);
    SReg base = p.sreg();
    SReg stride = p.sreg();
    p.li(base, buf);
    p.li(stride, 8);
    v.setvl(8);
    VR x = p.vreg();
    v.loadU(x, base, 0);
    MatrixReg before = p.mval(x);
    v.loadPartial(x, 2, 3, base, 256, stride);
    for (unsigned r = 0; r < 8; ++r) {
        if (r >= 2 && r < 5) {
            EXPECT_EQ(p.mval(x)[r].byte(0), u8((256 + (r - 2) * 8) * 7));
        } else {
            EXPECT_EQ(p.mval(x)[r], before[r]);
        }
    }
}

TEST(VmmxEngine, SetvlLimitsRowsProcessed)
{
    MemImage mem(1 << 16);
    Addr buf = mem.alloc(4096);
    Program p(mem, SimdKind::VMMX64);
    Vmmx v(p);
    SReg base = p.sreg();
    p.li(base, buf);
    v.setvl(3);
    VR x = p.vreg();
    VR y = p.vreg();
    v.vzero(x);
    v.vzero(y);
    SReg one = p.sreg();
    p.li(one, 1);
    v.vsplat(x, one, ElemWidth::B8);
    v.padd(y, x, x, ElemWidth::B8);
    EXPECT_EQ(p.mval(y)[0].byte(0), 2);
    EXPECT_EQ(p.mval(y)[2].byte(0), 2);
    EXPECT_EQ(p.mval(y)[3].byte(0), 0); // beyond VL untouched
}

TEST(MmxEngine, LowTransfersTouchOnly8Bytes)
{
    MemImage mem(1 << 16);
    Addr buf = mem.alloc(64);
    for (unsigned i = 0; i < 32; ++i)
        mem.write8(buf + i, 0xaa);
    Program p(mem, SimdKind::MMX128);
    Mmx m(p);
    SReg base = p.sreg();
    p.li(base, buf);
    VR x = p.vreg();
    m.pzero(x);
    m.storeLow(x, base, 0);
    EXPECT_EQ(mem.read64(buf), 0u);
    EXPECT_EQ(mem.read64(buf + 8), 0xaaaaaaaaaaaaaaaaull);
    m.loadLow(x, base, 8);
    EXPECT_EQ(p.vval(x).lo, 0xaaaaaaaaaaaaaaaaull);
    EXPECT_EQ(p.vval(x).hi, 0u);
}

TEST(Determinism, SameSeedSameTraceSameCycles)
{
    auto build = []() {
        MemImage mem(16u << 20);
        Rng rng(123);
        auto k = makeKernel("motion1");
        k->prepare(mem, rng);
        Program p(mem, SimdKind::VMMX128);
        k->emit(p);
        return p.takeTrace();
    };
    auto t1 = build();
    auto t2 = build();
    ASSERT_EQ(t1.size(), t2.size());
    auto m = makeMachine(SimdKind::VMMX128, 4);
    EXPECT_EQ(runTrace(m, t1).cycles(), runTrace(m, t2).cycles());
}

} // namespace
} // namespace vmmx
