/**
 * @file
 * Memory-system timing and coherence tests: hit/miss latencies, port
 * occupancy, MSHR merging, vector stride-one vs strided rates, and the
 * exclusive-bit + inclusion protocol between the scalar L1 path and the
 * vector L2 path.
 */

#include <gtest/gtest.h>

#include "mem/memsys.hh"

namespace vmmx
{
namespace
{

MemParams
params2way()
{
    return MemParams::forWay(2);
}

TEST(MemSys, ColdMissThenHit)
{
    MemorySystem ms(params2way());
    Cycle t1 = ms.scalarAccess(0x1000, 8, false, 0);
    // Cold: L1 miss + L2 miss + main memory.
    EXPECT_GT(t1, 500u);
    Cycle t2 = ms.scalarAccess(0x1000, 8, false, t1);
    EXPECT_EQ(t2, t1 + ms.params().l1.latency);
    EXPECT_EQ(ms.l1Hits(), 1u);
    EXPECT_EQ(ms.l1Misses(), 1u);
}

TEST(MemSys, L2HitAfterL1Eviction)
{
    MemParams mp = params2way();
    MemorySystem ms(mp);
    Cycle t = ms.scalarAccess(0x1000, 8, false, 0);
    // Touch enough conflicting lines to evict 0x1000 from the 4-way L1
    // (same set every 32KB/4 = 8KB... walk multiples of the set stride).
    u32 setStride = mp.l1.sizeBytes / mp.l1.assoc;
    for (u32 i = 1; i <= mp.l1.assoc + 1; ++i)
        t = ms.scalarAccess(0x1000 + i * setStride, 8, false, t);
    u64 l2HitsBefore = ms.l2Hits();
    Cycle t2 = ms.scalarAccess(0x1000, 8, false, t);
    EXPECT_GT(ms.l2Hits(), l2HitsBefore);
    EXPECT_LT(t2, t + 100); // L2 hit, not a 500-cycle memory trip
}

TEST(MemSys, PortOccupancySerializes)
{
    MemorySystem ms(params2way()); // one 8-byte L1 port
    // Warm the line.
    Cycle warm = ms.scalarAccess(0x2000, 8, false, 0);
    Cycle a = ms.scalarAccess(0x2000, 8, false, warm + 10);
    Cycle b = ms.scalarAccess(0x2008, 8, false, warm + 10);
    // Same start cycle: second access must wait for the single port.
    EXPECT_NE(a, b);
}

TEST(MemSys, WidePackedAccessHoldsPortLonger)
{
    MemParams mp = params2way();
    auto measure = [&](u32 firstBytes) {
        MemorySystem ms(mp);
        // Warm both lines.
        Cycle t = ms.scalarAccess(0x3000, 8, false, 0);
        t = ms.scalarAccess(0x3040, 8, false, t);
        // Back-to-back: a 16-byte first access holds the single 8-byte
        // port for two cycles and delays the second access.
        Cycle start = t + 10;
        ms.scalarAccess(0x3000, firstBytes, false, start);
        return ms.scalarAccess(0x3040, 8, false, start);
    };
    EXPECT_GT(measure(16), measure(8));
}

TEST(MemSys, MshrMergesOutstandingMisses)
{
    MemorySystem ms(params2way());
    Cycle a = ms.scalarAccess(0x4000, 8, false, 0);
    // Second access to the same line while the miss is outstanding
    // completes with the first fill, not after a second memory trip.
    Cycle b = ms.scalarAccess(0x4008, 8, false, 1);
    EXPECT_LE(b, a + 8);
    EXPECT_EQ(ms.l2Misses(), 1u);
}

TEST(MemSys, VectorStrideOneFasterThanStrided)
{
    MemParams mp = MemParams::forWay(8);
    mp.vecPortBytes = 32;
    MemorySystem ms(mp);
    // Warm both regions in the L2.
    ms.vectorAccess(0x8000, 16, 16, 16, false, 0);
    ms.vectorAccess(0x20000, 16, 720, 16, false, 0);
    Cycle start = 10000;
    Cycle unit = ms.vectorAccess(0x8000, 16, 16, 16, false, start) - start;
    Cycle strided =
        ms.vectorAccess(0x20000, 16, 720, 16, false, start + unit + 1) -
        (start + unit + 1);
    // 256 bytes at 32 B/cyc vs one 64-bit element per cycle.
    EXPECT_LT(unit, strided);
}

TEST(MemSys, VectorStoreInvalidatesL1Copy)
{
    MemorySystem ms(params2way());
    // Scalar brings the line into L1 and dirties it.
    Cycle t = ms.scalarAccess(0x9000, 8, true, 0);
    EXPECT_EQ(ms.coherenceInvalidations(), 0u);
    // A vector store to the same line must flush + invalidate it.
    t = ms.vectorAccess(0x9000, 8, 8, 2, true, t);
    EXPECT_GE(ms.coherenceInvalidations(), 1u);
    // The next scalar access misses the L1 (hits L2).
    u64 missesBefore = ms.l1Misses();
    ms.scalarAccess(0x9000, 8, false, t);
    EXPECT_EQ(ms.l1Misses(), missesBefore + 1);
}

TEST(MemSys, InclusionHoldsOnL2Eviction)
{
    MemParams mp = params2way();
    MemorySystem ms(mp);
    Cycle t = ms.scalarAccess(0xa000, 8, false, 0);
    // Thrash the L2 set holding 0xa000 (2-way L2).
    u32 setStride = mp.l2.sizeBytes / mp.l2.assoc;
    for (u32 i = 1; i <= mp.l2.assoc + 1; ++i)
        t = ms.vectorAccess(0xa000 + i * setStride, 8, 8, 1, false, t);
    // The L1 copy must have been invalidated with its L2 parent.
    u64 missesBefore = ms.l1Misses();
    ms.scalarAccess(0xa000, 8, false, t);
    EXPECT_EQ(ms.l1Misses(), missesBefore + 1);
}

TEST(MemSys, ResetRestoresColdState)
{
    MemorySystem ms(params2way());
    Cycle a = ms.scalarAccess(0xb000, 8, false, 0);
    ms.reset();
    Cycle b = ms.scalarAccess(0xb000, 8, false, 0);
    EXPECT_EQ(a, b);
}

// Regression: a store that misses both levels must mark the L2 line
// dirty (scalarAccess used to pass isWrite=false to l2Lookup), so its
// later L2 eviction is a writeback to memory, not a silent drop.
TEST(MemSys, StoreMissDirtiesL2Line)
{
    MemParams mp = params2way();
    MemorySystem ms(mp);
    // Store that misses the L1 and the L2.
    Cycle t = ms.scalarAccess(0xc000, 8, true, 0);
    EXPECT_EQ(ms.l2WritebackCount(), 0u);
    // Thrash the L2 set holding 0xc000 with clean loads until the dirty
    // line is evicted; its eviction must count as an L2 writeback.
    u32 setStride = mp.l2.sizeBytes / mp.l2.assoc;
    for (u32 i = 1; i <= mp.l2.assoc + 1; ++i) {
        t += 10000; // past the fill, so misses do not merge in the MSHRs
        t = ms.scalarAccess(0xc000 + Addr(i) * setStride, 8, false, t);
    }
    EXPECT_GE(ms.l2WritebackCount(), 1u);
}

// The merge path of the fixed l2Lookup: a store folding into an
// outstanding miss of the same line must also leave the line dirty.
TEST(MemSys, StoreMergingIntoOutstandingMissDirtiesL2Line)
{
    MemParams mp = params2way();
    MemorySystem ms(mp);
    // Load starts the 500-cycle miss to 0xd000.
    Cycle t = ms.scalarAccess(0xd000, 8, false, 0);
    // Evict the (clean) L1 copy while the L2 fill is still in flight, so
    // the following store reaches l2Lookup instead of hitting the L1.
    u32 l1SetStride = mp.l1.sizeBytes / mp.l1.assoc;
    Cycle w = 1;
    for (u32 i = 1; i <= mp.l1.assoc; ++i)
        w = ms.scalarAccess(0xd000 + Addr(i) * l1SetStride, 8, false, w) -
            400; // stay inside the original miss window
    // Store merges into the outstanding miss of the same line.
    ms.scalarAccess(0xd008, 8, true, w);
    // Thrash the L2 set: the merged store's line must write back.
    u32 setStride = mp.l2.sizeBytes / mp.l2.assoc;
    for (u32 i = 1; i <= mp.l2.assoc + 1; ++i) {
        t += 10000;
        t = ms.scalarAccess(0xd000 + Addr(i) * setStride, 8, false, t);
    }
    EXPECT_GE(ms.l2WritebackCount(), 1u);
}

} // namespace
} // namespace vmmx
