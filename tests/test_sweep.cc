/**
 * @file
 * Sweep-engine and trace-cache tests: a multi-threaded sweep must be
 * bit-identical to the serial loop, results must come back in submission
 * order, and repeated trace lookups must hit the cache instead of
 * regenerating.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "harness/sweep.hh"
#include "kernels/kernel.hh"
#include "trace/trace_cache.hh"

namespace vmmx
{
namespace
{

class SweepTest : public testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    /** A private cache per test so generation counts start at zero. */
    TraceCache cache;
};

TEST_F(SweepTest, TraceCacheGeneratesOncePerKey)
{
    EXPECT_EQ(cache.generations(), 0u);
    auto t1 = cache.kernel("idct", SimdKind::VMMX128);
    EXPECT_EQ(cache.generations(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    // Second and third lookups of the same key: cache hits, no
    // regeneration, same shared immutable trace object.
    auto t2 = cache.kernel("idct", SimdKind::VMMX128);
    auto t3 = cache.kernel("idct", SimdKind::VMMX128);
    EXPECT_EQ(cache.generations(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(t1.get(), t2.get());
    EXPECT_EQ(t1.get(), t3.get());

    // A different key generates again.
    cache.kernel("idct", SimdKind::MMX64);
    EXPECT_EQ(cache.generations(), 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST_F(SweepTest, TraceCacheDistinguishesKindAndWorkload)
{
    auto a = cache.kernel("motion1", SimdKind::MMX64);
    auto b = cache.kernel("motion1", SimdKind::MMX128);
    auto c = cache.kernel("motion2", SimdKind::MMX64);
    EXPECT_EQ(cache.generations(), 3u);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    // Traces are genuinely different programs.
    EXPECT_NE(a->size(), 0u);
    EXPECT_NE(b->size(), 0u);
}

TEST_F(SweepTest, CachedTraceMatchesDirectGeneration)
{
    auto cached = cache.kernel("ycc", SimdKind::VMMX64);

    auto k = makeKernel("ycc");
    MemImage mem(TraceCache::kernelImageBytes);
    Rng rng(TraceCache::defaultSeed);
    k->prepare(mem, rng);
    Program p(mem, SimdKind::VMMX64);
    k->emit(p);
    auto direct = p.takeTrace();

    ASSERT_EQ(cached->size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ((*cached)[i].op, direct[i].op) << "at " << i;
        EXPECT_EQ((*cached)[i].addr, direct[i].addr) << "at " << i;
        EXPECT_EQ((*cached)[i].staticId, direct[i].staticId) << "at " << i;
    }
}

TEST_F(SweepTest, ParallelSweepBitIdenticalToSerial)
{
    // >= 8 (kernel x flavour x width) points with distinct shapes.
    SweepOptions serialOpts;
    serialOpts.cache = &cache;
    serialOpts.threads = 1;
    SweepOptions poolOpts;
    poolOpts.cache = &cache;
    poolOpts.threads = 4;

    auto build = [](Sweep &s) {
        s.addKernelGrid({"idct", "h2v2"},
                        {SimdKind::MMX64, SimdKind::VMMX128}, {2, 4});
        s.addKernel("motion1", SimdKind::MMX128, 8);
        s.addApp("gsmenc", SimdKind::VMMX64, 4);
    };

    Sweep serial(serialOpts);
    Sweep pooled(poolOpts);
    build(serial);
    build(pooled);
    ASSERT_GE(serial.size(), 8u);

    auto a = serial.runSerial();
    auto b = pooled.run();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].sameRun(b[i])) << "point " << i << " ("
                                        << a[i].point.label() << ")";
        EXPECT_EQ(a[i].point.label(), b[i].point.label());
    }

    // Repeated threaded runs stay deterministic.
    auto c = pooled.run();
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(a[i].sameRun(c[i])) << "point " << i;
}

TEST_F(SweepTest, SweepSharesTracesAcrossPoints)
{
    SweepOptions opts;
    opts.cache = &cache;
    opts.threads = 4;
    Sweep sweep(opts);
    // 3 widths x 2 flavours of one kernel: 6 points, 2 distinct traces.
    sweep.addKernelGrid({"rgb"}, {SimdKind::MMX64, SimdKind::VMMX128},
                        {2, 4, 8});
    auto results = sweep.run();
    EXPECT_EQ(results.size(), 6u);
    EXPECT_EQ(cache.generations(), 2u);
    EXPECT_EQ(cache.hits(), 4u);

    // Same trace => same dynamic length at every width.
    EXPECT_EQ(results[0].traceLength, results[1].traceLength);
    EXPECT_EQ(results[0].traceLength, results[2].traceLength);
}

TEST_F(SweepTest, LabelIncludesAblationOverrides)
{
    // Two points that differ only in a knob must not print identically.
    Config robSmall;
    robSmall.set("core.robEntries", s64(32));
    Config robLarge;
    robLarge.set("core.robEntries", s64(128));
    robLarge.set("mem.l2Latency", s64(9));

    Sweep sweep;
    sweep.addKernel("idct", SimdKind::VMMX128, 4, robSmall);
    sweep.addKernel("idct", SimdKind::VMMX128, 4, robLarge);
    sweep.addKernel("idct", SimdKind::VMMX128, 4);

    const auto &pts = sweep.points();
    EXPECT_NE(pts[0].label(), pts[1].label());
    EXPECT_NE(pts[0].label(), pts[2].label());
    EXPECT_EQ(pts[2].label(), "idct/vmmx128/4-way");
    EXPECT_EQ(pts[0].label(),
              "idct/vmmx128/4-way+core.robEntries=32");
    // Multiple overrides all appear (sorted by key).
    EXPECT_EQ(pts[1].label(),
              "idct/vmmx128/4-way+core.robEntries=128+mem.l2Latency=9");
}

TEST_F(SweepTest, ExplicitTracePointsRun)
{
    auto trace = cache.kernel("addblock", SimdKind::MMX64);
    auto results = sweepTrace(trace, SimdKind::MMX64, {2, 4, 8});
    ASSERT_EQ(results.size(), 3u);
    // Wider machines are not slower on the same trace.
    EXPECT_GE(results[0].cycles(), results[1].cycles());
    EXPECT_GE(results[1].cycles(), results[2].cycles());
}

TEST_F(SweepTest, ResultsMatchDirectRunTrace)
{
    SweepOptions opts;
    opts.cache = &cache;
    opts.threads = 2;
    Sweep sweep(opts);
    sweep.addKernel("ltpfilt", SimdKind::VMMX128, 4);
    auto results = sweep.run();
    ASSERT_EQ(results.size(), 1u);

    auto trace = cache.kernel("ltpfilt", SimdKind::VMMX128);
    RunResult direct = runTrace(makeMachine(SimdKind::VMMX128, 4), *trace);
    EXPECT_TRUE(results[0].result == direct);
}

} // namespace
} // namespace vmmx
