/**
 * @file
 * Sweep-engine and trace-repository tests: a multi-threaded sweep must
 * be bit-identical to the serial loop, results must come back in
 * submission order, and repeated trace lookups must hit the repository
 * instead of regenerating.  The batched engine adds its own contract:
 * running N machine configurations through one trace pass
 * (runTraceBatch, or a Sweep with batch on) must be bit-identical to N
 * independent runTrace() calls, for any batch size and any knob
 * overrides -- and replaying the repository's pre-decoded tier-2 stream
 * must be bit-identical to decoding on the fly.
 */

#include <gtest/gtest.h>

#include <random>

#include "common/logging.hh"
#include "harness/sweep.hh"
#include "kernels/kernel.hh"
#include "trace/trace_repo.hh"

namespace vmmx
{
namespace
{

class SweepTest : public testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    /** A private repository per test so counters start at zero.
     *  Budgets come from the environment, so a CI run with tiny
     *  budgets exercises the eviction/refill paths under every test
     *  that only asserts results (count-sensitive tests below build
     *  their own explicitly unbounded repository). */
    TraceRepository repo;
};

TEST_F(SweepTest, RepositoryGeneratesOncePerKey)
{
    TraceRepository unbounded(nullptr, 0, 0);
    EXPECT_EQ(unbounded.generations(), 0u);
    auto t1 = unbounded.kernel("idct", SimdKind::VMMX128);
    EXPECT_EQ(unbounded.generations(), 1u);
    EXPECT_EQ(unbounded.rawStats().hits, 0u);

    // Second and third lookups of the same key: raw-tier hits, no
    // regeneration, same shared immutable trace object.
    auto t2 = unbounded.kernel("idct", SimdKind::VMMX128);
    auto t3 = unbounded.kernel("idct", SimdKind::VMMX128);
    EXPECT_EQ(unbounded.generations(), 1u);
    EXPECT_EQ(unbounded.rawStats().hits, 2u);
    EXPECT_EQ(t1.get(), t2.get());
    EXPECT_EQ(t1.get(), t3.get());

    // A different key generates again.
    auto t4 = unbounded.kernel("idct", SimdKind::MMX64);
    EXPECT_EQ(unbounded.generations(), 2u);
    EXPECT_EQ(unbounded.size(), 2u);
}

TEST_F(SweepTest, RepositoryDistinguishesKindAndWorkload)
{
    auto a = repo.kernel("motion1", SimdKind::MMX64);
    auto b = repo.kernel("motion1", SimdKind::MMX128);
    auto c = repo.kernel("motion2", SimdKind::MMX64);
    EXPECT_EQ(repo.generations(), 3u);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    // Traces are genuinely different programs.
    EXPECT_NE(a->size(), 0u);
    EXPECT_NE(b->size(), 0u);
}

TEST_F(SweepTest, CachedTraceMatchesDirectGeneration)
{
    auto cached = repo.kernel("ycc", SimdKind::VMMX64);

    auto k = makeKernel("ycc");
    MemImage mem(TraceRepository::kernelImageBytes);
    Rng rng(TraceRepository::defaultSeed);
    k->prepare(mem, rng);
    Program p(mem, SimdKind::VMMX64);
    k->emit(p);
    auto direct = p.takeTrace();

    ASSERT_EQ(cached->size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ((*cached)[i].op, direct[i].op) << "at " << i;
        EXPECT_EQ((*cached)[i].addr, direct[i].addr) << "at " << i;
        EXPECT_EQ((*cached)[i].staticId, direct[i].staticId) << "at " << i;
    }
}

TEST_F(SweepTest, DecodedStreamMatchesOnTheFlyDecode)
{
    // The tier-2 contract: replaying the repository's decoded stream is
    // bit-identical to handing runTrace the raw records.
    auto trace = repo.kernel("h2v2", SimdKind::VMMX128);
    auto stream = repo.decoded(
        {false, "h2v2", SimdKind::VMMX128, TraceRepository::kernelImageBytes,
         TraceRepository::defaultSeed});
    ASSERT_EQ(stream.records(), trace->size());

    for (unsigned way : {2u, 8u}) {
        MachineConfig machine = makeMachine(SimdKind::VMMX128, way);
        RunResult raw = runTrace(machine, *trace);
        RunResult decoded = runTrace(machine, stream.stream());
        EXPECT_TRUE(raw == decoded) << way << "-way";
    }
}

TEST_F(SweepTest, ParallelSweepBitIdenticalToSerial)
{
    // >= 8 (kernel x flavour x width) points with distinct shapes.
    SweepOptions serialOpts;
    serialOpts.repo = &repo;
    serialOpts.threads = 1;
    SweepOptions poolOpts;
    poolOpts.repo = &repo;
    poolOpts.threads = 4;

    auto build = [](Sweep &s) {
        s.addKernelGrid({"idct", "h2v2"},
                        {SimdKind::MMX64, SimdKind::VMMX128}, {2, 4});
        s.addKernel("motion1", SimdKind::MMX128, 8);
        s.addApp("gsmenc", SimdKind::VMMX64, 4);
    };

    Sweep serial(serialOpts);
    Sweep pooled(poolOpts);
    build(serial);
    build(pooled);
    ASSERT_GE(serial.size(), 8u);

    auto a = serial.runSerial();
    auto b = pooled.run();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].sameRun(b[i])) << "point " << i << " ("
                                        << a[i].point.label() << ")";
        EXPECT_EQ(a[i].point.label(), b[i].point.label());
    }

    // Repeated threaded runs stay deterministic.
    auto c = pooled.run();
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(a[i].sameRun(c[i])) << "point " << i;
}

TEST_F(SweepTest, SweepSharesDecodedStreamsAcrossPoints)
{
    TraceRepository unbounded(nullptr, 0, 0);
    SweepOptions opts;
    opts.repo = &unbounded;
    opts.threads = 4;
    opts.batch = false; // per-point jobs: each point looks its trace up
    opts.decoded = true;
    Sweep sweep(opts);
    // 3 widths x 2 flavours of one kernel: 6 points, 2 distinct traces.
    sweep.addKernelGrid({"rgb"}, {SimdKind::MMX64, SimdKind::VMMX128},
                        {2, 4, 8});
    auto results = sweep.run();
    EXPECT_EQ(results.size(), 6u);
    // Each trace was generated and decoded exactly once; the other four
    // per-point lookups were decoded-tier hits.
    EXPECT_EQ(unbounded.generations(), 2u);
    EXPECT_EQ(unbounded.decodes(), 2u);
    EXPECT_EQ(unbounded.decodedStats().hits, 4u);

    // Same trace => same dynamic length at every width.
    EXPECT_EQ(results[0].traceLength, results[1].traceLength);
    EXPECT_EQ(results[0].traceLength, results[2].traceLength);

    // Batched: the whole group resolves its stream once, so the second
    // sweep adds one decoded hit per distinct trace -- and identical
    // results, with still no regeneration or re-decode.
    SweepOptions batched = opts;
    batched.batch = true;
    Sweep grouped(batched);
    grouped.addKernelGrid({"rgb"}, {SimdKind::MMX64, SimdKind::VMMX128},
                          {2, 4, 8});
    auto batchedResults = grouped.run();
    EXPECT_EQ(unbounded.generations(), 2u);
    EXPECT_EQ(unbounded.decodes(), 2u);
    EXPECT_EQ(unbounded.decodedStats().hits, 6u);
    for (size_t i = 0; i < results.size(); ++i)
        EXPECT_TRUE(results[i].sameRun(batchedResults[i])) << "point " << i;
}

TEST_F(SweepTest, DecodedTierOffMatchesDecodedTierOn)
{
    SweepOptions on;
    on.repo = &repo;
    on.threads = 2;
    on.decoded = true;
    SweepOptions off = on;
    off.decoded = false;

    auto build = [](Sweep &s) {
        s.addKernelGrid({"ltpfilt", "comp"},
                        {SimdKind::VMMX64, SimdKind::MMX128}, {2, 8});
    };
    Sweep withTier(on);
    Sweep without(off);
    build(withTier);
    build(without);

    auto a = withTier.run();
    auto b = without.run();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(a[i].sameRun(b[i]))
            << "point " << i << " (" << a[i].point.label() << ")";
}

TEST_F(SweepTest, LabelIncludesAblationOverrides)
{
    // Two points that differ only in a knob must not print identically.
    Config robSmall;
    robSmall.set("core.robEntries", s64(32));
    Config robLarge;
    robLarge.set("core.robEntries", s64(128));
    robLarge.set("mem.l2Latency", s64(9));

    Sweep sweep;
    sweep.addKernel("idct", SimdKind::VMMX128, 4, robSmall);
    sweep.addKernel("idct", SimdKind::VMMX128, 4, robLarge);
    sweep.addKernel("idct", SimdKind::VMMX128, 4);

    const auto &pts = sweep.points();
    EXPECT_NE(pts[0].label(), pts[1].label());
    EXPECT_NE(pts[0].label(), pts[2].label());
    EXPECT_EQ(pts[2].label(), "idct/vmmx128/4-way");
    EXPECT_EQ(pts[0].label(),
              "idct/vmmx128/4-way+core.robEntries=32");
    // Multiple overrides all appear (sorted by key).
    EXPECT_EQ(pts[1].label(),
              "idct/vmmx128/4-way+core.robEntries=128+mem.l2Latency=9");
}

TEST_F(SweepTest, ExplicitTracePointsRun)
{
    auto trace = repo.kernel("addblock", SimdKind::MMX64);
    auto results = sweepTrace(trace.shared(), SimdKind::MMX64, {2, 4, 8});
    ASSERT_EQ(results.size(), 3u);
    // Wider machines are not slower on the same trace.
    EXPECT_GE(results[0].cycles(), results[1].cycles());
    EXPECT_GE(results[1].cycles(), results[2].cycles());
}

TEST_F(SweepTest, ResultsMatchDirectRunTrace)
{
    SweepOptions opts;
    opts.repo = &repo;
    opts.threads = 2;
    Sweep sweep(opts);
    sweep.addKernel("ltpfilt", SimdKind::VMMX128, 4);
    auto results = sweep.run();
    ASSERT_EQ(results.size(), 1u);

    auto trace = repo.kernel("ltpfilt", SimdKind::VMMX128);
    RunResult direct = runTrace(makeMachine(SimdKind::VMMX128, 4), *trace);
    EXPECT_TRUE(results[0].result == direct);
}

/** A machine with randomized ablation knobs -- wide coverage of the
 *  state a SimContext must keep private for batching to be exact. */
MachineConfig
randomMachine(std::mt19937 &rng, SimdKind kind)
{
    auto pick = [&](std::initializer_list<s64> choices) {
        std::vector<s64> v(choices);
        return v[rng() % v.size()];
    };
    unsigned way = unsigned(pick({2, 4, 8}));
    Config knobs;
    if (rng() % 2)
        knobs.set("core.rob", pick({16, 32, 64, 128}));
    if (rng() % 2)
        knobs.set("core.iq", pick({8, 16, 32}));
    if (rng() % 2)
        knobs.set("core.lanes", pick({1, 2, 4}));
    if (rng() % 2)
        knobs.set("core.store_window", pick({0, 16, 64}));
    if (rng() % 2)
        knobs.set("core.bpred", pick({256, 4096}));
    if (rng() % 2)
        knobs.set("mem.l2.latency", pick({6, 12, 20}));
    if (rng() % 2)
        knobs.set("mem.mshrs", pick({2, 8}));
    if (rng() % 2)
        knobs.set("mem.l1.size", pick({16 * 1024, 32 * 1024}));
    return makeMachine(kind, way, knobs);
}

// The batched-execution contract: one trace pass through N randomized
// configurations is bit-identical to N independent runTrace() calls --
// for a batch of one, a pair, and a batch wider than the sweep engine's
// thread pool -- and the pre-decoded (tier-2) pass agrees with both.
TEST_F(SweepTest, RunTraceBatchMatchesPerConfigRunTrace)
{
    for (SimdKind kind : {SimdKind::MMX64, SimdKind::VMMX128}) {
        auto trace = repo.kernel("idct", kind);
        auto stream = repo.decoded(trace.shared());
        std::mt19937 rng(0xbeef);
        for (size_t batchSize : {size_t(1), size_t(2), size_t(9)}) {
            std::vector<MachineConfig> machines;
            machines.reserve(batchSize);
            for (size_t i = 0; i < batchSize; ++i)
                machines.push_back(randomMachine(rng, kind));

            auto batched = runTraceBatch(machines, *trace);
            auto decoded = runTraceBatch(machines, stream.stream());
            ASSERT_EQ(batched.size(), batchSize);
            for (size_t i = 0; i < batchSize; ++i) {
                RunResult alone = runTrace(machines[i], *trace);
                EXPECT_TRUE(batched[i] == alone)
                    << name(kind) << " batch of " << batchSize
                    << ", config " << i;
                EXPECT_TRUE(decoded[i] == alone)
                    << name(kind) << " decoded batch of " << batchSize
                    << ", config " << i;
            }
        }
    }
}

// A batched sweep over a grid with trace groups wider than the thread
// pool must stay bit-identical to the per-point serial reference.
TEST_F(SweepTest, BatchedSweepBitIdenticalToSerial)
{
    SweepOptions serialOpts;
    serialOpts.repo = &repo;
    serialOpts.threads = 1;
    SweepOptions batchedOpts;
    batchedOpts.repo = &repo;
    batchedOpts.threads = 4;
    batchedOpts.batch = true;

    auto build = [](Sweep &s) {
        // One trace replayed on 6 knob variants: a group wider than the
        // 4-thread pool; plus ordinary (flavour x width) groups.
        for (s64 rob : {16, 24, 32, 48, 64, 128}) {
            Config knobs;
            knobs.set("core.rob", rob);
            s.addKernel("h2v2", SimdKind::VMMX64, 4, knobs);
        }
        s.addKernelGrid({"motion1"}, {SimdKind::MMX64, SimdKind::MMX128},
                        {2, 4, 8});
    };

    Sweep serial(serialOpts);
    Sweep batched(batchedOpts);
    build(serial);
    build(batched);

    auto expect = serial.runSerial();
    auto got = batched.run();
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_TRUE(got[i].sameRun(expect[i]))
            << "point " << i << " (" << expect[i].point.label() << ")";
        EXPECT_EQ(got[i].point.label(), expect[i].point.label());
    }

    // The grouping itself: 6 knob variants of one trace form one group.
    auto groups = groupPointsByTrace(batched.points());
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[0].size(), 6u);
    EXPECT_EQ(groups[1].size(), 3u);
    EXPECT_EQ(groups[2].size(), 3u);
}

} // namespace
} // namespace vmmx
