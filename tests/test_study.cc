/**
 * @file
 * Study-API tests: the spec-file text format must round-trip exactly
 * (parse -> format -> parse is the identity), the three Executor
 * backends must produce bit-identical SweepResult vectors on a
 * randomized grid (the seam the future TCP backend plugs into), and
 * the report's derived metrics must agree with hand-computed values
 * straight off the RunStats fields.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include <unistd.h>

#include "common/logging.hh"
#include "common/table.hh"
#include "harness/harness_io.hh"
#include "harness/study.hh"

namespace fs = std::filesystem;

namespace vmmx
{
namespace
{

class StudyTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        dir_ = fs::temp_directory_path() /
               ("vmmx-study-test-" + std::to_string(::getpid()) + "-" +
                testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string storeDir() const { return (dir_ / "store").string(); }

    /** A private repository per test so in-process backends do not
     *  warm each other's process-wide tiers. */
    TraceRepository repo;
    fs::path dir_;
};

// ---- spec-file round-trip ------------------------------------------------

TEST_F(StudyTest, SpecFileRoundTrip)
{
    const std::string text = R"(# a hand-written spec
title = round-trip check

[grid]
kernels = idct, motion1
apps = gsmenc
kinds = mmx64,vmmx128
ways = 2,8
override = core.rob=32
override = core.rob=64,mem.mshrs=4

[exec]
backend = serial
threads = 3
processes = 5
batch = off
decoded = on
raw_budget = 64k
decoded_budget = 2M
store = /tmp/some-store
journal = /tmp/some.vmjl
max_respawns = 5
unit_timeout_ms = 2500
max_unit_attempts = 4

[report]
layout = pivot
metrics = cycles,ipc,speedup
pivot_metric = ipc
baseline = mmx128/4
geomean = on
precision = 3
)";

    StudySpec spec;
    std::string err;
    ASSERT_TRUE(parseStudySpec(text, spec, err)) << err;

    // Spot checks against the hand-written text.
    EXPECT_EQ(spec.title, "round-trip check");
    EXPECT_EQ(spec.kernels, (std::vector<std::string>{"idct", "motion1"}));
    EXPECT_EQ(spec.apps, (std::vector<std::string>{"gsmenc"}));
    EXPECT_EQ(spec.kinds,
              (std::vector<SimdKind>{SimdKind::MMX64, SimdKind::VMMX128}));
    EXPECT_EQ(spec.ways, (std::vector<unsigned>{2, 8}));
    ASSERT_EQ(spec.overrideSets.size(), 2u);
    EXPECT_EQ(spec.overrideSets[0].getString("core.rob"), "32");
    EXPECT_EQ(spec.overrideSets[1].getString("mem.mshrs"), "4");
    EXPECT_EQ(spec.exec.backend, ExecutionPolicy::Backend::Serial);
    EXPECT_EQ(spec.exec.threads, 3u);
    EXPECT_EQ(spec.exec.processes, 5u);
    EXPECT_FALSE(spec.exec.batch);
    EXPECT_TRUE(spec.exec.decoded);
    EXPECT_EQ(spec.exec.rawBudget, u64(64) << 10);
    EXPECT_EQ(spec.exec.decodedBudget, u64(2) << 20);
    EXPECT_EQ(spec.exec.storeDir, "/tmp/some-store");
    EXPECT_EQ(spec.exec.journalPath, "/tmp/some.vmjl");
    EXPECT_EQ(spec.exec.maxRespawns, 5u);
    EXPECT_EQ(spec.exec.unitTimeoutMs, 2500u);
    EXPECT_EQ(spec.exec.maxUnitAttempts, 4u);
    EXPECT_EQ(spec.report.layout, ReportSpec::Layout::Pivot);
    EXPECT_EQ(spec.report.pivot, ReportSpec::Metric::Ipc);
    EXPECT_EQ(spec.report.baselineKind, SimdKind::MMX128);
    EXPECT_EQ(spec.report.baselineWay, 4u);
    EXPECT_TRUE(spec.report.geomean);
    EXPECT_EQ(spec.report.precision, 3);

    // parse -> format -> parse is the identity on the spec...
    std::string canonical = formatStudySpec(spec);
    StudySpec again;
    ASSERT_TRUE(parseStudySpec(canonical, again, err)) << err;
    EXPECT_TRUE(spec == again);
    // ...and format is idempotent on the canonical text.
    EXPECT_EQ(canonical, formatStudySpec(again));
}

TEST_F(StudyTest, SpecFileDefaultsAndFromFile)
{
    // A minimal spec: everything else keeps its defaults.
    fs::path path = dir_ / "mini.study";
    {
        std::ofstream out(path);
        out << "title = mini\n[grid]\nkernels = idct\n";
    }
    Study study = Study::fromFile(path.string());
    const StudySpec &spec = study.spec();
    EXPECT_EQ(spec.title, "mini");
    EXPECT_EQ(spec.kernels, (std::vector<std::string>{"idct"}));
    EXPECT_TRUE(spec.apps.empty());
    EXPECT_EQ(spec.kinds.size(), 4u); // all four flavours by default
    EXPECT_EQ(spec.ways, (std::vector<unsigned>{2, 4, 8}));
    EXPECT_TRUE(spec.overrideSets.empty());
    EXPECT_EQ(spec.report.layout, ReportSpec::Layout::Points);
    // Supervision knobs keep their built-in defaults when unspecified.
    EXPECT_EQ(spec.exec.maxRespawns, 3u);
    EXPECT_EQ(spec.exec.unitTimeoutMs, 0u);
    EXPECT_EQ(spec.exec.maxUnitAttempts, 3u);

    // The facade's specText round-trips too.
    Study again = Study::fromSpecText(study.specText());
    EXPECT_TRUE(study.spec() == again.spec());
}

TEST_F(StudyTest, SpecFileParseErrors)
{
    StudySpec spec;
    std::string err;

    EXPECT_FALSE(parseStudySpec("[nonsense]\n", spec, err));
    EXPECT_NE(err.find("line 1"), std::string::npos);
    EXPECT_NE(err.find("nonsense"), std::string::npos);

    EXPECT_FALSE(parseStudySpec("title = x\n[grid]\nbogus = 1\n",
                                spec, err));
    EXPECT_NE(err.find("line 3"), std::string::npos);

    EXPECT_FALSE(parseStudySpec("[grid]\nkinds = mmx96\n", spec, err));
    EXPECT_NE(err.find("mmx96"), std::string::npos);

    EXPECT_FALSE(parseStudySpec("[grid]\nways = 2,zero\n", spec, err));
    // strtoul would happily wrap these; the parser must not.
    EXPECT_FALSE(parseStudySpec("[grid]\nways = -1\n", spec, err));
    EXPECT_FALSE(parseStudySpec("[exec]\nthreads = -1\n", spec, err));
    EXPECT_FALSE(parseStudySpec("[report]\nbaseline = mmx64/-2\n",
                                spec, err));
    EXPECT_FALSE(parseStudySpec("[exec]\nbackend = cloud\n", spec, err));
    EXPECT_FALSE(parseStudySpec("[exec]\nbatch = maybe\n", spec, err));
    EXPECT_FALSE(parseStudySpec("[exec]\nraw_budget = -64k\n", spec, err));
    EXPECT_FALSE(parseStudySpec("[exec]\nmax_respawns = some\n", spec, err));
    EXPECT_FALSE(parseStudySpec("[exec]\nunit_timeout_ms = -5\n",
                                spec, err));
    // Zero attempts would mean "quarantine everything on sight".
    EXPECT_FALSE(parseStudySpec("[exec]\nmax_unit_attempts = 0\n",
                                spec, err));
    EXPECT_NE(err.find("max_unit_attempts"), std::string::npos);
    EXPECT_FALSE(parseStudySpec("[report]\nmetrics = cycles,joules\n",
                                spec, err));
    EXPECT_FALSE(parseStudySpec("[report]\nbaseline = mmx64\n", spec, err));
    EXPECT_FALSE(parseStudySpec("no equals sign here\n", spec, err));
}

// ---- grid expansion ------------------------------------------------------

TEST_F(StudyTest, GridExpansionOrderAndOverrideSets)
{
    StudySpec spec;
    spec.kernels = {"idct"};
    spec.apps = {"gsmenc"};
    spec.kinds = {SimdKind::MMX64, SimdKind::VMMX128};
    spec.ways = {2, 4};
    Config robA, robB;
    robA.set("core.rob", s64(32));
    robB.set("core.rob", s64(64));
    spec.overrideSets = {robA, robB};

    auto points = Study(spec).points();
    // 2 workloads x 2 kinds x 2 ways x 2 sets.
    ASSERT_EQ(points.size(), 16u);
    // Workload-major, then kind, then way, then override set -- so all
    // points of one (workload, kind) trace are contiguous.
    EXPECT_EQ(points[0].label(), "idct/mmx64/2-way+core.rob=32");
    EXPECT_EQ(points[1].label(), "idct/mmx64/2-way+core.rob=64");
    EXPECT_EQ(points[2].label(), "idct/mmx64/4-way+core.rob=32");
    EXPECT_EQ(points[4].label(), "idct/vmmx128/2-way+core.rob=32");
    EXPECT_EQ(points[8].label(), "gsmenc/mmx64/2-way+core.rob=32");
    EXPECT_EQ(points[8].workload, SweepPoint::Workload::App);
    EXPECT_EQ(points[0].workload, SweepPoint::Workload::Kernel);

    // One batched unit per (workload, kind): 4 groups of 4.
    auto groups = groupPointsByTrace(points);
    ASSERT_EQ(groups.size(), 4u);
    for (const auto &g : groups)
        EXPECT_EQ(g.size(), 4u);
}

// ---- backend equivalence -------------------------------------------------

/** A randomized grid over the short-trace kernels: random flavours,
 *  widths, and ablation overrides. */
StudySpec
randomizedSpec(std::mt19937 &rng)
{
    StudySpec spec;
    spec.kernels = {"motion1", "comp"};
    if (rng() % 2)
        spec.kernels.push_back("addblock");
    spec.kinds = {SimdKind::MMX64, SimdKind::VMMX128};
    if (rng() % 2)
        spec.kinds.push_back(SimdKind::MMX128);
    spec.ways = {2, 4};
    auto pick = [&](std::initializer_list<s64> choices) {
        std::vector<s64> v(choices);
        return v[rng() % v.size()];
    };
    for (int set = 0; set < int(rng() % 3); ++set) {
        Config knobs;
        knobs.set("core.rob", pick({16, 32, 64}));
        if (rng() % 2)
            knobs.set("mem.mshrs", pick({2, 8}));
        spec.overrideSets.push_back(knobs);
    }
    return spec;
}

TEST_F(StudyTest, BackendsBitIdenticalOnRandomizedGrid)
{
    std::mt19937 rng(0xf00d);
    for (int round = 0; round < 2; ++round) {
        StudySpec spec = randomizedSpec(rng);
        spec.exec.repo = &repo;
        spec.exec.threads = 4;
        spec.exec.storeDir = storeDir();
        Study study(spec);
        auto points = study.points();
        ASSERT_GE(points.size(), 8u);

        auto serial =
            executorFor(ExecutionPolicy::Backend::Serial)
                .run(points, spec.exec);
        auto threads =
            executorFor(ExecutionPolicy::Backend::ThreadPool)
                .run(points, spec.exec);
        // The Process backend forks workers with private repositories
        // sharing traces through the on-disk store.
        ExecutionPolicy procPolicy = spec.exec;
        procPolicy.processes = 2;
        auto processes =
            executorFor(ExecutionPolicy::Backend::Process)
                .run(points, procPolicy);

        ASSERT_EQ(serial.size(), points.size());
        ASSERT_EQ(threads.size(), points.size());
        ASSERT_EQ(processes.size(), points.size());
        for (size_t i = 0; i < points.size(); ++i) {
            EXPECT_TRUE(serial[i].sameRun(threads[i]))
                << "threads diverge at " << serial[i].point.label();
            EXPECT_TRUE(serial[i].sameRun(processes[i]))
                << "processes diverge at " << serial[i].point.label();
            EXPECT_EQ(serial[i].point.label(), threads[i].point.label());
            EXPECT_EQ(serial[i].point.label(), processes[i].point.label());
        }
    }
}

TEST_F(StudyTest, StudyRunHonoursBackendChoice)
{
    StudySpec spec;
    spec.kernels = {"motion1"};
    spec.kinds = {SimdKind::VMMX64};
    spec.ways = {2, 4};
    spec.exec.repo = &repo;

    spec.exec.backend = ExecutionPolicy::Backend::Serial;
    auto a = Study(spec).run();
    spec.exec.backend = ExecutionPolicy::Backend::ThreadPool;
    spec.exec.threads = 2;
    auto b = Study(spec).run();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(a[i].sameRun(b[i]));
}

// ---- derived metrics -----------------------------------------------------

TEST_F(StudyTest, DerivedMetricsMatchHandComputedValues)
{
    StudySpec spec;
    spec.kernels = {"idct"};
    spec.kinds = {SimdKind::MMX64, SimdKind::VMMX128};
    spec.ways = {2, 4};
    spec.exec.repo = &repo;
    spec.exec.backend = ExecutionPolicy::Backend::Serial;
    Study study(spec);
    auto results = study.run();
    ASSERT_EQ(results.size(), 4u);

    // The baseline of every point is the 2-way mmx64 run (results[0]).
    const SweepResult &base = results[0];
    for (const auto &r : results) {
        const SweepResult *found =
            Study::baselineFor(spec.report, results, r);
        ASSERT_NE(found, nullptr);
        EXPECT_TRUE(found->sameRun(base));

        double speedup =
            metricValue(ReportSpec::Metric::Speedup, r, found);
        EXPECT_DOUBLE_EQ(speedup,
                         double(base.cycles()) / double(r.cycles()));
        EXPECT_DOUBLE_EQ(metricValue(ReportSpec::Metric::Cycles, r, found),
                         double(r.cycles()));
        EXPECT_DOUBLE_EQ(
            metricValue(ReportSpec::Metric::Ipc, r, found),
            double(r.result.core.instructions) / double(r.cycles()));

        double sc = double(r.result.core.scalarCycles);
        double vc = double(r.result.core.vectorCycles);
        double baseTotal = double(base.result.core.scalarCycles) +
                           double(base.result.core.vectorCycles);
        EXPECT_DOUBLE_EQ(
            metricValue(ReportSpec::Metric::VectorPct, r, found),
            100.0 * vc / (sc + vc));
        EXPECT_DOUBLE_EQ(
            metricValue(ReportSpec::Metric::TotalOfBase, r, found),
            100.0 * (sc + vc) / baseTotal);
        EXPECT_DOUBLE_EQ(
            metricValue(ReportSpec::Metric::ScalarOfBase, r, found),
            100.0 * sc / baseTotal);
    }

    // The baseline's own speedup is exactly 1; speedup without a
    // baseline renders as "-".
    EXPECT_DOUBLE_EQ(metricValue(ReportSpec::Metric::Speedup, base, &base),
                     1.0);
    EXPECT_TRUE(std::isnan(
        metricValue(ReportSpec::Metric::Speedup, base, nullptr)));

    // The rendered pivot table carries the same numbers: the vmmx128
    // 4-way cell is the hand-computed speedup to 2 decimals.
    spec.report.layout = ReportSpec::Layout::Pivot;
    Study pivot(spec);
    std::ostringstream os;
    pivot.writeReport(os, results);
    double sp = double(base.cycles()) / double(results[3].cycles());
    EXPECT_NE(os.str().find(TextTable::num(sp)), std::string::npos)
        << os.str();
    EXPECT_NE(os.str().find("idct:"), std::string::npos);
}

TEST_F(StudyTest, BaselinePrefersMatchingOverrideSet)
{
    // With per-set baselines available, a point's speedup compares
    // against its own override set, not the unmodified machine.
    StudySpec spec;
    spec.kernels = {"comp"};
    spec.kinds = {SimdKind::MMX64};
    spec.ways = {2, 4};
    Config small;
    small.set("core.rob", s64(16));
    spec.overrideSets = {Config(), small};
    spec.exec.repo = &repo;
    spec.exec.backend = ExecutionPolicy::Backend::Serial;

    Study study(spec);
    auto results = study.run();
    ASSERT_EQ(results.size(), 4u);
    for (const auto &r : results) {
        const SweepResult *base =
            Study::baselineFor(spec.report, results, r);
        ASSERT_NE(base, nullptr) << r.point.label();
        EXPECT_TRUE(base->point.overrides == r.point.overrides)
            << r.point.label();
        EXPECT_EQ(base->point.way, 2u);
    }
}

} // namespace
} // namespace vmmx
