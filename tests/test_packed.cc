/**
 * @file
 * Property tests for the packed-SIMD emulation: every operation is
 * checked element-wise against a scalar reference over randomized
 * operands, for both row widths and all element sizes.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/saturate.hh"
#include "emu/accum.hh"
#include "emu/packed.hh"

namespace vmmx
{
namespace
{

using namespace emu;

struct WidthCase
{
    unsigned bytes;
};

class PackedWidth : public testing::TestWithParam<unsigned>
{
  protected:
    VWord
    randomWord(Rng &rng)
    {
        return {rng.next(), rng.next()};
    }
};

TEST_P(PackedWidth, AddSubWrapB8)
{
    unsigned w = GetParam();
    Rng rng(1);
    for (int it = 0; it < 200; ++it) {
        VWord a = randomWord(rng);
        VWord b = randomWord(rng);
        VWord s = padd(a, b, ElemWidth::B8, w);
        VWord d = psub(a, b, ElemWidth::B8, w);
        for (unsigned i = 0; i < w; ++i) {
            EXPECT_EQ(s.byte(i), u8(a.byte(i) + b.byte(i)));
            EXPECT_EQ(d.byte(i), u8(a.byte(i) - b.byte(i)));
        }
    }
}

TEST_P(PackedWidth, SaturatingAddW16)
{
    unsigned w = GetParam();
    Rng rng(2);
    for (int it = 0; it < 200; ++it) {
        VWord a = randomWord(rng);
        VWord b = randomWord(rng);
        VWord s = padds(a, b, ElemWidth::W16, w, true);
        VWord u = padds(a, b, ElemWidth::W16, w, false);
        for (unsigned i = 0; i < w / 2; ++i) {
            EXPECT_EQ(s16(s.word(i)),
                      clampTo<s16>(s64(a.sword(i)) + b.sword(i)));
            s64 us = s64(a.word(i)) + b.word(i);
            EXPECT_EQ(u.word(i), u16(std::min<s64>(us, 65535)));
        }
    }
}

TEST_P(PackedWidth, SaturatingSubU8)
{
    unsigned w = GetParam();
    Rng rng(3);
    for (int it = 0; it < 200; ++it) {
        VWord a = randomWord(rng);
        VWord b = randomWord(rng);
        VWord d = psubs(a, b, ElemWidth::B8, w, false);
        for (unsigned i = 0; i < w; ++i)
            EXPECT_EQ(d.byte(i), satSubU8(a.byte(i), b.byte(i)));
    }
}

TEST_P(PackedWidth, MultiplyHalves)
{
    unsigned w = GetParam();
    Rng rng(4);
    for (int it = 0; it < 200; ++it) {
        VWord a = randomWord(rng);
        VWord b = randomWord(rng);
        VWord lo = pmull(a, b, ElemWidth::W16, w);
        VWord hi = pmulh(a, b, ElemWidth::W16, w);
        for (unsigned i = 0; i < w / 2; ++i) {
            s32 prod = s32(a.sword(i)) * b.sword(i);
            EXPECT_EQ(s16(lo.word(i)), s16(prod & 0xffff));
            EXPECT_EQ(s16(hi.word(i)), s16(prod >> 16));
        }
    }
}

TEST_P(PackedWidth, PmaddPairs)
{
    unsigned w = GetParam();
    Rng rng(5);
    for (int it = 0; it < 200; ++it) {
        VWord a = randomWord(rng);
        VWord b = randomWord(rng);
        VWord r = pmadd(a, b, w);
        for (unsigned j = 0; j < w / 4; ++j) {
            s64 want = s64(a.sword(2 * j)) * b.sword(2 * j) +
                       s64(a.sword(2 * j + 1)) * b.sword(2 * j + 1);
            EXPECT_EQ(r.sdword(j), s32(want));
        }
    }
}

TEST_P(PackedWidth, SadMatchesScalar)
{
    unsigned w = GetParam();
    Rng rng(6);
    for (int it = 0; it < 200; ++it) {
        VWord a = randomWord(rng);
        VWord b = randomWord(rng);
        VWord r = psad(a, b, w);
        for (unsigned half = 0; half < w / 8; ++half) {
            u32 want = 0;
            for (unsigned i = 0; i < 8; ++i)
                want += absDiffU8(a.byte(half * 8 + i),
                                  b.byte(half * 8 + i));
            EXPECT_EQ(r.qword(half), want);
        }
    }
}

TEST_P(PackedWidth, PackSaturates)
{
    unsigned w = GetParam();
    Rng rng(7);
    for (int it = 0; it < 200; ++it) {
        VWord a = randomWord(rng);
        VWord b = randomWord(rng);
        VWord s = packs(a, b, ElemWidth::W16, w);
        VWord u = packus(a, b, ElemWidth::W16, w);
        unsigned n = w / 2;
        for (unsigned i = 0; i < n; ++i) {
            EXPECT_EQ(s8(s.byte(i)), clampTo<s8>(a.sword(i)));
            EXPECT_EQ(s8(s.byte(n + i)), clampTo<s8>(b.sword(i)));
            EXPECT_EQ(u.byte(i),
                      u8(std::clamp<s64>(a.sword(i), 0, 255)));
            EXPECT_EQ(u.byte(n + i),
                      u8(std::clamp<s64>(b.sword(i), 0, 255)));
        }
    }
}

TEST_P(PackedWidth, UnpackInterleaves)
{
    unsigned w = GetParam();
    Rng rng(8);
    VWord a = randomWord(rng);
    VWord b = randomWord(rng);
    VWord lo = unpckl(a, b, ElemWidth::B8, w);
    VWord hi = unpckh(a, b, ElemWidth::B8, w);
    for (unsigned i = 0; i < w / 2; ++i) {
        EXPECT_EQ(lo.byte(2 * i), a.byte(i));
        EXPECT_EQ(lo.byte(2 * i + 1), b.byte(i));
        EXPECT_EQ(hi.byte(2 * i), a.byte(w / 2 + i));
        EXPECT_EQ(hi.byte(2 * i + 1), b.byte(w / 2 + i));
    }
}

TEST_P(PackedWidth, ShiftsPerElement)
{
    unsigned w = GetParam();
    Rng rng(9);
    for (unsigned sh = 0; sh < 16; ++sh) {
        VWord a = randomWord(rng);
        VWord l = pshift(a, ElemWidth::W16, w, sh, ShiftKind::Sll);
        VWord r = pshift(a, ElemWidth::W16, w, sh, ShiftKind::Srl);
        VWord s = pshift(a, ElemWidth::W16, w, sh, ShiftKind::Sra);
        for (unsigned i = 0; i < w / 2; ++i) {
            EXPECT_EQ(l.word(i), u16(a.word(i) << sh));
            EXPECT_EQ(r.word(i), u16(a.word(i) >> sh));
            EXPECT_EQ(s16(s.word(i)), s16(asr(a.sword(i), sh)));
        }
    }
}

TEST_P(PackedWidth, HorizontalSum)
{
    unsigned w = GetParam();
    Rng rng(10);
    for (int it = 0; it < 100; ++it) {
        VWord a = randomWord(rng);
        s64 su = psum(a, ElemWidth::B8, w, false);
        s64 ss = psum(a, ElemWidth::W16, w, true);
        s64 wu = 0, ws = 0;
        for (unsigned i = 0; i < w; ++i)
            wu += a.byte(i);
        for (unsigned i = 0; i < w / 2; ++i)
            ws += a.sword(i);
        EXPECT_EQ(su, wu);
        EXPECT_EQ(ss, ws);
    }
}

TEST_P(PackedWidth, MinMaxAvg)
{
    unsigned w = GetParam();
    Rng rng(11);
    for (int it = 0; it < 100; ++it) {
        VWord a = randomWord(rng);
        VWord b = randomWord(rng);
        VWord mn = pmin(a, b, ElemWidth::B8, w, false);
        VWord mx = pmax(a, b, ElemWidth::B8, w, false);
        VWord av = pavg(a, b, ElemWidth::B8, w);
        for (unsigned i = 0; i < w; ++i) {
            EXPECT_EQ(mn.byte(i), std::min(a.byte(i), b.byte(i)));
            EXPECT_EQ(mx.byte(i), std::max(a.byte(i), b.byte(i)));
            EXPECT_EQ(av.byte(i), avgU8(a.byte(i), b.byte(i)));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, PackedWidth, testing::Values(8u, 16u),
                         [](const auto &tpi) {
                             return "w" + std::to_string(tpi.param);
                         });

TEST(Accumulator, SadAccumulates)
{
    Rng rng(20);
    Accum acc;
    s64 want[8]{};
    for (int r = 0; r < 16; ++r) {
        VWord a{rng.next(), rng.next()};
        VWord b{rng.next(), rng.next()};
        accSad(acc, a, b, 16);
        for (unsigned j = 0; j < 8; ++j)
            want[j] += absDiffU8(a.byte(2 * j), b.byte(2 * j)) +
                       absDiffU8(a.byte(2 * j + 1), b.byte(2 * j + 1));
    }
    for (unsigned j = 0; j < 8; ++j)
        EXPECT_EQ(acc.lane[j], want[j]);
}

TEST(Accumulator, MacAndSum)
{
    Rng rng(21);
    Accum acc;
    s64 total = 0;
    for (int r = 0; r < 16; ++r) {
        VWord a{rng.next(), rng.next()};
        VWord b{rng.next(), rng.next()};
        accMac(acc, a, b, 8);
        for (unsigned j = 0; j < 4; ++j)
            total += s64(a.sword(j)) * b.sword(j);
    }
    EXPECT_EQ(accSum(acc, 8), total);
}

TEST(Accumulator, PackRoundsAndSaturates)
{
    Accum acc;
    acc.lane[0] = (5 << 14) + (1 << 13);     // rounds up to 6
    acc.lane[1] = (5 << 14) + (1 << 13) - 1; // rounds down to 5
    acc.lane[2] = s64(1) << 40;              // saturates high
    acc.lane[3] = -(s64(1) << 40);           // saturates low
    VWord r = accPack(acc, 8, 14);
    EXPECT_EQ(s16(r.word(0)), 6);
    EXPECT_EQ(s16(r.word(1)), 5);
    EXPECT_EQ(s16(r.word(2)), 32767);
    EXPECT_EQ(s16(r.word(3)), -32768);
}

} // namespace
} // namespace vmmx
