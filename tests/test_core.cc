/**
 * @file
 * Timing-core property tests: width limits, dependency chains, register
 * pressure, issue-queue and ROB stalls, branch prediction effects, and
 * vector lane occupancy.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "common/rng.hh"
#include "sim/bpred.hh"
#include "sim/resources.hh"
#include "trace/program.hh"
#include "trace/vmmx.hh"

namespace vmmx
{
namespace
{

std::vector<InstRecord>
independentAlus(unsigned n)
{
    MemImage mem(1 << 16);
    Program p(mem, SimdKind::MMX64);
    SReg r[8];
    for (auto &x : r)
        x = p.sreg();
    for (unsigned i = 0; i < n; ++i)
        p.li(r[i % 8], i);
    return p.takeTrace();
}

TEST(Core, IpcBoundedByWidth)
{
    auto trace = independentAlus(4000);
    for (unsigned way : {2u, 4u, 8u}) {
        auto r = runTrace(makeMachine(SimdKind::MMX64, way), trace);
        EXPECT_LE(r.core.ipc(), double(way) + 1e-9);
        // Independent work should come close to the width limit.
        EXPECT_GT(r.core.ipc(), 0.8 * way);
    }
}

TEST(Core, DependencyChainSerializes)
{
    MemImage mem(1 << 16);
    Program p(mem, SimdKind::MMX64);
    SReg a = p.sreg();
    p.li(a, 0);
    for (int i = 0; i < 2000; ++i)
        p.addi(a, a, 1);
    auto r = runTrace(makeMachine(SimdKind::MMX64, 8), p.trace());
    // A serial chain of 1-cycle adds cannot beat 1 IPC.
    EXPECT_LE(r.core.ipc(), 1.05);
    EXPECT_EQ(p.val(a), 2000u);
}

TEST(Core, MulLatencyLongerThanAdd)
{
    MemImage mem(1 << 16);
    Program pa(mem, SimdKind::MMX64);
    SReg a = pa.sreg();
    pa.li(a, 1);
    for (int i = 0; i < 500; ++i)
        pa.addi(a, a, 1);
    Program pm(mem, SimdKind::MMX64);
    SReg b = pm.sreg();
    pm.li(b, 1);
    for (int i = 0; i < 500; ++i)
        pm.muli(b, b, 1);
    auto machine = makeMachine(SimdKind::MMX64, 4);
    auto ra = runTrace(machine, pa.trace());
    auto rm = runTrace(machine, pm.trace());
    EXPECT_GT(rm.core.cycles, 2 * ra.core.cycles);
}

TEST(Core, PredictableBranchesCostLittle)
{
    MemImage mem(1 << 16);
    Program p(mem, SimdKind::MMX64);
    SReg a = p.sreg();
    p.li(a, 0);
    p.forLoop(2000, [&](SReg) { p.addi(a, a, 1); });
    auto r = runTrace(makeMachine(SimdKind::MMX64, 4), p.trace());
    EXPECT_GT(r.core.branches, 1900u);
    // The loop-closing branch is learned after a few iterations.
    EXPECT_LT(double(r.core.mispredicts) / double(r.core.branches), 0.05);
}

TEST(Core, RandomBranchesMispredict)
{
    MemImage mem(1 << 16);
    Rng rng(3);
    Program p(mem, SimdKind::MMX64);
    SReg a = p.sreg();
    SReg b = p.sreg();
    p.li(a, 0);
    p.li(b, 0);
    u64 taken = 0;
    for (int i = 0; i < 2000; ++i) {
        bool t = rng.below(2) == 0;
        taken += t;
        p.branch(t, a, b);
    }
    auto slow = runTrace(makeMachine(SimdKind::MMX64, 4), p.trace());
    EXPECT_GT(double(slow.core.mispredicts) / double(slow.core.branches),
              0.25);
}

TEST(Core, VectorLengthDrivesOccupancy)
{
    MemImage mem(1 << 20);
    Addr buf = mem.alloc(4096);
    auto makeTrace = [&](u16 vl) {
        Program p(mem, SimdKind::VMMX128);
        Vmmx v(p);
        SReg base = p.sreg();
        p.li(base, buf);
        v.setvl(vl);
        VR x = p.vreg();
        VR y = p.vreg();
        VR d[6];
        for (auto &r : d)
            r = p.vreg();
        v.loadU(x, base, 0);
        v.loadU(y, base, 0);
        // Long independent sequence of vector adds (throughput-bound).
        for (int i = 0; i < 400; ++i)
            v.padd(d[i % 6], x, y, ElemWidth::B8);
        return p.takeTrace();
    };
    auto machine = makeMachine(SimdKind::VMMX128, 2);
    auto shortVl = runTrace(machine, makeTrace(4));
    auto longVl = runTrace(machine, makeTrace(16));
    // VL=16 occupies the 4-lane FU 4x longer than VL=4; the 2-way
    // VMMX machine's tiny rename headroom (20 physical vs 16 logical
    // registers, Table III) adds a constant per-op cost that compresses
    // the observable ratio below 4.
    EXPECT_GT(double(longVl.core.cycles),
              2.0 * double(shortVl.core.cycles));
}

TEST(Core, RegisterPressureStallsRename)
{
    // Many live SIMD registers with long-latency producers: the small
    // VMMX free list (20 phys - 16 logical at 2-way) must throttle.
    MemImage mem(1 << 20);
    Addr buf = mem.alloc(8192);
    Program p(mem, SimdKind::VMMX128);
    Vmmx v(p);
    SReg base = p.sreg();
    p.li(base, buf);
    v.setvl(16);
    VR r[8];
    for (auto &x : r)
        x = p.vreg();
    for (int i = 0; i < 64; ++i)
        v.loadU(r[i % 8], base, (i % 4) * 256);
    auto res = runTrace(makeMachine(SimdKind::VMMX128, 2), p.trace());
    EXPECT_GT(res.core.renameStallRegs, 0u);
}

TEST(Core, StoreToLoadDependencyHonored)
{
    MemImage mem(1 << 16);
    Addr buf = mem.alloc(64);
    Program p(mem, SimdKind::MMX64);
    SReg a = p.sreg();
    SReg addr = p.sreg();
    p.li(addr, buf);
    p.li(a, 7);
    p.store(a, addr, 0, 8);
    p.load(a, addr, 0, 8);
    EXPECT_EQ(p.val(a), 7u);
    auto r = runTrace(makeMachine(SimdKind::MMX64, 4), p.trace());
    EXPECT_GT(r.core.cycles, 4u);
}

TEST(Resources, WidthGateLimitsPerCycle)
{
    WidthGate g(2);
    EXPECT_EQ(g.pass(5), 5u);
    EXPECT_EQ(g.pass(5), 5u);
    EXPECT_EQ(g.pass(5), 6u);
    EXPECT_EQ(g.pass(5), 6u);
    EXPECT_EQ(g.pass(9), 9u);
}

TEST(Resources, SlotPoolOccupancy)
{
    SlotPool pool(2);
    EXPECT_EQ(pool.acquire(0, 4), 0u);
    EXPECT_EQ(pool.acquire(0, 4), 0u);
    EXPECT_EQ(pool.acquire(0, 4), 4u);
    EXPECT_EQ(pool.acquire(10, 1), 10u);
}

TEST(Resources, IssueQueueBlocksWhenFull)
{
    IssueQueueModel iq(2);
    EXPECT_EQ(iq.waitForSpace(0), 0u);
    iq.insert(100);
    EXPECT_EQ(iq.waitForSpace(1), 1u);
    iq.insert(50);
    // Full: next rename waits for the earliest leaver (cycle 50).
    EXPECT_EQ(iq.waitForSpace(2), 51u);
}

TEST(Resources, RegFreeListReleases)
{
    RegFreeList fl(6, 4); // two free
    EXPECT_EQ(fl.allocate(0), 0u);
    EXPECT_EQ(fl.allocate(0), 0u);
    fl.release(20);
    EXPECT_EQ(fl.allocate(5), 20u); // must wait for the release
}

TEST(Bpred, LearnsBiasedBranch)
{
    BranchPredictor bp(1024);
    u64 wrong = 0;
    for (int i = 0; i < 1000; ++i)
        wrong += !bp.predict(42, true);
    EXPECT_LT(wrong, 5u);
}

} // namespace
} // namespace vmmx
