/**
 * @file
 * Kernel correctness: every Table II kernel, in every ISA flavour plus
 * the scalar baseline, must reproduce the golden reference bit-exactly.
 * Also checks structural trace invariants (instruction mix, vector
 * regions, flavour ordering of dynamic instruction counts).
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "kernels/kernel.hh"

namespace vmmx
{
namespace
{

struct KernelCase
{
    std::string kernel;
    int flavour; // -1 = scalar, else SimdKind
};

std::string
caseName(const testing::TestParamInfo<KernelCase> &info)
{
    std::string f = info.param.flavour < 0
                        ? "scalar"
                        : name(SimdKind(info.param.flavour));
    return info.param.kernel + "_" + f;
}

class KernelCorrectness : public testing::TestWithParam<KernelCase>
{
};

TEST_P(KernelCorrectness, MatchesGolden)
{
    const KernelCase &kc = GetParam();
    auto k = makeKernel(kc.kernel);
    MemImage mem(16u << 20);
    Rng rng(0x1234 + std::hash<std::string>{}(kc.kernel));
    k->prepare(mem, rng);
    k->golden(mem);

    SimdKind kind =
        kc.flavour < 0 ? SimdKind::MMX64 : SimdKind(kc.flavour);
    Program p(mem, kind);
    if (kc.flavour < 0)
        k->emitScalar(p);
    else
        k->emit(p);

    for (const auto &out : k->outputs()) {
        for (u32 i = 0; i < out.bytes; ++i) {
            ASSERT_EQ(mem.read8(out.actual + i), mem.read8(out.expected + i))
                << kc.kernel << " '" << out.what << "' byte " << i;
        }
    }
}

TEST_P(KernelCorrectness, TraceIsWellFormed)
{
    const KernelCase &kc = GetParam();
    auto k = makeKernel(kc.kernel);
    MemImage mem(16u << 20);
    Rng rng(77);
    k->prepare(mem, rng);

    SimdKind kind =
        kc.flavour < 0 ? SimdKind::MMX64 : SimdKind(kc.flavour);
    Program p(mem, kind);
    if (kc.flavour < 0)
        k->emitScalar(p);
    else
        k->emit(p);

    const auto &tr = p.trace();
    ASSERT_FALSE(tr.empty());
    u64 vec = 0;
    for (const auto &inst : tr) {
        if (inst.isVector())
            ++vec;
        if (inst.isMem()) {
            EXPECT_GT(inst.rowBytes, 0u) << inst.toString();
            EXPECT_LT(inst.addr, mem.size()) << inst.toString();
        }
        if (inst.vl > 0) {
            EXPECT_LE(inst.vl, 16u) << inst.toString();
        }
    }
    if (kc.flavour < 0) {
        EXPECT_EQ(vec, 0u) << "scalar flavour must not emit packed ops";
    } else {
        EXPECT_GT(vec, 0u) << "SIMD flavour emitted no packed ops";
        // Kernel emissions are wrapped in a vector region.
        EXPECT_NE(tr.front().region, 0);
    }
}

std::vector<KernelCase>
allCases()
{
    std::vector<KernelCase> cases;
    for (const auto &kn : kernelNames())
        for (int f = -1; f < 4; ++f)
            cases.push_back({kn, f});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelCorrectness,
                         testing::ValuesIn(allCases()), caseName);

/** The matrix flavours must execute fewer dynamic instructions than the
 *  1-D ones (the paper's Figure 7 at kernel granularity). */
TEST(KernelTraces, MatrixReducesInstructionCount)
{
    for (const auto &kn : kernelNames()) {
        std::array<u64, 4> counts{};
        for (auto kind : allSimdKinds) {
            auto k = makeKernel(kn);
            MemImage mem(16u << 20);
            Rng rng(1);
            k->prepare(mem, rng);
            Program p(mem, kind);
            k->emit(p);
            counts[size_t(kind)] = p.trace().size();
        }
        EXPECT_LT(counts[size_t(SimdKind::VMMX64)],
                  counts[size_t(SimdKind::MMX64)])
            << kn;
        EXPECT_LE(counts[size_t(SimdKind::VMMX128)],
                  counts[size_t(SimdKind::VMMX64)])
            << kn;
        EXPECT_LE(counts[size_t(SimdKind::MMX128)],
                  counts[size_t(SimdKind::MMX64)])
            << kn;
    }
}

} // namespace
} // namespace vmmx
