/**
 * @file
 * End-to-end smoke: build a tiny program, run it on every machine, and
 * check basic sanity of the timing results.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "trace/mmx.hh"
#include "trace/program.hh"

namespace vmmx
{
namespace
{

TEST(Smoke, ScalarLoopRuns)
{
    MemImage mem(1 << 20);
    Program p(mem, SimdKind::MMX64);
    Addr buf = mem.alloc(1024);

    SReg acc = p.sreg();
    SReg addr = p.sreg();
    p.li(acc, 0);
    p.li(addr, buf);
    p.forLoop(100, [&](SReg i) {
        p.add(acc, acc, i);
        p.store(acc, addr, 0, 8);
    });

    EXPECT_EQ(p.val(acc), 99 * 100 / 2);
    EXPECT_EQ(mem.read64(buf), u64(99 * 100 / 2));

    auto machine = makeMachine(SimdKind::MMX64, 2);
    RunResult r = runTrace(machine, p.trace());
    EXPECT_GT(r.cycles(), 100u);
    EXPECT_EQ(r.core.instructions, p.trace().size());
}

TEST(Smoke, WiderMachineIsNotSlower)
{
    MemImage mem(1 << 20);
    Program p(mem, SimdKind::MMX64);
    Addr buf = mem.alloc(4096);

    SReg a = p.sreg();
    SReg b = p.sreg();
    SReg addr = p.sreg();
    p.li(addr, buf);
    p.li(b, 1);
    p.forLoop(200, [&](SReg i) {
        p.slli(a, i, 3);
        p.add(a, a, addr);
        p.store(b, a, 0, 8);
        p.load(a, a, 0, 8);
        p.add(b, b, a);
    });

    Cycle c2 = runTrace(makeMachine(SimdKind::MMX64, 2), p.trace()).cycles();
    Cycle c8 = runTrace(makeMachine(SimdKind::MMX64, 8), p.trace()).cycles();
    EXPECT_LE(c8, c2);
}

} // namespace
} // namespace vmmx
