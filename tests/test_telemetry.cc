/**
 * @file
 * Tests for the observability substrate (common/telemetry.hh): span
 * recording and ordering, the metrics registry's deterministic dumps
 * and snapshot/delta arithmetic, JSON escaping, progress plumbing, and
 * the load-bearing invariant that telemetry never changes results --
 * a randomized sweep grid must be bit-identical with it on or off.
 */

#include <gtest/gtest.h>
#include <sstream>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/telemetry.hh"
#include "harness/executor.hh"
#include "isa/simd_kind.hh"

namespace vmmx
{
namespace
{

/** Every test starts and ends with telemetry off and both singletons
 *  empty, so tests are order-neutral within the binary. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void SetUp() override { reset(); }
    void TearDown() override { reset(); }

    static void
    reset()
    {
        telemetry::setEnabled(false);
        telemetry::Tracer::instance().clear();
        telemetry::Registry::instance().clear();
        telemetry::setProgress(telemetry::ProgressMode::Off);
    }
};

TEST_F(TelemetryTest, DisabledSpansRecordNothing)
{
    ASSERT_FALSE(telemetry::enabled());
    {
        TELEMETRY_SPAN("outer");
        TELEMETRY_SPAN("inner", "detail");
    }
    EXPECT_EQ(telemetry::Tracer::instance().size(), 0u);
}

TEST_F(TelemetryTest, NestedSpansOrderAndAttribution)
{
    telemetry::setEnabled(true);
    {
        TELEMETRY_SPAN("outer", "unit-0");
        TELEMETRY_SPAN("inner");
    }
    auto spans = telemetry::Tracer::instance().drain();
    ASSERT_EQ(spans.size(), 2u);
    // Spans are recorded at scope exit, so the inner one lands first;
    // its start is within the outer's window.
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[1].name, "outer");
    EXPECT_EQ(spans[1].detail, "unit-0");
    EXPECT_GE(spans[0].startNs, spans[1].startNs);
    EXPECT_LE(spans[0].startNs + spans[0].durNs,
              spans[1].startNs + spans[1].durNs);
    // Local spans carry this pid and workerId -1.
    EXPECT_EQ(spans[0].pid, u64(::getpid()));
    EXPECT_EQ(spans[0].workerId, -1);
    // drain() emptied the buffer.
    EXPECT_EQ(telemetry::Tracer::instance().size(), 0u);
}

TEST_F(TelemetryTest, TraceEventJsonShape)
{
    telemetry::setEnabled(true);
    { TELEMETRY_SPAN("phase", "with \"quotes\" and\nnewline"); }
    telemetry::Tracer::instance().setProcessName(u64(::getpid()),
                                                "driver");
    std::ostringstream os;
    telemetry::Tracer::instance().writeTraceEvents(os);
    const std::string json = os.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"phase\""), std::string::npos);
    EXPECT_NE(json.find("\"driver\""), std::string::npos);
    // The detail string was escaped, not embedded raw.
    EXPECT_EQ(json.find('\n' + std::string("newline")),
              std::string::npos);
    EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
}

TEST_F(TelemetryTest, RegistryCountersGaugesAndSortedDump)
{
    auto &reg = telemetry::Registry::instance();
    reg.addCounter("z.count", 2);
    reg.addCounter("z.count", 3); // counters accumulate
    reg.setGauge("a.gauge", 7);
    reg.setGauge("a.gauge", 9); // gauges are last-write-wins

    auto snap = reg.snapshot();
    EXPECT_EQ(snap.values.at("z.count"), 5u);
    EXPECT_EQ(snap.values.at("a.gauge"), 9u);

    std::ostringstream os;
    reg.dumpText(os);
    const std::string text = os.str();
    EXPECT_LT(text.find("a.gauge 9"), text.find("z.count 5"));
}

TEST_F(TelemetryTest, RegistryFederatesStatGroups)
{
    auto &reg = telemetry::Registry::instance();
    StatGroup g("grp");
    Counter c(&g, "events", "event count");
    c += 4;
    reg.addGroup(&g);
    EXPECT_EQ(reg.snapshot().values.at("grp.events"), 4u);
    reg.removeGroup(&g);
    EXPECT_EQ(reg.snapshot().values.count("grp.events"), 0u);
}

TEST_F(TelemetryTest, SnapshotDeltaClampsAtZero)
{
    telemetry::MetricsSnapshot before, after;
    before.values = {{"up", 3}, {"down", 10}, {"gone", 5}};
    after.values = {{"up", 8}, {"down", 4}, {"new", 2}};
    auto d = telemetry::Registry::delta(before, after);
    EXPECT_EQ(d.values.at("up"), 5u);
    EXPECT_EQ(d.values.at("down"), 0u) << "underflow clamps, not wraps";
    EXPECT_EQ(d.values.at("new"), 2u);
    // Keys absent from `after` don't resurface in the delta.
    EXPECT_EQ(d.values.count("gone"), 0u);
}

TEST_F(TelemetryTest, DumpJsonNestsByDottedPrefixWithUnits)
{
    auto &reg = telemetry::Registry::instance();
    reg.addCounter("dist.respawns", 1);
    reg.setGauge("repo.decodes", 24);
    reg.setGauge("toplevel", 3);
    telemetry::UnitRecord rec;
    rec.traceHash = 42;
    rec.label = "idct/vmmx128/4-way";
    rec.points = 3;
    rec.records = 100;
    rec.wallNs = 2'000'000'000ull; // 1.5 points/s
    reg.addUnit(std::move(rec));

    std::ostringstream os;
    reg.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"dist\""), std::string::npos);
    EXPECT_NE(json.find("\"respawns\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"repo\""), std::string::npos);
    EXPECT_NE(json.find("\"toplevel\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"units\""), std::string::npos);
    // Host stamp: the sanitizer the binary was built with always rides
    // along ("none" in a plain build).
    EXPECT_NE(json.find("\"host\""), std::string::npos);
    EXPECT_NE(json.find("\"sanitizer\": \""), std::string::npos);
    EXPECT_NE(json.find("\"label\":\"idct/vmmx128/4-way\""),
              std::string::npos);
    EXPECT_NE(json.find("\"traceHash\":42"), std::string::npos);
    EXPECT_NE(json.find("\"workerId\":-1"), std::string::npos);

    // Unit buffering: units() peeks, drainUnits() empties.
    EXPECT_EQ(reg.units().size(), 1u);
    EXPECT_DOUBLE_EQ(reg.units()[0].pointsPerSec(), 1.5);
    EXPECT_EQ(reg.drainUnits().size(), 1u);
    EXPECT_TRUE(reg.units().empty());
}

TEST_F(TelemetryTest, JsonEscape)
{
    EXPECT_EQ(telemetry::jsonEscape("plain"), "plain");
    EXPECT_EQ(telemetry::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(telemetry::jsonEscape("x\ny"), "x\\ny");
    EXPECT_EQ(telemetry::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST_F(TelemetryTest, ProgressOffIsSilentAndModeSticks)
{
    EXPECT_EQ(telemetry::progressMode(), telemetry::ProgressMode::Off);
    telemetry::Progress p("test", 100);
    p.update(50);
    p.finish(100); // must not crash or write anywhere
    telemetry::setProgress(telemetry::ProgressMode::Jsonl, nullptr);
    EXPECT_EQ(telemetry::progressMode(), telemetry::ProgressMode::Jsonl);
}

/** The whole point of the PR: telemetry is purely observational.  A
 *  randomized grid run with spans + unit records on must be
 *  bit-identical to the same grid with telemetry off. */
TEST_F(TelemetryTest, SweepResultsBitIdenticalOnOrOff)
{
    const std::vector<std::string> kernels = {"motion1", "comp",
                                              "addblock", "ltpfilt"};
    const std::vector<unsigned> ways = {2, 4, 8};
    Rng rng(20260808);
    std::vector<SweepPoint> points;
    for (int i = 0; i < 10; ++i) {
        SweepPoint p;
        p.name = kernels[size_t(rng.range(0, s64(kernels.size()) - 1))];
        p.kind = allSimdKinds[size_t(
            rng.range(0, s64(allSimdKinds.size()) - 1))];
        p.way = ways[size_t(rng.range(0, s64(ways.size()) - 1))];
        points.push_back(std::move(p));
    }

    ExecutionPolicy policy;
    policy.backend = ExecutionPolicy::Backend::ThreadPool;
    policy.threads = 2;
    TraceRepository repo(nullptr, 0, 0);
    policy.repo = &repo;

    telemetry::setEnabled(false);
    auto off = runPoints(points, policy);

    telemetry::setEnabled(true);
    auto on = runPoints(points, policy);
    telemetry::setEnabled(false);

    ASSERT_EQ(on.size(), off.size());
    for (size_t i = 0; i < off.size(); ++i)
        EXPECT_TRUE(on[i].sameRun(off[i]))
            << "telemetry changed results at " << points[i].label();

    // And the instrumented run actually produced observations.
    EXPECT_GT(telemetry::Tracer::instance().size(), 0u);
    EXPECT_FALSE(telemetry::Registry::instance().units().empty());
}

} // namespace
} // namespace vmmx
