/**
 * @file
 * Wire-format tests: every serialized type must round-trip bit-exactly,
 * including boundary values, and the trace codec must actually compress.
 * Property-style: InstRecords are driven through the codec both with
 * hand-picked extreme field values and with thousands of randomized
 * records from the deterministic Rng.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "dist/protocol.hh"
#include "dist/wire.hh"
#include "harness/harness_io.hh"
#include "trace/trace_repo.hh"
#include "trace/trace_io.hh"

namespace vmmx
{
namespace
{

class WireTest : public testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
};

TEST_F(WireTest, VarintBoundariesRoundTrip)
{
    const u64 values[] = {0,          1,
                          127,        128,
                          16383,      16384,
                          0xffffffffull, 0x100000000ull,
                          ~0ull - 1,  ~0ull};
    wire::Writer w;
    for (u64 v : values)
        w.varint(v);
    wire::Reader r(w.buffer());
    for (u64 v : values)
        EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST_F(WireTest, SvarintBoundariesRoundTrip)
{
    const s64 values[] = {0,  1,  -1, 63, -63, 64, -64, 8191, -8192,
                          s64(0x7fffffffffffffffll),
                          s64(-0x7fffffffffffffffll - 1)};
    wire::Writer w;
    for (s64 v : values)
        w.svarint(v);
    wire::Reader r(w.buffer());
    for (s64 v : values)
        EXPECT_EQ(r.svarint(), v);
    EXPECT_TRUE(r.ok());
    // Small magnitudes of either sign must stay single-byte.
    wire::Writer small;
    small.svarint(-63);
    EXPECT_EQ(small.size(), 1u);
}

TEST_F(WireTest, VarintSevenBitBoundariesExhaustive)
{
    // Every 2^(7k) threshold changes the encoded length; round-trip the
    // exact threshold and both neighbours for every k up to the u64 top.
    std::vector<u64> values;
    for (unsigned k = 1; k <= 9; ++k) {
        u64 edge = 1ull << (7 * k);
        values.push_back(edge - 1);
        values.push_back(edge);
        values.push_back(edge + 1);
    }
    wire::Writer w;
    for (u64 v : values)
        w.varint(v);
    wire::Reader r(w.buffer());
    for (u64 v : values)
        EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok() && r.atEnd());

    // Encoded length is exactly ceil(bits/7): k bytes up to 2^(7k)-1,
    // one more at 2^(7k).
    for (unsigned k = 1; k <= 9; ++k) {
        wire::Writer below;
        below.varint((1ull << (7 * k)) - 1);
        EXPECT_EQ(below.size(), k);
        wire::Writer at;
        at.varint(1ull << (7 * k));
        EXPECT_EQ(at.size(), k + 1);
    }
    wire::Writer top;
    top.varint(~0ull);
    EXPECT_EQ(top.size(), 10u);
}

TEST_F(WireTest, VarintTenthByteOverflowRejected)
{
    // ~0ull is the canonical worst case: nine 0xff bytes, then a tenth
    // byte carrying only bit 63.
    wire::Writer w;
    w.varint(~0ull);
    ASSERT_EQ(w.size(), 10u);
    EXPECT_EQ(w.buffer()[9], 0x01);

    // A tenth byte with anything beyond bit 0 encodes >= 2^64 (or asks
    // for an eleventh byte): corrupt or hostile input, which must trip
    // ok() instead of silently truncating mod 2^64 or shifting by >= 64.
    for (u8 bad : {u8(0x02), u8(0x7f), u8(0x80), u8(0xff)}) {
        std::vector<u8> bytes(10, 0xff);
        bytes[9] = bad;
        wire::Reader r(bytes.data(), bytes.size());
        r.varint();
        EXPECT_FALSE(r.ok()) << "tenth byte 0x" << std::hex << unsigned(bad);
    }

    // A continuation bit running off the end of the buffer underflows.
    const u8 dangling[] = {0x80};
    wire::Reader r(dangling, sizeof(dangling));
    r.varint();
    EXPECT_FALSE(r.ok());

    // Overlong zero padding stays in range and decodes to 0: readers
    // are liberal about padding, strict about value bits.
    std::vector<u8> padded(10, 0x80);
    padded[9] = 0x00;
    wire::Reader pr(padded.data(), padded.size());
    EXPECT_EQ(pr.varint(), 0u);
    EXPECT_TRUE(pr.ok());
}

TEST_F(WireTest, SvarintExtremesUseTenBytes)
{
    // Zigzag maps s64 min/max to the top two u64 values; both must take
    // the full ten bytes and come back exact.
    const s64 hi = s64(0x7fffffffffffffffll);
    const s64 lo = s64(-0x7fffffffffffffffll - 1);
    wire::Writer w;
    w.svarint(hi);
    w.svarint(lo);
    EXPECT_EQ(w.size(), 20u);
    wire::Reader r(w.buffer());
    EXPECT_EQ(r.svarint(), hi);
    EXPECT_EQ(r.svarint(), lo);
    EXPECT_TRUE(r.ok() && r.atEnd());
}

TEST_F(WireTest, FixedStringsAndUnderflow)
{
    wire::Writer w;
    w.fixed32(0xdeadbeef);
    w.fixed64(0x0123456789abcdefull);
    w.str(std::string("nul\0inside", 10));
    w.str("");
    wire::Reader r(w.buffer());
    EXPECT_EQ(r.fixed32(), 0xdeadbeefu);
    EXPECT_EQ(r.fixed64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.str(), std::string("nul\0inside", 10));
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.ok() && r.atEnd());

    // Underflow is sticky and quiet, never fatal.
    EXPECT_EQ(r.fixed64(), 0u);
    EXPECT_FALSE(r.ok());
    wire::Reader trunc(w.buffer().data(), 2);
    trunc.fixed32();
    EXPECT_FALSE(trunc.ok());
}

InstRecord
randomRecord(Rng &rng)
{
    auto randomReg = [&rng]() -> RegId {
        auto cls = static_cast<RegClass>(rng.below(5));
        // The codec stores no index for RegClass::None (an absent
        // register is canonically {None, 0}, which is what the trace
        // DSL emits).
        return {cls, cls == RegClass::None ? u8(0) : rng.byte()};
    };
    InstRecord i;
    i.op = static_cast<Opcode>(
        rng.below(static_cast<u64>(Opcode::NUM_OPCODES)));
    i.ew = static_cast<ElemWidth>(rng.below(4));
    i.dst = randomReg();
    i.src0 = randomReg();
    i.src1 = randomReg();
    i.src2 = randomReg();
    // Mix sequential-ish addresses with extremes.
    switch (rng.below(4)) {
      case 0: i.addr = 0; break;
      case 1: i.addr = rng.below(1u << 20); break;
      case 2: i.addr = ~0ull - rng.below(64); break;
      default: i.addr = rng.next(); break;
    }
    i.rowBytes = u16(rng.below(3) ? rng.below(64) : 0xffff);
    switch (rng.below(4)) {
      case 0: i.stride = 0; break;
      case 1: i.stride = s32(i.rowBytes); break;
      case 2: i.stride = -s32(rng.below(1u << 16)); break;
      default: i.stride = s32(rng.next()); break;
    }
    i.vl = u16(rng.below(2) ? rng.below(17) : 0xffff);
    i.taken = rng.below(2);
    i.staticId = rng.below(2) ? u32(rng.below(4096)) : u32(rng.next());
    i.region = u16(rng.below(3) ? rng.below(8) : 0xffff);
    return i;
}

TEST_F(WireTest, InstRecordBoundaryValuesRoundTrip)
{
    std::vector<InstRecord> trace;
    InstRecord i;
    trace.push_back(i); // all defaults
    i.op = static_cast<Opcode>(static_cast<u8>(Opcode::NUM_OPCODES) - 1);
    i.ew = ElemWidth::Q64;
    i.dst = {RegClass::Acc, 255};
    i.src0 = {RegClass::Int, 0};
    i.src1 = {RegClass::None, 0};
    i.src2 = {RegClass::Simd, 31};
    i.addr = ~0ull;
    i.rowBytes = 0xffff;
    i.stride = s32(0x80000000); // INT32_MIN
    i.vl = 0xffff;
    i.taken = true;
    i.staticId = ~0u;
    i.region = 0xffff;
    trace.push_back(i);
    i.addr = 0; // max -> 0 address delta
    i.stride = 0x7fffffff;
    trace.push_back(i);

    wire::Writer w;
    encodeTrace(trace, w);
    wire::Reader r(w.buffer());
    std::vector<InstRecord> back;
    ASSERT_TRUE(decodeTrace(r, back));
    ASSERT_EQ(back.size(), trace.size());
    for (size_t k = 0; k < trace.size(); ++k)
        EXPECT_EQ(back[k], trace[k]) << "record " << k;
}

TEST_F(WireTest, InstRecordRandomizedRoundTrip)
{
    Rng rng(0x5eed);
    std::vector<InstRecord> trace;
    for (int k = 0; k < 5000; ++k)
        trace.push_back(randomRecord(rng));
    wire::Writer w;
    encodeTrace(trace, w);
    wire::Reader r(w.buffer());
    std::vector<InstRecord> back;
    ASSERT_TRUE(decodeTrace(r, back));
    ASSERT_EQ(back.size(), trace.size());
    for (size_t k = 0; k < trace.size(); ++k)
        ASSERT_EQ(back[k], trace[k]) << "record " << k;
}

TEST_F(WireTest, CorruptTraceStreamsFailCleanly)
{
    Rng rng(7);
    std::vector<InstRecord> trace;
    for (int k = 0; k < 32; ++k)
        trace.push_back(randomRecord(rng));
    wire::Writer w;
    encodeTrace(trace, w);

    std::vector<InstRecord> back;
    // Truncations at every prefix length must fail, never crash.
    for (size_t cut = 0; cut + 1 < w.size(); cut += 7) {
        wire::Reader r(w.buffer().data(), cut);
        decodeTrace(r, back); // may succeed only for a full prefix; no UB
    }
    // An opcode byte past the enum must be rejected.
    std::vector<u8> bad = w.buffer();
    bad[1] = 0xff; // first record's opcode
    wire::Reader r(bad);
    EXPECT_FALSE(decodeTrace(r, back));
}

TEST_F(WireTest, RealKernelTraceRoundTripsAndCompresses)
{
    TraceRepository repo;
    for (auto kind : {SimdKind::MMX64, SimdKind::VMMX128}) {
        SharedTrace t = repo.kernel("idct", kind).shared();
        wire::Writer w;
        encodeTrace(*t, w);
        wire::Reader r(w.buffer());
        std::vector<InstRecord> back;
        ASSERT_TRUE(decodeTrace(r, back));
        EXPECT_TRUE(back == *t);

        // The whole point of the delta+varint codec: app-scale traces
        // must shrink by more than 4x against the in-memory layout.
        size_t raw = t->size() * sizeof(InstRecord);
        EXPECT_GT(raw, 4 * w.size())
            << name(kind) << ": " << raw << " raw vs " << w.size()
            << " encoded";
    }
}

TEST_F(WireTest, RunStatsAndRunResultRoundTrip)
{
    RunResult res;
    res.core.cycles = ~0ull;
    res.core.instructions = 123456789012345ull;
    for (size_t c = 0; c < res.core.instByClass.size(); ++c)
        res.core.instByClass[c] = ~0ull - c;
    res.core.scalarCycles = 1;
    res.core.vectorCycles = 0;
    res.core.branches = 42;
    res.core.mispredicts = ~0ull;
    res.core.memOps = 7;
    res.core.renameStallRegs = 1ull << 63;
    res.core.renameStallRob = 127;
    res.core.renameStallIq = 128;
    res.l1Hits = ~0ull;
    res.l1Misses = 0;
    res.l2Hits = 1;
    res.l2Misses = ~0ull - 1;
    res.vecAccesses = 0xcafef00dull;
    res.cohInvalidations = 3;

    wire::Writer w;
    serialize(w, res);
    wire::Reader r(w.buffer());
    RunResult back;
    ASSERT_TRUE(deserialize(r, back));
    EXPECT_TRUE(r.atEnd());
    EXPECT_TRUE(back == res); // every counter, bit-exact
}

TEST_F(WireTest, ConfigAndSweepPointRoundTrip)
{
    Config c;
    c.set("core.robEntries", s64(64));
    c.set("mem.l2Latency", s64(12));
    c.set("label", std::string("with spaces and = signs"));

    SweepPoint p;
    p.workload = SweepPoint::Workload::Kernel;
    p.name = "idct";
    p.kind = SimdKind::VMMX128;
    p.way = 8;
    p.overrides = c;

    wire::Writer w;
    serialize(w, p);
    wire::Reader r(w.buffer());
    SweepPoint back;
    ASSERT_TRUE(deserialize(r, back));
    EXPECT_EQ(back.workload, p.workload);
    EXPECT_EQ(back.name, p.name);
    EXPECT_EQ(back.kind, p.kind);
    EXPECT_EQ(back.way, p.way);
    EXPECT_EQ(back.trace, nullptr);
    EXPECT_EQ(back.label(), p.label()); // includes the overrides
    for (const auto &key : c.keys())
        EXPECT_EQ(back.overrides.getString(key), c.getString(key));
}

TEST_F(WireTest, ExplicitTracePointShipsItsTrace)
{
    Rng rng(11);
    auto trace = std::make_shared<std::vector<InstRecord>>();
    for (int k = 0; k < 100; ++k)
        trace->push_back(randomRecord(rng));

    SweepPoint p;
    p.workload = SweepPoint::Workload::Trace;
    p.name = "custom";
    p.kind = SimdKind::MMX128;
    p.way = 4;
    p.trace = trace;

    wire::Writer w;
    serialize(w, p);
    wire::Reader r(w.buffer());
    SweepPoint back;
    ASSERT_TRUE(deserialize(r, back));
    ASSERT_NE(back.trace, nullptr);
    EXPECT_TRUE(*back.trace == *trace);
}

TEST_F(WireTest, ProtocolMessagesRoundTrip)
{
    dist::SetupMsg setup;
    setup.version = dist::protocolVersion;
    setup.storeDir = "/tmp/store";
    setup.cacheBudget = 1u << 30;
    setup.quiet = true;
    dist::SetupMsg setup2;
    ASSERT_TRUE(dist::decode(dist::encode(setup), setup2));
    EXPECT_EQ(setup2.storeDir, setup.storeDir);
    EXPECT_EQ(setup2.cacheBudget, setup.cacheBudget);
    EXPECT_EQ(setup2.quiet, setup.quiet);

    dist::JobMsg job;
    job.index = 0xfffffffe;
    job.point.name = "motion2";
    job.point.way = 16;
    dist::JobMsg job2;
    ASSERT_TRUE(dist::decode(dist::encode(job), job2));
    EXPECT_EQ(job2.index, job.index);
    EXPECT_EQ(job2.point.label(), job.point.label());

    dist::ResultMsg res;
    res.index = 7;
    res.traceLength = ~0ull;
    res.result.core.cycles = 123;
    dist::ResultMsg res2;
    ASSERT_TRUE(dist::decode(dist::encode(res), res2));
    EXPECT_EQ(res2.index, res.index);
    EXPECT_EQ(res2.traceLength, res.traceLength);
    EXPECT_TRUE(res2.result == res.result);

    // Wrong-type decodes must fail, not misparse.
    EXPECT_FALSE(dist::decode(dist::encode(res), job2));
    std::string what;
    ASSERT_TRUE(dist::decodeError(dist::encodeError("boom"), what));
    EXPECT_EQ(what, "boom");
}

TEST_F(WireTest, SetupMsgCarriesTelemetryFlag)
{
    dist::SetupMsg setup;
    setup.telemetry = true;
    dist::SetupMsg back;
    ASSERT_TRUE(dist::decode(dist::encode(setup), back));
    EXPECT_TRUE(back.telemetry);
    setup.telemetry = false;
    ASSERT_TRUE(dist::decode(dist::encode(setup), back));
    EXPECT_FALSE(back.telemetry);
}

TEST_F(WireTest, EventMsgRoundTrip)
{
    dist::EventMsg ev;
    ev.workerId = 3;
    ev.pid = 0x1234567890ull;

    telemetry::SpanRecord outer;
    outer.name = "simulate";
    outer.detail = "idct/vmmx128/4-way \"quoted\"";
    outer.startNs = 1'000'000'000ull;
    outer.durNs = 42'000'000ull;
    outer.tid = 7;
    telemetry::SpanRecord inner;
    inner.name = "trace.decode";
    inner.startNs = 1'000'500'000ull;
    inner.durNs = 1'000ull;
    ev.spans = {outer, inner};

    telemetry::UnitRecord unit;
    unit.traceHash = 0xdeadbeefcafef00dull;
    unit.label = "idct/vmmx128/4-way";
    unit.points = 3;
    unit.records = 4890;
    unit.wallNs = 31'000'000ull;
    unit.simd = "avx2";
    ev.units = {unit};

    dist::EventMsg back;
    ASSERT_TRUE(dist::decode(dist::encode(ev), back));
    EXPECT_EQ(back.workerId, ev.workerId);
    EXPECT_EQ(back.pid, ev.pid);
    ASSERT_EQ(back.spans.size(), 2u);
    EXPECT_EQ(back.spans[0].name, outer.name);
    EXPECT_EQ(back.spans[0].detail, outer.detail);
    EXPECT_EQ(back.spans[0].startNs, outer.startNs);
    EXPECT_EQ(back.spans[0].durNs, outer.durNs);
    EXPECT_EQ(back.spans[0].tid, outer.tid);
    EXPECT_EQ(back.spans[1].name, inner.name);
    ASSERT_EQ(back.units.size(), 1u);
    EXPECT_EQ(back.units[0].traceHash, unit.traceHash);
    EXPECT_EQ(back.units[0].label, unit.label);
    EXPECT_EQ(back.units[0].points, unit.points);
    EXPECT_EQ(back.units[0].records, unit.records);
    EXPECT_EQ(back.units[0].wallNs, unit.wallNs);
    EXPECT_EQ(back.units[0].simd, unit.simd);

    // decode() stamps the frame-level identity onto every record, so
    // the driver's merged timeline attributes spans without trusting
    // whatever the sender left in those fields.
    for (const auto &s : back.spans) {
        EXPECT_EQ(s.pid, ev.pid);
        EXPECT_EQ(s.workerId, 3);
    }
    EXPECT_EQ(back.units[0].workerId, 3);

    // Empty event frames round-trip too (a worker with nothing new).
    dist::EventMsg empty, emptyBack;
    ASSERT_TRUE(dist::decode(dist::encode(empty), emptyBack));
    EXPECT_TRUE(emptyBack.spans.empty());
    EXPECT_TRUE(emptyBack.units.empty());

    // Wrong-type decode fails.
    dist::ResultMsg res2;
    EXPECT_FALSE(dist::decode(dist::encode(ev), res2));
}

} // namespace
} // namespace vmmx
