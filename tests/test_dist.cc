/**
 * @file
 * Distributed sweep subsystem tests.
 *
 * The headline guarantees: a multi-process sharded sweep is bit-identical
 * to the serial in-process sweep on the same grid; a second run of the
 * same grid is served entirely from the on-disk TraceStore (zero trace
 * regenerations); and an interrupted journaled run resumes without
 * re-executing completed grid points.  Plus the TraceStore (tier-0)
 * mechanics: round trips and corruption tolerance.  Budgeted eviction
 * and the tiered repository itself live in tests/test_trace_repo.cc.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "common/logging.hh"
#include "dist/driver.hh"
#include "harness/sweep.hh"
#include "trace/trace_repo.hh"
#include "trace/trace_store.hh"

namespace fs = std::filesystem;

namespace vmmx
{
namespace
{

class DistTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        dir_ = fs::temp_directory_path() /
               ("vmmx-dist-test-" + std::to_string(::getpid()) + "-" +
                testing::UnitTest::GetInstance()->current_test_info()->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string storeDir() const { return (dir_ / "store").string(); }
    std::string journalPath() const { return (dir_ / "sweep.vmjl").string(); }

    /** 3 kernels x 4 flavours x 2 widths = 24 points, 12 distinct
     *  traces.  Short-trace kernels keep the suite fast. */
    static void buildGrid(Sweep &s)
    {
        s.addKernelGrid({"motion1", "motion2", "comp"},
                        {SimdKind::MMX64, SimdKind::MMX128,
                         SimdKind::VMMX64, SimdKind::VMMX128},
                        {2, 4});
    }

    std::vector<SweepResult> runSerial()
    {
        SweepOptions opts;
        opts.threads = 1;
        opts.repo = &serialRepo_;
        Sweep sweep(opts);
        buildGrid(sweep);
        return sweep.runSerial();
    }

    /** The same grid as raw points, for driving dist::runSweep()
     *  directly -- the fault-injection tests need DistOptions knobs the
     *  SweepOptions wrapper does not carry. */
    static std::vector<SweepPoint> gridPoints()
    {
        Sweep s;
        buildGrid(s);
        return s.points();
    }

    dist::DistOptions faultOpts() const
    {
        dist::DistOptions d;
        d.processes = 2;
        d.storeDir = storeDir();
        d.quiet = true;
        return d;
    }

    static size_t countCause(const dist::DistStats &s,
                             dist::WorkerExit::Cause c)
    {
        size_t n = 0;
        for (const auto &e : s.exitCauses)
            n += e.cause == c;
        return n;
    }

    fs::path dir_;
    TraceRepository serialRepo_;
};

// The ISSUE acceptance test: 2-process sharded run of a >= 24-point grid
// is bit-identical to the serial sweep, and a second run of the same grid
// is served from the on-disk TraceStore with zero trace regenerations.
TEST_F(DistTest, TwoProcessShardedSweepBitIdenticalAndStoreReuse)
{
    auto expect = runSerial();
    ASSERT_GE(expect.size(), 24u);

    SweepOptions opts;
    opts.processes = 2;
    opts.storeDir = storeDir();
    dist::DistStats first;
    opts.distStats = &first;
    Sweep sweep(opts);
    buildGrid(sweep);

    auto got = sweep.run();
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_TRUE(got[i].sameRun(expect[i]))
            << "point " << i << " (" << expect[i].point.label() << ")";
        EXPECT_EQ(got[i].point.label(), expect[i].point.label());
    }
    EXPECT_EQ(first.workers, 2u);
    EXPECT_EQ(first.jobsRun, expect.size());
    // 12 distinct traces and an empty store: every one was generated.
    EXPECT_GE(first.generations, 12u);
    EXPECT_EQ(first.storeSaves, first.generations);

    // Second run of the same grid: every trace comes off disk.
    dist::DistStats second;
    opts.distStats = &second;
    Sweep again(opts);
    buildGrid(again);
    auto rerun = again.run();
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(rerun[i].sameRun(expect[i])) << "rerun point " << i;
    EXPECT_EQ(second.generations, 0u) << "trace regenerated despite store";
    EXPECT_GE(second.diskLoads, 12u);
}

TEST_F(DistTest, OddWorkerCountsStayIdentical)
{
    auto expect = runSerial();

    for (unsigned processes : {1u, 3u}) {
        SweepOptions opts;
        opts.processes = processes;
        opts.storeDir = storeDir();
        dist::DistStats stats;
        opts.distStats = &stats;
        Sweep sweep(opts);
        buildGrid(sweep);
        auto got = sweep.run();
        ASSERT_EQ(got.size(), expect.size());
        for (size_t i = 0; i < expect.size(); ++i)
            EXPECT_TRUE(got[i].sameRun(expect[i]))
                << processes << " workers, point " << i;
        EXPECT_EQ(stats.workers, processes);
    }
}

TEST_F(DistTest, ExplicitTracePointsCrossTheWire)
{
    TraceRepository repo;
    SharedTrace trace = repo.kernel("addblock", SimdKind::MMX64).shared();

    auto build = [&](Sweep &s) {
        for (unsigned way : {2u, 4u, 8u})
            s.addTrace(trace, SimdKind::MMX64, way, "custom");
    };
    SweepOptions serialOpts;
    serialOpts.threads = 1;
    serialOpts.repo = &repo;
    Sweep serial(serialOpts);
    build(serial);
    auto expect = serial.runSerial();

    // More workers than grid points: the driver must clamp.  Per-point
    // sharding here; the batched path ships the whole group below.
    SweepOptions opts;
    opts.processes = 8;
    opts.batch = false;
    opts.storeDir = storeDir();
    dist::DistStats stats;
    opts.distStats = &stats;
    Sweep sweep(opts);
    build(sweep);
    auto got = sweep.run();
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(got[i].sameRun(expect[i])) << "point " << i;
    EXPECT_EQ(stats.workers, expect.size());

    // Batched: the three points are one trace group, so one JobGroup
    // frame (carrying the trace once per point encode) feeds a single
    // worker, and the clamp is by units.
    SweepOptions batched = opts;
    batched.batch = true;
    dist::DistStats groupStats;
    batched.distStats = &groupStats;
    Sweep groupSweep(batched);
    build(groupSweep);
    auto groupGot = groupSweep.run();
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(groupGot[i].sameRun(expect[i])) << "point " << i;
    EXPECT_EQ(groupStats.workers, 1u);
    EXPECT_EQ(groupStats.groupsRun, 1u);
    EXPECT_EQ(groupStats.jobsRun, expect.size());
}

// The PR-3 acceptance test: with batching on (the default), the driver
// shards by trace group -- each group crosses the wire once and runs as
// one batched pass on the worker -- and the aggregated results are still
// bit-identical to the serial per-point sweep.
TEST_F(DistTest, TraceGroupShardingBitIdenticalToSerial)
{
    auto expect = runSerial();
    ASSERT_EQ(expect.size(), 24u);

    SweepOptions opts;
    opts.processes = 2;
    opts.batch = true;
    opts.storeDir = storeDir();
    dist::DistStats stats;
    opts.distStats = &stats;
    Sweep sweep(opts);
    buildGrid(sweep);

    auto got = sweep.run();
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_TRUE(got[i].sameRun(expect[i]))
            << "point " << i << " (" << expect[i].point.label() << ")";
        EXPECT_EQ(got[i].point.label(), expect[i].point.label());
    }
    // 12 (kernel, flavour) traces x 2 widths: every dispatch is a whole
    // group, every point still runs and journals individually.
    EXPECT_EQ(stats.workers, 2u);
    EXPECT_EQ(stats.jobsRun, 24u);
    EXPECT_EQ(stats.groupsRun, 12u);

    // And the per-point (batch off) sharding agrees bit for bit.
    SweepOptions unbatched = opts;
    unbatched.batch = false;
    dist::DistStats pointStats;
    unbatched.distStats = &pointStats;
    Sweep pointSweep(unbatched);
    buildGrid(pointSweep);
    auto pointGot = pointSweep.run();
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(pointGot[i].sameRun(expect[i])) << "point " << i;
    EXPECT_EQ(pointStats.groupsRun, 24u);
}

TEST_F(DistTest, JournalResumeSkipsCompletedJobs)
{
    auto expect = runSerial();

    SweepOptions opts;
    opts.processes = 2;
    opts.storeDir = storeDir();
    opts.journalPath = journalPath();
    dist::DistStats first;
    opts.distStats = &first;
    Sweep sweep(opts);
    buildGrid(sweep);
    auto got = sweep.run();
    EXPECT_EQ(first.jobsRun, expect.size());
    EXPECT_EQ(first.jobsResumed, 0u);

    // The journal survives success; a rerun restores every point without
    // spawning a single worker.
    dist::DistStats second;
    opts.distStats = &second;
    Sweep again(opts);
    buildGrid(again);
    auto rerun = again.run();
    EXPECT_EQ(second.jobsRun, 0u);
    EXPECT_EQ(second.jobsResumed, expect.size());
    EXPECT_EQ(second.workers, 0u);
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(rerun[i].sameRun(expect[i])) << "resumed point " << i;
}

TEST_F(DistTest, TruncatedJournalResumesThePrefix)
{
    auto expect = runSerial();

    SweepOptions opts;
    opts.processes = 2;
    opts.storeDir = storeDir();
    opts.journalPath = journalPath();
    Sweep sweep(opts);
    buildGrid(sweep);
    sweep.run();

    // Chop mid-entry, as a crash during an append would.
    auto size = fs::file_size(journalPath());
    fs::resize_file(journalPath(), size - 5);

    dist::DistStats stats;
    opts.distStats = &stats;
    Sweep again(opts);
    buildGrid(again);
    auto rerun = again.run();
    EXPECT_EQ(stats.jobsResumed, expect.size() - 1)
        << "exactly the damaged trailing entry should rerun";
    EXPECT_EQ(stats.jobsRun, 1u);
    EXPECT_EQ(stats.journalSkipped, 1u);
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(rerun[i].sameRun(expect[i])) << "point " << i;
}

TEST_F(DistTest, JournalForADifferentGridIsDiscarded)
{
    SweepOptions opts;
    opts.processes = 2;
    opts.storeDir = storeDir();
    opts.journalPath = journalPath();
    Sweep sweep(opts);
    buildGrid(sweep);
    sweep.run();

    // Same journal path, different grid: must start fresh, not resume.
    SweepOptions other = opts;
    dist::DistStats stats;
    other.distStats = &stats;
    Sweep small(other);
    small.addKernel("ltpfilt", SimdKind::VMMX128, 4);
    auto got = small.run();
    EXPECT_EQ(stats.jobsResumed, 0u);
    EXPECT_EQ(stats.jobsRun, 1u);

    TraceRepository repo;
    auto trace = repo.kernel("ltpfilt", SimdKind::VMMX128);
    RunResult direct = runTrace(makeMachine(SimdKind::VMMX128, 4), *trace);
    EXPECT_TRUE(got[0].result == direct);
}

// ---- fault injection: the supervisor's recovery paths --------------------
//
// These drive dist::runSweep() directly: DistOptions carries the fault
// plan and supervision knobs.  Every scenario must end bit-identical to
// the serial sweep -- recovery is invisible in the results and visible
// only in DistStats.

TEST_F(DistTest, KilledWorkerIsRespawnedAndStaysBitIdentical)
{
    auto expect = runSerial();
    auto points = gridPoints();

    dist::DistOptions dopts = faultOpts();
    // Spawn 0 calls _exit(137) the moment its second unit arrives.
    dopts.faultSpec = "kill-after-units=1@worker0";
    dist::DistStats stats;
    auto got = dist::runSweep(points, dopts, &stats);

    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(got[i].sameRun(expect[i])) << "point " << i;
    EXPECT_EQ(stats.jobsRun, expect.size());
    EXPECT_EQ(stats.abnormalExits, 1u);
    EXPECT_EQ(countCause(stats, dist::WorkerExit::Cause::Exit), 1u);
    EXPECT_EQ(stats.retries, 1u) << "only the executing unit is charged";
    EXPECT_GE(stats.reassignedUnits, 1u);
    EXPECT_FALSE(stats.degraded);
    EXPECT_TRUE(stats.quarantinedPoints.empty());
}

TEST_F(DistTest, CorruptResultFrameIsFatalToTheWorkerNotTheRun)
{
    auto expect = runSerial();
    auto points = gridPoints();

    dist::DistOptions dopts = faultOpts();
    // Spawn 0 wrecks the type byte of its third result frame; the
    // driver must kill the babbling worker and re-run what was lost.
    dopts.faultSpec = "corrupt-frame=3@worker0";
    dist::DistStats stats;
    auto got = dist::runSweep(points, dopts, &stats);

    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(got[i].sameRun(expect[i])) << "point " << i;
    EXPECT_EQ(stats.jobsRun, expect.size());
    EXPECT_EQ(countCause(stats, dist::WorkerExit::Cause::Malformed), 1u);
    EXPECT_EQ(stats.abnormalExits, 1u);
    EXPECT_GE(stats.reassignedUnits, 1u);
    EXPECT_FALSE(stats.degraded);
}

TEST_F(DistTest, HungWorkerIsKilledAtTheDeadline)
{
    auto expect = runSerial();
    auto points = gridPoints();

    dist::DistOptions dopts = faultOpts();
    // Spawn 0 hangs forever on its first unit; the per-unit deadline
    // must declare it hung, SIGKILL it, and recover.
    dopts.faultSpec = "stall@worker0";
    dopts.unitTimeoutMs = 1500;
    dist::DistStats stats;
    auto got = dist::runSweep(points, dopts, &stats);

    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(got[i].sameRun(expect[i])) << "point " << i;
    EXPECT_GE(countCause(stats, dist::WorkerExit::Cause::Hung), 1u);
    EXPECT_FALSE(stats.degraded);
    EXPECT_TRUE(stats.quarantinedPoints.empty());
}

TEST_F(DistTest, PoisonUnitIsQuarantinedAfterMaxAttempts)
{
    auto expect = runSerial();
    auto points = gridPoints();

    dist::DistOptions dopts = faultOpts();
    // Every spawn dies on the unit containing grid point 5: attempt 1
    // kills one worker, attempt 2 hits maxUnitAttempts and the unit is
    // abandoned instead of grinding the fleet down forever.
    dopts.faultSpec = "kill-on-point=5";
    dopts.maxUnitAttempts = 2;
    dist::DistStats stats;
    auto got = dist::runSweep(points, dopts, &stats);

    ASSERT_EQ(got.size(), expect.size());
    EXPECT_EQ(stats.quarantinedUnits, 1u);
    ASSERT_FALSE(stats.quarantinedPoints.empty());
    EXPECT_NE(std::find(stats.quarantinedPoints.begin(),
                        stats.quarantinedPoints.end(), 5u),
              stats.quarantinedPoints.end());
    std::vector<bool> lost(expect.size(), false);
    for (u32 i : stats.quarantinedPoints)
        lost[i] = true;
    for (size_t i = 0; i < expect.size(); ++i) {
        if (lost[i])
            EXPECT_EQ(got[i].traceLength, 0u)
                << "quarantined point " << i << " must not have run";
        else
            EXPECT_TRUE(got[i].sameRun(expect[i])) << "point " << i;
    }
    EXPECT_EQ(stats.abnormalExits, 2u);
    EXPECT_EQ(stats.jobsRun,
              expect.size() - stats.quarantinedPoints.size());
    EXPECT_FALSE(stats.degraded);
}

TEST_F(DistTest, FleetCollapseDegradesToInDriverExecution)
{
    auto expect = runSerial();
    auto points = gridPoints();

    dist::DistOptions dopts = faultOpts();
    // Every spawn dies on its first unit and each slot may respawn only
    // once: four deaths and the fleet is gone with the grid untouched.
    // The driver must finish the sweep itself, still bit-identical.
    dopts.faultSpec = "kill-after-units=0";
    dopts.maxRespawns = 1;
    dist::DistStats stats;
    auto got = dist::runSweep(points, dopts, &stats);

    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(got[i].sameRun(expect[i])) << "point " << i;
    EXPECT_TRUE(stats.degraded);
    EXPECT_EQ(stats.degradedJobs, expect.size());
    EXPECT_EQ(stats.jobsRun, 0u);
    EXPECT_EQ(stats.respawns, 2u);
    EXPECT_EQ(stats.abnormalExits, 4u);
    EXPECT_EQ(stats.exitCauses.size(), 4u);
    EXPECT_TRUE(stats.quarantinedPoints.empty());
}

TEST_F(DistTest, PostRunAbnormalExitIsRecorded)
{
    auto expect = runSerial();
    auto points = gridPoints();

    dist::DistOptions dopts = faultOpts();
    // Workers finish every job and the Done/Stats handshake, then exit
    // 7 instead of 0 -- the run succeeded but the exits must not be
    // reported as clean.
    dopts.faultSpec = "exit-code=7";
    dist::DistStats stats;
    auto got = dist::runSweep(points, dopts, &stats);

    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(got[i].sameRun(expect[i])) << "point " << i;
    EXPECT_EQ(stats.jobsRun, expect.size());
    EXPECT_EQ(stats.respawns, 0u);
    EXPECT_EQ(stats.abnormalExits, 2u);
    ASSERT_EQ(stats.exitCauses.size(), 2u);
    for (const auto &e : stats.exitCauses) {
        EXPECT_EQ(e.cause, dist::WorkerExit::Cause::Exit);
        EXPECT_NE(e.detail.find("exit 7"), std::string::npos) << e.detail;
        EXPECT_NE(e.detail.find("completing its jobs"), std::string::npos)
            << e.detail;
    }
}

TEST_F(DistTest, FaultyRunJournalsCompletelyAndResumes)
{
    auto expect = runSerial();
    auto points = gridPoints();

    dist::DistOptions dopts = faultOpts();
    dopts.journalPath = journalPath();
    dopts.journalSync = true; // the fdatasync path must survive faults too
    dopts.faultSpec = "kill-after-units=1@worker0";
    dist::DistStats first;
    auto got = dist::runSweep(points, dopts, &first);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(got[i].sameRun(expect[i])) << "point " << i;
    EXPECT_EQ(first.abnormalExits, 1u);

    // The journal a fault-recovered run leaves behind is complete.
    dopts.faultSpec.clear();
    dist::DistStats second;
    auto rerun = dist::runSweep(points, dopts, &second);
    EXPECT_EQ(second.jobsResumed, expect.size());
    EXPECT_EQ(second.jobsRun, 0u);
    EXPECT_EQ(second.workers, 0u);
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(rerun[i].sameRun(expect[i])) << "resumed point " << i;
}

TEST_F(DistTest, MidFileJournalCorruptionSkipsOnlyThatEntry)
{
    auto expect = runSerial();
    auto points = gridPoints();

    dist::DistOptions dopts = faultOpts();
    dopts.journalPath = journalPath();
    dist::runSweep(points, dopts);

    // Flip a byte inside the FIRST entry's payload (16-byte header,
    // 4-byte length prefix): the framing stays intact, so only this one
    // entry is damaged and everything after it must still restore.
    {
        std::fstream f(journalPath(), std::ios::in | std::ios::out |
                                          std::ios::binary);
        f.seekg(16 + 4 + 2);
        char c;
        f.get(c);
        f.seekp(16 + 4 + 2);
        f.put(char(c ^ 0x01));
    }

    dist::DistStats stats;
    auto rerun = dist::runSweep(points, dopts, &stats);
    EXPECT_EQ(stats.journalSkipped, 1u);
    EXPECT_EQ(stats.jobsResumed, expect.size() - 1);
    EXPECT_EQ(stats.jobsRun, 1u);
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_TRUE(rerun[i].sameRun(expect[i])) << "point " << i;
}

TEST_F(DistTest, TraceStoreRoundTripAndCorruptionTolerance)
{
    TraceStore store(storeDir());
    TraceRepository repo;
    TraceKey key{false, "idct", SimdKind::VMMX64,
                 TraceRepository::kernelImageBytes,
                 TraceRepository::defaultSeed};
    SharedTrace trace = repo.raw(key).shared();

    EXPECT_EQ(store.load(key), nullptr); // empty store: miss
    EXPECT_EQ(store.misses(), 1u);
    ASSERT_TRUE(store.save(key, *trace));
    EXPECT_TRUE(store.contains(key));

    SharedTrace back = store.load(key);
    ASSERT_NE(back, nullptr);
    EXPECT_TRUE(*back == *trace);

    // A different key never aliases the stored file.
    TraceKey other = key;
    other.seed ^= 1;
    EXPECT_EQ(store.load(other), nullptr);

    // Flip one payload byte: checksum must reject the file as a miss.
    std::string file = store.path(key);
    {
        std::fstream f(file, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(40);
        char c;
        f.seekg(40);
        f.get(c);
        f.seekp(40);
        f.put(char(c ^ 0x01));
    }
    EXPECT_EQ(store.load(key), nullptr);

    // Truncation too.
    ASSERT_TRUE(store.save(key, *trace));
    fs::resize_file(file, fs::file_size(file) / 2);
    EXPECT_EQ(store.load(key), nullptr);
}

} // namespace
} // namespace vmmx
