/**
 * @file
 * Harness tests: machine construction matches Table III/IV, config
 * overrides reach the models, and timing responds sanely to the knobs
 * across a parameterised (flavour x width) sweep.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "kernels/kernel.hh"

namespace vmmx
{
namespace
{

struct MachineCase
{
    SimdKind kind;
    unsigned way;
};

class MachineSweep
    : public testing::TestWithParam<std::tuple<int, unsigned>>
{
  protected:
    SimdKind kind() const { return SimdKind(std::get<0>(GetParam())); }
    unsigned way() const { return std::get<1>(GetParam()); }
};

TEST_P(MachineSweep, TableIIIParameters)
{
    auto m = makeMachine(kind(), way());
    unsigned idx = way() == 2 ? 0 : way() == 4 ? 1 : 2;

    EXPECT_EQ(m.core.way, way());
    EXPECT_EQ(m.core.intFus, way());
    if (isMatrix(kind())) {
        static const unsigned issue[3] = {1, 2, 3};
        static const unsigned phys[3] = {20, 36, 64};
        static const unsigned ports[3] = {1, 1, 2};
        static const u32 vec[3] = {8, 16, 32};
        EXPECT_EQ(m.core.simdIssue, issue[idx]);
        EXPECT_EQ(m.core.simdFus, issue[idx]);
        EXPECT_EQ(m.core.lanesPerFu, 4u);
        EXPECT_EQ(m.core.physSimd, phys[idx]);
        EXPECT_EQ(m.core.logicalSimd, 16u);
        EXPECT_EQ(m.mem.l1Ports, ports[idx]);
        EXPECT_EQ(m.mem.vecPortBytes, vec[idx]);
    } else {
        static const unsigned phys[3] = {40, 64, 96};
        static const unsigned ports[3] = {1, 2, 4};
        EXPECT_EQ(m.core.simdIssue, way());
        EXPECT_EQ(m.core.simdFus, way());
        EXPECT_EQ(m.core.lanesPerFu, 1u);
        EXPECT_EQ(m.core.physSimd, phys[idx]);
        EXPECT_EQ(m.core.logicalSimd, 32u);
        EXPECT_EQ(m.mem.l1Ports, ports[idx]);
    }
    // Table IV.
    EXPECT_EQ(m.mem.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(m.mem.l1.latency, 3u);
    EXPECT_EQ(m.mem.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(m.mem.l2.latency, 12u);
    EXPECT_EQ(m.mem.memLatency, 500u);
}

TEST_P(MachineSweep, KernelRunsAndScales)
{
    auto trace = [&]() {
        auto k = makeKernel("addblock");
        MemImage mem(16u << 20);
        Rng rng(3);
        k->prepare(mem, rng);
        Program p(mem, kind());
        k->emit(p);
        return p.takeTrace();
    }();
    auto r = runTrace(makeMachine(kind(), way()), trace);
    EXPECT_EQ(r.core.instructions, trace.size());
    EXPECT_GT(r.cycles(), 0u);
    if (way() > 2) {
        auto narrow = runTrace(makeMachine(kind(), 2), trace);
        EXPECT_LE(r.cycles(), narrow.cycles());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, MachineSweep,
    testing::Combine(testing::Values(0, 1, 2, 3),
                     testing::Values(2u, 4u, 8u)),
    [](const auto &tpi) {
        return name(SimdKind(std::get<0>(tpi.param))) + "_" +
               std::to_string(std::get<1>(tpi.param)) + "way";
    });

TEST(Overrides, MemoryLatencyReachesTheModel)
{
    auto k = makeKernel("h2v2");
    MemImage mem(16u << 20);
    Rng rng(4);
    k->prepare(mem, rng);
    Program p(mem, SimdKind::MMX64);
    k->emit(p);

    Config slow;
    slow.set("mem.latency", s64(2000));
    auto fast = runTrace(makeMachine(SimdKind::MMX64, 2), p.trace());
    auto slower =
        runTrace(makeMachine(SimdKind::MMX64, 2, slow), p.trace());
    EXPECT_GT(slower.cycles(), fast.cycles());
}

TEST(Overrides, BadWidthIsRejected)
{
    EXPECT_EXIT(makeMachine(SimdKind::MMX64, 3),
                testing::ExitedWithCode(1), "unsupported");
}

TEST(Regions, KernelCyclesAttributedToVector)
{
    auto k = makeKernel("ycc");
    MemImage mem(16u << 20);
    Rng rng(5);
    k->prepare(mem, rng);
    Program p(mem, SimdKind::MMX64);
    k->emit(p);
    auto r = runTrace(makeMachine(SimdKind::MMX64, 2), p.trace());
    // An isolated kernel is one big vector region.
    EXPECT_GT(r.core.vectorCycles, 9 * r.core.scalarCycles);
    EXPECT_EQ(r.core.vectorCycles + r.core.scalarCycles, r.cycles());
}

} // namespace
} // namespace vmmx
