/**
 * @file
 * Unit tests for the common substrate: Config, stats, MemImage,
 * saturating helpers, the RNG, and the cost model.
 */

#include <gtest/gtest.h>
#include <cstdlib>
#include <sstream>

#include "common/config.hh"
#include "common/env.hh"
#include "common/memimage.hh"
#include "common/rng.hh"
#include "common/saturate.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "cost/rf_model.hh"

namespace vmmx
{
namespace
{

TEST(Config, TypedAccessAndDefaults)
{
    Config c({"a=5", "b=true", "c=hello", "d=2.5"});
    EXPECT_EQ(c.getInt("a"), 5);
    EXPECT_TRUE(c.getBool("b"));
    EXPECT_EQ(c.getString("c"), "hello");
    EXPECT_DOUBLE_EQ(c.getDouble("d"), 2.5);
    EXPECT_EQ(c.getInt("missing", 7), 7);
    EXPECT_FALSE(c.has("missing"));
}

TEST(Config, MergeOverrides)
{
    Config a({"x=1", "y=2"});
    Config b({"y=3", "z=4"});
    a.merge(b);
    EXPECT_EQ(a.getInt("x"), 1);
    EXPECT_EQ(a.getInt("y"), 3);
    EXPECT_EQ(a.getInt("z"), 4);
}

TEST(Stats, CountersAndFormulas)
{
    StatGroup g("test");
    Counter c(&g, "events", "event count");
    Formula f(&g, "double_events", "2x events",
              [&]() { return 2.0 * double(c.value()); });
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    EXPECT_DOUBLE_EQ(f.value(), 10.0);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("test.events 5"), std::string::npos);
}

TEST(Stats, HistogramBuckets)
{
    Histogram h(nullptr, "h", "test", 0, 100, 10);
    h.sample(5);
    h.sample(95);
    h.sample(200); // overflow
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.maxSample(), 200u);
}

TEST(Stats, HistogramBucketEdges)
{
    // v == max is *out* of the half-open [min, max) range: it must land
    // in overflow, not walk off the end of the bucket array (the old
    // code indexed buckets_[buckets] for v == max).
    Histogram h(nullptr, "h", "test", 0, 100, 10);
    h.sample(100);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.samples(), 1u);
    for (size_t i = 0; i < h.numBuckets(); ++i)
        EXPECT_EQ(h.bucketCount(i), 0u) << "bucket " << i;

    // The last in-range value lands in the last bucket.
    h.sample(99);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.overflow(), 1u);

    // Below min is underflow.
    Histogram lo(nullptr, "lo", "test", 10, 20, 5);
    lo.sample(9);
    EXPECT_EQ(lo.underflow(), 1u);
    EXPECT_EQ(lo.minSample(), 9u);
}

TEST(Stats, HistogramDegenerateRange)
{
    // min == max is a valid (if silly) histogram: no value is in
    // [min, max), so everything is under- or overflow and nothing
    // divides by zero.
    Histogram h(nullptr, "h", "test", 5, 5, 4);
    h.sample(4);
    h.sample(5);
    h.sample(6);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.samples(), 3u);
}

TEST(Stats, HistogramZeroCountIsANoOp)
{
    // sample(v, 0) must not count anything -- and in particular must
    // not fold v into the min/max watermarks.
    Histogram h(nullptr, "h", "test", 0, 100, 10);
    h.sample(42);
    h.sample(0, 0);
    h.sample(99999, 0);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_EQ(h.minSample(), 42u);
    EXPECT_EQ(h.maxSample(), 42u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Stats, DumpIsNameSorted)
{
    // Dump order is sorted by stat name, not registration order, so
    // text dumps diff cleanly across code that registers in different
    // orders.
    StatGroup g("grp");
    Counter zeta(&g, "zeta", "last alphabetically, registered first");
    Counter alpha(&g, "alpha", "first alphabetically, registered last");
    Histogram mid(&g, "mid", "in between", 0, 10, 2);
    zeta += 1;
    alpha += 2;
    mid.sample(3);

    std::ostringstream os;
    g.dump(os);
    const std::string text = os.str();
    size_t pAlpha = text.find("grp.alpha");
    size_t pMid = text.find("grp.mid");
    size_t pZeta = text.find("grp.zeta");
    ASSERT_NE(pAlpha, std::string::npos);
    ASSERT_NE(pMid, std::string::npos);
    ASSERT_NE(pZeta, std::string::npos);
    EXPECT_LT(pAlpha, pMid);
    EXPECT_LT(pMid, pZeta);
}

TEST(MemImage, ReadWriteRoundTrip)
{
    MemImage mem(4096);
    Addr a = mem.alloc(64, 16);
    EXPECT_EQ(a % 16, 0u);
    mem.write64(a, 0x1122334455667788ull);
    EXPECT_EQ(mem.read64(a), 0x1122334455667788ull);
    EXPECT_EQ(mem.read8(a), 0x88); // little-endian
    EXPECT_EQ(mem.read16(a + 6), 0x1122);
    mem.write16(a + 2, 0xbeef);
    EXPECT_EQ(mem.read32(a), 0xbeef7788u);
}

TEST(MemImage, AllocationsDontOverlap)
{
    MemImage mem(1 << 16);
    Addr a = mem.alloc(100);
    Addr b = mem.alloc(100);
    EXPECT_GE(b, a + 100);
}

TEST(Saturate, Helpers)
{
    EXPECT_EQ(satAddU8(200, 100), 255);
    EXPECT_EQ(satSubU8(10, 20), 0);
    EXPECT_EQ(satAddS16(30000, 10000), 32767);
    EXPECT_EQ(satSubS16(-30000, 10000), -32768);
    EXPECT_EQ(absDiffU8(3, 250), 247);
    EXPECT_EQ(avgU8(1, 2), 2); // rounds up
    EXPECT_EQ(asr(-7, 1), -4); // arithmetic, floors
    EXPECT_EQ(asr64(-1, 20), -1);
}

TEST(Rng, DeterministicAndRanged)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        s64 v = r.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Table, AlignsColumns)
{
    TextTable t({"a", "long_header"});
    t.addRow({"xxxxx", "1"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("long_header"), std::string::npos);
    EXPECT_NE(os.str().find("xxxxx"), std::string::npos);
}

TEST(RfModel, StorageMatchesTable1)
{
    // Storage KB is exact arithmetic (decimal KB as the paper uses).
    EXPECT_NEAR(RfDesign::forMachine(SimdKind::MMX64, 4).storageKB(),
                0.512, 1e-9);
    EXPECT_NEAR(RfDesign::forMachine(SimdKind::MMX128, 4).storageKB(),
                1.024, 1e-9);
    EXPECT_NEAR(RfDesign::forMachine(SimdKind::VMMX64, 4).storageKB(),
                4.608, 1e-9);
    EXPECT_NEAR(RfDesign::forMachine(SimdKind::VMMX128, 8).storageKB(),
                16.384, 1e-9);
}

TEST(RfModel, AreaTrendsMatchPaper)
{
    auto area = [](SimdKind k, unsigned w) {
        return normalizedArea(RfDesign::forMachine(k, w));
    };
    // Doubling the width doubles a centralized file's area.
    EXPECT_NEAR(area(SimdKind::MMX128, 4), 2 * area(SimdKind::MMX64, 4),
                1e-9);
    // The banked matrix file scales far more gently than the
    // centralized one: 8-way VMMX128 must undercut 8-way MMX128.
    EXPECT_LT(area(SimdKind::VMMX128, 8), area(SimdKind::MMX128, 8));
    // And the port explosion dominates the 8-way MMX designs.
    EXPECT_GT(area(SimdKind::MMX64, 8), 4 * area(SimdKind::MMX64, 4));
}

TEST(RfModel, MatrixStorageExceedsMmx)
{
    for (unsigned way : {4u, 8u}) {
        EXPECT_GT(RfDesign::forMachine(SimdKind::VMMX64, way).storageKB(),
                  RfDesign::forMachine(SimdKind::MMX128, way).storageKB());
    }
}

// ---- the one environment parser (common/env.hh) --------------------------

TEST(Env, ParseFlagAcceptsTheDocumentedSpellings)
{
    bool v = false;
    for (const char *t : {"1", "on", "true", "yes"}) {
        v = false;
        EXPECT_TRUE(env::parseFlag(t, v)) << t;
        EXPECT_TRUE(v) << t;
    }
    for (const char *t : {"0", "off", "false", "no"}) {
        v = true;
        EXPECT_TRUE(env::parseFlag(t, v)) << t;
        EXPECT_FALSE(v) << t;
    }
}

TEST(Env, ParseFlagRejectsGarbage)
{
    bool v = true;
    for (const char *t : {"", "maybe", "ON", "2", "-1", "on "}) {
        EXPECT_FALSE(env::parseFlag(t, v)) << "'" << t << "'";
        EXPECT_TRUE(v) << t; // untouched on failure
    }
    EXPECT_FALSE(env::parseFlag(nullptr, v));
}

TEST(Env, ParseByteSizeSuffixesAndBounds)
{
    u64 b = 0;
    EXPECT_TRUE(env::parseByteSize("4096", b));
    EXPECT_EQ(b, 4096u);
    EXPECT_TRUE(env::parseByteSize("64k", b));
    EXPECT_EQ(b, u64(64) << 10);
    EXPECT_TRUE(env::parseByteSize("64K", b));
    EXPECT_EQ(b, u64(64) << 10);
    EXPECT_TRUE(env::parseByteSize("3M", b));
    EXPECT_EQ(b, u64(3) << 20);
    EXPECT_TRUE(env::parseByteSize("2g", b));
    EXPECT_EQ(b, u64(2) << 30);
    EXPECT_TRUE(env::parseByteSize("0", b));
    EXPECT_EQ(b, 0u);
}

TEST(Env, ParseByteSizeRejectsNegativesAndGarbage)
{
    u64 b = 12345;
    for (const char *t :
         {"", "-1", "-64k", "64q", "k", "64kk", "12 34", "lots"}) {
        EXPECT_FALSE(env::parseByteSize(t, b)) << "'" << t << "'";
        EXPECT_EQ(b, 12345u) << t; // untouched on failure
    }
    EXPECT_FALSE(env::parseByteSize(nullptr, b));
}

TEST(Env, ParseUnsignedRejectsNegativesOverflowAndGarbage)
{
    unsigned v = 7;
    EXPECT_TRUE(env::parseUnsigned("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(env::parseUnsigned("4096", v));
    EXPECT_EQ(v, 4096u);
    EXPECT_TRUE(env::parseUnsigned("4294967295", v));
    EXPECT_EQ(v, 4294967295u);

    v = 7;
    for (const char *t : {"", "-1", "-0", "4294967296", "99999999999",
                          "12x", "x", "1 2"}) {
        EXPECT_FALSE(env::parseUnsigned(t, v)) << "'" << t << "'";
        EXPECT_EQ(v, 7u) << t; // untouched on failure
    }
    EXPECT_FALSE(env::parseUnsigned(nullptr, v));
}

TEST(Env, EnvLookupsFallBackToDefaults)
{
    // Save and scrub; restore at the end so the test is order-neutral.
    // Raw getenv is the point here: the test manipulates the process
    // environment underneath the env:: helpers it exercises.
    // vmmx_lint: allow(env-discipline)
    const char *saved = std::getenv("VMMX_TEST_KNOB");
    std::string savedValue = saved ? saved : "";

    ::unsetenv("VMMX_TEST_KNOB");
    EXPECT_TRUE(env::flag("VMMX_TEST_KNOB", true));
    EXPECT_FALSE(env::flag("VMMX_TEST_KNOB", false));
    EXPECT_EQ(env::byteSize("VMMX_TEST_KNOB", 77), 77u);
    EXPECT_EQ(env::str("VMMX_TEST_KNOB", "dflt"), "dflt");

    ::setenv("VMMX_TEST_KNOB", "off", 1);
    EXPECT_FALSE(env::flag("VMMX_TEST_KNOB", true));
    ::setenv("VMMX_TEST_KNOB", "64k", 1);
    EXPECT_EQ(env::byteSize("VMMX_TEST_KNOB", 77), u64(64) << 10);
    EXPECT_EQ(env::str("VMMX_TEST_KNOB", "dflt"), "64k");

    // Garbage warns and falls back to the default rather than aborting.
    ::setenv("VMMX_TEST_KNOB", "sideways", 1);
    EXPECT_TRUE(env::flag("VMMX_TEST_KNOB", true));
    EXPECT_EQ(env::byteSize("VMMX_TEST_KNOB", 77), 77u);

    if (saved)
        ::setenv("VMMX_TEST_KNOB", savedValue.c_str(), 1);
    else
        ::unsetenv("VMMX_TEST_KNOB");
}

TEST(Env, ParseFaultSpecDirectivesScopesAndSynonyms)
{
    // The documented example: a scoped kill, an unscoped frame
    // corruption, and the `stall=workerN` scope synonym.
    std::vector<env::FaultAction> plan;
    std::string err;
    ASSERT_TRUE(env::parseFaultSpec(
        "kill-after-units=3@worker1,corrupt-frame=7,stall=worker2", plan,
        err))
        << err;
    ASSERT_EQ(plan.size(), 3u);

    EXPECT_EQ(plan[0].kind, env::FaultAction::Kind::KillAfterUnits);
    EXPECT_EQ(plan[0].value, 3u);
    EXPECT_EQ(plan[0].worker, 1);
    EXPECT_FALSE(plan[0].applies(0));
    EXPECT_TRUE(plan[0].applies(1));

    EXPECT_EQ(plan[1].kind, env::FaultAction::Kind::CorruptFrame);
    EXPECT_EQ(plan[1].value, 7u);
    EXPECT_EQ(plan[1].worker, -1) << "unscoped applies to every worker";
    EXPECT_TRUE(plan[1].applies(0));
    EXPECT_TRUE(plan[1].applies(5));

    EXPECT_EQ(plan[2].kind, env::FaultAction::Kind::Stall);
    EXPECT_EQ(plan[2].worker, 2);

    // The remaining directive names, and a bare stall.
    ASSERT_TRUE(env::parseFaultSpec(
        "kill-mid-unit=2,kill-on-point=5,exit-code=7,stall", plan, err))
        << err;
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan[0].kind, env::FaultAction::Kind::KillMidUnit);
    EXPECT_EQ(plan[1].kind, env::FaultAction::Kind::KillOnPoint);
    EXPECT_EQ(plan[2].kind, env::FaultAction::Kind::ExitCode);
    EXPECT_EQ(plan[3].kind, env::FaultAction::Kind::Stall);
    EXPECT_EQ(plan[3].worker, -1);

    // Null or empty is an empty plan, not an error.
    EXPECT_TRUE(env::parseFaultSpec(nullptr, plan, err));
    EXPECT_TRUE(plan.empty());
    EXPECT_TRUE(env::parseFaultSpec("", plan, err));
    EXPECT_TRUE(plan.empty());
}

TEST(Env, ParseFaultSpecRejectsJunkWithADiagnosis)
{
    std::vector<env::FaultAction> plan;
    std::string err;
    for (const char *t :
         {"explode",                      // unknown directive
          "kill-after-units",             // missing required value
          "kill-after-units=",            // empty value
          "kill-after-units=many",        // non-numeric value
          "kill-after-units=3@",          // empty scope
          "kill-after-units=3@worker",    // scope without an ordinal
          "kill-after-units=3@workerX",   // non-numeric ordinal
          "kill-after-units=3@machine1",  // wrong scope keyword
          "stall=worker"}) {              // synonym without an ordinal
        err.clear();
        EXPECT_FALSE(env::parseFaultSpec(t, plan, err)) << "'" << t << "'";
        EXPECT_FALSE(err.empty()) << "'" << t << "'";
    }
}

} // namespace
} // namespace vmmx
