/**
 * @file
 * Host-SIMD dispatch tests: the cpuid probe must report a sane
 * compiled/supported lattice (scalar always present, the active path
 * inside both masks, pins accepted exactly when executable), and --
 * the load-bearing contract -- every compiled+supported kernel path
 * must be bit-identical to the fused serial reference on randomized
 * configuration grids, through both the raw-trace and pre-decoded
 * overloads, at batch widths below, at, and above the widest vector
 * width, and under a decoded-tier budget too small to cache anything.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "common/logging.hh"
#include "harness/sweep.hh"
#include "sim/simd_dispatch.hh"
#include "trace/trace_repo.hh"

namespace vmmx
{
namespace
{

constexpr simd::Path kAllPaths[] = {simd::Path::Scalar, simd::Path::Sse2,
                                    simd::Path::Avx2, simd::Path::Avx512};

u32
bit(simd::Path p)
{
    return u32(1) << unsigned(p);
}

/** Paths this binary can actually execute here, narrowest first. */
std::vector<simd::Path>
runnablePaths()
{
    std::vector<simd::Path> out;
    u32 usable = simd::compiledMask() & simd::supportedMask();
    for (simd::Path p : kAllPaths)
        if (usable & bit(p))
            out.push_back(p);
    return out;
}

class SimdTest : public testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }

    /** Tests pin the process-global active path; put auto-selection
     *  back so ordering between tests cannot matter. */
    void TearDown() override { simd::setActivePathAuto(); }

    TraceRepository repo;
};

TEST_F(SimdTest, ProbeReportsSaneLattice)
{
    // Scalar is unconditionally compiled and unconditionally
    // executable; the masks never stray outside the path ordinals.
    EXPECT_TRUE(simd::compiledMask() & bit(simd::Path::Scalar));
    EXPECT_TRUE(simd::supportedMask() & bit(simd::Path::Scalar));
    EXPECT_EQ(simd::compiledMask() >> simd::numPaths, 0u);
    EXPECT_EQ(simd::supportedMask() >> simd::numPaths, 0u);

    // AVX-512 machines have AVX2; AVX2 machines have SSE2 (the probe
    // checks each feature independently, so this asserts the probe is
    // reading the right bits, not just returning a constant).
    u32 sup = simd::supportedMask();
    if (sup & bit(simd::Path::Avx512)) {
        EXPECT_TRUE(sup & bit(simd::Path::Avx2));
    }
    if (sup & bit(simd::Path::Avx2)) {
        EXPECT_TRUE(sup & bit(simd::Path::Sse2));
    }

    // bestPath and the resolved active path sit inside both masks, and
    // best really is the widest usable ordinal.
    u32 usable = simd::compiledMask() & sup;
    EXPECT_TRUE(usable & bit(simd::bestPath()));
    EXPECT_TRUE(usable & bit(simd::activePath()));
    for (simd::Path p : kAllPaths) {
        if (usable & bit(p)) {
            EXPECT_GE(unsigned(simd::bestPath()), unsigned(p));
        }
    }

    // Lane widths are the whole point of the ordinals: 1, 2, 4, 8.
    EXPECT_EQ(simd::pathLanes(simd::Path::Scalar), 1u);
    EXPECT_EQ(simd::pathLanes(simd::Path::Sse2), 2u);
    EXPECT_EQ(simd::pathLanes(simd::Path::Avx2), 4u);
    EXPECT_EQ(simd::pathLanes(simd::Path::Avx512), 8u);
}

TEST_F(SimdTest, ParseRoundTripsAndRejectsJunk)
{
    for (simd::Path p : kAllPaths) {
        simd::Path back{};
        bool isAuto = true;
        EXPECT_TRUE(simd::parsePath(simd::pathName(p), back, isAuto));
        EXPECT_FALSE(isAuto);
        EXPECT_EQ(back, p);
    }
    simd::Path ignored{};
    bool isAuto = false;
    EXPECT_TRUE(simd::parsePath("auto", ignored, isAuto));
    EXPECT_TRUE(isAuto);
    for (const char *junk : {"", "avx", "AVX2", "sse", "scalar2", "512"}) {
        simd::Path p{};
        bool a = false;
        EXPECT_FALSE(simd::parsePath(junk, p, a)) << '"' << junk << '"';
    }
}

TEST_F(SimdTest, PinSucceedsExactlyWhenRunnable)
{
    u32 usable = simd::compiledMask() & simd::supportedMask();
    for (simd::Path p : kAllPaths) {
        simd::Path before = simd::activePath();
        std::string err = simd::setActivePath(p);
        if (usable & bit(p)) {
            EXPECT_TRUE(err.empty()) << err;
            EXPECT_EQ(simd::activePath(), p);
        } else {
            // Rejected pins must say why and must not change anything.
            EXPECT_FALSE(err.empty()) << simd::pathName(p);
            EXPECT_NE(err.find(simd::pathName(p)), std::string::npos)
                << err;
            EXPECT_EQ(simd::activePath(), before);
        }
    }
}

TEST_F(SimdTest, WidthOneBatchesAlwaysTakeTheSerialStep)
{
    for (simd::Path p : runnablePaths()) {
        ASSERT_EQ(simd::setActivePath(p), "");
        EXPECT_EQ(simd::pathFor(1), simd::Path::Scalar);
        EXPECT_EQ(simd::pathFor(2), p);
        EXPECT_EQ(simd::pathFor(9), p);
    }
}

/** A machine with randomized ablation knobs, mirroring the sweep
 *  tests: wide coverage of the per-lane state the SoA kernels must
 *  keep exact (ROB/IQ/lane/store-window/bpred/memory shapes). */
MachineConfig
randomMachine(std::mt19937 &rng, SimdKind kind)
{
    auto pick = [&](std::initializer_list<s64> choices) {
        std::vector<s64> v(choices);
        return v[rng() % v.size()];
    };
    unsigned way = unsigned(pick({2, 4, 8}));
    Config knobs;
    if (rng() % 2)
        knobs.set("core.rob", pick({16, 32, 64, 128}));
    if (rng() % 2)
        knobs.set("core.iq", pick({8, 16, 32}));
    if (rng() % 2)
        knobs.set("core.lanes", pick({1, 2, 4}));
    if (rng() % 2)
        knobs.set("core.store_window", pick({0, 16, 64}));
    if (rng() % 2)
        knobs.set("core.bpred", pick({256, 4096}));
    if (rng() % 2)
        knobs.set("mem.l2.latency", pick({6, 12, 20}));
    if (rng() % 2)
        knobs.set("mem.mshrs", pick({2, 8}));
    if (rng() % 2)
        knobs.set("mem.l1.size", pick({16 * 1024, 32 * 1024}));
    return makeMachine(kind, way, knobs);
}

// The dispatch contract: every kernel path this host can run is
// bit-identical to N independent runTrace() calls (the fused serial
// oracle) on randomized grids -- raw and pre-decoded overloads, batch
// widths 1 (serial fast path), 2 (partial vector), and 9 (wider than
// any host vector, exercising chunking plus the padded tail).  The rng
// reseeds per path so every path replays the exact same grids.
TEST_F(SimdTest, EveryRunnablePathBitIdenticalToSerial)
{
    for (simd::Path path : runnablePaths()) {
        ASSERT_EQ(simd::setActivePath(path), "");
        for (SimdKind kind : {SimdKind::MMX64, SimdKind::VMMX128}) {
            auto trace = repo.kernel("idct", kind);
            auto stream = repo.decoded(trace.shared());
            std::mt19937 rng(0x51bd);
            for (size_t batchSize : {size_t(1), size_t(2), size_t(9)}) {
                std::vector<MachineConfig> machines;
                machines.reserve(batchSize);
                for (size_t i = 0; i < batchSize; ++i)
                    machines.push_back(randomMachine(rng, kind));

                auto batched = runTraceBatch(machines, *trace);
                auto decoded = runTraceBatch(machines, stream.stream());
                ASSERT_EQ(batched.size(), batchSize);
                for (size_t i = 0; i < batchSize; ++i) {
                    RunResult alone = runTrace(machines[i], *trace);
                    EXPECT_TRUE(batched[i] == alone)
                        << simd::pathName(path) << ' ' << name(kind)
                        << " batch of " << batchSize << ", config " << i;
                    EXPECT_TRUE(decoded[i] == alone)
                        << simd::pathName(path) << " decoded "
                        << name(kind) << " batch of " << batchSize
                        << ", config " << i;
                }
            }
        }
    }
}

// A decoded-tier budget too small to retain anything forces the raw
// overload through its bounded blockwise-decode scratch path on every
// group; the SoA kernels must then see the trace in windows rather
// than one span, with identical results.
TEST_F(SimdTest, TinyDecodedBudgetStaysBitIdentical)
{
    TraceRepository tiny(nullptr, 0, 1);
    auto trace = tiny.kernel("h2v2", SimdKind::VMMX64);
    std::mt19937 rng(0xd0de);
    std::vector<MachineConfig> machines;
    for (size_t i = 0; i < 9; ++i)
        machines.push_back(randomMachine(rng, SimdKind::VMMX64));

    std::vector<RunResult> expect;
    for (const MachineConfig &m : machines)
        expect.push_back(runTrace(m, *trace));

    for (simd::Path path : runnablePaths()) {
        ASSERT_EQ(simd::setActivePath(path), "");
        auto got = runTraceBatch(machines, *trace);
        auto stream = tiny.decoded(trace.shared());
        auto decoded = runTraceBatch(machines, stream.stream());
        ASSERT_EQ(got.size(), expect.size());
        for (size_t i = 0; i < expect.size(); ++i) {
            EXPECT_TRUE(got[i] == expect[i])
                << simd::pathName(path) << " config " << i;
            EXPECT_TRUE(decoded[i] == expect[i])
                << simd::pathName(path) << " decoded config " << i;
        }
    }
}

} // namespace
} // namespace vmmx
