// vmmx_lint-fixture: rule=simd-isolation path=src/harness/fastpath.cc
// AVX intrinsics leaking out of the quarantined kernel TUs: this file
// is not compiled with -mavx2, so the binary would trap on older hosts
// depending on inlining luck.
#include <immintrin.h>

#include "common/types.hh"

namespace vmmx
{

u64
sumFast(const u8 *data, size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    for (size_t i = 0; i + 32 <= n; i += 32)
        acc = _mm256_add_epi8(
            acc, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(data + i)));
    alignas(32) u8 lanes[32];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    u64 total = 0;
    for (u8 b : lanes)
        total += b;
    return total;
}

} // namespace vmmx
