// vmmx_lint-fixture: rule=env-discipline path=src/harness/sweep_tuning.cc
// Environment read bypassing env.hh: no validation, no junk warning,
// and strtoul silently wraps negative values.
#include <cstdlib>

#include "common/types.hh"

namespace vmmx
{

unsigned
sweepChunkOverride()
{
    const char *v = std::getenv("VMMX_SWEEP_CHUNK");
    if (!v)
        return 0;
    return unsigned(std::strtoul(v, nullptr, 10));
}

} // namespace vmmx
