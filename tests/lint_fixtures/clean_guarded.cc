// vmmx_lint-fixture: rule=none path=src/dist/protocol.cc
// The shapes the rules demand, all present and correct: a codec with
// its lockstep guard, a guarded telemetry site, env.hh lookups, and
// intrinsic names only inside comments and strings (which the linter
// must ignore: _mm256_add_epi8, getenv, rand()).
#include "common/env.hh"
#include "common/telemetry.hh"
#include "dist/wire.hh"

namespace vmmx::dist
{

struct PingMsg
{
    u32 nonce;
    u64 sentNs;
};

namespace
{
struct PingMsgMirror
{
    u32 nonce;
    u64 sentNs;
};
static_assert(sizeof(PingMsg) == sizeof(PingMsgMirror),
              "PingMsg changed: update encode/decode and the mirror");
} // namespace

std::vector<u8>
encode(const PingMsg &m)
{
    wire::Writer w;
    w.fixed32(m.nonce);
    w.varint(m.sentNs);
    return w.take();
}

bool
decode(const std::vector<u8> &frame, PingMsg &m)
{
    wire::Reader r(frame.data(), frame.size());
    m.nonce = r.fixed32();
    m.sentNs = r.varint();
    return r.ok() && r.atEnd();
}

void
publishPing(u64 rttNs)
{
    const char *what = "calling getenv(\"HOME\") or _mm256_setzero_si256()";
    (void)what;
    if (!telemetry::enabled())
        return;
    telemetry::Registry &reg = telemetry::Registry::instance();
    reg.addCounter("ping.rttNs", rttNs);
    reg.setGauge("ping.budget", env::size("VMMX_PING_BUDGET", 0));
}

} // namespace vmmx::dist
