// vmmx_lint-fixture: rule=sim-determinism path=src/sim/issue_jitter.cc
// Wall-clock-seeded rand() in the simulator core: two runs of the same
// (trace, config, seed) would report different cycle counts.
#include <cstdlib>
#include <ctime>

#include "common/types.hh"

namespace vmmx
{

u32
issueJitterCycles()
{
    static bool seeded = false;
    if (!seeded) {
        std::srand(unsigned(time(nullptr)));
        seeded = true;
    }
    return u32(std::rand() % 3);
}

} // namespace vmmx
