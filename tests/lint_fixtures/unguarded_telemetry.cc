// vmmx_lint-fixture: rule=telemetry-guard path=src/harness/sweep_metrics.cc
// Registry::instance() with no enabled() check in sight: every call
// takes the registry lock even when telemetry is off.
#include "common/telemetry.hh"

namespace vmmx
{

void
recordSweepPoint(u64 records)
{
    telemetry::Registry &reg = telemetry::Registry::instance();
    reg.addCounter("sweep.records", records);
}

} // namespace vmmx
