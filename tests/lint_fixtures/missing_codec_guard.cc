// vmmx_lint-fixture: rule=codec-guard path=src/dist/protocol.cc
// A message codec with no static_assert lockstep guard: adding a field
// to PingMsg would ship a short frame instead of failing to compile.
#include "dist/wire.hh"

namespace vmmx::dist
{

struct PingMsg
{
    u32 nonce;
    u64 sentNs;
};

std::vector<u8>
encode(const PingMsg &m)
{
    wire::Writer w;
    w.fixed32(m.nonce);
    w.varint(m.sentNs);
    return w.take();
}

bool
decode(const std::vector<u8> &frame, PingMsg &m)
{
    wire::Reader r(frame.data(), frame.size());
    m.nonce = r.fixed32();
    m.sentNs = r.varint();
    return r.ok() && r.atEnd();
}

} // namespace vmmx::dist
