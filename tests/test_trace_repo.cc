/**
 * @file
 * Tiered TraceRepository tests: the decoded tier amortizes the
 * per-record decode process-wide, pins protect borrowed traces and
 * decoded streams against eviction, evicted copies re-materialize from
 * the tier below (decoded from raw, raw from disk), and -- the headline
 * guarantee -- results are bit-identical no matter how tiny the
 * budgets, because budgets only ever change *when* memory is reclaimed,
 * never *what* a run computes.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <random>
#include <unistd.h>

#include "common/logging.hh"
#include "harness/sweep.hh"
#include "trace/trace_repo.hh"
#include "trace/trace_store.hh"

namespace fs = std::filesystem;

namespace vmmx
{
namespace
{

class TraceRepoTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        dir_ = fs::temp_directory_path() /
               ("vmmx-repo-test-" + std::to_string(::getpid()) + "-" +
                testing::UnitTest::GetInstance()->current_test_info()->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string storeDir() const { return (dir_ / "store").string(); }

    static const TraceKey &key(int i)
    {
        static const TraceKey keys[] = {
            {false, "motion1", SimdKind::MMX64,
             TraceRepository::kernelImageBytes, TraceRepository::defaultSeed},
            {false, "motion2", SimdKind::MMX64,
             TraceRepository::kernelImageBytes, TraceRepository::defaultSeed},
            {false, "comp", SimdKind::MMX64,
             TraceRepository::kernelImageBytes, TraceRepository::defaultSeed},
        };
        return keys[i];
    }

    fs::path dir_;
};

TEST_F(TraceRepoTest, DecodedStreamBuiltOncePerKey)
{
    TraceRepository repo(nullptr, 0, 0);
    auto s1 = repo.decoded(key(0));
    EXPECT_EQ(repo.generations(), 1u);
    EXPECT_EQ(repo.decodes(), 1u);
    EXPECT_GT(s1.records(), 0u);

    // Further decoded lookups -- the second group of a sweep, another
    // thread, another batch -- share the same stream object.
    auto s2 = repo.decoded(key(0));
    EXPECT_EQ(repo.decodes(), 1u);
    EXPECT_EQ(repo.decodedStats().hits, 1u);
    EXPECT_EQ(s1.get(), s2.get());

    // The decoded bytes follow the documented ~1.3x raw ratio.
    auto raw = repo.raw(key(0));
    u64 rawBytes = raw->size() * sizeof(InstRecord);
    EXPECT_GT(repo.decodedStats().bytes, rawBytes);
    EXPECT_LT(repo.decodedStats().bytes, 2 * rawBytes);
}

TEST_F(TraceRepoTest, DecodedMatchesPerRecordDecode)
{
    TraceRepository repo(nullptr, 0, 0);
    auto raw = repo.raw(key(1));
    auto stream = repo.decoded(key(1));
    ASSERT_EQ(stream.records(), raw->size());
    for (size_t i = 0; i < raw->size(); ++i) {
        DecodedInst direct = decodeInst((*raw)[i]);
        const DecodedInst &cached = stream.stream().insts[i];
        // DecodedInst is plain data; compare the identity-relevant
        // fields (a full memcmp would be padding-sensitive).
        EXPECT_EQ(direct.addr, cached.addr) << "at " << i;
        EXPECT_EQ(direct.flags, cached.flags) << "at " << i;
        EXPECT_EQ(direct.fu, cached.fu) << "at " << i;
        EXPECT_EQ(direct.latency, cached.latency) << "at " << i;
        EXPECT_EQ(direct.dstReg, cached.dstReg) << "at " << i;
        EXPECT_EQ(direct.nSrcs, cached.nSrcs) << "at " << i;
    }
}

TEST_F(TraceRepoTest, TinyDecodedBudgetEvictsAndRematerializes)
{
    // A 1-byte decoded budget: every unpinned stream is evicted as soon
    // as the next lookup enforces the budget.
    TraceRepository repo(nullptr, 0, 1);
    { auto s = repo.decoded(key(0)); }
    EXPECT_EQ(repo.decodes(), 1u);

    // The next decoded lookup of another key evicts the first (it is
    // unpinned); looking the first up again re-decodes from raw.
    { auto s = repo.decoded(key(1)); }
    EXPECT_GE(repo.decodedStats().evictions, 1u);
    { auto s = repo.decoded(key(0)); }
    EXPECT_EQ(repo.decodes(), 3u);
    // ... but never regenerates the trace itself: tier 1 is intact.
    EXPECT_EQ(repo.generations(), 2u);
}

TEST_F(TraceRepoTest, PinnedDecodedStreamSurvivesTinyBudget)
{
    TraceRepository repo(nullptr, 0, 1);
    auto pinned = repo.decoded(key(0));
    const DecodedStream *object = pinned.get();

    // Budget pressure from other keys cannot evict the pinned stream.
    { auto other = repo.decoded(key(1)); }
    { auto other = repo.decoded(key(2)); }
    auto again = repo.decoded(key(0));
    EXPECT_EQ(again.get(), object) << "pinned stream was evicted";
    EXPECT_EQ(repo.decodedStats().hits, 1u);

    // Once the pins drop, the same pressure does evict it.
    again = TraceRepository::DecodedHandle();
    pinned = TraceRepository::DecodedHandle();
    { auto other = repo.decoded(key(1)); }
    auto rebuilt = repo.decoded(key(0));
    EXPECT_EQ(repo.decodedStats().hits, 1u) << "expected a re-decode";
}

TEST_F(TraceRepoTest, EvictedRawTraceRematerializesFromDisk)
{
    TraceStore store(storeDir());
    TraceRepository repo(&store, /*rawBudgetBytes=*/1, 0);
    u64 aBytes = 0;
    {
        auto a = repo.kernel("motion1", SimdKind::MMX64);
        aBytes = a->size() * sizeof(InstRecord);
    } // unpinned: the repository's copy is now evictable

    // Generating a second trace pushes the first out of RAM (it is disk
    // backed), leaving only the just-returned trace resident.
    auto b = repo.kernel("motion2", SimdKind::MMX64);
    EXPECT_EQ(repo.generations(), 2u);
    EXPECT_GE(repo.rawStats().evictions, 1u);
    EXPECT_LT(repo.rawStats().bytes,
              aBytes + b->size() * sizeof(InstRecord));

    // The evicted trace comes back from disk, not from regeneration.
    auto a2 = repo.kernel("motion1", SimdKind::MMX64);
    EXPECT_EQ(repo.generations(), 2u);
    EXPECT_EQ(repo.diskLoads(), 1u);
    ASSERT_TRUE(bool(a2));

    // A pinned raw trace survives the same pressure.
    auto pinnedB = repo.kernel("motion2", SimdKind::MMX64);
    const std::vector<InstRecord> *object = pinnedB.get();
    { auto c = repo.kernel("comp", SimdKind::MMX64); }
    auto b2 = repo.kernel("motion2", SimdKind::MMX64);
    EXPECT_EQ(b2.get(), object) << "pinned raw trace was evicted";

    // Without a store, the budget cannot evict (nothing is disk backed).
    TraceRepository ramOnly(nullptr, 1, 0);
    { auto t1 = ramOnly.kernel("motion1", SimdKind::MMX64); }
    { auto t2 = ramOnly.kernel("motion2", SimdKind::MMX64); }
    EXPECT_EQ(ramOnly.rawStats().evictions, 0u);
    EXPECT_EQ(ramOnly.size(), 2u);
}

TEST_F(TraceRepoTest, AdoptedExplicitTraceSharesOneDecode)
{
    TraceRepository repo(nullptr, 0, 0);
    SharedTrace trace = repo.kernel("comp", SimdKind::VMMX128).shared();

    auto s1 = repo.decoded(trace);
    auto s2 = repo.decoded(trace);
    EXPECT_EQ(s1.get(), s2.get());
    EXPECT_EQ(repo.decodes(), 1u);
    EXPECT_EQ(repo.decodedStats().hits, 1u);

    // A different trace object decodes separately even if equal bytes.
    SharedTrace copy =
        std::make_shared<const std::vector<InstRecord>>(*trace);
    auto s3 = repo.decoded(copy);
    EXPECT_NE(s3.get(), s1.get());
    EXPECT_EQ(repo.decodes(), 2u);
}

TEST_F(TraceRepoTest, BudgetFromEnvParsesSuffixes)
{
    for (const char *var :
         {"VMMX_TRACE_CACHE_BUDGET", "VMMX_DECODED_CACHE_BUDGET"}) {
        ::setenv(var, "64M", 1);
        EXPECT_EQ(TraceRepository::budgetFromEnv(var), 64ull << 20);
        ::setenv(var, "2g", 1);
        EXPECT_EQ(TraceRepository::budgetFromEnv(var), 2ull << 30);
        ::setenv(var, "4096", 1);
        EXPECT_EQ(TraceRepository::budgetFromEnv(var), 4096ull);
        ::setenv(var, "potato", 1);
        EXPECT_EQ(TraceRepository::budgetFromEnv(var), 0u);
        ::setenv(var, "-5", 1);
        EXPECT_EQ(TraceRepository::budgetFromEnv(var), 0u);
        ::unsetenv(var);
        EXPECT_EQ(TraceRepository::budgetFromEnv(var), 0u);
    }
}

// The ISSUE acceptance test: a randomized ablation grid swept with a
// 1-byte decoded budget (set through the environment, as CI does) is
// bit-identical to the unbounded sweep -- constant eviction and
// re-decode changes memory behaviour only, never results.
TEST_F(TraceRepoTest, RandomizedGridTinyDecodedBudgetBitIdentical)
{
    ::setenv("VMMX_DECODED_CACHE_BUDGET", "1", 1);
    TraceRepository tiny; // budgets read from the environment
    ::unsetenv("VMMX_DECODED_CACHE_BUDGET");
    ASSERT_EQ(tiny.decodedBudget(), 1u);
    TraceRepository unbounded(nullptr, 0, 0);

    std::mt19937 rng(0x5eed);
    auto build = [&rng](Sweep &s) {
        const std::vector<std::string> kernels = {"motion1", "comp",
                                                  "addblock"};
        const SimdKind kinds[] = {SimdKind::MMX64, SimdKind::VMMX128};
        for (int i = 0; i < 18; ++i) {
            Config knobs;
            if (rng() % 2)
                knobs.set("core.rob", s64(16 << (rng() % 4)));
            if (rng() % 2)
                knobs.set("core.iq", s64(8 << (rng() % 3)));
            s.addKernel(kernels[rng() % kernels.size()],
                        kinds[rng() % 2], 2u << (rng() % 3), knobs);
        }
    };

    SweepOptions tinyOpts;
    tinyOpts.repo = &tiny;
    tinyOpts.threads = 4;
    SweepOptions bigOpts;
    bigOpts.repo = &unbounded;
    bigOpts.threads = 4;

    // One grid, built once so both sweeps see identical points (the
    // builder draws from the RNG).
    Sweep proto;
    build(proto);
    Sweep tinySweep(tinyOpts);
    Sweep bigSweep(bigOpts);
    for (const SweepPoint &p : proto.points()) {
        tinySweep.addKernel(p.name, p.kind, p.way, p.overrides);
        bigSweep.addKernel(p.name, p.kind, p.way, p.overrides);
    }

    auto a = tinySweep.run();
    auto b = bigSweep.run();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(a[i].sameRun(b[i]))
            << "point " << i << " (" << a[i].point.label() << ")";

    // The tiny-budget run really did exercise the eviction path.
    EXPECT_GT(tiny.decodedStats().evictions, 0u);
    EXPECT_LE(tiny.decodedStats().bytes, unbounded.decodedStats().bytes);
}

} // namespace
} // namespace vmmx
