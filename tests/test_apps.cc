/**
 * @file
 * Application correctness: all four ISA flavours must produce
 * bit-identical outputs (checksum equality), decoders must invert
 * encoders within the codecs' quantisation error, and the scalar/vector
 * phase structure must be present in the traces.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "apps/app.hh"
#include "apps/gsm.hh"
#include "apps/jpeg.hh"
#include "apps/mpeg2.hh"
#include "harness/runner.hh"

namespace vmmx
{
namespace
{

class AppCorrectness : public testing::TestWithParam<std::string>
{
};

TEST_P(AppCorrectness, FlavourInvariantChecksum)
{
    u64 ref = 0;
    bool first = true;
    for (auto kind : allSimdKinds) {
        auto app = makeApp(GetParam());
        MemImage mem(32u << 20);
        Rng rng(42);
        app->prepare(mem, rng);
        Program p(mem, kind);
        app->emit(p);
        u64 h = app->checksum(mem);
        if (first) {
            ref = h;
            first = false;
        } else {
            EXPECT_EQ(h, ref) << GetParam() << " flavour " << name(kind);
        }
    }
}

TEST_P(AppCorrectness, HasScalarAndVectorPhases)
{
    auto app = makeApp(GetParam());
    MemImage mem(32u << 20);
    Rng rng(42);
    app->prepare(mem, rng);
    Program p(mem, SimdKind::VMMX128);
    app->emit(p);

    u64 scalarRegion = 0;
    u64 vectorRegion = 0;
    for (const auto &inst : p.trace()) {
        if (inst.region != 0)
            ++vectorRegion;
        else
            ++scalarRegion;
    }
    EXPECT_GT(scalarRegion, 0u);
    EXPECT_GT(vectorRegion, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppCorrectness,
                         testing::ValuesIn(appNames()),
                         [](const auto &tpi) { return tpi.param; });

TEST(AppRoundTrip, JpegDecodeApproximatesInput)
{
    JpegDec dec;
    MemImage mem(32u << 20);
    Rng rng(42);
    dec.prepare(mem, rng);
    Program p(mem, SimdKind::MMX64);
    dec.emit(p);

    const JpegLayout &L = dec.layout();
    double err = 0;
    for (unsigned i = 0; i < JpegLayout::kPixels; ++i) {
        err += std::abs(int(mem.read8(L.rgbIn + 3 * i)) -
                        int(mem.read8(L.dR + i)));
        err += std::abs(int(mem.read8(L.rgbIn + 3 * i + 1)) -
                        int(mem.read8(L.dG + i)));
        err += std::abs(int(mem.read8(L.rgbIn + 3 * i + 2)) -
                        int(mem.read8(L.dB + i)));
    }
    double mad = err / (3 * JpegLayout::kPixels);
    EXPECT_LT(mad, 12.0) << "mean abs error too high for q-step 16";
    EXPECT_GT(mem.read64(L.streamLen), 100u);
}

TEST(AppRoundTrip, Mpeg2DecoderMatchesEncoderReconstruction)
{
    Mpeg2Dec dec;
    MemImage mem(32u << 20);
    Rng rng(42);
    dec.prepare(mem, rng);
    Program p(mem, SimdKind::VMMX64);
    dec.emit(p);

    const Mpeg2Layout &L = dec.layout();
    // Drift-free: decoder reconstruction must equal the encoder's.
    for (unsigned y = 0; y < Mpeg2Layout::kH; ++y) {
        for (unsigned x = 0; x < Mpeg2Layout::kW; ++x) {
            Addr off = y * Mpeg2Layout::kPitch + x;
            ASSERT_EQ(mem.read8(L.dRec0 + off), mem.read8(L.recA + off))
                << "I-frame drift at " << x << "," << y;
            ASSERT_EQ(mem.read8(L.dRec1 + off), mem.read8(L.recB + off))
                << "P-frame drift at " << x << "," << y;
        }
    }
}

TEST(AppRoundTrip, GsmDecodeTracksInput)
{
    GsmDec dec;
    MemImage mem(32u << 20);
    Rng rng(42);
    dec.prepare(mem, rng);
    Program p(mem, SimdKind::MMX128);
    dec.emit(p);

    const GsmLayout &L = dec.layout();
    // The codec is lossy; require decent correlation with the input on
    // the later frames (after filter states settle).
    double num = 0, den1 = 0, den2 = 0;
    for (unsigned k = GsmLayout::kFrame; k < GsmLayout::kTotal; ++k) {
        double a = s16(mem.read16(L.input + 2 * k));
        double b = s16(mem.read16(L.output + 2 * k));
        num += a * b;
        den1 += a * a;
        den2 += b * b;
    }
    double corr = num / (std::sqrt(den1 * den2) + 1e-9);
    EXPECT_GT(corr, 0.7) << "decoded speech decorrelated from input";
}

} // namespace
} // namespace vmmx
