/**
 * @file
 * Writing your own traced kernel against the DSL: a 16-bit vector
 * scale-and-add (y[i] = clamp(a*x[i] >> 8 + y[i])), coded for the
 * scalar ISA and the matrix ISA, verified and timed.
 */

#include <iostream>

#include "common/rng.hh"
#include "harness/runner.hh"
#include "trace/program.hh"
#include "trace/vmmx.hh"

using namespace vmmx;

namespace
{

constexpr unsigned kN = 2048; // s16 elements
constexpr s32 kScale = 180;   // Q8 gain

void
emitScalar(Program &p, Addr x, Addr y)
{
    SReg vx = p.sreg();
    SReg vy = p.sreg();
    SReg t = p.sreg();
    p.forLoop(kN, [&](SReg i) {
        p.slli(t, i, 1);
        p.addi(t, t, s64(x));
        p.load(vx, t, 0, 2, true);
        p.muli(vx, vx, kScale);
        p.srai(vx, vx, 8);
        p.slli(t, i, 1);
        p.addi(t, t, s64(y));
        p.load(vy, t, 0, 2, true);
        p.add(vy, vy, vx);
        p.store(vy, t, 0, 2);
    });
}

void
emitMatrix(Program &p, Addr x, Addr y)
{
    Vmmx v(p);
    v.setvl(16);
    unsigned sweepBytes = 16 * v.width();

    SReg sx = p.sreg();
    SReg sy = p.sreg();
    SReg g = p.sreg();
    p.li(sx, x);
    p.li(sy, y);
    p.li(g, u64(kScale));

    VR gain = p.vreg();
    VR lo = p.vreg();
    VR hi = p.vreg();
    VR acc = p.vreg();
    v.vsplat(gain, g, ElemWidth::W16);

    p.forLoop(2 * kN / sweepBytes, [&](SReg) {
        v.loadU(lo, sx, 0);
        // (a * x) >> 8 exactly: 32-bit product via mull/mulh pairs.
        v.pmulh(hi, lo, gain, ElemWidth::W16);
        v.pmull(lo, lo, gain, ElemWidth::W16);
        v.psrli(lo, lo, 8, ElemWidth::W16);
        v.pslli(hi, hi, 8, ElemWidth::W16);
        v.por(lo, lo, hi);
        v.loadU(acc, sy, 0);
        v.padd(acc, acc, lo, ElemWidth::W16);
        v.storeU(acc, sy, 0);
        p.addi(sx, sx, s64(sweepBytes));
        p.addi(sy, sy, s64(sweepBytes));
    });
}

} // namespace

int
main()
{
    MemImage mem(1 << 20);
    Addr x = mem.alloc(2 * kN + 64);
    Addr yScalar = mem.alloc(2 * kN + 64);
    Addr yMatrix = mem.alloc(2 * kN + 64);
    Rng rng(7);
    for (unsigned i = 0; i < kN; ++i) {
        mem.write16(x + 2 * i, u16(s16(rng.range(-1000, 1000))));
        u16 v = u16(s16(rng.range(-1000, 1000)));
        mem.write16(yScalar + 2 * i, v);
        mem.write16(yMatrix + 2 * i, v);
    }

    Program ps(mem, SimdKind::MMX64);
    emitScalar(ps, x, yScalar);
    Program pv(mem, SimdKind::VMMX128);
    emitMatrix(pv, x, yMatrix);

    for (unsigned i = 0; i < kN; ++i) {
        if (mem.read16(yScalar + 2 * i) != mem.read16(yMatrix + 2 * i)) {
            std::cerr << "mismatch at element " << i << "\n";
            return 1;
        }
    }
    std::cout << "scalar and matrix versions agree on " << kN
              << " elements\n";

    auto rs = runTrace(makeMachine(SimdKind::MMX64, 2), ps.trace());
    auto rv = runTrace(makeMachine(SimdKind::VMMX128, 2), pv.trace());
    std::cout << "scalar: " << rs.cycles() << " cycles, matrix: "
              << rv.cycles() << " cycles ("
              << double(rs.cycles()) / double(rv.cycles())
              << "x with VL=16 rows)\n";
    return 0;
}
