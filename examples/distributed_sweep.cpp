/**
 * @file
 * Distributed sweep example: shard a figure-style grid across worker
 * processes with the one-line SweepOptions::processes switch, backed by
 * the persistent on-disk TraceStore.
 *
 * Dispatch is group based: the driver shards the grid by *trace group*
 * (the points that replay one trace -- here, the two widths of each
 * (kernel, flavour) pair), each group crosses the wire as one unit, and
 * the worker runs it as a single batched pass that decodes and streams
 * the trace once for all of the group's machine configurations.  The
 * journal still records one entry per point, so batched and per-point
 * (VMMX_SWEEP_BATCH=0) runs share journals and aggregation format.
 *
 *   run 1: workers generate every trace, spill it to the store, and the
 *          driver journals each finished point;
 *   run 2: the same grid is served with zero trace regenerations --
 *          traces come off disk, and the completed points come straight
 *          from the journal without spawning a single worker.
 *
 * Results of every variant are bit-identical to the serial in-process
 * sweep; the example exits nonzero if not.
 */

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "common/table.hh"
#include "dist/driver.hh"
#include "harness/sweep.hh"

using namespace vmmx;

int
main()
{
    setQuiet(true);
    namespace fs = std::filesystem;
    const fs::path scratch =
        fs::temp_directory_path() / "vmmx-distributed-sweep-example";
    fs::remove_all(scratch);
    fs::create_directories(scratch);
    const std::string store = (scratch / "traces").string();
    const std::string journal = (scratch / "sweep.vmjl").string();

    auto build = [](Sweep &s) {
        s.addKernelGrid({"motion1", "addblock", "comp"},
                        {SimdKind::MMX64, SimdKind::VMMX128}, {2, 4});
    };

    // Reference: the serial in-process sweep.
    SweepOptions serialOpts;
    serialOpts.threads = 1;
    TraceRepository privateRepo;
    serialOpts.repo = &privateRepo;
    Sweep serial(serialOpts);
    build(serial);
    auto expect = serial.runSerial();

    // Distributed: same grid, two worker processes, disk-backed traces,
    // crash-resume journal.
    SweepOptions opts;
    opts.processes = 2;
    opts.storeDir = store;
    opts.journalPath = journal;
    dist::DistStats stats;
    opts.distStats = &stats;

    Sweep sweep(opts);
    build(sweep);
    std::cout << "distributed sweep: " << sweep.size()
              << " grid points over " << opts.processes << " workers\n\n";
    auto results = sweep.run();

    TextTable table({"point", "cycles", "ipc"});
    for (const auto &r : results)
        table.addRow({r.point.label(), std::to_string(r.cycles()),
                      TextTable::num(r.result.core.ipc())});
    table.print(std::cout);
    std::cout << "\nrun 1: " << stats.summary() << '\n';

    // Second invocation: everything resumes from the journal.
    dist::DistStats resumed;
    opts.distStats = &resumed;
    Sweep rerun(opts);
    build(rerun);
    auto resumedResults = rerun.run();
    std::cout << "run 2: " << resumed.summary() << '\n';

    // And with the journal gone, traces still come off the disk store.
    std::remove(journal.c_str());
    dist::DistStats fromStore;
    opts.distStats = &fromStore;
    Sweep storeRun(opts);
    build(storeRun);
    auto storeResults = storeRun.run();
    std::cout << "run 3: " << fromStore.summary() << '\n';

    bool ok = true;
    for (size_t i = 0; i < expect.size(); ++i)
        ok = ok && results[i].sameRun(expect[i]) &&
             resumedResults[i].sameRun(expect[i]) &&
             storeResults[i].sameRun(expect[i]);
    std::cout << "\nbit-identical to the serial sweep: "
              << (ok ? "yes" : "NO") << '\n';
    if (fromStore.generations != 0) {
        std::cout << "expected zero regenerations from the store\n";
        ok = false;
    }
    fs::remove_all(scratch);
    return ok ? 0 : 1;
}
