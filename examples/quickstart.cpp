/**
 * @file
 * Quickstart: run one media kernel on two machine configurations and
 * compare them -- the smallest useful end-to-end use of the library.
 *
 *   1. create a memory image and let a kernel set up its inputs
 *   2. emit the kernel for a SIMD flavour (trace + functional results)
 *   3. replay the trace on a Table III/IV machine
 */

#include <iostream>

#include "harness/runner.hh"
#include "kernels/kernel.hh"

using namespace vmmx;

int
main()
{
    // 1. Workload setup (deterministic).
    auto kernel = makeKernel("motion1");
    MemImage mem(16u << 20);
    Rng rng(2024);
    kernel->prepare(mem, rng);
    kernel->golden(mem);

    // 2. Emit the MMX64 and VMMX128 versions.  Both execute
    //    functionally while they emit, so results are checkable.
    Program mmx(mem, SimdKind::MMX64);
    kernel->emit(mmx);
    Program vmmx(mem, SimdKind::VMMX128);
    kernel->emit(vmmx);

    for (const auto &out : kernel->outputs()) {
        for (u32 i = 0; i < out.bytes; ++i) {
            if (mem.read8(out.actual + i) != mem.read8(out.expected + i)) {
                std::cerr << "output mismatch -- simulator bug\n";
                return 1;
            }
        }
    }
    std::cout << "functional outputs verified against the golden "
                 "reference\n\n";

    // 3. Time both on their 2-way machines.
    auto mmxRun = runTrace(makeMachine(SimdKind::MMX64, 2), mmx.trace());
    auto vmmxRun =
        runTrace(makeMachine(SimdKind::VMMX128, 2), vmmx.trace());

    std::cout << "motion1 (SAD candidate search) on 2-way machines:\n"
              << "  mmx64  : " << mmx.trace().size() << " insts, "
              << mmxRun.cycles() << " cycles, IPC "
              << mmxRun.core.ipc() << "\n"
              << "  vmmx128: " << vmmx.trace().size() << " insts, "
              << vmmxRun.cycles() << " cycles, IPC "
              << vmmxRun.core.ipc() << "\n"
              << "  speed-up: "
              << double(mmxRun.cycles()) / double(vmmxRun.cycles())
              << "x\n";
    return 0;
}
