/**
 * @file
 * Motion-estimation scenario (the paper's section II-D case study):
 * a full-search SAD over a real search window, across all four SIMD
 * flavours and all three machine widths.
 */

#include <iostream>

#include "common/table.hh"
#include "common/rng.hh"
#include "harness/runner.hh"
#include "kernels/kops_motion.hh"

using namespace vmmx;

namespace
{

constexpr unsigned kLx = 720;
constexpr int kWin = 4;

std::vector<InstRecord>
buildSearch(MemImage &mem, Addr cur, Addr ref, SimdKind kind)
{
    Program p(mem, kind);
    p.beginVectorRegion();
    SReg a = p.sreg();
    SReg b = p.sreg();
    SReg sad = p.sreg();
    SReg best = p.sreg();
    SReg lx = p.sreg();
    p.li(best, ~u64(0) >> 1);
    p.li(lx, kLx);
    for (int dy = -kWin; dy <= kWin; ++dy) {
        for (int dx = -kWin; dx <= kWin; ++dx) {
            p.li(a, cur);
            p.li(b, ref + Addr(s64(dy) * kLx + dx));
            if (p.matrix()) {
                Vmmx v(p);
                kops::sadVmmx(p, v, a, b, 16, lx, sad);
            } else {
                Mmx m(p);
                kops::sadMmx(p, m, a, b, 16, kLx, sad);
            }
            if (p.brLt(sad, best))
                p.mov(best, sad);
        }
    }
    p.endVectorRegion();
    return p.takeTrace();
}

} // namespace

int
main()
{
    MemImage mem(4u << 20);
    Rng rng(99);
    Addr frame = mem.alloc(kLx * 64 + 64);
    for (unsigned i = 0; i < kLx * 48; ++i)
        mem.write8(frame + i, rng.byte());
    Addr cur = frame + 16 * kLx + 300;
    Addr ref = frame + 18 * kLx + 302;

    std::cout << "full-search SAD, " << (2 * kWin + 1) << "x"
              << (2 * kWin + 1) << " window, 16x16 blocks, frame stride "
              << kLx << "\n\n";

    TextTable table({"flavour", "insts", "2-way cyc", "4-way cyc",
                     "8-way cyc"});
    for (auto kind : allSimdKinds) {
        auto trace = buildSearch(mem, cur, ref, kind);
        std::vector<std::string> row = {name(kind),
                                        std::to_string(trace.size())};
        for (unsigned way : {2u, 4u, 8u}) {
            auto r = runTrace(makeMachine(kind, way), trace);
            row.push_back(std::to_string(r.cycles()));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nThe matrix flavours replace the per-row loop with "
                 "strided matrix loads\nand packed-accumulator "
                 "reductions (paper Figure 3).\n";
    return 0;
}
