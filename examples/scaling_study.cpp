/**
 * @file
 * Scaling study over a complete application: how far does widening the
 * superscalar core take each SIMD flavour on mpeg2enc?  Reproduces the
 * paper's headline observation that a narrow matrix machine competes
 * with a much wider 1-D machine.
 *
 * The whole (flavour x width) grid runs through the batched sweep
 * engine: the points are grouped by trace -- one group of three widths
 * per flavour -- and each group is dispatched as a single
 * runTraceBatch() pass, so every flavour's mpeg2enc trace is generated
 * once in the shared trace repository and then decoded once process-wide
 * while all three machine widths step against it.  (Set
 * VMMX_SWEEP_BATCH=0 to fall back to one job per point; the results
 * are bit-identical either way.)
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "harness/sweep.hh"

using namespace vmmx;

int
main()
{
    setQuiet(true);
    std::cout << "mpeg2enc cycles by flavour and machine width\n\n";

    const std::vector<unsigned> ways = {2, 4, 8};
    Sweep sweep;
    for (auto kind : allSimdKinds) {
        // Keep this example's historical input seed (5, not the bench
        // default) by resolving the trace explicitly; the repository
        // still memoizes it across the three widths, and the decoded
        // tier shares one decode across them.
        auto trace = TraceRepository::instance().app(
            "mpeg2enc", kind, TraceRepository::appImageBytes, 5);
        for (unsigned way : ways)
            sweep.addTrace(trace.shared(), kind, way, "mpeg2enc");
    }
    auto results = sweep.run();

    TextTable table({"flavour", "insts", "2-way", "4-way", "8-way",
                     "8-way IPC"});
    double base = 0;
    for (size_t f = 0; f < allSimdKinds.size(); ++f) {
        const auto *runs = &results[f * ways.size()];
        std::vector<std::string> row = {
            name(allSimdKinds[f]), std::to_string(runs[0].traceLength)};
        for (size_t wi = 0; wi < ways.size(); ++wi)
            row.push_back(std::to_string(runs[wi].cycles()));
        if (allSimdKinds[f] == SimdKind::MMX64)
            base = double(runs[0].cycles());
        row.push_back(TextTable::num(runs[ways.size() - 1].result.core.ipc()));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(speed-ups vs the 2-way mmx64 baseline of "
              << u64(base) << " cycles; see bench_fig5 for all apps)\n";

    // The batched API directly: replay one trace against a whole span
    // of machine configurations in a single pass -- here an ROB
    // sensitivity study on the 8-way matrix machine.  The decoded
    // handle comes straight from the repository's tier 2, so this pass
    // does not even decode: the sweep above already paid that once.
    auto trace = TraceRepository::instance().app(
        "mpeg2enc", SimdKind::VMMX128, TraceRepository::appImageBytes, 5);
    auto stream = TraceRepository::instance().decoded(trace.shared());
    std::vector<MachineConfig> machines;
    const std::vector<s64> robSizes = {16, 32, 64, 128};
    for (s64 rob : robSizes) {
        Config knobs;
        knobs.set("core.rob", rob);
        machines.push_back(makeMachine(SimdKind::VMMX128, 8, knobs));
    }
    auto runs = runTraceBatch(machines, stream.stream());

    std::cout << "\nROB sensitivity (8-way vmmx128, one batched pass):\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        std::cout << "  rob=" << robSizes[i] << ": " << runs[i].cycles()
                  << " cycles, IPC " << TextTable::num(runs[i].core.ipc())
                  << '\n';
    }
    return 0;
}
