/**
 * @file
 * Scaling study over a complete application: how far does widening the
 * superscalar core take each SIMD flavour on mpeg2enc?  Reproduces the
 * paper's headline observation that a narrow matrix machine competes
 * with a much wider 1-D machine.
 */

#include <iostream>

#include "apps/app.hh"
#include "common/table.hh"
#include "harness/runner.hh"

using namespace vmmx;

int
main()
{
    setQuiet(true);
    std::cout << "mpeg2enc cycles by flavour and machine width\n\n";

    TextTable table({"flavour", "insts", "2-way", "4-way", "8-way",
                     "8-way IPC"});
    double base = 0;
    for (auto kind : allSimdKinds) {
        auto app = makeApp("mpeg2enc");
        MemImage mem(32u << 20);
        Rng rng(5);
        app->prepare(mem, rng);
        Program p(mem, kind);
        app->emit(p);
        auto trace = p.takeTrace();

        std::vector<std::string> row = {name(kind),
                                        std::to_string(trace.size())};
        double ipc8 = 0;
        Cycle c2 = 0;
        for (unsigned way : {2u, 4u, 8u}) {
            auto r = runTrace(makeMachine(kind, way), trace);
            row.push_back(std::to_string(r.cycles()));
            if (way == 2)
                c2 = r.cycles();
            if (way == 8)
                ipc8 = r.core.ipc();
        }
        if (kind == SimdKind::MMX64)
            base = double(c2);
        row.push_back(TextTable::num(ipc8));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(speed-ups vs the 2-way mmx64 baseline of "
              << u64(base) << " cycles; see bench_fig5 for all apps)\n";
    return 0;
}
