/**
 * @file
 * Scaling study over a complete application: how far does widening the
 * superscalar core take each SIMD flavour on mpeg2enc?  Reproduces the
 * paper's headline observation that a narrow matrix machine competes
 * with a much wider 1-D machine.
 *
 * The whole (flavour x width) grid runs through the parallel sweep
 * engine: each flavour's mpeg2enc trace is generated once in the shared
 * trace cache and the twelve machine runs proceed concurrently.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "harness/sweep.hh"

using namespace vmmx;

int
main()
{
    setQuiet(true);
    std::cout << "mpeg2enc cycles by flavour and machine width\n\n";

    const std::vector<unsigned> ways = {2, 4, 8};
    Sweep sweep;
    for (auto kind : allSimdKinds) {
        // Keep this example's historical input seed (5, not the bench
        // default) by resolving the trace explicitly; the cache still
        // memoizes it across the three widths.
        auto trace = TraceCache::instance().app(
            "mpeg2enc", kind, TraceCache::appImageBytes, 5);
        for (unsigned way : ways)
            sweep.addTrace(trace, kind, way, "mpeg2enc");
    }
    auto results = sweep.run();

    TextTable table({"flavour", "insts", "2-way", "4-way", "8-way",
                     "8-way IPC"});
    double base = 0;
    for (size_t f = 0; f < allSimdKinds.size(); ++f) {
        const auto *runs = &results[f * ways.size()];
        std::vector<std::string> row = {
            name(allSimdKinds[f]), std::to_string(runs[0].traceLength)};
        for (size_t wi = 0; wi < ways.size(); ++wi)
            row.push_back(std::to_string(runs[wi].cycles()));
        if (allSimdKinds[f] == SimdKind::MMX64)
            base = double(runs[0].cycles());
        row.push_back(TextTable::num(runs[ways.size() - 1].result.core.ipc()));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(speed-ups vs the 2-way mmx64 baseline of "
              << u64(base) << " cycles; see bench_fig5 for all apps)\n";
    return 0;
}
