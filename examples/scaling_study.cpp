/**
 * @file
 * Scaling study over a complete application: how far does widening the
 * superscalar core take each SIMD flavour on mpeg2enc?  Reproduces the
 * paper's headline observation that a narrow matrix machine competes
 * with a much wider 1-D machine.
 *
 * Written against the declarative Study API: the first study is the
 * (flavour x width) grid with a pivot speed-up report, the second is an
 * ROB ablation expressed as override sets (the specs/rob_ablation.study
 * shape, built in code here).  Both run through the pluggable executor
 * backends -- flip `backend` to Backend::Process and the same spec
 * shards across worker processes, bit-identically.  The printed spec
 * text round-trips through Study::fromSpecText, so either study can be
 * saved to a file and rerun with tools/vmmx_study.
 */

#include <iostream>

#include "common/logging.hh"
#include "harness/study.hh"

using namespace vmmx;

int
main()
{
    setQuiet(true);
    std::cout << "mpeg2enc speed-up by flavour and machine width\n\n";

    // Note: earlier revisions of this example resolved the mpeg2enc
    // trace with an explicit input seed of 5; the declarative grid uses
    // the repository default seed, so absolute cycle counts differ from
    // runs of the old example (speed-up ratios tell the same story).
    StudySpec spec;
    spec.title = "mpeg2enc scaling study";
    spec.apps = {"mpeg2enc"};
    spec.report.layout = ReportSpec::Layout::Pivot;
    spec.report.pivot = ReportSpec::Metric::Speedup;

    // The grid points replaying one trace form a single batched group:
    // each flavour's mpeg2enc trace is generated once in the shared
    // trace repository and decoded once process-wide while all three
    // machine widths step against it.
    Study study(spec);
    auto results = study.run();
    study.writeReport(std::cout, results);

    std::cout << "\n(speed-ups vs the 2-way mmx64 baseline; see "
                 "bench_fig5 for all apps)\n";

    // The same grid restated as IPC per point -- no re-run, just a
    // different report over the same results.
    study.spec().report.layout = ReportSpec::Layout::Points;
    study.spec().report.metrics = {ReportSpec::Metric::Cycles,
                                   ReportSpec::Metric::Ipc,
                                   ReportSpec::Metric::Speedup};
    std::cout << '\n';
    study.writeReport(std::cout, results);

    // An ablation grid: override sets replicate the (workload, kind,
    // way) point once per knob setting -- an ROB sensitivity study on
    // the 8-way matrix machine, all four depths in one batched trace
    // pass.  This is specs/rob_ablation.study built in code.
    StudySpec ablation;
    ablation.title = "ROB sensitivity, 8-way vmmx128 mpeg2enc";
    ablation.apps = {"mpeg2enc"};
    ablation.kinds = {SimdKind::VMMX128};
    ablation.ways = {8};
    for (s64 rob : {16, 32, 64, 128}) {
        Config knobs;
        knobs.set("core.rob", rob);
        ablation.overrideSets.push_back(knobs);
    }
    ablation.report.layout = ReportSpec::Layout::Points;
    ablation.report.metrics = {ReportSpec::Metric::Cycles,
                               ReportSpec::Metric::Ipc};

    Study robStudy(ablation);
    std::cout << "\nROB sensitivity (8-way vmmx128, one batched pass):\n";
    robStudy.writeReport(std::cout, robStudy.run());

    // Declarative means serializable: the spec below can be written to
    // a file and replayed byte-identically with tools/vmmx_study.
    std::cout << "\nspec file for the ablation study:\n\n"
              << robStudy.specText();
    return 0;
}
