#include "trace/trace_repo.hh"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "apps/app.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "common/memimage.hh"
#include "common/telemetry.hh"
#include "common/rng.hh"
#include "kernels/kernel.hh"
#include "trace/program.hh"

namespace vmmx
{

/**
 * One trace across all RAM tiers.  The build mutex serializes
 * materialization per entry; the atomics are readable without it (the
 * eviction candidate scan), and bytes/pointers are written only under
 * it.  Pin counters are incremented under the build mutex and
 * decremented lock-free by handle destructors; eviction re-reads them
 * after winning a try_lock on the build mutex, so a pin taken before
 * the lookup returned can never be missed.
 */
struct TraceRepository::Entry
{
    std::mutex build;
    TraceKey key;      ///< identity of keyed entries
    bool keyed = true; ///< false: adopted explicit trace (tier 2 only)
    /** Adopted entries: the caller-owned source trace (identity check
     *  and re-decode source; never counted against the raw budget). */
    std::weak_ptr<const std::vector<InstRecord>> source;

    SharedTrace raw;       ///< tier 1 (null until filled / after eviction)
    SharedDecoded decoded; ///< tier 2 (null until filled / after eviction)
    std::atomic<bool> rawResident{false};
    std::atomic<bool> decodedResident{false};
    std::atomic<bool> onDisk{false};
    std::atomic<u64> lastUseRaw{0};
    std::atomic<u64> lastUseDecoded{0};
    std::atomic<u32> rawPins{0};
    std::atomic<u32> decodedPins{0};
    u64 rawBytes = 0;     // written under build before rawResident
    u64 decodedBytes = 0; // written under build before decodedResident
};

// ---- pin handles ---------------------------------------------------------

TraceRepository::TraceHandle::TraceHandle(SharedTrace t,
                                          std::shared_ptr<Entry> e)
    : trace_(std::move(t)), entry_(std::move(e))
{
}

TraceRepository::TraceHandle::TraceHandle(TraceHandle &&o) noexcept =
    default;

TraceRepository::TraceHandle &
TraceRepository::TraceHandle::operator=(TraceHandle &&o) noexcept
{
    if (this != &o) {
        release();
        trace_ = std::move(o.trace_);
        entry_ = std::move(o.entry_);
        o.trace_ = nullptr;
        o.entry_ = nullptr;
    }
    return *this;
}

TraceRepository::TraceHandle::~TraceHandle()
{
    release();
}

void
TraceRepository::TraceHandle::release()
{
    if (entry_)
        entry_->rawPins.fetch_sub(1, std::memory_order_release);
    entry_ = nullptr;
    trace_ = nullptr;
}

TraceRepository::DecodedHandle::DecodedHandle(SharedDecoded s,
                                              std::shared_ptr<Entry> e)
    : stream_(std::move(s)), entry_(std::move(e))
{
}

TraceRepository::DecodedHandle::DecodedHandle(DecodedHandle &&o) noexcept =
    default;

TraceRepository::DecodedHandle &
TraceRepository::DecodedHandle::operator=(DecodedHandle &&o) noexcept
{
    if (this != &o) {
        release();
        stream_ = std::move(o.stream_);
        entry_ = std::move(o.entry_);
        o.stream_ = nullptr;
        o.entry_ = nullptr;
    }
    return *this;
}

TraceRepository::DecodedHandle::~DecodedHandle()
{
    release();
}

void
TraceRepository::DecodedHandle::release()
{
    if (entry_)
        entry_->decodedPins.fetch_sub(1, std::memory_order_release);
    entry_ = nullptr;
    stream_ = nullptr;
}

// ---- construction --------------------------------------------------------

TraceRepository::TraceRepository(TraceStore *store, u64 rawBudgetBytes,
                                 u64 decodedBudgetBytes)
    : store_(store),
      rawBudget_(rawBudgetBytes),
      decodedBudget_(decodedBudgetBytes)
{
}

TraceRepository::~TraceRepository() = default;

TraceRepository &
TraceRepository::instance()
{
    // The disk tier is opt-in for the process-wide repository: benches
    // that pin references for the process lifetime should not silently
    // start writing files unless the user asked for a store.
    static TraceStore *store = []() -> TraceStore * {
        std::string dir = env::str("VMMX_TRACE_STORE");
        if (dir.empty())
            return nullptr;
        static TraceStore s(dir);
        return &s;
    }();
    static TraceRepository repo(store);
    return repo;
}

bool
TraceRepository::parseBudget(const char *text, u64 &bytes)
{
    return env::parseByteSize(text, bytes);
}

u64
TraceRepository::budgetFromEnv(const char *envVar)
{
    return env::byteSize(envVar);
}

void
TraceRepository::attachStore(TraceStore *store)
{
    store_ = store;
}

// ---- lookups -------------------------------------------------------------

std::shared_ptr<TraceRepository::Entry>
TraceRepository::entryFor(const TraceKey &key)
{
    std::lock_guard<std::mutex> lock(registryMu_);
    auto it = keyed_.find(key);
    if (it == keyed_.end()) {
        auto e = std::make_shared<Entry>();
        e->key = key;
        it = keyed_.emplace(key, std::move(e)).first;
    }
    return it->second;
}

std::shared_ptr<TraceRepository::Entry>
TraceRepository::entryFor(const SharedTrace &trace)
{
    vmmx_assert(trace != nullptr, "cannot adopt a null trace");
    std::lock_guard<std::mutex> lock(registryMu_);
    // Identity keys can be reused after their trace dies; prune expired
    // adoptions so a recycled address never serves stale bytes.  A
    // pinned entry stays (a DecodedHandle may outlive the source trace
    // it was decoded from) and is reaped on a later pass.
    for (auto it = adopted_.begin(); it != adopted_.end();) {
        Entry &e = *it->second;
        if (e.source.expired() && e.decodedPins.load() == 0 &&
            e.build.try_lock()) {
            if (e.decodedResident.load() && e.decodedPins.load() == 0) {
                bytesDecoded_ -= e.decodedBytes;
                e.decodedResident = false;
                e.decoded.reset();
            }
            e.build.unlock();
            it = adopted_.erase(it);
        } else {
            ++it;
        }
    }
    auto it = adopted_.find(trace.get());
    // An unpruned (pinned) stale entry can squat on a recycled address:
    // require true object identity, not just pointer equality.
    if (it != adopted_.end() && it->second->source.lock() != trace) {
        if (it->second->decodedResident.load())
            bytesDecoded_ -= it->second->decodedBytes;
        adopted_.erase(it);
        it = adopted_.end();
    }
    if (it == adopted_.end()) {
        auto e = std::make_shared<Entry>();
        e->keyed = false;
        e->source = trace;
        it = adopted_.emplace(trace.get(), std::move(e)).first;
    }
    return it->second;
}

SharedTrace
TraceRepository::materializeRaw(Entry &e)
{
    vmmx_assert(e.keyed, "only keyed entries own a raw tier");
    if (store_) {
        TELEMETRY_SPAN("trace.diskLoad", telemetry::enabled()
                                             ? e.key.name
                                             : std::string());
        if (SharedTrace t = store_->load(e.key)) {
            e.raw = std::move(t);
            e.rawBytes = e.raw->size() * sizeof(InstRecord);
            e.onDisk = true;
            e.rawResident = true;
            bytesRaw_ += e.rawBytes;
            ++diskLoads_;
            return e.raw;
        }
    }

    std::vector<InstRecord> trace;
    {
        TELEMETRY_SPAN("trace.generate", telemetry::enabled()
                                             ? e.key.name
                                             : std::string());
        const TraceKey &key = e.key;
        MemImage mem(key.imageBytes);
        Rng rng(key.seed);
        if (key.isApp) {
            auto a = makeApp(key.name);
            a->prepare(mem, rng);
            Program p(mem, key.kind);
            a->emit(p);
            trace = p.takeTrace();
        } else {
            auto k = makeKernel(key.name);
            k->prepare(mem, rng);
            Program p(mem, key.kind);
            k->emit(p);
            trace = p.takeTrace();
        }
    }

    e.raw = std::make_shared<const std::vector<InstRecord>>(std::move(trace));
    e.rawBytes = e.raw->size() * sizeof(InstRecord);
    e.rawResident = true;
    bytesRaw_ += e.rawBytes;
    ++generations_;
    if (store_ && store_->save(e.key, *e.raw))
        e.onDisk = true;
    return e.raw;
}

TraceRepository::TraceHandle
TraceRepository::kernel(const std::string &name, SimdKind kind,
                        u32 imageBytes, u64 seed)
{
    return raw({false, name, kind, imageBytes, seed});
}

TraceRepository::TraceHandle
TraceRepository::app(const std::string &name, SimdKind kind, u32 imageBytes,
                     u64 seed)
{
    return raw({true, name, kind, imageBytes, seed});
}

TraceRepository::TraceHandle
TraceRepository::raw(const TraceKey &key)
{
    std::shared_ptr<Entry> entry = entryFor(key);

    std::lock_guard<std::mutex> build(entry->build);
    if (entry->raw)
        ++rawHits_;
    else
        materializeRaw(*entry);
    SharedTrace t = entry->raw;
    entry->rawPins.fetch_add(1, std::memory_order_relaxed);
    touchRawAndEnforce(entry.get());
    return TraceHandle(std::move(t), std::move(entry));
}

TraceRepository::DecodedHandle
TraceRepository::decoded(const TraceKey &key)
{
    std::shared_ptr<Entry> entry = entryFor(key);

    std::lock_guard<std::mutex> build(entry->build);
    if (entry->decoded) {
        ++decodedHits_;
    } else {
        // Fill from tier 1 (itself filling from disk or generation);
        // the raw copy stays resident for later raw() lookups and is
        // reclaimed by its own budget, not by this one.
        SharedTrace src = entry->raw;
        if (!src)
            src = materializeRaw(*entry);
        TELEMETRY_SPAN("trace.decode", telemetry::enabled()
                                           ? key.name
                                           : std::string());
        entry->decoded =
            std::make_shared<const DecodedStream>(decodeStream(*src));
        entry->decodedBytes = entry->decoded->bytes();
        entry->decodedResident = true;
        bytesDecoded_ += entry->decodedBytes;
        ++decodes_;
        // The raw tier was touched by the fill even on a decoded miss.
        entry->lastUseRaw = ++useClock_;
    }
    SharedDecoded s = entry->decoded;
    entry->decodedPins.fetch_add(1, std::memory_order_relaxed);
    touchDecodedAndEnforce(entry.get());
    return DecodedHandle(std::move(s), std::move(entry));
}

TraceRepository::DecodedHandle
TraceRepository::decoded(const SharedTrace &trace)
{
    std::shared_ptr<Entry> entry = entryFor(trace);

    std::lock_guard<std::mutex> build(entry->build);
    if (entry->decoded) {
        ++decodedHits_;
    } else {
        TELEMETRY_SPAN("trace.decode");
        entry->decoded =
            std::make_shared<const DecodedStream>(decodeStream(*trace));
        entry->decodedBytes = entry->decoded->bytes();
        entry->decodedResident = true;
        bytesDecoded_ += entry->decodedBytes;
        ++decodes_;
    }
    SharedDecoded s = entry->decoded;
    entry->decodedPins.fetch_add(1, std::memory_order_relaxed);
    touchDecodedAndEnforce(entry.get());
    return DecodedHandle(std::move(s), std::move(entry));
}

// ---- budgets -------------------------------------------------------------

void
TraceRepository::touchRawAndEnforce(Entry *keep)
{
    keep->lastUseRaw = ++useClock_;
    enforceBudgets(keep);
}

void
TraceRepository::touchDecodedAndEnforce(Entry *keep)
{
    keep->lastUseDecoded = ++useClock_;
    enforceBudgets(keep);
}

void
TraceRepository::enforceBudgets(Entry *keep)
{
    u64 rawBudget = rawBudget_.load();
    u64 decodedBudget = decodedBudget_.load();
    bool overRaw = rawBudget != 0 && bytesRaw_.load() > rawBudget;
    bool overDecoded =
        decodedBudget != 0 && bytesDecoded_.load() > decodedBudget;
    if (!overRaw && !overDecoded)
        return;

    std::lock_guard<std::mutex> lock(registryMu_);
    for (;;) {
        overRaw = rawBudget != 0 && bytesRaw_.load() > rawBudget;
        overDecoded =
            decodedBudget != 0 && bytesDecoded_.load() > decodedBudget;
        if (!overRaw && !overDecoded)
            return;

        // One LRU spanning both RAM tiers: the victim is the (entry,
        // tier) pair with the oldest use stamp among tiers over their
        // budget.  A tier copy is evictable when it is resident,
        // unpinned, safe to drop (raw: mirrored on disk; decoded:
        // always, it re-materializes from tier 1), and not part of the
        // entry being returned right now.
        Entry *victim = nullptr;
        bool victimDecoded = false;
        u64 oldest = ~0ull;
        auto consider = [&](Entry *e) {
            if (e == keep)
                return;
            // One load per stamp: a concurrent touch between compare
            // and assign would otherwise inflate `oldest` past the
            // value that won, skewing the LRU choice.
            if (overRaw && e->rawResident.load() && e->onDisk.load() &&
                e->rawPins.load() == 0) {
                u64 use = e->lastUseRaw.load();
                if (use < oldest) {
                    oldest = use;
                    victim = e;
                    victimDecoded = false;
                }
            }
            if (overDecoded && e->decodedResident.load() &&
                e->decodedPins.load() == 0) {
                u64 use = e->lastUseDecoded.load();
                if (use < oldest) {
                    oldest = use;
                    victim = e;
                    victimDecoded = true;
                }
            }
        };
        for (auto &kv : keyed_)
            consider(kv.second.get());
        for (auto &kv : adopted_)
            consider(kv.second.get());
        if (!victim)
            return; // everything left is pinned or not safely droppable
        // try_lock is load-bearing: lookups hold an entry lock while
        // calling into here for registryMu_, so blocking on the
        // victim's entry lock here would invert the two lock orders and
        // can deadlock.  A busy victim just ends this eviction pass.
        if (!victim->build.try_lock())
            return;
        // Re-check under the lock: a pin may have landed between the
        // candidate scan and the lock.
        if (victimDecoded) {
            if (victim->decodedResident.load() &&
                victim->decodedPins.load() == 0) {
                victim->decoded.reset();
                victim->decodedResident = false;
                bytesDecoded_ -= victim->decodedBytes;
                ++decodedEvictions_;
            }
        } else {
            if (victim->rawResident.load() && victim->rawPins.load() == 0) {
                victim->raw.reset();
                victim->rawResident = false;
                bytesRaw_ -= victim->rawBytes;
                ++rawEvictions_;
            }
        }
        victim->build.unlock();
    }
}

// ---- statistics ----------------------------------------------------------

TraceRepository::TierStats
TraceRepository::rawStats() const
{
    return {rawHits_.load(), generations_.load() + diskLoads_.load(),
            rawEvictions_.load(), bytesRaw_.load()};
}

TraceRepository::TierStats
TraceRepository::decodedStats() const
{
    return {decodedHits_.load(), decodes_.load(), decodedEvictions_.load(),
            bytesDecoded_.load()};
}

size_t
TraceRepository::size() const
{
    std::lock_guard<std::mutex> lock(registryMu_);
    return keyed_.size() + adopted_.size();
}

std::string
TraceRepository::summary() const
{
    size_t nKeyed, nAdopted;
    {
        std::lock_guard<std::mutex> lock(registryMu_);
        nKeyed = keyed_.size();
        nAdopted = adopted_.size();
    }
    TierStats rawT = rawStats();
    TierStats decT = decodedStats();
    auto mib = [](u64 b) { return double(b) / (1024.0 * 1024.0); };
    auto budgetStr = [&](u64 b) {
        if (b == 0)
            return std::string("unlimited");
        std::ostringstream s;
        s << std::fixed << std::setprecision(1) << mib(b) << " MiB";
        return s.str();
    };

    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    os << "trace repository: " << nKeyed + nAdopted << " traces";
    if (nAdopted)
        os << " (" << nAdopted << " adopted)";
    os << '\n';
    os << "  tier0 disk   : ";
    if (store_)
        os << store_->loads() << " loads, " << store_->saves() << " saves, "
           << store_->misses() << " misses [" << store_->dir() << "]";
    else
        os << "detached";
    os << '\n';
    os << "  tier1 raw    : " << mib(rawT.bytes) << " MiB resident (budget "
       << budgetStr(rawBudget()) << "), " << rawT.hits << " hits, "
       << rawT.fills << " fills (" << generations() << " generated, "
       << diskLoads() << " from disk), " << rawT.evictions << " evictions\n";
    os << "  tier2 decoded: " << mib(decT.bytes) << " MiB resident (budget "
       << budgetStr(decodedBudget()) << "), " << decT.hits << " hits, "
       << decT.fills << " decodes, " << decT.evictions << " evictions";
    return os.str();
}

void
TraceRepository::publishMetrics() const
{
    if (!telemetry::enabled())
        return;
    telemetry::Registry &reg = telemetry::Registry::instance();
    TierStats rawT = rawStats();
    TierStats decT = decodedStats();
    reg.setGauge("repo.traces", size());
    reg.setGauge("repo.generations", generations());
    reg.setGauge("repo.diskLoads", diskLoads());
    reg.setGauge("repo.storeSaves", store_ ? store_->saves() : 0);
    reg.setGauge("repo.raw.hits", rawT.hits);
    reg.setGauge("repo.raw.fills", rawT.fills);
    reg.setGauge("repo.raw.evictions", rawT.evictions);
    reg.setGauge("repo.raw.bytes", rawT.bytes);
    reg.setGauge("repo.decodes", decT.fills);
    reg.setGauge("repo.decoded.hits", decT.hits);
    reg.setGauge("repo.decoded.evictions", decT.evictions);
    reg.setGauge("repo.decoded.bytes", decT.bytes);
}

void
TraceRepository::clear()
{
    std::lock_guard<std::mutex> lock(registryMu_);
    keyed_.clear();
    adopted_.clear();
    bytesRaw_ = 0;
    bytesDecoded_ = 0;
    generations_ = 0;
    diskLoads_ = 0;
    decodes_ = 0;
    rawHits_ = 0;
    decodedHits_ = 0;
    rawEvictions_ = 0;
    decodedEvictions_ = 0;
}

} // namespace vmmx
