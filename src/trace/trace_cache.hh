/**
 * @file
 * Process-wide memoizing cache of generated instruction traces, with an
 * optional persistent disk tier.
 *
 * Trace generation is execution driven (the Program DSL runs the kernel
 * functionally while recording), so a trace for a given TraceKey
 * (workload, SimdKind, image-size, seed) is deterministic and immutable
 * once built.  Sweeps over machine widths and cache/latency
 * configurations replay the same trace many times; the cache guarantees
 * each distinct trace is built exactly once per process and then shared,
 * read-only, across all threads of the sweep engine.
 *
 * With a TraceStore attached, misses consult the on-disk tier before
 * generating, fresh generations are spilled to disk, and a memory budget
 * (VMMX_TRACE_CACHE_BUDGET, or setBudget()) bounds the bytes held in RAM:
 * when exceeded, the least-recently-used disk-backed entries drop their
 * RAM copy and reload from disk on the next lookup.  Outstanding
 * SharedTrace handles keep evicted data alive until released, so eviction
 * is always safe -- it only affects when memory is reclaimed.
 *
 * Thread model: lookups take a short registry lock to find or create the
 * entry, then build the trace under the entry's own mutex so concurrent
 * requests for *different* keys generate in parallel while concurrent
 * requests for the *same* key block until the first builder finishes.
 * Eviction acquires entry mutexes only via try_lock while holding the
 * registry lock, which lookups never hold while acquiring an entry
 * mutex, so the two lock orders cannot deadlock.
 */

#ifndef VMMX_TRACE_TRACE_CACHE_HH
#define VMMX_TRACE_TRACE_CACHE_HH

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/trace_store.hh"

namespace vmmx
{

class TraceCache
{
  public:
    /** Default memory-image size for kernel workloads (16 MiB). */
    static constexpr u32 kernelImageBytes = 16u << 20;
    /** Default memory-image size for application workloads (32 MiB). */
    static constexpr u32 appImageBytes = 32u << 20;
    /** Default input-generation seed (matches the figure benches). */
    static constexpr u64 defaultSeed = 0xbeef;

    /**
     * @param store optional persistent tier (not owned; must outlive the
     *              cache or be detached first).
     * @param budgetBytes RAM budget; 0 = unlimited.  Only disk-backed
     *              entries are ever evicted, so without a store the
     *              budget is accounting-only.
     */
    explicit TraceCache(TraceStore *store = nullptr,
                        u64 budgetBytes = budgetFromEnv());
    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /** The shared per-process cache used by benches and the sweep
     *  engine.  Attaches a store iff $VMMX_TRACE_STORE is set. */
    static TraceCache &instance();

    /** Parse $VMMX_TRACE_CACHE_BUDGET ("64M", "2G", plain bytes);
     *  0/unset/invalid = unlimited. */
    static u64 budgetFromEnv();

    /** Attach (or with nullptr detach) the persistent tier.  Not
     *  thread-safe against concurrent lookups; call before sweeping. */
    void attachStore(TraceStore *store);
    TraceStore *store() const { return store_; }

    void setBudget(u64 bytes) { budget_.store(bytes); }
    u64 budget() const { return budget_.load(); }

    /** Trace of a Table II kernel, built at most once per key. */
    SharedTrace kernel(const std::string &name, SimdKind kind,
                       u32 imageBytes = kernelImageBytes,
                       u64 seed = defaultSeed);

    /** Trace of one of the six applications, built at most once per key. */
    SharedTrace app(const std::string &name, SimdKind kind,
                    u32 imageBytes = appImageBytes, u64 seed = defaultSeed);

    /** Generic keyed lookup (distributed workers). */
    SharedTrace get(const TraceKey &key);

    /** Number of traces actually generated (cache fills). */
    u64 generations() const { return generations_.load(); }
    /** Number of lookups served from a RAM-resident trace. */
    u64 hits() const { return hits_.load(); }
    /** Number of lookups served by decoding the on-disk store. */
    u64 diskLoads() const { return diskLoads_.load(); }
    /** Number of RAM copies dropped to stay under the budget. */
    u64 evictions() const { return evictions_.load(); }
    /** Bytes of trace data currently held in RAM by this cache. */
    u64 bytesResident() const { return bytesResident_.load(); }
    /** Number of distinct traces currently known (resident or spilled). */
    size_t size() const;

    /** One-line human summary for sweep/bench output. */
    std::string summary() const;

    /**
     * Drop all cached traces and reset the stats.  Only safe when no
     * borrowed references (e.g. bench_util's kernelTrace()/appTrace(),
     * which return references into this cache) are still live; intended
     * for tests using a private cache, not for instance().
     */
    void clear();

  private:
    struct Entry
    {
        std::mutex build;
        SharedTrace trace; // null until generated (or after eviction)
        /** Redundant with trace != null, but readable without holding
         *  build (eviction candidate scan). */
        std::atomic<bool> resident{false};
        std::atomic<bool> onDisk{false};
        std::atomic<u64> lastUse{0};
        u64 bytes = 0; // written under build before resident goes true
    };

    SharedTrace lookup(const TraceKey &key);
    /** Update LRU stamp for @p keep and evict others past the budget. */
    void touchAndEnforceBudget(Entry *keep);

    TraceStore *store_ = nullptr;
    std::atomic<u64> budget_;

    mutable std::mutex registryMu_;
    std::map<TraceKey, std::shared_ptr<Entry>> entries_;
    std::atomic<u64> useClock_{0};
    std::atomic<u64> bytesResident_{0};
    std::atomic<u64> generations_{0};
    std::atomic<u64> hits_{0};
    std::atomic<u64> diskLoads_{0};
    std::atomic<u64> evictions_{0};
};

} // namespace vmmx

#endif // VMMX_TRACE_TRACE_CACHE_HH
