/**
 * @file
 * Process-wide memoizing cache of generated instruction traces.
 *
 * Trace generation is execution driven (the Program DSL runs the kernel
 * functionally while recording), so a trace for a given
 * (workload, SimdKind, image-size, seed) key is deterministic and
 * immutable once built.  Sweeps over machine widths and cache/latency
 * configurations replay the same trace many times; the cache guarantees
 * each distinct trace is built exactly once per process and then shared,
 * read-only, across all threads of the sweep engine.
 *
 * Thread model: lookups take a short registry lock to find or create the
 * entry, then build the trace under the entry's own mutex so concurrent
 * requests for *different* keys generate in parallel while concurrent
 * requests for the *same* key block until the first builder finishes.
 */

#ifndef VMMX_TRACE_TRACE_CACHE_HH
#define VMMX_TRACE_TRACE_CACHE_HH

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "isa/inst.hh"
#include "isa/simd_kind.hh"

namespace vmmx
{

/** Immutable, shareable dynamic instruction trace. */
using SharedTrace = std::shared_ptr<const std::vector<InstRecord>>;

class TraceCache
{
  public:
    /** Default memory-image size for kernel workloads (16 MiB). */
    static constexpr u32 kernelImageBytes = 16u << 20;
    /** Default memory-image size for application workloads (32 MiB). */
    static constexpr u32 appImageBytes = 32u << 20;
    /** Default input-generation seed (matches the figure benches). */
    static constexpr u64 defaultSeed = 0xbeef;

    TraceCache() = default;
    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /** The shared per-process cache used by benches and the sweep engine. */
    static TraceCache &instance();

    /** Trace of a Table II kernel, built at most once per key. */
    SharedTrace kernel(const std::string &name, SimdKind kind,
                       u32 imageBytes = kernelImageBytes,
                       u64 seed = defaultSeed);

    /** Trace of one of the six applications, built at most once per key. */
    SharedTrace app(const std::string &name, SimdKind kind,
                    u32 imageBytes = appImageBytes, u64 seed = defaultSeed);

    /** Number of traces actually generated (cache fills). */
    u64 generations() const { return generations_.load(); }
    /** Number of lookups served without regenerating. */
    u64 hits() const { return hits_.load(); }
    /** Number of distinct traces currently held. */
    size_t size() const;

    /**
     * Drop all cached traces and reset the stats.  Only safe when no
     * borrowed references (e.g. bench_util's kernelTrace()/appTrace(),
     * which return references into this cache) are still live; intended
     * for tests using a private cache, not for instance().
     */
    void clear();

  private:
    struct Key
    {
        bool isApp;
        std::string name;
        SimdKind kind;
        u32 imageBytes;
        u64 seed;

        bool operator<(const Key &o) const
        {
            return std::tie(isApp, name, kind, imageBytes, seed) <
                   std::tie(o.isApp, o.name, o.kind, o.imageBytes, o.seed);
        }
    };

    struct Entry
    {
        std::mutex build;
        SharedTrace trace; // null until generated
    };

    SharedTrace lookup(const Key &key);

    mutable std::mutex registryMu_;
    std::map<Key, std::shared_ptr<Entry>> entries_;
    std::atomic<u64> generations_{0};
    std::atomic<u64> hits_{0};
};

} // namespace vmmx

#endif // VMMX_TRACE_TRACE_CACHE_HH
