/**
 * @file
 * Execution-driven trace builder.
 *
 * A Program is written against this DSL exactly like hand-tuned
 * emulation-library code (the paper's methodology): every call both
 * executes the operation functionally -- registers and the MemImage hold
 * real values, so kernel outputs can be verified bit-exactly -- and
 * appends a dynamic InstRecord to the trace that the timing core replays.
 *
 * Control flow runs natively in C++; branch-emitting helpers record the
 * resolved direction together with a static site id (derived from the
 * call site via std::source_location) so the branch predictor sees a
 * realistic static/dynamic mix.
 *
 * Scalar code (address arithmetic, loop overhead, entropy coding...) must
 * be spelled out instruction by instruction: that overhead is precisely
 * what the paper's 1-D/2-D comparison is about.
 */

#ifndef VMMX_TRACE_PROGRAM_HH
#define VMMX_TRACE_PROGRAM_HH

#include <functional>
#include <source_location>
#include <vector>

#include "common/memimage.hh"
#include "emu/accum.hh"
#include "emu/vword.hh"
#include "isa/inst.hh"
#include "isa/simd_kind.hh"

namespace vmmx
{

/** Handle to an allocated scalar (integer) register. */
struct SReg
{
    u8 idx = 0xff;
    bool valid() const { return idx != 0xff; }
};

/** Handle to an allocated SIMD / matrix register. */
struct VR
{
    u8 idx = 0xff;
    bool valid() const { return idx != 0xff; }
};

/** Handle to a packed accumulator. */
struct AR
{
    u8 idx = 0xff;
    bool valid() const { return idx != 0xff; }
};

class Program
{
  public:
    Program(MemImage &mem, SimdKind kind);

    SimdKind kind() const { return kind_; }
    /** Bytes per packed word / matrix row (8 or 16). */
    unsigned width() const { return width_; }
    bool matrix() const { return isMatrix(kind_); }

    const std::vector<InstRecord> &trace() const { return trace_; }
    std::vector<InstRecord> takeTrace() { return std::move(trace_); }
    MemImage &mem() { return mem_; }

    // ---- vectorised-region markers (Figure 6 attribution) ----
    void beginVectorRegion() { region_ = 1; }
    void endVectorRegion() { region_ = 0; }
    bool inVectorRegion() const { return region_ != 0; }

    // ---- register allocation ----
    /** Allocation mark for scoped register reuse. */
    struct Frame
    {
        unsigned intMark;
        unsigned simdMark;
        unsigned accMark;
    };

    Frame mark() const { return {intAlloc_, simdAlloc_, accAlloc_}; }
    void release(const Frame &f);

    SReg sreg();
    VR vreg();
    AR areg();

    // ---- functional state accessors ----
    u64 val(SReg r) const { return intRegs_[check(r)]; }
    s64 sval(SReg r) const { return s64(intRegs_[check(r)]); }
    const VWord &vval(VR r) const { return vregs_[check(r)]; }
    const MatrixReg &mval(VR r) const { return mregs_[check(r)]; }
    const emu::Accum &aval(AR r) const { return accs_[check(r)]; }
    u16 vl() const { return vl_; }

    // ---- scalar integer operations ----
    void li(SReg d, u64 imm);
    void mov(SReg d, SReg s);
    void add(SReg d, SReg a, SReg b);
    void addi(SReg d, SReg a, s64 imm);
    void sub(SReg d, SReg a, SReg b);
    void mul(SReg d, SReg a, SReg b);
    void muli(SReg d, SReg a, s64 imm);
    void div(SReg d, SReg a, SReg b);
    void and_(SReg d, SReg a, SReg b);
    void andi(SReg d, SReg a, u64 imm);
    void or_(SReg d, SReg a, SReg b);
    void ori(SReg d, SReg a, u64 imm);
    void xor_(SReg d, SReg a, SReg b);
    void slli(SReg d, SReg a, unsigned sh);
    void srli(SReg d, SReg a, unsigned sh);
    void srai(SReg d, SReg a, unsigned sh);
    void sll(SReg d, SReg a, SReg b);
    void srl(SReg d, SReg a, SReg b);
    void sra(SReg d, SReg a, SReg b);
    void slt(SReg d, SReg a, SReg b);
    void slti(SReg d, SReg a, s64 imm);

    // ---- scalar memory (displacement addressing) ----
    /**
     * Scalar load of @p bytes at val(base) + disp.
     * @param signExtend sign-extend sub-64-bit values when true.
     * @return the loaded value (also written to @p d).
     */
    u64 load(SReg d, SReg base, s64 disp, unsigned bytes,
             bool signExtend = false);
    void store(SReg v, SReg base, s64 disp, unsigned bytes);

    // ---- control flow ----
    using Loc = std::source_location;

    /** Emit a conditional branch with resolved direction @p taken. */
    void branch(bool taken, SReg a, SReg b, Loc loc = Loc::current());

    /** Compare-and-branch helpers; @return the taken direction so the
     *  caller's native control flow can follow the same path. */
    bool brLt(SReg a, SReg b, Loc loc = Loc::current());
    bool brGe(SReg a, SReg b, Loc loc = Loc::current());
    bool brEq(SReg a, SReg b, Loc loc = Loc::current());
    bool brNe(SReg a, SReg b, Loc loc = Loc::current());
    bool brLtI(SReg a, s64 imm, Loc loc = Loc::current());
    bool brGeI(SReg a, s64 imm, Loc loc = Loc::current());
    bool brEqI(SReg a, s64 imm, Loc loc = Loc::current());
    bool brNeI(SReg a, s64 imm, Loc loc = Loc::current());

    void jump(Loc loc = Loc::current());
    void call(Loc loc = Loc::current());
    void ret(Loc loc = Loc::current());

    /**
     * Counted loop: for (i = 0; i < count; ++i) body(i).  Emits the
     * canonical loop overhead (init, increment, compare-and-branch per
     * iteration) that the matrix ISA is designed to eliminate.
     */
    void forLoop(s64 count, const std::function<void(SReg)> &body,
                 Loc loc = Loc::current());

    /** Raw emission hook used by the SIMD engines. */
    void emit(InstRecord rec);

    /** Static site id for a source location (memoised hash). */
    u32 siteId(const Loc &loc);

    // The SIMD engines manipulate register state directly.
    friend class Mmx;
    friend class Vmmx;

  private:
    u8
    check(SReg r) const
    {
        vmmx_assert(r.valid(), "use of unallocated scalar register");
        return r.idx;
    }

    u8
    check(VR r) const
    {
        vmmx_assert(r.valid(), "use of unallocated SIMD register");
        return r.idx;
    }

    u8
    check(AR r) const
    {
        vmmx_assert(r.valid(), "use of unallocated accumulator");
        return r.idx;
    }

    void aluOp(Opcode op, SReg d, SReg a, SReg b, u64 result);
    void aluOpImm(Opcode op, SReg d, SReg a, u64 result);
    bool condBranch(bool taken, SReg a, SReg b, const Loc &loc);

    MemImage &mem_;
    SimdKind kind_;
    unsigned width_;

    std::vector<InstRecord> trace_;
    u16 region_ = 0;
    u16 vl_;

    unsigned intAlloc_ = 0;
    unsigned simdAlloc_ = 0;
    unsigned accAlloc_ = 0;
    unsigned maxSimdRegs_;

    /** file_name() pointer -> content hash (few distinct files). */
    std::vector<std::pair<const char *, u64>> fileHashes_;

    std::array<u64, 32> intRegs_{};
    std::array<VWord, 32> vregs_{};
    std::array<MatrixReg, 16> mregs_{};
    std::array<emu::Accum, 4> accs_{};
};

} // namespace vmmx

#endif // VMMX_TRACE_PROGRAM_HH
