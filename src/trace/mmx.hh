/**
 * @file
 * 1-D packed-SIMD engine (MMX64 / MMX128 flavours).
 *
 * Each method performs the packed operation on the Program's emulated
 * SIMD registers (low 8 or 16 bytes depending on the flavour) and emits
 * the corresponding dynamic instruction.  This mirrors the emulation
 * libraries the paper used to code the MMX/SSE kernel versions.
 */

#ifndef VMMX_TRACE_MMX_HH
#define VMMX_TRACE_MMX_HH

#include "emu/packed.hh"
#include "trace/program.hh"

namespace vmmx
{

class Mmx
{
  public:
    explicit Mmx(Program &p);

    unsigned width() const { return w_; }

    // ---- memory ----
    /** Packed load of one full-width word at val(base) + disp. */
    void load(VR d, SReg base, s64 disp);
    void store(VR s, SReg base, s64 disp);
    /** Store only the low 8 bytes (MOVQ-style); useful when a 128-bit
     *  register holds an 8-byte result. */
    void storeLow(VR s, SReg base, s64 disp);
    /** Load 8 bytes into the low half, zeroing the rest (MOVQ-style). */
    void loadLow(VR d, SReg base, s64 disp);

    // ---- arithmetic ----
    void padd(VR d, VR a, VR b, ElemWidth ew);
    void padds(VR d, VR a, VR b, ElemWidth ew, bool isSigned);
    void psub(VR d, VR a, VR b, ElemWidth ew);
    void psubs(VR d, VR a, VR b, ElemWidth ew, bool isSigned);
    void pmull(VR d, VR a, VR b, ElemWidth ew);
    void pmulh(VR d, VR a, VR b, ElemWidth ew);
    void pmadd(VR d, VR a, VR b);
    void psad(VR d, VR a, VR b);
    void pavg(VR d, VR a, VR b, ElemWidth ew);
    void pmin(VR d, VR a, VR b, ElemWidth ew, bool isSigned);
    void pmax(VR d, VR a, VR b, ElemWidth ew, bool isSigned);
    void pand(VR d, VR a, VR b);
    void por(VR d, VR a, VR b);
    void pxor(VR d, VR a, VR b);
    void pslli(VR d, VR a, unsigned sh, ElemWidth ew);
    void psrli(VR d, VR a, unsigned sh, ElemWidth ew);
    void psrai(VR d, VR a, unsigned sh, ElemWidth ew);
    void packs(VR d, VR a, VR b, ElemWidth srcEw);
    void packus(VR d, VR a, VR b, ElemWidth srcEw);
    void unpckl(VR d, VR a, VR b, ElemWidth ew);
    void unpckh(VR d, VR a, VR b, ElemWidth ew);

    /** Broadcast the low element of a scalar register. */
    void psplat(VR d, SReg s, ElemWidth ew);
    /** Zero a register (pxor idiom; breaks dependences). */
    void pzero(VR d);
    /** Move: scalar -> SIMD element 0 (rest zeroed). */
    void pmovd(VR d, SReg s);
    /** Move: SIMD element 0 -> scalar. */
    void pmovd(SReg d, VR s);
    /** Horizontal reduce into a scalar register. */
    void psum(SReg d, VR a, ElemWidth ew, bool isSigned);

  private:
    void binOp(Opcode op, VR d, VR a, VR b, ElemWidth ew,
               const VWord &result);

    Program &p_;
    unsigned w_;
};

} // namespace vmmx

#endif // VMMX_TRACE_MMX_HH
