/**
 * @file
 * Unified tiered trace repository: one budget-aware home for the whole
 * trace lifecycle.
 *
 *   tier 0  disk     content-addressed TraceStore files (delta+varint
 *                    codec, checksummed, shared across processes)
 *   tier 1  raw      InstRecord vectors in RAM (SharedTrace)
 *   tier 2  decoded  DecodedStream blocks in RAM (~1.3x the raw bytes),
 *                    so the per-record decode is paid once per process,
 *                    not once per sweep group
 *
 * Trace generation is execution driven and deterministic in the
 * TraceKey, so every tier is content addressed by construction: a key
 * maps to exactly one raw trace and exactly one decoded stream, and a
 * miss in one tier fills from the tier below (decoded <- raw <- disk <-
 * generate).  Explicitly supplied traces (custom programs, tests) join
 * tier 2 keyed by object identity, so their decode is amortized too.
 *
 * Tiers 1 and 2 share one LRU clock and one eviction pass: each tier
 * has its own byte budget (VMMX_TRACE_CACHE_BUDGET for raw,
 * VMMX_DECODED_CACHE_BUDGET for decoded, or the set*Budget() setters),
 * and when a tier runs over, the globally least-recently-used
 * *evictable* entry of that tier drops its bytes.  Raw copies are
 * evictable only when mirrored on disk (without a store the raw budget
 * is accounting-only); decoded streams are always evictable because
 * they re-materialize from tier 1.  Outstanding RAII pin handles
 * (TraceHandle, DecodedHandle) make an entry's tier ineligible, so
 * borrowed traces and decoded streams can never be dropped under a
 * consumer -- eviction only ever affects when memory is reclaimed.
 *
 * Thread model (inherited from the PR-1 cache): lookups take a short
 * registry lock to find or create the entry, then build under the
 * entry's own mutex so different keys materialize in parallel while
 * concurrent requests for the same key block on the first builder.
 * Eviction acquires entry mutexes only via try_lock while holding the
 * registry lock, which lookups never hold while acquiring an entry
 * mutex, so the two lock orders cannot deadlock.  Pins are taken under
 * the entry mutex and released without it; eviction re-checks the pin
 * count after winning the try_lock.
 */

#ifndef VMMX_TRACE_TRACE_REPO_HH
#define VMMX_TRACE_TRACE_REPO_HH

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "trace/decoded.hh"
#include "trace/trace_store.hh"

namespace vmmx
{

class TraceRepository
{
  public:
    /** Default memory-image size for kernel workloads (16 MiB). */
    static constexpr u32 kernelImageBytes = 16u << 20;
    /** Default memory-image size for application workloads (32 MiB). */
    static constexpr u32 appImageBytes = 32u << 20;
    /** Default input-generation seed (matches the figure benches). */
    static constexpr u64 defaultSeed = 0xbeef;

    /**
     * @param store optional persistent tier 0 (not owned; must outlive
     *              the repository or be detached first).
     * @param rawBudgetBytes tier-1 RAM budget; 0 = unlimited.
     * @param decodedBudgetBytes tier-2 RAM budget; 0 = unlimited.
     */
    explicit TraceRepository(TraceStore *store = nullptr,
                             u64 rawBudgetBytes = rawBudgetFromEnv(),
                             u64 decodedBudgetBytes = decodedBudgetFromEnv());
    ~TraceRepository();
    TraceRepository(const TraceRepository &) = delete;
    TraceRepository &operator=(const TraceRepository &) = delete;

    /** The shared per-process repository used by benches and the sweep
     *  engine.  Attaches a store iff $VMMX_TRACE_STORE is set. */
    static TraceRepository &instance();

    /** Parse a "64M"/"2g"/plain-bytes budget. @return false on junk.
     *  (Compatibility shim over env::parseByteSize, the one parser.) */
    static bool parseBudget(const char *text, u64 &bytes);
    /** Budget from @p envVar; 0/unset/invalid (warns) = unlimited.
     *  (Compatibility shim over env::byteSize.) */
    static u64 budgetFromEnv(const char *envVar);
    static u64 rawBudgetFromEnv()
    {
        return budgetFromEnv("VMMX_TRACE_CACHE_BUDGET");
    }
    static u64 decodedBudgetFromEnv()
    {
        return budgetFromEnv("VMMX_DECODED_CACHE_BUDGET");
    }

    /** Attach (or with nullptr detach) the persistent tier.  Not
     *  thread-safe against concurrent lookups; call before sweeping. */
    void attachStore(TraceStore *store);
    TraceStore *store() const { return store_; }

    void setRawBudget(u64 bytes) { rawBudget_.store(bytes); }
    void setDecodedBudget(u64 bytes) { decodedBudget_.store(bytes); }
    u64 rawBudget() const { return rawBudget_.load(); }
    u64 decodedBudget() const { return decodedBudget_.load(); }

  private:
    struct Entry;

  public:
    /**
     * RAII pin on a raw (tier-1) trace: while alive, the repository
     * will not evict the entry's RAM copy, so the reference stays the
     * canonical resident object (stable pointers, no re-materialization
     * churn).  Movable, not copyable; a moved-from or default handle is
     * null.
     */
    class TraceHandle
    {
      public:
        TraceHandle() = default;
        /** Unmanaged handle around an externally owned trace: no pin,
         *  no repository -- lets explicit traces flow through the same
         *  consumer paths as repository-resident ones. */
        explicit TraceHandle(SharedTrace t) : trace_(std::move(t)) {}
        TraceHandle(TraceHandle &&o) noexcept;
        TraceHandle &operator=(TraceHandle &&o) noexcept;
        TraceHandle(const TraceHandle &) = delete;
        TraceHandle &operator=(const TraceHandle &) = delete;
        ~TraceHandle();

        const std::vector<InstRecord> &operator*() const { return *trace_; }
        const std::vector<InstRecord> *operator->() const
        {
            return trace_.get();
        }
        const std::vector<InstRecord> *get() const { return trace_.get(); }
        /** The underlying shared_ptr (outlives the pin if copied out). */
        const SharedTrace &shared() const { return trace_; }
        explicit operator bool() const { return trace_ != nullptr; }

      private:
        friend class TraceRepository;
        TraceHandle(SharedTrace t, std::shared_ptr<Entry> e);
        void release();
        SharedTrace trace_;
        std::shared_ptr<Entry> entry_;
    };

    /**
     * RAII pin on a decoded (tier-2) stream.  Same contract as
     * TraceHandle: the pinned stream survives any budget pressure, and
     * the shared_ptr keeps the data alive even past clear().
     */
    class DecodedHandle
    {
      public:
        DecodedHandle() = default;
        DecodedHandle(DecodedHandle &&o) noexcept;
        DecodedHandle &operator=(DecodedHandle &&o) noexcept;
        DecodedHandle(const DecodedHandle &) = delete;
        DecodedHandle &operator=(const DecodedHandle &) = delete;
        ~DecodedHandle();

        const DecodedStream &stream() const { return *stream_; }
        const DecodedStream *get() const { return stream_.get(); }
        /** Dynamic trace length in records. */
        u64 records() const { return stream_->size(); }
        explicit operator bool() const { return stream_ != nullptr; }

      private:
        friend class TraceRepository;
        DecodedHandle(SharedDecoded s, std::shared_ptr<Entry> e);
        void release();
        SharedDecoded stream_;
        std::shared_ptr<Entry> entry_;
    };

    // ---- tier-1 lookups (raw InstRecord traces) ----------------------
    /** Trace of a Table II kernel, built at most once per key. */
    TraceHandle kernel(const std::string &name, SimdKind kind,
                       u32 imageBytes = kernelImageBytes,
                       u64 seed = defaultSeed);
    /** Trace of one of the six applications, built at most once. */
    TraceHandle app(const std::string &name, SimdKind kind,
                    u32 imageBytes = appImageBytes, u64 seed = defaultSeed);
    /** Generic keyed lookup (distributed workers). */
    TraceHandle raw(const TraceKey &key);

    // ---- tier-2 lookups (decoded streams) ----------------------------
    /** Decoded stream for @p key; fills through raw/disk/generate. */
    DecodedHandle decoded(const TraceKey &key);
    /** Decoded stream for an explicitly supplied trace, keyed by object
     *  identity (amortizes decode across groups replaying @p trace). */
    DecodedHandle decoded(const SharedTrace &trace);

    // ---- statistics --------------------------------------------------
    struct TierStats
    {
        u64 hits = 0;      ///< lookups served from this tier
        u64 fills = 0;     ///< entries materialized into this tier
        u64 evictions = 0; ///< resident copies dropped for the budget
        u64 bytes = 0;     ///< bytes currently resident in this tier
    };

    TierStats rawStats() const;
    TierStats decodedStats() const;
    /** Traces actually generated (tier-1 fills from scratch). */
    u64 generations() const { return generations_.load(); }
    /** Tier-1 fills served by decoding the on-disk store. */
    u64 diskLoads() const { return diskLoads_.load(); }
    /** Tier-2 fills (full-trace decodes). */
    u64 decodes() const { return decodes_.load(); }
    /** Number of distinct traces currently known across all tiers. */
    size_t size() const;

    /** Human summary of all three tiers, one line per tier. */
    std::string summary() const;

    /** Publish the per-tier counters as "repo.*" gauges in the
     *  process-wide telemetry registry. */
    void publishMetrics() const;

    /**
     * Drop every cached trace and decoded stream and reset the stats.
     * Only safe when no handles into this repository are still live;
     * intended for tests and benches using a private repository.
     */
    void clear();

  private:
    std::shared_ptr<Entry> entryFor(const TraceKey &key);
    std::shared_ptr<Entry> entryFor(const SharedTrace &trace);
    /** Fill tier 1 of @p e (store, else generate); build mutex held. */
    SharedTrace materializeRaw(Entry &e);
    /** Stamp @p e's tier-1 (or tier-2) LRU clock and evict whatever the
     *  budgets no longer cover, never touching @p keep. */
    void touchRawAndEnforce(Entry *keep);
    void touchDecodedAndEnforce(Entry *keep);
    void enforceBudgets(Entry *keep);

    TraceStore *store_ = nullptr;
    std::atomic<u64> rawBudget_;
    std::atomic<u64> decodedBudget_;

    mutable std::mutex registryMu_;
    /** Generated traces, content addressed by TraceKey. */
    std::map<TraceKey, std::shared_ptr<Entry>> keyed_;
    /** Adopted explicit traces, addressed by object identity. */
    std::map<const void *, std::shared_ptr<Entry>> adopted_;

    std::atomic<u64> useClock_{0};
    std::atomic<u64> bytesRaw_{0};
    std::atomic<u64> bytesDecoded_{0};
    std::atomic<u64> generations_{0};
    std::atomic<u64> diskLoads_{0};
    std::atomic<u64> decodes_{0};
    std::atomic<u64> rawHits_{0};
    std::atomic<u64> decodedHits_{0};
    std::atomic<u64> rawEvictions_{0};
    std::atomic<u64> decodedEvictions_{0};
};

} // namespace vmmx

#endif // VMMX_TRACE_TRACE_REPO_HH
