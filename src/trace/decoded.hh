/**
 * @file
 * Configuration-independent decode of a dynamic instruction trace.
 *
 * Everything about an InstRecord that does not depend on the machine
 * configuration -- opcode traits, source/destination register slots,
 * memory footprint bounds, branch kind and outcome -- is resolved once
 * into a DecodedInst.  A DecodedStream is the full trace decoded this
 * way: an immutable, shareable artifact that any number of SimContexts
 * (and any number of sweep groups, threads, and batched passes) can
 * replay without re-deriving a single record.
 *
 * The stream lives in the trace layer, not the sim layer, because it is
 * a property of the trace alone: the TraceRepository caches decoded
 * streams as its tier 2, right next to the raw InstRecord tier they are
 * derived from (a decoded stream is ~1.3x the raw bytes).
 */

#ifndef VMMX_TRACE_DECODED_HH
#define VMMX_TRACE_DECODED_HH

#include <memory>
#include <vector>

#include "isa/inst.hh"

namespace vmmx
{

/**
 * Configuration-independent decode of one InstRecord: opcode traits,
 * packed operand lists and the memory footprint, pre-resolved so the
 * per-context step never re-derives them.  Built once per trace (or
 * once per block on the decode-on-the-fly path) and shared read-only
 * by every simulation context that replays the trace.
 */
struct DecodedInst
{
    /** Sentinel register class index: no destination register. */
    static constexpr u8 noDst = 0xff;

    // Flag bits (kept out of per-config state: all trace-determined).
    static constexpr u8 kLoad = 1 << 0;     ///< memory read
    static constexpr u8 kStore = 1 << 1;    ///< memory write
    static constexpr u8 kBranch = 1 << 2;   ///< any control transfer
    static constexpr u8 kCondBr = 1 << 3;   ///< conditional (predicted)
    static constexpr u8 kTaken = 1 << 4;    ///< resolved branch outcome
    static constexpr u8 kReadsDst = 1 << 5; ///< merges into destination
    static constexpr u8 kTakesIq = 1 << 6;  ///< occupies an IQ entry
    static constexpr u8 kVecMem = 1 << 7;   ///< matrix (vector-port) access
    Addr addr = 0;     ///< memory: resolved effective address
    Addr lo = 0;       ///< memory: footprint lower bound (inclusive)
    Addr hi = 0;       ///< memory: footprint upper bound (exclusive)
    u32 staticId = 0;  ///< static site (branch predictor)
    s32 stride = 0;    ///< memory: byte stride between rows
    u16 vl = 0;        ///< raw vector length (0 = scalar / 1-D)
    u16 rows = 1;      ///< rows processed (vl, or 1)
    u16 rowBytes = 0;  ///< bytes per row
    u16 region = 0;    ///< cycle-attribution region tag
    u8 fu = 0;         ///< FuType of the executing unit
    u8 latency = 0;    ///< post-issue execution latency
    u8 clsIdx = 0;     ///< InstClass index (stats bucket)
    u8 flags = 0;
    u8 mulOcc = 1;     ///< IntMul pool occupancy
    u8 transp = 0;     ///< occupies the lane-exchange network (VTRANSP)
    u8 dstCls = noDst; ///< destination register class index, or noDst
    u8 dstReg = 0;     ///< destination slot in the flat ready table
    u8 nSrcs = 0;      ///< valid entries in srcReg
    u8 srcReg[3] = {}; ///< source slots in the flat ready table

    bool has(u8 flag) const { return flags & flag; }
};

/** Flat per-logical-register ready-table size the decoded slot numbers
 *  index into: all classes side by side (64 Int | 64 Fp | 64 Simd |
 *  8 Acc).  SimContext sizes its table with this so decode and step
 *  cannot drift apart. */
constexpr size_t decodedReadySlots = 200;

/** Resolve the configuration-independent properties of @p inst. */
DecodedInst decodeInst(const InstRecord &inst);

/**
 * A whole trace decoded record for record.  Immutable once built; the
 * TraceRepository hands it out behind SharedDecoded so concurrent sweep
 * groups replay one decode instead of one per group.
 */
struct DecodedStream
{
    std::vector<DecodedInst> insts;

    size_t size() const { return insts.size(); }
    bool empty() const { return insts.empty(); }
    /** Resident footprint (the tier-2 budget accounting unit). */
    u64 bytes() const { return insts.size() * sizeof(DecodedInst); }
};

/** Immutable, shareable decoded stream (tier-2 cache handle payload). */
using SharedDecoded = std::shared_ptr<const DecodedStream>;

/** Decode every record of @p trace (the tier-2 fill operation). */
DecodedStream decodeStream(const std::vector<InstRecord> &trace);

} // namespace vmmx

#endif // VMMX_TRACE_DECODED_HH
