/**
 * @file
 * Compact binary codec for dynamic instruction traces.
 *
 * Traces are highly regular: effective addresses walk the memory image
 * near-sequentially, static ids advance by small steps, and most records
 * touch no memory at all.  The codec therefore delta-encodes addresses and
 * static ids against the previous record, packs the rarely-changing flags
 * (element width, branch direction, field presence) into one byte, and
 * omits absent fields entirely; everything variable-length goes through
 * LEB128 varints.  The result is bit-exact on decode and typically >4x
 * smaller than the in-memory InstRecord array, which is what makes the
 * on-disk TraceStore and the driver/worker wire protocol affordable for
 * application-scale (mpeg2enc) traces.
 *
 * This header is also the canonical home of SharedTrace (the immutable
 * trace handle shared by the cache, the store, and the sweep engines) and
 * TraceKey (the stable identity of a generated trace).
 */

#ifndef VMMX_TRACE_TRACE_IO_HH
#define VMMX_TRACE_TRACE_IO_HH

#include <memory>
#include <string>
#include <vector>

#include "dist/wire.hh"
#include "isa/inst.hh"
#include "isa/simd_kind.hh"

namespace vmmx
{

/** Immutable, shareable dynamic instruction trace. */
using SharedTrace = std::shared_ptr<const std::vector<InstRecord>>;

/**
 * Stable identity of a generated trace.  Trace generation is execution
 * driven and deterministic, so this key fully determines the trace bytes
 * across processes, machines and builds (staticIds hash source basenames).
 */
struct TraceKey
{
    bool isApp = false;
    std::string name;
    SimdKind kind = SimdKind::MMX64;
    u32 imageBytes = 0;
    u64 seed = 0;

    bool operator<(const TraceKey &o) const
    {
        return std::tie(isApp, name, kind, imageBytes, seed) <
               std::tie(o.isApp, o.name, o.kind, o.imageBytes, o.seed);
    }
    bool operator==(const TraceKey &o) const = default;

    /** e.g. "kernel:idct/vmmx128/16MiB/seed=beef". */
    std::string describe() const;
};

/** Append @p trace to @p w (varint count + delta-encoded records). */
void encodeTrace(const std::vector<InstRecord> &trace, wire::Writer &w);

/**
 * Decode a trace previously written by encodeTrace().
 * @return false (leaving @p out unspecified) on a malformed stream.
 */
bool decodeTrace(wire::Reader &r, std::vector<InstRecord> &out);

void serialize(wire::Writer &w, const TraceKey &key);
bool deserialize(wire::Reader &r, TraceKey &key);

} // namespace vmmx

#endif // VMMX_TRACE_TRACE_IO_HH
