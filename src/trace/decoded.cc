#include "trace/decoded.hh"

#include "common/logging.hh"

namespace vmmx
{

namespace
{

size_t
regClassIdx(RegClass c)
{
    return static_cast<size_t>(c);
}

/** Logical register table sizes, fixed per class. */
constexpr size_t logicalTableSize[numRegClasses] = {64, 64, 64, 8};

/** Offsets of each class inside the flat ready table. */
constexpr size_t readyOffset[numRegClasses] = {0, 64, 128, 192};

static_assert(readyOffset[numRegClasses - 1] +
                  logicalTableSize[numRegClasses - 1] ==
              decodedReadySlots);

} // namespace

DecodedInst
decodeInst(const InstRecord &inst)
{
    const OpTraits &info = inst.info();

    DecodedInst d;
    d.addr = inst.addr;
    d.staticId = inst.staticId;
    d.stride = inst.stride;
    d.vl = inst.vl;
    d.rows = inst.rows();
    d.rowBytes = inst.rowBytes;
    d.region = inst.region;
    d.fu = static_cast<u8>(info.fu);
    d.latency = info.latency;
    d.clsIdx = static_cast<u8>(info.cls);
    d.mulOcc = info.latency > 4 ? info.latency : 1;
    d.transp = inst.op == Opcode::VTRANSP;

    u8 flags = 0;
    if (inst.isLoad())
        flags |= DecodedInst::kLoad;
    if (inst.isStore())
        flags |= DecodedInst::kStore;
    if (info.cls == InstClass::SCTRL) {
        flags |= DecodedInst::kBranch;
        if (inst.op == Opcode::BR)
            flags |= DecodedInst::kCondBr;
    }
    if (inst.taken)
        flags |= DecodedInst::kTaken;
    if (info.fu != FuType::None)
        flags |= DecodedInst::kTakesIq;
    if (inst.op == Opcode::VLOAD || inst.op == Opcode::VSTORE ||
        inst.op == Opcode::VLOADP || inst.op == Opcode::VSTOREP)
        flags |= DecodedInst::kVecMem;
    // Accumulating and partial-write ops read their destination too.
    if (inst.dst.valid() &&
        ((inst.dst.cls == RegClass::Acc && inst.op != Opcode::VACCCLR) ||
         inst.op == Opcode::VLOADP || inst.op == Opcode::VACCPACK))
        flags |= DecodedInst::kReadsDst;
    d.flags = flags;

    if (inst.dst.valid()) {
        d.dstCls = u8(regClassIdx(inst.dst.cls));
        vmmx_assert(inst.dst.idx < logicalTableSize[d.dstCls],
                    "logical register out of range");
        d.dstReg = u8(readyOffset[d.dstCls] + inst.dst.idx);
    }
    for (const RegId *src : {&inst.src0, &inst.src1, &inst.src2}) {
        if (!src->valid())
            continue;
        size_t cls = regClassIdx(src->cls);
        vmmx_assert(src->idx < logicalTableSize[cls],
                    "logical register out of range");
        d.srcReg[d.nSrcs] = u8(readyOffset[cls] + src->idx);
        ++d.nSrcs;
    }

    if (info.fu == FuType::Mem) {
        // Footprint [lo, hi) of the access, covering all strided rows.
        Addr lo = inst.addr;
        Addr hi = inst.addr;
        if (inst.vl > 0 && inst.stride != 0) {
            s64 span = s64(inst.stride) * (inst.rows() - 1);
            if (span < 0)
                lo = Addr(s64(lo) + span);
            else
                hi = Addr(s64(hi) + span);
        }
        hi += inst.rowBytes;
        d.lo = lo;
        d.hi = hi;
    }
    return d;
}

DecodedStream
decodeStream(const std::vector<InstRecord> &trace)
{
    DecodedStream s;
    s.insts.reserve(trace.size());
    for (const InstRecord &inst : trace)
        s.insts.push_back(decodeInst(inst));
    return s;
}

} // namespace vmmx
