#include "trace/vmmx.hh"

namespace vmmx
{

Vmmx::Vmmx(Program &p)
    : p_(p), w_(p.width())
{
    vmmx_assert(p.matrix(), "Vmmx engine used with a 1-D flavour; use Mmx");
}

void
Vmmx::setvl(u16 rows)
{
    vmmx_assert(rows >= 1 && rows <= maxMatrixRows, "vector length %u",
                rows);
    p_.vl_ = rows;

    InstRecord r;
    r.op = Opcode::VSETVL;
    p_.emit(r);
}

void
Vmmx::memOp(Opcode op, VR reg, SReg base, s64 disp, s64 stride,
            unsigned row0, unsigned nrows, bool isStore, SReg strideReg,
            unsigned bytesPerRow)
{
    vmmx_assert(row0 + nrows <= maxMatrixRows, "rows out of range");
    if (bytesPerRow == 0)
        bytesPerRow = w_;
    vmmx_assert(bytesPerRow == 8 || bytesPerRow == w_,
                "bad partial row width");
    Addr a = p_.val(base) + u64(disp);
    MatrixReg &m = p_.mregs_[p_.check(reg)];

    for (unsigned r = 0; r < nrows; ++r) {
        Addr rowAddr = a + Addr(stride * s64(r));
        VWord &row = m[row0 + r];
        if (isStore) {
            p_.mem_.write64(rowAddr, row.lo);
            if (bytesPerRow == 16)
                p_.mem_.write64(rowAddr + 8, row.hi);
        } else {
            row.lo = p_.mem_.read64(rowAddr);
            row.hi = bytesPerRow == 16 ? p_.mem_.read64(rowAddr + 8) : 0;
        }
    }

    InstRecord rec;
    rec.op = op;
    if (isStore) {
        rec.src0 = simdReg(reg.idx);
        rec.src1 = intReg(base.idx);
        if (strideReg.valid())
            rec.src2 = intReg(strideReg.idx);
    } else {
        rec.dst = simdReg(reg.idx);
        rec.src0 = intReg(base.idx);
        if (strideReg.valid())
            rec.src1 = intReg(strideReg.idx);
    }
    rec.addr = a;
    rec.rowBytes = u16(bytesPerRow);
    rec.stride = s32(stride);
    rec.vl = u16(nrows);
    p_.emit(rec);
}

void
Vmmx::loadHalf(VR d, SReg base, s64 disp, SReg stride)
{
    memOp(Opcode::VLOADP, d, base, disp, p_.sval(stride), 0, p_.vl_, false,
          stride, 8);
}

void
Vmmx::storeHalf(VR s, SReg base, s64 disp, SReg stride)
{
    memOp(Opcode::VSTOREP, s, base, disp, p_.sval(stride), 0, p_.vl_, true,
          stride, 8);
}

void
Vmmx::load(VR d, SReg base, s64 disp, SReg stride)
{
    memOp(Opcode::VLOAD, d, base, disp, p_.sval(stride), 0, p_.vl_, false,
          stride);
}

void
Vmmx::loadU(VR d, SReg base, s64 disp)
{
    memOp(Opcode::VLOAD, d, base, disp, s64(w_), 0, p_.vl_, false, {});
}

void
Vmmx::store(VR s, SReg base, s64 disp, SReg stride)
{
    memOp(Opcode::VSTORE, s, base, disp, p_.sval(stride), 0, p_.vl_, true,
          stride);
}

void
Vmmx::storeU(VR s, SReg base, s64 disp)
{
    memOp(Opcode::VSTORE, s, base, disp, s64(w_), 0, p_.vl_, true, {});
}

void
Vmmx::loadPartial(VR d, unsigned row0, unsigned nrows, SReg base, s64 disp,
                  SReg stride)
{
    memOp(Opcode::VLOADP, d, base, disp, p_.sval(stride), row0, nrows,
          false, stride);
}

void
Vmmx::storePartial(VR s, unsigned row0, unsigned nrows, SReg base, s64 disp,
                   SReg stride)
{
    memOp(Opcode::VSTOREP, s, base, disp, p_.sval(stride), row0, nrows,
          true, stride);
}

void
Vmmx::binOp(Opcode op, VR d, VR a, VR b, ElemWidth ew,
            const std::function<VWord(const VWord &, const VWord &)> &fn)
{
    const MatrixReg &ma = p_.mregs_[p_.check(a)];
    const MatrixReg &mb = p_.mregs_[p_.check(b)];
    MatrixReg out{};
    for (unsigned r = 0; r < p_.vl_; ++r)
        out[r] = fn(ma[r], mb[r]);
    p_.mregs_[p_.check(d)] = out;

    InstRecord rec;
    rec.op = op;
    rec.ew = ew;
    rec.dst = simdReg(d.idx);
    rec.src0 = simdReg(a.idx);
    rec.src1 = simdReg(b.idx);
    rec.vl = p_.vl_;
    p_.emit(rec);
}

void
Vmmx::padd(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::PADD, d, a, b, ew, [&](const VWord &x, const VWord &y) {
        return emu::padd(x, y, ew, w_);
    });
}

void
Vmmx::padds(VR d, VR a, VR b, ElemWidth ew, bool isSigned)
{
    binOp(Opcode::PADDS, d, a, b, ew, [&](const VWord &x, const VWord &y) {
        return emu::padds(x, y, ew, w_, isSigned);
    });
}

void
Vmmx::psub(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::PSUB, d, a, b, ew, [&](const VWord &x, const VWord &y) {
        return emu::psub(x, y, ew, w_);
    });
}

void
Vmmx::psubs(VR d, VR a, VR b, ElemWidth ew, bool isSigned)
{
    binOp(Opcode::PSUBS, d, a, b, ew, [&](const VWord &x, const VWord &y) {
        return emu::psubs(x, y, ew, w_, isSigned);
    });
}

void
Vmmx::pmull(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::PMULL, d, a, b, ew, [&](const VWord &x, const VWord &y) {
        return emu::pmull(x, y, ew, w_);
    });
}

void
Vmmx::pmulh(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::PMULH, d, a, b, ew, [&](const VWord &x, const VWord &y) {
        return emu::pmulh(x, y, ew, w_);
    });
}

void
Vmmx::pmadd(VR d, VR a, VR b)
{
    binOp(Opcode::PMADD, d, a, b, ElemWidth::W16,
          [&](const VWord &x, const VWord &y) {
              return emu::pmadd(x, y, w_);
          });
}

void
Vmmx::pavg(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::PAVG, d, a, b, ew, [&](const VWord &x, const VWord &y) {
        return emu::pavg(x, y, ew, w_);
    });
}

void
Vmmx::pmin(VR d, VR a, VR b, ElemWidth ew, bool isSigned)
{
    binOp(Opcode::PMIN, d, a, b, ew, [&](const VWord &x, const VWord &y) {
        return emu::pmin(x, y, ew, w_, isSigned);
    });
}

void
Vmmx::pmax(VR d, VR a, VR b, ElemWidth ew, bool isSigned)
{
    binOp(Opcode::PMAX, d, a, b, ew, [&](const VWord &x, const VWord &y) {
        return emu::pmax(x, y, ew, w_, isSigned);
    });
}

void
Vmmx::pand(VR d, VR a, VR b)
{
    binOp(Opcode::PAND, d, a, b, ElemWidth::Q64,
          [&](const VWord &x, const VWord &y) {
              return emu::pand(x, y, w_);
          });
}

void
Vmmx::por(VR d, VR a, VR b)
{
    binOp(Opcode::POR, d, a, b, ElemWidth::Q64,
          [&](const VWord &x, const VWord &y) {
              return emu::por(x, y, w_);
          });
}

void
Vmmx::pxor(VR d, VR a, VR b)
{
    binOp(Opcode::PXOR, d, a, b, ElemWidth::Q64,
          [&](const VWord &x, const VWord &y) {
              return emu::pxor(x, y, w_);
          });
}

void
Vmmx::pslli(VR d, VR a, unsigned sh, ElemWidth ew)
{
    binOp(Opcode::PSLL, d, a, a, ew, [&](const VWord &x, const VWord &) {
        return emu::pshift(x, ew, w_, sh, emu::ShiftKind::Sll);
    });
}

void
Vmmx::psrli(VR d, VR a, unsigned sh, ElemWidth ew)
{
    binOp(Opcode::PSRL, d, a, a, ew, [&](const VWord &x, const VWord &) {
        return emu::pshift(x, ew, w_, sh, emu::ShiftKind::Srl);
    });
}

void
Vmmx::psrai(VR d, VR a, unsigned sh, ElemWidth ew)
{
    binOp(Opcode::PSRA, d, a, a, ew, [&](const VWord &x, const VWord &) {
        return emu::pshift(x, ew, w_, sh, emu::ShiftKind::Sra);
    });
}

void
Vmmx::packs(VR d, VR a, VR b, ElemWidth srcEw)
{
    binOp(Opcode::PACKS, d, a, b, srcEw,
          [&](const VWord &x, const VWord &y) {
              return emu::packs(x, y, srcEw, w_);
          });
}

void
Vmmx::packus(VR d, VR a, VR b, ElemWidth srcEw)
{
    binOp(Opcode::PACKUS, d, a, b, srcEw,
          [&](const VWord &x, const VWord &y) {
              return emu::packus(x, y, srcEw, w_);
          });
}

void
Vmmx::unpckl(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::UNPCKL, d, a, b, ew, [&](const VWord &x, const VWord &y) {
        return emu::unpckl(x, y, ew, w_);
    });
}

void
Vmmx::unpckh(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::UNPCKH, d, a, b, ew, [&](const VWord &x, const VWord &y) {
        return emu::unpckh(x, y, ew, w_);
    });
}

void
Vmmx::vsplat(VR d, SReg s, ElemWidth ew)
{
    MatrixReg &m = p_.mregs_[p_.check(d)];
    VWord row = emu::psplat(p_.val(s), ew, w_);
    for (unsigned r = 0; r < p_.vl_; ++r)
        m[r] = row;

    InstRecord rec;
    rec.op = Opcode::PSPLAT;
    rec.ew = ew;
    rec.dst = simdReg(d.idx);
    rec.src0 = intReg(s.idx);
    rec.vl = p_.vl_;
    p_.emit(rec);
}

void
Vmmx::vzero(VR d)
{
    p_.mregs_[p_.check(d)] = MatrixReg{};

    InstRecord rec;
    rec.op = Opcode::PXOR;
    rec.dst = simdReg(d.idx);
    rec.vl = p_.vl_;
    p_.emit(rec);
}

void
Vmmx::vtransp(VR d, VR s)
{
    unsigned dim = w_ / 2; // s16 columns per row
    const MatrixReg &src = p_.mregs_[p_.check(s)];
    MatrixReg out = p_.mregs_[p_.check(d)];
    for (unsigned i = 0; i < dim; ++i)
        for (unsigned j = 0; j < dim; ++j)
            out[i].setWord(j, src[j].word(i));
    p_.mregs_[p_.check(d)] = out;

    InstRecord rec;
    rec.op = Opcode::VTRANSP;
    rec.ew = ElemWidth::W16;
    rec.dst = simdReg(d.idx);
    rec.src0 = simdReg(s.idx);
    rec.vl = u16(dim);
    p_.emit(rec);
}

void
Vmmx::accclr(AR a)
{
    p_.accs_[p_.check(a)].clear();

    InstRecord rec;
    rec.op = Opcode::VACCCLR;
    rec.dst = accReg(a.idx);
    p_.emit(rec);
}

void
Vmmx::vsada(AR acc, VR a, VR b)
{
    emu::Accum &ac = p_.accs_[p_.check(acc)];
    const MatrixReg &ma = p_.mregs_[p_.check(a)];
    const MatrixReg &mb = p_.mregs_[p_.check(b)];
    for (unsigned r = 0; r < p_.vl_; ++r)
        emu::accSad(ac, ma[r], mb[r], w_);

    InstRecord rec;
    rec.op = Opcode::VSADA;
    rec.ew = ElemWidth::B8;
    rec.dst = accReg(acc.idx);
    rec.src0 = simdReg(a.idx);
    rec.src1 = simdReg(b.idx);
    rec.vl = p_.vl_;
    p_.emit(rec);
}

void
Vmmx::vmacc(AR acc, VR a, VR b)
{
    emu::Accum &ac = p_.accs_[p_.check(acc)];
    const MatrixReg &ma = p_.mregs_[p_.check(a)];
    const MatrixReg &mb = p_.mregs_[p_.check(b)];
    for (unsigned r = 0; r < p_.vl_; ++r)
        emu::accMac(ac, ma[r], mb[r], w_);

    InstRecord rec;
    rec.op = Opcode::VMACC;
    rec.ew = ElemWidth::W16;
    rec.dst = accReg(acc.idx);
    rec.src0 = simdReg(a.idx);
    rec.src1 = simdReg(b.idx);
    rec.vl = p_.vl_;
    p_.emit(rec);
}

void
Vmmx::vadda(AR acc, VR a)
{
    emu::Accum &ac = p_.accs_[p_.check(acc)];
    const MatrixReg &ma = p_.mregs_[p_.check(a)];
    for (unsigned r = 0; r < p_.vl_; ++r)
        emu::accAdd(ac, ma[r], w_);

    InstRecord rec;
    rec.op = Opcode::VADDA;
    rec.ew = ElemWidth::W16;
    rec.dst = accReg(acc.idx);
    rec.src0 = simdReg(a.idx);
    rec.vl = p_.vl_;
    p_.emit(rec);
}

void
Vmmx::accsum(SReg d, AR a)
{
    p_.intRegs_[p_.check(d)] = u64(emu::accSum(p_.accs_[p_.check(a)], w_));

    InstRecord rec;
    rec.op = Opcode::VACCSUM;
    rec.dst = intReg(d.idx);
    rec.src0 = accReg(a.idx);
    p_.emit(rec);
}

void
Vmmx::accpack(VR d, unsigned row, AR a, unsigned shift)
{
    vmmx_assert(row < maxMatrixRows, "accpack row out of range");
    p_.mregs_[p_.check(d)][row] =
        emu::accPack(p_.accs_[p_.check(a)], w_, shift);

    InstRecord rec;
    rec.op = Opcode::VACCPACK;
    rec.ew = ElemWidth::W16;
    rec.dst = simdReg(d.idx);
    rec.src0 = accReg(a.idx);
    p_.emit(rec);
}

} // namespace vmmx
