#include "trace/mmx.hh"

namespace vmmx
{

Mmx::Mmx(Program &p)
    : p_(p), w_(p.width())
{
    vmmx_assert(!p.matrix(),
                "Mmx engine used with a matrix flavour; use Vmmx");
}

void
Mmx::load(VR d, SReg base, s64 disp)
{
    Addr a = p_.val(base) + u64(disp);
    VWord v;
    v.lo = p_.mem_.read64(a);
    if (w_ == 16)
        v.hi = p_.mem_.read64(a + 8);
    p_.vregs_[p_.check(d)] = v;

    InstRecord r;
    r.op = Opcode::PLOAD;
    r.dst = simdReg(d.idx);
    r.src0 = intReg(base.idx);
    r.addr = a;
    r.rowBytes = u16(w_);
    r.stride = s32(w_);
    p_.emit(r);
}

void
Mmx::store(VR s, SReg base, s64 disp)
{
    Addr a = p_.val(base) + u64(disp);
    const VWord &v = p_.vregs_[p_.check(s)];
    p_.mem_.write64(a, v.lo);
    if (w_ == 16)
        p_.mem_.write64(a + 8, v.hi);

    InstRecord r;
    r.op = Opcode::PSTORE;
    r.src0 = simdReg(s.idx);
    r.src1 = intReg(base.idx);
    r.addr = a;
    r.rowBytes = u16(w_);
    r.stride = s32(w_);
    p_.emit(r);
}

void
Mmx::loadLow(VR d, SReg base, s64 disp)
{
    Addr a = p_.val(base) + u64(disp);
    VWord v;
    v.lo = p_.mem_.read64(a);
    p_.vregs_[p_.check(d)] = v;

    InstRecord r;
    r.op = Opcode::PLOAD;
    r.dst = simdReg(d.idx);
    r.src0 = intReg(base.idx);
    r.addr = a;
    r.rowBytes = 8;
    r.stride = 8;
    p_.emit(r);
}

void
Mmx::storeLow(VR s, SReg base, s64 disp)
{
    Addr a = p_.val(base) + u64(disp);
    p_.mem_.write64(a, p_.vregs_[p_.check(s)].lo);

    InstRecord r;
    r.op = Opcode::PSTORE;
    r.src0 = simdReg(s.idx);
    r.src1 = intReg(base.idx);
    r.addr = a;
    r.rowBytes = 8;
    r.stride = 8;
    p_.emit(r);
}

void
Mmx::binOp(Opcode op, VR d, VR a, VR b, ElemWidth ew, const VWord &result)
{
    p_.vregs_[p_.check(d)] = result;

    InstRecord r;
    r.op = op;
    r.ew = ew;
    r.dst = simdReg(d.idx);
    r.src0 = simdReg(a.idx);
    r.src1 = simdReg(b.idx);
    p_.emit(r);
}

void
Mmx::padd(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::PADD, d, a, b, ew,
          emu::padd(p_.vval(a), p_.vval(b), ew, w_));
}

void
Mmx::padds(VR d, VR a, VR b, ElemWidth ew, bool isSigned)
{
    binOp(Opcode::PADDS, d, a, b, ew,
          emu::padds(p_.vval(a), p_.vval(b), ew, w_, isSigned));
}

void
Mmx::psub(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::PSUB, d, a, b, ew,
          emu::psub(p_.vval(a), p_.vval(b), ew, w_));
}

void
Mmx::psubs(VR d, VR a, VR b, ElemWidth ew, bool isSigned)
{
    binOp(Opcode::PSUBS, d, a, b, ew,
          emu::psubs(p_.vval(a), p_.vval(b), ew, w_, isSigned));
}

void
Mmx::pmull(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::PMULL, d, a, b, ew,
          emu::pmull(p_.vval(a), p_.vval(b), ew, w_));
}

void
Mmx::pmulh(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::PMULH, d, a, b, ew,
          emu::pmulh(p_.vval(a), p_.vval(b), ew, w_));
}

void
Mmx::pmadd(VR d, VR a, VR b)
{
    binOp(Opcode::PMADD, d, a, b, ElemWidth::W16,
          emu::pmadd(p_.vval(a), p_.vval(b), w_));
}

void
Mmx::psad(VR d, VR a, VR b)
{
    binOp(Opcode::PSAD, d, a, b, ElemWidth::B8,
          emu::psad(p_.vval(a), p_.vval(b), w_));
}

void
Mmx::pavg(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::PAVG, d, a, b, ew,
          emu::pavg(p_.vval(a), p_.vval(b), ew, w_));
}

void
Mmx::pmin(VR d, VR a, VR b, ElemWidth ew, bool isSigned)
{
    binOp(Opcode::PMIN, d, a, b, ew,
          emu::pmin(p_.vval(a), p_.vval(b), ew, w_, isSigned));
}

void
Mmx::pmax(VR d, VR a, VR b, ElemWidth ew, bool isSigned)
{
    binOp(Opcode::PMAX, d, a, b, ew,
          emu::pmax(p_.vval(a), p_.vval(b), ew, w_, isSigned));
}

void
Mmx::pand(VR d, VR a, VR b)
{
    binOp(Opcode::PAND, d, a, b, ElemWidth::Q64,
          emu::pand(p_.vval(a), p_.vval(b), w_));
}

void
Mmx::por(VR d, VR a, VR b)
{
    binOp(Opcode::POR, d, a, b, ElemWidth::Q64,
          emu::por(p_.vval(a), p_.vval(b), w_));
}

void
Mmx::pxor(VR d, VR a, VR b)
{
    binOp(Opcode::PXOR, d, a, b, ElemWidth::Q64,
          emu::pxor(p_.vval(a), p_.vval(b), w_));
}

void
Mmx::pslli(VR d, VR a, unsigned sh, ElemWidth ew)
{
    binOp(Opcode::PSLL, d, a, a, ew,
          emu::pshift(p_.vval(a), ew, w_, sh, emu::ShiftKind::Sll));
}

void
Mmx::psrli(VR d, VR a, unsigned sh, ElemWidth ew)
{
    binOp(Opcode::PSRL, d, a, a, ew,
          emu::pshift(p_.vval(a), ew, w_, sh, emu::ShiftKind::Srl));
}

void
Mmx::psrai(VR d, VR a, unsigned sh, ElemWidth ew)
{
    binOp(Opcode::PSRA, d, a, a, ew,
          emu::pshift(p_.vval(a), ew, w_, sh, emu::ShiftKind::Sra));
}

void
Mmx::packs(VR d, VR a, VR b, ElemWidth srcEw)
{
    binOp(Opcode::PACKS, d, a, b, srcEw,
          emu::packs(p_.vval(a), p_.vval(b), srcEw, w_));
}

void
Mmx::packus(VR d, VR a, VR b, ElemWidth srcEw)
{
    binOp(Opcode::PACKUS, d, a, b, srcEw,
          emu::packus(p_.vval(a), p_.vval(b), srcEw, w_));
}

void
Mmx::unpckl(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::UNPCKL, d, a, b, ew,
          emu::unpckl(p_.vval(a), p_.vval(b), ew, w_));
}

void
Mmx::unpckh(VR d, VR a, VR b, ElemWidth ew)
{
    binOp(Opcode::UNPCKH, d, a, b, ew,
          emu::unpckh(p_.vval(a), p_.vval(b), ew, w_));
}

void
Mmx::psplat(VR d, SReg s, ElemWidth ew)
{
    p_.vregs_[p_.check(d)] = emu::psplat(p_.val(s), ew, w_);

    InstRecord r;
    r.op = Opcode::PSPLAT;
    r.ew = ew;
    r.dst = simdReg(d.idx);
    r.src0 = intReg(s.idx);
    p_.emit(r);
}

void
Mmx::pzero(VR d)
{
    p_.vregs_[p_.check(d)] = VWord{};

    InstRecord r;
    r.op = Opcode::PXOR;
    r.dst = simdReg(d.idx);
    p_.emit(r);
}

void
Mmx::pmovd(VR d, SReg s)
{
    VWord v;
    v.lo = p_.val(s);
    p_.vregs_[p_.check(d)] = emu::truncate(v, w_);

    InstRecord r;
    r.op = Opcode::PMOVD;
    r.dst = simdReg(d.idx);
    r.src0 = intReg(s.idx);
    p_.emit(r);
}

void
Mmx::pmovd(SReg d, VR s)
{
    p_.intRegs_[p_.check(d)] = p_.vval(s).lo;

    InstRecord r;
    r.op = Opcode::PMOVD;
    r.dst = intReg(d.idx);
    r.src0 = simdReg(s.idx);
    p_.emit(r);
}

void
Mmx::psum(SReg d, VR a, ElemWidth ew, bool isSigned)
{
    p_.intRegs_[p_.check(d)] = u64(emu::psum(p_.vval(a), ew, w_, isSigned));

    InstRecord r;
    r.op = Opcode::PSUM;
    r.ew = ew;
    r.dst = intReg(d.idx);
    r.src0 = simdReg(a.idx);
    p_.emit(r);
}

} // namespace vmmx
