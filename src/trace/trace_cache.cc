#include "trace/trace_cache.hh"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "apps/app.hh"
#include "common/logging.hh"
#include "common/memimage.hh"
#include "common/rng.hh"
#include "kernels/kernel.hh"
#include "trace/program.hh"

namespace vmmx
{

TraceCache::TraceCache(TraceStore *store, u64 budgetBytes)
    : store_(store), budget_(budgetBytes)
{}

TraceCache &
TraceCache::instance()
{
    // The disk tier is opt-in for the process-wide cache: benches that
    // pin references for the process lifetime should not silently start
    // writing files unless the user asked for a store.
    static TraceStore *store = []() -> TraceStore * {
        const char *env = std::getenv("VMMX_TRACE_STORE");
        if (!env || !*env)
            return nullptr;
        static TraceStore s(env);
        return &s;
    }();
    static TraceCache cache(store);
    return cache;
}

u64
TraceCache::budgetFromEnv()
{
    const char *env = std::getenv("VMMX_TRACE_CACHE_BUDGET");
    if (!env || !*env)
        return 0;
    // strtoull would silently wrap a leading '-' to a huge budget.
    if (env[0] == '-') {
        warn("ignoring negative VMMX_TRACE_CACHE_BUDGET='%s'", env);
        return 0;
    }
    char *end = nullptr;
    u64 v = std::strtoull(env, &end, 0);
    if (end == env) {
        warn("ignoring unparsable VMMX_TRACE_CACHE_BUDGET='%s'", env);
        return 0;
    }
    switch (*end) {
      case 'k': case 'K': v <<= 10; ++end; break;
      case 'm': case 'M': v <<= 20; ++end; break;
      case 'g': case 'G': v <<= 30; ++end; break;
      default: break;
    }
    if (*end != '\0') {
        warn("ignoring unparsable VMMX_TRACE_CACHE_BUDGET='%s'", env);
        return 0;
    }
    return v;
}

void
TraceCache::attachStore(TraceStore *store)
{
    store_ = store;
}

SharedTrace
TraceCache::kernel(const std::string &name, SimdKind kind, u32 imageBytes,
                   u64 seed)
{
    return lookup({false, name, kind, imageBytes, seed});
}

SharedTrace
TraceCache::app(const std::string &name, SimdKind kind, u32 imageBytes,
                u64 seed)
{
    return lookup({true, name, kind, imageBytes, seed});
}

SharedTrace
TraceCache::get(const TraceKey &key)
{
    return lookup(key);
}

size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(registryMu_);
    return entries_.size();
}

std::string
TraceCache::summary() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    os << "trace cache: " << size() << " traces, "
       << bytesResident() / (1024.0 * 1024.0) << " MiB resident";
    if (u64 b = budget())
        os << " (budget " << b / (1024.0 * 1024.0) << " MiB, "
           << evictions() << " evictions)";
    os << ", " << generations() << " generations, " << hits() << " hits, "
       << diskLoads() << " disk loads";
    if (store_)
        os << " [store: " << store_->dir() << "]";
    return os.str();
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(registryMu_);
    entries_.clear();
    bytesResident_ = 0;
    generations_ = 0;
    hits_ = 0;
    diskLoads_ = 0;
    evictions_ = 0;
}

SharedTrace
TraceCache::lookup(const TraceKey &key)
{
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(registryMu_);
        auto it = entries_.find(key);
        if (it == entries_.end())
            it = entries_.emplace(key, std::make_shared<Entry>()).first;
        entry = it->second;
    }

    std::lock_guard<std::mutex> build(entry->build);
    if (entry->trace) {
        ++hits_;
        touchAndEnforceBudget(entry.get());
        return entry->trace;
    }

    // Evicted or never built: try the disk tier first.
    if (store_) {
        if (SharedTrace t = store_->load(key)) {
            entry->trace = std::move(t);
            entry->bytes = entry->trace->size() * sizeof(InstRecord);
            entry->onDisk = true;
            entry->resident = true;
            bytesResident_ += entry->bytes;
            ++diskLoads_;
            touchAndEnforceBudget(entry.get());
            return entry->trace;
        }
    }

    std::vector<InstRecord> trace;
    {
        MemImage mem(key.imageBytes);
        Rng rng(key.seed);
        if (key.isApp) {
            auto a = makeApp(key.name);
            a->prepare(mem, rng);
            Program p(mem, key.kind);
            a->emit(p);
            trace = p.takeTrace();
        } else {
            auto k = makeKernel(key.name);
            k->prepare(mem, rng);
            Program p(mem, key.kind);
            k->emit(p);
            trace = p.takeTrace();
        }
    }

    entry->trace =
        std::make_shared<const std::vector<InstRecord>>(std::move(trace));
    entry->bytes = entry->trace->size() * sizeof(InstRecord);
    entry->resident = true;
    bytesResident_ += entry->bytes;
    ++generations_;
    if (store_ && store_->save(key, *entry->trace))
        entry->onDisk = true;
    touchAndEnforceBudget(entry.get());
    return entry->trace;
}

void
TraceCache::touchAndEnforceBudget(Entry *keep)
{
    keep->lastUse = ++useClock_;
    u64 budget = budget_.load();
    if (budget == 0 || bytesResident_.load() <= budget)
        return;

    std::lock_guard<std::mutex> lock(registryMu_);
    while (bytesResident_.load() > budget) {
        // Least-recently-used entry whose bytes are safe to drop: it has
        // a RAM copy, that copy is mirrored on disk, and it is not the
        // entry being returned right now.
        Entry *victim = nullptr;
        u64 oldest = ~0ull;
        for (auto &kv : entries_) {
            Entry *e = kv.second.get();
            if (e == keep || !e->resident.load() || !e->onDisk.load())
                continue;
            if (e->lastUse.load() < oldest) {
                oldest = e->lastUse.load();
                victim = e;
            }
        }
        if (!victim)
            return; // everything left is pinned or not disk-backed
        // try_lock is load-bearing: lookup() holds an entry lock while
        // calling into here for registryMu_, so blocking on the victim's
        // entry lock while holding registryMu_ would be a lock-order
        // inversion (entry->registry vs registry->entry) and can
        // deadlock.  A busy victim just ends this eviction pass.
        if (!victim->build.try_lock())
            return;
        victim->trace.reset();
        victim->resident = false;
        bytesResident_ -= victim->bytes;
        ++evictions_;
        victim->build.unlock();
    }
}

} // namespace vmmx
