#include "trace/trace_cache.hh"

#include "apps/app.hh"
#include "common/memimage.hh"
#include "common/rng.hh"
#include "kernels/kernel.hh"
#include "trace/program.hh"

namespace vmmx
{

TraceCache &
TraceCache::instance()
{
    static TraceCache cache;
    return cache;
}

SharedTrace
TraceCache::kernel(const std::string &name, SimdKind kind, u32 imageBytes,
                   u64 seed)
{
    return lookup({false, name, kind, imageBytes, seed});
}

SharedTrace
TraceCache::app(const std::string &name, SimdKind kind, u32 imageBytes,
                u64 seed)
{
    return lookup({true, name, kind, imageBytes, seed});
}

size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(registryMu_);
    return entries_.size();
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(registryMu_);
    entries_.clear();
    generations_ = 0;
    hits_ = 0;
}

SharedTrace
TraceCache::lookup(const Key &key)
{
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(registryMu_);
        auto it = entries_.find(key);
        if (it == entries_.end())
            it = entries_.emplace(key, std::make_shared<Entry>()).first;
        entry = it->second;
    }

    std::lock_guard<std::mutex> build(entry->build);
    if (entry->trace) {
        ++hits_;
        return entry->trace;
    }

    std::vector<InstRecord> trace;
    if (key.isApp) {
        auto a = makeApp(key.name);
        MemImage mem(key.imageBytes);
        Rng rng(key.seed);
        a->prepare(mem, rng);
        Program p(mem, key.kind);
        a->emit(p);
        trace = p.takeTrace();
    } else {
        auto k = makeKernel(key.name);
        MemImage mem(key.imageBytes);
        Rng rng(key.seed);
        k->prepare(mem, rng);
        Program p(mem, key.kind);
        k->emit(p);
        trace = p.takeTrace();
    }

    entry->trace =
        std::make_shared<const std::vector<InstRecord>>(std::move(trace));
    ++generations_;
    return entry->trace;
}

} // namespace vmmx
