#include "trace/program.hh"

#include "common/saturate.hh"

namespace vmmx
{

Program::Program(MemImage &mem, SimdKind kind)
    : mem_(mem),
      kind_(kind),
      width_(rowBytes(kind)),
      vl_(u16(geometry(kind).maxVl)),
      maxSimdRegs_(geometry(kind).logicalRegs)
{
    trace_.reserve(1u << 16);
}

void
Program::release(const Frame &f)
{
    vmmx_assert(f.intMark <= intAlloc_ && f.simdMark <= simdAlloc_ &&
                    f.accMark <= accAlloc_,
                "register frame released out of order");
    intAlloc_ = f.intMark;
    simdAlloc_ = f.simdMark;
    accAlloc_ = f.accMark;
}

SReg
Program::sreg()
{
    if (intAlloc_ >= 32)
        fatal("out of logical scalar registers (32); use register frames");
    return {u8(intAlloc_++)};
}

VR
Program::vreg()
{
    if (simdAlloc_ >= maxSimdRegs_)
        fatal("out of logical SIMD registers (%u) for %s", maxSimdRegs_,
              name(kind_).c_str());
    return {u8(simdAlloc_++)};
}

AR
Program::areg()
{
    if (accAlloc_ >= 4)
        fatal("out of packed accumulators (4)");
    return {u8(accAlloc_++)};
}

void
Program::emit(InstRecord rec)
{
    rec.region = region_;
    trace_.push_back(rec);
}

u32
Program::siteId(const Loc &loc)
{
    // FNV-1a over the identity of the call site.  The file name is hashed
    // by the *content* of its basename (memoised per string literal)
    // rather than by pointer: pointer values change with binary layout and
    // the path prefix changes with the checkout location, either of which
    // would make branch-predictor indexing -- and thus cycle counts --
    // vary across builds of identical source.
    const char *file = loc.file_name();
    u64 fileHash = 0;
    for (const auto &e : fileHashes_) {
        if (e.first == file) {
            fileHash = e.second;
            break;
        }
    }
    if (fileHash == 0) {
        const char *base = file;
        for (const char *c = file; *c; ++c)
            if (*c == '/' || *c == '\\')
                base = c + 1;
        fileHash = 1469598103934665603ull;
        for (const char *c = base; *c; ++c) {
            fileHash ^= u8(*c);
            fileHash *= 1099511628211ull;
        }
        fileHashes_.emplace_back(file, fileHash);
    }

    u64 h = 1469598103934665603ull;
    auto mix = [&h](u64 v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(fileHash);
    mix(loc.line());
    mix(loc.column());
    return u32(h ^ (h >> 32));
}

void
Program::aluOp(Opcode op, SReg d, SReg a, SReg b, u64 result)
{
    InstRecord r;
    r.op = op;
    r.dst = intReg(check(d));
    r.src0 = intReg(check(a));
    r.src1 = intReg(check(b));
    emit(r);
    intRegs_[d.idx] = result;
}

void
Program::aluOpImm(Opcode op, SReg d, SReg a, u64 result)
{
    InstRecord r;
    r.op = op;
    r.dst = intReg(check(d));
    r.src0 = intReg(check(a));
    emit(r);
    intRegs_[d.idx] = result;
}

void
Program::li(SReg d, u64 imm)
{
    InstRecord r;
    r.op = Opcode::LI;
    r.dst = intReg(check(d));
    emit(r);
    intRegs_[d.idx] = imm;
}

void
Program::mov(SReg d, SReg s)
{
    aluOpImm(Opcode::MOV, d, s, val(s));
}

void
Program::add(SReg d, SReg a, SReg b)
{
    aluOp(Opcode::ADD, d, a, b, val(a) + val(b));
}

void
Program::addi(SReg d, SReg a, s64 imm)
{
    aluOpImm(Opcode::ADD, d, a, val(a) + u64(imm));
}

void
Program::sub(SReg d, SReg a, SReg b)
{
    aluOp(Opcode::SUB, d, a, b, val(a) - val(b));
}

void
Program::mul(SReg d, SReg a, SReg b)
{
    aluOp(Opcode::MUL, d, a, b, val(a) * val(b));
}

void
Program::muli(SReg d, SReg a, s64 imm)
{
    aluOpImm(Opcode::MUL, d, a, val(a) * u64(imm));
}

void
Program::div(SReg d, SReg a, SReg b)
{
    vmmx_assert(val(b) != 0, "division by zero in traced code");
    aluOp(Opcode::DIV, d, a, b, u64(sval(a) / sval(b)));
}

void
Program::and_(SReg d, SReg a, SReg b)
{
    aluOp(Opcode::AND, d, a, b, val(a) & val(b));
}

void
Program::andi(SReg d, SReg a, u64 imm)
{
    aluOpImm(Opcode::AND, d, a, val(a) & imm);
}

void
Program::or_(SReg d, SReg a, SReg b)
{
    aluOp(Opcode::OR, d, a, b, val(a) | val(b));
}

void
Program::ori(SReg d, SReg a, u64 imm)
{
    aluOpImm(Opcode::OR, d, a, val(a) | imm);
}

void
Program::xor_(SReg d, SReg a, SReg b)
{
    aluOp(Opcode::XOR, d, a, b, val(a) ^ val(b));
}

void
Program::slli(SReg d, SReg a, unsigned sh)
{
    aluOpImm(Opcode::SLL, d, a, val(a) << sh);
}

void
Program::srli(SReg d, SReg a, unsigned sh)
{
    aluOpImm(Opcode::SRL, d, a, val(a) >> sh);
}

void
Program::srai(SReg d, SReg a, unsigned sh)
{
    aluOpImm(Opcode::SRA, d, a, u64(asr64(sval(a), sh)));
}

void
Program::sll(SReg d, SReg a, SReg b)
{
    aluOp(Opcode::SLL, d, a, b, val(a) << (val(b) & 63));
}

void
Program::srl(SReg d, SReg a, SReg b)
{
    aluOp(Opcode::SRL, d, a, b, val(a) >> (val(b) & 63));
}

void
Program::sra(SReg d, SReg a, SReg b)
{
    aluOp(Opcode::SRA, d, a, b, u64(asr64(sval(a), unsigned(val(b) & 63))));
}

void
Program::slt(SReg d, SReg a, SReg b)
{
    aluOp(Opcode::SLT, d, a, b, sval(a) < sval(b) ? 1 : 0);
}

void
Program::slti(SReg d, SReg a, s64 imm)
{
    aluOpImm(Opcode::SLT, d, a, sval(a) < imm ? 1 : 0);
}

u64
Program::load(SReg d, SReg base, s64 disp, unsigned bytes, bool signExtend)
{
    Addr a = val(base) + u64(disp);
    u64 v;
    switch (bytes) {
      case 1:
        v = signExtend ? u64(s64(s8(mem_.read8(a)))) : mem_.read8(a);
        break;
      case 2:
        v = signExtend ? u64(s64(s16(mem_.read16(a)))) : mem_.read16(a);
        break;
      case 4:
        v = signExtend ? u64(s64(s32(mem_.read32(a)))) : mem_.read32(a);
        break;
      case 8:
        v = mem_.read64(a);
        break;
      default:
        panic("bad scalar load size %u", bytes);
    }

    InstRecord r;
    r.op = Opcode::LOAD;
    r.dst = intReg(check(d));
    r.src0 = intReg(check(base));
    r.addr = a;
    r.rowBytes = u16(bytes);
    r.stride = s32(bytes);
    emit(r);
    intRegs_[d.idx] = v;
    return v;
}

void
Program::store(SReg v, SReg base, s64 disp, unsigned bytes)
{
    Addr a = val(base) + u64(disp);
    switch (bytes) {
      case 1: mem_.write8(a, u8(val(v))); break;
      case 2: mem_.write16(a, u16(val(v))); break;
      case 4: mem_.write32(a, u32(val(v))); break;
      case 8: mem_.write64(a, val(v)); break;
      default: panic("bad scalar store size %u", bytes);
    }

    InstRecord r;
    r.op = Opcode::STORE;
    r.src0 = intReg(check(v));
    r.src1 = intReg(check(base));
    r.addr = a;
    r.rowBytes = u16(bytes);
    r.stride = s32(bytes);
    emit(r);
}

bool
Program::condBranch(bool taken, SReg a, SReg b, const Loc &loc)
{
    InstRecord r;
    r.op = Opcode::BR;
    if (a.valid())
        r.src0 = intReg(a.idx);
    if (b.valid())
        r.src1 = intReg(b.idx);
    r.taken = taken;
    r.staticId = siteId(loc);
    emit(r);
    return taken;
}

void
Program::branch(bool taken, SReg a, SReg b, Loc loc)
{
    condBranch(taken, a, b, loc);
}

bool
Program::brLt(SReg a, SReg b, Loc loc)
{
    return condBranch(sval(a) < sval(b), a, b, loc);
}

bool
Program::brGe(SReg a, SReg b, Loc loc)
{
    return condBranch(sval(a) >= sval(b), a, b, loc);
}

bool
Program::brEq(SReg a, SReg b, Loc loc)
{
    return condBranch(val(a) == val(b), a, b, loc);
}

bool
Program::brNe(SReg a, SReg b, Loc loc)
{
    return condBranch(val(a) != val(b), a, b, loc);
}

bool
Program::brLtI(SReg a, s64 imm, Loc loc)
{
    return condBranch(sval(a) < imm, a, {}, loc);
}

bool
Program::brGeI(SReg a, s64 imm, Loc loc)
{
    return condBranch(sval(a) >= imm, a, {}, loc);
}

bool
Program::brEqI(SReg a, s64 imm, Loc loc)
{
    return condBranch(val(a) == u64(imm), a, {}, loc);
}

bool
Program::brNeI(SReg a, s64 imm, Loc loc)
{
    return condBranch(val(a) != u64(imm), a, {}, loc);
}

void
Program::jump(Loc loc)
{
    InstRecord r;
    r.op = Opcode::JMP;
    r.taken = true;
    r.staticId = siteId(loc);
    emit(r);
}

void
Program::call(Loc loc)
{
    InstRecord r;
    r.op = Opcode::CALL;
    r.taken = true;
    r.staticId = siteId(loc);
    emit(r);
}

void
Program::ret(Loc loc)
{
    InstRecord r;
    r.op = Opcode::RET;
    r.taken = true;
    r.staticId = siteId(loc);
    emit(r);
}

void
Program::forLoop(s64 count, const std::function<void(SReg)> &body, Loc loc)
{
    Frame f = mark();
    SReg i = sreg();
    SReg n = sreg();
    li(i, 0);
    li(n, u64(count));
    // do-while rotation: media loops always run at least once; a zero
    // count emits only the (not-taken) guard branch.
    if (count <= 0) {
        brLt(i, n, loc);
        release(f);
        return;
    }
    for (s64 k = 0; k < count; ++k) {
        body(i);
        addi(i, i, 1);
        brLt(i, n, loc);
    }
    release(f);
}

} // namespace vmmx
