/**
 * @file
 * 2-D (matrix / MOM) SIMD engine for the VMMX64 / VMMX128 flavours.
 *
 * A matrix register holds up to 16 rows of one packed word each; all
 * arithmetic is row-wise over the active vector length (setvl).  Memory
 * operations support unit-stride and strided access, the key mechanism
 * that lets matrix registers ingest the non-contiguous sub-blocks of
 * images and video frames without reorganisation instructions.  Packed
 * accumulators provide overflow-free reductions (SAD, multiply-
 * accumulate) across rows.
 */

#ifndef VMMX_TRACE_VMMX_HH
#define VMMX_TRACE_VMMX_HH

#include "emu/packed.hh"
#include "trace/program.hh"

namespace vmmx
{

class Vmmx
{
  public:
    explicit Vmmx(Program &p);

    unsigned width() const { return w_; }
    u16 vl() const { return p_.vl_; }

    /** Set the active vector length (1..16 rows). */
    void setvl(u16 rows);

    // ---- memory ----
    /** Strided matrix load: rows at val(base)+disp + r*val(stride). */
    void load(VR d, SReg base, s64 disp, SReg stride);
    /** Unit-stride matrix load (stride == row width). */
    void loadU(VR d, SReg base, s64 disp);
    void store(VR s, SReg base, s64 disp, SReg stride);
    void storeU(VR s, SReg base, s64 disp);
    /**
     * Partial movement (the scaled-MOM instructions analogous to
     * SSE2/SSE3 partial loads): transfer @p nrows rows starting at
     * register row @p row0, leaving other rows intact.
     */
    void loadPartial(VR d, unsigned row0, unsigned nrows, SReg base,
                     s64 disp, SReg stride);
    void storePartial(VR s, unsigned row0, unsigned nrows, SReg base,
                      s64 disp, SReg stride);
    /**
     * Byte-partial row transfers (scaled-MOM partial movement): move only
     * the low 8 bytes of each active row.  Lets 8-pixel-wide structures
     * live in the 128-bit flavour without clobbering neighbours.
     */
    void loadHalf(VR d, SReg base, s64 disp, SReg stride);
    void storeHalf(VR s, SReg base, s64 disp, SReg stride);

    // ---- row-wise arithmetic (same repertoire as the 1-D engine) ----
    void padd(VR d, VR a, VR b, ElemWidth ew);
    void padds(VR d, VR a, VR b, ElemWidth ew, bool isSigned);
    void psub(VR d, VR a, VR b, ElemWidth ew);
    void psubs(VR d, VR a, VR b, ElemWidth ew, bool isSigned);
    void pmull(VR d, VR a, VR b, ElemWidth ew);
    void pmulh(VR d, VR a, VR b, ElemWidth ew);
    void pmadd(VR d, VR a, VR b);
    void pavg(VR d, VR a, VR b, ElemWidth ew);
    void pmin(VR d, VR a, VR b, ElemWidth ew, bool isSigned);
    void pmax(VR d, VR a, VR b, ElemWidth ew, bool isSigned);
    void pand(VR d, VR a, VR b);
    void por(VR d, VR a, VR b);
    void pxor(VR d, VR a, VR b);
    void pslli(VR d, VR a, unsigned sh, ElemWidth ew);
    void psrli(VR d, VR a, unsigned sh, ElemWidth ew);
    void psrai(VR d, VR a, unsigned sh, ElemWidth ew);
    void packs(VR d, VR a, VR b, ElemWidth srcEw);
    void packus(VR d, VR a, VR b, ElemWidth srcEw);
    void unpckl(VR d, VR a, VR b, ElemWidth ew);
    void unpckh(VR d, VR a, VR b, ElemWidth ew);

    /** Broadcast a scalar into every element of every active row. */
    void vsplat(VR d, SReg s, ElemWidth ew);
    /** Zero the full register. */
    void vzero(VR d);

    /**
     * In-register transpose of the square s16 matrix held in the top
     * dim x dim elements, dim = row width in 16-bit columns (4 for
     * VMMX64, 8 for VMMX128).  Occupies the lane-exchange network for
     * dim cycles.
     */
    void vtransp(VR d, VR s);

    // ---- packed accumulators ----
    void accclr(AR a);
    /** acc += row-wise SAD of unsigned bytes (per 16-bit column pair). */
    void vsada(AR acc, VR a, VR b);
    /** acc += row-wise products of signed 16-bit columns. */
    void vmacc(AR acc, VR a, VR b);
    /** acc += sign-extended 16-bit columns of a. */
    void vadda(AR acc, VR a);
    /** Reduce all accumulator lanes into a scalar register. */
    void accsum(SReg d, AR a);
    /** Saturate (lanes >> shift) into row @p row of matrix register d. */
    void accpack(VR d, unsigned row, AR a, unsigned shift);

  private:
    void binOp(Opcode op, VR d, VR a, VR b, ElemWidth ew,
               const std::function<VWord(const VWord &, const VWord &)> &fn);
    void memOp(Opcode op, VR reg, SReg base, s64 disp, s64 stride,
               unsigned row0, unsigned nrows, bool isStore, SReg strideReg,
               unsigned bytesPerRow = 0);

    Program &p_;
    unsigned w_;
};

} // namespace vmmx

#endif // VMMX_TRACE_VMMX_HH
