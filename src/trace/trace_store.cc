#include "trace/trace_store.hh"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/env.hh"
#include "common/logging.hh"

namespace fs = std::filesystem;

namespace vmmx
{

namespace
{

constexpr u32 storeMagic = 0x52544d56; // "VMTR" little-endian
constexpr u32 storeVersion = 1;

} // namespace

std::string
TraceStore::defaultDir()
{
    if (std::string dir = env::str("VMMX_TRACE_STORE"); !dir.empty())
        return dir;
    std::error_code ec;
    fs::path tmp = fs::temp_directory_path(ec);
    if (ec)
        tmp = "/tmp";
    // Per-user: a fixed shared name under /tmp would be owned by
    // whichever user swept first and silently unwritable for the rest.
    return (tmp / ("vmmx-trace-store-" + std::to_string(::getuid())))
        .string();
}

TraceStore::TraceStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create trace store directory '%s': %s", dir_.c_str(),
              ec.message().c_str());
}

std::string
TraceStore::path(const TraceKey &key) const
{
    // Human-readable prefix plus a hash of the full key: collision-free
    // even if a future workload name contains separator characters.
    wire::Writer kw;
    serialize(kw, key);
    u64 h = wire::fnv1a(kw.buffer().data(), kw.size());

    std::ostringstream name;
    name << (key.isApp ? "app-" : "kernel-");
    for (char c : key.name)
        name << (std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
    name << '-' << vmmx::name(key.kind) << '-' << std::hex << h << ".vmtr";
    return (fs::path(dir_) / name.str()).string();
}

SharedTrace
TraceStore::load(const TraceKey &key)
{
    const std::string file = path(key);
    std::ifstream in(file, std::ios::binary);
    if (!in) {
        ++misses_;
        return nullptr;
    }
    std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    in.close();

    // Checksum covers everything before the trailing fixed64.
    if (bytes.size() < 8 + 8) {
        warn("trace store: '%s' is truncated; regenerating", file.c_str());
        ++misses_;
        return nullptr;
    }
    wire::Reader tail(bytes.data() + bytes.size() - 8, 8);
    u64 want = tail.fixed64();
    u64 got = wire::fnv1a(bytes.data(), bytes.size() - 8);
    if (want != got) {
        warn("trace store: checksum mismatch in '%s'; regenerating",
             file.c_str());
        ++misses_;
        return nullptr;
    }

    wire::Reader r(bytes.data(), bytes.size() - 8);
    TraceKey stored;
    auto trace = std::make_shared<std::vector<InstRecord>>();
    if (r.fixed32() != storeMagic || r.fixed32() != storeVersion ||
        !deserialize(r, stored) || !(stored == key) ||
        !decodeTrace(r, *trace) || !r.atEnd()) {
        warn("trace store: '%s' is not a valid trace for %s; regenerating",
             file.c_str(), key.describe().c_str());
        ++misses_;
        return nullptr;
    }
    ++loads_;
    return trace;
}

bool
TraceStore::save(const TraceKey &key, const std::vector<InstRecord> &trace)
{
    wire::Writer w;
    w.fixed32(storeMagic);
    w.fixed32(storeVersion);
    serialize(w, key);
    encodeTrace(trace, w);
    w.fixed64(wire::fnv1a(w.buffer().data(), w.size()));

    const std::string file = path(key);
    const std::string tmp = file + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out || !out.write(asChars(w.buffer().data()),
                               std::streamsize(w.size()))) {
            warn("trace store: cannot write '%s'", tmp.c_str());
            std::remove(tmp.c_str());
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, file, ec);
    if (ec) {
        warn("trace store: cannot publish '%s': %s", file.c_str(),
             ec.message().c_str());
        std::remove(tmp.c_str());
        return false;
    }
    ++saves_;
    return true;
}

bool
TraceStore::contains(const TraceKey &key) const
{
    std::error_code ec;
    return fs::exists(path(key), ec) && !ec;
}

} // namespace vmmx
