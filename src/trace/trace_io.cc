#include "trace/trace_io.hh"

#include <sstream>

namespace vmmx
{

// ---- codec lockstep guards ----------------------------------------------
// Mirror structs restating every field the trace codecs serialize: a
// field added to InstRecord or TraceKey without extending
// encodeTrace()/decodeTrace() or serialize()/deserialize() (and the
// mirror) fails to compile here instead of silently dropping data from
// every stored trace.  tools/vmmx_lint enforces that each codec in this
// file keeps a guard.
namespace
{

struct RegIdMirror
{
    RegClass cls;
    u8 idx;
};
static_assert(sizeof(RegId) == sizeof(RegIdMirror),
              "RegId changed: update packCls()/unpackCls(), the per-record "
              "operand bytes, and this mirror");

struct InstRecordMirror
{
    Opcode op;
    ElemWidth ew;
    RegId dst, src0, src1, src2;
    Addr addr;
    u16 rowBytes;
    s32 stride;
    u16 vl;
    bool taken;
    u32 staticId;
    u16 region;
};
static_assert(sizeof(InstRecord) == sizeof(InstRecordMirror),
              "InstRecord changed: update encodeTrace()/decodeTrace(), the "
              "flags byte, and this mirror in lockstep");

struct TraceKeyMirror
{
    bool isApp;
    std::string name;
    SimdKind kind;
    u32 imageBytes;
    u64 seed;
};
static_assert(sizeof(TraceKey) == sizeof(TraceKeyMirror),
              "TraceKey changed: update serialize()/deserialize(), "
              "describe(), TraceStore::path(), and this mirror");

} // namespace

namespace
{

// Per-record flags byte.
constexpr u8 flagTaken = 1u << 0;
constexpr u8 flagEwShift = 1;          // bits 1..2: ElemWidth
constexpr u8 flagEwMask = 3u << flagEwShift;
constexpr u8 flagHasMem = 1u << 3;     // addr/rowBytes/stride block present
constexpr u8 flagHasVl = 1u << 4;      // vl != 0
constexpr u8 flagNewRegion = 1u << 5;  // region differs from previous record

u8
packCls(RegClass a, RegClass b)
{
    return u8(static_cast<u8>(a) | (static_cast<u8>(b) << 4));
}

bool
unpackCls(u8 packed, RegClass &a, RegClass &b)
{
    u8 lo = packed & 0x0f, hi = packed >> 4;
    if (lo > static_cast<u8>(RegClass::None) ||
        hi > static_cast<u8>(RegClass::None))
        return false;
    a = static_cast<RegClass>(lo);
    b = static_cast<RegClass>(hi);
    return true;
}

} // namespace

std::string
TraceKey::describe() const
{
    std::ostringstream os;
    os << (isApp ? "app:" : "kernel:") << name << "/" << vmmx::name(kind)
       << "/" << imageBytes << "B/seed=" << std::hex << seed;
    return os.str();
}

void
encodeTrace(const std::vector<InstRecord> &trace, wire::Writer &w)
{
    w.varint(trace.size());
    Addr prevAddr = 0;
    u32 prevStatic = 0;
    u16 prevRegion = 0;
    for (const InstRecord &i : trace) {
        const bool hasMem = i.addr != 0 || i.rowBytes != 0 || i.stride != 0;
        u8 flags = u8(static_cast<u8>(i.ew) << flagEwShift);
        if (i.taken)
            flags |= flagTaken;
        if (hasMem)
            flags |= flagHasMem;
        if (i.vl != 0)
            flags |= flagHasVl;
        if (i.region != prevRegion)
            flags |= flagNewRegion;

        w.byte(static_cast<u8>(i.op));
        w.byte(flags);
        w.byte(packCls(i.dst.cls, i.src0.cls));
        w.byte(packCls(i.src1.cls, i.src2.cls));
        for (const RegId *r : {&i.dst, &i.src0, &i.src1, &i.src2})
            if (r->valid())
                w.byte(r->idx);
        // Static ids advance by small steps inside a basic block and jump
        // back at loop edges: signed deltas stay short either way.
        w.svarint(s64(i.staticId) - s64(prevStatic));
        prevStatic = i.staticId;
        if (flags & flagNewRegion) {
            w.varint(i.region);
            prevRegion = i.region;
        }
        if (hasMem) {
            // Two's-complement delta: exact for any u64 pair, short for
            // the common near-sequential access patterns.
            w.svarint(s64(i.addr - prevAddr));
            prevAddr = i.addr;
            w.varint(i.rowBytes);
            // Unit-stride rows (stride == rowBytes) encode as zero.
            w.svarint(s64(i.stride) - s64(i.rowBytes));
        }
        if (i.vl != 0)
            w.varint(i.vl);
    }
}

bool
decodeTrace(wire::Reader &r, std::vector<InstRecord> &out)
{
    u64 count = r.varint();
    if (!r.ok())
        return false;
    // A record is at least 5 bytes; reject absurd counts before reserving.
    if (count > r.remaining())
        return false;
    out.clear();
    out.reserve(size_t(count));
    Addr prevAddr = 0;
    u32 prevStatic = 0;
    u16 prevRegion = 0;
    for (u64 n = 0; n < count; ++n) {
        InstRecord i;
        u8 op = r.byte();
        if (op >= static_cast<u8>(Opcode::NUM_OPCODES))
            return false;
        i.op = static_cast<Opcode>(op);
        u8 flags = r.byte();
        i.ew = static_cast<ElemWidth>((flags & flagEwMask) >> flagEwShift);
        i.taken = flags & flagTaken;
        if (!unpackCls(r.byte(), i.dst.cls, i.src0.cls) ||
            !unpackCls(r.byte(), i.src1.cls, i.src2.cls))
            return false;
        for (RegId *reg : {&i.dst, &i.src0, &i.src1, &i.src2})
            if (reg->valid())
                reg->idx = r.byte();
        // Delta applications happen in u64 arithmetic: a hostile or
        // corrupt delta plus the running value must wrap (and then fail
        // validation downstream), never overflow a signed add.
        i.staticId = u32(u64(prevStatic) + u64(r.svarint()));
        prevStatic = i.staticId;
        if (flags & flagNewRegion) {
            i.region = u16(r.varint());
            prevRegion = i.region;
        } else {
            i.region = prevRegion;
        }
        if (flags & flagHasMem) {
            i.addr = prevAddr + u64(r.svarint());
            prevAddr = i.addr;
            i.rowBytes = u16(r.varint());
            i.stride = s32(u64(r.svarint()) + u64(i.rowBytes));
        }
        if (flags & flagHasVl)
            i.vl = u16(r.varint());
        if (!r.ok())
            return false;
        out.push_back(i);
    }
    return true;
}

void
serialize(wire::Writer &w, const TraceKey &key)
{
    w.boolean(key.isApp);
    w.str(key.name);
    w.byte(static_cast<u8>(key.kind));
    w.fixed32(key.imageBytes);
    w.fixed64(key.seed);
}

bool
deserialize(wire::Reader &r, TraceKey &key)
{
    key.isApp = r.boolean();
    key.name = r.str();
    u8 kind = r.byte();
    if (kind > static_cast<u8>(SimdKind::VMMX128))
        return false;
    key.kind = static_cast<SimdKind>(kind);
    key.imageBytes = r.fixed32();
    key.seed = r.fixed64();
    return r.ok();
}

} // namespace vmmx
