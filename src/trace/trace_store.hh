/**
 * @file
 * Persistent content-addressed on-disk cache of generated traces.
 *
 * Trace generation is deterministic in the TraceKey, so the store is
 * content addressed by construction: the key maps to one file name and
 * the file carries the key, a version, and an FNV-1a checksum over the
 * delta+varint-compressed payload.  Workers of a distributed sweep (and
 * repeated sweep invocations in new processes) load traces from here
 * instead of regenerating them.
 *
 * Writes are atomic (temp file + rename) so concurrent writers of the
 * same key -- two workers racing to generate the same trace -- are
 * harmless: both produce identical bytes and the second rename wins.
 * Any validation failure on load (bad magic/version, key mismatch,
 * checksum mismatch, truncation) reads as a miss, never an error.
 */

#ifndef VMMX_TRACE_TRACE_STORE_HH
#define VMMX_TRACE_TRACE_STORE_HH

#include <atomic>
#include <string>

#include "trace/trace_io.hh"

namespace vmmx
{

class TraceStore
{
  public:
    /** $VMMX_TRACE_STORE if set, else "vmmx-trace-store" under the
     *  system temporary directory. */
    static std::string defaultDir();

    /** Opens (and creates if needed) the store directory. */
    explicit TraceStore(std::string dir = defaultDir());
    TraceStore(const TraceStore &) = delete;
    TraceStore &operator=(const TraceStore &) = delete;

    const std::string &dir() const { return dir_; }

    /** Store file for @p key, e.g. "<dir>/kernel-idct-vmmx128-....vmtr". */
    std::string path(const TraceKey &key) const;

    /** @return the stored trace, or null on miss/corruption. */
    SharedTrace load(const TraceKey &key);

    /** Persist @p trace atomically. @return false on I/O failure. */
    bool save(const TraceKey &key, const std::vector<InstRecord> &trace);

    /** @return true when a valid-looking file exists for @p key. */
    bool contains(const TraceKey &key) const;

    u64 loads() const { return loads_.load(); }
    u64 saves() const { return saves_.load(); }
    u64 misses() const { return misses_.load(); }

  private:
    std::string dir_;
    std::atomic<u64> loads_{0};
    std::atomic<u64> saves_{0};
    std::atomic<u64> misses_{0};
};

} // namespace vmmx

#endif // VMMX_TRACE_TRACE_STORE_HH
