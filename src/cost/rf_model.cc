#include "cost/rf_model.hh"

#include "common/logging.hh"

namespace vmmx
{

u64
RfDesign::storageBits() const
{
    return u64(physRegs) * rows * rowBits;
}

double
RfDesign::storageKB() const
{
    return double(storageBits()) / 8.0 / 1000.0;
}

double
RfDesign::areaUnits() const
{
    double ports = double(readPortsPerBank + writePortsPerBank);
    // Bits are spread evenly over the banks; per-cell area grows with
    // (wordlines x bitlines) ~ ports^2.
    return double(storageBits()) * ports * ports;
}

RfDesign
RfDesign::forMachine(SimdKind kind, unsigned way)
{
    if (way != 2 && way != 4 && way != 8)
        fatal("unsupported width %u for RF model", way);
    unsigned idx = way == 2 ? 0 : way == 4 ? 1 : 2;

    static const unsigned mmxPhys[3] = {40, 64, 96};
    static const unsigned vmmxPhys[3] = {20, 36, 64};
    static const unsigned memPorts[3] = {1, 2, 4};
    static const unsigned vmmxBanksPerLane[3] = {1, 2, 4};

    const SimdGeometry &g = geometry(kind);

    RfDesign d;
    d.kind = kind;
    d.way = way;
    d.rowBits = g.rowBits;
    d.rows = g.maxVl;

    if (g.matrix) {
        d.physRegs = vmmxPhys[idx];
        d.lanes = 4;
        d.banksPerLane = vmmxBanksPerLane[idx];
        // Each bank feeds one functional unit per cycle (2 operand reads
        // + 1 result write), one memory stream read and one memory/
        // reduction write: the banked organisation keeps this constant
        // as the machine scales.
        d.readPortsPerBank = 4;
        d.writePortsPerBank = 2;
    } else {
        d.physRegs = mmxPhys[idx];
        d.lanes = 1;
        d.banksPerLane = 1;
        // Centralized file: every SIMD FU needs 2 reads + 1 write, plus
        // the memory ports.
        d.readPortsPerBank = 2 * way + memPorts[idx];
        d.writePortsPerBank = way + memPorts[idx];
    }
    return d;
}

double
normalizedArea(const RfDesign &d)
{
    static const double base =
        RfDesign::forMachine(SimdKind::MMX64, 4).areaUnits();
    return d.areaUnits() / base;
}

} // namespace vmmx
