/**
 * @file
 * Register-file storage / complexity / area model (paper Table I).
 *
 * Follows the register-organisation model of Rixner et al. (HPCA 2000):
 * the area of a storage cell grows with the product of its wordlines and
 * bitlines, i.e. quadratically in the number of ports wired to the cell,
 * so a register file of N bits with r read and w write ports per bank
 * costs N * (r + w)^2 area units.  Banking a lane-partitioned vector
 * register file keeps the per-bank port count constant, which is exactly
 * why the matrix register file scales gently (paper section II-C).
 *
 * The paper itself stresses the model is approximate -- "useful to give
 * upper bounds and determine trends".
 */

#ifndef VMMX_COST_RF_MODEL_HH
#define VMMX_COST_RF_MODEL_HH

#include "isa/simd_kind.hh"

namespace vmmx
{

struct RfDesign
{
    SimdKind kind;
    unsigned way;

    unsigned physRegs;       ///< physical SIMD/matrix registers
    unsigned rowBits;        ///< bits per register row
    unsigned rows;           ///< rows per register (1 or 16)
    unsigned lanes;          ///< vector lanes (1 for the 1-D flavours)
    unsigned banksPerLane;
    unsigned readPortsPerBank;
    unsigned writePortsPerBank;

    /** Total storage in decimal kilobytes (paper uses KB = 1000 B). */
    double storageKB() const;

    /** Total bits of storage. */
    u64 storageBits() const;

    unsigned totalBanks() const { return lanes * banksPerLane; }

    /** Area in cell units: bits x (r + w)^2 summed over banks. */
    double areaUnits() const;

    /** Table I design point for @p kind at @p way. */
    static RfDesign forMachine(SimdKind kind, unsigned way);
};

/** Area of @p d normalised to the 4-way MMX64 design (Table I). */
double normalizedArea(const RfDesign &d);

} // namespace vmmx

#endif // VMMX_COST_RF_MODEL_HH
