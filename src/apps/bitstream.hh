/**
 * @file
 * Bit-level I/O emitted through the trace DSL.  The entropy-coding
 * phases of the mini codecs are pure scalar code -- exactly the part of
 * the applications that SIMD extensions cannot touch.
 */

#ifndef VMMX_APPS_BITSTREAM_HH
#define VMMX_APPS_BITSTREAM_HH

#include "trace/program.hh"

namespace vmmx
{

class DslBitWriter
{
  public:
    /** @param buf byte buffer base address (caller-allocated). */
    DslBitWriter(Program &p, Addr buf);

    /** Append the low @p n bits of @p val (n <= 32). */
    void put(SReg val, unsigned n);

    /** Append an immediate value. */
    void putImm(u64 val, unsigned n);

    /** Pad to a byte boundary and write out pending bits. */
    void flush();

    /** Bytes written so far (trace-time shadow value). */
    u64 bytesWritten() const;

  private:
    void drain();

    Program &p_;
    Addr base_;
    SReg ptr_;
    SReg acc_;
    SReg bits_;
    SReg t_;
};

class DslBitReader
{
  public:
    DslBitReader(Program &p, Addr buf);

    /** Read @p n bits into @p dst (n <= 32); @return shadow value. */
    u64 get(SReg dst, unsigned n);

  private:
    Program &p_;
    SReg ptr_;
    SReg acc_;
    SReg bits_;
    SReg t_;
};

} // namespace vmmx

#endif // VMMX_APPS_BITSTREAM_HH
