#include "apps/bitstream.hh"

namespace vmmx
{

DslBitWriter::DslBitWriter(Program &p, Addr buf)
    : p_(p), base_(buf), ptr_(p.sreg()), acc_(p.sreg()), bits_(p.sreg()),
      t_(p.sreg())
{
    p_.li(ptr_, buf);
    p_.li(acc_, 0);
    p_.li(bits_, 0);
}

void
DslBitWriter::drain()
{
    // while (bits >= 8) store the top byte.
    while (true) {
        bool more = p_.brGeI(bits_, 8);
        if (!more)
            break;
        p_.addi(bits_, bits_, -8);
        p_.srl(t_, acc_, bits_);
        p_.andi(t_, t_, 0xff);
        p_.store(t_, ptr_, 0, 1);
        p_.addi(ptr_, ptr_, 1);
    }
}

void
DslBitWriter::put(SReg val, unsigned n)
{
    vmmx_assert(n >= 1 && n <= 32, "bit count");
    p_.slli(acc_, acc_, n);
    p_.andi(t_, val, (u64(1) << n) - 1);
    p_.or_(acc_, acc_, t_);
    p_.addi(bits_, bits_, s64(n));
    drain();
}

void
DslBitWriter::putImm(u64 val, unsigned n)
{
    p_.li(t_, val & ((u64(1) << n) - 1));
    p_.slli(acc_, acc_, n);
    p_.or_(acc_, acc_, t_);
    p_.addi(bits_, bits_, s64(n));
    drain();
}

void
DslBitWriter::flush()
{
    u64 rem = p_.val(bits_) % 8;
    if (rem != 0)
        putImm(0, unsigned(8 - rem));
    drain();
}

u64
DslBitWriter::bytesWritten() const
{
    return p_.val(ptr_) - base_;
}

DslBitReader::DslBitReader(Program &p, Addr buf)
    : p_(p), ptr_(p.sreg()), acc_(p.sreg()), bits_(p.sreg()), t_(p.sreg())
{
    p_.li(ptr_, buf);
    p_.li(acc_, 0);
    p_.li(bits_, 0);
}

u64
DslBitReader::get(SReg dst, unsigned n)
{
    vmmx_assert(n >= 1 && n <= 32, "bit count");
    while (true) {
        bool need = p_.brLtI(bits_, s64(n));
        if (!need)
            break;
        p_.load(t_, ptr_, 0, 1);
        p_.addi(ptr_, ptr_, 1);
        p_.slli(acc_, acc_, 8);
        p_.or_(acc_, acc_, t_);
        p_.addi(bits_, bits_, 8);
    }
    p_.addi(bits_, bits_, -s64(n));
    p_.srl(dst, acc_, bits_);
    p_.andi(dst, dst, (u64(1) << n) - 1);
    return p_.val(dst);
}

} // namespace vmmx
