#include "apps/app.hh"

#include "apps/gsm.hh"
#include "apps/jpeg.hh"
#include "apps/mpeg2.hh"
#include "common/logging.hh"

namespace vmmx
{

std::vector<std::string>
appNames()
{
    return {"jpegenc", "jpegdec", "mpeg2enc", "mpeg2dec", "gsmenc",
            "gsmdec"};
}

std::unique_ptr<App>
makeApp(const std::string &name)
{
    if (name == "jpegenc")
        return std::make_unique<JpegEnc>();
    if (name == "jpegdec")
        return std::make_unique<JpegDec>();
    if (name == "mpeg2enc")
        return std::make_unique<Mpeg2Enc>();
    if (name == "mpeg2dec")
        return std::make_unique<Mpeg2Dec>();
    if (name == "gsmenc")
        return std::make_unique<GsmEnc>();
    if (name == "gsmdec")
        return std::make_unique<GsmDec>();
    fatal("unknown app '%s'", name.c_str());
}

std::vector<std::unique_ptr<App>>
makeAllApps()
{
    std::vector<std::unique_ptr<App>> out;
    for (const auto &n : appNames())
        out.push_back(makeApp(n));
    return out;
}

} // namespace vmmx
