/**
 * @file
 * Mini MPEG-2 encoder / decoder applications (luma-only, I + P frame).
 *
 * mpeg2enc: full-search SAD motion estimation (motion1, vectorised) with
 * SQD refinement (motion2, vectorised), fdct/idct (vectorised), flat
 * quantisation, zig-zag VLC and reconstruction (scalar glue).
 *
 * mpeg2dec: VLC parsing and dequant (scalar), idct (vectorised),
 * half-pel motion compensation (comp, vectorised) and block
 * reconstruction (addblock, vectorised) -- Table II's kernel split.
 */

#ifndef VMMX_APPS_MPEG2_HH
#define VMMX_APPS_MPEG2_HH

#include "apps/app.hh"

namespace vmmx
{

struct Mpeg2Layout
{
    static constexpr unsigned kW = 64;
    static constexpr unsigned kH = 48;
    static constexpr unsigned kBorder = 16;
    static constexpr unsigned kPitch = kW + 2 * kBorder;
    static constexpr unsigned kFrameBytes = kPitch * (kH + 2 * kBorder);
    static constexpr unsigned kMbW = kW / 16;
    static constexpr unsigned kMbH = kH / 16;

    Addr cur0 = 0, cur1 = 0;   ///< source frames (interior origins)
    Addr recA = 0, recB = 0;   ///< encoder reconstructions
    Addr dRec0 = 0, dRec1 = 0; ///< decoder reconstructions
    Addr pred = 0;             ///< 16x16 prediction buffer
    Addr predArr = 0;          ///< per-MB prediction buffers (batched)
    Addr blockArr = 0;         ///< 48 coefficient/residual blocks
    Addr block = 0, block2 = 0;
    Addr const128 = 0;         ///< an 8-byte row of 128s
    Addr stream = 0, streamLen = 0;

    /** Interior origin helper: frames are border-padded. */
    static Addr
    interior(Addr base)
    {
        return base + kBorder * kPitch + kBorder;
    }

    void alloc(MemImage &mem);
};

class Mpeg2Enc : public App
{
  public:
    std::string name() const override { return "mpeg2enc"; }
    std::string description() const override
    {
        return "MPEG-2 video encoder";
    }
    void prepare(MemImage &mem, Rng &rng) override;
    void emit(Program &p) override;
    u64 checksum(const MemImage &mem) const override;

    const Mpeg2Layout &layout() const { return lay_; }

  private:
    Mpeg2Layout lay_;
};

class Mpeg2Dec : public App
{
  public:
    std::string name() const override { return "mpeg2dec"; }
    std::string description() const override
    {
        return "MPEG-2 video decoder";
    }
    void prepare(MemImage &mem, Rng &rng) override;
    void emit(Program &p) override;
    u64 checksum(const MemImage &mem) const override;

    const Mpeg2Layout &layout() const { return enc_.layout(); }

  private:
    Mpeg2Enc enc_;
};

} // namespace vmmx

#endif // VMMX_APPS_MPEG2_HH
