#include "apps/jpeg.hh"

#include <optional>

#include "apps/blockcode.hh"

#include "apps/bitstream.hh"
#include "kernels/kops_color.hh"
#include "kernels/kops_dct.hh"
#include "kernels/kops_resample.hh"

namespace vmmx
{

namespace
{

using namespace kops;
using namespace blockcode;


} // namespace

void
JpegLayout::alloc(MemImage &mem)
{
    rgbIn = mem.alloc(3 * kPixels + 64);
    yPlane = mem.alloc(kPixels + 64);
    cbFull = mem.alloc(kPixels + 64);
    crFull = mem.alloc(kPixels + 64);
    cbSmall = mem.alloc(kCW * kCH + 64);
    crSmall = mem.alloc(kCW * kCH + 64);
    block = mem.alloc(256);
    block2 = mem.alloc(256);
    stream = mem.alloc(64 * 1024);
    streamLen = mem.alloc(8);

    dY = mem.alloc(kPixels + 64);
    dCbBase = mem.alloc(kCPitch * (kCH + 2) + 64);
    dCrBase = mem.alloc(kCPitch * (kCH + 2) + 64);
    dCbFull = mem.alloc(kPixels + 64);
    dCrFull = mem.alloc(kPixels + 64);
    dR = mem.alloc(kPixels + 64);
    dG = mem.alloc(kPixels + 64);
    dB = mem.alloc(kPixels + 64);
}

void
JpegEnc::prepare(MemImage &mem, Rng &rng)
{
    lay_.alloc(mem);
    // Smooth gradient + mild noise keeps quantisation error small so
    // the decode round-trip bound is meaningful.
    for (unsigned y = 0; y < JpegLayout::kH; ++y) {
        for (unsigned x = 0; x < JpegLayout::kW; ++x) {
            Addr px = lay_.rgbIn + 3 * (y * JpegLayout::kW + x);
            mem.write8(px + 0, u8(2 * x + rng.below(8)));
            mem.write8(px + 1, u8(2 * y + rng.below(8)));
            mem.write8(px + 2, u8(x + y + rng.below(8)));
        }
    }
}

void
JpegEnc::emit(Program &p)
{
    const JpegLayout &L = lay_;
    auto f = p.mark();

    // Phase 1: colour conversion (vectorised).
    {
        VectorRegion vr(p);
        SReg s = p.sreg();
        SReg y = p.sreg();
        SReg cb = p.sreg();
        SReg cr = p.sreg();
        p.li(s, L.rgbIn);
        p.li(y, L.yPlane);
        p.li(cb, L.cbFull);
        p.li(cr, L.crFull);
        if (p.matrix()) {
            Vmmx v(p);
            rgb2YccVmmx(p, v, s, y, cb, cr, JpegLayout::kPixels);
        } else {
            Mmx m(p);
            rgb2YccMmx(p, m, s, y, cb, cr, JpegLayout::kPixels);
        }
    }

    // Phase 2: 4:2:0 chroma downsample (scalar).
    {
        auto f2 = p.mark();
        SReg s0 = p.sreg();
        SReg d = p.sreg();
        SReg a = p.sreg();
        SReg b = p.sreg();
        SReg t = p.sreg();
        for (Addr pair : {Addr(0), Addr(1)}) {
            Addr full = pair == 0 ? L.cbFull : L.crFull;
            Addr small = pair == 0 ? L.cbSmall : L.crSmall;
            p.forLoop(JpegLayout::kCH, [&](SReg r) {
                p.muli(s0, r, 2 * JpegLayout::kW);
                p.addi(s0, s0, s64(full));
                p.muli(d, r, JpegLayout::kCW);
                p.addi(d, d, s64(small));
                p.forLoop(JpegLayout::kCW, [&](SReg c) {
                    p.slli(t, c, 1);
                    p.add(t, t, s0);
                    p.load(a, t, 0, 1);
                    p.load(b, t, 1, 1);
                    p.add(a, a, b);
                    p.load(b, t, JpegLayout::kW, 1);
                    p.add(a, a, b);
                    p.load(b, t, JpegLayout::kW + 1, 1);
                    p.add(a, a, b);
                    p.addi(a, a, 2);
                    p.srli(a, a, 2);
                    p.add(t, d, c);
                    p.store(a, t, 0, 1);
                });
            });
        }
        p.release(f2);
    }

    // Phase 3: per-block transform + entropy coding.  The matrix
    // flavours keep the coefficient matrices register-resident across
    // every block of every plane.
    DctTables tabs = prepareDctTables(p);
    DslBitWriter bw(p, L.stream);
    std::optional<Mmx> mm;
    std::optional<Vmmx> vm;
    VmmxDctCtx ctx;
    {
        VectorRegion vr(p);
        if (p.matrix()) {
            vm.emplace(p);
            ctx = dctVmmxLoadTables(p, *vm, tabs, true);
        } else {
            mm.emplace(p);
        }
    }
    auto doPlane = [&](Addr plane, unsigned pw, unsigned ph) {
        for (unsigned by = 0; by < ph / 8; ++by) {
            for (unsigned bx = 0; bx < pw / 8; ++bx) {
                extractBlock(p, plane, pw, bx, by, L.block);
                {
                    VectorRegion vr(p);
                    auto f3 = p.mark();
                    SReg i = p.sreg();
                    SReg o = p.sreg();
                    p.li(i, L.block);
                    p.li(o, L.block2);
                    if (p.matrix())
                        dctVmmxBlock(p, *vm, tabs, ctx, i, o);
                    else
                        dctMmx(p, *mm, tabs, i, o, true);
                    p.release(f3);
                }
                codeBlock(p, bw, L.block2);
            }
        }
    };
    doPlane(L.yPlane, JpegLayout::kW, JpegLayout::kH);
    doPlane(L.cbSmall, JpegLayout::kCW, JpegLayout::kCH);
    doPlane(L.crSmall, JpegLayout::kCW, JpegLayout::kCH);
    bw.flush();

    auto f4 = p.mark();
    SReg len = p.sreg();
    SReg la = p.sreg();
    p.li(len, bw.bytesWritten());
    p.li(la, L.streamLen);
    p.store(len, la, 0, 8);
    p.release(f4);
    p.release(f);
}

u64
JpegEnc::checksum(const MemImage &mem) const
{
    u64 n = mem.read64(lay_.streamLen);
    u64 h = 1469598103934665603ull;
    return hashRange(mem, lay_.stream, size_t(n), h) ^ n;
}

u64
App::hashRange(const MemImage &mem, Addr a, size_t n, u64 h)
{
    for (size_t i = 0; i < n; ++i) {
        h ^= mem.read8(a + i);
        h *= 1099511628211ull;
    }
    return h;
}

void
JpegDec::prepare(MemImage &mem, Rng &rng)
{
    enc_.prepare(mem, rng);
    // Produce the input bitstream by running the encoder functionally.
    Program tmp(mem, SimdKind::MMX64);
    enc_.emit(tmp);
}

void
JpegDec::emit(Program &p)
{
    const JpegLayout &L = enc_.layout();
    auto f = p.mark();

    // Phase 1: entropy decode + dequant + scalar IDCT per block (the
    // paper's jpegdec vectorises only h2v2 and ycc).
    DctTables tabs = prepareDctTables(p);
    DslBitReader br(p, L.stream);
    Addr cbInterior = L.dCbBase + JpegLayout::kCPitch + 1;
    Addr crInterior = L.dCrBase + JpegLayout::kCPitch + 1;
    auto doPlane = [&](Addr plane, unsigned pitch, unsigned pw,
                       unsigned ph) {
        for (unsigned by = 0; by < ph / 8; ++by) {
            for (unsigned bx = 0; bx < pw / 8; ++bx) {
                parseBlock(p, br, L.block);
                {
                    auto f3 = p.mark();
                    SReg i = p.sreg();
                    SReg o = p.sreg();
                    p.li(i, L.block);
                    p.li(o, L.block2);
                    dctScalar(p, tabs, i, o, false);
                    p.release(f3);
                }
                depositBlock(p, L.block2, plane, pitch, bx, by);
            }
        }
    };
    doPlane(L.dY, JpegLayout::kW, JpegLayout::kW, JpegLayout::kH);
    doPlane(cbInterior, JpegLayout::kCPitch, JpegLayout::kCW,
            JpegLayout::kCH);
    doPlane(crInterior, JpegLayout::kCPitch, JpegLayout::kCW,
            JpegLayout::kCH);

    // Phase 2: replicate chroma borders (scalar) for the up-sampler.
    {
        auto f2 = p.mark();
        SReg v = p.sreg();
        SReg s = p.sreg();
        SReg d = p.sreg();
        for (Addr interior : {cbInterior, crInterior}) {
            unsigned pitch = JpegLayout::kCPitch;
            unsigned cw = JpegLayout::kCW;
            unsigned ch = JpegLayout::kCH;
            p.forLoop(ch, [&](SReg r) {
                p.muli(s, r, pitch);
                p.addi(s, s, s64(interior));
                p.load(v, s, 0, 1);
                p.store(v, s, -1, 1);
                p.load(v, s, s64(cw) - 1, 1);
                for (unsigned e = 0; e < 17; ++e)
                    p.store(v, s, s64(cw + e), 1);
            });
            p.forLoop(pitch, [&](SReg c) {
                p.li(s, interior - 1);
                p.add(s, s, c);
                p.load(v, s, 0, 1);
                p.store(v, s, -s64(pitch), 1);
                p.li(d, interior + (ch - 1) * pitch - 1);
                p.add(d, d, c);
                p.load(v, d, 0, 1);
                p.store(v, d, s64(pitch), 1);
            });
        }
        p.release(f2);
    }

    // Phase 3: h2v2 chroma up-sampling (vectorised).
    {
        VectorRegion vr(p);
        auto f3 = p.mark();
        SReg s = p.sreg();
        SReg d = p.sreg();
        for (int c = 0; c < 2; ++c) {
            p.li(s, c == 0 ? cbInterior : crInterior);
            p.li(d, c == 0 ? L.dCbFull : L.dCrFull);
            if (p.matrix()) {
                Vmmx v(p);
                h2v2Vmmx(p, v, s, JpegLayout::kCPitch, d, JpegLayout::kW,
                         JpegLayout::kCW, JpegLayout::kCH);
            } else {
                Mmx m(p);
                h2v2Mmx(p, m, s, JpegLayout::kCPitch, d, JpegLayout::kW,
                        JpegLayout::kCW, JpegLayout::kCH);
            }
        }
        p.release(f3);
    }

    // Phase 4: colour conversion (vectorised).
    {
        VectorRegion vr(p);
        auto f4 = p.mark();
        SReg y = p.sreg();
        SReg cb = p.sreg();
        SReg cr = p.sreg();
        SReg r = p.sreg();
        SReg g = p.sreg();
        SReg b = p.sreg();
        p.li(y, L.dY);
        p.li(cb, L.dCbFull);
        p.li(cr, L.dCrFull);
        p.li(r, L.dR);
        p.li(g, L.dG);
        p.li(b, L.dB);
        if (p.matrix()) {
            Vmmx v(p);
            ycc2RgbVmmx(p, v, y, cb, cr, r, g, b, JpegLayout::kPixels);
        } else {
            Mmx m(p);
            ycc2RgbMmx(p, m, y, cb, cr, r, g, b, JpegLayout::kPixels);
        }
        p.release(f4);
    }
    p.release(f);
}

u64
JpegDec::checksum(const MemImage &mem) const
{
    const JpegLayout &L = enc_.layout();
    u64 h = 1469598103934665603ull;
    h = hashRange(mem, L.dR, JpegLayout::kPixels, h);
    h = hashRange(mem, L.dG, JpegLayout::kPixels, h);
    h = hashRange(mem, L.dB, JpegLayout::kPixels, h);
    return h;
}

} // namespace vmmx
