/**
 * @file
 * Mini GSM 06.10-style RPE-LTP speech codec applications.
 *
 * gsmenc: preemphasis, autocorrelation, lattice short-term analysis
 * (all scalar), per-subframe LTP lag search (ltppar, vectorised), RPE
 * quantisation and bit packing (scalar).
 *
 * gsmdec: bit parsing (scalar), long-term synthesis (ltpfilt,
 * vectorised), lattice short-term synthesis and deemphasis (scalar).
 *
 * Frames are 3 subframes x 40 samples = 120 samples (Table II's
 * "120 16-bit" granularity).  Less than ~10 % of the dynamic work is
 * vectorisable, matching the paper's observation for the GSM pair.
 */

#ifndef VMMX_APPS_GSM_HH
#define VMMX_APPS_GSM_HH

#include "apps/app.hh"

namespace vmmx
{

struct GsmLayout
{
    static constexpr unsigned kFrame = 120;
    static constexpr unsigned kFrames = 4;
    static constexpr unsigned kTotal = kFrame * kFrames;

    Addr input = 0;     ///< kTotal s16 source samples
    Addr spre = 0;      ///< preemphasised frame
    Addr resid = 0;     ///< short-term residual frame
    Addr hist = 0;      ///< 240 s16 rolling LTP history (encoder)
    Addr dHist = 0;     ///< 240 s16 rolling history (decoder)
    Addr erp = 0;       ///< decoded excitation frame
    Addr nc = 0, bc = 0;
    Addr output = 0;    ///< kTotal s16 decoded samples
    Addr stream = 0, streamLen = 0;

    void alloc(MemImage &mem);
};

class GsmEnc : public App
{
  public:
    std::string name() const override { return "gsmenc"; }
    std::string description() const override
    {
        return "GSM 06.10 speech encoder";
    }
    void prepare(MemImage &mem, Rng &rng) override;
    void emit(Program &p) override;
    u64 checksum(const MemImage &mem) const override;

    const GsmLayout &layout() const { return lay_; }

  private:
    GsmLayout lay_;
};

class GsmDec : public App
{
  public:
    std::string name() const override { return "gsmdec"; }
    std::string description() const override
    {
        return "GSM 06.10 speech decoder";
    }
    void prepare(MemImage &mem, Rng &rng) override;
    void emit(Program &p) override;
    u64 checksum(const MemImage &mem) const override;

    const GsmLayout &layout() const { return enc_.layout(); }

  private:
    GsmEnc enc_;
};

} // namespace vmmx

#endif // VMMX_APPS_GSM_HH
