/**
 * @file
 * Shared scalar block-coding phases for the mini image/video codecs:
 * block extraction, flat quantisation, zig-zag run-length bit coding,
 * parsing, and clamped deposit back into u8 planes.  All of this is the
 * scalar "protocol overhead" that SIMD cannot accelerate.
 */

#ifndef VMMX_APPS_BLOCKCODE_HH
#define VMMX_APPS_BLOCKCODE_HH

#include "apps/bitstream.hh"
#include "trace/program.hh"

namespace vmmx::blockcode
{

inline const u8 zigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
};

constexpr unsigned kQShift = 4; // flat quantiser step 16

/** Extract an 8x8 u8 block, level-shift by -128, store s16 rows. */
inline void
extractBlock(Program &p, Addr plane, unsigned pitch, unsigned bx,
             unsigned by, Addr blockAddr)
{
    auto f = p.mark();
    SReg src = p.sreg();
    SReg dst = p.sreg();
    SReg v = p.sreg();
    SReg t = p.sreg();
    p.li(src, plane + by * 8 * pitch + bx * 8);
    p.li(dst, blockAddr);
    p.forLoop(8, [&](SReg) {
        p.forLoop(8, [&](SReg c) {
            p.add(t, src, c);
            p.load(v, t, 0, 1);
            p.addi(v, v, -128);
            p.slli(t, c, 1);
            p.add(t, t, dst);
            p.store(v, t, 0, 2);
        });
        p.addi(src, src, pitch);
        p.addi(dst, dst, 16);
    });
    p.release(f);
}

/** Quantise + zig-zag + run-length code one transformed block. */
inline void
codeBlock(Program &p, DslBitWriter &bw, Addr blockAddr)
{
    auto f = p.mark();
    SReg base = p.sreg();
    SReg v = p.sreg();
    p.li(base, blockAddr);

    p.load(v, base, 2 * zigzag[0], 2, true);
    p.addi(v, v, 8);
    p.srai(v, v, kQShift);
    p.addi(v, v, 2048);
    bw.put(v, 12);

    unsigned run = 0;
    for (unsigned k = 1; k < 64; ++k) {
        p.load(v, base, 2 * zigzag[k], 2, true);
        p.addi(v, v, 8);
        p.srai(v, v, kQShift);
        if (p.brEqI(v, 0)) {
            ++run;
            continue;
        }
        bw.putImm(run, 6);
        p.addi(v, v, 512);
        bw.put(v, 10);
        run = 0;
    }
    bw.putImm(63, 6); // end of block
    p.release(f);
}

/** Quantise + dequantise in place (encoder-side reconstruction). */
inline void
qdqBlock(Program &p, Addr blockAddr)
{
    auto f = p.mark();
    SReg base = p.sreg();
    SReg v = p.sreg();
    SReg t = p.sreg();
    p.li(base, blockAddr);
    p.forLoop(64, [&](SReg k) {
        p.slli(t, k, 1);
        p.add(t, t, base);
        p.load(v, t, 0, 2, true);
        p.addi(v, v, 8);
        p.srai(v, v, kQShift);
        p.slli(v, v, kQShift);
        p.store(v, t, 0, 2);
    });
    p.release(f);
}

/** Parse one block into dequantised coefficients. */
inline void
parseBlock(Program &p, DslBitReader &br, Addr blockAddr)
{
    auto f = p.mark();
    SReg base = p.sreg();
    SReg v = p.sreg();
    SReg zero = p.sreg();
    p.li(base, blockAddr);
    p.li(zero, 0);
    for (unsigned i = 0; i < 16; ++i)
        p.store(zero, base, s64(8 * i), 8);

    br.get(v, 12);
    p.addi(v, v, -2048);
    p.slli(v, v, kQShift);
    p.store(v, base, 2 * zigzag[0], 2);

    unsigned k = 1;
    while (true) {
        u64 run = br.get(v, 6);
        if (p.brEqI(v, 63))
            break;
        k += unsigned(run);
        vmmx_assert(k < 64, "corrupt mini-codec stream");
        br.get(v, 10);
        p.addi(v, v, -512);
        p.slli(v, v, kQShift);
        p.store(v, base, 2 * zigzag[k], 2);
        ++k;
    }
    p.release(f);
}

/** Deposit a spatial block (+bias, clamp to u8) into a plane. */
inline void
depositBlock(Program &p, Addr blockAddr, Addr plane, unsigned pitch,
             unsigned bx, unsigned by, int bias = 128)
{
    auto f = p.mark();
    SReg src = p.sreg();
    SReg dst = p.sreg();
    SReg v = p.sreg();
    SReg t = p.sreg();
    SReg zero = p.sreg();
    SReg c255 = p.sreg();
    p.li(src, blockAddr);
    p.li(dst, plane + by * 8 * pitch + bx * 8);
    p.li(zero, 0);
    p.li(c255, 255);
    p.forLoop(8, [&](SReg) {
        p.forLoop(8, [&](SReg c) {
            p.slli(t, c, 1);
            p.add(t, t, src);
            p.load(v, t, 0, 2, true);
            p.addi(v, v, bias);
            if (p.brLt(v, zero))
                p.mov(v, zero);
            if (p.brLt(c255, v))
                p.mov(v, c255);
            p.add(t, dst, c);
            p.store(v, t, 0, 1);
        });
        p.addi(src, src, 16);
        p.addi(dst, dst, pitch);
    });
    p.release(f);
}

} // namespace vmmx::blockcode

#endif // VMMX_APPS_BLOCKCODE_HH
