/**
 * @file
 * Mini JPEG encoder / decoder applications.
 *
 * jpegenc: interleaved RGB -> planar YCC (rgb kernel, vectorised),
 * 4:2:0 chroma downsample (scalar), per-block forward DCT (fdct kernel,
 * vectorised), flat quantisation, zig-zag and run-length/VLC bit coding
 * (scalar).
 *
 * jpegdec: entropy decode + dequant + scalar IDCT (the paper's jpegdec
 * only vectorises h2v2 and ycc -- Table II), h2v2 chroma up-sampling
 * (vectorised), YCC -> RGB (ycc kernel, vectorised).
 */

#ifndef VMMX_APPS_JPEG_HH
#define VMMX_APPS_JPEG_HH

#include "apps/app.hh"

namespace vmmx
{

struct JpegLayout
{
    static constexpr unsigned kW = 64;
    static constexpr unsigned kH = 64;
    static constexpr unsigned kPixels = kW * kH;
    static constexpr unsigned kCW = kW / 2; // chroma
    static constexpr unsigned kCH = kH / 2;

    Addr rgbIn = 0;
    Addr yPlane = 0, cbFull = 0, crFull = 0;
    Addr cbSmall = 0, crSmall = 0;
    Addr block = 0, block2 = 0;
    Addr stream = 0, streamLen = 0;

    // Decoder side.
    Addr dY = 0;
    Addr dCbBase = 0, dCrBase = 0; // padded planes for h2v2
    Addr dCbFull = 0, dCrFull = 0;
    Addr dR = 0, dG = 0, dB = 0;

    static constexpr unsigned kCPitch = kCW + 32;

    void alloc(MemImage &mem);
};

class JpegEnc : public App
{
  public:
    std::string name() const override { return "jpegenc"; }
    std::string description() const override
    {
        return "JPEG still image encoder";
    }
    void prepare(MemImage &mem, Rng &rng) override;
    void emit(Program &p) override;
    u64 checksum(const MemImage &mem) const override;

    const JpegLayout &layout() const { return lay_; }

  private:
    JpegLayout lay_;
};

class JpegDec : public App
{
  public:
    std::string name() const override { return "jpegdec"; }
    std::string description() const override
    {
        return "JPEG still image decoder";
    }
    void prepare(MemImage &mem, Rng &rng) override;
    void emit(Program &p) override;
    u64 checksum(const MemImage &mem) const override;

    const JpegLayout &layout() const { return enc_.layout(); }

  private:
    JpegEnc enc_;
};

} // namespace vmmx

#endif // VMMX_APPS_JPEG_HH
