#include "apps/mpeg2.hh"

#include "apps/blockcode.hh"
#include "kernels/kops_block.hh"
#include "kernels/kops_dct.hh"
#include "kernels/kops_motion.hh"

namespace vmmx
{

namespace
{

using namespace kops;
using namespace blockcode;

constexpr int kSearch = 3; // +-3 full-search window

/** Emit SAD/SQD for the active flavour. */
void
emitSad(Program &p, SReg a, SReg b, SReg lxReg, unsigned lx, SReg out,
        bool quadratic)
{
    if (p.matrix()) {
        Vmmx v(p);
        if (quadratic)
            sqdVmmx(p, v, a, b, 16, lxReg, out);
        else
            sadVmmx(p, v, a, b, 16, lxReg, out);
    } else {
        Mmx m(p);
        if (quadratic)
            sqdMmx(p, m, a, b, 16, lx, out);
        else
            sadMmx(p, m, a, b, 16, lx, out);
    }
}

/** res[8x8 s16] = cur[u8] - pred[u8] (scalar). */
void
residualBlock(Program &p, Addr cur, unsigned curPitch, Addr pred,
              unsigned predPitch, Addr blockAddr)
{
    auto f = p.mark();
    SReg sc = p.sreg();
    SReg sp = p.sreg();
    SReg dst = p.sreg();
    SReg a = p.sreg();
    SReg b = p.sreg();
    SReg t = p.sreg();
    p.li(sc, cur);
    p.li(sp, pred);
    p.li(dst, blockAddr);
    p.forLoop(8, [&](SReg) {
        p.forLoop(8, [&](SReg c) {
            p.add(t, sc, c);
            p.load(a, t, 0, 1);
            p.add(t, sp, c);
            p.load(b, t, 0, 1);
            p.sub(a, a, b);
            p.slli(t, c, 1);
            p.add(t, t, dst);
            p.store(a, t, 0, 2);
        });
        p.addi(sc, sc, curPitch);
        p.addi(sp, sp, predPitch);
        p.addi(dst, dst, 16);
    });
    p.release(f);
}

/** recon[u8] = clamp(pred[u8] + res[s16]) (scalar encoder-side). */
void
reconBlock(Program &p, Addr pred, unsigned predPitch, Addr blockAddr,
           Addr out, unsigned outPitch)
{
    auto f = p.mark();
    SReg sp = p.sreg();
    SReg sb = p.sreg();
    SReg dst = p.sreg();
    SReg a = p.sreg();
    SReg b = p.sreg();
    SReg t = p.sreg();
    SReg zero = p.sreg();
    SReg c255 = p.sreg();
    p.li(sp, pred);
    p.li(sb, blockAddr);
    p.li(dst, out);
    p.li(zero, 0);
    p.li(c255, 255);
    p.forLoop(8, [&](SReg) {
        p.forLoop(8, [&](SReg c) {
            p.add(t, sp, c);
            p.load(a, t, 0, 1);
            p.slli(t, c, 1);
            p.add(t, t, sb);
            p.load(b, t, 0, 2, true);
            p.add(a, a, b);
            if (p.brLt(a, zero))
                p.mov(a, zero);
            if (p.brLt(c255, a))
                p.mov(a, c255);
            p.add(t, dst, c);
            p.store(a, t, 0, 1);
        });
        p.addi(sp, sp, predPitch);
        p.addi(sb, sb, 16);
        p.addi(dst, dst, outPitch);
    });
    p.release(f);
}

/** Half-pel-style motion compensation into the 16x16 pred buffer via
 *  two 8-wide comp calls (vectorised). */
void
emitPrediction(Program &p, Addr refBlock, unsigned pitch, bool halfpel,
               Addr pred)
{
    VectorRegion vr(p);
    auto f = p.mark();
    SReg a = p.sreg();
    SReg b = p.sreg();
    SReg o = p.sreg();
    for (unsigned half = 0; half < 2; ++half) {
        p.li(a, refBlock + 8 * half);
        p.li(b, refBlock + 8 * half + (halfpel ? 1 : 0));
        p.li(o, pred + 8 * half);
        if (p.matrix()) {
            Vmmx v(p);
            SReg lx = p.sreg();
            SReg olx = p.sreg();
            p.li(lx, pitch);
            p.li(olx, 16);
            compVmmx(p, v, a, b, o, 8, 16, lx, olx);
        } else {
            Mmx m(p);
            compMmx(p, m, a, b, o, 8, 16, pitch, 16);
        }
    }
    p.release(f);
}

/**
 * Batched in-place transform of @p n blocks at @p arr (128 B apart).
 * For the matrix flavours the coefficient splat matrices are loaded
 * once and stay register-resident across the whole batch.
 */
void
emitDctBatch(Program &p, const DctTables &tabs, Addr arr, unsigned n,
             bool forward)
{
    VectorRegion vr(p);
    auto f = p.mark();
    SReg i = p.sreg();
    SReg o = p.sreg();
    if (p.matrix()) {
        Vmmx v(p);
        VmmxDctCtx ctx = dctVmmxLoadTables(p, v, tabs, forward);
        for (unsigned b = 0; b < n; ++b) {
            p.li(i, arr + b * 128);
            dctVmmxBlock(p, v, tabs, ctx, i, i);
        }
    } else {
        Mmx m(p);
        for (unsigned b = 0; b < n; ++b) {
            p.li(i, arr + b * 128);
            dctMmx(p, m, tabs, i, i, forward);
        }
    }
    (void)o;
    p.release(f);
}

/** addblock (vectorised): out = clamp(pred + res). */
void
emitAddblock(Program &p, Addr pred, unsigned predPitch, Addr res,
             Addr out, unsigned outPitch)
{
    VectorRegion vr(p);
    auto f = p.mark();
    SReg pr = p.sreg();
    SReg re = p.sreg();
    SReg o = p.sreg();
    p.li(pr, pred);
    p.li(re, res);
    p.li(o, out);
    if (p.matrix()) {
        Vmmx v(p);
        SReg lx = p.sreg();
        SReg olx = p.sreg();
        p.li(lx, predPitch);
        p.li(olx, outPitch);
        addblockVmmx(p, v, pr, re, o, lx, olx);
    } else {
        Mmx m(p);
        addblockMmx(p, m, pr, re, o, predPitch, outPitch);
    }
    p.release(f);
}

} // namespace

void
Mpeg2Layout::alloc(MemImage &mem)
{
    cur0 = interior(mem.alloc(kFrameBytes + 64));
    cur1 = interior(mem.alloc(kFrameBytes + 64));
    recA = interior(mem.alloc(kFrameBytes + 64));
    recB = interior(mem.alloc(kFrameBytes + 64));
    dRec0 = interior(mem.alloc(kFrameBytes + 64));
    dRec1 = interior(mem.alloc(kFrameBytes + 64));
    pred = mem.alloc(16 * 16 + 64);
    predArr = mem.alloc(kMbW * kMbH * 256 + 64);
    blockArr = mem.alloc((kW / 8) * (kH / 8) * 128 + 64);
    block = mem.alloc(256);
    block2 = mem.alloc(256);
    const128 = mem.alloc(64);
    for (unsigned i = 0; i < 16; ++i)
        mem.write8(const128 + i, 128);
    stream = mem.alloc(64 * 1024);
    streamLen = mem.alloc(8);
}

void
Mpeg2Enc::prepare(MemImage &mem, Rng &rng)
{
    lay_.alloc(mem);
    // Frame 0: smooth pattern; frame 1: the same pattern shifted by a
    // couple of pixels plus noise, so motion search has real work.
    for (unsigned y = 0; y < Mpeg2Layout::kH; ++y) {
        for (unsigned x = 0; x < Mpeg2Layout::kW; ++x) {
            u8 v = u8(3 * x + 2 * y + rng.below(6));
            mem.write8(lay_.cur0 + y * Mpeg2Layout::kPitch + x, v);
        }
    }
    for (unsigned y = 0; y < Mpeg2Layout::kH; ++y) {
        for (unsigned x = 0; x < Mpeg2Layout::kW; ++x) {
            unsigned sx = std::min(x + 2, Mpeg2Layout::kW - 1);
            unsigned sy = std::min(y + 1, Mpeg2Layout::kH - 1);
            u8 v = mem.read8(lay_.cur0 + sy * Mpeg2Layout::kPitch + sx);
            mem.write8(lay_.cur1 + y * Mpeg2Layout::kPitch + x,
                       u8(v + rng.below(4)));
        }
    }
}

void
Mpeg2Enc::emit(Program &p)
{
    const Mpeg2Layout &L = lay_;
    constexpr unsigned P = Mpeg2Layout::kPitch;
    constexpr unsigned nBlocks =
        (Mpeg2Layout::kW / 8) * (Mpeg2Layout::kH / 8);
    auto f = p.mark();
    DctTables tabs = prepareDctTables(p);
    DslBitWriter bw(p, L.stream);

    auto blockAddr = [&](unsigned idx) { return L.blockArr + idx * 128; };

    // ---- I frame (batched: extract, fdct, code, idct, deposit) ----
    {
        unsigned idx = 0;
        for (unsigned by = 0; by < Mpeg2Layout::kH / 8; ++by)
            for (unsigned bx = 0; bx < Mpeg2Layout::kW / 8; ++bx)
                extractBlock(p, L.cur0, P, bx, by, blockAddr(idx++));
    }
    emitDctBatch(p, tabs, L.blockArr, nBlocks, true);
    for (unsigned idx = 0; idx < nBlocks; ++idx) {
        codeBlock(p, bw, blockAddr(idx));
        qdqBlock(p, blockAddr(idx));
    }
    emitDctBatch(p, tabs, L.blockArr, nBlocks, false);
    {
        unsigned idx = 0;
        for (unsigned by = 0; by < Mpeg2Layout::kH / 8; ++by)
            for (unsigned bx = 0; bx < Mpeg2Layout::kW / 8; ++bx)
                depositBlock(p, blockAddr(idx++), L.recA, P, bx, by);
    }

    // ---- P frame ----
    SReg a = p.sreg();
    SReg b = p.sreg();
    SReg sad = p.sreg();
    SReg best = p.sreg();
    SReg lxReg = p.sreg();
    p.li(lxReg, P);

    struct MbInfo
    {
        int dx, dy;
        Addr predBuf;
    };
    std::vector<MbInfo> mbs;

    // Pass 1: motion estimation, MV coding, prediction, residuals.
    for (unsigned mby = 0; mby < Mpeg2Layout::kMbH; ++mby) {
        for (unsigned mbx = 0; mbx < Mpeg2Layout::kMbW; ++mbx) {
            unsigned mb = mby * Mpeg2Layout::kMbW + mbx;
            Addr curMb = L.cur1 + mby * 16 * P + mbx * 16;
            Addr refMb = L.recA + mby * 16 * P + mbx * 16;
            Addr predBuf = L.predArr + mb * 256;

            // Full search (motion1).
            int bestDx = 0, bestDy = 0;
            p.li(best, ~u64(0) >> 1);
            {
                VectorRegion vr(p);
                for (int dy = -kSearch; dy <= kSearch; ++dy) {
                    for (int dx = -kSearch; dx <= kSearch; ++dx) {
                        p.li(a, curMb);
                        p.li(b, refMb + Addr(s64(dy) * s64(P) + dx));
                        emitSad(p, a, b, lxReg, P, sad, false);
                        if (p.brLt(sad, best)) {
                            p.mov(best, sad);
                            bestDx = dx;
                            bestDy = dy;
                        }
                    }
                }
            }

            // Refinement (motion2) around the winner.
            int refDx = bestDx, refDy = bestDy;
            p.li(best, ~u64(0) >> 1);
            {
                VectorRegion vr(p);
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        int cx = std::clamp(bestDx + dx, -2 * kSearch,
                                            2 * kSearch);
                        int cy = std::clamp(bestDy + dy, -2 * kSearch,
                                            2 * kSearch);
                        p.li(a, curMb);
                        p.li(b, refMb + Addr(s64(cy) * s64(P) + cx));
                        emitSad(p, a, b, lxReg, P, sad, true);
                        if (p.brLt(sad, best)) {
                            p.mov(best, sad);
                            refDx = cx;
                            refDy = cy;
                        }
                    }
                }
            }

            bw.putImm(u64(refDx + 8), 5);
            bw.putImm(u64(refDy + 8), 5);

            bool halfpel = ((refDx + refDy) & 1) != 0;
            Addr refBlock = refMb + Addr(s64(refDy) * s64(P) + refDx);
            emitPrediction(p, refBlock, P, halfpel, predBuf);
            mbs.push_back({refDx, refDy, predBuf});

            for (unsigned q = 0; q < 4; ++q) {
                unsigned qx = (q & 1) * 8;
                unsigned qy = (q >> 1) * 8;
                residualBlock(p, curMb + qy * P + qx, P,
                              predBuf + qy * 16 + qx, 16,
                              blockAddr(mb * 4 + q));
            }
        }
    }

    // Pass 2: batched transform; pass 3: entropy; pass 4: inverse;
    // pass 5: reconstruction.
    unsigned nP = unsigned(mbs.size()) * 4;
    emitDctBatch(p, tabs, L.blockArr, nP, true);
    for (unsigned idx = 0; idx < nP; ++idx) {
        codeBlock(p, bw, blockAddr(idx));
        qdqBlock(p, blockAddr(idx));
    }
    emitDctBatch(p, tabs, L.blockArr, nP, false);
    for (unsigned mb = 0; mb < mbs.size(); ++mb) {
        unsigned mbx = mb % Mpeg2Layout::kMbW;
        unsigned mby = mb / Mpeg2Layout::kMbW;
        for (unsigned q = 0; q < 4; ++q) {
            unsigned qx = (q & 1) * 8;
            unsigned qy = (q >> 1) * 8;
            Addr outQ = L.recB + (mby * 16 + qy) * P + mbx * 16 + qx;
            reconBlock(p, mbs[mb].predBuf + qy * 16 + qx, 16,
                       blockAddr(mb * 4 + q), outQ, P);
        }
    }
    bw.flush();

    SReg len = p.sreg();
    SReg la = p.sreg();
    p.li(len, bw.bytesWritten());
    p.li(la, L.streamLen);
    p.store(len, la, 0, 8);
    p.release(f);
}

u64
Mpeg2Enc::checksum(const MemImage &mem) const
{
    u64 n = mem.read64(lay_.streamLen);
    u64 h = 1469598103934665603ull;
    h = hashRange(mem, lay_.stream, size_t(n), h);
    for (unsigned y = 0; y < Mpeg2Layout::kH; ++y)
        h = hashRange(mem, lay_.recB + y * Mpeg2Layout::kPitch,
                      Mpeg2Layout::kW, h);
    return h ^ n;
}

void
Mpeg2Dec::prepare(MemImage &mem, Rng &rng)
{
    enc_.prepare(mem, rng);
    Program tmp(mem, SimdKind::MMX64);
    enc_.emit(tmp);
}

void
Mpeg2Dec::emit(Program &p)
{
    const Mpeg2Layout &L = enc_.layout();
    constexpr unsigned P = Mpeg2Layout::kPitch;
    auto f = p.mark();
    DctTables tabs = prepareDctTables(p);
    DslBitReader br(p, L.stream);

    auto blockAddr = [&](unsigned idx) { return L.blockArr + idx * 128; };
    constexpr unsigned nBlocks =
        (Mpeg2Layout::kW / 8) * (Mpeg2Layout::kH / 8);

    // ---- I frame: parse all blocks, batched idct (vector), then
    // reconstruct via addblock with a constant-128 prediction row
    // (stride 0).
    for (unsigned idx = 0; idx < nBlocks; ++idx)
        parseBlock(p, br, blockAddr(idx));
    emitDctBatch(p, tabs, L.blockArr, nBlocks, false);
    {
        unsigned idx = 0;
        for (unsigned by = 0; by < Mpeg2Layout::kH / 8; ++by) {
            for (unsigned bx = 0; bx < Mpeg2Layout::kW / 8; ++bx) {
                Addr out = L.dRec0 + by * 8 * P + bx * 8;
                emitAddblock(p, L.const128, 0, blockAddr(idx++), out, P);
            }
        }
    }

    // ---- P frame: parse MVs + predict, parse blocks, batched idct,
    // reconstruct.
    SReg mv = p.sreg();
    constexpr unsigned nMbs = Mpeg2Layout::kMbW * Mpeg2Layout::kMbH;
    for (unsigned mb = 0; mb < nMbs; ++mb) {
        unsigned mbx = mb % Mpeg2Layout::kMbW;
        unsigned mby = mb / Mpeg2Layout::kMbW;
        u64 dxRaw = br.get(mv, 5);
        u64 dyRaw = br.get(mv, 5);
        int dx = int(dxRaw) - 8;
        int dy = int(dyRaw) - 8;
        Addr refMb = L.dRec0 + mby * 16 * P + mbx * 16;
        Addr refBlock = refMb + Addr(s64(dy) * s64(P) + dx);
        bool halfpel = ((dx + dy) & 1) != 0;
        emitPrediction(p, refBlock, P, halfpel, L.predArr + mb * 256);
    }
    for (unsigned idx = 0; idx < nMbs * 4; ++idx)
        parseBlock(p, br, blockAddr(idx));
    emitDctBatch(p, tabs, L.blockArr, nMbs * 4, false);
    for (unsigned mb = 0; mb < nMbs; ++mb) {
        unsigned mbx = mb % Mpeg2Layout::kMbW;
        unsigned mby = mb / Mpeg2Layout::kMbW;
        for (unsigned q = 0; q < 4; ++q) {
            unsigned qx = (q & 1) * 8;
            unsigned qy = (q >> 1) * 8;
            Addr predQ = L.predArr + mb * 256 + qy * 16 + qx;
            Addr outQ = L.dRec1 + (mby * 16 + qy) * P + mbx * 16 + qx;
            emitAddblock(p, predQ, 16, blockAddr(mb * 4 + q), outQ, P);
        }
    }
    p.release(f);
}

u64
Mpeg2Dec::checksum(const MemImage &mem) const
{
    const Mpeg2Layout &L = enc_.layout();
    u64 h = 1469598103934665603ull;
    for (unsigned y = 0; y < Mpeg2Layout::kH; ++y) {
        h = hashRange(mem, L.dRec0 + y * Mpeg2Layout::kPitch,
                      Mpeg2Layout::kW, h);
        h = hashRange(mem, L.dRec1 + y * Mpeg2Layout::kPitch,
                      Mpeg2Layout::kW, h);
    }
    return h;
}

} // namespace vmmx
