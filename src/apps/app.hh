/**
 * @file
 * App: one of the six MediaBench-style mini applications.  Unlike the
 * isolated kernels, an app mixes vectorised kernel regions with the
 * scalar protocol/entropy/bookkeeping code that dominates once the DLP
 * has been mined -- the effect behind Figures 5 and 6.
 *
 * Correctness story: all flavours compute bit-identical outputs (the
 * packed emulation is exact), so tests assert cross-flavour checksum
 * equality plus semantic round-trip properties (decoder inverts encoder
 * within the codec's quantisation error).
 */

#ifndef VMMX_APPS_APP_HH
#define VMMX_APPS_APP_HH

#include <memory>
#include <string>
#include <vector>

#include "common/memimage.hh"
#include "common/rng.hh"
#include "trace/program.hh"

namespace vmmx
{

class App
{
  public:
    virtual ~App() = default;

    virtual std::string name() const = 0;
    virtual std::string description() const = 0;

    /** Allocate and fill inputs (and, for decoders, synthesise the
     *  input bitstream by running the encoder functionally). */
    virtual void prepare(MemImage &mem, Rng &rng) = 0;

    /** Emit the full application for p.kind(). */
    virtual void emit(Program &p) = 0;

    /** FNV-1a hash over the output buffers (flavour-invariant). */
    virtual u64 checksum(const MemImage &mem) const = 0;

  protected:
    static u64 hashRange(const MemImage &mem, Addr a, size_t n, u64 h);
};

std::vector<std::string> appNames();
std::unique_ptr<App> makeApp(const std::string &name);
std::vector<std::unique_ptr<App>> makeAllApps();

/** RAII marker for a vectorised kernel region inside an app. */
class VectorRegion
{
  public:
    explicit VectorRegion(Program &p) : p_(p) { p_.beginVectorRegion(); }
    ~VectorRegion() { p_.endVectorRegion(); }

  private:
    Program &p_;
};

} // namespace vmmx

#endif // VMMX_APPS_APP_HH
