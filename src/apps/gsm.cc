#include "apps/gsm.hh"

#include <cmath>

#include "apps/bitstream.hh"
#include "kernels/kops_gsm.hh"
#include "kernels/kops_util.hh"

namespace vmmx
{

namespace
{

using namespace kops;

/** Fixed lattice reflection coefficients (Q12). */
constexpr s64 kRefl[8] = {1638, -1228, 819, -409, 204, -102, 51, -25};

/**
 * Scalar lattice filter over one frame: analysis (forward) removes the
 * short-term correlation, synthesis re-inserts it.  This is the big
 * scalar block that bounds the GSM apps' SIMD benefit.
 */
void
emitLattice(Program &p, Addr in, Addr out, bool analysis)
{
    auto f = p.mark();
    SReg v = p.sreg();
    SReg t = p.sreg();
    SReg addr = p.sreg();
    SReg stage[8];
    for (auto &s : stage) {
        s = p.sreg();
        p.li(s, 0);
    }

    p.forLoop(GsmLayout::kFrame, [&](SReg k) {
        p.slli(addr, k, 1);
        p.addi(addr, addr, s64(in));
        p.load(v, addr, 0, 2, true);
        if (analysis) {
            // FIR stages: y = x - (g * x[k-1]) >> 12 per stage.
            for (unsigned j = 0; j < 8; ++j) {
                p.muli(t, stage[j], kRefl[j]);
                p.srai(t, t, 12);
                p.mov(stage[j], v);
                p.sub(v, v, t);
            }
        } else {
            // Inverse: IIR stages in reverse order, feeding back each
            // stage's *output* (approximate inverse under Q12
            // truncation).
            for (int j = 7; j >= 0; --j) {
                p.muli(t, stage[j], kRefl[j]);
                p.srai(t, t, 12);
                p.add(v, v, t);
                p.mov(stage[j], v);
            }
        }
        p.slli(addr, k, 1);
        p.addi(addr, addr, s64(out));
        p.store(v, addr, 0, 2);
    });
    p.release(f);
}

/** Scalar autocorrelation over one frame (9 lags) -- encoder-side LPC
 *  work whose result feeds the (fixed) quantised reflection set. */
void
emitAutocorr(Program &p, Addr in, Addr scratch)
{
    auto f = p.mark();
    SReg acc = p.sreg();
    SReg a = p.sreg();
    SReg b = p.sreg();
    SReg t = p.sreg();
    SReg addr = p.sreg();
    for (unsigned lag = 0; lag < 9; ++lag) {
        p.li(acc, 0);
        p.forLoop(GsmLayout::kFrame - lag, [&](SReg k) {
            p.slli(t, k, 1);
            p.addi(addr, t, s64(in));
            p.load(a, addr, 0, 2, true);
            p.load(b, addr, s64(2 * lag), 2, true);
            p.mul(a, a, b);
            p.add(acc, acc, a);
        });
        p.li(t, scratch + 8 * lag);
        p.store(acc, t, 0, 8);
    }
    p.release(f);
}

} // namespace

void
GsmLayout::alloc(MemImage &mem)
{
    input = mem.alloc(2 * kTotal + 64);
    spre = mem.alloc(2 * kFrame + 64);
    resid = mem.alloc(2 * kFrame + 64);
    hist = mem.alloc(2 * 240 + 64);
    dHist = mem.alloc(2 * 240 + 64);
    erp = mem.alloc(2 * kFrame + 64);
    nc = mem.alloc(16);
    bc = mem.alloc(16);
    output = mem.alloc(2 * kTotal + 64);
    stream = mem.alloc(16 * 1024);
    streamLen = mem.alloc(8);
}

void
GsmEnc::prepare(MemImage &mem, Rng &rng)
{
    lay_.alloc(mem);
    // Synthetic voiced-ish speech: two sinusoids plus noise.
    for (unsigned k = 0; k < GsmLayout::kTotal; ++k) {
        double v = 2500.0 * std::sin(2.0 * M_PI * k / 57.0) +
                   900.0 * std::sin(2.0 * M_PI * k / 13.0);
        v += double(rng.range(-80, 80));
        mem.write16(lay_.input + 2 * k, u16(s16(std::lround(v))));
    }
}

void
GsmEnc::emit(Program &p)
{
    const GsmLayout &L = lay_;
    auto f = p.mark();
    DslBitWriter bw(p, L.stream);
    Addr autocorrScratch = p.mem().alloc(128, 8);

    SReg v = p.sreg();
    SReg t = p.sreg();
    SReg addr = p.sreg();
    SReg prev = p.sreg();

    for (unsigned fr = 0; fr < GsmLayout::kFrames; ++fr) {
        Addr frameIn = L.input + 2 * fr * GsmLayout::kFrame;

        // Preemphasis: s[k] = x[k] - (28180 x[k-1]) >> 15  (scalar).
        p.li(prev, 0);
        p.forLoop(GsmLayout::kFrame, [&](SReg k) {
            p.slli(addr, k, 1);
            p.addi(addr, addr, s64(frameIn));
            p.load(v, addr, 0, 2, true);
            p.muli(t, prev, 28180);
            p.srai(t, t, 15);
            p.mov(prev, v);
            p.sub(v, v, t);
            p.slli(addr, k, 1);
            p.addi(addr, addr, s64(L.spre));
            p.store(v, addr, 0, 2);
        });

        // LPC work: autocorrelation + lattice analysis (scalar).
        emitAutocorr(p, L.spre, autocorrScratch);
        emitLattice(p, L.spre, L.resid, true);

        // Per-subframe LTP (vectorised lag search) + RPE coding.
        for (unsigned sub = 0; sub < 3; ++sub) {
            Addr d = L.resid + 2 * sub * 40;
            Addr histWin = L.hist + 2 * sub * 40;
            {
                VectorRegion vr(p);
                auto f2 = p.mark();
                SReg dreg = p.sreg();
                SReg hreg = p.sreg();
                SReg ol = p.sreg();
                SReg ob = p.sreg();
                p.li(dreg, d);
                p.li(hreg, histWin);
                p.li(ol, L.nc + 2 * sub);
                p.li(ob, L.bc + 2 * sub);
                if (p.matrix()) {
                    Vmmx vm(p);
                    ltpparVmmx(p, vm, dreg, hreg, ol, ob);
                } else {
                    Mmx m(p);
                    ltpparMmx(p, m, dreg, hreg, ol, ob);
                }
                p.release(f2);
            }

            // Scalar: code lag/gain, compute LTP residual, quantise,
            // reconstruct the history (must mirror ltpfilt exactly).
            auto f3 = p.mark();
            SReg ncv = p.sreg();
            SReg qlb = p.sreg();
            SReg hbase = p.sreg();
            SReg pr = p.sreg();
            SReg e = p.sreg();
            p.li(addr, L.nc + 2 * sub);
            p.load(ncv, addr, 0, 2);
            bw.put(ncv, 7);
            p.li(addr, L.bc + 2 * sub);
            p.load(qlb, addr, 0, 2);
            bw.put(qlb, 2);
            // qlb value lookup.
            u16 qtab[4];
            for (unsigned i = 0; i < 4; ++i)
                qtab[i] = u16(gsmQLB[i]);
            Addr qaddr = stash(p, qtab, sizeof(qtab));
            p.slli(qlb, qlb, 1);
            p.addi(qlb, qlb, s64(qaddr));
            p.load(qlb, qlb, 0, 2);
            // hbase = hist + 2*(120 + sub*40) - 2*nc
            p.li(hbase, L.hist + 2 * (120 + sub * 40));
            p.slli(ncv, ncv, 1);
            p.sub(hbase, hbase, ncv);

            SReg dptr = p.sreg();
            SReg wptr = p.sreg();
            p.li(dptr, d);
            p.li(wptr, L.hist + 2 * (120 + sub * 40));
            p.forLoop(40, [&](SReg k) {
                p.slli(t, k, 1);
                // pred = (qlb * hist[k - nc] + 16384) >> 15
                p.add(addr, hbase, t);
                p.load(pr, addr, 0, 2, true);
                p.mul(pr, pr, qlb);
                p.addi(pr, pr, 16384);
                p.srai(pr, pr, 15);
                // e = d - pred; quantise to 3 bits.
                p.add(addr, dptr, t);
                p.load(e, addr, 0, 2, true);
                p.sub(e, e, pr);
                p.addi(e, e, 32);
                p.srai(e, e, 6);
                SReg lim = v;
                p.li(lim, u64(s64(-4)));
                if (p.brLt(e, lim))
                    p.mov(e, lim);
                p.li(lim, 3);
                if (p.brLt(lim, e))
                    p.mov(e, lim);
                p.addi(e, e, 4);
                bw.put(e, 3);
                // Reconstruct exactly as the decoder will.
                p.addi(e, e, -4);
                p.slli(e, e, 6);
                p.add(e, e, pr);
                p.li(lim, 32767);
                if (p.brLt(lim, e))
                    p.mov(e, lim);
                p.li(lim, u64(s64(-32768)));
                if (p.brLt(e, lim))
                    p.mov(e, lim);
                p.add(addr, wptr, t);
                p.store(e, addr, 0, 2);
            });
            p.release(f3);
        }

        // Slide the LTP history window by one frame (scalar copy).
        p.forLoop(120, [&](SReg k) {
            p.slli(t, k, 1);
            p.li(addr, L.hist + 240);
            p.add(addr, addr, t);
            p.load(v, addr, 0, 2);
            p.li(addr, L.hist);
            p.add(addr, addr, t);
            p.store(v, addr, 0, 2);
        });
    }
    bw.flush();

    SReg len = p.sreg();
    p.li(len, bw.bytesWritten());
    p.li(addr, L.streamLen);
    p.store(len, addr, 0, 8);
    p.release(f);
}

u64
GsmEnc::checksum(const MemImage &mem) const
{
    u64 n = mem.read64(lay_.streamLen);
    u64 h = 1469598103934665603ull;
    return hashRange(mem, lay_.stream, size_t(n), h) ^ n;
}

void
GsmDec::prepare(MemImage &mem, Rng &rng)
{
    enc_.prepare(mem, rng);
    Program tmp(mem, SimdKind::MMX64);
    enc_.emit(tmp);
}

void
GsmDec::emit(Program &p)
{
    const GsmLayout &L = enc_.layout();
    auto f = p.mark();
    DslBitReader br(p, L.stream);

    SReg v = p.sreg();
    SReg t = p.sreg();
    SReg addr = p.sreg();
    SReg prev = p.sreg();

    for (unsigned fr = 0; fr < GsmLayout::kFrames; ++fr) {
        // Parse: per subframe nc, bc, 40 excitation codes (scalar).
        for (unsigned sub = 0; sub < 3; ++sub) {
            br.get(v, 7);
            p.li(addr, L.nc + 2 * sub);
            p.store(v, addr, 0, 2);
            br.get(v, 2);
            p.li(addr, L.bc + 2 * sub);
            p.store(v, addr, 0, 2);
            for (unsigned k = 0; k < 40; ++k) {
                br.get(v, 3);
                p.addi(v, v, -4);
                p.slli(v, v, 6);
                p.li(addr, L.erp + 2 * (sub * 40 + k));
                p.store(v, addr, 0, 2);
            }
        }

        // Long-term synthesis over the three subframes (vectorised).
        {
            VectorRegion vr(p);
            auto f2 = p.mark();
            SReg e = p.sreg();
            SReg b = p.sreg();
            SReg n = p.sreg();
            SReg c = p.sreg();
            p.li(e, L.erp);
            p.li(b, L.dHist);
            p.li(n, L.nc);
            p.li(c, L.bc);
            if (p.matrix()) {
                Vmmx vm(p);
                kops::ltpfiltVmmx(p, vm, e, b, n, c);
            } else {
                Mmx m(p);
                kops::ltpfiltMmx(p, m, e, b, n, c);
            }
            p.release(f2);
        }

        // Short-term synthesis + deemphasis (scalar).
        Addr frameOut = L.output + 2 * fr * GsmLayout::kFrame;
        emitLattice(p, L.dHist + 240, L.spre, false);
        p.li(prev, 0);
        p.forLoop(GsmLayout::kFrame, [&](SReg k) {
            p.slli(addr, k, 1);
            p.addi(addr, addr, s64(L.spre));
            p.load(v, addr, 0, 2, true);
            p.muli(t, prev, 28180);
            p.srai(t, t, 15);
            p.add(v, v, t);
            p.mov(prev, v);
            p.slli(addr, k, 1);
            p.addi(addr, addr, s64(frameOut));
            p.store(v, addr, 0, 2);
        });

        // Slide history.
        p.forLoop(120, [&](SReg k) {
            p.slli(t, k, 1);
            p.li(addr, L.dHist + 240);
            p.add(addr, addr, t);
            p.load(v, addr, 0, 2);
            p.li(addr, L.dHist);
            p.add(addr, addr, t);
            p.store(v, addr, 0, 2);
        });
    }
    p.release(f);
}

u64
GsmDec::checksum(const MemImage &mem) const
{
    const GsmLayout &L = enc_.layout();
    u64 h = 1469598103934665603ull;
    return hashRange(mem, L.output, 2 * GsmLayout::kTotal, h);
}

} // namespace vmmx
