/**
 * @file
 * Driver side of the distributed sweep subsystem.
 *
 * runSweep() shards a grid of SweepPoints across N worker processes.
 * Workers are spawned from this process (fork, or fork+exec of
 * DistOptions::execPath for binaries that install the self-exec hook) and
 * speak the length-prefixed frame protocol of dist/protocol.hh over a
 * socketpair.  The schedulable unit is a *trace group* -- the points
 * that replay one trace, which a worker executes as a single batched
 * pass (runTraceBatch) so the trace is decoded and streamed once per
 * group even across process boundaries; DistOptions::batch = false
 * falls back to one point per unit.  Each worker starts with a
 * contiguous shard of the units; a worker that drains its own shard
 * steals units from the tail of the largest remaining shard, so
 * stragglers (one worker stuck on mpeg2enc) cannot serialize the sweep.
 *
 * The driver is a *supervisor*: a worker that dies (EOF, signal,
 * nonzero exit), sends a malformed or Error frame, or blows the
 * per-unit deadline (DistOptions::unitTimeoutMs) does not kill the run.
 * Its in-flight units are reclaimed -- only the still-missing points of
 * each -- and its slot is respawned with bounded exponential backoff,
 * up to DistOptions::maxRespawns times.  The attempt count of the unit
 * that was *executing* at death is charged; a unit that has killed
 * maxUnitAttempts workers is quarantined (its remaining points reported
 * failed, never retried).  When the whole fleet is gone and respawn
 * budgets are spent, the driver degrades gracefully: the remaining
 * units run in-driver through the serial unit runner.  Every recovery
 * path is reported in DistStats, and all of them are deterministically
 * exercisable via DistOptions::faultSpec / $VMMX_FAULT_SPEC (grammar in
 * common/env.hh).
 *
 * Completed results are journaled to disk as they arrive (optional), so
 * a crashed or interrupted sweep resumes from where it stopped: rerun
 * with the same journal path and only the missing grid points execute.
 * The journal is validated against a signature of the full grid and is
 * kept after success -- delete it to force recomputation.
 *
 * Aggregation is by submission index into a pre-sized result vector, so
 * the output order -- and, because per-job state is private and traces
 * are immutable and deterministic in their TraceKey -- every byte of the
 * results is identical to Sweep::runSerial() on the same grid.  That
 * same property is what makes recovery safe: re-running the missing
 * subset of a trace group yields per-point results identical to the
 * full pass, so recovered and degraded runs stay bit-identical too.
 */

#ifndef VMMX_DIST_DRIVER_HH
#define VMMX_DIST_DRIVER_HH

#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/sweep.hh"
#include "trace/trace_repo.hh"

namespace vmmx::dist
{

/** One worker's end-of-session trace-repository tier counters. */
struct WorkerTierStats
{
    u64 generations = 0;   ///< traces built from scratch
    u64 hits = 0;          ///< raw-tier RAM hits
    u64 diskLoads = 0;     ///< tier-1 fills from the disk tier
    u64 decodes = 0;       ///< decoded-tier fills
    u64 decodedHits = 0;   ///< decoded-tier RAM hits
    u64 bytesResident = 0; ///< raw bytes resident at exit
    u64 decodedBytes = 0;  ///< decoded bytes resident at exit
};

/** How one worker spawn ended (one entry per spawn, including clean
 *  ones, in the order the driver learned of them). */
struct WorkerExit
{
    enum class Cause : u8
    {
        Clean,     ///< exited 0 after the Done handshake
        Exit,      ///< exited nonzero (crash via _exit, exec failure...)
        Signal,    ///< killed by a signal (SIGKILL, SIGSEGV...)
        Malformed, ///< sent an undecodable or protocol-violating frame
        Hung,      ///< blew the per-unit deadline; driver SIGKILLed it
        Lost,      ///< connection lost mid-session (EOF at the driver)
        Error,     ///< sent an explicit Error frame
    };

    unsigned slot = 0;  ///< worker slot (index into DistStats::perWorker)
    u32 spawnId = 0;    ///< spawn ordinal (the faultSpec "workerN" id)
    Cause cause = Cause::Clean;
    std::string detail; ///< human-readable status ("exit 137", ...)
};

/** Spec spelling of an exit cause ("clean", "signal", ...). */
const char *name(WorkerExit::Cause c);

/** Aggregate execution statistics of one distributed run. */
struct DistStats
{
    // Summed over all workers' private trace repositories.
    u64 generations = 0; ///< traces actually generated this run
    u64 hits = 0;        ///< raw-tier lookups served from worker RAM
    u64 diskLoads = 0;   ///< lookups served from the on-disk TraceStore
    u64 storeSaves = 0;  ///< traces newly persisted to the store
    u64 bytesResident = 0; ///< raw trace bytes held across workers at exit
    u64 decodes = 0;     ///< decoded streams built across workers
    u64 decodedHits = 0; ///< decoded-tier lookups served from worker RAM
    u64 decodedBytes = 0; ///< decoded bytes held across workers at exit
    /** The same counters per worker slot, accumulated across that
     *  slot's spawns (the per-worker tier report of vmmx_sweepd).  A
     *  spawn that dies before its Done handshake never reports; its
     *  tier counters are lost with it. */
    std::vector<WorkerTierStats> perWorker;
    // Driver-side scheduling counters.  Jobs count grid points (the
    // journal/aggregation unit); groups count the batched trace groups
    // those points were dispatched in.
    u64 jobsRun = 0;     ///< grid points executed by workers
    u64 jobsResumed = 0; ///< grid points restored from the journal
    u64 groupsRun = 0;   ///< work units dispatched (trace groups)
    u64 steals = 0;      ///< units migrated off another worker's shard
    unsigned workers = 0;
    // Supervision and fault recovery (zero on an undisturbed run).
    u64 respawns = 0;        ///< worker processes respawned after a death
    u64 reassignedUnits = 0; ///< in-flight units reclaimed from dead workers
    u64 retries = 0;         ///< charged units re-dispatched for another try
    u64 quarantinedUnits = 0; ///< units abandoned after maxUnitAttempts
    /** Grid indices whose results were abandoned by quarantine; the
     *  corresponding SweepResults are the unexecuted defaults. */
    std::vector<u32> quarantinedPoints;
    bool degraded = false; ///< fleet collapsed; remainder ran in-driver
    u64 degradedJobs = 0;  ///< grid points executed in-driver after collapse
    u64 abnormalExits = 0; ///< spawns that exited nonzero or by signal
    u64 journalSkipped = 0; ///< corrupt/truncated journal entries skipped
    /** Every worker spawn's fate, including post-run abnormal exits of
     *  workers whose jobs all completed. */
    std::vector<WorkerExit> exitCauses;

    std::string summary() const;
};

/** Publish a run's aggregate counters as "dist.*" gauges (and the
 *  worker repositories' tier aggregate as "repo.*" gauges) in the
 *  process-wide telemetry registry, for --metrics-json exports. */
void publishMetrics(const DistStats &st);

// Environment defaults for the supervision knobs (common/env.hh
// semantics: unset = built-in default, junk warns and falls back).
unsigned maxRespawnsFromEnv();     ///< $VMMX_MAX_RESPAWNS, default 3
unsigned maxUnitAttemptsFromEnv(); ///< $VMMX_MAX_UNIT_ATTEMPTS, default 3
u64 unitTimeoutMsFromEnv();        ///< $VMMX_UNIT_TIMEOUT_MS, default 0
bool journalSyncFromEnv();         ///< $VMMX_JOURNAL_SYNC, default off
std::string faultSpecFromEnv();    ///< $VMMX_FAULT_SPEC, default ""

struct DistOptions
{
    /** Worker process count (>= 1). */
    unsigned processes = 2;
    /** Trace store directory; "" uses TraceStore::defaultDir(). */
    std::string storeDir;
    /** Per-worker raw-tier (tier 1) RAM budget; 0 = unlimited. */
    u64 cacheBudget = TraceRepository::rawBudgetFromEnv();
    /** Per-worker decoded-tier (tier 2) RAM budget; 0 = unlimited. */
    u64 decodedBudget = TraceRepository::decodedBudgetFromEnv();
    /** Crash-resume journal file; "" disables journaling. */
    std::string journalPath;
    /** Shard by trace group and batch each group on the worker (one
     *  trace pass per group); off = one point per unit, the
     *  pre-batching behaviour.  Results are bit-identical either way,
     *  and the journal format does not change. */
    bool batch = sweepBatchFromEnv();
    /** Workers serve jobs from their repository's decoded tier; off =
     *  decode on the fly per dispatch.  Bit-identical either way. */
    bool decoded = sweepDecodedFromEnv();
    /** Suppress worker warn()/inform() output. */
    bool quiet = vmmx::quiet();
    /** Binary to self-exec as the worker ("" forks without exec).  The
     *  target's main() must call maybeWorkerMain() first. */
    std::string execPath;
    /** Extra argv for execPath, before the appended "--worker --fd N". */
    std::vector<std::string> execArgs;
    /** Times one worker slot is respawned after a death before the
     *  slot is abandoned; 0 = never respawn. */
    unsigned maxRespawns = maxRespawnsFromEnv();
    /** Wall-clock deadline per dispatched unit, in milliseconds; a
     *  worker that exceeds it is declared hung, SIGKILLed, and treated
     *  as crashed.  0 disables the deadline. */
    u64 unitTimeoutMs = unitTimeoutMsFromEnv();
    /** Workers a single unit may kill before it is quarantined rather
     *  than retried (>= 1). */
    unsigned maxUnitAttempts = maxUnitAttemptsFromEnv();
    /** Deterministic fault plan forwarded to every worker spawn (""
     *  = none); grammar in common/env.hh (FaultAction). */
    std::string faultSpec = faultSpecFromEnv();
    /** fdatasync() the journal after every appended entry, so results
     *  survive a host crash, not just a driver crash.  Default off:
     *  the sync costs more than most grid points. */
    bool journalSync = journalSyncFromEnv();
};

/** Stable signature of a grid (journal validation). */
u64 gridSignature(const std::vector<SweepPoint> &points);

/**
 * Run every point of @p points across supervised worker processes and
 * return the results in submission order, bit-identical to the serial
 * sweep.  Worker failures are recovered (respawn, reassign, degrade to
 * in-driver execution); only driver-side invariant violations are
 * fatal.  Quarantined points -- see DistStats::quarantinedPoints --
 * come back as default-constructed results.  An interrupted journaled
 * run resumes on the next invocation.
 */
std::vector<SweepResult> runSweep(const std::vector<SweepPoint> &points,
                                  const DistOptions &opts,
                                  DistStats *stats = nullptr);

} // namespace vmmx::dist

#endif // VMMX_DIST_DRIVER_HH
