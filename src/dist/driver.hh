/**
 * @file
 * Driver side of the distributed sweep subsystem.
 *
 * runSweep() shards a grid of SweepPoints across N worker processes.
 * Workers are spawned from this process (fork, or fork+exec of
 * DistOptions::execPath for binaries that install the self-exec hook) and
 * speak the length-prefixed frame protocol of dist/protocol.hh over a
 * socketpair.  The schedulable unit is a *trace group* -- the points
 * that replay one trace, which a worker executes as a single batched
 * pass (runTraceBatch) so the trace is decoded and streamed once per
 * group even across process boundaries; DistOptions::batch = false
 * falls back to one point per unit.  Each worker starts with a
 * contiguous shard of the units; a worker that drains its own shard
 * steals units from the tail of the largest remaining shard, so
 * stragglers (one worker stuck on mpeg2enc) cannot serialize the sweep.
 *
 * Completed results are journaled to disk as they arrive (optional), so
 * a crashed or interrupted sweep resumes from where it stopped: rerun
 * with the same journal path and only the missing grid points execute.
 * The journal is validated against a signature of the full grid and is
 * kept after success -- delete it to force recomputation.
 *
 * Aggregation is by submission index into a pre-sized result vector, so
 * the output order -- and, because per-job state is private and traces
 * are immutable and deterministic in their TraceKey -- every byte of the
 * results is identical to Sweep::runSerial() on the same grid.
 */

#ifndef VMMX_DIST_DRIVER_HH
#define VMMX_DIST_DRIVER_HH

#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/sweep.hh"
#include "trace/trace_repo.hh"

namespace vmmx::dist
{

/** One worker's end-of-session trace-repository tier counters. */
struct WorkerTierStats
{
    u64 generations = 0;   ///< traces built from scratch
    u64 hits = 0;          ///< raw-tier RAM hits
    u64 diskLoads = 0;     ///< tier-1 fills from the disk tier
    u64 decodes = 0;       ///< decoded-tier fills
    u64 decodedHits = 0;   ///< decoded-tier RAM hits
    u64 bytesResident = 0; ///< raw bytes resident at exit
    u64 decodedBytes = 0;  ///< decoded bytes resident at exit
};

/** Aggregate execution statistics of one distributed run. */
struct DistStats
{
    // Summed over all workers' private trace repositories.
    u64 generations = 0; ///< traces actually generated this run
    u64 hits = 0;        ///< raw-tier lookups served from worker RAM
    u64 diskLoads = 0;   ///< lookups served from the on-disk TraceStore
    u64 storeSaves = 0;  ///< traces newly persisted to the store
    u64 bytesResident = 0; ///< raw trace bytes held across workers at exit
    u64 decodes = 0;     ///< decoded streams built across workers
    u64 decodedHits = 0; ///< decoded-tier lookups served from worker RAM
    u64 decodedBytes = 0; ///< decoded bytes held across workers at exit
    /** The same counters per worker, in worker-spawn order (the
     *  per-worker tier report of vmmx_sweepd). */
    std::vector<WorkerTierStats> perWorker;
    // Driver-side scheduling counters.  Jobs count grid points (the
    // journal/aggregation unit); groups count the batched trace groups
    // those points were dispatched in.
    u64 jobsRun = 0;     ///< grid points executed by workers
    u64 jobsResumed = 0; ///< grid points restored from the journal
    u64 groupsRun = 0;   ///< work units dispatched (trace groups)
    u64 steals = 0;      ///< units migrated off another worker's shard
    unsigned workers = 0;

    std::string summary() const;
};

struct DistOptions
{
    /** Worker process count (>= 1). */
    unsigned processes = 2;
    /** Trace store directory; "" uses TraceStore::defaultDir(). */
    std::string storeDir;
    /** Per-worker raw-tier (tier 1) RAM budget; 0 = unlimited. */
    u64 cacheBudget = TraceRepository::rawBudgetFromEnv();
    /** Per-worker decoded-tier (tier 2) RAM budget; 0 = unlimited. */
    u64 decodedBudget = TraceRepository::decodedBudgetFromEnv();
    /** Crash-resume journal file; "" disables journaling. */
    std::string journalPath;
    /** Shard by trace group and batch each group on the worker (one
     *  trace pass per group); off = one point per unit, the
     *  pre-batching behaviour.  Results are bit-identical either way,
     *  and the journal format does not change. */
    bool batch = sweepBatchFromEnv();
    /** Workers serve jobs from their repository's decoded tier; off =
     *  decode on the fly per dispatch.  Bit-identical either way. */
    bool decoded = sweepDecodedFromEnv();
    /** Suppress worker warn()/inform() output. */
    bool quiet = vmmx::quiet();
    /** Binary to self-exec as the worker ("" forks without exec).  The
     *  target's main() must call maybeWorkerMain() first. */
    std::string execPath;
    /** Extra argv for execPath, before the appended "--worker --fd N". */
    std::vector<std::string> execArgs;
};

/** Stable signature of a grid (journal validation). */
u64 gridSignature(const std::vector<SweepPoint> &points);

/**
 * Run every point of @p points across worker processes and return the
 * results in submission order, bit-identical to the serial sweep.
 * Fatal on unrecoverable errors (worker death mid-job); an interrupted
 * journaled run resumes on the next invocation.
 */
std::vector<SweepResult> runSweep(const std::vector<SweepPoint> &points,
                                  const DistOptions &opts,
                                  DistStats *stats = nullptr);

} // namespace vmmx::dist

#endif // VMMX_DIST_DRIVER_HH
