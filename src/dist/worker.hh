/**
 * @file
 * Worker side of the distributed sweep protocol: a job loop that serves
 * grid points over one file descriptor until the driver sends Done.
 *
 * Workers are either forked children of the driver (library backend) or
 * self-exec'd processes (`vmmx_sweepd --worker --fd N`); both run the
 * same serve loop.  Each worker owns a private tiered TraceRepository
 * so its per-tier statistics describe exactly the jobs it ran, with the
 * shared on-disk TraceStore as the cross-process tier 0 and the decoded
 * tier amortizing the per-record decode across all of the worker's
 * groups on the same trace.
 */

#ifndef VMMX_DIST_WORKER_HH
#define VMMX_DIST_WORKER_HH

namespace vmmx::dist
{

/**
 * Serve jobs over @p fd until a Done frame or EOF.  Blocks; returns the
 * process exit code (0 on a clean shutdown).  Closes @p fd.
 */
int workerServe(int fd);

/**
 * Self-exec entry hook: if @p argv requests worker mode
 * ("--worker --fd N"), serve on that descriptor and _exit() -- never
 * returns in that case.  Call first thing in main() of any binary used
 * as a DistOptions::execPath target.  @return false when argv is not a
 * worker invocation.
 */
bool maybeWorkerMain(int argc, char **argv);

} // namespace vmmx::dist

#endif // VMMX_DIST_WORKER_HH
