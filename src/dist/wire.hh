/**
 * @file
 * Binary serialization primitives for the distributed sweep subsystem.
 *
 * Writer appends to a growable byte buffer; Reader consumes one.  Integers
 * use LEB128 varints (unsigned) and zigzag varints (signed) so the
 * delta-encoded trace streams stay small; fixed-width little-endian
 * encodings are available where random access or checksums need stable
 * offsets.  Reader never aborts on malformed input: any underflow sets a
 * sticky failure flag and subsequent reads return zeros, so callers
 * validate with ok() once at the end (on-disk trace files may be truncated
 * by a crash; a corrupt file must read as a cache miss, not a panic).
 *
 * writeFrame()/readFrame() move length-prefixed frames over a byte-stream
 * file descriptor (the driver/worker socketpair protocol).
 */

#ifndef VMMX_DIST_WIRE_HH
#define VMMX_DIST_WIRE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace vmmx::wire
{

/** FNV-1a 64-bit hash (trace-file and journal checksums). */
u64 fnv1a(const void *data, size_t n, u64 seed = 0xcbf29ce484222325ull);

class Writer
{
  public:
    void byte(u8 v) { buf_.push_back(v); }
    void fixed32(u32 v);
    void fixed64(u64 v);
    /** LEB128 unsigned varint, 1..10 bytes. */
    void varint(u64 v);
    /** Zigzag-mapped varint for signed values. */
    void svarint(s64 v);
    void boolean(bool v) { byte(v ? 1 : 0); }
    /** Length-prefixed byte string (may contain NULs). */
    void str(const std::string &s);
    void bytes(const void *data, size_t n);

    size_t size() const { return buf_.size(); }
    const std::vector<u8> &buffer() const { return buf_; }
    std::vector<u8> take() { return std::move(buf_); }

  private:
    std::vector<u8> buf_;
};

class Reader
{
  public:
    Reader(const u8 *data, size_t n) : p_(data), end_(data + n) {}
    explicit Reader(const std::vector<u8> &buf)
        : Reader(buf.data(), buf.size())
    {}

    u8 byte();
    u32 fixed32();
    u64 fixed64();
    u64 varint();
    s64 svarint();
    bool boolean() { return byte() != 0; }
    std::string str();

    /** @return false once any read ran past the end of the buffer. */
    bool ok() const { return ok_; }
    bool atEnd() const { return p_ == end_; }
    size_t remaining() const { return size_t(end_ - p_); }
    /** Bytes consumed so far (checksum windows). */
    const u8 *cursor() const { return p_; }

  private:
    bool need(size_t n);

    const u8 *p_;
    const u8 *end_;
    bool ok_ = true;
};

/**
 * Write one length-prefixed frame (u32 little-endian payload size, then
 * the payload), retrying short writes.  @return false on any I/O error
 * (EPIPE after a worker death included); never raises SIGPIPE concerns --
 * callers are expected to ignore SIGPIPE.
 */
bool writeFrame(int fd, const std::vector<u8> &payload);

/**
 * Read one length-prefixed frame into @p payload.  @return false on clean
 * EOF before any byte of the frame, and on any error or mid-frame EOF.
 */
bool readFrame(int fd, std::vector<u8> &payload);

} // namespace vmmx::wire

#endif // VMMX_DIST_WIRE_HH
