#include "dist/worker.hh"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <unistd.h>

#include "common/env.hh"
#include "common/logging.hh"
#include "dist/protocol.hh"
#include "harness/runner.hh"
#include "sim/simd_dispatch.hh"
#include "trace/trace_repo.hh"

namespace vmmx::dist
{

namespace
{

/**
 * Deterministic fault injection (the driver's supervision paths are
 * only testable if workers can be made to fail on cue).  The plan
 * arrives in the Setup frame; every directive is keyed on stable
 * counters -- units received, units answered, result frames sent -- so
 * a given (spec, shard) always fails at exactly the same place.
 */
struct FaultState
{
    explicit FaultState(const SetupMsg &setup) : id_(setup.workerId)
    {
        if (setup.faultSpec.empty())
            return;
        std::string err;
        if (!env::parseFaultSpec(setup.faultSpec.c_str(), plan_, err)) {
            warn("worker %u: ignoring unparsable fault spec: %s",
                 unsigned(id_), err.c_str());
            plan_.clear();
        }
    }

    /** The injected crash: distinguishable from a clean exit and from
     *  the codes a real abort would produce. */
    [[noreturn]] static void die() { ::_exit(137); }

    /** Account a received unit and fire any arrival-keyed directive;
     *  may exit or hang instead of returning. */
    void onUnit(const std::vector<u32> &indices)
    {
        ++unitsStarted_;
        for (const auto &a : plan_) {
            if (!a.applies(id_))
                continue;
            switch (a.kind) {
              case env::FaultAction::Kind::KillAfterUnits:
                if (unitsDone_ >= a.value)
                    die();
                break;
              case env::FaultAction::Kind::KillOnPoint:
                for (u32 i : indices)
                    if (u64(i) == a.value)
                        die();
                break;
              case env::FaultAction::Kind::Stall:
                if (unitsStarted_ == std::max<u64>(a.value, 1))
                    for (;;) // only the driver's deadline ends this
                        ::sleep(3600);
                break;
              default:
                break;
            }
        }
    }

    /** Whether the unit just received is the kill-mid-unit target. */
    bool killMidThisUnit() const
    {
        for (const auto &a : plan_)
            if (a.applies(id_) &&
                a.kind == env::FaultAction::Kind::KillMidUnit &&
                unitsStarted_ == std::max<u64>(a.value, 1))
                return true;
        return false;
    }

    /** Account one outgoing result frame; true = corrupt this one. */
    bool corruptThisResult()
    {
        ++resultsSent_;
        for (const auto &a : plan_)
            if (a.applies(id_) &&
                a.kind == env::FaultAction::Kind::CorruptFrame &&
                resultsSent_ == a.value)
                return true;
        return false;
    }

    void onUnitDone() { ++unitsDone_; }

    /** The session exit code: @p rc, or the injected nonzero one. */
    int exitCode(int rc) const
    {
        for (const auto &a : plan_)
            if (a.applies(id_) &&
                a.kind == env::FaultAction::Kind::ExitCode)
                return int(a.value);
        return rc;
    }

  private:
    std::vector<env::FaultAction> plan_;
    u64 id_ = 0;
    u64 unitsStarted_ = 0; ///< units received, 1-based after onUnit()
    u64 unitsDone_ = 0;    ///< units fully answered
    u64 resultsSent_ = 0;  ///< result frames sent, 1-based in corrupt check
};

} // namespace

int
workerServe(int fd)
{
    std::vector<u8> frame;
    if (!wire::readFrame(fd, frame)) {
        ::close(fd);
        return 1;
    }
    SetupMsg setup;
    if (!decode(frame, setup)) {
        wire::writeFrame(fd, encodeError("bad or missing Setup frame"));
        ::close(fd);
        return 1;
    }
    setQuiet(setup.quiet);
    setLogWorkerId(int(setup.workerId));
    telemetry::setEnabled(setup.telemetry);
    FaultState fault(setup);

    // Buffered spans and unit records ship to the driver as Event
    // frames -- after every unit (so a later crash loses at most one
    // unit's telemetry) and once more before the Stats reply.
    auto flushTelemetry = [&]() {
        if (!telemetry::enabled())
            return;
        EventMsg ev;
        ev.workerId = setup.workerId;
        ev.pid = u64(::getpid());
        ev.spans = telemetry::Tracer::instance().drain();
        ev.units = telemetry::Registry::instance().drainUnits();
        if (ev.spans.empty() && ev.units.empty())
            return;
        wire::writeFrame(fd, encode(ev));
    };

    // A private repository (not instance()): its statistics then
    // describe exactly this worker's jobs, and forked workers behave
    // identically to self-exec'd ones instead of inheriting
    // parent-warmed traces.
    std::unique_ptr<TraceStore> store;
    if (!setup.storeDir.empty())
        store = std::make_unique<TraceStore>(setup.storeDir);
    TraceRepository repo(store.get(), setup.cacheBudget,
                         setup.decodedBudget);

    int rc = 1;
    while (wire::readFrame(fd, frame)) {
        Msg type = frameType(frame);
        if (type == Msg::Done) {
            flushTelemetry();
            StatsMsg stats;
            stats.generations = repo.generations();
            stats.hits = repo.rawStats().hits;
            stats.diskLoads = repo.diskLoads();
            stats.storeSaves = store ? store->saves() : 0;
            stats.bytesResident = repo.rawStats().bytes;
            stats.decodes = repo.decodes();
            stats.decodedHits = repo.decodedStats().hits;
            stats.decodedBytes = repo.decodedStats().bytes;
            wire::writeFrame(fd, encode(stats));
            rc = 0;
            break;
        }
        // Normalize both work shapes into one group: a Job frame is a
        // group of one, a JobGroup frame is a whole trace group that
        // runs as a single batched pass.
        JobGroupMsg group;
        if (type == Msg::Job) {
            JobMsg job;
            if (!decode(frame, job)) {
                wire::writeFrame(fd,
                                 encodeError("malformed frame from driver"));
                break;
            }
            group.indices.push_back(job.index);
            group.points.push_back(std::move(job.point));
        } else if (type != Msg::JobGroup || !decode(frame, group)) {
            wire::writeFrame(fd, encodeError("malformed frame from driver"));
            break;
        }
        fault.onUnit(group.indices); // may exit or stall here

        // All points of a group replay the same trace by construction;
        // resolve it once through the worker's repository.  Explicit
        // traces travel inside the frame -- each frame decodes to a
        // fresh object, so the repository's identity-keyed decoded tier
        // could never hit across frames; those run through the raw
        // overload, whose blockwise decode needs only bounded scratch.
        const SweepPoint &lead = group.points[0];
        bool explicitTrace = lead.workload == SweepPoint::Workload::Trace;
        if (explicitTrace && !lead.trace) {
            wire::writeFrame(
                fd, encodeError("job " + std::to_string(group.indices[0]) +
                                " carries no trace"));
            break;
        }
        std::vector<MachineConfig> machines;
        machines.reserve(group.points.size());
        for (const SweepPoint &p : group.points)
            machines.push_back(makeMachine(p.kind, p.way, p.overrides));

        u64 unitStartNs = telemetry::enabled() ? telemetry::nowNs() : 0;
        std::string leadLabel =
            telemetry::enabled() ? lead.label() : std::string();

        std::vector<RunResult> runs;
        u64 traceLength = 0;
        {
            TELEMETRY_SPAN(
                "simulate",
                leadLabel.empty()
                    ? std::string()
                    : leadLabel + " simd=" +
                          simd::pathName(
                              simd::pathFor(group.points.size())));
            if (setup.decoded && !explicitTrace) {
                TraceRepository::DecodedHandle stream =
                    repo.decoded(traceKeyFor(lead));
                traceLength = stream.records();
                runs = runTraceBatch(machines, stream.stream());
            } else {
                TraceRepository::TraceHandle trace =
                    explicitTrace
                        ? TraceRepository::TraceHandle(lead.trace)
                        : repo.raw(traceKeyFor(lead));
                traceLength = trace->size();
                runs = runTraceBatch(machines, *trace);
            }
        }
        if (telemetry::enabled()) {
            telemetry::UnitRecord rec;
            rec.traceHash =
                wire::fnv1a(leadLabel.data(), leadLabel.size());
            rec.label = leadLabel;
            rec.points = u32(group.points.size());
            rec.records = traceLength;
            rec.wallNs = telemetry::nowNs() - unitStartNs;
            rec.workerId = s32(setup.workerId);
            rec.simd = simd::pathName(simd::pathFor(group.points.size()));
            telemetry::Registry::instance().addUnit(std::move(rec));
        }

        // kill-mid-unit: answer only half the group, then crash -- the
        // driver must reclaim and re-dispatch the missing tail.
        bool midKill = fault.killMidThisUnit();
        size_t limit = midKill ? runs.size() / 2 : runs.size();

        bool sent = true;
        {
            TELEMETRY_SPAN("wire.encode");
            for (size_t k = 0; k < limit && sent; ++k) {
                ResultMsg res;
                res.index = group.indices[k];
                res.traceLength = traceLength;
                res.result = runs[k];
                std::vector<u8> payload = encode(res);
                if (fault.corruptThisResult())
                    payload[0] = 0x7f; // undecodable type byte
                sent = wire::writeFrame(fd, payload);
            }
        }
        if (midKill)
            FaultState::die();
        if (!sent)
            break; // driver went away; nothing useful left to do
        fault.onUnitDone();
        flushTelemetry();
    }
    ::close(fd);
    return fault.exitCode(rc);
}

bool
maybeWorkerMain(int argc, char **argv)
{
    int fd = -1;
    bool worker = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--worker") == 0)
            worker = true;
        else if (std::strcmp(argv[i], "--fd") == 0 && i + 1 < argc)
            fd = std::atoi(argv[i + 1]);
    }
    if (!worker)
        return false;
    if (fd < 0)
        fatal("--worker requires --fd <descriptor>");
    // _exit: a worker forked from a threaded or gtest parent must not run
    // the parent's atexit handlers.
    ::_exit(workerServe(fd));
}

} // namespace vmmx::dist
