#include "dist/driver.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dist/protocol.hh"
#include "dist/worker.hh"
#include "harness/harness_io.hh"
#include "trace/trace_store.hh"

namespace vmmx::dist
{

namespace
{

constexpr u32 journalMagic = 0x4c4a4d56; // "VMJL" little-endian
constexpr u32 journalVersion = 1;
/** Work units kept in flight per worker: one running, one queued behind
 *  it so the worker never idles waiting on the driver's scheduling
 *  latency.  A unit is a trace group (batched) or one point (batch
 *  off). */
constexpr unsigned pipelineDepth = 2;

struct WorkerProc
{
    pid_t pid = -1;
    int fd = -1;
    std::deque<u32> shard; ///< remaining unit ids, front first
    /** Result frames still expected per unit sent but not fully
     *  answered, in send order.  Workers run units serially and answer
     *  a unit's points in order, so the front entry is always the one
     *  being drained. */
    std::deque<u32> inflight;
    bool doneSent = false;
    bool statsSeen = false;

    u32 outstandingResults() const
    {
        u32 n = 0;
        for (u32 u : inflight)
            n += u;
        return n;
    }
};

// ---- journal ------------------------------------------------------------

/**
 * Restore completed entries from @p path into @p results/@p have.
 * Stops quietly at the first truncated or corrupt entry (a crash can cut
 * an append short; everything before it is still good) and reports the
 * end of the valid prefix in @p validEnd so the caller can truncate the
 * damage away before appending.
 * @return false when the file is missing or belongs to a different grid.
 */
bool
journalLoad(const std::string &path, u64 signature,
            std::vector<SweepResult> &results, std::vector<bool> &have,
            u64 &restored, u64 &validEnd)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    in.seekg(0, std::ios::end);
    u64 fileSize = u64(in.tellg());
    in.seekg(0, std::ios::beg);

    auto readExact = [&in](void *dst, size_t n) {
        return bool(in.read(static_cast<char *>(dst), std::streamsize(n)));
    };

    u8 hdr[16];
    if (!readExact(hdr, sizeof(hdr)))
        return false;
    wire::Reader hr(hdr, sizeof(hdr));
    if (hr.fixed32() != journalMagic || hr.fixed32() != journalVersion) {
        warn("journal '%s' has a bad header; starting fresh", path.c_str());
        return false;
    }
    if (hr.fixed64() != signature) {
        warn("journal '%s' is for a different grid; starting fresh",
             path.c_str());
        return false;
    }
    validEnd = sizeof(hdr);

    for (;;) {
        u8 lenBytes[4];
        if (!readExact(lenBytes, 4))
            break;
        wire::Reader lr(lenBytes, 4);
        u32 len = lr.fixed32();
        // A corrupt length prefix must read as a damaged tail, not an
        // attempted multi-GiB allocation.
        if (validEnd + 4 + u64(len) + 8 > fileSize)
            break;
        std::vector<u8> payload(len);
        u8 sumBytes[8];
        if (!readExact(payload.data(), len) || !readExact(sumBytes, 8))
            break; // truncated tail: crash mid-append
        wire::Reader sr(sumBytes, 8);
        if (sr.fixed64() != wire::fnv1a(payload.data(), payload.size()))
            break;
        ResultMsg m;
        if (!decode(payload, m) || m.index >= results.size())
            break;
        if (!have[m.index]) {
            results[m.index].result = m.result;
            results[m.index].traceLength = m.traceLength;
            have[m.index] = true;
            ++restored;
        }
        validEnd += 4 + len + 8;
    }
    return true;
}

/** Append one checksummed entry; @p payload is an encoded ResultMsg
 *  (the received Result frame bytes can be reused verbatim). */
void
journalAppend(std::ofstream &out, const std::vector<u8> &payload)
{
    wire::Writer frame;
    frame.fixed32(u32(payload.size()));
    frame.bytes(payload.data(), payload.size());
    frame.fixed64(wire::fnv1a(payload.data(), payload.size()));
    out.write(reinterpret_cast<const char *>(frame.buffer().data()),
              std::streamsize(frame.size()));
    out.flush(); // each completed point survives a driver crash
}

void
journalWriteHeader(std::ofstream &out, u64 signature)
{
    wire::Writer hdr;
    hdr.fixed32(journalMagic);
    hdr.fixed32(journalVersion);
    hdr.fixed64(signature);
    out.write(reinterpret_cast<const char *>(hdr.buffer().data()),
              std::streamsize(hdr.size()));
    out.flush();
}

// ---- worker lifecycle ---------------------------------------------------

void
setCloexec(int fd)
{
    int flags = fcntl(fd, F_GETFD);
    if (flags >= 0)
        fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

WorkerProc
spawnWorker(const DistOptions &opts, const std::vector<int> &parentFds)
{
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
        fatal("socketpair failed: %s", std::strerror(errno));
    setCloexec(sv[0]);

    pid_t pid = fork();
    if (pid < 0)
        fatal("fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        // Child: drop every parent-side descriptor inherited so far so a
        // dead driver reads as EOF everywhere.
        ::close(sv[0]);
        for (int fd : parentFds)
            ::close(fd);
        if (opts.execPath.empty()) {
            ::_exit(workerServe(sv[1]));
        } else {
            std::vector<std::string> args;
            args.push_back(opts.execPath);
            args.insert(args.end(), opts.execArgs.begin(),
                        opts.execArgs.end());
            args.push_back("--worker");
            args.push_back("--fd");
            args.push_back(std::to_string(sv[1]));
            std::vector<char *> argv;
            for (auto &a : args)
                argv.push_back(a.data());
            argv.push_back(nullptr);
            execv(opts.execPath.c_str(), argv.data());
            ::_exit(127); // exec failed
        }
    }
    ::close(sv[1]);
    WorkerProc w;
    w.pid = pid;
    w.fd = sv[0];
    return w;
}

/**
 * Next unit for @p self: its own shard front, else steal from the tail
 * of the fullest other shard (the tail is the work the victim would get
 * to last, so stealing it minimizes contention on hot cache entries).
 */
bool
nextUnitFor(std::vector<WorkerProc> &workers, WorkerProc &self, u32 &unit,
            u64 &steals)
{
    if (!self.shard.empty()) {
        unit = self.shard.front();
        self.shard.pop_front();
        return true;
    }
    WorkerProc *victim = nullptr;
    for (auto &w : workers)
        if (!w.shard.empty() &&
            (!victim || w.shard.size() > victim->shard.size()))
            victim = &w;
    if (!victim)
        return false;
    unit = victim->shard.back();
    victim->shard.pop_back();
    ++steals;
    return true;
}

/** Ship one unit: a single-point unit travels as a legacy Job frame, a
 *  multi-point trace group as one JobGroup frame the worker runs
 *  batched.  Either way the worker answers with per-point Results. */
void
sendUnit(WorkerProc &w, u32 unit, const std::vector<std::vector<u32>> &units,
         const std::vector<SweepPoint> &points, u64 &groupsRun)
{
    const std::vector<u32> &indices = units[unit];
    bool ok;
    if (indices.size() == 1) {
        JobMsg job;
        job.index = indices[0];
        job.point = points[indices[0]];
        ok = wire::writeFrame(w.fd, encode(job));
    } else {
        JobGroupMsg group;
        group.indices = indices;
        group.points.reserve(indices.size());
        for (u32 i : indices)
            group.points.push_back(points[i]);
        ok = wire::writeFrame(w.fd, encode(group));
    }
    if (!ok)
        fatal("lost connection to worker pid %d while sending unit %u",
              int(w.pid), unit);
    w.inflight.push_back(u32(indices.size()));
    ++groupsRun;
}

} // namespace

std::string
DistStats::summary() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    os << "dist: " << workers << " workers, " << jobsRun << " jobs run in "
       << groupsRun << " units, " << jobsResumed << " resumed from journal, "
       << steals << " stolen; "
       << "worker repositories: " << generations << " generations, " << hits
       << " raw hits, " << diskLoads << " disk loads, " << storeSaves
       << " store saves, " << decodes << " decodes, " << decodedHits
       << " decoded hits, " << bytesResident / (1024.0 * 1024.0)
       << " MiB raw + " << decodedBytes / (1024.0 * 1024.0)
       << " MiB decoded resident at exit";
    return os.str();
}

u64
gridSignature(const std::vector<SweepPoint> &points)
{
    wire::Writer w;
    w.varint(points.size());
    for (const auto &p : points)
        serialize(w, p);
    return wire::fnv1a(w.buffer().data(), w.size());
}

std::vector<SweepResult>
runSweep(const std::vector<SweepPoint> &points, const DistOptions &opts,
         DistStats *stats)
{
    vmmx_assert(opts.processes >= 1,
                "distributed sweep needs at least one worker");
    DistStats local;
    DistStats &st = stats ? *stats : local;
    st = DistStats{};

    std::vector<SweepResult> results(points.size());
    std::vector<bool> have(points.size(), false);
    for (size_t i = 0; i < points.size(); ++i)
        results[i].point = points[i];
    if (points.empty())
        return results;

    // ---- journal restore ------------------------------------------------
    const u64 signature = gridSignature(points);
    std::ofstream journal;
    if (!opts.journalPath.empty()) {
        u64 validEnd = 0;
        bool valid = journalLoad(opts.journalPath, signature, results, have,
                                 st.jobsResumed, validEnd);
        if (valid) {
            // Drop any half-written tail so appended entries stay
            // reachable on the next resume.
            std::error_code ec;
            std::filesystem::resize_file(opts.journalPath, validEnd, ec);
            if (ec) {
                // Appending after corrupt bytes would strand the new
                // entries behind them on the next load; rewrite the
                // journal from the restored state instead.
                warn("cannot drop damaged tail of journal '%s' (%s); "
                     "rewriting it", opts.journalPath.c_str(),
                     ec.message().c_str());
                valid = false;
            } else {
                journal.open(opts.journalPath,
                             std::ios::binary | std::ios::app);
            }
        }
        if (!valid) {
            journal.open(opts.journalPath,
                         std::ios::binary | std::ios::trunc);
            journalWriteHeader(journal, signature);
            for (size_t i = 0; i < results.size(); ++i) {
                if (!have[i])
                    continue;
                ResultMsg m;
                m.index = u32(i);
                m.traceLength = results[i].traceLength;
                m.result = results[i].result;
                journalAppend(journal, encode(m));
            }
        }
        if (!journal)
            fatal("cannot open journal '%s'", opts.journalPath.c_str());
    }

    std::vector<u32> pending;
    for (size_t i = 0; i < points.size(); ++i)
        if (!have[i])
            pending.push_back(u32(i));
    size_t remaining = pending.size();
    if (remaining == 0)
        return results; // fully resumed; nothing to spawn

    // The schedulable unit: trace groups when batching (a journal-
    // resumed prefix simply shrinks the affected groups), single points
    // otherwise.  Shared with the thread-pool engine so both backends
    // form units identically.
    std::vector<std::vector<u32>> units =
        buildSweepUnits(points, pending, opts.batch);

    // Writing to a worker that died must surface as an EPIPE error code,
    // not kill the driver.
    struct sigaction ignore = {}, oldPipe = {};
    ignore.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &ignore, &oldPipe);

    // ---- spawn and shard ------------------------------------------------
    const unsigned n = unsigned(
        std::min<size_t>(opts.processes, units.size()));
    st.workers = n;
    st.perWorker.resize(n);
    SetupMsg setup;
    setup.storeDir =
        opts.storeDir.empty() ? TraceStore::defaultDir() : opts.storeDir;
    setup.cacheBudget = opts.cacheBudget;
    setup.decodedBudget = opts.decodedBudget;
    setup.decoded = opts.decoded;
    setup.quiet = opts.quiet;

    std::vector<WorkerProc> workers;
    workers.reserve(n);
    std::vector<int> parentFds;
    for (unsigned w = 0; w < n; ++w) {
        workers.push_back(spawnWorker(opts, parentFds));
        parentFds.push_back(workers.back().fd);
    }
    // Contiguous shards of units keep each worker's trace working set
    // small (grid builders emit points for one workload consecutively,
    // so neighbouring groups share store/cache locality).
    for (unsigned w = 0; w < n; ++w) {
        size_t lo = units.size() * w / n, hi = units.size() * (w + 1) / n;
        for (size_t u = lo; u < hi; ++u)
            workers[w].shard.push_back(u32(u));
    }
    for (auto &w : workers) {
        if (!wire::writeFrame(w.fd, encode(setup)))
            fatal("lost connection to worker pid %d during setup",
                  int(w.pid));
        // Own-shard units only here: stealing during startup could leave
        // a later worker with no work and therefore no Result to trigger
        // its Done handshake.
        for (unsigned k = 0; k < pipelineDepth && !w.shard.empty(); ++k) {
            u32 unit = w.shard.front();
            w.shard.pop_front();
            sendUnit(w, unit, units, points, st.groupsRun);
        }
    }

    // ---- event loop ------------------------------------------------------
    auto allStatsSeen = [&]() {
        for (const auto &w : workers)
            if (!w.statsSeen)
                return false;
        return true;
    };

    std::vector<u8> frame;
    while (remaining > 0 || !allStatsSeen()) {
        std::vector<pollfd> pfds;
        for (const auto &w : workers)
            if (w.fd >= 0 && !w.statsSeen)
                pfds.push_back({w.fd, POLLIN, 0});
        if (pfds.empty())
            break;
        if (poll(pfds.data(), nfds_t(pfds.size()), -1) < 0) {
            if (errno == EINTR)
                continue;
            fatal("poll failed: %s", std::strerror(errno));
        }
        for (const auto &p : pfds) {
            if (!(p.revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            WorkerProc *w = nullptr;
            for (auto &cand : workers)
                if (cand.fd == p.fd)
                    w = &cand;
            vmmx_assert(w != nullptr, "poll returned unknown fd");

            if (!wire::readFrame(w->fd, frame)) {
                if (opts.journalPath.empty())
                    fatal("worker pid %d died with %u jobs in flight",
                          int(w->pid), w->outstandingResults());
                fatal("worker pid %d died with %u jobs in flight; rerun "
                      "with --journal '%s' to resume",
                      int(w->pid), w->outstandingResults(),
                      opts.journalPath.c_str());
            }
            switch (frameType(frame)) {
              case Msg::Result: {
                ResultMsg m;
                if (!decode(frame, m) || m.index >= results.size() ||
                    have[m.index] || w->inflight.empty())
                    fatal("worker pid %d sent a malformed result",
                          int(w->pid));
                results[m.index].result = m.result;
                results[m.index].traceLength = m.traceLength;
                have[m.index] = true;
                --remaining;
                ++st.jobsRun;
                if (journal.is_open())
                    journalAppend(journal, frame); // same bytes as encode(m)
                // Units complete in send order; refill the pipeline when
                // the front unit has answered all of its points.
                if (--w->inflight.front() == 0) {
                    w->inflight.pop_front();
                    u32 unit;
                    if (nextUnitFor(workers, *w, unit, st.steals)) {
                        sendUnit(*w, unit, units, points, st.groupsRun);
                    } else if (w->inflight.empty() && !w->doneSent) {
                        if (!wire::writeFrame(w->fd, encodeDone()))
                            fatal("lost connection to worker pid %d",
                                  int(w->pid));
                        w->doneSent = true;
                    }
                }
                break;
              }
              case Msg::Stats: {
                StatsMsg m;
                if (!decode(frame, m))
                    fatal("worker pid %d sent malformed stats",
                          int(w->pid));
                st.generations += m.generations;
                st.hits += m.hits;
                st.diskLoads += m.diskLoads;
                st.storeSaves += m.storeSaves;
                st.bytesResident += m.bytesResident;
                st.decodes += m.decodes;
                st.decodedHits += m.decodedHits;
                st.decodedBytes += m.decodedBytes;
                size_t slot = size_t(w - workers.data());
                st.perWorker[slot] = {m.generations,  m.hits,
                                      m.diskLoads,    m.decodes,
                                      m.decodedHits,  m.bytesResident,
                                      m.decodedBytes};
                w->statsSeen = true;
                break;
              }
              case Msg::Error: {
                std::string what;
                decodeError(frame, what);
                fatal("worker pid %d failed: %s", int(w->pid),
                      what.c_str());
              }
              default:
                fatal("unexpected frame type %u from worker pid %d",
                      unsigned(frameType(frame)), int(w->pid));
            }
        }
    }

    // ---- teardown --------------------------------------------------------
    for (auto &w : workers) {
        if (w.fd >= 0) {
            ::close(w.fd);
            w.fd = -1;
        }
        int status = 0;
        if (waitpid(w.pid, &status, 0) == w.pid &&
            (!WIFEXITED(status) || WEXITSTATUS(status) != 0))
            warn("worker pid %d exited abnormally after completing its "
                 "jobs", int(w.pid));
    }
    sigaction(SIGPIPE, &oldPipe, nullptr);
    vmmx_assert(remaining == 0, "distributed sweep lost grid points");
    return results;
}

} // namespace vmmx::dist
