#include "dist/driver.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <ctime>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <memory>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/env.hh"
#include "common/telemetry.hh"
#include "dist/protocol.hh"
#include "dist/worker.hh"
#include "harness/executor.hh"
#include "harness/harness_io.hh"
#include "trace/trace_store.hh"

namespace vmmx::dist
{

namespace
{

constexpr u32 journalMagic = 0x4c4a4d56; // "VMJL" little-endian
constexpr u32 journalVersion = 1;
/** Work units kept in flight per worker: one running, one queued behind
 *  it so the worker never idles waiting on the driver's scheduling
 *  latency.  A unit is a trace group (batched) or one point (batch
 *  off). */
constexpr unsigned pipelineDepth = 2;
/** Respawn backoff: base << (respawnsUsed - 1), capped.  Bounded so a
 *  worker that dies instantly on spawn cannot busy-loop the driver, and
 *  short enough that a transient failure costs milliseconds. */
constexpr u64 backoffBaseMs = 20;
constexpr u64 backoffCapMs = 1000;

/** Monotonic milliseconds (deadlines and backoff; never wall clock). */
u64
nowMs()
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return u64(ts.tv_sec) * 1000 + u64(ts.tv_nsec) / 1000000;
}

/** One dispatched-but-unanswered unit on a worker. */
struct Inflight
{
    u32 unit = 0;    ///< unit id
    u32 expect = 0;  ///< result frames still expected
    u64 started = 0; ///< when this entry reached the running (front) slot
};

/**
 * One worker *slot*.  The slot -- its shard, its perWorker stats row,
 * its respawn budget -- outlives the processes that serve it: when a
 * spawn dies the slot is respawned (fresh pid/fd/spawnId) after a
 * backoff, until maxRespawns is spent and the slot is abandoned.
 */
struct WorkerProc
{
    pid_t pid = -1;
    int fd = -1;
    unsigned slot = 0; ///< stable index into DistStats::perWorker
    u32 spawnId = 0;   ///< spawn ordinal (the faultSpec "workerN" id)
    std::deque<u32> shard; ///< remaining unit ids, front first
    /** Units sent but not fully answered, in send order.  Workers run
     *  units serially and answer a unit's points in order, so the
     *  front entry is always the one being drained. */
    std::deque<Inflight> inflight;
    bool doneSent = false;
    bool statsSeen = false;
    unsigned respawnsUsed = 0;
    bool respawnPending = false;
    u64 respawnDue = 0; ///< nowMs() timestamp the respawn fires at
    u64 diedNs = 0;     ///< death time of the pending respawn's
                        ///< predecessor (telemetry backoff span)

    bool live() const { return fd >= 0; }

    u32 outstandingResults() const
    {
        u32 n = 0;
        for (const Inflight &f : inflight)
            n += f.expect;
        return n;
    }
};

// ---- journal ------------------------------------------------------------

/**
 * Append side of the crash journal.  A plain fd, not an ofstream: with
 * DistOptions::journalSync each entry is fdatasync()ed so it survives a
 * *host* crash, and that requires the real descriptor.  Opened
 * O_CLOEXEC; fork-without-exec children close it via the spawn-time
 * close list.
 */
class Journal
{
  public:
    explicit Journal(bool sync) : sync_(sync) {}
    ~Journal() { close(); }
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    bool
    open(const std::string &path, bool truncate)
    {
        close();
        int flags =
            O_WRONLY | O_CREAT | O_CLOEXEC | (truncate ? O_TRUNC : O_APPEND);
        fd_ = ::open(path.c_str(), flags, 0644);
        return fd_ >= 0;
    }

    bool ok() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    void
    writeHeader(u64 signature)
    {
        wire::Writer hdr;
        hdr.fixed32(journalMagic);
        hdr.fixed32(journalVersion);
        hdr.fixed64(signature);
        writeAll(hdr);
        commit();
    }

    /** Append one checksummed entry; @p payload is an encoded ResultMsg
     *  (the received Result frame bytes can be reused verbatim). */
    void
    append(const std::vector<u8> &payload)
    {
        TELEMETRY_SPAN("journal.write");
        wire::Writer frame;
        frame.fixed32(u32(payload.size()));
        frame.bytes(payload.data(), payload.size());
        frame.fixed64(wire::fnv1a(payload.data(), payload.size()));
        writeAll(frame);
        commit();
        if (telemetry::enabled())
            telemetry::Registry::instance().addCounter(
                "dist.journal.appends", 1);
    }

    void
    close()
    {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = -1;
    }

  private:
    void
    writeAll(const wire::Writer &w)
    {
        const u8 *p = w.buffer().data();
        size_t n = w.size();
        while (n > 0) {
            ssize_t k = ::write(fd_, p, n);
            if (k < 0) {
                if (errno == EINTR)
                    continue;
                fatal("journal write failed: %s", std::strerror(errno));
            }
            p += k;
            n -= size_t(k);
        }
    }

    /** write() already leaves the entry visible to a resuming driver;
     *  sync mode additionally forces it to stable storage. */
    void
    commit()
    {
        if (!sync_)
            return;
        if (::fdatasync(fd_) != 0)
            warn("journal fdatasync failed: %s", std::strerror(errno));
        if (telemetry::enabled())
            telemetry::Registry::instance().addCounter(
                "dist.journal.syncs", 1);
    }

    int fd_ = -1;
    bool sync_;
};

/**
 * Restore completed entries from @p path into @p results/@p have.
 * Damage is counted, not silently dropped: every entry that cannot be
 * restored bumps @p skipped.  A damaged *tail* (crash mid-append) ends
 * the scan with @p validEnd at the end of the good prefix so the caller
 * can truncate it away and append; a damaged entry in the *middle*
 * (bit rot) sets @p needRewrite -- later good entries are still
 * restored, but the file must be rewritten from the restored state
 * because appending after corrupt bytes would strand the new entries.
 * @return false when the file is missing or belongs to a different grid.
 */
bool
journalLoad(const std::string &path, u64 signature,
            std::vector<SweepResult> &results, std::vector<bool> &have,
            u64 &restored, u64 &validEnd, u64 &skipped, bool &needRewrite)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    in.seekg(0, std::ios::end);
    u64 fileSize = u64(in.tellg());
    in.seekg(0, std::ios::beg);

    auto readExact = [&in](void *dst, size_t n) {
        return bool(in.read(static_cast<char *>(dst), std::streamsize(n)));
    };

    u8 hdr[16];
    if (!readExact(hdr, sizeof(hdr)))
        return false;
    wire::Reader hr(hdr, sizeof(hdr));
    if (hr.fixed32() != journalMagic || hr.fixed32() != journalVersion) {
        warn("journal '%s' has a bad header; starting fresh", path.c_str());
        return false;
    }
    if (hr.fixed64() != signature) {
        warn("journal '%s' is for a different grid; starting fresh",
             path.c_str());
        return false;
    }
    validEnd = sizeof(hdr);

    u64 offset = sizeof(hdr);
    for (;;) {
        u8 lenBytes[4];
        if (!readExact(lenBytes, 4)) {
            if (offset < fileSize)
                ++skipped; // partial length prefix: crash mid-append
            break;
        }
        wire::Reader lr(lenBytes, 4);
        u32 len = lr.fixed32();
        // A corrupt length prefix must read as a damaged tail, not an
        // attempted multi-GiB allocation.
        if (offset + 4 + u64(len) + 8 > fileSize) {
            ++skipped;
            break;
        }
        std::vector<u8> payload(len);
        u8 sumBytes[8];
        if (!readExact(payload.data(), len) || !readExact(sumBytes, 8)) {
            ++skipped;
            break;
        }
        offset += 4 + len + 8;
        wire::Reader sr(sumBytes, 8);
        ResultMsg m;
        if (sr.fixed64() != wire::fnv1a(payload.data(), payload.size()) ||
            !decode(payload, m) || m.index >= results.size()) {
            // Damage with intact framing: count it, keep scanning --
            // the entries behind it are still good data.
            ++skipped;
            needRewrite = true;
            continue;
        }
        if (!have[m.index]) {
            results[m.index].result = m.result;
            results[m.index].traceLength = m.traceLength;
            have[m.index] = true;
            ++restored;
        }
        if (!needRewrite)
            validEnd = offset;
    }
    return true;
}

// ---- worker lifecycle ---------------------------------------------------

void
setCloexec(int fd)
{
    int flags = fcntl(fd, F_GETFD);
    if (flags >= 0)
        fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/** Fork (or fork+exec) one worker process.  @p closeFds are the
 *  parent-side descriptors the child must drop so a dead driver reads
 *  as EOF everywhere.  @return {pid, driver-side fd}. */
std::pair<pid_t, int>
spawnWorker(const DistOptions &opts, const std::vector<int> &closeFds)
{
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
        fatal("socketpair failed: %s", std::strerror(errno));
    setCloexec(sv[0]);

    pid_t pid = fork();
    if (pid < 0)
        fatal("fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        ::close(sv[0]);
        for (int fd : closeFds)
            ::close(fd);
        if (opts.execPath.empty()) {
            ::_exit(workerServe(sv[1]));
        } else {
            std::vector<std::string> args;
            args.push_back(opts.execPath);
            args.insert(args.end(), opts.execArgs.begin(),
                        opts.execArgs.end());
            args.push_back("--worker");
            args.push_back("--fd");
            args.push_back(std::to_string(sv[1]));
            std::vector<char *> argv;
            for (auto &a : args)
                argv.push_back(a.data());
            argv.push_back(nullptr);
            execv(opts.execPath.c_str(), argv.data());
            ::_exit(127); // exec failed
        }
    }
    ::close(sv[1]);
    return {pid, sv[0]};
}

/**
 * Next unit for @p self: its own shard front, else steal from the tail
 * of the fullest other shard (the tail is the work the victim would get
 * to last, so stealing it minimizes contention on hot cache entries).
 * Dead slots' shards -- including units reclaimed onto them -- are
 * valid steal victims.
 */
bool
nextUnitFor(std::vector<WorkerProc> &workers, WorkerProc &self, u32 &unit,
            u64 &steals)
{
    if (!self.shard.empty()) {
        unit = self.shard.front();
        self.shard.pop_front();
        return true;
    }
    WorkerProc *victim = nullptr;
    for (auto &w : workers)
        if (!w.shard.empty() &&
            (!victim || w.shard.size() > victim->shard.size()))
            victim = &w;
    if (!victim)
        return false;
    unit = victim->shard.back();
    victim->shard.pop_back();
    ++steals;
    return true;
}

} // namespace

std::string
DistStats::summary() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    os << "dist: " << workers << " workers, " << jobsRun << " jobs run in "
       << groupsRun << " units, " << jobsResumed << " resumed from journal, "
       << steals << " stolen; "
       << "worker repositories: " << generations << " generations, " << hits
       << " raw hits, " << diskLoads << " disk loads, " << storeSaves
       << " store saves, " << decodes << " decodes, " << decodedHits
       << " decoded hits, " << bytesResident / (1024.0 * 1024.0)
       << " MiB raw + " << decodedBytes / (1024.0 * 1024.0)
       << " MiB decoded resident at exit";
    if (respawns || reassignedUnits || retries)
        os << "; recovery: " << respawns << " respawns, " << reassignedUnits
           << " units reclaimed, " << retries << " retried";
    if (quarantinedUnits)
        os << "; QUARANTINED " << quarantinedUnits << " units ("
           << quarantinedPoints.size() << " points unexecuted)";
    if (degraded)
        os << "; DEGRADED to in-driver execution (" << degradedJobs
           << " jobs run by the driver)";
    if (abnormalExits)
        os << "; " << abnormalExits << " abnormal worker exits";
    if (journalSkipped)
        os << "; " << journalSkipped << " damaged journal entries skipped";
    return os.str();
}

void
publishMetrics(const DistStats &st)
{
    if (!telemetry::enabled())
        return;
    telemetry::Registry &reg = telemetry::Registry::instance();
    reg.setGauge("dist.workers", st.workers);
    reg.setGauge("dist.jobsRun", st.jobsRun);
    reg.setGauge("dist.jobsResumed", st.jobsResumed);
    reg.setGauge("dist.groupsRun", st.groupsRun);
    reg.setGauge("dist.steals", st.steals);
    reg.setGauge("dist.respawns", st.respawns);
    reg.setGauge("dist.reassignedUnits", st.reassignedUnits);
    reg.setGauge("dist.retries", st.retries);
    reg.setGauge("dist.quarantinedUnits", st.quarantinedUnits);
    reg.setGauge("dist.quarantinedPoints", st.quarantinedPoints.size());
    reg.setGauge("dist.degraded", st.degraded ? 1 : 0);
    reg.setGauge("dist.degradedJobs", st.degradedJobs);
    reg.setGauge("dist.abnormalExits", st.abnormalExits);
    reg.setGauge("dist.journalSkipped", st.journalSkipped);
    // The worker fleet's trace-repository tier aggregate: the "repo"
    // section of a distributed run's metrics export.
    reg.setGauge("repo.generations", st.generations);
    reg.setGauge("repo.raw.hits", st.hits);
    reg.setGauge("repo.diskLoads", st.diskLoads);
    reg.setGauge("repo.storeSaves", st.storeSaves);
    reg.setGauge("repo.raw.bytes", st.bytesResident);
    reg.setGauge("repo.decodes", st.decodes);
    reg.setGauge("repo.decoded.hits", st.decodedHits);
    reg.setGauge("repo.decoded.bytes", st.decodedBytes);
}

const char *
name(WorkerExit::Cause c)
{
    switch (c) {
      case WorkerExit::Cause::Clean: return "clean";
      case WorkerExit::Cause::Exit: return "exit";
      case WorkerExit::Cause::Signal: return "signal";
      case WorkerExit::Cause::Malformed: return "malformed";
      case WorkerExit::Cause::Hung: return "hung";
      case WorkerExit::Cause::Lost: return "lost";
      case WorkerExit::Cause::Error: return "error";
    }
    panic("bad exit cause %d", int(c));
}

unsigned
maxRespawnsFromEnv()
{
    return env::number("VMMX_MAX_RESPAWNS", 3);
}

unsigned
maxUnitAttemptsFromEnv()
{
    return env::number("VMMX_MAX_UNIT_ATTEMPTS", 3);
}

u64
unitTimeoutMsFromEnv()
{
    return env::number("VMMX_UNIT_TIMEOUT_MS", 0);
}

bool
journalSyncFromEnv()
{
    return env::flag("VMMX_JOURNAL_SYNC", false);
}

std::string
faultSpecFromEnv()
{
    return env::str("VMMX_FAULT_SPEC");
}

u64
gridSignature(const std::vector<SweepPoint> &points)
{
    wire::Writer w;
    w.varint(points.size());
    for (const auto &p : points)
        serialize(w, p);
    return wire::fnv1a(w.buffer().data(), w.size());
}

std::vector<SweepResult>
runSweep(const std::vector<SweepPoint> &points, const DistOptions &opts,
         DistStats *stats)
{
    vmmx_assert(opts.processes >= 1,
                "distributed sweep needs at least one worker");
    DistStats local;
    DistStats &st = stats ? *stats : local;
    st = DistStats{};

    std::vector<SweepResult> results(points.size());
    std::vector<bool> have(points.size(), false);
    for (size_t i = 0; i < points.size(); ++i)
        results[i].point = points[i];
    if (points.empty())
        return results;

    // ---- journal restore ------------------------------------------------
    const u64 signature = gridSignature(points);
    Journal journal(opts.journalSync);
    if (!opts.journalPath.empty()) {
        u64 validEnd = 0;
        bool needRewrite = false;
        bool valid = journalLoad(opts.journalPath, signature, results, have,
                                 st.jobsResumed, validEnd, st.journalSkipped,
                                 needRewrite);
        if (valid && needRewrite) {
            warn("journal '%s' has damaged entries mid-file; rewriting it",
                 opts.journalPath.c_str());
            valid = false; // rewrite from the restored state below
        }
        if (valid) {
            // Drop any half-written tail so appended entries stay
            // reachable on the next resume.
            std::error_code ec;
            std::filesystem::resize_file(opts.journalPath, validEnd, ec);
            if (ec) {
                warn("cannot drop damaged tail of journal '%s' (%s); "
                     "rewriting it", opts.journalPath.c_str(),
                     ec.message().c_str());
                valid = false;
            } else if (!journal.open(opts.journalPath, false)) {
                fatal("cannot open journal '%s'", opts.journalPath.c_str());
            }
        }
        if (!valid) {
            if (!journal.open(opts.journalPath, true))
                fatal("cannot open journal '%s'", opts.journalPath.c_str());
            journal.writeHeader(signature);
            for (size_t i = 0; i < results.size(); ++i) {
                if (!have[i])
                    continue;
                ResultMsg m;
                m.index = u32(i);
                m.traceLength = results[i].traceLength;
                m.result = results[i].result;
                journal.append(encode(m));
            }
        }
    }

    std::vector<u32> pending;
    for (size_t i = 0; i < points.size(); ++i)
        if (!have[i])
            pending.push_back(u32(i));
    size_t remaining = pending.size();
    if (remaining == 0)
        return results; // fully resumed; nothing to spawn

    // The schedulable unit: trace groups when batching (a journal-
    // resumed prefix simply shrinks the affected groups), single points
    // otherwise.  Shared with the thread-pool engine so both backends
    // form units identically.
    std::vector<std::vector<u32>> units =
        buildSweepUnits(points, pending, opts.batch);
    std::vector<unsigned> attempts(units.size(), 0);
    std::vector<bool> failed(points.size(), false); // quarantined points
    const unsigned maxAttempts = std::max(opts.maxUnitAttempts, 1u);

    // Writing to a worker that died must surface as an EPIPE error code,
    // not kill the driver.
    struct sigaction ignore = {}, oldPipe = {};
    ignore.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &ignore, &oldPipe);

    // ---- slots and shards -----------------------------------------------
    const unsigned n = unsigned(
        std::min<size_t>(opts.processes, units.size()));
    st.workers = n;
    st.perWorker.resize(n);
    SetupMsg setup; // per-spawn workerId filled in at spawn time
    setup.storeDir =
        opts.storeDir.empty() ? TraceStore::defaultDir() : opts.storeDir;
    setup.cacheBudget = opts.cacheBudget;
    setup.decodedBudget = opts.decodedBudget;
    setup.decoded = opts.decoded;
    setup.quiet = opts.quiet;
    setup.faultSpec = opts.faultSpec;
    setup.telemetry = telemetry::enabled();

    u32 nextSpawnId = 0;
    std::vector<WorkerProc> workers(n);
    for (unsigned w = 0; w < n; ++w)
        workers[w].slot = w;
    // Contiguous shards of units keep each worker's trace working set
    // small (grid builders emit points for one workload consecutively,
    // so neighbouring groups share store/cache locality).
    for (unsigned w = 0; w < n; ++w) {
        size_t lo = units.size() * w / n, hi = units.size() * (w + 1) / n;
        for (size_t u = lo; u < hi; ++u)
            workers[w].shard.push_back(u32(u));
    }

    // ---- supervision machinery ------------------------------------------

    /** Abandon a unit that has exhausted its attempts: its missing
     *  points are reported failed and never retried, even in degraded
     *  mode. */
    auto quarantineUnit = [&](u32 u) {
        ++st.quarantinedUnits;
        for (u32 i : units[u]) {
            if (have[i] || failed[i])
                continue;
            failed[i] = true;
            st.quarantinedPoints.push_back(i);
            --remaining;
        }
        warn("unit %u quarantined after killing %u workers", u, maxAttempts);
    };

    /** Reclaim a dead worker's in-flight units back onto its slot's
     *  shard (front, preserving order), charging an attempt only to the
     *  unit that was actually executing -- the queued ones were
     *  bystanders. */
    auto reclaim = [&](WorkerProc &w) {
        std::vector<u32> back;
        bool front = true;
        while (!w.inflight.empty()) {
            u32 u = w.inflight.front().unit;
            w.inflight.pop_front();
            if (front) {
                front = false;
                if (++attempts[u] >= maxAttempts) {
                    quarantineUnit(u);
                    continue;
                }
                ++st.retries;
            }
            ++st.reassignedUnits;
            back.push_back(u);
        }
        w.shard.insert(w.shard.begin(), back.begin(), back.end());
    };

    /**
     * A spawn is gone (EOF, malformed frame, deadline...): reap it,
     * record its fate, reclaim its units, and schedule a backed-off
     * respawn of the slot if the budget allows.  @p killFirst for
     * causes where the process may still be running (hung, babbling a
     * corrupt stream) and must be stopped before the blocking waitpid.
     */
    auto workerDied = [&](WorkerProc &w, WorkerExit::Cause cause,
                          const std::string &reason, bool killFirst) {
        if (w.fd >= 0) {
            ::close(w.fd);
            w.fd = -1;
        }
        std::string statusText = "status unknown";
        if (w.pid > 0) {
            if (killFirst)
                ::kill(w.pid, SIGKILL);
            int status = 0;
            if (waitpid(w.pid, &status, 0) == w.pid) {
                if (WIFSIGNALED(status)) {
                    statusText =
                        "signal " + std::to_string(WTERMSIG(status));
                    if (cause == WorkerExit::Cause::Lost)
                        cause = WorkerExit::Cause::Signal;
                } else if (WIFEXITED(status)) {
                    statusText = "exit " +
                                 std::to_string(WEXITSTATUS(status));
                    if (cause == WorkerExit::Cause::Lost)
                        cause = WorkerExit::Cause::Exit;
                }
            }
            w.pid = -1;
        }
        ++st.abnormalExits;
        std::string detail =
            reason.empty() ? statusText : reason + "; " + statusText;
        st.exitCauses.push_back({w.slot, w.spawnId, cause, detail});
        if (!opts.quiet)
            warn("worker %u (slot %u) lost -- %s: %s -- recovering",
                 unsigned(w.spawnId), w.slot, name(cause), detail.c_str());
        reclaim(w);
        w.doneSent = false;
        if (remaining > 0 && w.respawnsUsed < opts.maxRespawns) {
            ++w.respawnsUsed;
            w.respawnPending = true;
            u64 backoff = std::min(
                backoffBaseMs << (w.respawnsUsed - 1), backoffCapMs);
            w.respawnDue = nowMs() + backoff;
            if (telemetry::enabled())
                w.diedNs = telemetry::nowNs();
        }
    };

    /** Ship one unit -- only its still-missing points, so a reclaimed,
     *  partially-answered group is not re-run in full.  A fully-covered
     *  unit sends nothing.  @return false when the write fails (caller
     *  must treat the worker as dead). */
    auto sendUnit = [&](WorkerProc &w, u32 unit) -> bool {
        TELEMETRY_SPAN("wire.encode");
        std::vector<u32> indices;
        for (u32 i : units[unit])
            if (!have[i] && !failed[i])
                indices.push_back(i);
        if (indices.empty())
            return true;
        bool ok;
        if (indices.size() == 1) {
            JobMsg job;
            job.index = indices[0];
            job.point = points[indices[0]];
            ok = wire::writeFrame(w.fd, encode(job));
        } else {
            JobGroupMsg group;
            group.indices = indices;
            group.points.reserve(indices.size());
            for (u32 i : indices)
                group.points.push_back(points[i]);
            ok = wire::writeFrame(w.fd, encode(group));
        }
        if (!ok)
            return false;
        w.inflight.push_back({unit, u32(indices.size()), nowMs()});
        ++st.groupsRun;
        return true;
    };

    /** Top the worker's pipeline up to depth, or complete its Done
     *  handshake when no work is left anywhere.  @return false on a
     *  write failure. */
    auto refill = [&](WorkerProc &w) -> bool {
        while (w.live() && !w.doneSent &&
               w.inflight.size() < pipelineDepth) {
            u32 unit;
            if (nextUnitFor(workers, w, unit, st.steals)) {
                if (!sendUnit(w, unit)) {
                    // Not sent, not in flight: back onto the shard so
                    // the unit survives this worker's death.
                    w.shard.push_front(unit);
                    return false;
                }
            } else if (w.inflight.empty()) {
                if (!wire::writeFrame(w.fd, encodeDone()))
                    return false;
                w.doneSent = true;
            } else {
                break; // pipeline part-full and no more units to queue
            }
        }
        return true;
    };

    /** Spawn a process into slot @p w and hand it its setup + first
     *  units; a failure right here re-enters the death path. */
    auto startWorker = [&](WorkerProc &w) {
        std::vector<int> closeFds;
        for (const auto &other : workers)
            if (other.fd >= 0)
                closeFds.push_back(other.fd);
        if (journal.ok())
            closeFds.push_back(journal.fd());
        auto [pid, fd] = spawnWorker(opts, closeFds);
        w.pid = pid;
        w.fd = fd;
        w.spawnId = nextSpawnId++;
        w.doneSent = false;
        w.statsSeen = false;
        w.inflight.clear();
        SetupMsg s = setup;
        s.workerId = w.spawnId;
        if (!wire::writeFrame(w.fd, encode(s)) || !refill(w))
            workerDied(w, WorkerExit::Cause::Lost, "failed during setup",
                       false);
    };

    /** Respawns are deferred to the loop top: never mid-poll-iteration,
     *  so a recycled descriptor can never alias a stale pollfd. */
    auto fireRespawns = [&]() {
        for (auto &w : workers) {
            if (!w.respawnPending || nowMs() < w.respawnDue)
                continue;
            w.respawnPending = false;
            if (remaining == 0)
                continue;
            ++st.respawns;
            // One span covering death -> respawn: the backoff wait is a
            // real scheduling cost the timeline should show.
            if (telemetry::enabled() && w.diedNs) {
                telemetry::SpanRecord rec;
                rec.name = "respawn.backoff";
                rec.detail = "slot " + std::to_string(w.slot);
                rec.startNs = w.diedNs;
                rec.durNs = telemetry::nowNs() - w.diedNs;
                rec.pid = u64(::getpid());
                telemetry::Tracer::instance().record(std::move(rec));
                w.diedNs = 0;
            }
            startWorker(w);
        }
    };

    /** True when work remains but nobody can do it: every slot is dead
     *  or past its Done handshake, and no respawn is coming. */
    auto fleetCollapsed = [&]() {
        if (remaining == 0)
            return false;
        for (const auto &w : workers)
            if ((w.live() && !w.doneSent) || w.respawnPending)
                return false;
        return true;
    };

    /** Graceful degradation: run every still-missing, non-quarantined
     *  point in-driver through the serial unit runner.  Same units,
     *  same submission-order slots, so the bytes match what the fleet
     *  would have produced. */
    auto degrade = [&]() {
        st.degraded = true;
        if (!opts.quiet)
            warn("worker fleet exhausted; running %zu remaining points "
                 "in-driver", remaining);
        auto store = std::make_unique<TraceStore>(setup.storeDir);
        TraceRepository repo(store.get(), opts.cacheBudget,
                             opts.decodedBudget);
        ExecutionPolicy pol;
        pol.batch = opts.batch;
        pol.decoded = opts.decoded;
        pol.repo = &repo;
        for (u32 u = 0; u < units.size() && remaining > 0; ++u) {
            std::vector<u32> subset;
            for (u32 i : units[u])
                if (!have[i] && !failed[i])
                    subset.push_back(i);
            if (subset.empty())
                continue;
            runSweepUnit(points, subset, pol, results);
            for (u32 i : subset) {
                have[i] = true;
                --remaining;
                ++st.degradedJobs;
                if (journal.ok()) {
                    ResultMsg m;
                    m.index = i;
                    m.traceLength = results[i].traceLength;
                    m.result = results[i].result;
                    journal.append(encode(m));
                }
            }
        }
        for (auto &w : workers)
            w.shard.clear();
    };

    // ---- spawn ----------------------------------------------------------
    for (auto &w : workers)
        startWorker(w);

    // ---- event loop -----------------------------------------------------
    auto awaitingStats = [&]() {
        for (const auto &w : workers)
            if (w.live() && !w.statsSeen)
                return true;
        return false;
    };

    telemetry::Progress progress("sweep", points.size());
    auto inflightExtra = [&]() {
        if (telemetry::progressMode() == telemetry::ProgressMode::Off)
            return std::string();
        std::string s;
        for (const auto &w : workers) {
            if (!s.empty())
                s += ' ';
            s += 'w' + std::to_string(w.slot) + ':' +
                 (w.live() ? std::to_string(w.inflight.size()) : "dead");
        }
        return s;
    };

    std::vector<u8> frame;
    while (remaining > 0 || awaitingStats()) {
        fireRespawns();
        if (opts.unitTimeoutMs > 0) {
            u64 now = nowMs();
            for (auto &w : workers)
                if (w.live() && !w.inflight.empty() &&
                    now - w.inflight.front().started >= opts.unitTimeoutMs)
                    workerDied(w, WorkerExit::Cause::Hung,
                               "unit " +
                                   std::to_string(w.inflight.front().unit) +
                                   " blew the " +
                                   std::to_string(opts.unitTimeoutMs) +
                                   "ms deadline",
                               true);
        }
        if (fleetCollapsed()) {
            degrade();
            continue;
        }

        // Poll must wake for the earliest pending respawn or unit
        // deadline even if no descriptor stirs.
        int timeout = -1;
        u64 now = nowMs();
        auto wakeAt = [&](u64 when) {
            u64 delta = when > now ? when - now : 0;
            if (timeout < 0 || u64(timeout) > delta)
                timeout = int(std::min<u64>(delta, 60000));
        };
        std::vector<pollfd> pfds;
        for (const auto &w : workers) {
            if (w.respawnPending)
                wakeAt(w.respawnDue);
            if (!w.live() || w.statsSeen)
                continue;
            pfds.push_back({w.fd, POLLIN, 0});
            if (opts.unitTimeoutMs > 0 && !w.inflight.empty())
                wakeAt(w.inflight.front().started + opts.unitTimeoutMs);
        }
        if (pfds.empty()) {
            if (timeout < 0)
                break; // nothing live, nothing scheduled
            poll(nullptr, 0, timeout);
            continue;
        }
        if (poll(pfds.data(), nfds_t(pfds.size()), timeout) < 0) {
            if (errno == EINTR)
                continue;
            fatal("poll failed: %s", std::strerror(errno));
        }
        for (const auto &p : pfds) {
            if (!(p.revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            // Resolve by *current* fd: a worker that died earlier in
            // this same sweep of pfds left a stale entry behind.
            WorkerProc *w = nullptr;
            for (auto &cand : workers)
                if (cand.live() && cand.fd == p.fd)
                    w = &cand;
            if (!w)
                continue;

            if (!wire::readFrame(w->fd, frame)) {
                workerDied(*w, WorkerExit::Cause::Lost,
                           "connection lost with " +
                               std::to_string(w->outstandingResults()) +
                               " results outstanding",
                           false);
                continue;
            }
            switch (frameType(frame)) {
              case Msg::Result: {
                ResultMsg m;
                if (!decode(frame, m) || m.index >= results.size() ||
                    have[m.index] || failed[m.index] ||
                    w->inflight.empty()) {
                    workerDied(*w, WorkerExit::Cause::Malformed,
                               "malformed or protocol-violating result",
                               true);
                    break;
                }
                results[m.index].result = m.result;
                results[m.index].traceLength = m.traceLength;
                have[m.index] = true;
                --remaining;
                ++st.jobsRun;
                if (journal.ok())
                    journal.append(frame); // same bytes as encode(m)
                // Units complete in send order; when the front unit has
                // answered all of its points, the next queued unit
                // starts executing -- its deadline clock starts now.
                if (--w->inflight.front().expect == 0) {
                    w->inflight.pop_front();
                    if (!w->inflight.empty())
                        w->inflight.front().started = nowMs();
                    if (!refill(*w))
                        workerDied(*w, WorkerExit::Cause::Lost,
                                   "write failed during refill", false);
                }
                progress.update(points.size() - remaining,
                                inflightExtra());
                break;
              }
              case Msg::Event: {
                EventMsg m;
                if (!decode(frame, m)) {
                    workerDied(*w, WorkerExit::Cause::Malformed,
                               "malformed event frame", true);
                    break;
                }
                telemetry::Tracer &tracer = telemetry::Tracer::instance();
                tracer.setProcessName(
                    m.pid, "worker slot " + std::to_string(w->slot) +
                               " spawn " + std::to_string(m.workerId));
                for (telemetry::SpanRecord &s : m.spans)
                    tracer.record(std::move(s));
                // Workers only emit Event frames when setup.telemetry
                // was on, and the driver set that from enabled().
                // vmmx_lint: allow(telemetry-guard)
                telemetry::Registry &reg = telemetry::Registry::instance();
                for (telemetry::UnitRecord &u : m.units)
                    reg.addUnit(std::move(u));
                break;
              }
              case Msg::Stats: {
                StatsMsg m;
                if (!decode(frame, m)) {
                    workerDied(*w, WorkerExit::Cause::Malformed,
                               "malformed stats frame", true);
                    break;
                }
                st.generations += m.generations;
                st.hits += m.hits;
                st.diskLoads += m.diskLoads;
                st.storeSaves += m.storeSaves;
                st.bytesResident += m.bytesResident;
                st.decodes += m.decodes;
                st.decodedHits += m.decodedHits;
                st.decodedBytes += m.decodedBytes;
                // += : the slot's earlier spawns may have reported too.
                WorkerTierStats &pw = st.perWorker[w->slot];
                pw.generations += m.generations;
                pw.hits += m.hits;
                pw.diskLoads += m.diskLoads;
                pw.decodes += m.decodes;
                pw.decodedHits += m.decodedHits;
                pw.bytesResident += m.bytesResident;
                pw.decodedBytes += m.decodedBytes;
                w->statsSeen = true;
                break;
              }
              case Msg::Error: {
                std::string what;
                decodeError(frame, what);
                workerDied(*w, WorkerExit::Cause::Error, what, false);
                break;
              }
              default:
                workerDied(*w, WorkerExit::Cause::Malformed,
                           "unexpected frame type " +
                               std::to_string(unsigned(frameType(frame))),
                           true);
            }
        }
    }

    progress.finish(points.size() - remaining);

    // ---- teardown --------------------------------------------------------
    for (auto &w : workers) {
        if (w.fd >= 0) {
            ::close(w.fd);
            w.fd = -1;
        }
        if (w.pid <= 0)
            continue; // this slot's last spawn was already reaped
        int status = 0;
        if (waitpid(w.pid, &status, 0) != w.pid)
            continue;
        w.pid = -1;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            st.exitCauses.push_back(
                {w.slot, w.spawnId, WorkerExit::Cause::Clean, "exit 0"});
            continue;
        }
        // The worker finished its jobs, then died on the way out; the
        // results are fine but the fate must not be lost (a real crash
        // in teardown code hides real bugs).
        ++st.abnormalExits;
        WorkerExit e;
        e.slot = w.slot;
        e.spawnId = w.spawnId;
        if (WIFSIGNALED(status)) {
            e.cause = WorkerExit::Cause::Signal;
            e.detail = "signal " + std::to_string(WTERMSIG(status)) +
                       " after completing its jobs";
        } else {
            e.cause = WorkerExit::Cause::Exit;
            e.detail = "exit " + std::to_string(WEXITSTATUS(status)) +
                       " after completing its jobs";
        }
        if (!opts.quiet)
            warn("worker %u (slot %u) exited abnormally after completing "
                 "its jobs (%s)", unsigned(w.spawnId), w.slot,
                 e.detail.c_str());
        st.exitCauses.push_back(std::move(e));
    }
    sigaction(SIGPIPE, &oldPipe, nullptr);
    vmmx_assert(remaining == 0, "distributed sweep lost grid points");
    return results;
}

} // namespace vmmx::dist
