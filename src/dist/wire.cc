#include "dist/wire.hh"

#include <cerrno>
#include <cstring>
#include <unistd.h>

namespace vmmx::wire
{

u64
fnv1a(const void *data, size_t n, u64 seed)
{
    const u8 *p = static_cast<const u8 *>(data);
    u64 h = seed;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

void
Writer::fixed32(u32 v)
{
    u8 raw[4];
    storeLE(raw, v);
    bytes(raw, sizeof(raw));
}

void
Writer::fixed64(u64 v)
{
    u8 raw[8];
    storeLE(raw, v);
    bytes(raw, sizeof(raw));
}

void
Writer::varint(u64 v)
{
    while (v >= 0x80) {
        byte(u8(v) | 0x80);
        v >>= 7;
    }
    byte(u8(v));
}

void
Writer::svarint(s64 v)
{
    // Zigzag: small magnitudes of either sign stay in one byte.
    varint((u64(v) << 1) ^ u64(v >> 63));
}

void
Writer::str(const std::string &s)
{
    varint(s.size());
    bytes(s.data(), s.size());
}

void
Writer::bytes(const void *data, size_t n)
{
    const u8 *p = static_cast<const u8 *>(data);
    buf_.insert(buf_.end(), p, p + n);
}

bool
Reader::need(size_t n)
{
    if (!ok_ || size_t(end_ - p_) < n) {
        ok_ = false;
        return false;
    }
    return true;
}

u8
Reader::byte()
{
    if (!need(1))
        return 0;
    return *p_++;
}

u32
Reader::fixed32()
{
    if (!need(4))
        return 0;
    u32 v = loadLE<u32>(p_);
    p_ += 4;
    return v;
}

u64
Reader::fixed64()
{
    if (!need(8))
        return 0;
    u64 v = loadLE<u64>(p_);
    p_ += 8;
    return v;
}

u64
Reader::varint()
{
    // The shift never reaches 64: groups land at shifts 0, 7, ..., 63,
    // and the tenth group (shift 63) holds exactly one payload bit.  A
    // tenth byte with more than that one bit -- high payload bits that
    // a 64-bit value cannot hold, or a continuation bit promising an
    // eleventh byte -- only ever comes from a corrupt or non-canonical
    // stream (our encoder emits at most 0x01 there), so it is rejected
    // instead of silently truncated.
    u64 v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        u8 b = byte();
        if (!ok_)
            return 0;
        if (shift == 63 && (b & 0xfe)) {
            ok_ = false;
            return 0;
        }
        v |= u64(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
    }
    ok_ = false; // unreachable: shift 63 always returns or rejects
    return 0;
}

s64
Reader::svarint()
{
    u64 z = varint();
    return s64(z >> 1) ^ -s64(z & 1);
}

std::string
Reader::str()
{
    u64 n = varint();
    if (!need(n))
        return {};
    std::string s(asChars(p_), size_t(n));
    p_ += n;
    return s;
}

namespace
{

bool
writeAll(int fd, const u8 *p, size_t n)
{
    while (n > 0) {
        ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= size_t(w);
    }
    return true;
}

/** @return 1 on success, 0 on clean EOF at the first byte, -1 on error. */
int
readAll(int fd, u8 *p, size_t n)
{
    bool first = true;
    while (n > 0) {
        ssize_t r = ::read(fd, p, n);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (r == 0)
            return first ? 0 : -1;
        first = false;
        p += r;
        n -= size_t(r);
    }
    return 1;
}

} // namespace

bool
writeFrame(int fd, const std::vector<u8> &payload)
{
    u8 hdr[4];
    storeLE(hdr, u32(payload.size()));
    return writeAll(fd, hdr, 4) &&
           writeAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, std::vector<u8> &payload)
{
    u8 hdr[4];
    if (readAll(fd, hdr, 4) != 1)
        return false;
    u32 len = loadLE<u32>(hdr);
    payload.resize(len);
    return len == 0 || readAll(fd, payload.data(), len) == 1;
}

} // namespace vmmx::wire
