/**
 * @file
 * Driver/worker message protocol for distributed sweeps.
 *
 * Transport is a byte stream (a socketpair today; the framing is
 * transport-agnostic) carrying length-prefixed frames whose payload is a
 * one-byte message type followed by a typed body.  The driver opens with
 * Setup, then streams work -- single grid points (Job) or whole trace
 * groups (JobGroup, the batched default, answered with one Result per
 * point so the journal and aggregation formats are identical in both
 * modes).  The worker answers the final Done with a Stats frame before
 * exiting.  A worker that cannot continue sends Error and exits nonzero.
 *
 *   driver -> worker : Setup, (Job | JobGroup)*, Done
 *   worker -> driver : Result*, Stats | Error
 */

#ifndef VMMX_DIST_PROTOCOL_HH
#define VMMX_DIST_PROTOCOL_HH

#include <string>
#include <vector>

#include "common/telemetry.hh"
#include "dist/wire.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"

namespace vmmx::dist
{

/** v6: each Event unit record also names the host-SIMD step-kernel
 *  path that produced it, so merged driver metrics attribute worker
 *  throughput to the right kernel.  (v5 added Event telemetry frames
 *  -- buffered spans + per-unit timing records interleaved with
 *  Results, purely observational; v4 supervised workers with spawn
 *  ordinals and fault specs; v3 the tiered-repository budgets; v2
 *  JobGroup frames.) */
constexpr u32 protocolVersion = 6;

enum class Msg : u8
{
    Setup = 1, ///< driver->worker: session parameters
    Job,       ///< driver->worker: one grid point to run
    Done,      ///< driver->worker: no more jobs; reply Stats and exit
    Result,    ///< worker->driver: finished grid point
    Stats,     ///< worker->driver: end-of-session cache statistics
    Error,     ///< worker->driver: fatal worker-side failure
    JobGroup,  ///< driver->worker: a trace group to run as one batch
    Event,     ///< worker->driver: telemetry spans + unit records
};

struct SetupMsg
{
    u32 version = protocolVersion;
    std::string storeDir;   ///< trace store directory ("" = no store)
    u64 cacheBudget = 0;    ///< worker raw-tier RAM budget (0 = unlimited)
    u64 decodedBudget = 0;  ///< worker decoded-tier budget (0 = unlimited)
    bool decoded = true;    ///< serve jobs from the decoded tier
    bool quiet = true;
    u32 workerId = 0;       ///< spawn ordinal (fault scoping, stable per
                            ///< process across respawns of a slot)
    std::string faultSpec;  ///< deterministic fault plan ("" = none);
                            ///< grammar in common/env.hh (FaultAction)
    bool telemetry = false; ///< buffer spans/unit records and forward
                            ///< them in Event frames
};

struct JobMsg
{
    u32 index = 0; ///< submission-order slot in the grid
    SweepPoint point;
};

/**
 * A whole trace group: points that replay the same trace, run by the
 * worker as one batched pass (runTraceBatch).  Answered with one Result
 * frame per entry, in entry order.
 */
struct JobGroupMsg
{
    std::vector<u32> indices; ///< submission-order slots, one per point
    std::vector<SweepPoint> points; ///< parallel to indices
};

struct ResultMsg
{
    u32 index = 0;
    u64 traceLength = 0;
    RunResult result;
};

struct StatsMsg
{
    u64 generations = 0;   ///< traces built from scratch (tier-1 fills)
    u64 hits = 0;          ///< raw-tier lookups served from RAM
    u64 diskLoads = 0;     ///< tier-1 fills served by the disk tier
    u64 storeSaves = 0;    ///< traces newly persisted to the store
    u64 bytesResident = 0; ///< raw-tier bytes resident at exit
    u64 decodes = 0;       ///< decoded-tier fills (full-trace decodes)
    u64 decodedHits = 0;   ///< decoded-tier lookups served from RAM
    u64 decodedBytes = 0;  ///< decoded-tier bytes resident at exit
};

/**
 * A batch of worker-side telemetry: buffered spans and per-unit timing
 * records, flushed after each unit and before the final Stats reply.
 * pid and workerId ride once per frame; the driver stamps them onto
 * each record when merging the fleet timeline.
 */
struct EventMsg
{
    u32 workerId = 0; ///< spawn ordinal (matches SetupMsg.workerId)
    u64 pid = 0;      ///< worker process id (timeline track key)
    std::vector<telemetry::SpanRecord> spans;
    std::vector<telemetry::UnitRecord> units;
};

std::vector<u8> encode(const SetupMsg &m);
std::vector<u8> encode(const JobMsg &m);
std::vector<u8> encode(const JobGroupMsg &m);
std::vector<u8> encodeDone();
std::vector<u8> encode(const ResultMsg &m);
std::vector<u8> encode(const StatsMsg &m);
std::vector<u8> encodeError(const std::string &what);
std::vector<u8> encode(const EventMsg &m);

/** @return the type of @p frame, or Msg(0) on an empty frame. */
Msg frameType(const std::vector<u8> &frame);

/** Decode the body of a frame whose type was already checked. */
bool decode(const std::vector<u8> &frame, SetupMsg &m);
bool decode(const std::vector<u8> &frame, JobMsg &m);
bool decode(const std::vector<u8> &frame, JobGroupMsg &m);
bool decode(const std::vector<u8> &frame, ResultMsg &m);
bool decode(const std::vector<u8> &frame, StatsMsg &m);
bool decodeError(const std::vector<u8> &frame, std::string &what);
bool decode(const std::vector<u8> &frame, EventMsg &m);

} // namespace vmmx::dist

#endif // VMMX_DIST_PROTOCOL_HH
