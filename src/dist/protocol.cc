#include "dist/protocol.hh"

#include "harness/harness_io.hh"

namespace vmmx::dist
{

namespace
{

wire::Writer
begin(Msg type)
{
    wire::Writer w;
    w.byte(static_cast<u8>(type));
    return w;
}

/** Body reader for a frame whose leading type byte was checked. */
wire::Reader
body(const std::vector<u8> &frame)
{
    return {frame.data() + 1, frame.size() - 1};
}

// Codec-lockstep guards: mirror structs that restate every field each
// codec serializes.  Adding a field to the real struct without updating
// its codec (and this mirror) fails to compile here instead of silently
// shipping a short frame.
struct SetupMsgMirror
{
    u32 version;
    std::string storeDir;
    u64 cacheBudget;
    u64 decodedBudget;
    bool decoded;
    bool quiet;
    u32 workerId;
    std::string faultSpec;
    bool telemetry;
};
static_assert(sizeof(SetupMsg) == sizeof(SetupMsgMirror),
              "SetupMsg changed: update encode/decode and the mirror");

struct JobMsgMirror
{
    u32 index;
    SweepPoint point;
};
static_assert(sizeof(JobMsg) == sizeof(JobMsgMirror),
              "JobMsg changed: update encode/decode and the mirror");

struct JobGroupMsgMirror
{
    std::vector<u32> indices;
    std::vector<SweepPoint> points;
};
static_assert(sizeof(JobGroupMsg) == sizeof(JobGroupMsgMirror),
              "JobGroupMsg changed: update encode/decode and the mirror");

struct ResultMsgMirror
{
    u32 index;
    u64 traceLength;
    RunResult result;
};
static_assert(sizeof(ResultMsg) == sizeof(ResultMsgMirror),
              "ResultMsg changed: update encode/decode and the mirror");

struct StatsMsgMirror
{
    u64 generations, hits, diskLoads, storeSaves, bytesResident, decodes,
        decodedHits, decodedBytes;
};
static_assert(sizeof(StatsMsg) == sizeof(StatsMsgMirror),
              "StatsMsg changed: update encode/decode and the mirror");

struct SpanRecordMirror
{
    std::string name;
    std::string detail;
    u64 startNs;
    u64 durNs;
    u64 pid;
    u32 tid;
    s32 workerId;
};
static_assert(sizeof(telemetry::SpanRecord) == sizeof(SpanRecordMirror),
              "SpanRecord changed: update the Event codec and mirror");

struct UnitRecordMirror
{
    u64 traceHash;
    std::string label;
    u32 points;
    u64 records;
    u64 wallNs;
    s32 workerId;
    std::string simd;
};
static_assert(sizeof(telemetry::UnitRecord) == sizeof(UnitRecordMirror),
              "UnitRecord changed: update the Event codec and mirror");

struct EventMsgMirror
{
    u32 workerId;
    u64 pid;
    std::vector<telemetry::SpanRecord> spans;
    std::vector<telemetry::UnitRecord> units;
};
static_assert(sizeof(EventMsg) == sizeof(EventMsgMirror),
              "EventMsg changed: update encode/decode and the mirror");

} // namespace

Msg
frameType(const std::vector<u8> &frame)
{
    return frame.empty() ? Msg(0) : static_cast<Msg>(frame[0]);
}

std::vector<u8>
encode(const SetupMsg &m)
{
    wire::Writer w = begin(Msg::Setup);
    w.fixed32(m.version);
    w.str(m.storeDir);
    w.varint(m.cacheBudget);
    w.varint(m.decodedBudget);
    w.boolean(m.decoded);
    w.boolean(m.quiet);
    w.fixed32(m.workerId);
    w.str(m.faultSpec);
    w.boolean(m.telemetry);
    return w.take();
}

bool
decode(const std::vector<u8> &frame, SetupMsg &m)
{
    if (frameType(frame) != Msg::Setup)
        return false;
    wire::Reader r = body(frame);
    m.version = r.fixed32();
    m.storeDir = r.str();
    m.cacheBudget = r.varint();
    m.decodedBudget = r.varint();
    m.decoded = r.boolean();
    m.quiet = r.boolean();
    m.workerId = r.fixed32();
    m.faultSpec = r.str();
    m.telemetry = r.boolean();
    return r.ok() && r.atEnd() && m.version == protocolVersion;
}

std::vector<u8>
encode(const JobMsg &m)
{
    wire::Writer w = begin(Msg::Job);
    w.fixed32(m.index);
    serialize(w, m.point);
    return w.take();
}

bool
decode(const std::vector<u8> &frame, JobMsg &m)
{
    if (frameType(frame) != Msg::Job)
        return false;
    wire::Reader r = body(frame);
    m.index = r.fixed32();
    return deserialize(r, m.point) && r.atEnd();
}

std::vector<u8>
encode(const JobGroupMsg &m)
{
    wire::Writer w = begin(Msg::JobGroup);
    w.varint(m.indices.size());
    for (size_t i = 0; i < m.indices.size(); ++i) {
        w.fixed32(m.indices[i]);
        serialize(w, m.points[i]);
    }
    return w.take();
}

bool
decode(const std::vector<u8> &frame, JobGroupMsg &m)
{
    if (frameType(frame) != Msg::JobGroup)
        return false;
    wire::Reader r = body(frame);
    u64 n = r.varint();
    if (!r.ok() || n == 0 || n > r.remaining())
        return false;
    m.indices.clear();
    m.points.clear();
    m.indices.reserve(n);
    m.points.reserve(n);
    for (u64 i = 0; i < n; ++i) {
        m.indices.push_back(r.fixed32());
        SweepPoint p;
        if (!deserialize(r, p))
            return false;
        m.points.push_back(std::move(p));
    }
    return r.ok() && r.atEnd();
}

std::vector<u8>
encodeDone()
{
    return begin(Msg::Done).take();
}

std::vector<u8>
encode(const ResultMsg &m)
{
    wire::Writer w = begin(Msg::Result);
    w.fixed32(m.index);
    w.varint(m.traceLength);
    serialize(w, m.result);
    return w.take();
}

bool
decode(const std::vector<u8> &frame, ResultMsg &m)
{
    if (frameType(frame) != Msg::Result)
        return false;
    wire::Reader r = body(frame);
    m.index = r.fixed32();
    m.traceLength = r.varint();
    return deserialize(r, m.result) && r.atEnd();
}

std::vector<u8>
encode(const StatsMsg &m)
{
    wire::Writer w = begin(Msg::Stats);
    w.varint(m.generations);
    w.varint(m.hits);
    w.varint(m.diskLoads);
    w.varint(m.storeSaves);
    w.varint(m.bytesResident);
    w.varint(m.decodes);
    w.varint(m.decodedHits);
    w.varint(m.decodedBytes);
    return w.take();
}

bool
decode(const std::vector<u8> &frame, StatsMsg &m)
{
    if (frameType(frame) != Msg::Stats)
        return false;
    wire::Reader r = body(frame);
    m.generations = r.varint();
    m.hits = r.varint();
    m.diskLoads = r.varint();
    m.storeSaves = r.varint();
    m.bytesResident = r.varint();
    m.decodes = r.varint();
    m.decodedHits = r.varint();
    m.decodedBytes = r.varint();
    return r.ok() && r.atEnd();
}

std::vector<u8>
encodeError(const std::string &what)
{
    wire::Writer w = begin(Msg::Error);
    w.str(what);
    return w.take();
}

bool
decodeError(const std::vector<u8> &frame, std::string &what)
{
    if (frameType(frame) != Msg::Error)
        return false;
    wire::Reader r = body(frame);
    what = r.str();
    return r.ok();
}

std::vector<u8>
encode(const EventMsg &m)
{
    wire::Writer w = begin(Msg::Event);
    w.fixed32(m.workerId);
    w.varint(m.pid);
    w.varint(m.spans.size());
    for (const telemetry::SpanRecord &s : m.spans) {
        w.str(s.name);
        w.str(s.detail);
        w.varint(s.startNs);
        w.varint(s.durNs);
        w.varint(s.tid);
    }
    w.varint(m.units.size());
    for (const telemetry::UnitRecord &u : m.units) {
        w.fixed64(u.traceHash);
        w.str(u.label);
        w.varint(u.points);
        w.varint(u.records);
        w.varint(u.wallNs);
        w.str(u.simd);
    }
    return w.take();
}

bool
decode(const std::vector<u8> &frame, EventMsg &m)
{
    if (frameType(frame) != Msg::Event)
        return false;
    wire::Reader r = body(frame);
    m.workerId = r.fixed32();
    m.pid = r.varint();
    u64 nSpans = r.varint();
    if (!r.ok() || nSpans > r.remaining())
        return false;
    m.spans.clear();
    m.spans.reserve(nSpans);
    for (u64 i = 0; i < nSpans; ++i) {
        telemetry::SpanRecord s;
        s.name = r.str();
        s.detail = r.str();
        s.startNs = r.varint();
        s.durNs = r.varint();
        s.tid = u32(r.varint());
        // pid/workerId ride once per frame; stamp them per record so
        // callers can merge frames from many workers into one buffer.
        s.pid = m.pid;
        s.workerId = s32(m.workerId);
        if (!r.ok())
            return false;
        m.spans.push_back(std::move(s));
    }
    u64 nUnits = r.varint();
    if (!r.ok() || nUnits > r.remaining())
        return false;
    m.units.clear();
    m.units.reserve(nUnits);
    for (u64 i = 0; i < nUnits; ++i) {
        telemetry::UnitRecord u;
        u.traceHash = r.fixed64();
        u.label = r.str();
        u.points = u32(r.varint());
        u.records = r.varint();
        u.wallNs = r.varint();
        u.simd = r.str();
        u.workerId = s32(m.workerId);
        if (!r.ok())
            return false;
        m.units.push_back(std::move(u));
    }
    return r.ok() && r.atEnd();
}

} // namespace vmmx::dist
