#include "dist/protocol.hh"

#include "harness/harness_io.hh"

namespace vmmx::dist
{

namespace
{

wire::Writer
begin(Msg type)
{
    wire::Writer w;
    w.byte(static_cast<u8>(type));
    return w;
}

/** Body reader for a frame whose leading type byte was checked. */
wire::Reader
body(const std::vector<u8> &frame)
{
    return {frame.data() + 1, frame.size() - 1};
}

} // namespace

Msg
frameType(const std::vector<u8> &frame)
{
    return frame.empty() ? Msg(0) : static_cast<Msg>(frame[0]);
}

std::vector<u8>
encode(const SetupMsg &m)
{
    wire::Writer w = begin(Msg::Setup);
    w.fixed32(m.version);
    w.str(m.storeDir);
    w.varint(m.cacheBudget);
    w.varint(m.decodedBudget);
    w.boolean(m.decoded);
    w.boolean(m.quiet);
    w.fixed32(m.workerId);
    w.str(m.faultSpec);
    return w.take();
}

bool
decode(const std::vector<u8> &frame, SetupMsg &m)
{
    if (frameType(frame) != Msg::Setup)
        return false;
    wire::Reader r = body(frame);
    m.version = r.fixed32();
    m.storeDir = r.str();
    m.cacheBudget = r.varint();
    m.decodedBudget = r.varint();
    m.decoded = r.boolean();
    m.quiet = r.boolean();
    m.workerId = r.fixed32();
    m.faultSpec = r.str();
    return r.ok() && r.atEnd() && m.version == protocolVersion;
}

std::vector<u8>
encode(const JobMsg &m)
{
    wire::Writer w = begin(Msg::Job);
    w.fixed32(m.index);
    serialize(w, m.point);
    return w.take();
}

bool
decode(const std::vector<u8> &frame, JobMsg &m)
{
    if (frameType(frame) != Msg::Job)
        return false;
    wire::Reader r = body(frame);
    m.index = r.fixed32();
    return deserialize(r, m.point) && r.atEnd();
}

std::vector<u8>
encode(const JobGroupMsg &m)
{
    wire::Writer w = begin(Msg::JobGroup);
    w.varint(m.indices.size());
    for (size_t i = 0; i < m.indices.size(); ++i) {
        w.fixed32(m.indices[i]);
        serialize(w, m.points[i]);
    }
    return w.take();
}

bool
decode(const std::vector<u8> &frame, JobGroupMsg &m)
{
    if (frameType(frame) != Msg::JobGroup)
        return false;
    wire::Reader r = body(frame);
    u64 n = r.varint();
    if (!r.ok() || n == 0 || n > r.remaining())
        return false;
    m.indices.clear();
    m.points.clear();
    m.indices.reserve(n);
    m.points.reserve(n);
    for (u64 i = 0; i < n; ++i) {
        m.indices.push_back(r.fixed32());
        SweepPoint p;
        if (!deserialize(r, p))
            return false;
        m.points.push_back(std::move(p));
    }
    return r.ok() && r.atEnd();
}

std::vector<u8>
encodeDone()
{
    return begin(Msg::Done).take();
}

std::vector<u8>
encode(const ResultMsg &m)
{
    wire::Writer w = begin(Msg::Result);
    w.fixed32(m.index);
    w.varint(m.traceLength);
    serialize(w, m.result);
    return w.take();
}

bool
decode(const std::vector<u8> &frame, ResultMsg &m)
{
    if (frameType(frame) != Msg::Result)
        return false;
    wire::Reader r = body(frame);
    m.index = r.fixed32();
    m.traceLength = r.varint();
    return deserialize(r, m.result) && r.atEnd();
}

std::vector<u8>
encode(const StatsMsg &m)
{
    wire::Writer w = begin(Msg::Stats);
    w.varint(m.generations);
    w.varint(m.hits);
    w.varint(m.diskLoads);
    w.varint(m.storeSaves);
    w.varint(m.bytesResident);
    w.varint(m.decodes);
    w.varint(m.decodedHits);
    w.varint(m.decodedBytes);
    return w.take();
}

bool
decode(const std::vector<u8> &frame, StatsMsg &m)
{
    if (frameType(frame) != Msg::Stats)
        return false;
    wire::Reader r = body(frame);
    m.generations = r.varint();
    m.hits = r.varint();
    m.diskLoads = r.varint();
    m.storeSaves = r.varint();
    m.bytesResident = r.varint();
    m.decodes = r.varint();
    m.decodedHits = r.varint();
    m.decodedBytes = r.varint();
    return r.ok() && r.atEnd();
}

std::vector<u8>
encodeError(const std::string &what)
{
    wire::Writer w = begin(Msg::Error);
    w.str(what);
    return w.take();
}

bool
decodeError(const std::vector<u8> &frame, std::string &what)
{
    if (frameType(frame) != Msg::Error)
        return false;
    wire::Reader r = body(frame);
    what = r.str();
    return r.ok();
}

} // namespace vmmx::dist
