#include "harness/sweep.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <tuple>

#include "common/logging.hh"
#include "dist/driver.hh"

namespace vmmx
{

namespace
{

bool
envFlagDefaultOn(const char *var)
{
    const char *env = std::getenv(var);
    if (!env)
        return true;
    return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
             std::strcmp(env, "false") == 0);
}

} // namespace

bool
sweepBatchFromEnv()
{
    return envFlagDefaultOn("VMMX_SWEEP_BATCH");
}

bool
sweepDecodedFromEnv()
{
    return envFlagDefaultOn("VMMX_SWEEP_DECODED");
}

std::string
SweepPoint::label() const
{
    std::string s = name + "/" + vmmx::name(kind) + "/" +
                    std::to_string(way) + "-way";
    for (const auto &key : overrides.keys())
        s += "+" + key + "=" + overrides.getString(key);
    return s;
}

TraceKey
traceKeyFor(const SweepPoint &point)
{
    switch (point.workload) {
      case SweepPoint::Workload::Kernel:
        return {false, point.name, point.kind,
                TraceRepository::kernelImageBytes,
                TraceRepository::defaultSeed};
      case SweepPoint::Workload::App:
        return {true, point.name, point.kind,
                TraceRepository::appImageBytes, TraceRepository::defaultSeed};
      case SweepPoint::Workload::Trace:
        break;
    }
    panic("explicit-trace points have no repository key");
}

std::vector<std::vector<u32>>
groupPointsByTrace(const std::vector<SweepPoint> &points,
                   const std::vector<u32> &subset)
{
    // Kernel/app points resolve through the repository by (workload,
    // name, kind) -- image size and seed are the repository defaults --
    // while explicit-trace points are identified by the trace object
    // itself.
    using Key = std::tuple<u8, std::string, u8, const void *>;
    std::map<Key, size_t> index;
    std::vector<std::vector<u32>> groups;
    for (u32 i : subset) {
        const SweepPoint &p = points[i];
        Key key{static_cast<u8>(p.workload), p.name,
                static_cast<u8>(p.kind),
                static_cast<const void *>(p.trace.get())};
        auto [it, fresh] = index.try_emplace(key, groups.size());
        if (fresh)
            groups.emplace_back();
        groups[it->second].push_back(i);
    }
    return groups;
}

std::vector<std::vector<u32>>
groupPointsByTrace(const std::vector<SweepPoint> &points)
{
    std::vector<u32> all(points.size());
    for (u32 i = 0; i < all.size(); ++i)
        all[i] = i;
    return groupPointsByTrace(points, all);
}

std::vector<std::vector<u32>>
buildSweepUnits(const std::vector<SweepPoint> &points,
                const std::vector<u32> &subset, bool batch)
{
    if (batch)
        return groupPointsByTrace(points, subset);
    std::vector<std::vector<u32>> units;
    units.reserve(subset.size());
    for (u32 i : subset)
        units.push_back({i});
    return units;
}

Sweep::Sweep(const SweepOptions &opts) : opts_(opts) {}

Sweep &
Sweep::addKernel(const std::string &name, SimdKind kind, unsigned way,
                 const Config &overrides)
{
    points_.push_back(
        {SweepPoint::Workload::Kernel, name, kind, way, overrides, nullptr});
    return *this;
}

Sweep &
Sweep::addApp(const std::string &name, SimdKind kind, unsigned way,
              const Config &overrides)
{
    points_.push_back(
        {SweepPoint::Workload::App, name, kind, way, overrides, nullptr});
    return *this;
}

Sweep &
Sweep::addTrace(SharedTrace trace, SimdKind kind, unsigned way,
                const std::string &label, const Config &overrides)
{
    vmmx_assert(trace != nullptr, "explicit sweep trace must be non-null");
    points_.push_back({SweepPoint::Workload::Trace, label, kind, way,
                       overrides, std::move(trace)});
    return *this;
}

Sweep &
Sweep::addKernelGrid(const std::vector<std::string> &names,
                     const std::vector<SimdKind> &kinds,
                     const std::vector<unsigned> &ways)
{
    for (const auto &n : names)
        for (auto k : kinds)
            for (auto w : ways)
                addKernel(n, k, w);
    return *this;
}

Sweep &
Sweep::addAppGrid(const std::vector<std::string> &names,
                  const std::vector<SimdKind> &kinds,
                  const std::vector<unsigned> &ways)
{
    for (const auto &n : names)
        for (auto k : kinds)
            for (auto w : ways)
                addApp(n, k, w);
    return *this;
}

TraceRepository &
Sweep::repo() const
{
    return opts_.repo ? *opts_.repo : TraceRepository::instance();
}

TraceRepository::TraceHandle
Sweep::resolveRaw(const SweepPoint &point) const
{
    if (point.workload == SweepPoint::Workload::Trace)
        return TraceRepository::TraceHandle(point.trace);
    return repo().raw(traceKeyFor(point));
}

TraceRepository::DecodedHandle
Sweep::resolveDecoded(const SweepPoint &point) const
{
    if (point.workload == SweepPoint::Workload::Trace)
        return repo().decoded(point.trace);
    return repo().decoded(traceKeyFor(point));
}

std::vector<RunResult>
Sweep::resolveAndRun(const SweepPoint &lead,
                     std::span<const MachineConfig> machines,
                     bool useDecoded, u64 &traceLength) const
{
    // The one place that picks a trace tier and replays it: resolve
    // lead's trace once (decoded tier-2 stream, or raw with on-the-fly
    // decode) and step every machine through it.
    if (useDecoded) {
        TraceRepository::DecodedHandle stream = resolveDecoded(lead);
        traceLength = stream.records();
        return runTraceBatch(machines, stream.stream());
    }
    TraceRepository::TraceHandle trace = resolveRaw(lead);
    traceLength = trace->size();
    return runTraceBatch(machines, *trace);
}

SweepResult
Sweep::runPoint(const SweepPoint &point, bool useDecoded) const
{
    MachineConfig machine = makeMachine(point.kind, point.way,
                                        point.overrides);
    SweepResult r;
    r.point = point;
    r.result = resolveAndRun(point, {&machine, 1}, useDecoded,
                             r.traceLength)[0];
    return r;
}

void
Sweep::runGroup(const std::vector<u32> &group,
                std::vector<SweepResult> &results) const
{
    // One trace resolution and one trace pass for the whole group; with
    // the decoded tier on, even the decode happened at most once per
    // process, not once per group.
    std::vector<MachineConfig> machines;
    machines.reserve(group.size());
    for (u32 i : group)
        machines.push_back(makeMachine(points_[i].kind, points_[i].way,
                                       points_[i].overrides));
    u64 traceLength = 0;
    std::vector<RunResult> runs = resolveAndRun(
        points_[group[0]], machines, opts_.decoded, traceLength);
    for (size_t k = 0; k < group.size(); ++k) {
        SweepResult &r = results[group[k]];
        r.point = points_[group[k]];
        r.traceLength = traceLength;
        r.result = runs[k];
    }
}

std::vector<SweepResult>
Sweep::runSerial() const
{
    // The determinism baseline: per-point jobs that decode on the fly,
    // bypassing the decoded tier entirely (but still resolving raw
    // traces through the repository).
    std::vector<SweepResult> results;
    results.reserve(points_.size());
    for (const auto &point : points_)
        results.push_back(runPoint(point, /*useDecoded=*/false));
    return results;
}

std::vector<SweepResult>
Sweep::run() const
{
    if (opts_.processes > 0) {
        dist::DistOptions dopts;
        dopts.processes = opts_.processes;
        dopts.storeDir = opts_.storeDir;
        dopts.journalPath = opts_.journalPath;
        dopts.batch = opts_.batch;
        dopts.decoded = opts_.decoded;
        return dist::runSweep(points_, dopts, opts_.distStats);
    }

    // The schedulable unit is a trace group (batched, the default) or a
    // single point (batch off).
    std::vector<u32> all(points_.size());
    for (u32 i = 0; i < all.size(); ++i)
        all[i] = i;
    std::vector<std::vector<u32>> units =
        buildSweepUnits(points_, all, opts_.batch);

    unsigned threads = opts_.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    threads = std::min<unsigned>(threads, unsigned(units.size()));

    if (threads <= 1) {
        std::vector<SweepResult> results(points_.size());
        for (const auto &unit : units) {
            if (opts_.batch)
                runGroup(unit, results);
            else
                results[unit[0]] = runPoint(points_[unit[0]], opts_.decoded);
        }
        return results;
    }

    // Jobs are independent (per-configuration MemorySystem/SimContext,
    // immutable shared trace artifacts); workers pull the next undone
    // unit and write into its submission-order slots, so the result
    // vector is deterministic.
    std::vector<SweepResult> results(points_.size());
    std::atomic<size_t> next{0};
    auto worker = [&]() {
        for (size_t u = next.fetch_add(1); u < units.size();
             u = next.fetch_add(1)) {
            if (opts_.batch)
                runGroup(units[u], results);
            else
                results[units[u][0]] = runPoint(points_[units[u][0]], opts_.decoded);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    return results;
}

std::vector<SweepResult>
sweepTrace(const SharedTrace &trace, SimdKind kind,
           const std::vector<unsigned> &ways, const SweepOptions &opts)
{
    Sweep sweep(opts);
    for (unsigned w : ways)
        sweep.addTrace(trace, kind, w);
    return sweep.run();
}

} // namespace vmmx
