#include "harness/sweep.hh"

#include <map>
#include <tuple>

#include "common/env.hh"
#include "common/logging.hh"
#include "harness/executor.hh"

namespace vmmx
{

bool
sweepBatchFromEnv()
{
    return env::flag("VMMX_SWEEP_BATCH", true);
}

bool
sweepDecodedFromEnv()
{
    return env::flag("VMMX_SWEEP_DECODED", true);
}

std::string
SweepPoint::label() const
{
    std::string s = name + "/" + vmmx::name(kind) + "/" +
                    std::to_string(way) + "-way";
    for (const auto &key : overrides.keys())
        s += "+" + key + "=" + overrides.getString(key);
    return s;
}

TraceKey
traceKeyFor(const SweepPoint &point)
{
    switch (point.workload) {
      case SweepPoint::Workload::Kernel:
        return {false, point.name, point.kind,
                TraceRepository::kernelImageBytes,
                TraceRepository::defaultSeed};
      case SweepPoint::Workload::App:
        return {true, point.name, point.kind,
                TraceRepository::appImageBytes, TraceRepository::defaultSeed};
      case SweepPoint::Workload::Trace:
        break;
    }
    panic("explicit-trace points have no repository key");
}

std::vector<std::vector<u32>>
groupPointsByTrace(const std::vector<SweepPoint> &points,
                   const std::vector<u32> &subset)
{
    // Kernel/app points resolve through the repository by (workload,
    // name, kind) -- image size and seed are the repository defaults --
    // while explicit-trace points are identified by the trace object
    // itself.
    using Key = std::tuple<u8, std::string, u8, const void *>;
    std::map<Key, size_t> index;
    std::vector<std::vector<u32>> groups;
    for (u32 i : subset) {
        const SweepPoint &p = points[i];
        Key key{static_cast<u8>(p.workload), p.name,
                static_cast<u8>(p.kind),
                static_cast<const void *>(p.trace.get())};
        auto [it, fresh] = index.try_emplace(key, groups.size());
        if (fresh)
            groups.emplace_back();
        groups[it->second].push_back(i);
    }
    return groups;
}

std::vector<std::vector<u32>>
groupPointsByTrace(const std::vector<SweepPoint> &points)
{
    std::vector<u32> all(points.size());
    for (u32 i = 0; i < all.size(); ++i)
        all[i] = i;
    return groupPointsByTrace(points, all);
}

std::vector<std::vector<u32>>
buildSweepUnits(const std::vector<SweepPoint> &points,
                const std::vector<u32> &subset, bool batch)
{
    if (batch)
        return groupPointsByTrace(points, subset);
    std::vector<std::vector<u32>> units;
    units.reserve(subset.size());
    for (u32 i : subset)
        units.push_back({i});
    return units;
}

Sweep::Sweep(const SweepOptions &opts) : opts_(opts) {}

Sweep &
Sweep::addKernel(const std::string &name, SimdKind kind, unsigned way,
                 const Config &overrides)
{
    points_.push_back(
        {SweepPoint::Workload::Kernel, name, kind, way, overrides, nullptr});
    return *this;
}

Sweep &
Sweep::addApp(const std::string &name, SimdKind kind, unsigned way,
              const Config &overrides)
{
    points_.push_back(
        {SweepPoint::Workload::App, name, kind, way, overrides, nullptr});
    return *this;
}

Sweep &
Sweep::addTrace(SharedTrace trace, SimdKind kind, unsigned way,
                const std::string &label, const Config &overrides)
{
    vmmx_assert(trace != nullptr, "explicit sweep trace must be non-null");
    points_.push_back({SweepPoint::Workload::Trace, label, kind, way,
                       overrides, std::move(trace)});
    return *this;
}

Sweep &
Sweep::addKernelGrid(const std::vector<std::string> &names,
                     const std::vector<SimdKind> &kinds,
                     const std::vector<unsigned> &ways)
{
    for (const auto &n : names)
        for (auto k : kinds)
            for (auto w : ways)
                addKernel(n, k, w);
    return *this;
}

Sweep &
Sweep::addAppGrid(const std::vector<std::string> &names,
                  const std::vector<SimdKind> &kinds,
                  const std::vector<unsigned> &ways)
{
    for (const auto &n : names)
        for (auto k : kinds)
            for (auto w : ways)
                addApp(n, k, w);
    return *this;
}

ExecutionPolicy
Sweep::policy() const
{
    // fromEnv() keeps the legacy defaults (budgets, store) for knobs
    // SweepOptions never carried; the explicit options win elsewhere.
    ExecutionPolicy policy = ExecutionPolicy::fromEnv();
    policy.backend = opts_.processes > 0
                         ? ExecutionPolicy::Backend::Process
                         : ExecutionPolicy::Backend::ThreadPool;
    policy.threads = opts_.threads;
    policy.processes = opts_.processes;
    policy.batch = opts_.batch;
    policy.decoded = opts_.decoded;
    policy.repo = opts_.repo;
    if (!opts_.storeDir.empty())
        policy.storeDir = opts_.storeDir;
    policy.journalPath = opts_.journalPath;
    policy.distStats = opts_.distStats;
    return policy;
}

std::vector<SweepResult>
Sweep::runSerial() const
{
    // The determinism baseline: per-point jobs that decode on the fly,
    // bypassing the decoded tier entirely (but still resolving raw
    // traces through the repository).
    ExecutionPolicy serial = policy();
    std::vector<SweepResult> results;
    results.reserve(points_.size());
    for (const auto &point : points_)
        results.push_back(runSweepPoint(point, serial,
                                        /*useDecoded=*/false));
    return results;
}

std::vector<SweepResult>
Sweep::run() const
{
    return runPoints(points_, policy());
}

std::vector<SweepResult>
sweepTrace(const SharedTrace &trace, SimdKind kind,
           const std::vector<unsigned> &ways, const SweepOptions &opts)
{
    Sweep sweep(opts);
    for (unsigned w : ways)
        sweep.addTrace(trace, kind, w);
    return sweep.run();
}

} // namespace vmmx
