#include "harness/sweep.hh"

#include <atomic>
#include <thread>

#include "common/logging.hh"
#include "dist/driver.hh"

namespace vmmx
{

std::string
SweepPoint::label() const
{
    std::string s = name + "/" + vmmx::name(kind) + "/" +
                    std::to_string(way) + "-way";
    for (const auto &key : overrides.keys())
        s += "+" + key + "=" + overrides.getString(key);
    return s;
}

Sweep::Sweep(const SweepOptions &opts) : opts_(opts) {}

Sweep &
Sweep::addKernel(const std::string &name, SimdKind kind, unsigned way,
                 const Config &overrides)
{
    points_.push_back(
        {SweepPoint::Workload::Kernel, name, kind, way, overrides, nullptr});
    return *this;
}

Sweep &
Sweep::addApp(const std::string &name, SimdKind kind, unsigned way,
              const Config &overrides)
{
    points_.push_back(
        {SweepPoint::Workload::App, name, kind, way, overrides, nullptr});
    return *this;
}

Sweep &
Sweep::addTrace(SharedTrace trace, SimdKind kind, unsigned way,
                const std::string &label, const Config &overrides)
{
    vmmx_assert(trace != nullptr, "explicit sweep trace must be non-null");
    points_.push_back({SweepPoint::Workload::Trace, label, kind, way,
                       overrides, std::move(trace)});
    return *this;
}

Sweep &
Sweep::addKernelGrid(const std::vector<std::string> &names,
                     const std::vector<SimdKind> &kinds,
                     const std::vector<unsigned> &ways)
{
    for (const auto &n : names)
        for (auto k : kinds)
            for (auto w : ways)
                addKernel(n, k, w);
    return *this;
}

Sweep &
Sweep::addAppGrid(const std::vector<std::string> &names,
                  const std::vector<SimdKind> &kinds,
                  const std::vector<unsigned> &ways)
{
    for (const auto &n : names)
        for (auto k : kinds)
            for (auto w : ways)
                addApp(n, k, w);
    return *this;
}

SharedTrace
Sweep::resolve(const SweepPoint &point) const
{
    TraceCache &cache = opts_.cache ? *opts_.cache : TraceCache::instance();
    switch (point.workload) {
      case SweepPoint::Workload::Kernel:
        return cache.kernel(point.name, point.kind);
      case SweepPoint::Workload::App:
        return cache.app(point.name, point.kind);
      case SweepPoint::Workload::Trace:
        return point.trace;
    }
    panic("unknown sweep workload");
}

SweepResult
Sweep::runPoint(const SweepPoint &point) const
{
    SharedTrace trace = resolve(point);
    MachineConfig machine = makeMachine(point.kind, point.way,
                                        point.overrides);
    SweepResult r;
    r.point = point;
    r.traceLength = trace->size();
    r.result = runTrace(machine, *trace);
    return r;
}

std::vector<SweepResult>
Sweep::runSerial() const
{
    std::vector<SweepResult> results;
    results.reserve(points_.size());
    for (const auto &p : points_)
        results.push_back(runPoint(p));
    return results;
}

std::vector<SweepResult>
Sweep::run() const
{
    if (opts_.processes > 0) {
        dist::DistOptions dopts;
        dopts.processes = opts_.processes;
        dopts.storeDir = opts_.storeDir;
        dopts.journalPath = opts_.journalPath;
        return dist::runSweep(points_, dopts, opts_.distStats);
    }

    unsigned threads = opts_.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    threads = std::min<unsigned>(threads, points_.size());
    if (threads <= 1)
        return runSerial();

    // Jobs are independent (per-job MemorySystem/OoOCore, immutable shared
    // traces); workers pull the next undone index and write into their
    // submission-order slot, so the result vector is deterministic.
    std::vector<SweepResult> results(points_.size());
    std::atomic<size_t> next{0};
    auto worker = [&]() {
        for (size_t i = next.fetch_add(1); i < points_.size();
             i = next.fetch_add(1)) {
            results[i] = runPoint(points_[i]);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    return results;
}

std::vector<SweepResult>
sweepTrace(const SharedTrace &trace, SimdKind kind,
           const std::vector<unsigned> &ways, const SweepOptions &opts)
{
    Sweep sweep(opts);
    for (unsigned w : ways)
        sweep.addTrace(trace, kind, w);
    return sweep.run();
}

} // namespace vmmx
