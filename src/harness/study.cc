#include "harness/study.hh"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "harness/harness_io.hh"

namespace vmmx
{

namespace
{

constexpr double nan = std::numeric_limits<double>::quiet_NaN();

/** Metrics rendered as integers rather than fixed-point decimals. */
bool
integralMetric(ReportSpec::Metric m)
{
    switch (m) {
      case ReportSpec::Metric::Cycles:
      case ReportSpec::Metric::Instructions:
      case ReportSpec::Metric::ScalarCycles:
      case ReportSpec::Metric::VectorCycles:
        return true;
      default:
        return false;
    }
}

std::string
metricCell(ReportSpec::Metric m, double v, int precision)
{
    if (std::isnan(v))
        return "-";
    if (integralMetric(m))
        return std::to_string(u64(v));
    return TextTable::num(v, precision);
}

/** First result replaying (@p workload, @p wname) on a (kind, way)
 *  machine; override sets are ignored (first match wins). */
const SweepResult *
findResult(const std::vector<SweepResult> &results,
           SweepPoint::Workload workload, const std::string &wname,
           SimdKind kind, unsigned way)
{
    for (const auto &r : results) {
        if (r.point.workload == workload && r.point.name == wname &&
            r.point.kind == kind && r.point.way == way)
            return &r;
    }
    return nullptr;
}

} // namespace

// ---- names ---------------------------------------------------------------

const char *
name(ReportSpec::Metric m)
{
    switch (m) {
      case ReportSpec::Metric::Cycles: return "cycles";
      case ReportSpec::Metric::Instructions: return "insts";
      case ReportSpec::Metric::Ipc: return "ipc";
      case ReportSpec::Metric::Speedup: return "speedup";
      case ReportSpec::Metric::ScalarCycles: return "scalar_cycles";
      case ReportSpec::Metric::VectorCycles: return "vector_cycles";
      case ReportSpec::Metric::VectorPct: return "vector_pct";
      case ReportSpec::Metric::ScalarOfBase: return "scalar_of_base";
      case ReportSpec::Metric::VectorOfBase: return "vector_of_base";
      case ReportSpec::Metric::TotalOfBase: return "total_of_base";
    }
    panic("bad metric %d", int(m));
}

bool
parseMetric(const std::string &text, ReportSpec::Metric &m)
{
    for (int i = 0; i <= int(ReportSpec::Metric::TotalOfBase); ++i) {
        if (text == name(ReportSpec::Metric(i))) {
            m = ReportSpec::Metric(i);
            return true;
        }
    }
    return false;
}

const char *
name(ReportSpec::Layout l)
{
    switch (l) {
      case ReportSpec::Layout::Points: return "points";
      case ReportSpec::Layout::Pivot: return "pivot";
    }
    panic("bad layout %d", int(l));
}

bool
parseLayout(const std::string &text, ReportSpec::Layout &l)
{
    if (text == "points")
        l = ReportSpec::Layout::Points;
    else if (text == "pivot")
        l = ReportSpec::Layout::Pivot;
    else
        return false;
    return true;
}

// ---- derived metrics -----------------------------------------------------

double
metricValue(ReportSpec::Metric m, const SweepResult &r,
            const SweepResult *baseline)
{
    const RunStats &core = r.result.core;
    double scalar = double(core.scalarCycles);
    double vector = double(core.vectorCycles);
    double total = scalar + vector;
    // Figure 6 normalises to the baseline's scalar+vector total, not
    // its headline cycle count, so the *OfBase metrics do too.
    double baseTotal =
        baseline ? double(baseline->result.core.scalarCycles) +
                       double(baseline->result.core.vectorCycles)
                 : 0.0;
    switch (m) {
      case ReportSpec::Metric::Cycles:
        return double(r.cycles());
      case ReportSpec::Metric::Instructions:
        return double(core.instructions);
      case ReportSpec::Metric::Ipc:
        return core.ipc();
      case ReportSpec::Metric::Speedup:
        return baseline && r.cycles()
                   ? double(baseline->cycles()) / double(r.cycles())
                   : nan;
      case ReportSpec::Metric::ScalarCycles:
        return scalar;
      case ReportSpec::Metric::VectorCycles:
        return vector;
      case ReportSpec::Metric::VectorPct:
        return total ? 100.0 * vector / total : nan;
      case ReportSpec::Metric::ScalarOfBase:
        return baseTotal ? 100.0 * scalar / baseTotal : nan;
      case ReportSpec::Metric::VectorOfBase:
        return baseTotal ? 100.0 * vector / baseTotal : nan;
      case ReportSpec::Metric::TotalOfBase:
        return baseTotal ? 100.0 * total / baseTotal : nan;
    }
    panic("bad metric %d", int(m));
}

// ---- facade --------------------------------------------------------------

Study
Study::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open study spec '%s'", path.c_str());
    // read() (unlike streambuf insertion) sets badbit on an I/O error,
    // so a failing disk cannot silently hand us a truncated spec.
    std::string text;
    char buf[4096];
    while (in.read(buf, sizeof(buf)) || in.gcount() > 0)
        text.append(buf, size_t(in.gcount()));
    if (in.bad())
        fatal("error reading study spec '%s'", path.c_str());
    StudySpec spec;
    std::string err;
    if (!parseStudySpec(text, spec, err))
        fatal("%s: %s", path.c_str(), err.c_str());
    return Study(std::move(spec));
}

Study
Study::fromSpecText(const std::string &text)
{
    StudySpec spec;
    std::string err;
    if (!parseStudySpec(text, spec, err))
        fatal("study spec: %s", err.c_str());
    return Study(std::move(spec));
}

std::string
Study::specText() const
{
    return formatStudySpec(spec_);
}

std::vector<SweepPoint>
Study::points() const
{
    // One implicit empty override set keeps the cross product uniform.
    static const std::vector<Config> unmodified = {Config()};
    const std::vector<Config> &sets =
        spec_.overrideSets.empty() ? unmodified : spec_.overrideSets;

    std::vector<SweepPoint> points;
    auto add = [&](SweepPoint::Workload workload, const std::string &name) {
        for (SimdKind kind : spec_.kinds)
            for (unsigned way : spec_.ways)
                for (const Config &overrides : sets)
                    points.push_back(
                        {workload, name, kind, way, overrides, nullptr});
    };
    for (const auto &k : spec_.kernels)
        add(SweepPoint::Workload::Kernel, k);
    for (const auto &a : spec_.apps)
        add(SweepPoint::Workload::App, a);
    return points;
}

std::vector<SweepResult>
Study::run() const
{
    return runPoints(points(), spec_.exec);
}

const SweepResult *
Study::baselineFor(const ReportSpec &report,
                   const std::vector<SweepResult> &results,
                   const SweepResult &r)
{
    const SweepResult *fallback = nullptr;
    for (const auto &c : results) {
        if (c.point.workload != r.point.workload ||
            c.point.name != r.point.name ||
            c.point.kind != report.baselineKind ||
            c.point.way != report.baselineWay)
            continue;
        if (c.point.overrides == r.point.overrides)
            return &c;
        if (!fallback && c.point.overrides.keys().empty())
            fallback = &c;
    }
    return fallback;
}

void
Study::writeReport(std::ostream &os,
                   const std::vector<SweepResult> &results) const
{
    const ReportSpec &report = spec_.report;

    if (report.layout == ReportSpec::Layout::Points) {
        std::vector<std::string> header = {"point"};
        for (auto m : report.metrics)
            header.push_back(name(m));
        TextTable table(std::move(header));
        for (const auto &r : results) {
            const SweepResult *base = baselineFor(report, results, r);
            std::vector<std::string> row = {r.point.label()};
            for (auto m : report.metrics)
                row.push_back(metricCell(m, metricValue(m, r, base),
                                         report.precision));
            table.addRow(std::move(row));
        }
        table.print(os);
        return;
    }

    // Pivot: one table per workload, rows = widths, columns = flavours.
    // Cells are found by (workload, kind, way) alone, so with several
    // override sets only the first set's results are shown.
    if (spec_.overrideSets.size() > 1)
        warn("pivot report shows only the first of %zu override sets "
             "per cell; use layout = points for ablation grids",
             spec_.overrideSets.size());
    std::vector<std::pair<SweepPoint::Workload, std::string>> workloads;
    for (const auto &k : spec_.kernels)
        workloads.emplace_back(SweepPoint::Workload::Kernel, k);
    for (const auto &a : spec_.apps)
        workloads.emplace_back(SweepPoint::Workload::App, a);

    std::vector<std::string> header = {"config"};
    for (SimdKind kind : spec_.kinds)
        header.push_back(name(kind));

    auto cellValue = [&](const std::pair<SweepPoint::Workload,
                                         std::string> &w,
                         SimdKind kind, unsigned way) {
        const SweepResult *r =
            findResult(results, w.first, w.second, kind, way);
        if (!r)
            return nan;
        return metricValue(report.pivot, *r,
                           baselineFor(report, results, *r));
    };

    for (const auto &w : workloads) {
        os << w.second << ":\n";
        TextTable table(header);
        for (unsigned way : spec_.ways) {
            std::vector<std::string> row = {std::to_string(way) + "-way"};
            for (SimdKind kind : spec_.kinds)
                row.push_back(metricCell(report.pivot,
                                         cellValue(w, kind, way),
                                         report.precision));
            table.addRow(std::move(row));
        }
        table.print(os);
        os << '\n';
    }

    if (report.geomean && !workloads.empty()) {
        os << "average (geometric mean over the " << workloads.size()
           << " workloads):\n";
        TextTable avg(header);
        for (unsigned way : spec_.ways) {
            std::vector<std::string> row = {std::to_string(way) + "-way"};
            for (SimdKind kind : spec_.kinds) {
                double logSum = 0;
                size_t n = 0;
                for (const auto &w : workloads) {
                    double v = cellValue(w, kind, way);
                    if (!std::isnan(v) && v > 0) {
                        logSum += std::log(v);
                        ++n;
                    }
                }
                row.push_back(metricCell(
                    report.pivot, n ? std::exp(logSum / double(n)) : nan,
                    report.precision));
            }
            avg.addRow(std::move(row));
        }
        avg.print(os);
    }
}

} // namespace vmmx
