#include "harness/harness_io.hh"

#include <map>

#include "trace/trace_io.hh"

namespace vmmx
{

// ---- codec lockstep guards ----------------------------------------------
// The wire layer must serialize every field of these structs, and the
// distributed determinism guarantee rests on that: a field added to
// RunStats or RunResult but not to the codecs below would silently
// decode as zero on the driver side.  The struct sizes below are the
// serialized field counts times the field width (every member is a u64
// or an array of u64, so there is no padding); a new field trips the
// assert until the matching serialize()/deserialize() pair -- and the
// count here -- are updated together.
constexpr size_t runStatsWireFields = 10 + numInstClasses;
static_assert(sizeof(RunStats) == runStatsWireFields * sizeof(u64),
              "RunStats gained or lost a field: update serialize()/"
              "deserialize() and runStatsWireFields in lockstep");

constexpr size_t runResultOwnWireFields = 6; // memory-system counters
static_assert(sizeof(RunResult) ==
                  sizeof(RunStats) + runResultOwnWireFields * sizeof(u64),
              "RunResult gained or lost a field: update serialize()/"
              "deserialize() and runResultOwnWireFields in lockstep");

// Config serializes its whole key/value map, so any new state would be a
// new member next to it -- which this size check catches.
static_assert(sizeof(Config) == sizeof(std::map<std::string, std::string>),
              "Config gained a member the key/value codec cannot see: "
              "extend serialize()/deserialize() and this guard");

void
serialize(wire::Writer &w, const Config &c)
{
    auto keys = c.keys();
    w.varint(keys.size());
    for (const auto &k : keys) {
        w.str(k);
        w.str(c.getString(k));
    }
}

bool
deserialize(wire::Reader &r, Config &c)
{
    c = Config();
    u64 n = r.varint();
    if (n > r.remaining())
        return false;
    for (u64 i = 0; i < n; ++i) {
        std::string k = r.str();
        std::string v = r.str();
        if (!r.ok())
            return false;
        c.set(k, v);
    }
    return r.ok();
}

void
serialize(wire::Writer &w, const RunStats &s)
{
    w.varint(s.cycles);
    w.varint(s.instructions);
    for (u64 v : s.instByClass)
        w.varint(v);
    w.varint(s.scalarCycles);
    w.varint(s.vectorCycles);
    w.varint(s.branches);
    w.varint(s.mispredicts);
    w.varint(s.memOps);
    w.varint(s.renameStallRegs);
    w.varint(s.renameStallRob);
    w.varint(s.renameStallIq);
}

bool
deserialize(wire::Reader &r, RunStats &s)
{
    s.cycles = r.varint();
    s.instructions = r.varint();
    for (u64 &v : s.instByClass)
        v = r.varint();
    s.scalarCycles = r.varint();
    s.vectorCycles = r.varint();
    s.branches = r.varint();
    s.mispredicts = r.varint();
    s.memOps = r.varint();
    s.renameStallRegs = r.varint();
    s.renameStallRob = r.varint();
    s.renameStallIq = r.varint();
    return r.ok();
}

void
serialize(wire::Writer &w, const RunResult &res)
{
    serialize(w, res.core);
    w.varint(res.l1Hits);
    w.varint(res.l1Misses);
    w.varint(res.l2Hits);
    w.varint(res.l2Misses);
    w.varint(res.vecAccesses);
    w.varint(res.cohInvalidations);
}

bool
deserialize(wire::Reader &r, RunResult &res)
{
    if (!deserialize(r, res.core))
        return false;
    res.l1Hits = r.varint();
    res.l1Misses = r.varint();
    res.l2Hits = r.varint();
    res.l2Misses = r.varint();
    res.vecAccesses = r.varint();
    res.cohInvalidations = r.varint();
    return r.ok();
}

void
serialize(wire::Writer &w, const SweepPoint &p)
{
    w.byte(static_cast<u8>(p.workload));
    w.str(p.name);
    w.byte(static_cast<u8>(p.kind));
    w.varint(p.way);
    serialize(w, p.overrides);
    // Explicit-trace points ship the trace itself: a worker process has
    // no other way to reconstruct a caller-built program.  This costs
    // one full encode per grid point sharing the trace (plus one in
    // gridSignature); if explicit-trace grids ever grow beyond a few
    // ways, spill the trace to the TraceStore once and ship its key.
    w.boolean(p.trace != nullptr);
    if (p.trace)
        encodeTrace(*p.trace, w);
}

bool
deserialize(wire::Reader &r, SweepPoint &p)
{
    u8 workload = r.byte();
    if (workload > static_cast<u8>(SweepPoint::Workload::Trace))
        return false;
    p.workload = static_cast<SweepPoint::Workload>(workload);
    p.name = r.str();
    u8 kind = r.byte();
    if (kind > static_cast<u8>(SimdKind::VMMX128))
        return false;
    p.kind = static_cast<SimdKind>(kind);
    p.way = unsigned(r.varint());
    if (!deserialize(r, p.overrides))
        return false;
    p.trace = nullptr;
    if (r.boolean()) {
        auto t = std::make_shared<std::vector<InstRecord>>();
        if (!decodeTrace(r, *t))
            return false;
        p.trace = std::move(t);
    }
    return r.ok();
}

} // namespace vmmx
