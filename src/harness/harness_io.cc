#include "harness/harness_io.hh"

#include <map>
#include <sstream>

#include "common/env.hh"
#include "dist/driver.hh"
#include "trace/trace_io.hh"

namespace vmmx
{

// ---- codec lockstep guards ----------------------------------------------
// The wire layer must serialize every field of these structs, and the
// distributed determinism guarantee rests on that: a field added to
// RunStats or RunResult but not to the codecs below would silently
// decode as zero on the driver side.  The struct sizes below are the
// serialized field counts times the field width (every member is a u64
// or an array of u64, so there is no padding); a new field trips the
// assert until the matching serialize()/deserialize() pair -- and the
// count here -- are updated together.
constexpr size_t runStatsWireFields = 10 + numInstClasses;
static_assert(sizeof(RunStats) == runStatsWireFields * sizeof(u64),
              "RunStats gained or lost a field: update serialize()/"
              "deserialize() and runStatsWireFields in lockstep");

constexpr size_t runResultOwnWireFields = 6; // memory-system counters
static_assert(sizeof(RunResult) ==
                  sizeof(RunStats) + runResultOwnWireFields * sizeof(u64),
              "RunResult gained or lost a field: update serialize()/"
              "deserialize() and runResultOwnWireFields in lockstep");

// Config serializes its whole key/value map, so any new state would be a
// new member next to it -- which this size check catches.
static_assert(sizeof(Config) == sizeof(std::map<std::string, std::string>),
              "Config gained a member the key/value codec cannot see: "
              "extend serialize()/deserialize() and this guard");

// ExecutionPolicy and DistStats have members of mixed widths, so their
// guards are member-for-member mirror structs: identical member types in
// identical order guarantee identical sizeof, and a field added to the
// real struct but not here (and not to its codec/report) trips the
// assert.  ExecutionPolicy's declarative fields round-trip through the
// [exec] spec section (formatStudySpec/parseStudySpec below); DistStats
// feeds its own summary() and the vmmx_sweepd per-worker report.
namespace
{

struct ExecutionPolicyMirror
{
    ExecutionPolicy::Backend backend;
    unsigned threads;
    unsigned processes;
    bool batch;
    bool decoded;
    u64 rawBudget;
    u64 decodedBudget;
    std::string storeDir;
    std::string journalPath;
    unsigned maxRespawns;
    u64 unitTimeoutMs;
    unsigned maxUnitAttempts;
    TraceRepository *repo;
    dist::DistStats *distStats;
    std::string execPath;
    std::vector<std::string> execArgs;
};

struct SweepPointMirror
{
    SweepPoint::Workload workload;
    std::string name;
    SimdKind kind;
    unsigned way;
    Config overrides;
    SharedTrace trace;
};

struct DistStatsMirror
{
    u64 generations, hits, diskLoads, storeSaves, bytesResident, decodes,
        decodedHits, decodedBytes;
    std::vector<dist::WorkerTierStats> perWorker;
    u64 jobsRun, jobsResumed, groupsRun, steals;
    unsigned workers;
    u64 respawns, reassignedUnits, retries, quarantinedUnits;
    std::vector<u32> quarantinedPoints;
    bool degraded;
    u64 degradedJobs, abnormalExits, journalSkipped;
    std::vector<dist::WorkerExit> exitCauses;
};

} // namespace

static_assert(sizeof(SweepPoint) == sizeof(SweepPointMirror),
              "SweepPoint gained or lost a field: update serialize()/"
              "deserialize(), label(), and this mirror in lockstep");

static_assert(sizeof(ExecutionPolicy) == sizeof(ExecutionPolicyMirror),
              "ExecutionPolicy gained or lost a field: update the [exec] "
              "spec codec, operator==, ProcessExecutor's DistOptions "
              "mapping, and this mirror in lockstep");

static_assert(sizeof(dist::DistStats) == sizeof(DistStatsMirror),
              "DistStats gained or lost a field: update summary(), the "
              "vmmx_sweepd report, and this mirror in lockstep");

void
serialize(wire::Writer &w, const Config &c)
{
    auto keys = c.keys();
    w.varint(keys.size());
    for (const auto &k : keys) {
        w.str(k);
        w.str(c.getString(k));
    }
}

bool
deserialize(wire::Reader &r, Config &c)
{
    c = Config();
    u64 n = r.varint();
    if (n > r.remaining())
        return false;
    for (u64 i = 0; i < n; ++i) {
        std::string k = r.str();
        std::string v = r.str();
        if (!r.ok())
            return false;
        c.set(k, v);
    }
    return r.ok();
}

void
serialize(wire::Writer &w, const RunStats &s)
{
    w.varint(s.cycles);
    w.varint(s.instructions);
    for (u64 v : s.instByClass)
        w.varint(v);
    w.varint(s.scalarCycles);
    w.varint(s.vectorCycles);
    w.varint(s.branches);
    w.varint(s.mispredicts);
    w.varint(s.memOps);
    w.varint(s.renameStallRegs);
    w.varint(s.renameStallRob);
    w.varint(s.renameStallIq);
}

bool
deserialize(wire::Reader &r, RunStats &s)
{
    s.cycles = r.varint();
    s.instructions = r.varint();
    for (u64 &v : s.instByClass)
        v = r.varint();
    s.scalarCycles = r.varint();
    s.vectorCycles = r.varint();
    s.branches = r.varint();
    s.mispredicts = r.varint();
    s.memOps = r.varint();
    s.renameStallRegs = r.varint();
    s.renameStallRob = r.varint();
    s.renameStallIq = r.varint();
    return r.ok();
}

void
serialize(wire::Writer &w, const RunResult &res)
{
    serialize(w, res.core);
    w.varint(res.l1Hits);
    w.varint(res.l1Misses);
    w.varint(res.l2Hits);
    w.varint(res.l2Misses);
    w.varint(res.vecAccesses);
    w.varint(res.cohInvalidations);
}

bool
deserialize(wire::Reader &r, RunResult &res)
{
    if (!deserialize(r, res.core))
        return false;
    res.l1Hits = r.varint();
    res.l1Misses = r.varint();
    res.l2Hits = r.varint();
    res.l2Misses = r.varint();
    res.vecAccesses = r.varint();
    res.cohInvalidations = r.varint();
    return r.ok();
}

void
serialize(wire::Writer &w, const SweepPoint &p)
{
    w.byte(static_cast<u8>(p.workload));
    w.str(p.name);
    w.byte(static_cast<u8>(p.kind));
    w.varint(p.way);
    serialize(w, p.overrides);
    // Explicit-trace points ship the trace itself: a worker process has
    // no other way to reconstruct a caller-built program.  This costs
    // one full encode per grid point sharing the trace (plus one in
    // gridSignature); if explicit-trace grids ever grow beyond a few
    // ways, spill the trace to the TraceStore once and ship its key.
    w.boolean(p.trace != nullptr);
    if (p.trace)
        encodeTrace(*p.trace, w);
}

bool
deserialize(wire::Reader &r, SweepPoint &p)
{
    u8 workload = r.byte();
    if (workload > static_cast<u8>(SweepPoint::Workload::Trace))
        return false;
    p.workload = static_cast<SweepPoint::Workload>(workload);
    p.name = r.str();
    u8 kind = r.byte();
    if (kind > static_cast<u8>(SimdKind::VMMX128))
        return false;
    p.kind = static_cast<SimdKind>(kind);
    p.way = unsigned(r.varint());
    if (!deserialize(r, p.overrides))
        return false;
    p.trace = nullptr;
    if (r.boolean()) {
        auto t = std::make_shared<std::vector<InstRecord>>();
        if (!decodeTrace(r, *t))
            return false;
        p.trace = std::move(t);
    }
    return r.ok();
}

// ---- study spec text codec -----------------------------------------------

namespace
{

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream in(s);
    std::string item;
    while (std::getline(in, item, ','))
        if (!trim(item).empty())
            out.push_back(trim(item));
    return out;
}

template <typename T, typename F>
std::string
joinNames(const std::vector<T> &items, F &&nameOf)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += ",";
        out += nameOf(items[i]);
    }
    return out;
}

/** Non-fatal SimdKind lookup (parseSimdKind aborts on junk). */
bool
lookupSimdKind(const std::string &text, SimdKind &kind)
{
    for (SimdKind k : allSimdKinds) {
        if (text == name(k)) {
            kind = k;
            return true;
        }
    }
    return false;
}

std::string
flagText(bool v)
{
    return v ? "on" : "off";
}

/**
 * Strings embedded in spec text must survive the line-based format: a
 * newline would end the line (or open a bogus section), edge
 * whitespace would be trimmed away on re-parse, a comma in a list item
 * would be taken for a separator, and '=' in an override key would
 * shift the key/value split -- each silently breaking the
 * parse(format(spec)) == spec contract, so formatting such a spec is a
 * fatal user error instead.
 */
void
checkSpecValue(const char *what, const std::string &s, bool listItem,
               bool overrideKey = false)
{
    if (s.find('\n') != std::string::npos ||
        s.find('\r') != std::string::npos || s != trim(s) ||
        (listItem && s.find(',') != std::string::npos) ||
        (overrideKey && (s.empty() || s.find('=') != std::string::npos)))
        fatal("study spec text cannot represent %s '%s' (newlines, edge "
              "whitespace%s do not survive the key=value format)",
              what, s.c_str(),
              listItem ? ", commas" : (overrideKey ? ", '='" : ""));
}

} // namespace

std::string
formatStudySpec(const StudySpec &spec)
{
    std::ostringstream os;
    auto listItem = [](const char *what) {
        return [what](const std::string &s) {
            checkSpecValue(what, s, /*listItem=*/true);
            return s;
        };
    };
    checkSpecValue("title", spec.title, /*listItem=*/false);
    os << "# vmmx study spec\n";
    os << "title = " << spec.title << "\n";
    os << "\n[grid]\n";
    os << "kernels = " << joinNames(spec.kernels, listItem("kernel name"))
       << "\n";
    os << "apps = " << joinNames(spec.apps, listItem("app name")) << "\n";
    os << "kinds = "
       << joinNames(spec.kinds, [](SimdKind k) { return name(k); }) << "\n";
    os << "ways = "
       << joinNames(spec.ways,
                    [](unsigned w) { return std::to_string(w); })
       << "\n";
    for (const Config &set : spec.overrideSets) {
        os << "override = "
           << joinNames(set.keys(),
                        [&](const std::string &k) {
                            checkSpecValue("override key", k,
                                           /*listItem=*/true,
                                           /*overrideKey=*/true);
                            checkSpecValue("override value",
                                           set.getString(k),
                                           /*listItem=*/true);
                            return k + "=" + set.getString(k);
                        })
           << "\n";
    }

    const ExecutionPolicy &e = spec.exec;
    os << "\n[exec]\n";
    os << "backend = " << name(e.backend) << "\n";
    os << "threads = " << e.threads << "\n";
    os << "processes = " << e.processes << "\n";
    os << "batch = " << flagText(e.batch) << "\n";
    os << "decoded = " << flagText(e.decoded) << "\n";
    os << "raw_budget = " << e.rawBudget << "\n";
    os << "decoded_budget = " << e.decodedBudget << "\n";
    checkSpecValue("store directory", e.storeDir, /*listItem=*/false);
    os << "store = " << e.storeDir << "\n";
    checkSpecValue("journal path", e.journalPath, /*listItem=*/false);
    os << "journal = " << e.journalPath << "\n";
    os << "max_respawns = " << e.maxRespawns << "\n";
    os << "unit_timeout_ms = " << e.unitTimeoutMs << "\n";
    os << "max_unit_attempts = " << e.maxUnitAttempts << "\n";

    const ReportSpec &r = spec.report;
    os << "\n[report]\n";
    os << "layout = " << name(r.layout) << "\n";
    os << "metrics = "
       << joinNames(r.metrics, [](ReportSpec::Metric m) { return name(m); })
       << "\n";
    os << "pivot_metric = " << name(r.pivot) << "\n";
    os << "baseline = " << name(r.baselineKind) << "/" << r.baselineWay
       << "\n";
    os << "geomean = " << flagText(r.geomean) << "\n";
    os << "precision = " << r.precision << "\n";
    return os.str();
}

bool
parseStudySpec(const std::string &text, StudySpec &spec, std::string &err)
{
    spec = StudySpec();

    std::istringstream in(text);
    std::string rawLine, section;
    int lineNo = 0;
    auto fail = [&](const std::string &what) {
        err = "line " + std::to_string(lineNo) + ": " + what;
        return false;
    };

    while (std::getline(in, rawLine)) {
        ++lineNo;
        std::string line = trim(rawLine);
        if (line.empty() || line[0] == '#')
            continue;

        if (line.front() == '[') {
            if (line.back() != ']')
                return fail("malformed section header '" + line + "'");
            section = line.substr(1, line.size() - 2);
            if (section != "grid" && section != "exec" &&
                section != "report")
                return fail("unknown section [" + section + "]");
            continue;
        }

        size_t eq = line.find('=');
        if (eq == std::string::npos)
            return fail("expected 'key = value', got '" + line + "'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));

        auto parseFlagValue = [&](bool &out) {
            if (!env::parseFlag(value.c_str(), out))
                return fail("'" + key + "' wants on/off, got '" + value +
                            "'");
            return true;
        };
        auto parseBudgetValue = [&](u64 &out) {
            if (!env::parseByteSize(value.c_str(), out))
                return fail("'" + key + "' wants a byte size, got '" +
                            value + "'");
            return true;
        };
        auto parseUnsignedValue = [&](unsigned &out) {
            if (!env::parseUnsigned(value.c_str(), out))
                return fail("'" + key + "' wants a number, got '" + value +
                            "'");
            return true;
        };

        if (section.empty()) {
            if (key == "title")
                spec.title = value;
            else
                return fail("unknown top-level key '" + key + "'");
        } else if (section == "grid") {
            if (key == "kernels")
                spec.kernels = splitList(value);
            else if (key == "apps")
                spec.apps = splitList(value);
            else if (key == "kinds") {
                spec.kinds.clear();
                for (const auto &k : splitList(value)) {
                    SimdKind kind;
                    if (!lookupSimdKind(k, kind))
                        return fail("unknown SIMD flavour '" + k + "'");
                    spec.kinds.push_back(kind);
                }
            } else if (key == "ways") {
                spec.ways.clear();
                for (const auto &w : splitList(value)) {
                    unsigned way = 0;
                    if (!env::parseUnsigned(w.c_str(), way) || way == 0)
                        return fail("bad machine width '" + w + "'");
                    spec.ways.push_back(way);
                }
            } else if (key == "override") {
                Config set;
                for (const auto &assignment : splitList(value)) {
                    size_t aeq = assignment.find('=');
                    if (aeq == std::string::npos || aeq == 0)
                        return fail("override wants comma-separated "
                                    "knob=value pairs, got '" +
                                    assignment + "'");
                    set.set(trim(assignment.substr(0, aeq)),
                            trim(assignment.substr(aeq + 1)));
                }
                spec.overrideSets.push_back(std::move(set));
            } else {
                return fail("unknown [grid] key '" + key + "'");
            }
        } else if (section == "exec") {
            if (key == "backend") {
                if (!parseBackend(value, spec.exec.backend))
                    return fail("unknown backend '" + value +
                                "' (want serial/threads/processes)");
            } else if (key == "threads") {
                if (!parseUnsignedValue(spec.exec.threads))
                    return false;
            } else if (key == "processes") {
                if (!parseUnsignedValue(spec.exec.processes) ||
                    spec.exec.processes == 0)
                    return fail("'processes' must be >= 1");
            } else if (key == "batch") {
                if (!parseFlagValue(spec.exec.batch))
                    return false;
            } else if (key == "decoded") {
                if (!parseFlagValue(spec.exec.decoded))
                    return false;
            } else if (key == "raw_budget") {
                if (!parseBudgetValue(spec.exec.rawBudget))
                    return false;
            } else if (key == "decoded_budget") {
                if (!parseBudgetValue(spec.exec.decodedBudget))
                    return false;
            } else if (key == "store") {
                spec.exec.storeDir = value;
            } else if (key == "journal") {
                spec.exec.journalPath = value;
            } else if (key == "max_respawns") {
                if (!parseUnsignedValue(spec.exec.maxRespawns))
                    return false;
            } else if (key == "unit_timeout_ms") {
                // Plain count, not a byte size; 32 bits of milliseconds
                // is 49 days of deadline, enough for any unit.
                unsigned ms = 0;
                if (!parseUnsignedValue(ms))
                    return false;
                spec.exec.unitTimeoutMs = ms;
            } else if (key == "max_unit_attempts") {
                if (!parseUnsignedValue(spec.exec.maxUnitAttempts) ||
                    spec.exec.maxUnitAttempts == 0)
                    return fail("'max_unit_attempts' must be >= 1");
            } else {
                return fail("unknown [exec] key '" + key + "'");
            }
        } else if (section == "report") {
            if (key == "layout") {
                if (!parseLayout(value, spec.report.layout))
                    return fail("unknown layout '" + value +
                                "' (want points/pivot)");
            } else if (key == "metrics") {
                spec.report.metrics.clear();
                for (const auto &m : splitList(value)) {
                    ReportSpec::Metric metric;
                    if (!parseMetric(m, metric))
                        return fail("unknown metric '" + m + "'");
                    spec.report.metrics.push_back(metric);
                }
            } else if (key == "pivot_metric") {
                if (!parseMetric(value, spec.report.pivot))
                    return fail("unknown metric '" + value + "'");
            } else if (key == "baseline") {
                size_t slash = value.find('/');
                if (slash == std::string::npos)
                    return fail("baseline wants kind/way, e.g. mmx64/2");
                if (!lookupSimdKind(value.substr(0, slash),
                                    spec.report.baselineKind))
                    return fail("unknown SIMD flavour '" +
                                value.substr(0, slash) + "'");
                if (!env::parseUnsigned(value.substr(slash + 1).c_str(),
                                        spec.report.baselineWay) ||
                    spec.report.baselineWay == 0)
                    return fail("bad baseline width '" +
                                value.substr(slash + 1) + "'");
            } else if (key == "geomean") {
                if (!parseFlagValue(spec.report.geomean))
                    return false;
            } else if (key == "precision") {
                unsigned precision = 0;
                if (!parseUnsignedValue(precision))
                    return false;
                spec.report.precision = int(precision);
            } else {
                return fail("unknown [report] key '" + key + "'");
            }
        }
    }
    return true;
}

} // namespace vmmx
