/**
 * @file
 * A machine configuration = core (Table III) + memory (Table IV),
 * consistently wired (the memory system's scalar L1 ports come from the
 * core's Mem-FU count; the vector port width follows Table III).
 */

#ifndef VMMX_HARNESS_MACHINE_HH
#define VMMX_HARNESS_MACHINE_HH

#include <string>

#include "mem/params.hh"
#include "sim/params.hh"

namespace vmmx
{

struct MachineConfig
{
    SimdKind kind;
    unsigned way;
    CoreParams core;
    MemParams mem;

    /** e.g. "4-way vmmx128". */
    std::string label() const;
};

/**
 * Build the paper's configuration for @p kind at @p way.
 * @param overrides optional knobs (core.*, mem.*) for ablation studies.
 */
MachineConfig makeMachine(SimdKind kind, unsigned way,
                          const Config &overrides = {});

} // namespace vmmx

#endif // VMMX_HARNESS_MACHINE_HH
