/**
 * @file
 * Parallel sweep engine for (workload x SIMD flavour x machine) studies.
 *
 * Every figure in the paper is a sweep: the same few traces replayed on a
 * grid of machine configurations.  A Sweep collects the grid points,
 * resolves each point's trace through the shared TraceRepository (so a trace
 * is generated once per process, not once per point), and fans the
 * independent jobs across a thread pool.
 *
 * By default the engine runs *batched*: grid points are grouped by the
 * trace they replay, and each group executes as one runTraceBatch() call
 * that streams the trace once while stepping every configuration of the
 * group against each record.  On top of that, jobs resolve their trace
 * as a *decoded* tier-2 stream from the TraceRepository, so the
 * per-record decode is paid once per process -- every group (and every
 * thread) replaying the same trace shares one DecodedStream.
 * SweepOptions::batch (env VMMX_SWEEP_BATCH=0 to disable) falls back to
 * one runTrace() job per point; SweepOptions::decoded (env
 * VMMX_SWEEP_DECODED=0 to disable) falls back to decoding on the fly
 * inside each job.  Either way, MemorySystem and SimContext state is
 * private per configuration and the shared trace artifacts (raw and
 * decoded) are immutable, so results are bit-identical to the serial
 * per-point loop and are returned in submission order regardless of the
 * execution interleaving.
 */

#ifndef VMMX_HARNESS_SWEEP_HH
#define VMMX_HARNESS_SWEEP_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "harness/machine.hh"
#include "harness/runner.hh"
#include "trace/trace_repo.hh"

namespace vmmx
{

namespace dist
{
struct DistStats;
}

/** One grid point: a trace source plus the machine that replays it. */
struct SweepPoint
{
    enum class Workload : u8 { Kernel, App, Trace };

    Workload workload = Workload::Kernel;
    /** Kernel or app name; a display label for explicit traces. */
    std::string name;
    SimdKind kind = SimdKind::MMX64;
    unsigned way = 2;
    /** Optional machine knob overrides (ablation studies). */
    Config overrides;
    /** Pre-resolved trace (Workload::Trace only). */
    SharedTrace trace;

    /** e.g. "idct/vmmx128/4-way", with any ablation overrides appended
     *  ("+core.robEntries=64") so knob-only variants stay tellable
     *  apart in bench output. */
    std::string label() const;
};

/** Repository key of a kernel/app point (image size and seed are the
 *  repository defaults).  Asserts on Workload::Trace points, whose
 *  identity is the trace object itself. */
TraceKey traceKeyFor(const SweepPoint &point);

/** Result of one grid point, in submission order. */
struct SweepResult
{
    SweepPoint point;
    RunResult result;
    u64 traceLength = 0;

    Cycle cycles() const { return result.cycles(); }

    /** Ignores the echoed point: two results match when the timing and
     *  statistics of the runs are bit-identical. */
    bool sameRun(const SweepResult &o) const
    {
        return result == o.result && traceLength == o.traceLength;
    }
};

/** Default for SweepOptions::batch: true unless $VMMX_SWEEP_BATCH is
 *  "0", "off" or "false". */
bool sweepBatchFromEnv();

/** Default for SweepOptions::decoded: true unless $VMMX_SWEEP_DECODED
 *  is "0", "off" or "false". */
bool sweepDecodedFromEnv();

struct SweepOptions
{
    /** Worker threads; 0 picks std::thread::hardware_concurrency(). */
    unsigned threads = 0;
    /** Trace repository to resolve against; null uses the process-wide
     *  one (TraceRepository::instance()). */
    TraceRepository *repo = nullptr;
    /** Group points by trace and run each group as one batched pass
     *  (runTraceBatch).  Off: one runTrace job per point, as before the
     *  batched engine.  Results are bit-identical either way. */
    bool batch = sweepBatchFromEnv();
    /** Resolve jobs through the repository's decoded tier (one decode
     *  per trace per process).  Off: every job decodes on the fly, the
     *  pre-repository behaviour.  Results are bit-identical either
     *  way. */
    bool decoded = sweepDecodedFromEnv();

    // ---- multi-process backend (src/dist/) ---------------------------
    /** Worker process count; 0 stays on the in-process thread pool.
     *  When > 0, run() shards the grid across forked worker processes
     *  that share traces through the on-disk TraceStore; results remain
     *  bit-identical to the serial loop.  With batch on, sharding is by
     *  trace group, so workers batch too. */
    unsigned processes = 0;
    /** Trace store directory; "" uses TraceStore::defaultDir(). */
    std::string storeDir;
    /** Crash-resume journal file; "" disables journaling. */
    std::string journalPath;
    /** Optional out-param for the distributed run's statistics. */
    dist::DistStats *distStats = nullptr;
};

/**
 * Indices of @p subset (submission indices into @p points) grouped by
 * the trace the points replay: kernel/app points group by (workload,
 * name, flavour); explicit-trace points group by the trace object.
 * Groups are ordered by first appearance and keep ascending indices, so
 * the grouping is deterministic for a given grid.
 */
std::vector<std::vector<u32>>
groupPointsByTrace(const std::vector<SweepPoint> &points,
                   const std::vector<u32> &subset);

/** Group every point of @p points (subset = the whole grid). */
std::vector<std::vector<u32>>
groupPointsByTrace(const std::vector<SweepPoint> &points);

/**
 * The schedulable units of a sweep over @p subset: whole trace groups
 * when @p batch, one point per unit otherwise.  Shared by the
 * thread-pool engine and the multi-process driver so both backends
 * always form units the same way.
 */
std::vector<std::vector<u32>>
buildSweepUnits(const std::vector<SweepPoint> &points,
                const std::vector<u32> &subset, bool batch);

class Sweep
{
  public:
    explicit Sweep(const SweepOptions &opts = {});

    // ---- grid construction ------------------------------------------
    Sweep &addKernel(const std::string &name, SimdKind kind, unsigned way,
                     const Config &overrides = {});
    Sweep &addApp(const std::string &name, SimdKind kind, unsigned way,
                  const Config &overrides = {});
    /** Replay an explicit trace (custom programs, tests). */
    Sweep &addTrace(SharedTrace trace, SimdKind kind, unsigned way,
                    const std::string &label = "trace",
                    const Config &overrides = {});

    /** Cross product helpers for the common grid shapes. */
    Sweep &addKernelGrid(const std::vector<std::string> &names,
                         const std::vector<SimdKind> &kinds,
                         const std::vector<unsigned> &ways);
    Sweep &addAppGrid(const std::vector<std::string> &names,
                      const std::vector<SimdKind> &kinds,
                      const std::vector<unsigned> &ways);

    size_t size() const { return points_.size(); }
    const std::vector<SweepPoint> &points() const { return points_; }

    // ---- execution ---------------------------------------------------
    /**
     * Run every point and return results in submission order.  Uses the
     * configured thread count; a count of 1 (or a single-job sweep)
     * stays on the calling thread.
     */
    std::vector<SweepResult> run() const;

    /** Reference serial per-point loop on the calling thread (the
     *  determinism baseline; never batches).  Still resolves traces
     *  through the cache. */
    std::vector<SweepResult> runSerial() const;

  private:
    /** Resolve @p lead's trace once (decoded tier or raw) and replay it
     *  on every machine; the single tier-dispatch site. */
    std::vector<RunResult> resolveAndRun(const SweepPoint &lead,
                                         std::span<const MachineConfig>
                                             machines,
                                         bool useDecoded,
                                         u64 &traceLength) const;
    /** Run one point; @p useDecoded false forces the decode-on-the-fly
     *  reference path regardless of SweepOptions::decoded. */
    SweepResult runPoint(const SweepPoint &point, bool useDecoded) const;
    /** Run one trace group batched; writes into submission slots. */
    void runGroup(const std::vector<u32> &group,
                  std::vector<SweepResult> &results) const;
    TraceRepository &repo() const;
    /** Raw (tier-1) trace of @p point, pinned while borrowed. */
    TraceRepository::TraceHandle resolveRaw(const SweepPoint &point) const;
    /** Decoded (tier-2) stream of @p point, pinned while borrowed. */
    TraceRepository::DecodedHandle
    resolveDecoded(const SweepPoint &point) const;

    SweepOptions opts_;
    std::vector<SweepPoint> points_;
};

/** Convenience: sweep a single explicit trace over (kind, way) machines. */
std::vector<SweepResult>
sweepTrace(const SharedTrace &trace, SimdKind kind,
           const std::vector<unsigned> &ways,
           const SweepOptions &opts = {});

} // namespace vmmx

#endif // VMMX_HARNESS_SWEEP_HH
