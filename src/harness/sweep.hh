/**
 * @file
 * Grid-point vocabulary (SweepPoint/SweepResult), the shared unit
 * scheduler (buildSweepUnits), and the legacy Sweep front end.
 *
 * Every figure in the paper is a sweep: the same few traces replayed on
 * a grid of machine configurations.  The execution machinery lives in
 * harness/executor.* (pluggable Serial/ThreadPool/Process backends over
 * one ExecutionPolicy) with the declarative front end in
 * harness/study.* -- new code should start there.  Sweep remains as a
 * thin compatibility wrapper for one release: it still collects grid
 * points imperatively and its run() maps SweepOptions onto an
 * ExecutionPolicy and dispatches through the same executors, so the old
 * and new APIs are bit-identical by construction.
 *
 * What this header still owns outright is the scheduling vocabulary
 * shared by every backend: points are grouped by the trace they replay
 * (groupPointsByTrace) and formed into schedulable units
 * (buildSweepUnits) -- whole trace groups when batching, single points
 * otherwise -- so all backends always shard the same way.
 */

#ifndef VMMX_HARNESS_SWEEP_HH
#define VMMX_HARNESS_SWEEP_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "harness/machine.hh"
#include "harness/runner.hh"
#include "trace/trace_repo.hh"

namespace vmmx
{

namespace dist
{
struct DistStats;
}

struct ExecutionPolicy; // harness/executor.hh

/** One grid point: a trace source plus the machine that replays it. */
struct SweepPoint
{
    enum class Workload : u8 { Kernel, App, Trace };

    Workload workload = Workload::Kernel;
    /** Kernel or app name; a display label for explicit traces. */
    std::string name;
    SimdKind kind = SimdKind::MMX64;
    unsigned way = 2;
    /** Optional machine knob overrides (ablation studies). */
    Config overrides;
    /** Pre-resolved trace (Workload::Trace only). */
    SharedTrace trace;

    /** e.g. "idct/vmmx128/4-way", with any ablation overrides appended
     *  ("+core.robEntries=64") so knob-only variants stay tellable
     *  apart in bench output. */
    std::string label() const;
};

/** Repository key of a kernel/app point (image size and seed are the
 *  repository defaults).  Asserts on Workload::Trace points, whose
 *  identity is the trace object itself. */
TraceKey traceKeyFor(const SweepPoint &point);

/** Result of one grid point, in submission order. */
struct SweepResult
{
    SweepPoint point;
    RunResult result;
    u64 traceLength = 0;

    Cycle cycles() const { return result.cycles(); }

    /** Ignores the echoed point: two results match when the timing and
     *  statistics of the runs are bit-identical. */
    bool sameRun(const SweepResult &o) const
    {
        return result == o.result && traceLength == o.traceLength;
    }
};

/** Default for SweepOptions::batch: $VMMX_SWEEP_BATCH via env::flag()
 *  (common/env.hh, the one environment parser); unset = on. */
bool sweepBatchFromEnv();

/** Default for SweepOptions::decoded: $VMMX_SWEEP_DECODED via
 *  env::flag(); unset = on. */
bool sweepDecodedFromEnv();

/** Legacy execution knobs; Sweep::run() maps these onto an
 *  ExecutionPolicy (harness/executor.hh), which new code should use
 *  directly. */
struct SweepOptions
{
    /** Worker threads; 0 picks std::thread::hardware_concurrency(). */
    unsigned threads = 0;
    /** Trace repository to resolve against; null uses the process-wide
     *  one (TraceRepository::instance()). */
    TraceRepository *repo = nullptr;
    /** Group points by trace and run each group as one batched pass
     *  (runTraceBatch).  Off: one runTrace job per point, as before the
     *  batched engine.  Results are bit-identical either way. */
    bool batch = sweepBatchFromEnv();
    /** Resolve jobs through the repository's decoded tier (one decode
     *  per trace per process).  Off: every job decodes on the fly, the
     *  pre-repository behaviour.  Results are bit-identical either
     *  way. */
    bool decoded = sweepDecodedFromEnv();

    // ---- multi-process backend (src/dist/) ---------------------------
    /** Worker process count; 0 stays on the in-process thread pool.
     *  When > 0, run() shards the grid across forked worker processes
     *  that share traces through the on-disk TraceStore; results remain
     *  bit-identical to the serial loop.  With batch on, sharding is by
     *  trace group, so workers batch too. */
    unsigned processes = 0;
    /** Trace store directory; "" uses TraceStore::defaultDir(). */
    std::string storeDir;
    /** Crash-resume journal file; "" disables journaling. */
    std::string journalPath;
    /** Optional out-param for the distributed run's statistics. */
    dist::DistStats *distStats = nullptr;
};

/**
 * Indices of @p subset (submission indices into @p points) grouped by
 * the trace the points replay: kernel/app points group by (workload,
 * name, flavour); explicit-trace points group by the trace object.
 * Groups are ordered by first appearance and keep ascending indices, so
 * the grouping is deterministic for a given grid.
 */
std::vector<std::vector<u32>>
groupPointsByTrace(const std::vector<SweepPoint> &points,
                   const std::vector<u32> &subset);

/** Group every point of @p points (subset = the whole grid). */
std::vector<std::vector<u32>>
groupPointsByTrace(const std::vector<SweepPoint> &points);

/**
 * The schedulable units of a sweep over @p subset: whole trace groups
 * when @p batch, one point per unit otherwise.  Shared by the
 * thread-pool engine and the multi-process driver so both backends
 * always form units the same way.
 */
std::vector<std::vector<u32>>
buildSweepUnits(const std::vector<SweepPoint> &points,
                const std::vector<u32> &subset, bool batch);

/**
 * Imperative grid builder and runner (compatibility wrapper over the
 * Study/Executor machinery; see the file comment).
 */
class Sweep
{
  public:
    explicit Sweep(const SweepOptions &opts = {});

    // ---- grid construction ------------------------------------------
    Sweep &addKernel(const std::string &name, SimdKind kind, unsigned way,
                     const Config &overrides = {});
    Sweep &addApp(const std::string &name, SimdKind kind, unsigned way,
                  const Config &overrides = {});
    /** Replay an explicit trace (custom programs, tests). */
    Sweep &addTrace(SharedTrace trace, SimdKind kind, unsigned way,
                    const std::string &label = "trace",
                    const Config &overrides = {});

    /** Cross product helpers for the common grid shapes. */
    Sweep &addKernelGrid(const std::vector<std::string> &names,
                         const std::vector<SimdKind> &kinds,
                         const std::vector<unsigned> &ways);
    Sweep &addAppGrid(const std::vector<std::string> &names,
                      const std::vector<SimdKind> &kinds,
                      const std::vector<unsigned> &ways);

    size_t size() const { return points_.size(); }
    const std::vector<SweepPoint> &points() const { return points_; }

    // ---- execution ---------------------------------------------------
    /**
     * Run every point and return results in submission order.  Uses the
     * configured thread count; a count of 1 (or a single-job sweep)
     * stays on the calling thread.
     */
    std::vector<SweepResult> run() const;

    /** Reference serial per-point loop on the calling thread (the
     *  determinism baseline; never batches).  Still resolves traces
     *  through the cache. */
    std::vector<SweepResult> runSerial() const;

  private:
    /** The ExecutionPolicy equivalent of opts_ (fromEnv() defaults with
     *  the explicit options layered on top). */
    ExecutionPolicy policy() const;

    SweepOptions opts_;
    std::vector<SweepPoint> points_;
};

/** Convenience: sweep a single explicit trace over (kind, way) machines. */
std::vector<SweepResult>
sweepTrace(const SharedTrace &trace, SimdKind kind,
           const std::vector<unsigned> &ways,
           const SweepOptions &opts = {});

} // namespace vmmx

#endif // VMMX_HARNESS_SWEEP_HH
