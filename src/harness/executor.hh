/**
 * @file
 * Execution backends for grid studies: one ExecutionPolicy describing
 * *how* a grid should run, and an Executor interface with the three
 * implementations behind every result in this repository --
 *
 *   SerialExecutor      the calling thread, unit by unit (the
 *                       reference ordering every backend must match)
 *   ThreadPoolExecutor  an in-process pool pulling schedulable units
 *                       off a shared counter (the PR-1 sweep engine)
 *   ProcessExecutor     sharded worker processes over the src/dist/
 *                       frame protocol, traces shared through the
 *                       on-disk TraceStore (the PR-2 subsystem)
 *
 * All three consume the same buildSweepUnits() schedule (whole trace
 * groups when ExecutionPolicy::batch, single points otherwise) and all
 * write results into submission-order slots, so for any grid and any
 * policy the three result vectors are bit-identical -- asserted by
 * tests/test_study.cc and CI.  A future remote backend (the ROADMAP's
 * TCP rung) is one more implementation of this interface; nothing above
 * it has to change.
 *
 * The policy's defaults come from the legacy VMMX_* environment
 * variables through ExecutionPolicy::fromEnv() -- the single place
 * those variables are still consulted (via common/env.hh).
 */

#ifndef VMMX_HARNESS_EXECUTOR_HH
#define VMMX_HARNESS_EXECUTOR_HH

#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace vmmx
{

/**
 * How to execute a grid: backend choice plus every knob the backends
 * understand.  The declarative subset (everything up to journalPath)
 * round-trips through the [exec] section of a study spec file; the
 * trailing pointers are runtime-only wiring and never serialized.
 */
struct ExecutionPolicy
{
    enum class Backend : u8 { Serial, ThreadPool, Process };

    Backend backend = Backend::ThreadPool;
    /** ThreadPool worker threads; 0 = hardware_concurrency(). */
    unsigned threads = 0;
    /** Process backend worker count (>= 1). */
    unsigned processes = 2;
    /** Schedule whole trace groups (one batched pass per group); off =
     *  one point per unit.  Bit-identical either way. */
    bool batch = true;
    /** Serve jobs from the repository's decoded tier; off = decode on
     *  the fly per job.  Bit-identical either way. */
    bool decoded = true;
    /** Raw (tier-1) trace RAM budget; 0 = unlimited.  Applied to the
     *  per-worker repositories of the Process backend; in-process
     *  backends only apply it where the caller asks (vmmx_study). */
    u64 rawBudget = 0;
    /** Decoded (tier-2) RAM budget; 0 = unlimited. */
    u64 decodedBudget = 0;
    /** Trace store directory (Process backend); "" = default dir. */
    std::string storeDir;
    /** Crash-resume journal (Process backend); "" = no journal. */
    std::string journalPath;
    /** Process backend: respawns per worker slot before it is
     *  abandoned; 0 = never respawn (see DistOptions::maxRespawns). */
    unsigned maxRespawns = 3;
    /** Process backend: per-unit wall-clock deadline in ms; 0 = none
     *  (see DistOptions::unitTimeoutMs). */
    u64 unitTimeoutMs = 0;
    /** Process backend: attempts before a worker-killing unit is
     *  quarantined (see DistOptions::maxUnitAttempts). */
    unsigned maxUnitAttempts = 3;

    // ---- runtime-only wiring (not part of the declarative spec) ------
    /** Repository to resolve traces against; null = the process-wide
     *  TraceRepository::instance(). */
    TraceRepository *repo = nullptr;
    /** Optional out-param for Process-backend statistics. */
    dist::DistStats *distStats = nullptr;
    /** Self-exec worker binary for the Process backend ("" forks
     *  without exec); see DistOptions::execPath. */
    std::string execPath;
    /** Extra argv for execPath, before the appended "--worker --fd N". */
    std::vector<std::string> execArgs;

    /** The built-in defaults with the legacy environment knobs layered
     *  on top: VMMX_SWEEP_BATCH, VMMX_SWEEP_DECODED,
     *  VMMX_TRACE_CACHE_BUDGET, VMMX_DECODED_CACHE_BUDGET,
     *  VMMX_TRACE_STORE, VMMX_MAX_RESPAWNS, VMMX_UNIT_TIMEOUT_MS,
     *  VMMX_MAX_UNIT_ATTEMPTS. */
    static ExecutionPolicy fromEnv();

    /** The repository this policy resolves traces through. */
    TraceRepository &repository() const;

    /** Declarative-field equality (runtime wiring excluded); what the
     *  spec-file round-trip preserves. */
    bool operator==(const ExecutionPolicy &o) const
    {
        return backend == o.backend && threads == o.threads &&
               processes == o.processes && batch == o.batch &&
               decoded == o.decoded && rawBudget == o.rawBudget &&
               decodedBudget == o.decodedBudget &&
               storeDir == o.storeDir && journalPath == o.journalPath &&
               maxRespawns == o.maxRespawns &&
               unitTimeoutMs == o.unitTimeoutMs &&
               maxUnitAttempts == o.maxUnitAttempts;
    }
};

/** Spec-file spelling of a backend ("serial", "threads", "processes"). */
const char *name(ExecutionPolicy::Backend b);
/** Parse a backend name. @return false on unknown names. */
bool parseBackend(const std::string &text, ExecutionPolicy::Backend &b);

/**
 * One execution backend.  Implementations are stateless: run() may be
 * called concurrently with distinct grids.
 */
class Executor
{
  public:
    virtual ~Executor() = default;

    virtual const char *name() const = 0;

    /**
     * Run every point of @p points under @p policy and return the
     * results in submission order, bit-identical across backends.
     */
    virtual std::vector<SweepResult>
    run(const std::vector<SweepPoint> &points,
        const ExecutionPolicy &policy) const = 0;
};

/** Unit-by-unit execution on the calling thread. */
class SerialExecutor : public Executor
{
  public:
    const char *name() const override { return "serial"; }
    std::vector<SweepResult> run(const std::vector<SweepPoint> &points,
                                 const ExecutionPolicy &policy) const override;
};

/** In-process thread pool over the shared unit schedule. */
class ThreadPoolExecutor : public Executor
{
  public:
    const char *name() const override { return "threads"; }
    std::vector<SweepResult> run(const std::vector<SweepPoint> &points,
                                 const ExecutionPolicy &policy) const override;
};

/** Sharded worker processes (the src/dist/ subsystem). */
class ProcessExecutor : public Executor
{
  public:
    const char *name() const override { return "processes"; }
    std::vector<SweepResult> run(const std::vector<SweepPoint> &points,
                                 const ExecutionPolicy &policy) const override;
};

/** The (stateless, shared) executor implementing @p backend. */
const Executor &executorFor(ExecutionPolicy::Backend backend);

/** Dispatch @p points through the backend @p policy names. */
std::vector<SweepResult> runPoints(const std::vector<SweepPoint> &points,
                                   const ExecutionPolicy &policy);

/**
 * Run one grid point under @p policy on the calling thread.
 * @p useDecoded false forces the decode-on-the-fly reference path
 * regardless of policy.decoded (Sweep::runSerial's baseline).
 */
SweepResult runSweepPoint(const SweepPoint &point,
                          const ExecutionPolicy &policy, bool useDecoded);

/**
 * Run one schedulable unit -- a whole trace group resolved and replayed
 * in a single batched pass when policy.batch, a single point otherwise
 * -- writing into the submission-order slots of @p results.  The common
 * inner loop of the Serial and ThreadPool executors.
 */
void runSweepUnit(const std::vector<SweepPoint> &points,
                  const std::vector<u32> &unit,
                  const ExecutionPolicy &policy,
                  std::vector<SweepResult> &results);

} // namespace vmmx

#endif // VMMX_HARNESS_EXECUTOR_HH
