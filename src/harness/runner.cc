#include "harness/runner.hh"

#include <memory>

namespace vmmx
{

std::vector<RunResult>
runTraceBatch(std::span<const MachineConfig> machines,
              const std::vector<InstRecord> &trace)
{
    // One private MemorySystem + SimContext per configuration: contexts
    // share nothing mutable, so the batched pass is bit-identical to N
    // independent runs.
    std::vector<std::unique_ptr<MemorySystem>> mems;
    std::vector<std::unique_ptr<SimContext>> ctxs;
    std::vector<SimContext *> batch;
    mems.reserve(machines.size());
    ctxs.reserve(machines.size());
    batch.reserve(machines.size());
    for (const MachineConfig &m : machines) {
        mems.push_back(std::make_unique<MemorySystem>(m.mem));
        ctxs.push_back(std::make_unique<SimContext>(m.core,
                                                    mems.back().get()));
        batch.push_back(ctxs.back().get());
    }

    runBatch(trace, batch);

    std::vector<RunResult> results(machines.size());
    for (size_t i = 0; i < machines.size(); ++i) {
        RunResult &r = results[i];
        r.core = ctxs[i]->finish();
        r.l1Hits = mems[i]->l1Hits();
        r.l1Misses = mems[i]->l1Misses();
        r.l2Hits = mems[i]->l2Hits();
        r.l2Misses = mems[i]->l2Misses();
        r.vecAccesses = mems[i]->vecAccesses();
        r.cohInvalidations = mems[i]->coherenceInvalidations();
    }
    return results;
}

RunResult
runTrace(const MachineConfig &machine, const std::vector<InstRecord> &trace)
{
    return runTraceBatch({&machine, 1}, trace)[0];
}

} // namespace vmmx
