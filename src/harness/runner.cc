#include "harness/runner.hh"

namespace vmmx
{

RunResult
runTrace(const MachineConfig &machine, const std::vector<InstRecord> &trace)
{
    MemorySystem mem(machine.mem);
    OoOCore core(machine.core, &mem);

    RunResult r;
    r.core = core.run(trace);
    r.l1Hits = mem.l1Hits();
    r.l1Misses = mem.l1Misses();
    r.l2Hits = mem.l2Hits();
    r.l2Misses = mem.l2Misses();
    r.vecAccesses = mem.vecAccesses();
    r.cohInvalidations = mem.coherenceInvalidations();
    return r;
}

} // namespace vmmx
