#include "harness/runner.hh"

#include <memory>

namespace vmmx
{

namespace
{

/**
 * The per-configuration state of one batched pass: one private
 * MemorySystem + SimContext per configuration, so contexts share
 * nothing mutable and the batched pass is bit-identical to N
 * independent runs.
 */
struct Batch
{
    std::vector<std::unique_ptr<MemorySystem>> mems;
    std::vector<std::unique_ptr<SimContext>> ctxs;
    std::vector<SimContext *> span;

    explicit Batch(std::span<const MachineConfig> machines)
    {
        mems.reserve(machines.size());
        ctxs.reserve(machines.size());
        span.reserve(machines.size());
        for (const MachineConfig &m : machines) {
            mems.push_back(std::make_unique<MemorySystem>(m.mem));
            ctxs.push_back(
                std::make_unique<SimContext>(m.core, mems.back().get()));
            span.push_back(ctxs.back().get());
        }
    }

    std::vector<RunResult> collect()
    {
        std::vector<RunResult> results(ctxs.size());
        for (size_t i = 0; i < ctxs.size(); ++i) {
            RunResult &r = results[i];
            r.core = ctxs[i]->finish();
            r.l1Hits = mems[i]->l1Hits();
            r.l1Misses = mems[i]->l1Misses();
            r.l2Hits = mems[i]->l2Hits();
            r.l2Misses = mems[i]->l2Misses();
            r.vecAccesses = mems[i]->vecAccesses();
            r.cohInvalidations = mems[i]->coherenceInvalidations();
        }
        return results;
    }
};

} // namespace

std::vector<RunResult>
runTraceBatch(std::span<const MachineConfig> machines,
              const std::vector<InstRecord> &trace)
{
    Batch batch(machines);
    runBatch(trace, batch.span);
    return batch.collect();
}

std::vector<RunResult>
runTraceBatch(std::span<const MachineConfig> machines,
              const DecodedStream &stream)
{
    Batch batch(machines);
    runBatch(stream, batch.span);
    return batch.collect();
}

RunResult
runTrace(const MachineConfig &machine, const std::vector<InstRecord> &trace)
{
    return runTraceBatch({&machine, 1}, trace)[0];
}

RunResult
runTrace(const MachineConfig &machine, const DecodedStream &stream)
{
    return runTraceBatch({&machine, 1}, stream)[0];
}

} // namespace vmmx
