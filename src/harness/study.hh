/**
 * @file
 * Declarative experiment studies: every figure and table in the paper
 * is the same shape -- a (workload x SIMD flavour x width x
 * knob-override) grid replayed through the timing core and summarized
 * into a few derived metrics.  A StudySpec states that shape once:
 *
 *   grid axes        kernels/apps, flavours, machine widths, and
 *                    optional ablation override sets (cross product)
 *   ExecutionPolicy  which backend runs the grid and how (threads,
 *                    processes, batching, decoded tier, budgets);
 *                    defaults come from the legacy VMMX_* environment
 *                    variables through one parser (common/env.hh)
 *   ReportSpec       which derived metrics to print -- speedup against
 *                    a named baseline configuration, cycle breakdown,
 *                    IPC -- so consumers stop plucking RunStats fields
 *                    by hand
 *
 * A Study is the facade over the spec: expand the grid to SweepPoints,
 * run it through a pluggable Executor backend (all backends are
 * bit-identical), and render the report.  Specs round-trip through a
 * text file format (Study::fromFile / Study::specText, codec in
 * harness/harness_io.*), so a figure is reproducible from a checked-in
 * spec via tools/vmmx_study instead of a bespoke binary.
 *
 * The older Sweep class remains as a thin compatibility wrapper over
 * this machinery for one release; new code should start here.
 */

#ifndef VMMX_HARNESS_STUDY_HH
#define VMMX_HARNESS_STUDY_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/executor.hh"

namespace vmmx
{

/** Which derived metrics a study reports, and against what baseline. */
struct ReportSpec
{
    enum class Layout : u8
    {
        /** One row per grid point, one column per metric. */
        Points,
        /** One table per workload: rows = widths, columns = flavours,
         *  cells = the pivot metric (the Figure 4/5 shape). */
        Pivot,
    };

    enum class Metric : u8
    {
        Cycles,       ///< total execution time
        Instructions, ///< committed dynamic instructions
        Ipc,
        Speedup,      ///< baseline cycles / this point's cycles
        ScalarCycles, ///< cycles attributed to scalar regions
        VectorCycles, ///< cycles attributed to vector regions
        VectorPct,    ///< vector share of this point's own cycles, %
        /** Cycle breakdown normalised to the baseline's total (the
         *  Figure 6 shape): scalar / vector / total cycles as a
         *  percentage of the baseline configuration's cycles. */
        ScalarOfBase,
        VectorOfBase,
        TotalOfBase,
    };

    Layout layout = Layout::Points;
    /** Points-layout columns. */
    std::vector<Metric> metrics = {Metric::Cycles, Metric::Ipc};
    /** Pivot-layout cell metric. */
    Metric pivot = Metric::Speedup;
    /** The baseline configuration relative metrics compare against:
     *  the same workload replayed at (baselineKind, baselineWay) with
     *  no overrides. */
    SimdKind baselineKind = SimdKind::MMX64;
    unsigned baselineWay = 2;
    /** Pivot layout: append a geometric-mean table over workloads. */
    bool geomean = false;
    /** Decimal places of fractional metrics. */
    int precision = 2;

    bool operator==(const ReportSpec &o) const = default;
};

/** Spec-file spelling of a metric ("cycles", "speedup", ...). */
const char *name(ReportSpec::Metric m);
bool parseMetric(const std::string &text, ReportSpec::Metric &m);
const char *name(ReportSpec::Layout l);
bool parseLayout(const std::string &text, ReportSpec::Layout &l);

/**
 * Value of @p m for one grid point.  @p baseline is the point's
 * baseline result (null when the grid has none); relative metrics
 * return NaN then, which the report renders as "-".
 */
double metricValue(ReportSpec::Metric m, const SweepResult &r,
                   const SweepResult *baseline);

/** The complete declarative description of one experiment. */
struct StudySpec
{
    std::string title;

    // ---- grid axes (cross product, in this order) --------------------
    std::vector<std::string> kernels;
    std::vector<std::string> apps;
    std::vector<SimdKind> kinds{allSimdKinds.begin(), allSimdKinds.end()};
    std::vector<unsigned> ways{2, 4, 8};
    /** Ablation override sets; each grid point is replicated once per
     *  set.  Empty = one unmodified machine per (workload, kind, way). */
    std::vector<Config> overrideSets;

    ExecutionPolicy exec = ExecutionPolicy::fromEnv();
    ReportSpec report;

    bool operator==(const StudySpec &o) const = default;
};

class Study
{
  public:
    Study() = default;
    explicit Study(StudySpec spec) : spec_(std::move(spec)) {}

    /** Parse a spec file; fatal on IO or parse errors (they name the
     *  offending line). */
    static Study fromFile(const std::string &path);
    /** Parse spec text; fatal on parse errors. */
    static Study fromSpecText(const std::string &text);

    StudySpec &spec() { return spec_; }
    const StudySpec &spec() const { return spec_; }

    /** The canonical spec-file text of this study (round-trips through
     *  fromSpecText bit-exactly). */
    std::string specText() const;

    /**
     * Expand the grid axes into submission-order SweepPoints:
     * workload-major (kernels then apps, spec order), then flavour,
     * then width, then override set -- so every point replaying one
     * trace is contiguous and the batched backends group maximally.
     */
    std::vector<SweepPoint> points() const;

    /** Run the grid through the backend the ExecutionPolicy names. */
    std::vector<SweepResult> run() const;

    /** Render the ReportSpec for @p results (as returned by run()). */
    void writeReport(std::ostream &os,
                     const std::vector<SweepResult> &results) const;

    /**
     * The baseline result of @p r under this spec's report: same
     * workload, (baselineKind, baselineWay), preferring the point with
     * @p r's own override set, else the override-free point.  Null when
     * the grid contains neither.
     */
    static const SweepResult *
    baselineFor(const ReportSpec &report,
                const std::vector<SweepResult> &results,
                const SweepResult &r);

  private:
    StudySpec spec_;
};

} // namespace vmmx

#endif // VMMX_HARNESS_STUDY_HH
