/**
 * @file
 * Wire serialization hooks for the harness types that cross the
 * driver/worker process boundary: Config (ablation overrides), RunStats
 * and RunResult (the payload of a finished grid point), and SweepPoint
 * (a job description, including the trace payload for explicit-trace
 * points).  All round-trips are bit-exact; RunResult equality after a
 * decode is the basis of the distributed determinism guarantee.
 */

#ifndef VMMX_HARNESS_HARNESS_IO_HH
#define VMMX_HARNESS_HARNESS_IO_HH

#include "common/config.hh"
#include "dist/wire.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"

namespace vmmx
{

void serialize(wire::Writer &w, const Config &c);
bool deserialize(wire::Reader &r, Config &c);

void serialize(wire::Writer &w, const RunStats &s);
bool deserialize(wire::Reader &r, RunStats &s);

void serialize(wire::Writer &w, const RunResult &res);
bool deserialize(wire::Reader &r, RunResult &res);

void serialize(wire::Writer &w, const SweepPoint &p);
bool deserialize(wire::Reader &r, SweepPoint &p);

} // namespace vmmx

#endif // VMMX_HARNESS_HARNESS_IO_HH
