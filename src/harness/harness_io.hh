/**
 * @file
 * Serialization hooks for the harness types that cross a process or
 * file boundary, in two flavours:
 *
 * Wire codecs for the driver/worker protocol: Config (ablation
 * overrides), RunStats and RunResult (the payload of a finished grid
 * point), and SweepPoint (a job description, including the trace
 * payload for explicit-trace points).  All round-trips are bit-exact;
 * RunResult equality after a decode is the basis of the distributed
 * determinism guarantee.
 *
 * The text codec for StudySpec files: a line-based key = value format
 * with [grid]/[exec]/[report] sections (see README "Studies").
 * formatStudySpec() emits the canonical form, and parse(format(spec))
 * reproduces the spec exactly -- the round-trip contract of
 * tests/test_study.cc.
 */

#ifndef VMMX_HARNESS_HARNESS_IO_HH
#define VMMX_HARNESS_HARNESS_IO_HH

#include "common/config.hh"
#include "dist/wire.hh"
#include "harness/runner.hh"
#include "harness/study.hh"
#include "harness/sweep.hh"

namespace vmmx
{

void serialize(wire::Writer &w, const Config &c);
bool deserialize(wire::Reader &r, Config &c);

void serialize(wire::Writer &w, const RunStats &s);
bool deserialize(wire::Reader &r, RunStats &s);

void serialize(wire::Writer &w, const RunResult &res);
bool deserialize(wire::Reader &r, RunResult &res);

void serialize(wire::Writer &w, const SweepPoint &p);
bool deserialize(wire::Reader &r, SweepPoint &p);

/** The canonical spec-file text of @p spec (all keys, all sections). */
std::string formatStudySpec(const StudySpec &spec);

/**
 * Parse spec-file text into @p spec.  Unlisted keys keep their
 * defaults (including the environment-derived ExecutionPolicy
 * defaults); unknown sections, unknown keys, and malformed values fail
 * with a "line N: ..." message in @p err.  @p spec is meaningful only
 * when the parse succeeds.
 */
bool parseStudySpec(const std::string &text, StudySpec &spec,
                    std::string &err);

} // namespace vmmx

#endif // VMMX_HARNESS_HARNESS_IO_HH
