#include "harness/machine.hh"

namespace vmmx
{

std::string
MachineConfig::label() const
{
    return std::to_string(way) + "-way " + name(kind);
}

MachineConfig
makeMachine(SimdKind kind, unsigned way, const Config &overrides)
{
    MachineConfig m;
    m.kind = kind;
    m.way = way;
    m.core = CoreParams::forConfig(kind, way, overrides);
    m.mem = MemParams::forWay(way, overrides);

    // Table III: the scalar L1 ports equal the core's Mem FUs (1/2/4 for
    // MMX, 1/1/2 for VMMX).
    if (!overrides.has("mem.l1.ports"))
        m.mem.l1Ports = m.core.memPorts;

    // Table III: VMMX L2 vector port is 1 x 64/128/256-bit.
    if (isMatrix(kind) && !overrides.has("mem.vec.port_bytes")) {
        unsigned idx = way == 2 ? 0 : way == 4 ? 1 : 2;
        static const u32 vecBytes[3] = {8, 16, 32};
        m.mem.vecPortBytes = vecBytes[idx];
    }
    return m;
}

} // namespace vmmx
