#include "harness/executor.hh"

#include <atomic>
#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/telemetry.hh"
#include "dist/driver.hh"
#include "dist/wire.hh"
#include "sim/simd_dispatch.hh"

namespace vmmx
{

namespace
{

/** Raw (tier-1) trace of @p point, pinned while borrowed. */
TraceRepository::TraceHandle
resolveRaw(const SweepPoint &point, TraceRepository &repo)
{
    if (point.workload == SweepPoint::Workload::Trace)
        return TraceRepository::TraceHandle(point.trace);
    return repo.raw(traceKeyFor(point));
}

/** Decoded (tier-2) stream of @p point, pinned while borrowed. */
TraceRepository::DecodedHandle
resolveDecoded(const SweepPoint &point, TraceRepository &repo)
{
    if (point.workload == SweepPoint::Workload::Trace)
        return repo.decoded(point.trace);
    return repo.decoded(traceKeyFor(point));
}

/** Resolve @p lead's trace once (decoded tier or raw) and replay it on
 *  every machine; the single tier-dispatch site. */
std::vector<RunResult>
resolveAndRun(const SweepPoint &lead, std::span<const MachineConfig> machines,
              TraceRepository &repo, bool useDecoded, u64 &traceLength)
{
    if (useDecoded) {
        TraceRepository::DecodedHandle stream = resolveDecoded(lead, repo);
        traceLength = stream.records();
        return runTraceBatch(machines, stream.stream());
    }
    TraceRepository::TraceHandle trace = resolveRaw(lead, repo);
    traceLength = trace->size();
    return runTraceBatch(machines, *trace);
}

/** The resolved thread count of @p policy, capped at @p units. */
unsigned
effectiveThreads(const ExecutionPolicy &policy, size_t units)
{
    unsigned threads = policy.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    return std::min<unsigned>(threads, unsigned(units));
}

std::vector<u32>
allIndices(size_t n)
{
    std::vector<u32> all(n);
    for (u32 i = 0; i < all.size(); ++i)
        all[i] = i;
    return all;
}

} // namespace

ExecutionPolicy
ExecutionPolicy::fromEnv()
{
    ExecutionPolicy p;
    p.batch = env::flag("VMMX_SWEEP_BATCH", p.batch);
    p.decoded = env::flag("VMMX_SWEEP_DECODED", p.decoded);
    p.rawBudget = env::byteSize("VMMX_TRACE_CACHE_BUDGET");
    p.decodedBudget = env::byteSize("VMMX_DECODED_CACHE_BUDGET");
    p.storeDir = env::str("VMMX_TRACE_STORE");
    p.maxRespawns = dist::maxRespawnsFromEnv();
    p.unitTimeoutMs = dist::unitTimeoutMsFromEnv();
    p.maxUnitAttempts = dist::maxUnitAttemptsFromEnv();
    return p;
}

TraceRepository &
ExecutionPolicy::repository() const
{
    return repo ? *repo : TraceRepository::instance();
}

const char *
name(ExecutionPolicy::Backend b)
{
    switch (b) {
      case ExecutionPolicy::Backend::Serial: return "serial";
      case ExecutionPolicy::Backend::ThreadPool: return "threads";
      case ExecutionPolicy::Backend::Process: return "processes";
    }
    panic("bad backend %d", int(b));
}

bool
parseBackend(const std::string &text, ExecutionPolicy::Backend &b)
{
    if (text == "serial")
        b = ExecutionPolicy::Backend::Serial;
    else if (text == "threads")
        b = ExecutionPolicy::Backend::ThreadPool;
    else if (text == "processes")
        b = ExecutionPolicy::Backend::Process;
    else
        return false;
    return true;
}

SweepResult
runSweepPoint(const SweepPoint &point, const ExecutionPolicy &policy,
              bool useDecoded)
{
    MachineConfig machine = makeMachine(point.kind, point.way,
                                        point.overrides);
    SweepResult r;
    r.point = point;
    r.result = resolveAndRun(point, {&machine, 1}, policy.repository(),
                             useDecoded, r.traceLength)[0];
    return r;
}

void
runSweepUnit(const std::vector<SweepPoint> &points,
             const std::vector<u32> &unit, const ExecutionPolicy &policy,
             std::vector<SweepResult> &results)
{
    if (!policy.batch) {
        results[unit[0]] = runSweepPoint(points[unit[0]], policy,
                                         policy.decoded);
        return;
    }
    // One trace resolution and one trace pass for the whole group; with
    // the decoded tier on, even the decode happened at most once per
    // process, not once per group.
    std::vector<MachineConfig> machines;
    machines.reserve(unit.size());
    for (u32 i : unit)
        machines.push_back(makeMachine(points[i].kind, points[i].way,
                                       points[i].overrides));
    u64 unitStartNs = telemetry::enabled() ? telemetry::nowNs() : 0;
    std::string leadLabel =
        telemetry::enabled() ? points[unit[0]].label() : std::string();
    u64 traceLength = 0;
    std::vector<RunResult> runs;
    {
        TELEMETRY_SPAN("simulate",
                       leadLabel.empty()
                           ? std::string()
                           : leadLabel + " simd=" +
                                 simd::pathName(simd::pathFor(unit.size())));
        runs = resolveAndRun(points[unit[0]], machines,
                             policy.repository(), policy.decoded,
                             traceLength);
    }
    if (telemetry::enabled()) {
        telemetry::UnitRecord rec;
        rec.traceHash = wire::fnv1a(leadLabel.data(), leadLabel.size());
        rec.label = leadLabel;
        rec.points = u32(unit.size());
        rec.records = traceLength;
        rec.wallNs = telemetry::nowNs() - unitStartNs;
        // Attribute the unit's throughput to the step kernel that
        // produced it: width-1 units take the fused serial (scalar)
        // step, wider units the dispatched host-SIMD path.
        simd::Path path = simd::pathFor(unit.size());
        rec.simd = simd::pathName(path);
        telemetry::Registry &reg = telemetry::Registry::instance();
        reg.setGauge("sim.simd", u64(path));
        reg.addUnit(std::move(rec));
    }
    for (size_t k = 0; k < unit.size(); ++k) {
        SweepResult &r = results[unit[k]];
        r.point = points[unit[k]];
        r.traceLength = traceLength;
        r.result = runs[k];
    }
}

std::vector<SweepResult>
SerialExecutor::run(const std::vector<SweepPoint> &points,
                    const ExecutionPolicy &policy) const
{
    std::vector<std::vector<u32>> units =
        buildSweepUnits(points, allIndices(points.size()), policy.batch);
    std::vector<SweepResult> results(points.size());
    telemetry::Progress progress("sweep", points.size());
    u64 done = 0;
    for (const auto &unit : units) {
        runSweepUnit(points, unit, policy, results);
        done += unit.size();
        progress.update(done);
    }
    progress.finish(done);
    return results;
}

std::vector<SweepResult>
ThreadPoolExecutor::run(const std::vector<SweepPoint> &points,
                        const ExecutionPolicy &policy) const
{
    std::vector<std::vector<u32>> units =
        buildSweepUnits(points, allIndices(points.size()), policy.batch);
    unsigned threads = effectiveThreads(policy, units.size());

    if (threads <= 1) {
        std::vector<SweepResult> results(points.size());
        for (const auto &unit : units)
            runSweepUnit(points, unit, policy, results);
        return results;
    }

    // Units are independent (per-configuration MemorySystem/SimContext,
    // immutable shared trace artifacts); workers pull the next undone
    // unit and write into its submission-order slots, so the result
    // vector is deterministic.
    std::vector<SweepResult> results(points.size());
    std::atomic<size_t> next{0};
    std::atomic<u64> done{0};
    telemetry::Progress progress("sweep", points.size());
    auto worker = [&]() {
        for (size_t u = next.fetch_add(1); u < units.size();
             u = next.fetch_add(1)) {
            runSweepUnit(points, units[u], policy, results);
            progress.update(done.fetch_add(units[u].size()) +
                            units[u].size());
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    progress.finish(done.load());
    return results;
}

std::vector<SweepResult>
ProcessExecutor::run(const std::vector<SweepPoint> &points,
                     const ExecutionPolicy &policy) const
{
    dist::DistOptions dopts;
    dopts.processes = policy.processes;
    dopts.storeDir = policy.storeDir;
    dopts.cacheBudget = policy.rawBudget;
    dopts.decodedBudget = policy.decodedBudget;
    dopts.journalPath = policy.journalPath;
    dopts.batch = policy.batch;
    dopts.decoded = policy.decoded;
    dopts.maxRespawns = policy.maxRespawns;
    dopts.unitTimeoutMs = policy.unitTimeoutMs;
    dopts.maxUnitAttempts = policy.maxUnitAttempts;
    dopts.execPath = policy.execPath;
    dopts.execArgs = policy.execArgs;
    return dist::runSweep(points, dopts, policy.distStats);
}

const Executor &
executorFor(ExecutionPolicy::Backend backend)
{
    static const SerialExecutor serial;
    static const ThreadPoolExecutor threads;
    static const ProcessExecutor processes;
    switch (backend) {
      case ExecutionPolicy::Backend::Serial: return serial;
      case ExecutionPolicy::Backend::ThreadPool: return threads;
      case ExecutionPolicy::Backend::Process: return processes;
    }
    panic("bad backend %d", int(backend));
}

std::vector<SweepResult>
runPoints(const std::vector<SweepPoint> &points,
          const ExecutionPolicy &policy)
{
    return executorFor(policy.backend).run(points, policy);
}

} // namespace vmmx
