/**
 * @file
 * Experiment runner: replays a trace on a machine configuration and
 * returns the combined core + memory statistics.
 */

#ifndef VMMX_HARNESS_RUNNER_HH
#define VMMX_HARNESS_RUNNER_HH

#include "harness/machine.hh"
#include "sim/core.hh"

namespace vmmx
{

struct RunResult
{
    RunStats core;
    u64 l1Hits = 0;
    u64 l1Misses = 0;
    u64 l2Hits = 0;
    u64 l2Misses = 0;
    u64 vecAccesses = 0;
    u64 cohInvalidations = 0;

    Cycle cycles() const { return core.cycles; }

    /** Bit-exact comparison (sweep determinism checks). */
    bool operator==(const RunResult &o) const = default;
};

/** Run @p trace on @p machine from cold caches. */
RunResult runTrace(const MachineConfig &machine,
                   const std::vector<InstRecord> &trace);

} // namespace vmmx

#endif // VMMX_HARNESS_RUNNER_HH
