/**
 * @file
 * Experiment runner: replays a trace on one machine configuration -- or
 * on a whole batch of configurations in a single pass over the trace --
 * and returns the combined core + memory statistics per configuration.
 */

#ifndef VMMX_HARNESS_RUNNER_HH
#define VMMX_HARNESS_RUNNER_HH

#include <span>
#include <vector>

#include "harness/machine.hh"
#include "sim/core.hh"

namespace vmmx
{

struct RunResult
{
    RunStats core;
    u64 l1Hits = 0;
    u64 l1Misses = 0;
    u64 l2Hits = 0;
    u64 l2Misses = 0;
    u64 vecAccesses = 0;
    u64 cohInvalidations = 0;

    Cycle cycles() const { return core.cycles; }

    /** Bit-exact comparison (sweep determinism checks). */
    bool operator==(const RunResult &o) const = default;
};

/**
 * Run @p trace on every configuration in @p machines from cold caches,
 * streaming the trace once: each record is decoded one time and stepped
 * through all configurations' SimContexts before the next is touched.
 * Results are in @p machines order and bit-identical to calling
 * runTrace() per configuration.
 */
std::vector<RunResult> runTraceBatch(std::span<const MachineConfig> machines,
                                     const std::vector<InstRecord> &trace);

/** Run @p trace on @p machine from cold caches (the batch-of-one case). */
RunResult runTrace(const MachineConfig &machine,
                   const std::vector<InstRecord> &trace);

} // namespace vmmx

#endif // VMMX_HARNESS_RUNNER_HH
