/**
 * @file
 * Experiment runner: replays a trace on one machine configuration -- or
 * on a whole batch of configurations in a single pass over the trace --
 * and returns the combined core + memory statistics per configuration.
 *
 * Both entry points come in two shapes: the raw-trace overloads decode
 * on the fly (block-wise), while the DecodedStream overloads replay an
 * already-decoded stream -- typically a TraceRepository tier-2 handle,
 * so the decode is paid once per process instead of once per call.
 * The per-record step order is identical, so the two shapes produce
 * bit-identical results.
 */

#ifndef VMMX_HARNESS_RUNNER_HH
#define VMMX_HARNESS_RUNNER_HH

#include <span>
#include <vector>

#include "harness/machine.hh"
#include "sim/core.hh"

namespace vmmx
{

struct RunResult
{
    RunStats core;
    u64 l1Hits = 0;
    u64 l1Misses = 0;
    u64 l2Hits = 0;
    u64 l2Misses = 0;
    u64 vecAccesses = 0;
    u64 cohInvalidations = 0;

    Cycle cycles() const { return core.cycles; }

    /** Bit-exact comparison (sweep determinism checks). */
    bool operator==(const RunResult &o) const = default;
};

/**
 * Run @p trace on every configuration in @p machines from cold caches,
 * streaming the trace once: each record is decoded one time and stepped
 * through all configurations' SimContexts before the next is touched.
 * Results are in @p machines order and bit-identical to calling
 * runTrace() per configuration.
 */
std::vector<RunResult> runTraceBatch(std::span<const MachineConfig> machines,
                                     const std::vector<InstRecord> &trace);

/** Batched replay of a pre-decoded stream: no decode at all, results
 *  bit-identical to the raw-trace overload on the source trace. */
std::vector<RunResult> runTraceBatch(std::span<const MachineConfig> machines,
                                     const DecodedStream &stream);

/** Run @p trace on @p machine from cold caches (the batch-of-one case). */
RunResult runTrace(const MachineConfig &machine,
                   const std::vector<InstRecord> &trace);

/** Batch-of-one replay of a pre-decoded stream. */
RunResult runTrace(const MachineConfig &machine, const DecodedStream &stream);

} // namespace vmmx

#endif // VMMX_HARNESS_RUNNER_HH
