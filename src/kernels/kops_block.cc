#include "kernels/kops_block.hh"

#include "common/saturate.hh"

namespace vmmx::kops
{

void
goldenComp(MemImage &mem, Addr a, Addr b, Addr out, unsigned w, unsigned h,
           unsigned lx, unsigned outLx)
{
    for (unsigned j = 0; j < h; ++j)
        for (unsigned i = 0; i < w; ++i)
            mem.write8(out + j * outLx + i,
                       avgU8(mem.read8(a + j * lx + i),
                             mem.read8(b + j * lx + i)));
}

void
compScalar(Program &p, SReg a, SReg b, SReg out, unsigned w, unsigned h,
           unsigned lx, unsigned outLx)
{
    auto f = p.mark();
    SReg va = p.sreg();
    SReg vb = p.sreg();
    SReg ca = p.sreg();
    SReg cb = p.sreg();
    SReg co = p.sreg();
    p.mov(ca, a);
    p.mov(cb, b);
    p.mov(co, out);

    p.forLoop(h, [&](SReg) {
        p.forLoop(w, [&](SReg i) {
            p.add(va, ca, i);
            p.load(va, va, 0, 1);
            p.add(vb, cb, i);
            p.load(vb, vb, 0, 1);
            p.add(va, va, vb);
            p.addi(va, va, 1);
            p.srli(va, va, 1);
            p.add(vb, co, i);
            p.store(va, vb, 0, 1);
        });
        p.addi(ca, ca, lx);
        p.addi(cb, cb, lx);
        p.addi(co, co, outLx);
    });
    p.release(f);
}

void
compMmx(Program &p, Mmx &m, SReg a, SReg b, SReg out, unsigned w,
        unsigned h, unsigned lx, unsigned outLx)
{
    // An 8-pixel row fits a 64-bit register; the 128-bit flavour gains
    // nothing (the paper's point about narrow data structures).
    auto f = p.mark();
    SReg ca = p.sreg();
    SReg cb = p.sreg();
    SReg co = p.sreg();
    p.mov(ca, a);
    p.mov(cb, b);
    p.mov(co, out);

    VR r1 = p.vreg();
    VR r2 = p.vreg();
    vmmx_assert(w == 8, "comp kernel operates on 8-pixel rows");

    bool wide = m.width() == 16;
    p.forLoop(h, [&](SReg) {
        // Rows are only 8 pixels: the 128-bit flavour uses MOVQ-style
        // half transfers and gains nothing over MMX64 (the paper's
        // point about narrow data structures).
        if (wide)
            m.loadLow(r1, ca, 0);
        else
            m.load(r1, ca, 0);
        p.addi(ca, ca, lx);
        if (wide)
            m.loadLow(r2, cb, 0);
        else
            m.load(r2, cb, 0);
        p.addi(cb, cb, lx);
        m.pavg(r1, r1, r2, ElemWidth::B8);
        if (wide)
            m.storeLow(r1, co, 0);
        else
            m.store(r1, co, 0);
        p.addi(co, co, outLx);
    });
    p.release(f);
}

void
compVmmx(Program &p, Vmmx &v, SReg a, SReg b, SReg out, unsigned w,
         unsigned h, SReg lx, SReg outLx)
{
    auto f = p.mark();
    vmmx_assert(w == 8, "comp kernel operates on 8-pixel rows");
    v.setvl(u16(h));

    VR r1 = p.vreg();
    VR r2 = p.vreg();
    if (v.width() == 16) {
        // 8-pixel rows half-fill the 128-bit rows: partial movement.
        v.loadHalf(r1, a, 0, lx);
        v.loadHalf(r2, b, 0, lx);
        v.pavg(r1, r1, r2, ElemWidth::B8);
        v.storeHalf(r1, out, 0, outLx);
    } else {
        v.load(r1, a, 0, lx);
        v.load(r2, b, 0, lx);
        v.pavg(r1, r1, r2, ElemWidth::B8);
        v.store(r1, out, 0, outLx);
    }
    p.release(f);
}

void
goldenAddblock(MemImage &mem, Addr pred, Addr res, Addr out, unsigned lx,
               unsigned outLx)
{
    for (unsigned j = 0; j < 8; ++j) {
        for (unsigned i = 0; i < 8; ++i) {
            s32 r = s16(mem.read16(res + (j * 8 + i) * 2));
            s32 v = s32(mem.read8(pred + j * lx + i)) + r;
            mem.write8(out + j * outLx + i,
                       u8(std::clamp<s32>(v, 0, 255)));
        }
    }
}

void
addblockScalar(Program &p, SReg pred, SReg res, SReg out, unsigned lx,
               unsigned outLx)
{
    auto f = p.mark();
    SReg vp = p.sreg();
    SReg vr = p.sreg();
    SReg t = p.sreg();
    SReg cp = p.sreg();
    SReg cr = p.sreg();
    SReg co = p.sreg();
    SReg c255 = p.sreg();
    SReg zero = p.sreg();
    p.mov(cp, pred);
    p.mov(cr, res);
    p.mov(co, out);
    p.li(c255, 255);
    p.li(zero, 0);

    p.forLoop(8, [&](SReg) {
        p.forLoop(8, [&](SReg i) {
            p.add(vp, cp, i);
            p.load(vp, vp, 0, 1);
            p.slli(t, i, 1);
            p.add(vr, cr, t);
            p.load(vr, vr, 0, 2, true);
            p.add(vp, vp, vr);
            if (p.brLt(vp, zero))
                p.mov(vp, zero);
            if (p.brLt(c255, vp))
                p.mov(vp, c255);
            p.add(t, co, i);
            p.store(vp, t, 0, 1);
        });
        p.addi(cp, cp, lx);
        p.addi(cr, cr, 16);
        p.addi(co, co, outLx);
    });
    p.release(f);
}

void
addblockMmx(Program &p, Mmx &m, SReg pred, SReg res, SReg out, unsigned lx,
            unsigned outLx)
{
    auto f = p.mark();
    SReg cp = p.sreg();
    SReg cr = p.sreg();
    SReg co = p.sreg();
    p.mov(cp, pred);
    p.mov(cr, res);
    p.mov(co, out);

    VR z = p.vreg();
    VR pr = p.vreg();
    VR lo = p.vreg();
    VR hi = p.vreg();
    m.pzero(z);

    bool wide = m.width() == 16;
    p.forLoop(8, [&](SReg) {
        // 8 prediction pixels per row.
        if (wide)
            m.loadLow(pr, cp, 0);
        else
            m.load(pr, cp, 0);
        p.addi(cp, cp, lx);
        if (wide) {
            // Residual row: eight s16 = 16 bytes = one load.
            m.load(lo, cr, 0);
            p.addi(cr, cr, 16);
            m.unpckl(hi, pr, z, ElemWidth::B8);
            m.padds(hi, hi, lo, ElemWidth::W16, true);
            m.packus(hi, hi, z, ElemWidth::W16);
            m.storeLow(hi, co, 0); // 8 valid result bytes
        } else {
            m.load(lo, cr, 0);
            m.load(hi, cr, 8);
            p.addi(cr, cr, 16);
            VR plo = p.vreg();
            m.unpckl(plo, pr, z, ElemWidth::B8);
            m.padds(lo, lo, plo, ElemWidth::W16, true);
            m.unpckh(plo, pr, z, ElemWidth::B8);
            m.padds(hi, hi, plo, ElemWidth::W16, true);
            m.packus(lo, lo, hi, ElemWidth::W16);
            m.store(lo, co, 0);
        }
        p.addi(co, co, outLx);
    });
    p.release(f);
}

void
addblockVmmx(Program &p, Vmmx &v, SReg pred, SReg res, SReg out, SReg lx,
             SReg outLx)
{
    auto f = p.mark();
    v.setvl(8);

    VR z = p.vreg();
    VR pr = p.vreg();
    VR plo = p.vreg();
    v.vzero(z);

    if (v.width() == 16) {
        // Residual rows are 16 bytes (unit stride); prediction rows are
        // 8 u8 inside the frame (strided, half-used rows).
        VR re = p.vreg();
        SReg sixteen = p.sreg();
        p.li(sixteen, 16);
        v.loadHalf(pr, pred, 0, lx);
        v.load(re, res, 0, sixteen);
        v.unpckl(plo, pr, z, ElemWidth::B8);
        v.padds(plo, plo, re, ElemWidth::W16, true);
        v.packus(plo, plo, z, ElemWidth::W16);
        v.storeHalf(plo, out, 0, outLx);
    } else {
        VR rlo = p.vreg();
        VR rhi = p.vreg();
        VR phi = p.vreg();
        SReg sixteen = p.sreg();
        p.li(sixteen, 16);
        v.load(pr, pred, 0, lx);
        v.load(rlo, res, 0, sixteen);
        v.load(rhi, res, 8, sixteen);
        v.unpckl(plo, pr, z, ElemWidth::B8);
        v.unpckh(phi, pr, z, ElemWidth::B8);
        v.padds(plo, plo, rlo, ElemWidth::W16, true);
        v.padds(phi, phi, rhi, ElemWidth::W16, true);
        v.packus(plo, plo, phi, ElemWidth::W16);
        v.store(plo, out, 0, outLx);
    }
    p.release(f);
}

} // namespace vmmx::kops
