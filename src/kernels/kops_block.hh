/**
 * @file
 * Small block primitives from the MPEG-2 decoder: bidirectional motion
 * compensation (comp, 8x4 u8 averaging) and block reconstruction
 * (addblock, 8x8: prediction u8 + residual s16 -> saturated u8).
 */

#ifndef VMMX_KERNELS_KOPS_BLOCK_HH
#define VMMX_KERNELS_KOPS_BLOCK_HH

#include "trace/mmx.hh"
#include "trace/program.hh"
#include "trace/vmmx.hh"

namespace vmmx::kops
{

/** Golden comp: out[j][i] = (a[j][i] + b[j][i] + 1) >> 1 over w x h. */
void goldenComp(MemImage &mem, Addr a, Addr b, Addr out, unsigned w,
                unsigned h, unsigned lx, unsigned outLx);

void compScalar(Program &p, SReg a, SReg b, SReg out, unsigned w,
                unsigned h, unsigned lx, unsigned outLx);
void compMmx(Program &p, Mmx &m, SReg a, SReg b, SReg out, unsigned w,
             unsigned h, unsigned lx, unsigned outLx);
void compVmmx(Program &p, Vmmx &v, SReg a, SReg b, SReg out, unsigned w,
              unsigned h, SReg lx, SReg outLx);

/** Golden addblock: out = clamp_u8(pred + res) over 8x8; res is s16. */
void goldenAddblock(MemImage &mem, Addr pred, Addr res, Addr out,
                    unsigned lx, unsigned outLx);

void addblockScalar(Program &p, SReg pred, SReg res, SReg out, unsigned lx,
                    unsigned outLx);
void addblockMmx(Program &p, Mmx &m, SReg pred, SReg res, SReg out,
                 unsigned lx, unsigned outLx);
void addblockVmmx(Program &p, Vmmx &v, SReg pred, SReg res, SReg out,
                  SReg lx, SReg outLx);

} // namespace vmmx::kops

#endif // VMMX_KERNELS_KOPS_BLOCK_HH
