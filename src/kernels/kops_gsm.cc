#include "kernels/kops_gsm.hh"

#include "common/saturate.hh"
#include "kernels/kops_util.hh"

namespace vmmx::kops
{

namespace
{

s64
goldenCorr(const MemImage &mem, Addr d, Addr hist, unsigned lag)
{
    s64 sum = 0;
    for (unsigned k = 0; k < 40; ++k) {
        s64 a = s16(mem.read16(d + 2 * k));
        s64 b = s16(mem.read16(hist + 2 * (120 + k - lag)));
        sum += a * b;
    }
    return sum;
}

} // namespace

void
goldenLtppar(MemImage &mem, Addr d, Addr hist, Addr outLag, Addr outBc)
{
    s64 best = goldenCorr(mem, d, hist, 40);
    unsigned bestLag = 40;
    for (unsigned lag = 41; lag <= 120; ++lag) {
        s64 c = goldenCorr(mem, d, hist, lag);
        if (c > best) {
            best = c;
            bestLag = lag;
        }
    }
    // Gain index: compare the winning correlation against the history
    // power scaled by the DLB thresholds.
    s64 power = 0;
    for (unsigned k = 0; k < 40; ++k) {
        s64 b = s16(mem.read16(hist + 2 * (120 + k - bestLag)));
        power += b * b;
    }
    unsigned bc = 0;
    for (unsigned i = 0; i < 3; ++i) {
        if (best > asr64(gsmDLB[i] * power, 15))
            bc = i + 1;
    }
    mem.write16(outLag, u16(bestLag));
    mem.write16(outBc, u16(bc));
}

void
ltpparScalar(Program &p, SReg d, SReg hist, SReg outLag, SReg outBc)
{
    auto f = p.mark();
    SReg corr = p.sreg();
    SReg best = p.sreg();
    SReg bestLag = p.sreg();
    SReg hptr = p.sreg();
    SReg a = p.sreg();
    SReg b = p.sreg();
    SReg t = p.sreg();

    p.li(best, u64(s64(-1) << 62));
    p.li(bestLag, 40);

    p.forLoop(81, [&](SReg li) {
        // hptr = hist + 2 * (120 - (40 + li))
        p.li(t, 80);
        p.sub(t, t, li);
        p.slli(t, t, 1);
        p.add(hptr, hist, t);
        p.li(corr, 0);
        p.forLoop(40, [&](SReg k) {
            p.slli(t, k, 1);
            p.add(a, d, t);
            p.load(a, a, 0, 2, true);
            p.add(b, hptr, t);
            p.load(b, b, 0, 2, true);
            p.mul(a, a, b);
            p.add(corr, corr, a);
        });
        if (p.brLt(best, corr)) {
            p.mov(best, corr);
            p.addi(bestLag, li, 40);
        }
    });

    // Power of the winning window and gain quantisation.
    SReg power = p.sreg();
    p.li(power, 0);
    p.li(t, 120);
    p.sub(t, t, bestLag);
    p.slli(t, t, 1);
    p.add(hptr, hist, t);
    p.forLoop(40, [&](SReg k) {
        p.slli(t, k, 1);
        p.add(b, hptr, t);
        p.load(b, b, 0, 2, true);
        p.mul(b, b, b);
        p.add(power, power, b);
    });
    SReg bc = p.sreg();
    p.li(bc, 0);
    for (unsigned i = 0; i < 3; ++i) {
        p.muli(t, power, gsmDLB[i]);
        p.srai(t, t, 15);
        if (p.brLt(t, best))
            p.li(bc, i + 1);
    }
    p.store(bestLag, outLag, 0, 2);
    p.store(bc, outBc, 0, 2);
    p.release(f);
}

void
ltpparMmx(Program &p, Mmx &m, SReg d, SReg hist, SReg outLag, SReg outBc)
{
    auto f = p.mark();
    unsigned w = m.width();
    unsigned chunks = 80 / w; // 10 for MMX64, 5 for MMX128

    // Keep the residual resident in registers across the whole search.
    std::vector<VR> dr(chunks);
    for (unsigned c = 0; c < chunks; ++c) {
        dr[c] = p.vreg();
        m.load(dr[c], d, s64(c * w));
    }
    VR h = p.vreg();
    VR acc = p.vreg();
    SReg corr = p.sreg();
    SReg best = p.sreg();
    SReg bestLag = p.sreg();
    SReg hptr = p.sreg();
    SReg t = p.sreg();
    p.li(best, u64(s64(-1) << 62));
    p.li(bestLag, 40);

    p.forLoop(81, [&](SReg li) {
        p.li(t, 80);
        p.sub(t, t, li);
        p.slli(t, t, 1);
        p.add(hptr, hist, t);
        for (unsigned c = 0; c < chunks; ++c) {
            m.load(h, hptr, s64(c * w));
            m.pmadd(h, dr[c], h);
            if (c == 0)
                m.por(acc, h, h);
            else
                m.padd(acc, acc, h, ElemWidth::D32);
        }
        m.psum(corr, acc, ElemWidth::D32, true);
        if (p.brLt(best, corr)) {
            p.mov(best, corr);
            p.addi(bestLag, li, 40);
        }
    });

    SReg power = p.sreg();
    p.li(t, 120);
    p.sub(t, t, bestLag);
    p.slli(t, t, 1);
    p.add(hptr, hist, t);
    for (unsigned c = 0; c < chunks; ++c) {
        m.load(h, hptr, s64(c * w));
        m.pmadd(h, h, h);
        if (c == 0)
            m.por(acc, h, h);
        else
            m.padd(acc, acc, h, ElemWidth::D32);
    }
    m.psum(power, acc, ElemWidth::D32, true);

    SReg bc = p.sreg();
    p.li(bc, 0);
    for (unsigned i = 0; i < 3; ++i) {
        p.muli(t, power, gsmDLB[i]);
        p.srai(t, t, 15);
        if (p.brLt(t, best))
            p.li(bc, i + 1);
    }
    p.store(bestLag, outLag, 0, 2);
    p.store(bc, outBc, 0, 2);
    p.release(f);
}

void
ltpparVmmx(Program &p, Vmmx &v, SReg d, SReg hist, SReg outLag, SReg outBc)
{
    auto f = p.mark();
    unsigned w = v.width();
    u16 rows = u16(80 / w); // 10 for VMMX64, 5 for VMMX128
    v.setvl(rows);

    VR dr = p.vreg();
    VR h = p.vreg();
    AR acc = p.areg();
    v.loadU(dr, d, 0); // residual stays in one matrix register

    SReg corr = p.sreg();
    SReg best = p.sreg();
    SReg bestLag = p.sreg();
    SReg hptr = p.sreg();
    SReg t = p.sreg();
    p.li(best, u64(s64(-1) << 62));
    p.li(bestLag, 40);

    p.forLoop(81, [&](SReg li) {
        p.li(t, 80);
        p.sub(t, t, li);
        p.slli(t, t, 1);
        p.add(hptr, hist, t);
        v.accclr(acc);
        v.loadU(h, hptr, 0);
        v.vmacc(acc, dr, h);
        v.accsum(corr, acc);
        if (p.brLt(best, corr)) {
            p.mov(best, corr);
            p.addi(bestLag, li, 40);
        }
    });

    SReg power = p.sreg();
    p.li(t, 120);
    p.sub(t, t, bestLag);
    p.slli(t, t, 1);
    p.add(hptr, hist, t);
    v.accclr(acc);
    v.loadU(h, hptr, 0);
    v.vmacc(acc, h, h);
    v.accsum(power, acc);

    SReg bc = p.sreg();
    p.li(bc, 0);
    for (unsigned i = 0; i < 3; ++i) {
        p.muli(t, power, gsmDLB[i]);
        p.srai(t, t, 15);
        if (p.brLt(t, best))
            p.li(bc, i + 1);
    }
    p.store(bestLag, outLag, 0, 2);
    p.store(bc, outBc, 0, 2);
    p.release(f);
}

void
goldenLtpfilt(MemImage &mem, Addr erp, Addr buf, Addr nc, Addr bc)
{
    for (unsigned sub = 0; sub < 3; ++sub) {
        unsigned ncv = mem.read16(nc + 2 * sub);
        unsigned bcv = mem.read16(bc + 2 * sub);
        s64 qlb = gsmQLB[bcv & 3];
        for (unsigned k = 0; k < 40; ++k) {
            unsigned idx = 120 + sub * 40 + k;
            s64 histv = s16(mem.read16(buf + 2 * (idx - ncv)));
            s64 pred = asr64(qlb * histv + 16384, 15);
            s64 e = s16(mem.read16(erp + 2 * (sub * 40 + k)));
            mem.write16(buf + 2 * idx, u16(clampTo<s16>(e + pred)));
        }
    }
}

void
ltpfiltScalar(Program &p, SReg erp, SReg buf, SReg nc, SReg bc)
{
    auto f = p.mark();
    SReg ncv = p.sreg();
    SReg qlb = p.sreg();
    SReg t = p.sreg();
    SReg e = p.sreg();
    SReg hv = p.sreg();
    SReg dst = p.sreg();
    SReg hi = p.sreg();
    SReg lo = p.sreg();
    p.li(hi, 32767);
    p.li(lo, u64(s64(-32768)));

    // QLB lookup table in the constant pool.
    u16 qtab[4];
    for (unsigned i = 0; i < 4; ++i)
        qtab[i] = u16(gsmQLB[i]);
    Addr qaddr = stash(p, qtab, sizeof(qtab));
    SReg qbase = p.sreg();
    p.li(qbase, qaddr);

    for (unsigned sub = 0; sub < 3; ++sub) {
        // ncv = nc[sub]; qlb = QLB[bc[sub]]
        p.load(ncv, nc, s64(2 * sub), 2);
        p.load(qlb, bc, s64(2 * sub), 2);
        p.slli(qlb, qlb, 1);
        p.add(qlb, qlb, qbase);
        p.load(qlb, qlb, 0, 2);
        // dst = buf + 2*(120 + sub*40); src hist = dst - 2*ncv
        p.li(dst, u64(2 * (120 + sub * 40)));
        p.add(dst, dst, buf);
        p.slli(ncv, ncv, 1);
        p.sub(ncv, dst, ncv);
        p.forLoop(40, [&](SReg k) {
            p.slli(t, k, 1);
            p.add(hv, ncv, t);
            p.load(hv, hv, 0, 2, true);
            p.mul(hv, hv, qlb);
            p.addi(hv, hv, 16384);
            p.srai(hv, hv, 15);
            p.add(e, erp, t);
            p.load(e, e, s64(2 * (sub * 40)), 2, true);
            p.add(e, e, hv);
            if (p.brLt(hi, e))
                p.mov(e, hi);
            if (p.brLt(e, lo))
                p.mov(e, lo);
            p.add(t, dst, t);
            p.store(e, t, 0, 2);
        });
    }
    p.release(f);
}

namespace
{

/** Per-subframe scalar setup shared by both packed engines. */
void
ltpfiltPackedSetup(Program &p, SReg nc, SReg bc, unsigned sub, SReg ncv,
                   SReg qlb, SReg dst, SReg buf, SReg erpp, SReg erp,
                   SReg qbase)
{
    p.load(ncv, nc, s64(2 * sub), 2);
    p.load(qlb, bc, s64(2 * sub), 2);
    p.slli(qlb, qlb, 1);
    p.add(qlb, qlb, qbase);
    p.load(qlb, qlb, 0, 2);
    p.li(dst, u64(2 * (120 + sub * 40)));
    p.add(dst, dst, buf);
    p.slli(ncv, ncv, 1);
    p.sub(ncv, dst, ncv);
    p.li(erpp, u64(2 * (sub * 40)));
    p.add(erpp, erpp, erp);
}

} // namespace

void
ltpfiltMmx(Program &p, Mmx &m, SReg erp, SReg buf, SReg nc, SReg bc)
{
    auto f = p.mark();
    unsigned w = m.width();
    unsigned chunks = 80 / w;

    u16 qtab[4];
    for (unsigned i = 0; i < 4; ++i)
        qtab[i] = u16(gsmQLB[i]);
    Addr qaddr = stash(p, qtab, sizeof(qtab));
    SReg qbase = p.sreg();
    p.li(qbase, qaddr);

    SReg ncv = p.sreg();
    SReg qlb = p.sreg();
    SReg dst = p.sreg();
    SReg erpp = p.sreg();
    VR mul = p.vreg();
    VR bias = p.vreg();
    VR h = p.vreg();
    VR sgn = p.vreg();
    VR lo32 = p.vreg();
    VR hi32 = p.vreg();
    VR e = p.vreg();
    msplat32(p, m, bias, 16384);

    for (unsigned sub = 0; sub < 3; ++sub) {
        ltpfiltPackedSetup(p, nc, bc, sub, ncv, qlb, dst, buf, erpp, erp,
                           qbase);
        m.psplat(mul, qlb, ElemWidth::D32);
        for (unsigned c = 0; c < chunks; ++c) {
            s64 off = s64(c * w);
            m.load(h, ncv, off);
            // Sign-extend s16 -> s32 halves, multiply, round, shift.
            m.psrai(sgn, h, 15, ElemWidth::W16);
            m.unpckl(lo32, h, sgn, ElemWidth::W16);
            m.unpckh(hi32, h, sgn, ElemWidth::W16);
            m.pmull(lo32, lo32, mul, ElemWidth::D32);
            m.pmull(hi32, hi32, mul, ElemWidth::D32);
            m.padd(lo32, lo32, bias, ElemWidth::D32);
            m.padd(hi32, hi32, bias, ElemWidth::D32);
            m.psrai(lo32, lo32, 15, ElemWidth::D32);
            m.psrai(hi32, hi32, 15, ElemWidth::D32);
            m.packs(lo32, lo32, hi32, ElemWidth::D32);
            m.load(e, erpp, off);
            m.padds(e, e, lo32, ElemWidth::W16, true);
            m.store(e, dst, off);
        }
    }
    p.release(f);
}

void
ltpfiltVmmx(Program &p, Vmmx &v, SReg erp, SReg buf, SReg nc, SReg bc)
{
    auto f = p.mark();
    unsigned w = v.width();
    u16 rows = u16(80 / w);
    v.setvl(rows);

    u16 qtab[4];
    for (unsigned i = 0; i < 4; ++i)
        qtab[i] = u16(gsmQLB[i]);
    Addr qaddr = stash(p, qtab, sizeof(qtab));
    SReg qbase = p.sreg();
    p.li(qbase, qaddr);

    SReg ncv = p.sreg();
    SReg qlb = p.sreg();
    SReg dst = p.sreg();
    SReg erpp = p.sreg();
    VR mul = p.vreg();
    VR bias = p.vreg();
    VR h = p.vreg();
    VR sgn = p.vreg();
    VR lo32 = p.vreg();
    VR hi32 = p.vreg();
    VR e = p.vreg();
    vsplat32(p, v, bias, 16384);

    for (unsigned sub = 0; sub < 3; ++sub) {
        ltpfiltPackedSetup(p, nc, bc, sub, ncv, qlb, dst, buf, erpp, erp,
                           qbase);
        v.vsplat(mul, qlb, ElemWidth::D32);
        v.loadU(h, ncv, 0);
        v.psrai(sgn, h, 15, ElemWidth::W16);
        v.unpckl(lo32, h, sgn, ElemWidth::W16);
        v.unpckh(hi32, h, sgn, ElemWidth::W16);
        v.pmull(lo32, lo32, mul, ElemWidth::D32);
        v.pmull(hi32, hi32, mul, ElemWidth::D32);
        v.padd(lo32, lo32, bias, ElemWidth::D32);
        v.padd(hi32, hi32, bias, ElemWidth::D32);
        v.psrai(lo32, lo32, 15, ElemWidth::D32);
        v.psrai(hi32, hi32, 15, ElemWidth::D32);
        v.packs(lo32, lo32, hi32, ElemWidth::D32);
        v.loadU(e, erpp, 0);
        v.padds(e, e, lo32, ElemWidth::W16, true);
        v.storeU(e, dst, 0);
    }
    p.release(f);
}

} // namespace vmmx::kops
