#include "kernels/kops_resample.hh"

#include "kernels/kops_util.hh"

namespace vmmx::kops
{

void
goldenH2v2(MemImage &mem, Addr src, unsigned srcPitch, Addr dst,
           unsigned dstPitch, unsigned W, unsigned H)
{
    auto at = [&](int r, int c) -> s32 {
        return mem.read8(src + Addr(r) * srcPitch + Addr(c));
    };
    for (unsigned r = 0; r < H; ++r) {
        for (unsigned c = 0; c < W; ++c) {
            s32 vm[2]; // vertically filtered: [adj=r-1, adj=r+1]
            s32 v0[2];
            s32 vp[2];
            for (int ph = 0; ph < 2; ++ph) {
                int ar = ph == 0 ? int(r) - 1 : int(r) + 1;
                vm[ph] = 3 * at(r, int(c) - 1) + at(ar, int(c) - 1);
                v0[ph] = 3 * at(r, c) + at(ar, c);
                vp[ph] = 3 * at(r, int(c) + 1) + at(ar, int(c) + 1);
            }
            for (int ph = 0; ph < 2; ++ph) {
                Addr row = dst + Addr(2 * r + ph) * dstPitch;
                mem.write8(row + 2 * c, u8((3 * v0[ph] + vm[ph] + 8) >> 4));
                mem.write8(row + 2 * c + 1,
                           u8((3 * v0[ph] + vp[ph] + 7) >> 4));
            }
        }
    }
}

void
h2v2Scalar(Program &p, SReg src, unsigned srcPitch, SReg dst,
           unsigned dstPitch, unsigned W, unsigned H)
{
    auto f = p.mark();
    SReg cur = p.sreg();
    SReg adj = p.sreg();
    SReg orow = p.sreg();
    SReg a = p.sreg();
    SReg b = p.sreg();
    SReg v0 = p.sreg();
    SReg vn = p.sreg();
    SReg t = p.sreg();

    p.forLoop(H, [&](SReg r) {
        // cur = src + r * srcPitch
        p.muli(cur, r, srcPitch);
        p.add(cur, cur, src);
        for (int ph = 0; ph < 2; ++ph) {
            p.addi(adj, cur, ph == 0 ? -s64(srcPitch) : s64(srcPitch));
            p.slli(orow, r, 1);
            p.addi(orow, orow, ph);
            p.muli(orow, orow, dstPitch);
            p.add(orow, orow, dst);
            p.forLoop(W, [&](SReg c) {
                // v0 = 3*cur[c] + adj[c]
                p.add(t, cur, c);
                p.load(a, t, 0, 1);
                p.add(t, adj, c);
                p.load(b, t, 0, 1);
                p.slli(v0, a, 1);
                p.add(v0, v0, a);
                p.add(v0, v0, b);
                // vm = 3*cur[c-1] + adj[c-1]
                p.add(t, cur, c);
                p.load(a, t, -1, 1);
                p.add(t, adj, c);
                p.load(b, t, -1, 1);
                p.slli(vn, a, 1);
                p.add(vn, vn, a);
                p.add(vn, vn, b);
                // even output
                p.slli(a, v0, 1);
                p.add(a, a, v0);
                p.add(a, a, vn);
                p.addi(a, a, 8);
                p.srli(a, a, 4);
                p.slli(t, c, 1);
                p.add(t, t, orow);
                p.store(a, t, 0, 1);
                // vp = 3*cur[c+1] + adj[c+1]
                p.add(t, cur, c);
                p.load(a, t, 1, 1);
                p.add(t, adj, c);
                p.load(b, t, 1, 1);
                p.slli(vn, a, 1);
                p.add(vn, vn, a);
                p.add(vn, vn, b);
                // odd output
                p.slli(a, v0, 1);
                p.add(a, a, v0);
                p.add(a, a, vn);
                p.addi(a, a, 7);
                p.srli(a, a, 4);
                p.slli(t, c, 1);
                p.add(t, t, orow);
                p.store(a, t, 1, 1);
            });
        }
    });
    p.release(f);
}

namespace
{

/**
 * Shared packed recipe: both engines expose identical arithmetic method
 * names; the adapter supplies memory ops.  Processes one w-pixel chunk
 * of one (row-block, phase) at a time.
 */
template <typename E, typename Ad>
void
h2v2PackedChunk(Program &/*p*/, E &e, Ad &ad, VR z, VR b8, VR b7, VR c16,
                VR a16, VR v0, VR vn, VR e16, VR o16, VR t, unsigned half)
{
    auto widen = [&](VR d, VR src8) {
        if (half == 0)
            e.unpckl(d, src8, z, ElemWidth::B8);
        else
            e.unpckh(d, src8, z, ElemWidth::B8);
    };
    auto vfilter = [&](VR d, s64 off) {
        ad.loadCur(c16, off);
        ad.loadAdj(a16, off);
        widen(t, c16);
        widen(d, a16);
        e.padd(d, d, t, ElemWidth::W16);
        e.padd(t, t, t, ElemWidth::W16);
        e.padd(d, d, t, ElemWidth::W16);
    };

    vfilter(v0, 0);

    // even = (3 v0 + v(-1) + 8) >> 4
    vfilter(vn, -1);
    e.padd(e16, v0, v0, ElemWidth::W16);
    e.padd(e16, e16, v0, ElemWidth::W16);
    e.padd(e16, e16, vn, ElemWidth::W16);
    e.padd(e16, e16, b8, ElemWidth::W16);
    e.psrli(e16, e16, 4, ElemWidth::W16);

    // odd = (3 v0 + v(+1) + 7) >> 4
    vfilter(vn, 1);
    e.padd(o16, v0, v0, ElemWidth::W16);
    e.padd(o16, o16, v0, ElemWidth::W16);
    e.padd(o16, o16, vn, ElemWidth::W16);
    e.padd(o16, o16, b7, ElemWidth::W16);
    e.psrli(o16, o16, 4, ElemWidth::W16);

    // Interleave and narrow: bytes [e0 o0 e1 o1 ...].
    e.unpckl(t, e16, o16, ElemWidth::W16);
    e.unpckh(vn, e16, o16, ElemWidth::W16);
    e.packus(t, t, vn, ElemWidth::W16);
    ad.storeOut(t, half);
}

} // namespace

void
h2v2Mmx(Program &p, Mmx &m, SReg src, unsigned srcPitch, SReg dst,
        unsigned dstPitch, unsigned W, unsigned H)
{
    auto f = p.mark();
    unsigned w = m.width();
    vmmx_assert(W % w == 0, "width must be a chunk multiple");

    VR z = p.vreg();
    VR b8 = p.vreg();
    VR b7 = p.vreg();
    m.pzero(z);
    msplat16(p, m, b8, 8);
    msplat16(p, m, b7, 7);
    VR c16 = p.vreg();
    VR a16 = p.vreg();
    VR v0 = p.vreg();
    VR vn = p.vreg();
    VR e16 = p.vreg();
    VR o16 = p.vreg();
    VR t = p.vreg();

    SReg cur = p.sreg();
    SReg adj = p.sreg();
    SReg orow = p.sreg();

    struct Ad
    {
        Program &p;
        Mmx &m;
        SReg cur, adj, orow;
        s64 chunkOff = 0;
        unsigned w;
        void loadCur(VR d, s64 off) { m.load(d, cur, chunkOff + off); }
        void loadAdj(VR d, s64 off) { m.load(d, adj, chunkOff + off); }
        void
        storeOut(VR s, unsigned half)
        {
            m.store(s, orow, 2 * chunkOff + s64(half * w));
        }
    };
    Ad ad{p, m, cur, adj, orow, 0, w};

    p.forLoop(H, [&](SReg r) {
        p.muli(cur, r, srcPitch);
        p.add(cur, cur, src);
        for (int ph = 0; ph < 2; ++ph) {
            p.addi(adj, cur, ph == 0 ? -s64(srcPitch) : s64(srcPitch));
            p.slli(orow, r, 1);
            p.addi(orow, orow, ph);
            p.muli(orow, orow, dstPitch);
            p.add(orow, orow, dst);
            for (unsigned c0 = 0; c0 < W; c0 += w) {
                ad.chunkOff = s64(c0);
                for (unsigned half = 0; half < 2; ++half) {
                    h2v2PackedChunk(p, m, ad, z, b8, b7, c16, a16, v0, vn,
                                    e16, o16, t, half);
                }
            }
        }
    });
    p.release(f);
}

void
h2v2Vmmx(Program &p, Vmmx &v, SReg src, unsigned srcPitch, SReg dst,
         unsigned dstPitch, unsigned W, unsigned H)
{
    auto f = p.mark();
    unsigned w = v.width();
    vmmx_assert(W % w == 0 && H % 16 == 0, "geometry must tile");

    v.setvl(16);

    VR z = p.vreg();
    VR b8 = p.vreg();
    VR b7 = p.vreg();
    v.vzero(z);
    vsplat16(p, v, b8, 8);
    vsplat16(p, v, b7, 7);
    VR c16 = p.vreg();
    VR a16 = p.vreg();
    VR v0 = p.vreg();
    VR vn = p.vreg();
    VR e16 = p.vreg();
    VR o16 = p.vreg();
    VR t = p.vreg();

    SReg cur = p.sreg();
    SReg adj = p.sreg();
    SReg orow = p.sreg();
    SReg spitch = p.sreg();
    SReg dpitch2 = p.sreg();
    p.li(spitch, srcPitch);
    p.li(dpitch2, 2 * dstPitch);

    struct Ad
    {
        Program &p;
        Vmmx &v;
        SReg cur, adj, orow, spitch, dpitch2;
        s64 chunkOff = 0;
        unsigned w;
        void loadCur(VR d, s64 off) { v.load(d, cur, chunkOff + off, spitch); }
        void loadAdj(VR d, s64 off) { v.load(d, adj, chunkOff + off, spitch); }
        void
        storeOut(VR s, unsigned half)
        {
            // 16 rows, each two output rows apart.
            v.store(s, orow, 2 * chunkOff + s64(half * w), dpitch2);
        }
    };
    Ad ad{p, v, cur, adj, orow, spitch, dpitch2, 0, w};

    // 16 input rows per sweep.
    p.forLoop(H / 16, [&](SReg rb) {
        p.muli(cur, rb, 16 * srcPitch);
        p.add(cur, cur, src);
        for (int ph = 0; ph < 2; ++ph) {
            p.addi(adj, cur, ph == 0 ? -s64(srcPitch) : s64(srcPitch));
            p.muli(orow, rb, s64(32) * dstPitch);
            p.add(orow, orow, dst);
            if (ph == 1)
                p.addi(orow, orow, dstPitch);
            for (unsigned c0 = 0; c0 < W; c0 += w) {
                ad.chunkOff = s64(c0);
                for (unsigned half = 0; half < 2; ++half) {
                    h2v2PackedChunk(p, v, ad, z, b8, b7, c16, a16, v0, vn,
                                    e16, o16, t, half);
                }
            }
        }
    });
    p.release(f);
}

} // namespace vmmx::kops
