/**
 * @file
 * Shared helpers for kernel emission: constant pools (packed constants
 * are loaded from memory, as compiled SIMD code does) and widening
 * idioms.
 */

#ifndef VMMX_KERNELS_KOPS_UTIL_HH
#define VMMX_KERNELS_KOPS_UTIL_HH

#include <array>

#include "trace/mmx.hh"
#include "trace/program.hh"
#include "trace/vmmx.hh"

namespace vmmx::kops
{

/** Copy @p n bytes into a fresh constant-pool allocation. */
inline Addr
stash(Program &p, const void *data, size_t n)
{
    Addr a = p.mem().alloc(n, 16);
    p.mem().copyIn(a, data, n);
    return a;
}

/** Load a full-width packed constant built from up to 8 s16 values
 *  (repeated across the 128-bit upper half so both widths agree). */
inline void
mconst16(Program &p, Mmx &m, VR dst, const std::array<s16, 8> &v)
{
    std::array<s16, 8> buf = v;
    Addr a = stash(p, buf.data(), sizeof(buf));
    auto f = p.mark();
    SReg t = p.sreg();
    p.li(t, a);
    m.load(dst, t, 0);
    p.release(f);
}

/** Load a full-width packed constant from two 64-bit lane patterns. */
inline void
mconst64(Program &p, Mmx &m, VR dst, u64 lo, u64 hi)
{
    u64 buf[2] = {lo, hi};
    Addr a = stash(p, buf, sizeof(buf));
    auto f = p.mark();
    SReg t = p.sreg();
    p.li(t, a);
    m.load(dst, t, 0);
    p.release(f);
}

/** Splat a 16-bit immediate (li + psplat). */
inline void
msplat16(Program &p, Mmx &m, VR dst, s16 v)
{
    auto f = p.mark();
    SReg t = p.sreg();
    p.li(t, u64(u16(v)));
    m.psplat(dst, t, ElemWidth::W16);
    p.release(f);
}

/** Splat a 32-bit immediate. */
inline void
msplat32(Program &p, Mmx &m, VR dst, s32 v)
{
    auto f = p.mark();
    SReg t = p.sreg();
    p.li(t, u64(u32(v)));
    m.psplat(dst, t, ElemWidth::D32);
    p.release(f);
}

inline void
vsplat16(Program &p, Vmmx &v, VR dst, s16 value)
{
    auto f = p.mark();
    SReg t = p.sreg();
    p.li(t, u64(u16(value)));
    v.vsplat(dst, t, ElemWidth::W16);
    p.release(f);
}

inline void
vsplat32(Program &p, Vmmx &v, VR dst, s32 value)
{
    auto f = p.mark();
    SReg t = p.sreg();
    p.li(t, u64(u32(value)));
    v.vsplat(dst, t, ElemWidth::D32);
    p.release(f);
}

} // namespace vmmx::kops

#endif // VMMX_KERNELS_KOPS_UTIL_HH
