/**
 * @file
 * The eleven Table II kernels packaged behind the Kernel interface.
 */

#include "kernels/kernel.hh"

#include "kernels/kops_block.hh"
#include "kernels/kops_color.hh"
#include "kernels/kops_dct.hh"
#include "kernels/kops_gsm.hh"
#include "kernels/kops_motion.hh"
#include "kernels/kops_resample.hh"

namespace vmmx
{

namespace
{

using namespace kops;

/** Fill [addr, addr+n) with random bytes. */
void
fillBytes(MemImage &mem, Rng &rng, Addr addr, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        mem.write8(addr + i, rng.byte());
}

void
fillS16(MemImage &mem, Rng &rng, Addr addr, size_t n, s64 lo, s64 hi)
{
    for (size_t i = 0; i < n; ++i)
        mem.write16(addr + 2 * i, u16(s16(rng.range(lo, hi))));
}

// ---------------------------------------------------------------- motion

/** Shared base for the two motion-estimation kernels: a candidate
 *  search over NCAND positions of a 16x16 block in a synthetic frame. */
class MotionKernel : public Kernel
{
  public:
    static constexpr unsigned kLx = 720;
    static constexpr unsigned kH = 16;
    static constexpr unsigned kCands = 24;

    void
    prepare(MemImage &mem, Rng &rng) override
    {
        frame_ = mem.alloc(kLx * 64 + kCands + 64);
        fillBytes(mem, rng, frame_, kLx * 64 + kCands + 16);
        p1_ = frame_ + 8;
        p2_ = frame_ + 24 * kLx + 11;
        out_ = mem.alloc(16);
        exp_ = mem.alloc(16);
    }

    void
    golden(MemImage &mem) override
    {
        u64 best = ~u64(0);
        u64 bestIdx = 0;
        for (unsigned c = 0; c < kCands; ++c) {
            u64 s = metric(mem, p1_, p2_ + c);
            if (s < best) {
                best = s;
                bestIdx = c;
            }
        }
        mem.write64(exp_, best);
        mem.write64(exp_ + 8, bestIdx);
    }

    std::vector<Output>
    outputs() const override
    {
        return {{out_, exp_, 16, "best SAD/index"}};
    }

    void
    emitScalar(Program &p) override
    {
        emitSearch(p, [&](Program &pp, SReg a, SReg b, SReg s) {
            scalarMetric(pp, a, b, s);
        });
    }

  protected:
    virtual u64 metric(const MemImage &mem, Addr a, Addr b) const = 0;
    virtual void scalarMetric(Program &p, SReg a, SReg b, SReg out) = 0;

    template <typename Fn>
    void
    emitSearch(Program &p, Fn &&metricEmit)
    {
        auto f = p.mark();
        SReg p1 = p.sreg();
        SReg p2 = p.sreg();
        SReg sad = p.sreg();
        SReg best = p.sreg();
        SReg bestIdx = p.sreg();
        SReg outp = p.sreg();
        p.li(p1, p1_);
        p.li(best, ~u64(0) >> 1);
        p.li(bestIdx, 0);
        p.forLoop(kCands, [&](SReg c) {
            p.li(p2, p2_);
            p.add(p2, p2, c);
            metricEmit(p, p1, p2, sad);
            if (p.brLt(sad, best)) {
                p.mov(best, sad);
                p.mov(bestIdx, c);
            }
        });
        p.li(outp, out_);
        p.store(best, outp, 0, 8);
        p.store(bestIdx, outp, 8, 8);
        p.release(f);
    }

    Addr frame_ = 0;
    Addr p1_ = 0;
    Addr p2_ = 0;
    Addr out_ = 0;
    Addr exp_ = 0;
};

class Motion1Kernel : public MotionKernel
{
  public:
    std::string name() const override { return "motion1"; }
    std::string description() const override
    {
        return "Sum of Absolute Differences";
    }
    std::string dataSize() const override { return "16x16 8-bit"; }

  protected:
    u64
    metric(const MemImage &mem, Addr a, Addr b) const override
    {
        return goldenSad(mem, a, b, kH, kLx);
    }

    void
    scalarMetric(Program &p, SReg a, SReg b, SReg out) override
    {
        sadScalar(p, a, b, kH, kLx, out);
    }

    void
    emitMmx(Program &p, Mmx &m) override
    {
        emitSearch(p, [&](Program &pp, SReg a, SReg b, SReg s) {
            sadMmx(pp, m, a, b, kH, kLx, s);
        });
    }

    void
    emitVmmx(Program &p, Vmmx &v) override
    {
        auto f = p.mark();
        SReg lx = p.sreg();
        p.li(lx, kLx);
        emitSearch(p, [&](Program &pp, SReg a, SReg b, SReg s) {
            sadVmmx(pp, v, a, b, kH, lx, s);
        });
        p.release(f);
    }
};

class Motion2Kernel : public MotionKernel
{
  public:
    std::string name() const override { return "motion2"; }
    std::string description() const override
    {
        return "Sum of Quadratic Differences";
    }
    std::string dataSize() const override { return "16x16 8-bit"; }

  protected:
    u64
    metric(const MemImage &mem, Addr a, Addr b) const override
    {
        return goldenSqd(mem, a, b, kH, kLx);
    }

    void
    scalarMetric(Program &p, SReg a, SReg b, SReg out) override
    {
        sqdScalar(p, a, b, kH, kLx, out);
    }

    void
    emitMmx(Program &p, Mmx &m) override
    {
        emitSearch(p, [&](Program &pp, SReg a, SReg b, SReg s) {
            sqdMmx(pp, m, a, b, kH, kLx, s);
        });
    }

    void
    emitVmmx(Program &p, Vmmx &v) override
    {
        auto f = p.mark();
        SReg lx = p.sreg();
        p.li(lx, kLx);
        emitSearch(p, [&](Program &pp, SReg a, SReg b, SReg s) {
            sqdVmmx(pp, v, a, b, kH, lx, s);
        });
        p.release(f);
    }
};

// ---------------------------------------------------------------- comp

class CompKernel : public Kernel
{
  public:
    static constexpr unsigned kLx = 800;
    static constexpr unsigned kBlocks = 32;

    std::string name() const override { return "comp"; }
    std::string description() const override
    {
        return "Motion compensation (bidirectional average)";
    }
    std::string dataSize() const override { return "8x4 8-bit"; }

    void
    prepare(MemImage &mem, Rng &rng) override
    {
        frame_ = mem.alloc(kLx * 16 + 64);
        fillBytes(mem, rng, frame_, kLx * 16 + 32);
        out_ = mem.alloc(kBlocks * 8 * kOutLx + 64);
        exp_ = mem.alloc(kBlocks * 8 * kOutLx + 64);
    }

    void
    golden(MemImage &mem) override
    {
        for (unsigned b = 0; b < kBlocks; ++b) {
            goldenComp(mem, frame_ + b * 8, frame_ + 4 * kLx + b * 8,
                       exp_ + b * 8, 8, 4, kLx, kOutLx);
        }
    }

    std::vector<Output>
    outputs() const override
    {
        return {{out_, exp_, 4 * kOutLx, "predicted rows"}};
    }

    void
    emitScalar(Program &p) override
    {
        forBlocks(p, [&](Program &pp, SReg a, SReg b, SReg o) {
            compScalar(pp, a, b, o, 8, 4, kLx, kOutLx);
        });
    }

  protected:
    static constexpr unsigned kOutLx = kBlocks * 8;

    template <typename Fn>
    void
    forBlocks(Program &p, Fn &&fn)
    {
        auto f = p.mark();
        SReg a = p.sreg();
        SReg b = p.sreg();
        SReg o = p.sreg();
        SReg t = p.sreg();
        p.forLoop(kBlocks, [&](SReg bi) {
            p.slli(t, bi, 3);
            p.li(a, frame_);
            p.add(a, a, t);
            p.li(b, frame_ + 4 * kLx);
            p.add(b, b, t);
            p.li(o, out_);
            p.add(o, o, t);
            fn(p, a, b, o);
        });
        p.release(f);
    }

    void
    emitMmx(Program &p, Mmx &m) override
    {
        forBlocks(p, [&](Program &pp, SReg a, SReg b, SReg o) {
            compMmx(pp, m, a, b, o, 8, 4, kLx, kOutLx);
        });
    }

    void
    emitVmmx(Program &p, Vmmx &v) override
    {
        auto f = p.mark();
        SReg lx = p.sreg();
        SReg olx = p.sreg();
        p.li(lx, kLx);
        p.li(olx, kOutLx);
        forBlocks(p, [&](Program &pp, SReg a, SReg b, SReg o) {
            compVmmx(pp, v, a, b, o, 8, 4, lx, olx);
        });
        p.release(f);
    }

    Addr frame_ = 0;
    Addr out_ = 0;
    Addr exp_ = 0;
};

// ---------------------------------------------------------------- addblock

class AddblockKernel : public Kernel
{
  public:
    static constexpr unsigned kLx = 720;
    static constexpr unsigned kBlocks = 32;
    static constexpr unsigned kOutLx = kBlocks * 8;

    std::string name() const override { return "addblock"; }
    std::string description() const override
    {
        return "Picture reconstruction (pred + residual, saturated)";
    }
    std::string dataSize() const override { return "8x8 8-bit"; }

    void
    prepare(MemImage &mem, Rng &rng) override
    {
        frame_ = mem.alloc(kLx * 16 + 64);
        fillBytes(mem, rng, frame_, kLx * 16 + 32);
        res_ = mem.alloc(kBlocks * 64 * 2);
        fillS16(mem, rng, res_, kBlocks * 64, -300, 300);
        out_ = mem.alloc(8 * kOutLx + 64);
        exp_ = mem.alloc(8 * kOutLx + 64);
    }

    void
    golden(MemImage &mem) override
    {
        for (unsigned b = 0; b < kBlocks; ++b) {
            goldenAddblock(mem, frame_ + b * 8, res_ + b * 128,
                           exp_ + b * 8, kLx, kOutLx);
        }
    }

    std::vector<Output>
    outputs() const override
    {
        return {{out_, exp_, 8 * kOutLx, "reconstructed rows"}};
    }

    void
    emitScalar(Program &p) override
    {
        forBlocks(p, [&](Program &pp, SReg pr, SReg re, SReg o) {
            addblockScalar(pp, pr, re, o, kLx, kOutLx);
        });
    }

  protected:
    template <typename Fn>
    void
    forBlocks(Program &p, Fn &&fn)
    {
        auto f = p.mark();
        SReg pr = p.sreg();
        SReg re = p.sreg();
        SReg o = p.sreg();
        SReg t = p.sreg();
        p.forLoop(kBlocks, [&](SReg bi) {
            p.slli(t, bi, 3);
            p.li(pr, frame_);
            p.add(pr, pr, t);
            p.li(o, out_);
            p.add(o, o, t);
            p.slli(re, bi, 7);
            p.li(t, res_);
            p.add(re, re, t);
            fn(p, pr, re, o);
        });
        p.release(f);
    }

    void
    emitMmx(Program &p, Mmx &m) override
    {
        forBlocks(p, [&](Program &pp, SReg pr, SReg re, SReg o) {
            addblockMmx(pp, m, pr, re, o, kLx, kOutLx);
        });
    }

    void
    emitVmmx(Program &p, Vmmx &v) override
    {
        auto f = p.mark();
        SReg lx = p.sreg();
        SReg olx = p.sreg();
        p.li(lx, kLx);
        p.li(olx, kOutLx);
        forBlocks(p, [&](Program &pp, SReg pr, SReg re, SReg o) {
            addblockVmmx(pp, v, pr, re, o, lx, olx);
        });
        p.release(f);
    }

    Addr frame_ = 0;
    Addr res_ = 0;
    Addr out_ = 0;
    Addr exp_ = 0;
};

// ---------------------------------------------------------------- dct

class DctKernelBase : public Kernel
{
  public:
    static constexpr unsigned kBlocks = 12;

    void
    prepare(MemImage &mem, Rng &rng) override
    {
        in_ = mem.alloc(kBlocks * 128);
        out_ = mem.alloc(kBlocks * 128);
        exp_ = mem.alloc(kBlocks * 128);
        // Sparse, quantised-looking coefficients / pixel differences.
        for (unsigned b = 0; b < kBlocks; ++b) {
            for (unsigned k = 0; k < 64; ++k) {
                s64 v = 0;
                if (k == 0 || rng.below(4) == 0)
                    v = rng.range(forward() ? -255 : -2000,
                                  forward() ? 255 : 2000);
                mem.write16(in_ + b * 128 + 2 * k, u16(s16(v)));
            }
        }
    }

    void
    golden(MemImage &mem) override
    {
        for (unsigned b = 0; b < kBlocks; ++b)
            goldenDct8x8(mem, in_ + b * 128, exp_ + b * 128, forward());
    }

    std::vector<Output>
    outputs() const override
    {
        return {{out_, exp_, kBlocks * 128, "transformed blocks"}};
    }

    void
    emitScalar(Program &p) override
    {
        auto tabs = prepareDctTables(p);
        forBlocks(p, [&](Program &pp, SReg i, SReg o) {
            dctScalar(pp, tabs, i, o, forward());
        });
    }

  protected:
    virtual bool forward() const = 0;

    template <typename Fn>
    void
    forBlocks(Program &p, Fn &&fn)
    {
        auto f = p.mark();
        SReg i = p.sreg();
        SReg o = p.sreg();
        SReg t = p.sreg();
        p.forLoop(kBlocks, [&](SReg bi) {
            p.slli(t, bi, 7);
            p.li(i, in_);
            p.add(i, i, t);
            p.li(o, out_);
            p.add(o, o, t);
            fn(p, i, o);
        });
        p.release(f);
    }

    void
    emitMmx(Program &p, Mmx &m) override
    {
        auto tabs = prepareDctTables(p);
        forBlocks(p, [&](Program &pp, SReg i, SReg o) {
            dctMmx(pp, m, tabs, i, o, forward());
        });
    }

    void
    emitVmmx(Program &p, Vmmx &v) override
    {
        auto tabs = prepareDctTables(p);
        // Coefficient matrices stay register-resident across all
        // blocks (the paper's registers-as-cache optimisation).
        auto ctx = dctVmmxLoadTables(p, v, tabs, forward());
        forBlocks(p, [&](Program &pp, SReg i, SReg o) {
            dctVmmxBlock(pp, v, tabs, ctx, i, o);
        });
    }

    Addr in_ = 0;
    Addr out_ = 0;
    Addr exp_ = 0;
};

class IdctKernel : public DctKernelBase
{
  public:
    std::string name() const override { return "idct"; }
    std::string description() const override
    {
        return "Inverse Discrete Cosine Transform";
    }
    std::string dataSize() const override { return "8x8 16-bit"; }

  protected:
    bool forward() const override { return false; }
};

class FdctKernel : public DctKernelBase
{
  public:
    std::string name() const override { return "fdct"; }
    std::string description() const override
    {
        return "Forward Discrete Cosine Transform";
    }
    std::string dataSize() const override { return "8x8 16-bit"; }

  protected:
    bool forward() const override { return true; }
};

// ---------------------------------------------------------------- rgb

class RgbKernel : public Kernel
{
  public:
    static constexpr unsigned kPixels = 1920;

    std::string name() const override { return "rgb"; }
    std::string description() const override
    {
        return "RGB to YCC colour conversion";
    }
    std::string dataSize() const override { return "RGB triads"; }

    void
    prepare(MemImage &mem, Rng &rng) override
    {
        rgb_ = mem.alloc(kPixels * 3 + 64);
        fillBytes(mem, rng, rgb_, kPixels * 3 + 32);
        out_ = mem.alloc(3 * (kPixels + 64));
        exp_ = mem.alloc(3 * (kPixels + 64));
    }

    void
    golden(MemImage &mem) override
    {
        goldenRgb2Ycc(mem, rgb_, exp_, exp_ + plane(), exp_ + 2 * plane(),
                      kPixels);
    }

    std::vector<Output>
    outputs() const override
    {
        return {{out_, exp_, kPixels, "Y plane"},
                {out_ + plane(), exp_ + plane(), kPixels, "Cb plane"},
                {out_ + 2 * plane(), exp_ + 2 * plane(), kPixels,
                 "Cr plane"}};
    }

    void
    emitScalar(Program &p) override
    {
        auto f = p.mark();
        auto [s, y, cb, cr] = addrRegs(p);
        rgb2YccScalar(p, s, y, cb, cr, kPixels);
        p.release(f);
    }

  protected:
    Addr plane() const { return kPixels + 64; }

    std::tuple<SReg, SReg, SReg, SReg>
    addrRegs(Program &p)
    {
        SReg s = p.sreg();
        SReg y = p.sreg();
        SReg cb = p.sreg();
        SReg cr = p.sreg();
        p.li(s, rgb_);
        p.li(y, out_);
        p.li(cb, out_ + plane());
        p.li(cr, out_ + 2 * plane());
        return {s, y, cb, cr};
    }

    void
    emitMmx(Program &p, Mmx &m) override
    {
        auto f = p.mark();
        auto [s, y, cb, cr] = addrRegs(p);
        rgb2YccMmx(p, m, s, y, cb, cr, kPixels);
        p.release(f);
    }

    void
    emitVmmx(Program &p, Vmmx &v) override
    {
        auto f = p.mark();
        auto [s, y, cb, cr] = addrRegs(p);
        rgb2YccVmmx(p, v, s, y, cb, cr, kPixels);
        p.release(f);
    }

    Addr rgb_ = 0;
    Addr out_ = 0;
    Addr exp_ = 0;
};

// ---------------------------------------------------------------- ycc

class YccKernel : public Kernel
{
  public:
    static constexpr unsigned kPixels = 3840;

    std::string name() const override { return "ycc"; }
    std::string description() const override
    {
        return "YCC to RGB colour conversion";
    }
    std::string dataSize() const override
    {
        return "(Y,Cb,Cr) x width 8-bit";
    }

    void
    prepare(MemImage &mem, Rng &rng) override
    {
        in_ = mem.alloc(3 * kPixels + 64);
        fillBytes(mem, rng, in_, 3 * kPixels + 32);
        out_ = mem.alloc(3 * kPixels + 64);
        exp_ = mem.alloc(3 * kPixels + 64);
    }

    void
    golden(MemImage &mem) override
    {
        goldenYcc2Rgb(mem, in_, in_ + kPixels, in_ + 2 * kPixels, exp_,
                      exp_ + kPixels, exp_ + 2 * kPixels, kPixels);
    }

    std::vector<Output>
    outputs() const override
    {
        return {{out_, exp_, 3 * kPixels, "R/G/B planes"}};
    }

    void
    emitScalar(Program &p) override
    {
        auto f = p.mark();
        auto regs = addrRegs(p);
        ycc2RgbScalar(p, regs[0], regs[1], regs[2], regs[3], regs[4],
                      regs[5], kPixels);
        p.release(f);
    }

  protected:
    std::array<SReg, 6>
    addrRegs(Program &p)
    {
        std::array<SReg, 6> r;
        for (auto &reg : r)
            reg = p.sreg();
        p.li(r[0], in_);
        p.li(r[1], in_ + kPixels);
        p.li(r[2], in_ + 2 * kPixels);
        p.li(r[3], out_);
        p.li(r[4], out_ + kPixels);
        p.li(r[5], out_ + 2 * kPixels);
        return r;
    }

    void
    emitMmx(Program &p, Mmx &m) override
    {
        auto f = p.mark();
        auto r = addrRegs(p);
        ycc2RgbMmx(p, m, r[0], r[1], r[2], r[3], r[4], r[5], kPixels);
        p.release(f);
    }

    void
    emitVmmx(Program &p, Vmmx &v) override
    {
        auto f = p.mark();
        auto r = addrRegs(p);
        ycc2RgbVmmx(p, v, r[0], r[1], r[2], r[3], r[4], r[5], kPixels);
        p.release(f);
    }

    Addr in_ = 0;
    Addr out_ = 0;
    Addr exp_ = 0;
};

// ---------------------------------------------------------------- h2v2

class H2v2Kernel : public Kernel
{
  public:
    static constexpr unsigned kW = 64;
    static constexpr unsigned kH = 32;
    static constexpr unsigned kPitch = kW + 32;
    static constexpr unsigned kOutPitch = 2 * kW;

    std::string name() const override { return "h2v2"; }
    std::string description() const override
    {
        return "Image up-sampling (triangle filter)";
    }
    std::string dataSize() const override { return "Image width"; }

    void
    prepare(MemImage &mem, Rng &rng) override
    {
        base_ = mem.alloc(kPitch * (kH + 2) + 64);
        src_ = base_ + kPitch + 1;
        // Interior + replicated border.
        for (unsigned r = 0; r < kH; ++r)
            for (unsigned c = 0; c < kW; ++c)
                mem.write8(src_ + r * kPitch + c, rng.byte());
        for (unsigned r = 0; r < kH; ++r) {
            mem.write8(src_ + r * kPitch - 1, mem.read8(src_ + r * kPitch));
            for (unsigned c = kW; c < kPitch - 1; ++c)
                mem.write8(src_ + r * kPitch + c,
                           mem.read8(src_ + r * kPitch + kW - 1));
        }
        for (unsigned c = 0; c < kPitch; ++c) {
            Addr top = src_ - kPitch - 1 + c;
            mem.write8(top, mem.read8(src_ - 1 + c));
            Addr bot = src_ + kH * kPitch - 1 + c;
            mem.write8(bot, mem.read8(src_ + (kH - 1) * kPitch - 1 + c));
        }
        out_ = mem.alloc(kOutPitch * 2 * kH + 64);
        exp_ = mem.alloc(kOutPitch * 2 * kH + 64);
    }

    void
    golden(MemImage &mem) override
    {
        goldenH2v2(mem, src_, kPitch, exp_, kOutPitch, kW, kH);
    }

    std::vector<Output>
    outputs() const override
    {
        return {{out_, exp_, kOutPitch * 2 * kH, "up-sampled image"}};
    }

    void
    emitScalar(Program &p) override
    {
        auto f = p.mark();
        SReg s = p.sreg();
        SReg d = p.sreg();
        p.li(s, src_);
        p.li(d, out_);
        h2v2Scalar(p, s, kPitch, d, kOutPitch, kW, kH);
        p.release(f);
    }

  protected:
    void
    emitMmx(Program &p, Mmx &m) override
    {
        auto f = p.mark();
        SReg s = p.sreg();
        SReg d = p.sreg();
        p.li(s, src_);
        p.li(d, out_);
        h2v2Mmx(p, m, s, kPitch, d, kOutPitch, kW, kH);
        p.release(f);
    }

    void
    emitVmmx(Program &p, Vmmx &v) override
    {
        auto f = p.mark();
        SReg s = p.sreg();
        SReg d = p.sreg();
        p.li(s, src_);
        p.li(d, out_);
        h2v2Vmmx(p, v, s, kPitch, d, kOutPitch, kW, kH);
        p.release(f);
    }

    Addr base_ = 0;
    Addr src_ = 0;
    Addr out_ = 0;
    Addr exp_ = 0;
};

// ---------------------------------------------------------------- ltppar

class LtpparKernel : public Kernel
{
  public:
    std::string name() const override { return "ltppar"; }
    std::string description() const override
    {
        return "LTP parameter calculation (lag search)";
    }
    std::string dataSize() const override { return "40 16-bit"; }

    void
    prepare(MemImage &mem, Rng &rng) override
    {
        d_ = mem.alloc(80 + 16);
        hist_ = mem.alloc(240 + 16);
        fillS16(mem, rng, d_, 40, -1023, 1023);
        fillS16(mem, rng, hist_, 120, -1023, 1023);
        out_ = mem.alloc(8);
        exp_ = mem.alloc(8);
    }

    void
    golden(MemImage &mem) override
    {
        goldenLtppar(mem, d_, hist_, exp_, exp_ + 2);
    }

    std::vector<Output>
    outputs() const override
    {
        return {{out_, exp_, 4, "best lag + gain index"}};
    }

    void
    emitScalar(Program &p) override
    {
        auto f = p.mark();
        auto [d, h, ol, ob] = regs(p);
        ltpparScalar(p, d, h, ol, ob);
        p.release(f);
    }

  protected:
    std::tuple<SReg, SReg, SReg, SReg>
    regs(Program &p)
    {
        SReg d = p.sreg();
        SReg h = p.sreg();
        SReg ol = p.sreg();
        SReg ob = p.sreg();
        p.li(d, d_);
        p.li(h, hist_);
        p.li(ol, out_);
        p.li(ob, out_ + 2);
        return {d, h, ol, ob};
    }

    void
    emitMmx(Program &p, Mmx &m) override
    {
        auto f = p.mark();
        auto [d, h, ol, ob] = regs(p);
        ltpparMmx(p, m, d, h, ol, ob);
        p.release(f);
    }

    void
    emitVmmx(Program &p, Vmmx &v) override
    {
        auto f = p.mark();
        auto [d, h, ol, ob] = regs(p);
        ltpparVmmx(p, v, d, h, ol, ob);
        p.release(f);
    }

    Addr d_ = 0;
    Addr hist_ = 0;
    Addr out_ = 0;
    Addr exp_ = 0;
};

// ---------------------------------------------------------------- ltpfilt

class LtpfiltKernel : public Kernel
{
  public:
    std::string name() const override { return "ltpfilt"; }
    std::string description() const override
    {
        return "Long-term parameter filtering";
    }
    std::string dataSize() const override { return "120 16-bit"; }

    void
    prepare(MemImage &mem, Rng &rng) override
    {
        erp_ = mem.alloc(240 + 16);
        fillS16(mem, rng, erp_, 120, -4000, 4000);
        buf_ = mem.alloc(480 + 16);
        expBuf_ = mem.alloc(480 + 16);
        fillS16(mem, rng, buf_, 120, -8000, 8000);
        for (unsigned k = 0; k < 120; ++k)
            mem.write16(expBuf_ + 2 * k, mem.read16(buf_ + 2 * k));
        nc_ = mem.alloc(8);
        bc_ = mem.alloc(8);
        static const u16 ncv[3] = {44, 57, 103};
        static const u16 bcv[3] = {1, 3, 2};
        for (unsigned i = 0; i < 3; ++i) {
            mem.write16(nc_ + 2 * i, ncv[i]);
            mem.write16(bc_ + 2 * i, bcv[i]);
        }
    }

    void
    golden(MemImage &mem) override
    {
        goldenLtpfilt(mem, erp_, expBuf_, nc_, bc_);
    }

    std::vector<Output>
    outputs() const override
    {
        return {{buf_ + 240, expBuf_ + 240, 240, "synthesised samples"}};
    }

    void
    emitScalar(Program &p) override
    {
        auto f = p.mark();
        auto [e, b, n, c] = regs(p);
        ltpfiltScalar(p, e, b, n, c);
        p.release(f);
    }

  protected:
    std::tuple<SReg, SReg, SReg, SReg>
    regs(Program &p)
    {
        SReg e = p.sreg();
        SReg b = p.sreg();
        SReg n = p.sreg();
        SReg c = p.sreg();
        p.li(e, erp_);
        p.li(b, buf_);
        p.li(n, nc_);
        p.li(c, bc_);
        return {e, b, n, c};
    }

    void
    emitMmx(Program &p, Mmx &m) override
    {
        auto f = p.mark();
        auto [e, b, n, c] = regs(p);
        ltpfiltMmx(p, m, e, b, n, c);
        p.release(f);
    }

    void
    emitVmmx(Program &p, Vmmx &v) override
    {
        auto f = p.mark();
        auto [e, b, n, c] = regs(p);
        ltpfiltVmmx(p, v, e, b, n, c);
        p.release(f);
    }

    Addr erp_ = 0;
    Addr buf_ = 0;
    Addr expBuf_ = 0;
    Addr nc_ = 0;
    Addr bc_ = 0;
};

} // namespace

std::vector<std::string>
kernelNames()
{
    return {"idct", "motion1", "motion2", "comp", "addblock", "rgb",
            "ycc", "h2v2", "ltppar", "ltpfilt", "fdct"};
}

std::unique_ptr<Kernel>
makeKernel(const std::string &name)
{
    if (name == "idct")
        return std::make_unique<IdctKernel>();
    if (name == "fdct")
        return std::make_unique<FdctKernel>();
    if (name == "motion1")
        return std::make_unique<Motion1Kernel>();
    if (name == "motion2")
        return std::make_unique<Motion2Kernel>();
    if (name == "comp")
        return std::make_unique<CompKernel>();
    if (name == "addblock")
        return std::make_unique<AddblockKernel>();
    if (name == "rgb")
        return std::make_unique<RgbKernel>();
    if (name == "ycc")
        return std::make_unique<YccKernel>();
    if (name == "h2v2")
        return std::make_unique<H2v2Kernel>();
    if (name == "ltppar")
        return std::make_unique<LtpparKernel>();
    if (name == "ltpfilt")
        return std::make_unique<LtpfiltKernel>();
    fatal("unknown kernel '%s'", name.c_str());
}

std::vector<std::unique_ptr<Kernel>>
makeAllKernels()
{
    std::vector<std::unique_ptr<Kernel>> out;
    for (const auto &n : kernelNames())
        out.push_back(makeKernel(n));
    return out;
}

} // namespace vmmx
