#include "kernels/kops_dct.hh"

#include <cmath>

#include "common/saturate.hh"
#include "kernels/kops_util.hh"

namespace vmmx::kops
{

namespace
{

constexpr unsigned Q = 14;
constexpr s64 ROUND = s64(1) << (Q - 1);

/** M for a pass: idct uses CQ, fdct uses CQ^T. */
s16
passCoef(bool forward, unsigned k, unsigned i)
{
    return forward ? dctCoef(i, k) : dctCoef(k, i);
}

s16
round14(s64 sum)
{
    return clampTo<s16>(asr64(sum + ROUND, Q));
}

/** Golden pass: out = round14(M^T a), 8x8 s16 row-major arrays. */
void
goldenPass(const s16 *a, s16 *out, bool forward)
{
    for (unsigned i = 0; i < 8; ++i) {
        for (unsigned j = 0; j < 8; ++j) {
            s64 sum = 0;
            for (unsigned k = 0; k < 8; ++k)
                sum += s64(passCoef(forward, k, i)) * a[k * 8 + j];
            out[i * 8 + j] = round14(sum);
        }
    }
}

void
transpose8(const s16 *a, s16 *out)
{
    for (unsigned i = 0; i < 8; ++i)
        for (unsigned j = 0; j < 8; ++j)
            out[i * 8 + j] = a[j * 8 + i];
}

} // namespace

s16
dctCoef(unsigned i, unsigned j)
{
    double s = i == 0 ? std::sqrt(1.0 / 8.0) : 0.5;
    double v = s * std::cos((2.0 * j + 1.0) * i * M_PI / 16.0);
    return s16(std::lround(v * (1 << Q)));
}

void
goldenDct8x8(MemImage &mem, Addr in, Addr out, bool forward)
{
    s16 x[64], p1[64], p1t[64], p2[64], y[64];
    for (unsigned k = 0; k < 64; ++k)
        x[k] = s16(mem.read16(in + 2 * k));
    goldenPass(x, p1, forward);
    transpose8(p1, p1t);
    goldenPass(p1t, p2, forward);
    transpose8(p2, y);
    for (unsigned k = 0; k < 64; ++k)
        mem.write16(out + 2 * k, u16(y[k]));
}

DctTables
prepareDctTables(Program &p)
{
    DctTables t;
    for (unsigned fwd = 0; fwd < 2; ++fwd) {
        // pmaddwd pair patterns: entry (i, t) = [M[2t][i], M[2t+1][i]]
        // repeated four times (16 bytes; the 64-bit flavour reads the
        // first two repeats).
        std::vector<s16> pairs(8 * 4 * 8, 0);
        for (unsigned i = 0; i < 8; ++i) {
            for (unsigned tpair = 0; tpair < 4; ++tpair) {
                s16 c0 = passCoef(fwd != 0, 2 * tpair, i);
                s16 c1 = passCoef(fwd != 0, 2 * tpair + 1, i);
                for (unsigned rep = 0; rep < 4; ++rep) {
                    pairs[(i * 4 + tpair) * 8 + 2 * rep] = c0;
                    pairs[(i * 4 + tpair) * 8 + 2 * rep + 1] = c1;
                }
            }
        }
        t.pairTable[fwd] =
            stash(p, pairs.data(), pairs.size() * sizeof(s16));

        // Matrix splat tables: table i row k = splat(M[k][i]).
        std::vector<s16> splats(8 * 8 * 8, 0);
        for (unsigned i = 0; i < 8; ++i)
            for (unsigned k = 0; k < 8; ++k)
                for (unsigned lane = 0; lane < 8; ++lane)
                    splats[(i * 8 + k) * 8 + lane] =
                        passCoef(fwd != 0, k, i);
        t.splatTable[fwd] =
            stash(p, splats.data(), splats.size() * sizeof(s16));
    }
    t.scratch = p.mem().alloc(512, 16);
    return t;
}

void
dctScalar(Program &p, const DctTables &t, SReg in, SReg out, bool forward)
{
    auto f = p.mark();
    SReg srcp = p.sreg();
    SReg dstp = p.sreg();
    SReg sum = p.sreg();
    SReg v = p.sreg();
    SReg a = p.sreg();

    // Two passes; the intermediate P1 is stored transposed so both
    // passes read their source row-major.
    for (unsigned pass = 0; pass < 2; ++pass) {
        if (pass == 0) {
            p.mov(srcp, in);
            p.li(dstp, t.scratch);
        } else {
            p.li(srcp, t.scratch);
            p.mov(dstp, out);
        }
        p.forLoop(8, [&](SReg i) {
            p.forLoop(8, [&](SReg j) {
                p.li(sum, u64(ROUND));
                for (unsigned k = 0; k < 8; ++k) {
                    // a = src[k][j]
                    p.slli(a, j, 1);
                    p.add(a, a, srcp);
                    p.load(v, a, s64(16 * k), 2, true);
                    // sum += coef * a  (coefficient folded as an
                    // immediate multiply; it depends on the dynamic i,
                    // so the traced code mirrors a coefficient-array
                    // walk with constant strides)
                    s64 coef = s64(passCoef(forward, k, unsigned(p.val(i))));
                    p.muli(v, v, coef);
                    p.add(sum, sum, v);
                }
                p.srai(sum, sum, Q);
                // dst[j][i] = sum  (transposed store)
                p.slli(a, j, 4);
                p.add(a, a, dstp);
                p.slli(v, i, 1);
                p.add(a, a, v);
                p.store(sum, a, 0, 2);
            });
        });
    }
    p.release(f);
}

void
dctMmx(Program &p, Mmx &m, const DctTables &t, SReg in, SReg out,
       bool forward)
{
    auto f = p.mark();
    unsigned w = m.width();
    Addr pairBase = t.pairTable[forward ? 1 : 0];

    VR z = p.vreg();
    VR bias = p.vreg();
    m.pzero(z);
    msplat32(p, m, bias, s32(ROUND));

    VR i0 = p.vreg();
    VR i1 = p.vreg();
    VR k = p.vreg();
    VR acc = p.vreg();
    VR acc2 = p.vreg();
    VR r0 = p.vreg();
    VR r1 = p.vreg();
    SReg srcp = p.sreg();
    SReg dstp = p.sreg();
    SReg tab = p.sreg();
    SReg addr = p.sreg();
    p.li(tab, pairBase);

    // One pass: dst[i][:] = round14(M^T src[:][:]); both mem->mem.
    // Columns are processed in w/4-wide groups (2 for MMX64, 4 for
    // MMX128): the row pair (2t, 2t+1) is interleaved so pmaddwd forms
    // coefficient-pair partial sums per column.
    auto passOnce = [&](SReg sp, SReg dp) {
        unsigned colGroups = 16 / w; // 2 for mmx64, 1 for mmx128
        for (unsigned g = 0; g < colGroups; ++g) {
            s64 colOff = s64(g * w);
            // Interleave the four row pairs for this column group.
            // Held in i0/i1 alternately per pair; we re-load per output
            // row group instead of keeping all pairs live: the classic
            // register-poor MMX spill pattern.
            for (unsigned i = 0; i < 8; ++i) {
                bool first = true;
                for (unsigned tpair = 0; tpair < 4; ++tpair) {
                    m.load(r0, sp, s64(16 * (2 * tpair)) + colOff);
                    m.load(r1, sp, s64(16 * (2 * tpair + 1)) + colOff);
                    m.unpckl(i0, r0, r1, ElemWidth::W16);
                    m.unpckh(i1, r0, r1, ElemWidth::W16);
                    p.li(addr, pairBase + (i * 4 + tpair) * 16);
                    m.load(k, addr, 0);
                    m.pmadd(i0, i0, k);
                    m.pmadd(i1, i1, k);
                    if (first) {
                        m.por(acc, i0, i0);
                        m.por(acc2, i1, i1);
                        first = false;
                    } else {
                        m.padd(acc, acc, i0, ElemWidth::D32);
                        m.padd(acc2, acc2, i1, ElemWidth::D32);
                    }
                }
                m.padd(acc, acc, bias, ElemWidth::D32);
                m.padd(acc2, acc2, bias, ElemWidth::D32);
                m.psrai(acc, acc, Q, ElemWidth::D32);
                m.psrai(acc2, acc2, Q, ElemWidth::D32);
                m.packs(acc, acc, acc2, ElemWidth::D32);
                m.store(acc, dp, s64(16 * i) + colOff);
            }
        }
    };

    // In-register transpose of an 8x8 s16 matrix held in memory.
    // @p mid is an intermediate buffer for the 128-bit three-level
    // network (must differ from sp and dp).
    auto transposeMem = [&](SReg sp, SReg mid, SReg dp) {
        if (w == 16) {
            VR a0 = i0, a1 = i1, t0 = r0, t1 = r1;
            // Three unpack levels over rows 0..7, four rows at a time
            // (two independent quads), spilling between levels.
            // Level 1+2 for quads (0..3) and (4..7), level 3 combines.
            for (unsigned q = 0; q < 2; ++q) {
                s64 base = s64(64 * q);
                m.load(t0, sp, base + 0);
                m.load(t1, sp, base + 16);
                m.unpckl(a0, t0, t1, ElemWidth::W16);
                m.unpckh(a1, t0, t1, ElemWidth::W16);
                m.load(t0, sp, base + 32);
                m.load(t1, sp, base + 48);
                m.unpckl(acc, t0, t1, ElemWidth::W16);
                m.unpckh(acc2, t0, t1, ElemWidth::W16);
                m.unpckl(t0, a0, acc, ElemWidth::D32);
                m.unpckh(t1, a0, acc, ElemWidth::D32);
                m.store(t0, mid, base + 0);  // holds cols 0,1 partials
                m.store(t1, mid, base + 16); // cols 2,3
                m.unpckl(t0, a1, acc2, ElemWidth::D32);
                m.unpckh(t1, a1, acc2, ElemWidth::D32);
                m.store(t0, mid, base + 32); // cols 4,5
                m.store(t1, mid, base + 48); // cols 6,7
            }
            // Level 3: combine quad halves into final rows.
            for (unsigned r = 0; r < 4; ++r) {
                m.load(t0, mid, s64(16 * r));
                m.load(t1, mid, s64(64 + 16 * r));
                m.unpckl(a0, t0, t1, ElemWidth::Q64);
                m.unpckh(a1, t0, t1, ElemWidth::Q64);
                m.store(a0, dp, s64(32 * r));
                m.store(a1, dp, s64(32 * r + 16));
            }
        } else {
            // 64-bit flavour: four 4x4 blocks with a swap of the
            // off-diagonal blocks.
            for (unsigned br = 0; br < 2; ++br) {
                for (unsigned bc = 0; bc < 2; ++bc) {
                    s64 sbase = s64(64 * br + 8 * bc);
                    s64 dbase = s64(64 * bc + 8 * br);
                    m.load(r0, sp, sbase + 0);
                    m.load(r1, sp, sbase + 16);
                    m.unpckl(i0, r0, r1, ElemWidth::W16);
                    m.unpckh(i1, r0, r1, ElemWidth::W16);
                    m.load(r0, sp, sbase + 32);
                    m.load(r1, sp, sbase + 48);
                    m.unpckl(acc, r0, r1, ElemWidth::W16);
                    m.unpckh(acc2, r0, r1, ElemWidth::W16);
                    m.unpckl(r0, i0, acc, ElemWidth::D32);
                    m.unpckh(r1, i0, acc, ElemWidth::D32);
                    m.store(r0, dp, dbase + 0);
                    m.store(r1, dp, dbase + 16);
                    m.unpckl(r0, i1, acc2, ElemWidth::D32);
                    m.unpckh(r1, i1, acc2, ElemWidth::D32);
                    m.store(r0, dp, dbase + 32);
                    m.store(r1, dp, dbase + 48);
                }
            }
        }
    };

    SReg scr1 = p.sreg();
    SReg scr2 = p.sreg();
    SReg scr3 = p.sreg();
    p.li(scr1, t.scratch);
    p.li(scr2, t.scratch + 128);
    p.li(scr3, t.scratch + 256);

    p.mov(srcp, in);
    passOnce(srcp, scr1);            // P1 = pass(X)
    transposeMem(scr1, scr3, scr2);  // P1^T
    passOnce(scr2, scr1);            // P2 = pass(P1^T)
    p.mov(dstp, out);
    transposeMem(scr1, scr3, dstp);  // out = P2^T
    p.release(f);
}

VmmxDctCtx
dctVmmxLoadTables(Program &p, Vmmx &v, const DctTables &t, bool forward)
{
    VmmxDctCtx ctx;
    Addr splatBase = t.splatTable[forward ? 1 : 0];
    auto f = p.mark();
    SReg tab = p.sreg();
    SReg st16 = p.sreg();
    p.li(st16, 16);
    v.setvl(8);
    for (unsigned i = 0; i < 8; ++i) {
        ctx.tbl[i] = p.vreg();
        p.li(tab, splatBase + i * 8 * 16);
        if (v.width() == 16) {
            v.loadU(ctx.tbl[i], tab, 0);
        } else {
            // Splat rows are 16 bytes apart in the shared table; the
            // strided load picks the low 8 bytes of each.
            v.load(ctx.tbl[i], tab, 0, st16);
        }
    }
    // Release only the scalar temporaries; the table registers persist.
    f.simdMark = p.mark().simdMark;
    p.release(f);
    return ctx;
}

void
dctVmmxBlock(Program &p, Vmmx &v, const DctTables &t, const VmmxDctCtx &ctx,
             SReg in, SReg out)
{
    auto f = p.mark();
    unsigned w = v.width();
    SReg scr = p.sreg();
    SReg st8 = p.sreg();
    p.li(scr, t.scratch);
    p.li(st8, 8);
    const auto &tbl = ctx.tbl;

    if (w == 16) {
        // Whole block and all eight splat matrices stay in registers
        // across both passes (registers-as-cache).
        v.setvl(8);
        VR x = p.vreg();
        VR pr = p.vreg();
        AR acc = p.areg();
        v.loadU(x, in, 0);
        for (unsigned pass = 0; pass < 2; ++pass) {
            for (unsigned i = 0; i < 8; ++i) {
                v.accclr(acc);
                v.vmacc(acc, tbl[i], x);
                v.accpack(pr, i, acc, Q);
            }
            v.vtransp(x, pr);
        }
        v.storeU(x, out, 0);
    } else {
        // 64-bit rows: the block splits into left/right 8x4 halves; the
        // 8x8 transpose goes through scratch with 4x4 lane transposes.
        v.setvl(8);
        VR xl = p.vreg();
        VR xr = p.vreg();
        VR pl = p.vreg();
        VR pr = p.vreg();
        VR t1 = p.vreg();
        AR acc = p.areg();
        SReg st16b = p.sreg();
        p.li(st16b, 16);
        v.load(xl, in, 0, st16b);
        v.load(xr, in, 8, st16b);
        for (unsigned pass = 0; pass < 2; ++pass) {
            for (unsigned i = 0; i < 8; ++i) {
                v.accclr(acc);
                v.vmacc(acc, tbl[i], xl);
                v.accpack(pl, i, acc, Q);
                v.accclr(acc);
                v.vmacc(acc, tbl[i], xr);
                v.accpack(pr, i, acc, Q);
            }
            // Transpose [pl | pr] into [xl | xr] via 4x4 blocks.
            v.setvl(4);
            // Top blocks.
            v.vtransp(t1, pl);
            v.storePartial(t1, 0, 4, scr, 0, st8);
            v.vtransp(t1, pr);
            v.storePartial(t1, 0, 4, scr, 32, st8);
            // Bottom blocks: bring rows 4..7 to the top rows first.
            v.storePartial(pl, 4, 4, scr, 64, st8);
            v.loadPartial(t1, 0, 4, scr, 64, st8);
            v.vtransp(t1, t1);
            v.storePartial(t1, 0, 4, scr, 64, st8);
            v.storePartial(pr, 4, 4, scr, 96, st8);
            v.loadPartial(t1, 0, 4, scr, 96, st8);
            v.vtransp(t1, t1);
            v.storePartial(t1, 0, 4, scr, 96, st8);
            v.setvl(8);
            // xl = [A^T ; B^T], xr = [C^T ; D^T].
            v.loadPartial(xl, 0, 4, scr, 0, st8);
            v.loadPartial(xl, 4, 4, scr, 32, st8);
            v.loadPartial(xr, 0, 4, scr, 64, st8);
            v.loadPartial(xr, 4, 4, scr, 96, st8);
        }
        v.store(xl, out, 0, st16b);
        v.store(xr, out, 8, st16b);
    }
    p.release(f);
}

void
dctVmmx(Program &p, Vmmx &v, const DctTables &t, SReg in, SReg out,
        bool forward)
{
    auto f = p.mark();
    VmmxDctCtx ctx = dctVmmxLoadTables(p, v, t, forward);
    dctVmmxBlock(p, v, t, ctx, in, out);
    p.release(f);
}

} // namespace vmmx::kops
