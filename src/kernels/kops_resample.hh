/**
 * @file
 * h2v2 "fancy" chroma up-sampling (jpegdec): triangle-filtered 2x
 * doubling in both dimensions.
 *
 *   out[2r][2c]   = (9 in[r][c] + 3 in[r][c-1] + 3 in[r-1][c]
 *                    + in[r-1][c-1] + 8) >> 4
 * (and the mirrored phases for the other three output pixels).
 *
 * The caller provides a source image with a 1-pixel replicated border so
 * every flavour runs the identical border-free inner code.
 */

#ifndef VMMX_KERNELS_KOPS_RESAMPLE_HH
#define VMMX_KERNELS_KOPS_RESAMPLE_HH

#include "trace/mmx.hh"
#include "trace/program.hh"
#include "trace/vmmx.hh"

namespace vmmx::kops
{

/**
 * Golden reference.
 * @param src interior origin of a (W+2) x (H+2) padded image
 * @param srcPitch bytes per padded source row
 * @param dst 2W x 2H output, @p dstPitch bytes per row
 */
void goldenH2v2(MemImage &mem, Addr src, unsigned srcPitch, Addr dst,
                unsigned dstPitch, unsigned W, unsigned H);

void h2v2Scalar(Program &p, SReg src, unsigned srcPitch, SReg dst,
                unsigned dstPitch, unsigned W, unsigned H);
void h2v2Mmx(Program &p, Mmx &m, SReg src, unsigned srcPitch, SReg dst,
             unsigned dstPitch, unsigned W, unsigned H);
void h2v2Vmmx(Program &p, Vmmx &v, SReg src, unsigned srcPitch, SReg dst,
              unsigned dstPitch, unsigned W, unsigned H);

} // namespace vmmx::kops

#endif // VMMX_KERNELS_KOPS_RESAMPLE_HH
