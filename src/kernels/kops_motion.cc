#include "kernels/kops_motion.hh"

namespace vmmx::kops
{

u64
goldenSad(const MemImage &mem, Addr p1, Addr p2, unsigned h, unsigned lx)
{
    u64 s = 0;
    for (unsigned j = 0; j < h; ++j) {
        for (unsigned i = 0; i < 16; ++i) {
            s32 v = s32(mem.read8(p1 + j * lx + i)) -
                    s32(mem.read8(p2 + j * lx + i));
            s += u64(v < 0 ? -v : v);
        }
    }
    return s;
}

u64
goldenSqd(const MemImage &mem, Addr p1, Addr p2, unsigned h, unsigned lx)
{
    u64 s = 0;
    for (unsigned j = 0; j < h; ++j) {
        for (unsigned i = 0; i < 16; ++i) {
            s64 v = s64(mem.read8(p1 + j * lx + i)) -
                    s64(mem.read8(p2 + j * lx + i));
            s += u64(v * v);
        }
    }
    return s;
}

void
sadScalar(Program &p, SReg p1, SReg p2, unsigned h, unsigned lx, SReg out)
{
    auto f = p.mark();
    SReg a = p.sreg();
    SReg b = p.sreg();
    SReg v = p.sreg();
    SReg zero = p.sreg();
    SReg c1 = p.sreg();
    SReg c2 = p.sreg();
    p.li(out, 0);
    p.li(zero, 0);
    p.mov(c1, p1);
    p.mov(c2, p2);

    // Paper Figure 3(a): two nested loops with an abs branch.
    p.forLoop(h, [&](SReg) {
        p.forLoop(16, [&](SReg i) {
            SReg off = i;
            p.add(a, c1, off);
            p.load(v, a, 0, 1);
            p.add(b, c2, off);
            p.load(b, b, 0, 1);
            p.sub(v, v, b);
            if (p.brLt(v, zero)) {
                p.sub(v, zero, v);
            }
            p.add(out, out, v);
        });
        p.addi(c1, c1, lx);
        p.addi(c2, c2, lx);
    });
    p.release(f);
}

void
sadMmx(Program &p, Mmx &m, SReg p1, SReg p2, unsigned h, unsigned lx,
       SReg out)
{
    auto f = p.mark();
    unsigned w = m.width();
    SReg c1 = p.sreg();
    SReg c2 = p.sreg();
    p.mov(c1, p1);
    p.mov(c2, p2);

    VR acc = p.vreg();
    VR r1 = p.vreg();
    VR r2 = p.vreg();
    m.pzero(acc);

    if (w == 16) {
        // Figure 3(d): one 16-byte load per row per image.
        p.forLoop(h, [&](SReg) {
            m.load(r1, c1, 0);
            p.addi(c1, c1, lx);
            m.load(r2, c2, 0);
            p.addi(c2, c2, lx);
            m.psad(r1, r1, r2);
            m.padd(acc, acc, r1, ElemWidth::Q64);
        });
        SReg t = p.sreg();
        m.psum(out, acc, ElemWidth::Q64, false);
        (void)t;
    } else {
        // Figure 3(b): the 16-pixel row needs two 8-byte regions.
        VR r3 = p.vreg();
        VR r4 = p.vreg();
        p.forLoop(h, [&](SReg) {
            m.load(r1, c1, 0);
            m.load(r2, c2, 0);
            m.load(r3, c1, 8);
            p.addi(c1, c1, lx);
            m.load(r4, c2, 8);
            p.addi(c2, c2, lx);
            m.psad(r1, r1, r2);
            m.psad(r3, r3, r4);
            m.padd(acc, acc, r1, ElemWidth::Q64);
            m.padd(acc, acc, r3, ElemWidth::Q64);
        });
        m.psum(out, acc, ElemWidth::Q64, false);
    }
    p.release(f);
}

void
sadVmmx(Program &p, Vmmx &v, SReg p1, SReg p2, unsigned h, SReg lx,
        SReg out)
{
    auto f = p.mark();
    v.setvl(u16(h));
    VR r1 = p.vreg();
    VR r2 = p.vreg();
    AR acc = p.areg();

    if (v.width() == 16) {
        // Figure 3(e): the whole h x 16 block in one matrix register.
        v.accclr(acc);
        v.load(r1, p1, 0, lx);
        v.load(r2, p2, 0, lx);
        v.vsada(acc, r1, r2);
        v.accsum(out, acc);
    } else {
        // Figure 3(c): two h x 8 halves and two accumulators.
        VR r3 = p.vreg();
        VR r4 = p.vreg();
        AR acc2 = p.areg();
        SReg t = p.sreg();
        v.accclr(acc);
        v.accclr(acc2);
        v.load(r1, p1, 0, lx);
        v.load(r2, p2, 0, lx);
        v.vsada(acc, r1, r2);
        v.load(r3, p1, 8, lx);
        v.load(r4, p2, 8, lx);
        v.vsada(acc2, r3, r4);
        v.accsum(out, acc);
        v.accsum(t, acc2);
        p.add(out, out, t);
    }
    p.release(f);
}

void
sqdScalar(Program &p, SReg p1, SReg p2, unsigned h, unsigned lx, SReg out)
{
    auto f = p.mark();
    SReg a = p.sreg();
    SReg b = p.sreg();
    SReg v = p.sreg();
    SReg c1 = p.sreg();
    SReg c2 = p.sreg();
    p.li(out, 0);
    p.mov(c1, p1);
    p.mov(c2, p2);

    p.forLoop(h, [&](SReg) {
        p.forLoop(16, [&](SReg i) {
            p.add(a, c1, i);
            p.load(v, a, 0, 1);
            p.add(b, c2, i);
            p.load(b, b, 0, 1);
            p.sub(v, v, b);
            p.mul(v, v, v);
            p.add(out, out, v);
        });
        p.addi(c1, c1, lx);
        p.addi(c2, c2, lx);
    });
    p.release(f);
}

void
sqdMmx(Program &p, Mmx &m, SReg p1, SReg p2, unsigned h, unsigned lx,
       SReg out)
{
    auto f = p.mark();
    unsigned w = m.width();
    unsigned chunks = 16 / w; // 2 for MMX64, 1 for MMX128
    SReg c1 = p.sreg();
    SReg c2 = p.sreg();
    p.mov(c1, p1);
    p.mov(c2, p2);

    VR acc = p.vreg();
    VR z = p.vreg();
    VR r1 = p.vreg();
    VR r2 = p.vreg();
    VR dlo = p.vreg();
    VR dhi = p.vreg();
    m.pzero(acc);
    m.pzero(z);

    p.forLoop(h, [&](SReg) {
        for (unsigned c = 0; c < chunks; ++c) {
            m.load(r1, c1, s64(c * w));
            m.load(r2, c2, s64(c * w));
            // |a - b| as unsigned bytes: max - min.
            m.pmin(dlo, r1, r2, ElemWidth::B8, false);
            m.pmax(dhi, r1, r2, ElemWidth::B8, false);
            m.psub(dhi, dhi, dlo, ElemWidth::B8);
            // Widen to 16 bits and square-accumulate (pmaddwd).
            m.unpckl(dlo, dhi, z, ElemWidth::B8);
            m.unpckh(dhi, dhi, z, ElemWidth::B8);
            m.pmadd(dlo, dlo, dlo);
            m.pmadd(dhi, dhi, dhi);
            m.padd(acc, acc, dlo, ElemWidth::D32);
            m.padd(acc, acc, dhi, ElemWidth::D32);
        }
        p.addi(c1, c1, lx);
        p.addi(c2, c2, lx);
    });
    m.psum(out, acc, ElemWidth::D32, false);
    p.release(f);
}

void
sqdVmmx(Program &p, Vmmx &v, SReg p1, SReg p2, unsigned h, SReg lx,
        SReg out)
{
    auto f = p.mark();
    unsigned w = v.width();
    unsigned chunks = 16 / w;
    v.setvl(u16(h));

    VR r1 = p.vreg();
    VR r2 = p.vreg();
    VR z = p.vreg();
    VR dlo = p.vreg();
    VR dhi = p.vreg();
    AR acc = p.areg();
    v.vzero(z);
    v.accclr(acc);

    for (unsigned c = 0; c < chunks; ++c) {
        v.load(r1, p1, s64(c * w), lx);
        v.load(r2, p2, s64(c * w), lx);
        v.pmin(dlo, r1, r2, ElemWidth::B8, false);
        v.pmax(dhi, r1, r2, ElemWidth::B8, false);
        v.psub(dhi, dhi, dlo, ElemWidth::B8);
        v.unpckl(dlo, dhi, z, ElemWidth::B8);
        v.unpckh(dhi, dhi, z, ElemWidth::B8);
        v.vmacc(acc, dlo, dlo);
        v.vmacc(acc, dhi, dhi);
    }
    v.accsum(out, acc);
    p.release(f);
}

} // namespace vmmx::kops
