#include "kernels/kops_color.hh"

#include "common/saturate.hh"
#include "kernels/kops_util.hh"

namespace vmmx::kops
{

namespace
{

// Fixed-point conversion coefficients (scaled by 256).
constexpr s32 cYR = 77, cYG = 150, cYB = 29;
constexpr s32 cCbR = -43, cCbG = -85, cCbB = 128;
constexpr s32 cCrR = 128, cCrG = -107, cCrB = -21;

constexpr s32 cRCr = 359;
constexpr s32 cGCb = 88, cGCr = 183;
constexpr s32 cBCb = 454;

u8
clamp255(s32 v)
{
    return u8(std::clamp<s32>(v, 0, 255));
}

u64
byteMask(std::initializer_list<unsigned> positions)
{
    u64 m = 0;
    for (unsigned b : positions)
        m |= u64(0xff) << (8 * b);
    return m;
}

} // namespace

void
goldenRgb2Ycc(MemImage &mem, Addr rgb, Addr y, Addr cb, Addr cr, unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        s32 r = mem.read8(rgb + 3 * i);
        s32 g = mem.read8(rgb + 3 * i + 1);
        s32 b = mem.read8(rgb + 3 * i + 2);
        mem.write8(y + i, u8(asr(cYR * r + cYG * g + cYB * b, 8)));
        mem.write8(cb + i,
                   u8(asr(cCbR * r + cCbG * g + cCbB * b, 8) + 128));
        mem.write8(cr + i,
                   u8(asr(cCrR * r + cCrG * g + cCrB * b, 8) + 128));
    }
}

void
rgb2YccScalar(Program &p, SReg rgb, SReg y, SReg cb, SReg cr, unsigned n)
{
    auto f = p.mark();
    SReg r = p.sreg();
    SReg g = p.sreg();
    SReg b = p.sreg();
    SReg t = p.sreg();
    SReg acc = p.sreg();
    SReg src = p.sreg();
    p.mov(src, rgb);

    p.forLoop(n, [&](SReg i) {
        p.load(r, src, 0, 1);
        p.load(g, src, 1, 1);
        p.load(b, src, 2, 1);
        p.addi(src, src, 3);

        p.muli(acc, r, cYR);
        p.muli(t, g, cYG);
        p.add(acc, acc, t);
        p.muli(t, b, cYB);
        p.add(acc, acc, t);
        p.srai(acc, acc, 8);
        p.add(t, y, i);
        p.store(acc, t, 0, 1);

        p.muli(acc, r, cCbR);
        p.muli(t, g, cCbG);
        p.add(acc, acc, t);
        p.muli(t, b, cCbB);
        p.add(acc, acc, t);
        p.srai(acc, acc, 8);
        p.addi(acc, acc, 128);
        p.add(t, cb, i);
        p.store(acc, t, 0, 1);

        p.muli(acc, r, cCrR);
        p.muli(t, g, cCrG);
        p.add(acc, acc, t);
        p.muli(t, b, cCrB);
        p.add(acc, acc, t);
        p.srai(acc, acc, 8);
        p.addi(acc, acc, 128);
        p.add(t, cr, i);
        p.store(acc, t, 0, 1);
    });
    p.release(f);
}

void
rgb2YccMmx(Program &p, Mmx &m, SReg rgb, SReg y, SReg cb, SReg cr,
           unsigned n)
{
    vmmx_assert(n % 8 == 0, "rgb kernel works in groups of 8 pixels");
    auto f = p.mark();
    bool wide = m.width() == 16;

    // Three gather masks cover every (component, load) combination of
    // the stride-3 deinterleave.
    VR m036 = p.vreg();
    VR m147 = p.vreg();
    VR m25 = p.vreg();
    VR lm3 = p.vreg();
    VR lm2 = p.vreg();
    mconst64(p, m, m036, byteMask({0, 3, 6}), 0);
    mconst64(p, m, m147, byteMask({1, 4, 7}), 0);
    mconst64(p, m, m25, byteMask({2, 5}), 0);
    mconst64(p, m, lm3, byteMask({0, 1, 2}), 0);
    mconst64(p, m, lm2, byteMask({0, 1}), 0);

    VR patRG[3], patB[3];
    const s32 coefR[3] = {cYR, cCbR, cCrR};
    const s32 coefG[3] = {cYG, cCbG, cCrG};
    const s32 coefB[3] = {cYB, cCbB, cCrB};
    for (unsigned c = 0; c < 3; ++c) {
        patRG[c] = p.vreg();
        patB[c] = p.vreg();
        mconst16(p, m, patRG[c],
                 {s16(coefR[c]), s16(coefG[c]), s16(coefR[c]),
                  s16(coefG[c]), s16(coefR[c]), s16(coefG[c]),
                  s16(coefR[c]), s16(coefG[c])});
        mconst16(p, m, patB[c],
                 {s16(coefB[c]), 0, s16(coefB[c]), 0, s16(coefB[c]), 0,
                  s16(coefB[c]), 0});
    }
    VR bias = p.vreg();
    msplat32(p, m, bias, 128);
    VR z = p.vreg();
    m.pzero(z);

    VR A = p.vreg();
    VR B = p.vreg();
    VR C = p.vreg();
    VR plane[3] = {p.vreg(), p.vreg(), p.vreg()};
    VR t0 = p.vreg();
    VR t1 = p.vreg();
    VR t2 = p.vreg();
    VR comp16 = p.vreg(); // widened component halves (per use)
    VR g16 = p.vreg();
    VR b16 = p.vreg();
    VR rg = p.vreg();
    VR bz = p.vreg();
    VR sumLo = p.vreg();
    SReg src = p.sreg();
    SReg dst = p.sreg();
    p.mov(src, rgb);

    // Gather one component from one 8-byte load into `out` low bytes.
    // kind: 0 -> positions {0,3,6}, 1 -> {1,4,7}, 2 -> {2,5}.
    auto gather = [&](VR out, VR srcReg, unsigned kind) {
        VR mask = kind == 0 ? m036 : kind == 1 ? m147 : m25;
        m.pand(out, srcReg, mask);
        if (kind == 1)
            m.psrli(out, out, 8, ElemWidth::Q64);
        if (kind == 2)
            m.psrli(out, out, 16, ElemWidth::Q64);
        // Merge shifted copies of the *original* gathered value so the
        // stray source bytes cannot alias into the compacted slots.
        m.psrli(t1, out, 16, ElemWidth::Q64);
        if (kind != 2) {
            m.psrli(t2, out, 32, ElemWidth::Q64);
            m.por(out, out, t1);
            m.por(out, out, t2);
            m.pand(out, out, lm3);
        } else {
            m.por(out, out, t1);
            m.pand(out, out, lm2);
        }
    };

    // Per component: gather from A/B/C and place at slots.
    // R: A{036}->0, B{147}->3, C{25}->6
    // G: A{147}->0, B{25}->3, C{036}->5
    // B: A{25}->0, B{036}->2, C{147}->5
    static const unsigned kindTab[3][3] = {{0, 1, 2}, {1, 2, 0}, {2, 0, 1}};
    static const unsigned slotTab[3][3] = {{0, 3, 6}, {0, 3, 5}, {0, 2, 5}};

    unsigned groups = n / 8;
    p.forLoop(groups, [&](SReg gi) {
        m.load(A, src, 0);
        m.load(B, src, 8);
        m.load(C, src, 16);
        p.addi(src, src, 24);

        VR loads[3] = {A, B, C};
        for (unsigned c = 0; c < 3; ++c) {
            for (unsigned l = 0; l < 3; ++l) {
                gather(t0, loads[l], kindTab[c][l]);
                if (slotTab[c][l] != 0)
                    m.pslli(t0, t0, 8 * slotTab[c][l], ElemWidth::Q64);
                if (l == 0)
                    m.por(plane[c], t0, t0);
                else
                    m.por(plane[c], plane[c], t0);
            }
        }

        // Convert.  Halves of 4 pixels for the 64-bit flavour, one
        // 8-pixel pass for the 128-bit one.
        unsigned halves = wide ? 1 : 2;
        SReg outPlane[3] = {y, cb, cr};
        for (unsigned half = 0; half < halves; ++half) {
            if (half == 0) {
                m.unpckl(comp16, plane[0], z, ElemWidth::B8);
                m.unpckl(g16, plane[1], z, ElemWidth::B8);
                m.unpckl(b16, plane[2], z, ElemWidth::B8);
            } else {
                m.unpckh(comp16, plane[0], z, ElemWidth::B8);
                m.unpckh(g16, plane[1], z, ElemWidth::B8);
                m.unpckh(b16, plane[2], z, ElemWidth::B8);
            }
            for (unsigned c = 0; c < 3; ++c) {
                m.unpckl(rg, comp16, g16, ElemWidth::W16);
                m.unpckl(bz, b16, z, ElemWidth::W16);
                m.pmadd(rg, rg, patRG[c]);
                m.pmadd(bz, bz, patB[c]);
                m.padd(rg, rg, bz, ElemWidth::D32);
                m.psrai(rg, rg, 8, ElemWidth::D32);
                if (c > 0)
                    m.padd(rg, rg, bias, ElemWidth::D32);
                m.por(sumLo, rg, rg);
                m.unpckh(rg, comp16, g16, ElemWidth::W16);
                m.unpckh(bz, b16, z, ElemWidth::W16);
                m.pmadd(rg, rg, patRG[c]);
                m.pmadd(bz, bz, patB[c]);
                m.padd(rg, rg, bz, ElemWidth::D32);
                m.psrai(rg, rg, 8, ElemWidth::D32);
                if (c > 0)
                    m.padd(rg, rg, bias, ElemWidth::D32);
                m.packs(sumLo, sumLo, rg, ElemWidth::D32);
                m.packus(sumLo, sumLo, z, ElemWidth::W16);
                p.slli(dst, gi, 3);
                p.add(dst, dst, outPlane[c]);
                if (wide) {
                    // 8 bytes of results in the low half.
                    m.storeLow(sumLo, dst, 0);
                } else {
                    // 4 bytes valid; write-forward with padding.
                    m.store(sumLo, dst, s64(half * 4));
                }
            }
        }
    });
    p.release(f);
}

void
rgb2YccVmmx(Program &p, Vmmx &v, SReg rgb, SReg y, SReg cb, SReg cr,
            unsigned n)
{
    auto f = p.mark();
    unsigned w = v.width();
    unsigned group = w / 2; // pixels per sweep: 4 (vmmx64) or 8 (vmmx128)
    vmmx_assert(n % group == 0, "pixel count must be a group multiple");

    SReg three = p.sreg();
    p.li(three, 3);
    SReg src = p.sreg();
    p.mov(src, rgb);
    SReg dst = p.sreg();
    SReg caddr = p.sreg();
    SReg zstride = p.sreg();
    p.li(zstride, 0);

    v.setvl(u16(group));

    // One [cR cG cB 0 ...] pattern row per output component, broadcast
    // to all rows with a stride-0 load.
    VR pat[3];
    const s32 coefs[3][3] = {
        {cYR, cYG, cYB}, {cCbR, cCbG, cCbB}, {cCrR, cCrG, cCrB}};
    for (unsigned c = 0; c < 3; ++c) {
        pat[c] = p.vreg();
        std::array<s16, 8> buf{};
        for (unsigned k = 0; k < 3; ++k)
            buf[k] = s16(coefs[c][k]);
        Addr a = stash(p, buf.data(), sizeof(buf));
        p.li(caddr, a);
        v.load(pat[c], caddr, 0, zstride);
    }

    VR z = p.vreg();
    v.vzero(z);
    VR bias = p.vreg();
    vsplat32(p, v, bias, 128);

    VR x = p.vreg();
    VR x16 = p.vreg();
    VR prod = p.vreg();
    VR t = p.vreg();
    SReg outPlane[3] = {y, cb, cr};

    p.forLoop(s64(n / group), [&](SReg gi) {
        // One pixel per matrix row: row r starts at byte 3r.
        v.load(x, src, 0, three);
        p.addi(src, src, s64(3 * group));
        v.unpckl(x16, x, z, ElemWidth::B8);

        for (unsigned c = 0; c < 3; ++c) {
            v.pmadd(prod, x16, pat[c]);
            v.psrli(t, prod, 32, ElemWidth::Q64);
            v.padd(prod, prod, t, ElemWidth::D32);
            v.psrai(prod, prod, 8, ElemWidth::D32);
            if (c > 0)
                v.padd(prod, prod, bias, ElemWidth::D32);
            v.packs(prod, prod, z, ElemWidth::D32);
            // Results sit in column 0; transpose moves them to row 0.
            v.vtransp(t, prod);
            v.packus(t, t, z, ElemWidth::W16);
            p.muli(dst, gi, group);
            p.add(dst, dst, outPlane[c]);
            v.storePartial(t, 0, 1, dst, 0, three);
        }
    });
    p.release(f);
}

void
goldenYcc2Rgb(MemImage &mem, Addr y, Addr cb, Addr cr, Addr r, Addr g,
              Addr b, unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        s32 yy = mem.read8(y + i);
        s32 cbv = s32(mem.read8(cb + i)) - 128;
        s32 crv = s32(mem.read8(cr + i)) - 128;
        mem.write8(r + i, clamp255(yy + asr(cRCr * crv, 8)));
        mem.write8(g + i, clamp255(yy - asr(cGCb * cbv + cGCr * crv, 8)));
        mem.write8(b + i, clamp255(yy + asr(cBCb * cbv, 8)));
    }
}

void
ycc2RgbScalar(Program &p, SReg y, SReg cb, SReg cr, SReg r, SReg g, SReg b,
              unsigned n)
{
    auto f = p.mark();
    SReg yy = p.sreg();
    SReg vb = p.sreg();
    SReg vr = p.sreg();
    SReg t = p.sreg();
    SReg t2 = p.sreg();
    SReg zero = p.sreg();
    SReg c255 = p.sreg();
    p.li(zero, 0);
    p.li(c255, 255);

    auto clampStore = [&](SReg val, SReg plane, SReg idx) {
        if (p.brLt(val, zero))
            p.mov(val, zero);
        if (p.brLt(c255, val))
            p.mov(val, c255);
        p.add(t2, plane, idx);
        p.store(val, t2, 0, 1);
    };

    p.forLoop(n, [&](SReg i) {
        p.add(t, y, i);
        p.load(yy, t, 0, 1);
        p.add(t, cb, i);
        p.load(vb, t, 0, 1);
        p.addi(vb, vb, -128);
        p.add(t, cr, i);
        p.load(vr, t, 0, 1);
        p.addi(vr, vr, -128);

        p.muli(t, vr, cRCr);
        p.srai(t, t, 8);
        p.add(t, t, yy);
        clampStore(t, r, i);

        p.muli(t, vb, cGCb);
        p.muli(t2, vr, cGCr);
        p.add(t, t, t2);
        p.srai(t, t, 8);
        p.sub(t, yy, t);
        clampStore(t, g, i);

        p.muli(t, vb, cBCb);
        p.srai(t, t, 8);
        p.add(t, t, yy);
        clampStore(t, b, i);
    });
    p.release(f);
}

namespace
{

/**
 * Shared row recipe for ycc2rgb: the 1-D and 2-D engines expose the same
 * arithmetic method names, so one template emits both; only memory and
 * splat operations are adapted.  Register budget fits the matrix
 * flavours' 16 logical registers.
 */
template <typename E, typename Adapter>
void
ycc2RgbBody(Program &p, E &e, Adapter ad, unsigned /*width*/, SReg y, SReg cb,
            SReg cr, SReg r, SReg g, SReg b, unsigned n)
{
    unsigned sweepPixels = ad.sweepPixels;
    vmmx_assert(n % sweepPixels == 0, "pixel count per sweep");
    auto f = p.mark();

    VR Z = p.vreg();
    VR C128 = p.vreg();
    VR MR = p.vreg();
    VR MGB = p.vreg();
    VR MGR = p.vreg();
    VR MB = p.vreg();
    ad.zero(Z);
    ad.splat16(C128, 128);
    ad.splat32(MR, cRCr);
    ad.splat32(MGB, cGCb);
    ad.splat32(MGR, cGCr);
    ad.splat32(MB, cBCb);

    VR ylo = p.vreg();
    VR yhi = p.vreg();
    VR cblo = p.vreg();
    VR cbhi = p.vreg();
    VR crlo = p.vreg();
    VR crhi = p.vreg();
    VR t0 = p.vreg();
    VR t1 = p.vreg();
    VR outw = p.vreg();

    SReg sy = p.sreg();
    SReg scb = p.sreg();
    SReg scr = p.sreg();
    SReg sout[3];
    sout[0] = p.sreg();
    sout[1] = p.sreg();
    sout[2] = p.sreg();
    p.mov(sy, y);
    p.mov(scb, cb);
    p.mov(scr, cr);
    p.mov(sout[0], r);
    p.mov(sout[1], g);
    p.mov(sout[2], b);

    // Widen one source plane's current half into s32 lo/hi.
    auto widen = [&](VR lo, VR hi, SReg plane, unsigned half,
                     bool chroma) {
        ad.load(t0, plane);
        if (half == 0)
            e.unpckl(t0, t0, Z, ElemWidth::B8);
        else
            e.unpckh(t0, t0, Z, ElemWidth::B8);
        if (chroma)
            e.psub(t0, t0, C128, ElemWidth::W16);
        e.psrai(t1, t0, 15, ElemWidth::W16);
        e.unpckl(lo, t0, t1, ElemWidth::W16);
        e.unpckh(hi, t0, t1, ElemWidth::W16);
    };

    p.forLoop(s64(n / sweepPixels), [&](SReg) {
        // Two halves per sweep; the first half's saturated s16 results
        // are spilled to scratch and combined by the second (the
        // register budget of the 16-register matrix file forbids
        // keeping all three components live).
        for (unsigned half = 0; half < 2; ++half) {
            widen(ylo, yhi, sy, half, false);
            widen(cblo, cbhi, scb, half, true);
            widen(crlo, crhi, scr, half, true);

            for (unsigned c = 0; c < 3; ++c) {
                // t0/t1 = (coef * chroma) >> 8 per s32 half.
                if (c == 0) {
                    e.pmull(t0, crlo, MR, ElemWidth::D32);
                    e.pmull(t1, crhi, MR, ElemWidth::D32);
                } else if (c == 1) {
                    e.pmull(t0, cblo, MGB, ElemWidth::D32);
                    e.pmull(t1, cbhi, MGB, ElemWidth::D32);
                    e.pmull(outw, crlo, MGR, ElemWidth::D32);
                    e.padd(t0, t0, outw, ElemWidth::D32);
                    e.pmull(outw, crhi, MGR, ElemWidth::D32);
                    e.padd(t1, t1, outw, ElemWidth::D32);
                } else {
                    e.pmull(t0, cblo, MB, ElemWidth::D32);
                    e.pmull(t1, cbhi, MB, ElemWidth::D32);
                }
                e.psrai(t0, t0, 8, ElemWidth::D32);
                e.psrai(t1, t1, 8, ElemWidth::D32);
                if (c == 1) {
                    e.psub(t0, ylo, t0, ElemWidth::D32);
                    e.psub(t1, yhi, t1, ElemWidth::D32);
                } else {
                    e.padd(t0, t0, ylo, ElemWidth::D32);
                    e.padd(t1, t1, yhi, ElemWidth::D32);
                }
                e.packs(outw, t0, t1, ElemWidth::D32);
                if (half == 0) {
                    ad.saveS16(outw, c);
                } else {
                    ad.loadS16(t0, c);
                    e.packus(outw, t0, outw, ElemWidth::W16);
                    ad.storeFinal(outw, sout[c]);
                }
            }
        }
        ad.advance(sy, scb, scr, sout);
    });
    p.release(f);
}

} // namespace

void
ycc2RgbMmx(Program &p, Mmx &m, SReg y, SReg cb, SReg cr, SReg r, SReg g,
           SReg b, unsigned n)
{
    SReg scratch = p.sreg();
    p.li(scratch, p.mem().alloc(3 * 16, 16));
    struct Ad
    {
        Program &p;
        Mmx &m;
        unsigned sweepPixels;
        SReg scratch;
        void zero(VR d) { m.pzero(d); }
        void splat16(VR d, s16 v) { msplat16(p, m, d, v); }
        void splat32(VR d, s32 v) { msplat32(p, m, d, v); }
        void load(VR d, SReg base) { m.load(d, base, 0); }
        void
        saveS16(VR s, unsigned c)
        {
            m.store(s, scratch, s64(16 * c));
        }
        void
        loadS16(VR d, unsigned c)
        {
            m.load(d, scratch, s64(16 * c));
        }
        void storeFinal(VR s, SReg base) { m.store(s, base, 0); }
        void
        advance(SReg sy, SReg scb, SReg scr, SReg *sout)
        {
            s64 step = s64(m.width());
            p.addi(sy, sy, step);
            p.addi(scb, scb, step);
            p.addi(scr, scr, step);
            for (int i = 0; i < 3; ++i)
                p.addi(sout[i], sout[i], step);
        }
    };
    Ad ad{p, m, m.width(), scratch};
    ycc2RgbBody(p, m, ad, m.width(), y, cb, cr, r, g, b, n);
}

void
ycc2RgbVmmx(Program &p, Vmmx &v, SReg y, SReg cb, SReg cr, SReg r, SReg g,
            SReg b, unsigned n)
{
    v.setvl(16);
    SReg scratch = p.sreg();
    p.li(scratch, p.mem().alloc(3 * 16 * 16, 16));
    struct Ad
    {
        Program &p;
        Vmmx &v;
        unsigned sweepPixels;
        SReg scratch;
        void zero(VR d) { v.vzero(d); }
        void splat16(VR d, s16 val) { vsplat16(p, v, d, val); }
        void splat32(VR d, s32 val) { vsplat32(p, v, d, val); }
        void load(VR d, SReg base) { v.loadU(d, base, 0); }
        void
        saveS16(VR s, unsigned c)
        {
            v.storeU(s, scratch, s64(16 * 16 * c));
        }
        void
        loadS16(VR d, unsigned c)
        {
            v.loadU(d, scratch, s64(16 * 16 * c));
        }
        void storeFinal(VR s, SReg base) { v.storeU(s, base, 0); }
        void
        advance(SReg sy, SReg scb, SReg scr, SReg *sout)
        {
            s64 step = s64(v.width()) * 16;
            p.addi(sy, sy, step);
            p.addi(scb, scb, step);
            p.addi(scr, scr, step);
            for (int i = 0; i < 3; ++i)
                p.addi(sout[i], sout[i], step);
        }
    };
    Ad ad{p, v, v.width() * 16, scratch};
    ycc2RgbBody(p, v, ad, v.width(), y, cb, cr, r, g, b, n);
}

} // namespace vmmx::kops
