/**
 * @file
 * Colour-space conversion kernels.
 *
 * rgb2ycc (jpegenc "rgb"): interleaved RGB triads -> planar Y/Cb/Cr.
 *   Y  = (77 R + 150 G +  29 B) >> 8
 *   Cb = ((-43 R - 85 G + 128 B) >> 8) + 128
 *   Cr = ((128 R - 107 G - 21 B) >> 8) + 128
 *
 * ycc2rgb (jpegdec "ycc"): planar Y/Cb/Cr -> planar R/G/B.
 *   R = clamp(Y + (359 Cr') >> 8)           Cb' = Cb - 128
 *   G = clamp(Y - (88 Cb' + 183 Cr') >> 8)  Cr' = Cr - 128
 *   B = clamp(Y + (454 Cb') >> 8)
 *
 * All flavours compute these bit-exactly (full-precision products,
 * arithmetic shift, clamp).  The interleaved input of rgb2ycc is what
 * makes its 1-D SIMD versions pay heavy reorganisation overhead, and its
 * matrix versions work pixel-per-row with short effective vector use --
 * the weak spot the paper observes for jpegenc.
 */

#ifndef VMMX_KERNELS_KOPS_COLOR_HH
#define VMMX_KERNELS_KOPS_COLOR_HH

#include "trace/mmx.hh"
#include "trace/program.hh"
#include "trace/vmmx.hh"

namespace vmmx::kops
{

/** Golden rgb2ycc over @p n pixels (n multiple of 8). */
void goldenRgb2Ycc(MemImage &mem, Addr rgb, Addr y, Addr cb, Addr cr,
                   unsigned n);

void rgb2YccScalar(Program &p, SReg rgb, SReg y, SReg cb, SReg cr,
                   unsigned n);
void rgb2YccMmx(Program &p, Mmx &m, SReg rgb, SReg y, SReg cb, SReg cr,
                unsigned n);
void rgb2YccVmmx(Program &p, Vmmx &v, SReg rgb, SReg y, SReg cb, SReg cr,
                 unsigned n);

/** Golden ycc2rgb over @p n pixels (n multiple of 16). */
void goldenYcc2Rgb(MemImage &mem, Addr y, Addr cb, Addr cr, Addr r, Addr g,
                   Addr b, unsigned n);

void ycc2RgbScalar(Program &p, SReg y, SReg cb, SReg cr, SReg r, SReg g,
                   SReg b, unsigned n);
void ycc2RgbMmx(Program &p, Mmx &m, SReg y, SReg cb, SReg cr, SReg r,
                SReg g, SReg b, unsigned n);
void ycc2RgbVmmx(Program &p, Vmmx &v, SReg y, SReg cb, SReg cr, SReg r,
                 SReg g, SReg b, unsigned n);

} // namespace vmmx::kops

#endif // VMMX_KERNELS_KOPS_COLOR_HH
