#include "kernels/kernel.hh"

namespace vmmx
{

void
Kernel::emit(Program &p)
{
    p.beginVectorRegion();
    if (p.matrix()) {
        Vmmx v(p);
        emitVmmx(p, v);
    } else {
        Mmx m(p);
        emitMmx(p, m);
    }
    p.endVectorRegion();
}

} // namespace vmmx
