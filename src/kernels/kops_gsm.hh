/**
 * @file
 * GSM 06.10 long-term-prediction kernels.
 *
 * ltppar (gsmenc): cross-correlate the current 40-sample residual
 * against the 120-sample reconstructed history over lags 40..120, pick
 * the lag with the maximum correlation and quantise the gain.  This is
 * the encoder's dominant kernel; its 40-sample segments bound the
 * vector length, which is why the paper sees almost no VMMX64->VMMX128
 * gain here.
 *
 * ltpfilt (gsmdec): long-term synthesis filter, three 40-sample
 * subframes: drp[k] = erp[k] + (QLB[bc] * drp[k - Nc] + 16384) >> 15.
 */

#ifndef VMMX_KERNELS_KOPS_GSM_HH
#define VMMX_KERNELS_KOPS_GSM_HH

#include "trace/mmx.hh"
#include "trace/program.hh"
#include "trace/vmmx.hh"

namespace vmmx::kops
{

/** Gain quantiser thresholds / levels (GSM 06.10, Q15). */
constexpr s32 gsmDLB[3] = {6554, 16384, 26214};
constexpr s32 gsmQLB[4] = {3277, 11469, 21299, 32767};

/**
 * Golden ltppar.
 * @param d 40 s16 residual samples
 * @param hist 120 s16 history samples (hist[119] is the newest)
 * @param outLag store best lag (u16)
 * @param outBc store gain index (u16)
 */
void goldenLtppar(MemImage &mem, Addr d, Addr hist, Addr outLag,
                  Addr outBc);

void ltpparScalar(Program &p, SReg d, SReg hist, SReg outLag, SReg outBc);
void ltpparMmx(Program &p, Mmx &m, SReg d, SReg hist, SReg outLag,
               SReg outBc);
void ltpparVmmx(Program &p, Vmmx &v, SReg d, SReg hist, SReg outLag,
                SReg outBc);

/**
 * Golden ltpfilt over three subframes.
 * @param erp 120 s16 excitation samples
 * @param buf 240 s16: [0..119] history, [120..239] output (written)
 * @param nc 3 u16 lags (40..120)
 * @param bc 3 u16 gain indices (0..3)
 */
void goldenLtpfilt(MemImage &mem, Addr erp, Addr buf, Addr nc, Addr bc);

void ltpfiltScalar(Program &p, SReg erp, SReg buf, SReg nc, SReg bc);
void ltpfiltMmx(Program &p, Mmx &m, SReg erp, SReg buf, SReg nc, SReg bc);
void ltpfiltVmmx(Program &p, Vmmx &v, SReg erp, SReg buf, SReg nc,
                 SReg bc);

} // namespace vmmx::kops

#endif // VMMX_KERNELS_KOPS_GSM_HH
