/**
 * @file
 * 8x8 forward / inverse DCT (Table II: fdct, idct), implemented as two
 * matrix products with Q14 fixed-point coefficients so that all five
 * flavours are bit-exact:
 *
 *   pass(A)  = round14(M^T A)        round14(x) = (x + 8192) >> 14
 *   out      = pass(pass(X)^T)^T     M = CQ for idct, CQ^T for fdct
 *
 * The MMX versions interleave row pairs and use pmaddwd against
 * pair-splatted coefficient patterns (the classic MMX DCT recipe); the
 * matrix versions keep the whole block and the coefficient splat
 * matrices in registers and reduce through packed accumulators --
 * "using vector registers as a cache", which the paper credits for
 * idct's largest speed-up.
 */

#ifndef VMMX_KERNELS_KOPS_DCT_HH
#define VMMX_KERNELS_KOPS_DCT_HH

#include "trace/mmx.hh"
#include "trace/program.hh"
#include "trace/vmmx.hh"

namespace vmmx::kops
{

/** Q14 DCT-II coefficient matrix entry (|value| <= 8192). */
s16 dctCoef(unsigned i, unsigned j);

/** Constant tables + scratch, stashed once per Program. */
struct DctTables
{
    /** pmaddwd pair-splat patterns, [forward][row i][pair t]. */
    Addr pairTable[2];
    /** Matrix splat tables, [forward][row i] -> 8 rows x 16 bytes. */
    Addr splatTable[2];
    /** 512-byte scratch for intermediate/spilled rows. */
    Addr scratch;
};

DctTables prepareDctTables(Program &p);

/** Golden transform of one 8x8 s16 block (in/out may alias). */
void goldenDct8x8(MemImage &mem, Addr in, Addr out, bool forward);

void dctScalar(Program &p, const DctTables &t, SReg in, SReg out,
               bool forward);
void dctMmx(Program &p, Mmx &m, const DctTables &t, SReg in, SReg out,
            bool forward);

/**
 * Matrix-flavour coefficient residency: the eight splat matrices are
 * loaded once and stay in registers across every block of a batch --
 * the paper's "vector registers as a cache" optimisation, responsible
 * for idct's largest speed-up.
 */
struct VmmxDctCtx
{
    std::array<VR, 8> tbl{};
};

/** Load the splat matrices for @p forward into fresh registers. */
VmmxDctCtx dctVmmxLoadTables(Program &p, Vmmx &v, const DctTables &t,
                             bool forward);

/** Transform one block using resident tables. */
void dctVmmxBlock(Program &p, Vmmx &v, const DctTables &t,
                  const VmmxDctCtx &ctx, SReg in, SReg out);

/** Convenience: load tables + transform one block. */
void dctVmmx(Program &p, Vmmx &v, const DctTables &t, SReg in, SReg out,
             bool forward);

} // namespace vmmx::kops

#endif // VMMX_KERNELS_KOPS_DCT_HH
