/**
 * @file
 * Motion-estimation emission primitives: Sum of Absolute Differences
 * (motion1 / paper Figure 3) and Sum of Quadratic Differences (motion2)
 * between two 16-column pixel blocks with a row stride.
 *
 * These follow the paper's code shapes: the MMX versions keep the row
 * loop and split the 16-pixel row into full-register chunks; the VMMX
 * versions eliminate both loops with strided matrix loads and packed-
 * accumulator reductions.
 */

#ifndef VMMX_KERNELS_KOPS_MOTION_HH
#define VMMX_KERNELS_KOPS_MOTION_HH

#include "trace/mmx.hh"
#include "trace/program.hh"
#include "trace/vmmx.hh"

namespace vmmx::kops
{

/** Golden SAD of two h x 16 u8 blocks with row stride lx. */
u64 goldenSad(const MemImage &mem, Addr p1, Addr p2, unsigned h,
              unsigned lx);

/** Golden SQD (sum of squared differences). */
u64 goldenSqd(const MemImage &mem, Addr p1, Addr p2, unsigned h,
              unsigned lx);

/** Scalar-ISA SAD; result value left in @p out. */
void sadScalar(Program &p, SReg p1, SReg p2, unsigned h, unsigned lx,
               SReg out);

/** Packed 1-D SAD (MMX64 splits rows in two; MMX128 one load per row). */
void sadMmx(Program &p, Mmx &m, SReg p1, SReg p2, unsigned h, unsigned lx,
            SReg out);

/** Matrix SAD: strided loads + packed-accumulator reduction. */
void sadVmmx(Program &p, Vmmx &v, SReg p1, SReg p2, unsigned h, SReg lx,
             SReg out);

void sqdScalar(Program &p, SReg p1, SReg p2, unsigned h, unsigned lx,
               SReg out);
void sqdMmx(Program &p, Mmx &m, SReg p1, SReg p2, unsigned h, unsigned lx,
            SReg out);
void sqdVmmx(Program &p, Vmmx &v, SReg p1, SReg p2, unsigned h, SReg lx,
             SReg out);

} // namespace vmmx::kops

#endif // VMMX_KERNELS_KOPS_MOTION_HH
