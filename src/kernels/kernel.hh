/**
 * @file
 * Kernel: one Table II media kernel packaged for isolated evaluation
 * (Figure 4) and correctness testing.
 *
 * Each kernel owns its input/output buffers inside a MemImage, provides
 * a golden (plain C++) reference writing to a shadow buffer, and emits a
 * traced version for any Program flavour.  The vectorised-region markers
 * are applied here so Figure 6's scalar/vector cycle attribution works
 * uniformly.
 */

#ifndef VMMX_KERNELS_KERNEL_HH
#define VMMX_KERNELS_KERNEL_HH

#include <memory>
#include <string>
#include <vector>

#include "common/memimage.hh"
#include "common/rng.hh"
#include "trace/mmx.hh"
#include "trace/program.hh"
#include "trace/vmmx.hh"

namespace vmmx
{

class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** Figure-4 name ("idct", "motion1", ...). */
    virtual std::string name() const = 0;
    virtual std::string description() const = 0;
    /** Table II data-size note ("16x16 8-bit", ...). */
    virtual std::string dataSize() const = 0;

    /** Allocate and fill inputs and outputs; deterministic via @p rng. */
    virtual void prepare(MemImage &mem, Rng &rng) = 0;

    /** Compute the expected outputs into the shadow buffers. */
    virtual void golden(MemImage &mem) = 0;

    /** Emit the scalar-ISA version (no packed instructions). */
    virtual void emitScalar(Program &p) = 0;

    /** Emit the version for p.kind(), wrapped in a vector region. */
    void emit(Program &p);

    /** A produced/expected buffer pair to verify. */
    struct Output
    {
        Addr actual;
        Addr expected;
        u32 bytes;
        std::string what;
    };

    virtual std::vector<Output> outputs() const = 0;

  protected:
    virtual void emitMmx(Program &p, Mmx &m) = 0;
    virtual void emitVmmx(Program &p, Vmmx &v) = 0;
};

/** All Table II kernels in Figure 4/7 order. */
std::vector<std::unique_ptr<Kernel>> makeAllKernels();

/** Factory by Figure-4 name; fatal on unknown names. */
std::unique_ptr<Kernel> makeKernel(const std::string &name);

/** Names in Figure 4 order. */
std::vector<std::string> kernelNames();

} // namespace vmmx

#endif // VMMX_KERNELS_KERNEL_HH
