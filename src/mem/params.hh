/**
 * @file
 * Memory-hierarchy parameters (paper Table IV).
 *
 * The L1 is the conventional scalar data cache; the L2 doubles as the
 * *vector cache* of Quintana et al.: vector (matrix) accesses bypass the
 * L1 and stream from the L2 through a dedicated port.  Stride-one vector
 * requests are serviced by loading two whole cache lines (one per bank)
 * and transfer at B x 64-bit elements per cycle; any other stride
 * transfers one 64-bit element per cycle (paper section III-D).
 */

#ifndef VMMX_MEM_PARAMS_HH
#define VMMX_MEM_PARAMS_HH

#include <string>

#include "common/config.hh"
#include "common/types.hh"

namespace vmmx
{

struct CacheParams
{
    std::string name;
    u32 sizeBytes = 0;
    u32 assoc = 1;
    u32 lineBytes = 32;
    u32 banks = 1;
    Cycle latency = 1;

    u32 numSets() const { return sizeBytes / (lineBytes * assoc); }
};

struct MemParams
{
    CacheParams l1;
    CacheParams l2;

    /** Number of L1 data ports (Table IV: 1/2/4 for 2/4/8-way). */
    unsigned l1Ports = 1;
    /** Width of each L1 port in bytes (Table IV: 8). */
    u32 l1PortBytes = 8;
    /** L1<->L2 fill width in bytes per cycle (Table IV: 16/32/64). */
    u32 l2FillBytes = 16;
    /**
     * Vector (L2) port width in bytes per cycle for stride-one requests
     * (Table III: 1x 64/128/256-bit for 2/4/8-way VMMX).
     */
    u32 vecPortBytes = 8;
    /** Bytes per cycle for non-unit-stride vector transfers (64-bit). */
    u32 vecStridedBytes = 8;
    /** Main memory latency in cycles (Table IV: 500). */
    Cycle memLatency = 500;
    /** Additional pipelined-memory cycles per extra outstanding line. */
    Cycle memPipeCycles = 30;
    /** Maximum outstanding L1 misses. */
    unsigned mshrs = 8;

    /**
     * Build the Table IV configuration for a given superscalar width.
     * @param way 2, 4 or 8.
     * @param overrides optional config keys (mem.l1.size, mem.latency...).
     */
    static MemParams forWay(unsigned way, const Config &overrides = {});
};

} // namespace vmmx

#endif // VMMX_MEM_PARAMS_HH
