/**
 * @file
 * Tag/state array of one cache level: set-associative with true-LRU
 * replacement, valid + dirty bits.  Purely a state model -- timing lives
 * in MemorySystem, and data lives in the functional MemImage.
 */

#ifndef VMMX_MEM_CACHE_ARRAY_HH
#define VMMX_MEM_CACHE_ARRAY_HH

#include <vector>

#include "mem/params.hh"

namespace vmmx
{

class CacheArray
{
  public:
    explicit CacheArray(const CacheParams &params);

    /** Result of inserting a line. */
    struct FillResult
    {
        bool evicted = false;
        Addr evictedLine = 0; ///< line-aligned address
        bool evictedDirty = false;
    };

    /** @return true when the line holding @p addr is present. */
    bool probe(Addr addr) const;

    /** Mark the line as most recently used.  Line must be present. */
    void touch(Addr addr);

    /** Insert the line holding @p addr, evicting the LRU way if needed. */
    FillResult fill(Addr addr, bool dirty = false);

    /** Drop the line if present; @return true when it was present. */
    bool invalidate(Addr addr);

    /** @return true when present and dirty. */
    bool isDirty(Addr addr) const;

    /** Mark an existing line dirty (store hit). Line must be present. */
    void setDirty(Addr addr);

    /** Mark an existing line clean (after writeback). */
    void clean(Addr addr);

    /** Drop everything (used between benchmark repetitions). */
    void flush();

    /** Line-aligned base of the line containing @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~Addr(lineMask_); }

    u32 lineBytes() const { return params_.lineBytes; }

    /** Bank servicing @p addr (line-interleaved).  Line size is a
     *  power of two; bank counts are too in every Table IV machine, so
     *  the hot path is shift+mask with a modulo fallback. */
    u32
    bank(Addr addr) const
    {
        Addr line = addr >> lineShift_;
        if (bankMask_)
            return u32(line & bankMask_);
        return u32(line % params_.banks);
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        u64 lruStamp = 0;
    };

    const Line *find(Addr addr) const;
    Line *find(Addr addr);

    /** Set index of a line-aligned address (numSets_ is a power of
     *  two, asserted at construction). */
    u64 setOf(Addr line) const { return (line >> lineShift_) & setMask_; }

    CacheParams params_;
    u32 lineMask_;
    u32 lineShift_;
    u32 numSets_;
    u64 setMask_;
    u64 bankMask_; ///< banks - 1 when banks is a power of two, else 0
    std::vector<Line> lines_; // numSets_ x assoc
    u64 stamp_ = 0;
};

} // namespace vmmx

#endif // VMMX_MEM_CACHE_ARRAY_HH
