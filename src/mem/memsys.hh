/**
 * @file
 * Timing model of the two-level memory hierarchy with the vector-cache
 * path (paper section III-D).
 *
 * Scalar and 1-D packed accesses go through the banked L1 (8-byte ports;
 * a 128-bit MMX access occupies a port for two cycles).  Matrix (vector)
 * accesses bypass the L1 and stream from the L2 through a dedicated
 * vector port: stride-one requests transfer vecPortBytes per cycle by
 * reading two whole interleaved lines; other strides transfer one 64-bit
 * element per cycle.  Coherence follows an exclusive-bit + inclusion
 * policy: a vector access to a line present in the L1 forces a writeback
 * (if dirty) and invalidation, so at most one cache level owns a line for
 * writing at any time.
 *
 * The model is timing-only: functional data lives in the MemImage used at
 * trace-generation time.
 */

#ifndef VMMX_MEM_MEMSYS_HH
#define VMMX_MEM_MEMSYS_HH

#include <vector>

#include "common/stats.hh"
#include "mem/cache_array.hh"
#include "mem/params.hh"

namespace vmmx
{

class MemorySystem
{
  public:
    explicit MemorySystem(const MemParams &params);

    /**
     * Issue a scalar or 1-D packed access.
     * @param addr resolved effective address
     * @param bytes access size (1..16)
     * @param isWrite store when true
     * @param when earliest cycle the access can start (issue cycle)
     * @return cycle at which the value is available (loads) or the access
     *         is accepted (stores).
     */
    Cycle scalarAccess(Addr addr, u32 bytes, bool isWrite, Cycle when);

    /**
     * Issue a matrix (vector) access of @p vl rows of @p rowBytes each,
     * @p stride bytes apart, through the L2 vector port.
     */
    Cycle vectorAccess(Addr addr, u32 rowBytes, s32 stride, u16 vl,
                       bool isWrite, Cycle when);

    /** Drop all cache state and port reservations (between runs). */
    void reset();

    const MemParams &params() const { return params_; }
    StatGroup &stats() { return stats_; }

    u64 l1Hits() const { return l1Hits_.value(); }
    u64 l1Misses() const { return l1Misses_.value(); }
    u64 l2Hits() const { return l2Hits_.value(); }
    u64 l2Misses() const { return l2Misses_.value(); }
    u64 vecAccesses() const { return vecAccesses_.value(); }
    u64 vecStride1() const { return vecStride1_.value(); }
    u64 coherenceInvalidations() const { return cohInval_.value(); }
    u64 l1WritebackCount() const { return l1Writebacks_.value(); }
    u64 l2WritebackCount() const { return l2Writebacks_.value(); }

  private:
    /** L2 lookup shared by the scalar-miss and vector paths.
     *  @return cycle the line's data is available at the L2.  */
    Cycle l2Lookup(Addr lineAddr, bool isWrite, Cycle when);

    /** Reserve an L1 port and bank; @return transfer start cycle. */
    Cycle reserveL1(Addr addr, u32 bytes, Cycle when);

    /**
     * Outstanding-miss table entry.  The table is a flat array of at most
     * params_.mshrs entries (no per-miss node allocation) with the
     * earliest outstanding fill cycle tracked incrementally, so the
     * common no-retirement case skips the table walk entirely.
     */
    struct MshrEntry
    {
        Addr line;
        Cycle ready;
    };

    static constexpr Cycle noFill = ~Cycle(0);

    MshrEntry *mshrFind(Addr lineAddr);
    void mshrErase(MshrEntry *e);
    void mshrInsert(Addr lineAddr, Cycle ready);
    /** Drop all entries whose fills completed at or before @p when. */
    void mshrRetire(Cycle when);
    /** Entry with the earliest fill (ties: lowest line address). */
    MshrEntry *mshrOldest();
    void mshrRecomputeEarliest();

    MemParams params_;
    CacheArray l1_;
    CacheArray l2_;

    /** log2(l1PortBytes) when it is a power of two (it is in every
     *  Table IV machine), else 0 to take the division fallback. */
    u32 l1PortShift_ = 0;

    std::vector<Cycle> l1PortFree_;
    std::vector<Cycle> l1BankFree_;
    Cycle vecPortFree_ = 0;

    /** Outstanding-miss table (unordered; size <= params_.mshrs). */
    std::vector<MshrEntry> mshr_;
    /** Minimum ready cycle over mshr_; noFill when empty. */
    Cycle mshrEarliest_ = noFill;

    StatGroup stats_;
    Counter l1Hits_;
    Counter l1Misses_;
    Counter l2Hits_;
    Counter l2Misses_;
    Counter vecAccesses_;
    Counter vecStride1_;
    Counter vecElems_;
    Counter cohInval_;
    Counter cohWritebacks_;
    Counter l1Writebacks_;
    Counter l2Writebacks_;
};

} // namespace vmmx

#endif // VMMX_MEM_MEMSYS_HH
