#include "mem/memsys.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vmmx
{

MemorySystem::MemorySystem(const MemParams &params)
    : params_(params),
      l1_(params.l1),
      l2_(params.l2),
      l1PortFree_(params.l1Ports, 0),
      l1BankFree_(params.l1.banks, 0),
      stats_("mem"),
      l1Hits_(&stats_, "l1_hits", "L1 data cache hits"),
      l1Misses_(&stats_, "l1_misses", "L1 data cache misses"),
      l2Hits_(&stats_, "l2_hits", "L2 hits (scalar fills + vector)"),
      l2Misses_(&stats_, "l2_misses", "L2 misses to main memory"),
      vecAccesses_(&stats_, "vec_accesses", "matrix accesses via L2 port"),
      vecStride1_(&stats_, "vec_stride1", "stride-one matrix accesses"),
      vecElems_(&stats_, "vec_elems", "64-bit elements moved by vector port"),
      cohInval_(&stats_, "coh_invalidations",
                "L1 lines invalidated by vector accesses"),
      cohWritebacks_(&stats_, "coh_writebacks",
                     "L1 dirty lines flushed to L2 by vector accesses"),
      l1Writebacks_(&stats_, "l1_writebacks", "L1 dirty evictions"),
      l2Writebacks_(&stats_, "l2_writebacks", "L2 dirty evictions to memory")
{
    vmmx_assert(params_.l1Ports > 0, "need at least one L1 port");
    vmmx_assert(params_.vecPortBytes >= 8, "vector port below 64 bits");
    mshr_.reserve(params_.mshrs);
    if (params_.l1PortBytes &&
        !(params_.l1PortBytes & (params_.l1PortBytes - 1))) {
        while ((1u << l1PortShift_) < params_.l1PortBytes)
            ++l1PortShift_;
    }
}

void
MemorySystem::reset()
{
    l1_.flush();
    l2_.flush();
    std::fill(l1PortFree_.begin(), l1PortFree_.end(), 0);
    std::fill(l1BankFree_.begin(), l1BankFree_.end(), 0);
    vecPortFree_ = 0;
    mshr_.clear();
    mshrEarliest_ = noFill;
    stats_.resetAll();
}

MemorySystem::MshrEntry *
MemorySystem::mshrFind(Addr lineAddr)
{
    for (auto &e : mshr_)
        if (e.line == lineAddr)
            return &e;
    return nullptr;
}

void
MemorySystem::mshrRecomputeEarliest()
{
    mshrEarliest_ = noFill;
    for (const auto &e : mshr_)
        mshrEarliest_ = std::min(mshrEarliest_, e.ready);
}

void
MemorySystem::mshrErase(MshrEntry *e)
{
    Cycle ready = e->ready;
    *e = mshr_.back();
    mshr_.pop_back();
    if (ready <= mshrEarliest_)
        mshrRecomputeEarliest();
}

void
MemorySystem::mshrInsert(Addr lineAddr, Cycle ready)
{
    mshr_.push_back({lineAddr, ready});
    mshrEarliest_ = std::min(mshrEarliest_, ready);
}

void
MemorySystem::mshrRetire(Cycle when)
{
    for (size_t i = 0; i < mshr_.size();) {
        if (mshr_[i].ready <= when) {
            mshr_[i] = mshr_.back();
            mshr_.pop_back();
        } else {
            ++i;
        }
    }
    mshrRecomputeEarliest();
}

MemorySystem::MshrEntry *
MemorySystem::mshrOldest()
{
    MshrEntry *best = nullptr;
    for (auto &e : mshr_) {
        // Ties break toward the lowest line address, preserving the
        // ordered-map semantics this table replaced.
        if (!best || e.ready < best->ready ||
            (e.ready == best->ready && e.line < best->line)) {
            best = &e;
        }
    }
    return best;
}

Cycle
MemorySystem::l2Lookup(Addr lineAddr, bool isWrite, Cycle when)
{
    // An outstanding miss to the same line is merged (MSHR hit).
    if (MshrEntry *e = mshrFind(lineAddr)) {
        if (e->ready > when) {
            Cycle ready = e->ready;
            if (isWrite)
                l2_.fill(lineAddr, true);
            return ready;
        }
        mshrErase(e); // fill completed; retire the entry
    }

    if (l2_.probe(lineAddr)) {
        ++l2Hits_;
        l2_.touch(lineAddr);
        if (isWrite)
            l2_.setDirty(lineAddr);
        return when + params_.l2.latency;
    }

    ++l2Misses_;
    // Retire MSHR entries whose fills have completed; the tracked
    // earliest-fill cycle skips the walk when nothing can have finished.
    if (mshrEarliest_ <= when)
        mshrRetire(when);
    // MSHR capacity: with all entries busy the request waits for the
    // earliest outstanding fill.
    Cycle start = when;
    while (mshr_.size() >= params_.mshrs) {
        MshrEntry *oldest = mshrOldest();
        start = std::max(start, oldest->ready);
        mshrErase(oldest);
    }

    Cycle ready = start + params_.l2.latency + params_.memLatency;
    mshrInsert(lineAddr, ready);
    auto ev = l2_.fill(lineAddr, isWrite);
    if (ev.evicted) {
        if (ev.evictedDirty)
            ++l2Writebacks_;
        // Inclusion: an L2 eviction must also leave the L1.
        if (l1_.invalidate(ev.evictedLine))
            ++cohInval_;
    }
    return ready;
}

Cycle
MemorySystem::reserveL1(Addr addr, u32 bytes, Cycle when)
{
    u32 portCycles = std::max<u32>(
        1, l1PortShift_
               ? (bytes + params_.l1PortBytes - 1) >> l1PortShift_
               : (bytes + params_.l1PortBytes - 1) / params_.l1PortBytes);

    // Earliest-free port.
    auto port = std::min_element(l1PortFree_.begin(), l1PortFree_.end());
    u32 bank = l1_.bank(addr);
    Cycle start = std::max({when, *port, l1BankFree_[bank]});
    *port = start + portCycles;
    l1BankFree_[bank] = start + portCycles;
    return start;
}

Cycle
MemorySystem::scalarAccess(Addr addr, u32 bytes, bool isWrite, Cycle when)
{
    vmmx_assert(bytes >= 1 && bytes <= 16, "scalar access size %u", bytes);

    Cycle start = reserveL1(addr, bytes, when);
    Addr line = l1_.lineAddr(addr);
    // An access that straddles two lines pays a second (sequential) probe;
    // media code keeps data aligned so this is rare.
    bool straddles = l1_.lineAddr(addr + bytes - 1) != line;

    Cycle done;
    if (l1_.probe(line)) {
        ++l1Hits_;
        l1_.touch(line);
        if (isWrite)
            l1_.setDirty(line);
        done = start + params_.l1.latency;
    } else {
        ++l1Misses_;
        Cycle l2Ready = l2Lookup(line, isWrite, start + params_.l1.latency);
        // Fill the L1 (inclusion holds: the line is now in both levels).
        Cycle fill =
            l2Ready + params_.l1.lineBytes / std::max<u32>(
                          1, params_.l2FillBytes);
        auto ev = l1_.fill(line, isWrite);
        if (ev.evicted && ev.evictedDirty) {
            ++l1Writebacks_;
            l2_.fill(ev.evictedLine, true);
        }
        if (isWrite)
            l1_.setDirty(line);
        done = fill;
    }

    if (straddles) {
        Addr line2 = line + l1_.lineBytes();
        if (l1_.probe(line2)) {
            ++l1Hits_;
            l1_.touch(line2);
            if (isWrite)
                l1_.setDirty(line2);
            done = std::max(done, start + params_.l1.latency + 1);
        } else {
            ++l1Misses_;
            Cycle l2Ready =
                l2Lookup(line2, isWrite, start + params_.l1.latency + 1);
            auto ev = l1_.fill(line2, isWrite);
            if (ev.evicted && ev.evictedDirty) {
                ++l1Writebacks_;
                l2_.fill(ev.evictedLine, true);
            }
            done = std::max(done, l2Ready);
        }
    }

    // Stores retire into the store buffer as soon as the line is owned.
    return done;
}

Cycle
MemorySystem::vectorAccess(Addr addr, u32 rowBytes, s32 stride, u16 vl,
                           bool isWrite, Cycle when)
{
    vmmx_assert(vl >= 1 && vl <= 16, "vector length %u", vl);
    vmmx_assert(rowBytes == 8 || rowBytes == 16, "row bytes %u", rowBytes);

    ++vecAccesses_;
    bool unit = stride == s32(rowBytes);
    if (unit)
        ++vecStride1_;
    vecElems_ += u64(vl) * (rowBytes / 8);

    // Walk the touched lines: L2 state update + coherence with the L1.
    Cycle dataReady = when;
    Addr prevLine = ~Addr(0);
    for (u16 r = 0; r < vl; ++r) {
        Addr rowAddr = addr + Addr(s64(stride) * r);
        for (Addr a = rowAddr; a < rowAddr + rowBytes;
             a += params_.l2.lineBytes) {
            Addr line = l2_.lineAddr(a);
            if (line == prevLine)
                continue;
            prevLine = line;

            // Exclusive-bit coherence: the vector unit takes ownership of
            // the line; any L1 copy is flushed (if dirty) and dropped.
            if (l1_.probe(line)) {
                if (l1_.isDirty(line)) {
                    ++cohWritebacks_;
                    l2_.fill(line, true);
                }
                l1_.invalidate(line);
                ++cohInval_;
            }

            Cycle ready = l2Lookup(line, isWrite, when);
            dataReady = std::max(dataReady, ready);
        }
        // Cover the tail of a row that spans a line boundary.
        Addr lastLine = l2_.lineAddr(rowAddr + rowBytes - 1);
        if (lastLine != prevLine) {
            if (l1_.probe(lastLine)) {
                if (l1_.isDirty(lastLine)) {
                    ++cohWritebacks_;
                    l2_.fill(lastLine, true);
                }
                l1_.invalidate(lastLine);
                ++cohInval_;
            }
            Cycle ready = l2Lookup(lastLine, isWrite, when);
            dataReady = std::max(dataReady, ready);
            prevLine = lastLine;
        }
    }

    // Transfer time through the vector port.
    u64 totalBytes = u64(rowBytes) * vl;
    Cycle xfer;
    if (unit) {
        xfer = (totalBytes + params_.vecPortBytes - 1) / params_.vecPortBytes;
    } else {
        // One 64-bit element per cycle for any other stride.
        xfer = (totalBytes + params_.vecStridedBytes - 1) /
               params_.vecStridedBytes;
    }
    xfer = std::max<Cycle>(xfer, 1);

    // The port is held only while data moves; miss latency overlaps with
    // other requests (decoupled fetch).
    Cycle xferStart = std::max(dataReady, vecPortFree_);
    Cycle done = xferStart + xfer;
    vecPortFree_ = done;
    return done;
}

} // namespace vmmx
