#include "mem/cache_array.hh"

#include "common/logging.hh"

namespace vmmx
{

CacheArray::CacheArray(const CacheParams &params)
    : params_(params)
{
    vmmx_assert(params_.lineBytes && !(params_.lineBytes &
                                       (params_.lineBytes - 1)),
                "line size must be a power of two");
    numSets_ = params_.numSets();
    vmmx_assert(numSets_ > 0, "cache too small for its line size");
    vmmx_assert((numSets_ & (numSets_ - 1)) == 0,
                "number of sets must be a power of two");
    lineMask_ = params_.lineBytes - 1;
    lineShift_ = 0;
    while ((1u << lineShift_) < params_.lineBytes)
        ++lineShift_;
    setMask_ = numSets_ - 1;
    bankMask_ = (params_.banks && !(params_.banks & (params_.banks - 1)))
                    ? params_.banks - 1
                    : 0;
    lines_.resize(size_t(numSets_) * params_.assoc);
}

const CacheArray::Line *
CacheArray::find(Addr addr) const
{
    Addr line = lineAddr(addr);
    const Line *base = &lines_[size_t(setOf(line)) * params_.assoc];
    for (u32 w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == line)
            return &base[w];
    }
    return nullptr;
}

CacheArray::Line *
CacheArray::find(Addr addr)
{
    return const_cast<Line *>(
        static_cast<const CacheArray *>(this)->find(addr));
}

bool
CacheArray::probe(Addr addr) const
{
    return find(addr) != nullptr;
}

void
CacheArray::touch(Addr addr)
{
    Line *l = find(addr);
    vmmx_assert(l, "touch of absent line");
    l->lruStamp = ++stamp_;
}

CacheArray::FillResult
CacheArray::fill(Addr addr, bool dirty)
{
    FillResult res;
    if (Line *existing = find(addr)) {
        existing->lruStamp = ++stamp_;
        existing->dirty = existing->dirty || dirty;
        return res;
    }

    Addr line = lineAddr(addr);
    Line *base = &lines_[size_t(setOf(line)) * params_.assoc];
    Line *victim = &base[0];
    for (u32 w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }

    if (victim->valid) {
        res.evicted = true;
        res.evictedLine = victim->tag;
        res.evictedDirty = victim->dirty;
    }

    victim->tag = line;
    victim->valid = true;
    victim->dirty = dirty;
    victim->lruStamp = ++stamp_;
    return res;
}

bool
CacheArray::invalidate(Addr addr)
{
    Line *l = find(addr);
    if (!l)
        return false;
    l->valid = false;
    l->dirty = false;
    return true;
}

bool
CacheArray::isDirty(Addr addr) const
{
    const Line *l = find(addr);
    return l && l->dirty;
}

void
CacheArray::setDirty(Addr addr)
{
    Line *l = find(addr);
    vmmx_assert(l, "setDirty of absent line");
    l->dirty = true;
}

void
CacheArray::clean(Addr addr)
{
    Line *l = find(addr);
    vmmx_assert(l, "clean of absent line");
    l->dirty = false;
}

void
CacheArray::flush()
{
    for (auto &l : lines_) {
        l.valid = false;
        l.dirty = false;
    }
}

} // namespace vmmx
