#include "mem/params.hh"

#include "common/logging.hh"

namespace vmmx
{

MemParams
MemParams::forWay(unsigned way, const Config &cfg)
{
    if (way != 2 && way != 4 && way != 8)
        fatal("unsupported superscalar width %u (want 2, 4 or 8)", way);

    unsigned idx = way == 2 ? 0 : way == 4 ? 1 : 2;

    MemParams p;
    p.l1.name = "l1";
    p.l1.sizeBytes = u32(cfg.getUint("mem.l1.size", 32 * 1024));
    p.l1.assoc = u32(cfg.getUint("mem.l1.assoc", 4));
    p.l1.lineBytes = u32(cfg.getUint("mem.l1.line", 32));
    p.l1.banks = u32(cfg.getUint("mem.l1.banks", 8));
    p.l1.latency = cfg.getUint("mem.l1.latency", 3);

    p.l2.name = "l2";
    p.l2.sizeBytes = u32(cfg.getUint("mem.l2.size", 512 * 1024));
    p.l2.assoc = u32(cfg.getUint("mem.l2.assoc", 2));
    p.l2.lineBytes = u32(cfg.getUint("mem.l2.line", 128));
    p.l2.banks = u32(cfg.getUint("mem.l2.banks", 2));
    p.l2.latency = cfg.getUint("mem.l2.latency", 12);

    static const unsigned l1PortsByWay[3] = {1, 2, 4};
    static const u32 fillByWay[3] = {16, 32, 64};
    static const u32 vecByWay[3] = {8, 16, 32};

    p.l1Ports = unsigned(cfg.getUint("mem.l1.ports", l1PortsByWay[idx]));
    p.l1PortBytes = u32(cfg.getUint("mem.l1.port_bytes", 8));
    p.l2FillBytes = u32(cfg.getUint("mem.l2.fill_bytes", fillByWay[idx]));
    p.vecPortBytes = u32(cfg.getUint("mem.vec.port_bytes", vecByWay[idx]));
    p.vecStridedBytes = u32(cfg.getUint("mem.vec.strided_bytes", 8));
    p.memLatency = cfg.getUint("mem.latency", 500);
    p.memPipeCycles = cfg.getUint("mem.pipe_cycles", 30);
    p.mshrs = unsigned(cfg.getUint("mem.mshrs", 8));

    return p;
}

} // namespace vmmx
