/**
 * @file
 * Functional semantics of the packed-SIMD operation repertoire.
 *
 * Every function operates on the low @p bytes (8 for the 64-bit flavours,
 * 16 for the 128-bit ones) of its VWord operands; bytes above @p bytes are
 * returned as zero.  These routines are the single source of truth for
 * both the 1-D (MMX-like) and 2-D (MOM) engines: a matrix operation is the
 * same row operation applied to vl rows.
 */

#ifndef VMMX_EMU_PACKED_HH
#define VMMX_EMU_PACKED_HH

#include "emu/vword.hh"
#include "isa/opcode.hh"

namespace vmmx::emu
{

/** Shift kinds for pshift(). */
enum class ShiftKind : u8 { Sll, Srl, Sra };

/** Wrapping element-wise add/sub. */
VWord padd(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes);
VWord psub(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes);

/** Saturating element-wise add/sub (signed or unsigned saturation). */
VWord padds(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
            bool isSigned);
VWord psubs(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
            bool isSigned);

/** Element-wise multiply keeping the low / high half of the product. */
VWord pmull(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes);
VWord pmulh(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes);

/**
 * pmaddwd: multiply signed 16-bit elements and add adjacent pairs into
 * signed 32-bit results.  Only valid for ew == W16.
 */
VWord pmadd(const VWord &a, const VWord &b, unsigned bytes);

/**
 * psadbw: sum of absolute differences of unsigned bytes; one 16-bit sum
 * per 64-bit half, placed in that half's low word.
 */
VWord psad(const VWord &a, const VWord &b, unsigned bytes);

/** Per-element sum of squared differences is derived in kernels via
 *  psub/pmadd; no dedicated opcode (matches MMX practice). */

/** Rounding average of unsigned bytes / words. */
VWord pavg(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes);

VWord pmin(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
           bool isSigned);
VWord pmax(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
           bool isSigned);

VWord pand(const VWord &a, const VWord &b, unsigned bytes);
VWord por(const VWord &a, const VWord &b, unsigned bytes);
VWord pxor(const VWord &a, const VWord &b, unsigned bytes);

/** Element-wise shift by a scalar amount. */
VWord pshift(const VWord &a, ElemWidth ew, unsigned bytes, unsigned amount,
             ShiftKind kind);

/**
 * Narrowing pack of a (low result half) and b (high result half) with
 * saturation; W16 -> bytes, D32 -> words.  @p ew is the *source* width.
 */
VWord packs(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes);
VWord packus(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes);

/** Interleave the low (or high) halves of a and b at element width ew. */
VWord unpckl(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes);
VWord unpckh(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes);

/** Broadcast the low @p ew bits of @p v into every element. */
VWord psplat(u64 v, ElemWidth ew, unsigned bytes);

/** Horizontal reduction of all elements (signed for W16/D32, else
 *  unsigned); used by the Sum() operations in the paper's examples. */
s64 psum(const VWord &a, ElemWidth ew, unsigned bytes, bool isSigned);

/** Zero every byte at offset >= bytes (canonicalise a narrow word). */
VWord truncate(const VWord &a, unsigned bytes);

} // namespace vmmx::emu

#endif // VMMX_EMU_PACKED_HH
