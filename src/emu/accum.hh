/**
 * @file
 * MOM packed accumulators.
 *
 * A packed accumulator holds one wide (64-bit) lane per 16-bit element
 * column of a register row: 4 lanes for 64-bit rows, 8 for 128-bit rows.
 * Accumulating ops (SAD, multiply-accumulate, add) run once per matrix row
 * and never overflow for realistic media workloads; a final VACCSUM
 * reduces the lanes to a scalar, and VACCPACK saturates the lanes back
 * into a packed row (used by the DCT kernels).
 *
 * This is the reduction mechanism from Corbal et al., "On the Efficiency
 * of Reductions in micro-SIMD media extensions" (PACT'01), which the paper
 * relies on for the motion-estimation and IDCT examples.
 */

#ifndef VMMX_EMU_ACCUM_HH
#define VMMX_EMU_ACCUM_HH

#include <array>

#include "emu/vword.hh"
#include "isa/opcode.hh"

namespace vmmx::emu
{

struct Accum
{
    std::array<s64, 8> lane{};

    void clear() { lane.fill(0); }
    bool operator==(const Accum &o) const = default;
};

/** Lanes active for a row of @p bytes (4 for 8B rows, 8 for 16B rows). */
inline unsigned
accLanes(unsigned bytes)
{
    return bytes / 2;
}

/** acc.lane[i] += |a.byte pairs| SAD, one lane per 16-bit column pair.
 *  Each lane accumulates the absolute differences of its two byte
 *  columns, keeping lanes independent (vectorisable per element). */
void accSad(Accum &acc, const VWord &a, const VWord &b, unsigned bytes);

/** pmaddwd-style: lane[j] += a16[j]*b16[j] for each 16-bit column. */
void accMac(Accum &acc, const VWord &a, const VWord &b, unsigned bytes);

/** lane[j] += sign-extended element j of a (W16 columns). */
void accAdd(Accum &acc, const VWord &a, unsigned bytes);

/** Reduce all active lanes to one scalar. */
s64 accSum(const Accum &acc, unsigned bytes);

/**
 * Round-to-nearest shift each lane right by @p shift and saturate to
 * signed 16-bit, producing one packed row.
 */
VWord accPack(const Accum &acc, unsigned bytes, unsigned shift);

} // namespace vmmx::emu

#endif // VMMX_EMU_ACCUM_HH
