/**
 * @file
 * VWord: one packed register row of up to 128 bits, plus the matrix
 * register type (up to 16 rows).  Element accessors are little-endian.
 */

#ifndef VMMX_EMU_VWORD_HH
#define VMMX_EMU_VWORD_HH

#include <array>
#include <cstring>

#include "common/logging.hh"
#include "common/types.hh"

namespace vmmx
{

/** One packed word; the 1-D flavours use 8 or 16 of its bytes. */
struct VWord
{
    u64 lo = 0;
    u64 hi = 0;

    bool operator==(const VWord &o) const = default;

    u8
    byte(unsigned i) const
    {
        vmmx_assert(i < 16, "byte index");
        u64 w = i < 8 ? lo : hi;
        return u8(w >> (8 * (i % 8)));
    }

    void
    setByte(unsigned i, u8 v)
    {
        vmmx_assert(i < 16, "byte index");
        u64 &w = i < 8 ? lo : hi;
        unsigned sh = 8 * (i % 8);
        w = (w & ~(u64(0xff) << sh)) | (u64(v) << sh);
    }

    u16
    word(unsigned i) const
    {
        vmmx_assert(i < 8, "word index");
        u64 w = i < 4 ? lo : hi;
        return u16(w >> (16 * (i % 4)));
    }

    void
    setWord(unsigned i, u16 v)
    {
        vmmx_assert(i < 8, "word index");
        u64 &w = i < 4 ? lo : hi;
        unsigned sh = 16 * (i % 4);
        w = (w & ~(u64(0xffff) << sh)) | (u64(v) << sh);
    }

    u32
    dword(unsigned i) const
    {
        vmmx_assert(i < 4, "dword index");
        u64 w = i < 2 ? lo : hi;
        return u32(w >> (32 * (i % 2)));
    }

    void
    setDword(unsigned i, u32 v)
    {
        vmmx_assert(i < 4, "dword index");
        u64 &w = i < 2 ? lo : hi;
        unsigned sh = 32 * (i % 2);
        w = (w & ~(u64(0xffffffff) << sh)) | (u64(v) << sh);
    }

    u64 qword(unsigned i) const { return i == 0 ? lo : hi; }

    void
    setQword(unsigned i, u64 v)
    {
        (i == 0 ? lo : hi) = v;
    }

    s16 sword(unsigned i) const { return s16(word(i)); }
    s32 sdword(unsigned i) const { return s32(dword(i)); }
};

/** Maximum matrix register depth (MOM vector length). */
constexpr unsigned maxMatrixRows = 16;

/** A matrix register: up to 16 packed rows. */
using MatrixReg = std::array<VWord, maxMatrixRows>;

} // namespace vmmx

#endif // VMMX_EMU_VWORD_HH
