#include "emu/packed.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/saturate.hh"

namespace vmmx::emu
{

namespace
{

/** Number of elements of width @p ew in the low @p bytes. */
unsigned
elems(ElemWidth ew, unsigned bytes)
{
    vmmx_assert(bytes == 8 || bytes == 16, "row must be 8 or 16 bytes");
    return bytes / elemBytes(ew);
}

s64
getElem(const VWord &w, ElemWidth ew, unsigned i, bool isSigned)
{
    switch (ew) {
      case ElemWidth::B8:
        return isSigned ? s64(s8(w.byte(i))) : s64(w.byte(i));
      case ElemWidth::W16:
        return isSigned ? s64(w.sword(i)) : s64(w.word(i));
      case ElemWidth::D32:
        return isSigned ? s64(w.sdword(i)) : s64(w.dword(i));
      case ElemWidth::Q64:
        return s64(w.qword(i));
    }
    panic("bad element width");
}

void
setElem(VWord &w, ElemWidth ew, unsigned i, s64 v)
{
    switch (ew) {
      case ElemWidth::B8: w.setByte(i, u8(v)); return;
      case ElemWidth::W16: w.setWord(i, u16(v)); return;
      case ElemWidth::D32: w.setDword(i, u32(v)); return;
      case ElemWidth::Q64: w.setQword(i, u64(v)); return;
    }
    panic("bad element width");
}

s64
saturate(s64 v, ElemWidth ew, bool isSigned)
{
    switch (ew) {
      case ElemWidth::B8:
        return isSigned ? clampTo<s8>(v) : s64(u8(std::clamp<s64>(v, 0, 255)));
      case ElemWidth::W16:
        return isSigned ? clampTo<s16>(v)
                        : s64(u16(std::clamp<s64>(v, 0, 65535)));
      case ElemWidth::D32:
        return isSigned ? clampTo<s32>(v)
                        : s64(u32(std::clamp<s64>(v, 0, 0xffffffffll)));
      case ElemWidth::Q64:
        return v;
    }
    panic("bad element width");
}

template <typename Fn>
VWord
mapElems(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
         bool isSigned, Fn fn)
{
    VWord out;
    unsigned n = elems(ew, bytes);
    for (unsigned i = 0; i < n; ++i) {
        s64 x = getElem(a, ew, i, isSigned);
        s64 y = getElem(b, ew, i, isSigned);
        setElem(out, ew, i, fn(x, y));
    }
    return out;
}

} // namespace

VWord
padd(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return mapElems(a, b, ew, bytes, false,
                    [](s64 x, s64 y) { return x + y; });
}

VWord
psub(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return mapElems(a, b, ew, bytes, false,
                    [](s64 x, s64 y) { return x - y; });
}

VWord
padds(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
      bool isSigned)
{
    return mapElems(a, b, ew, bytes, isSigned, [=](s64 x, s64 y) {
        return saturate(x + y, ew, isSigned);
    });
}

VWord
psubs(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
      bool isSigned)
{
    return mapElems(a, b, ew, bytes, isSigned, [=](s64 x, s64 y) {
        return saturate(x - y, ew, isSigned);
    });
}

VWord
pmull(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return mapElems(a, b, ew, bytes, true,
                    [](s64 x, s64 y) { return x * y; });
}

VWord
pmulh(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    unsigned sh = 8 * elemBytes(ew);
    return mapElems(a, b, ew, bytes, true, [=](s64 x, s64 y) {
        return asr64(x * y, sh);
    });
}

VWord
pmadd(const VWord &a, const VWord &b, unsigned bytes)
{
    VWord out;
    unsigned pairs = elems(ElemWidth::W16, bytes) / 2;
    for (unsigned j = 0; j < pairs; ++j) {
        s64 p = s64(a.sword(2 * j)) * b.sword(2 * j) +
                s64(a.sword(2 * j + 1)) * b.sword(2 * j + 1);
        out.setDword(j, u32(s32(p)));
    }
    return out;
}

VWord
psad(const VWord &a, const VWord &b, unsigned bytes)
{
    VWord out;
    for (unsigned half = 0; half < bytes / 8; ++half) {
        u32 sum = 0;
        for (unsigned i = 0; i < 8; ++i) {
            unsigned idx = half * 8 + i;
            sum += absDiffU8(a.byte(idx), b.byte(idx));
        }
        out.setQword(half, sum);
    }
    return out;
}

VWord
pavg(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return mapElems(a, b, ew, bytes, false,
                    [](s64 x, s64 y) { return (x + y + 1) >> 1; });
}

VWord
pmin(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
     bool isSigned)
{
    return mapElems(a, b, ew, bytes, isSigned,
                    [](s64 x, s64 y) { return std::min(x, y); });
}

VWord
pmax(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
     bool isSigned)
{
    return mapElems(a, b, ew, bytes, isSigned,
                    [](s64 x, s64 y) { return std::max(x, y); });
}

VWord
pand(const VWord &a, const VWord &b, unsigned bytes)
{
    return truncate({a.lo & b.lo, a.hi & b.hi}, bytes);
}

VWord
por(const VWord &a, const VWord &b, unsigned bytes)
{
    return truncate({a.lo | b.lo, a.hi | b.hi}, bytes);
}

VWord
pxor(const VWord &a, const VWord &b, unsigned bytes)
{
    return truncate({a.lo ^ b.lo, a.hi ^ b.hi}, bytes);
}

VWord
pshift(const VWord &a, ElemWidth ew, unsigned bytes, unsigned amount,
       ShiftKind kind)
{
    VWord out;
    unsigned n = elems(ew, bytes);
    unsigned width = 8 * elemBytes(ew);
    for (unsigned i = 0; i < n; ++i) {
        if (amount >= width && kind != ShiftKind::Sra) {
            setElem(out, ew, i, 0);
            continue;
        }
        unsigned sh = std::min(amount, width - 1);
        s64 x;
        switch (kind) {
          case ShiftKind::Sll:
            x = getElem(a, ew, i, false) << amount;
            break;
          case ShiftKind::Srl:
            x = s64(u64(getElem(a, ew, i, false)) >> amount);
            break;
          case ShiftKind::Sra:
            x = asr64(getElem(a, ew, i, true), sh);
            break;
          default:
            panic("bad shift kind");
        }
        setElem(out, ew, i, x);
    }
    return out;
}

namespace
{

VWord
packCommon(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
           bool isSigned)
{
    vmmx_assert(ew == ElemWidth::W16 || ew == ElemWidth::D32,
                "pack source width must be W16 or D32");
    ElemWidth dw = ew == ElemWidth::W16 ? ElemWidth::B8 : ElemWidth::W16;
    unsigned n = elems(ew, bytes);
    VWord out;
    for (unsigned i = 0; i < n; ++i) {
        setElem(out, dw, i, saturate(getElem(a, ew, i, true), dw, isSigned));
        setElem(out, dw, n + i,
                saturate(getElem(b, ew, i, true), dw, isSigned));
    }
    return out;
}

} // namespace

VWord
packs(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return packCommon(a, b, ew, bytes, true);
}

VWord
packus(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return packCommon(a, b, ew, bytes, false);
}

VWord
unpckl(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    unsigned n = elems(ew, bytes);
    VWord out;
    for (unsigned i = 0; i < n / 2; ++i) {
        setElem(out, ew, 2 * i, getElem(a, ew, i, false));
        setElem(out, ew, 2 * i + 1, getElem(b, ew, i, false));
    }
    return out;
}

VWord
unpckh(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    unsigned n = elems(ew, bytes);
    VWord out;
    for (unsigned i = 0; i < n / 2; ++i) {
        setElem(out, ew, 2 * i, getElem(a, ew, n / 2 + i, false));
        setElem(out, ew, 2 * i + 1, getElem(b, ew, n / 2 + i, false));
    }
    return out;
}

VWord
psplat(u64 v, ElemWidth ew, unsigned bytes)
{
    VWord out;
    unsigned n = elems(ew, bytes);
    for (unsigned i = 0; i < n; ++i)
        setElem(out, ew, i, s64(v));
    return out;
}

s64
psum(const VWord &a, ElemWidth ew, unsigned bytes, bool isSigned)
{
    s64 sum = 0;
    unsigned n = elems(ew, bytes);
    for (unsigned i = 0; i < n; ++i)
        sum += getElem(a, ew, i, isSigned);
    return sum;
}

VWord
truncate(const VWord &a, unsigned bytes)
{
    vmmx_assert(bytes == 8 || bytes == 16, "row must be 8 or 16 bytes");
    if (bytes == 8)
        return {a.lo, 0};
    return a;
}

} // namespace vmmx::emu
