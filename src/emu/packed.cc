#include "emu/packed.hh"

#include <algorithm>
#include <type_traits>

#include "common/logging.hh"
#include "common/saturate.hh"

namespace vmmx::emu
{

namespace
{

/** Number of elements of width @p ew in the low @p bytes. */
unsigned
elems(ElemWidth ew, unsigned bytes)
{
    vmmx_assert(bytes == 8 || bytes == 16, "row must be 8 or 16 bytes");
    return bytes / elemBytes(ew);
}

/**
 * Width-specialized lane access.  The per-element switch on ElemWidth
 * (and the signedness branch) is hoisted out of the element loops: each
 * operation dispatches once and then runs a loop where lane extraction,
 * insertion and saturation are compile-time specialised for the element
 * type U (u8/u16/u32/u64).
 */
template <typename U>
inline u64
rawLane(const VWord &w, unsigned i)
{
    if constexpr (sizeof(U) == 8)
        return w.qword(i);
    constexpr unsigned perQ = 8 / sizeof(U);
    constexpr unsigned bits = 8 * sizeof(U);
    u64 q = i < perQ ? w.lo : w.hi;
    return U(q >> (bits * (i % perQ)));
}

template <typename U>
inline void
setLane(VWord &w, unsigned i, u64 v)
{
    if constexpr (sizeof(U) == 8) {
        w.setQword(i, v);
        return;
    }
    constexpr unsigned perQ = 8 / sizeof(U);
    constexpr unsigned bits = 8 * sizeof(U);
    u64 &q = i < perQ ? w.lo : w.hi;
    unsigned sh = bits * (i % perQ);
    q = (q & ~(u64(U(~U(0))) << sh)) | (u64(U(v)) << sh);
}

template <typename U, bool Signed>
inline s64
lane(const VWord &w, unsigned i)
{
    using S = std::make_signed_t<U>;
    u64 raw = rawLane<U>(w, i);
    if constexpr (sizeof(U) == 8)
        return s64(raw); // 64-bit lanes carry the same bits either way
    else if constexpr (Signed)
        return s64(S(U(raw)));
    else
        return s64(raw);
}

/** Tag carrying the lane type through generic per-element lambdas. */
template <typename U, bool Signed>
struct LaneTag
{
};

template <typename U, bool Signed>
inline s64
saturateT(s64 v)
{
    if constexpr (sizeof(U) == 8)
        return v;
    else if constexpr (Signed)
        return clampTo<std::make_signed_t<U>>(v);
    else
        return s64(U(std::clamp<s64>(v, 0, s64(U(~U(0))))));
}

template <typename U, bool Signed>
inline s64
saturateT(LaneTag<U, Signed>, s64 v)
{
    return saturateT<U, Signed>(v);
}

template <typename U, bool Signed, typename Fn>
VWord
mapT(const VWord &a, const VWord &b, unsigned bytes, Fn fn)
{
    VWord out;
    unsigned n = bytes / unsigned(sizeof(U));
    for (unsigned i = 0; i < n; ++i) {
        s64 x = lane<U, Signed>(a, i);
        s64 y = lane<U, Signed>(b, i);
        setLane<U>(out, i, u64(fn(x, y, LaneTag<U, Signed>{})));
    }
    return out;
}

/**
 * Run @p fn once over the element loop specialised for (ew, isSigned).
 * @p fn is called per element as fn(x, y, LaneTag<U, Signed>{}).
 */
template <typename Fn>
VWord
mapElems(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
         bool isSigned, Fn fn)
{
    vmmx_assert(bytes == 8 || bytes == 16, "row must be 8 or 16 bytes");
    switch (ew) {
      case ElemWidth::B8:
        return isSigned ? mapT<u8, true>(a, b, bytes, fn)
                        : mapT<u8, false>(a, b, bytes, fn);
      case ElemWidth::W16:
        return isSigned ? mapT<u16, true>(a, b, bytes, fn)
                        : mapT<u16, false>(a, b, bytes, fn);
      case ElemWidth::D32:
        return isSigned ? mapT<u32, true>(a, b, bytes, fn)
                        : mapT<u32, false>(a, b, bytes, fn);
      case ElemWidth::Q64:
        return isSigned ? mapT<u64, true>(a, b, bytes, fn)
                        : mapT<u64, false>(a, b, bytes, fn);
    }
    panic("bad element width");
}

/** Dispatch a width-templated functor once: fn(LaneTag<U, false>{}). */
template <typename Fn>
VWord
withWidth(ElemWidth ew, Fn fn)
{
    switch (ew) {
      case ElemWidth::B8: return fn(LaneTag<u8, false>{});
      case ElemWidth::W16: return fn(LaneTag<u16, false>{});
      case ElemWidth::D32: return fn(LaneTag<u32, false>{});
      case ElemWidth::Q64: return fn(LaneTag<u64, false>{});
    }
    panic("bad element width");
}

} // namespace

VWord
padd(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return mapElems(a, b, ew, bytes, false,
                    [](s64 x, s64 y, auto) { return x + y; });
}

VWord
psub(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return mapElems(a, b, ew, bytes, false,
                    [](s64 x, s64 y, auto) { return x - y; });
}

VWord
padds(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
      bool isSigned)
{
    return mapElems(a, b, ew, bytes, isSigned, [](s64 x, s64 y, auto tag) {
        return saturateT(tag, x + y);
    });
}

VWord
psubs(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
      bool isSigned)
{
    return mapElems(a, b, ew, bytes, isSigned, [](s64 x, s64 y, auto tag) {
        return saturateT(tag, x - y);
    });
}

VWord
pmull(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return mapElems(a, b, ew, bytes, true,
                    [](s64 x, s64 y, auto) { return x * y; });
}

VWord
pmulh(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    unsigned sh = 8 * elemBytes(ew);
    return mapElems(a, b, ew, bytes, true, [=](s64 x, s64 y, auto) {
        return asr64(x * y, sh);
    });
}

VWord
pmadd(const VWord &a, const VWord &b, unsigned bytes)
{
    VWord out;
    unsigned pairs = elems(ElemWidth::W16, bytes) / 2;
    for (unsigned j = 0; j < pairs; ++j) {
        s64 p = s64(a.sword(2 * j)) * b.sword(2 * j) +
                s64(a.sword(2 * j + 1)) * b.sword(2 * j + 1);
        out.setDword(j, u32(s32(p)));
    }
    return out;
}

VWord
psad(const VWord &a, const VWord &b, unsigned bytes)
{
    VWord out;
    for (unsigned half = 0; half < bytes / 8; ++half) {
        u32 sum = 0;
        for (unsigned i = 0; i < 8; ++i) {
            unsigned idx = half * 8 + i;
            sum += absDiffU8(a.byte(idx), b.byte(idx));
        }
        out.setQword(half, sum);
    }
    return out;
}

VWord
pavg(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return mapElems(a, b, ew, bytes, false,
                    [](s64 x, s64 y, auto) { return (x + y + 1) >> 1; });
}

VWord
pmin(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
     bool isSigned)
{
    return mapElems(a, b, ew, bytes, isSigned,
                    [](s64 x, s64 y, auto) { return std::min(x, y); });
}

VWord
pmax(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
     bool isSigned)
{
    return mapElems(a, b, ew, bytes, isSigned,
                    [](s64 x, s64 y, auto) { return std::max(x, y); });
}

VWord
pand(const VWord &a, const VWord &b, unsigned bytes)
{
    return truncate({a.lo & b.lo, a.hi & b.hi}, bytes);
}

VWord
por(const VWord &a, const VWord &b, unsigned bytes)
{
    return truncate({a.lo | b.lo, a.hi | b.hi}, bytes);
}

VWord
pxor(const VWord &a, const VWord &b, unsigned bytes)
{
    return truncate({a.lo ^ b.lo, a.hi ^ b.hi}, bytes);
}

VWord
pshift(const VWord &a, ElemWidth ew, unsigned bytes, unsigned amount,
       ShiftKind kind)
{
    // Shift kind and element width are resolved once; the loops are
    // width-specialised.
    return withWidth(ew, [&]<typename U, bool S>(LaneTag<U, S>) {
        constexpr unsigned width = 8 * unsigned(sizeof(U));
        unsigned n = bytes / unsigned(sizeof(U));
        VWord out;
        if (amount >= width && kind != ShiftKind::Sra)
            return out; // every lane shifts to zero
        unsigned sh = std::min(amount, width - 1);
        switch (kind) {
          case ShiftKind::Sll:
            for (unsigned i = 0; i < n; ++i)
                setLane<U>(out, i, rawLane<U>(a, i) << amount);
            break;
          case ShiftKind::Srl:
            for (unsigned i = 0; i < n; ++i)
                setLane<U>(out, i, rawLane<U>(a, i) >> amount);
            break;
          case ShiftKind::Sra:
            for (unsigned i = 0; i < n; ++i)
                setLane<U>(out, i, u64(asr64(lane<U, true>(a, i), sh)));
            break;
          default:
            panic("bad shift kind");
        }
        return out;
    });
}

namespace
{

template <typename Src, typename Dst, bool Signed>
VWord
packT(const VWord &a, const VWord &b, unsigned bytes)
{
    unsigned n = bytes / unsigned(sizeof(Src));
    VWord out;
    for (unsigned i = 0; i < n; ++i) {
        setLane<Dst>(out, i,
                     u64(saturateT<Dst, Signed>(lane<Src, true>(a, i))));
        setLane<Dst>(out, n + i,
                     u64(saturateT<Dst, Signed>(lane<Src, true>(b, i))));
    }
    return out;
}

VWord
packCommon(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes,
           bool isSigned)
{
    vmmx_assert(ew == ElemWidth::W16 || ew == ElemWidth::D32,
                "pack source width must be W16 or D32");
    if (ew == ElemWidth::W16) {
        return isSigned ? packT<u16, u8, true>(a, b, bytes)
                        : packT<u16, u8, false>(a, b, bytes);
    }
    return isSigned ? packT<u32, u16, true>(a, b, bytes)
                    : packT<u32, u16, false>(a, b, bytes);
}

} // namespace

VWord
packs(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return packCommon(a, b, ew, bytes, true);
}

VWord
packus(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return packCommon(a, b, ew, bytes, false);
}

VWord
unpckl(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return withWidth(ew, [&]<typename U, bool S>(LaneTag<U, S>) {
        unsigned n = bytes / unsigned(sizeof(U));
        VWord out;
        for (unsigned i = 0; i < n / 2; ++i) {
            setLane<U>(out, 2 * i, rawLane<U>(a, i));
            setLane<U>(out, 2 * i + 1, rawLane<U>(b, i));
        }
        return out;
    });
}

VWord
unpckh(const VWord &a, const VWord &b, ElemWidth ew, unsigned bytes)
{
    return withWidth(ew, [&]<typename U, bool S>(LaneTag<U, S>) {
        unsigned n = bytes / unsigned(sizeof(U));
        VWord out;
        for (unsigned i = 0; i < n / 2; ++i) {
            setLane<U>(out, 2 * i, rawLane<U>(a, n / 2 + i));
            setLane<U>(out, 2 * i + 1, rawLane<U>(b, n / 2 + i));
        }
        return out;
    });
}

VWord
psplat(u64 v, ElemWidth ew, unsigned bytes)
{
    return withWidth(ew, [&]<typename U, bool S>(LaneTag<U, S>) {
        unsigned n = bytes / unsigned(sizeof(U));
        VWord out;
        for (unsigned i = 0; i < n; ++i)
            setLane<U>(out, i, v);
        return out;
    });
}

s64
psum(const VWord &a, ElemWidth ew, unsigned bytes, bool isSigned)
{
    auto sumT = [&]<typename U, bool S>(LaneTag<U, S>) {
        s64 sum = 0;
        unsigned n = bytes / unsigned(sizeof(U));
        for (unsigned i = 0; i < n; ++i)
            sum += lane<U, S>(a, i);
        return sum;
    };
    switch (ew) {
      case ElemWidth::B8:
        return isSigned ? sumT(LaneTag<u8, true>{}) : sumT(LaneTag<u8, false>{});
      case ElemWidth::W16:
        return isSigned ? sumT(LaneTag<u16, true>{})
                        : sumT(LaneTag<u16, false>{});
      case ElemWidth::D32:
        return isSigned ? sumT(LaneTag<u32, true>{})
                        : sumT(LaneTag<u32, false>{});
      case ElemWidth::Q64:
        return sumT(LaneTag<u64, false>{});
    }
    panic("bad element width");
}

VWord
truncate(const VWord &a, unsigned bytes)
{
    vmmx_assert(bytes == 8 || bytes == 16, "row must be 8 or 16 bytes");
    if (bytes == 8)
        return {a.lo, 0};
    return a;
}

} // namespace vmmx::emu
