#include "emu/accum.hh"

#include "common/saturate.hh"

namespace vmmx::emu
{

void
accSad(Accum &acc, const VWord &a, const VWord &b, unsigned bytes)
{
    unsigned lanes = accLanes(bytes);
    for (unsigned j = 0; j < lanes; ++j) {
        acc.lane[j] += absDiffU8(a.byte(2 * j), b.byte(2 * j)) +
                       absDiffU8(a.byte(2 * j + 1), b.byte(2 * j + 1));
    }
}

void
accMac(Accum &acc, const VWord &a, const VWord &b, unsigned bytes)
{
    unsigned lanes = accLanes(bytes);
    for (unsigned j = 0; j < lanes; ++j)
        acc.lane[j] += s64(a.sword(j)) * b.sword(j);
}

void
accAdd(Accum &acc, const VWord &a, unsigned bytes)
{
    unsigned lanes = accLanes(bytes);
    for (unsigned j = 0; j < lanes; ++j)
        acc.lane[j] += a.sword(j);
}

s64
accSum(const Accum &acc, unsigned bytes)
{
    s64 sum = 0;
    unsigned lanes = accLanes(bytes);
    for (unsigned j = 0; j < lanes; ++j)
        sum += acc.lane[j];
    return sum;
}

VWord
accPack(const Accum &acc, unsigned bytes, unsigned shift)
{
    VWord out;
    unsigned lanes = accLanes(bytes);
    for (unsigned j = 0; j < lanes; ++j) {
        s64 v = acc.lane[j];
        if (shift > 0)
            v = asr64(v + (s64(1) << (shift - 1)), shift);
        out.setWord(j, u16(clampTo<s16>(v)));
    }
    return out;
}

} // namespace vmmx::emu
