#include "common/telemetry.hh"

#include <algorithm>
#include <cinttypes>
#include <ctime>
#include <iomanip>
#include <sstream>

#include <unistd.h>

#include "common/env.hh"
#include "common/stats.hh"

namespace vmmx::telemetry
{

namespace detail
{
/** $VMMX_TELEMETRY seeds the flag before main(); tools override it. */
std::atomic<bool> gEnabled{env::flag("VMMX_TELEMETRY", false)};
} // namespace detail

namespace
{

/** Per-thread ordinal for span tids: small, stable within a process,
 *  and deterministic enough for a readable timeline (thread 0 is the
 *  first thread that recorded a span). */
u32
threadOrdinal()
{
    static std::atomic<u32> next{0};
    thread_local u32 tid = next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

std::atomic<ProgressMode> gProgressMode{
    env::flag("VMMX_PROGRESS", false) ? ProgressMode::Stderr
                                      : ProgressMode::Off};
std::FILE *gProgressStream = nullptr; // null = stderr

} // namespace

void
setEnabled(bool on)
{
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

u64
nowNs()
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return u64(ts.tv_sec) * 1000000000ull + u64(ts.tv_nsec);
}

const char *
sanitizerName()
{
#ifdef VMMX_SANITIZE_NAME
    if (VMMX_SANITIZE_NAME[0] != '\0')
        return VMMX_SANITIZE_NAME;
#endif
    return "none";
}

// ---- span tracing --------------------------------------------------------

Tracer &
Tracer::instance()
{
    static Tracer t;
    return t;
}

void
Tracer::record(SpanRecord &&rec)
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(std::move(rec));
}

std::vector<SpanRecord>
Tracer::drain()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SpanRecord> out;
    out.swap(spans_);
    return out;
}

size_t
Tracer::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
    processNames_.clear();
}

void
Tracer::setProcessName(u64 pid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    processNames_[pid] = name;
}

void
Tracer::writeTraceEvents(std::ostream &os) const
{
    std::vector<SpanRecord> spans;
    std::map<u64, std::string> names;
    {
        std::lock_guard<std::mutex> lock(mu_);
        spans = spans_;
        names = processNames_;
    }
    // Deterministic layout: grouped by pid, time-ordered within, with
    // timestamps rebased to the earliest span so the timeline starts
    // near zero.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanRecord &a, const SpanRecord &b) {
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         return a.startNs < b.startNs;
                     });
    u64 base = ~u64(0);
    for (const SpanRecord &s : spans)
        base = std::min(base, s.startNs);
    if (base == ~u64(0))
        base = 0;

    os << "[\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (const auto &[pid, name] : names) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\"" << jsonEscape(name)
           << "\"}}";
    }
    os << std::fixed << std::setprecision(3);
    for (const SpanRecord &s : spans) {
        sep();
        os << "{\"name\":\"" << jsonEscape(s.name)
           << "\",\"cat\":\"vmmx\",\"ph\":\"X\",\"ts\":"
           << double(s.startNs - base) / 1000.0
           << ",\"dur\":" << double(s.durNs) / 1000.0
           << ",\"pid\":" << s.pid << ",\"tid\":" << s.tid << ",\"args\":{";
        if (!s.detail.empty())
            os << "\"detail\":\"" << jsonEscape(s.detail) << "\",";
        os << "\"workerId\":" << s.workerId << "}}";
    }
    os << "\n]\n";
}

void
Span::begin(const char *name, std::string &&detail)
{
    live_ = true;
    rec_.name = name;
    rec_.detail = std::move(detail);
    rec_.pid = u64(::getpid());
    rec_.tid = threadOrdinal();
    rec_.startNs = nowNs();
}

void
Span::end()
{
    rec_.durNs = nowNs() - rec_.startNs;
    Tracer::instance().record(std::move(rec_));
}

// ---- metrics registry ----------------------------------------------------

Registry &
Registry::instance()
{
    static Registry r;
    return r;
}

void
Registry::addCounter(const std::string &name, u64 delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
}

void
Registry::setGauge(const std::string &name, u64 value)
{
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[name] = value;
}

void
Registry::addGroup(const StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (std::find(groups_.begin(), groups_.end(), group) == groups_.end())
        groups_.push_back(group);
}

void
Registry::removeGroup(const StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mu_);
    groups_.erase(std::remove(groups_.begin(), groups_.end(), group),
                  groups_.end());
}

void
Registry::addUnit(UnitRecord &&rec)
{
    std::lock_guard<std::mutex> lock(mu_);
    units_.push_back(std::move(rec));
}

std::vector<UnitRecord>
Registry::drainUnits()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<UnitRecord> out;
    out.swap(units_);
    return out;
}

std::vector<UnitRecord>
Registry::units() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return units_;
}

void
Registry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    groups_.clear();
    units_.clear();
}

MetricsSnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    snap.values = counters_;
    for (const auto &[name, v] : gauges_)
        snap.values[name] = v;
    // Federated StatGroups flatten into "group.stat" names; histograms
    // contribute their sample count and sum (the mean is derivable).
    for (const StatGroup *g : groups_) {
        for (const Counter *c : g->counters())
            snap.values[g->name() + "." + c->name()] = c->value();
        for (const Histogram *h : g->histograms()) {
            snap.values[g->name() + "." + h->name() + ".samples"] =
                h->samples();
            snap.values[g->name() + "." + h->name() + ".sum"] = h->sum();
        }
    }
    return snap;
}

MetricsSnapshot
Registry::delta(const MetricsSnapshot &before, const MetricsSnapshot &after)
{
    MetricsSnapshot d;
    for (const auto &[name, v] : after.values) {
        auto it = before.values.find(name);
        u64 prev = it == before.values.end() ? 0 : it->second;
        d.values[name] = v >= prev ? v - prev : 0;
    }
    return d;
}

void
Registry::dumpText(std::ostream &os) const
{
    MetricsSnapshot snap = snapshot();
    for (const auto &[name, v] : snap.values)
        os << name << ' ' << v << '\n';
    std::vector<UnitRecord> us = units();
    std::ostringstream num;
    num << std::fixed << std::setprecision(1);
    for (const UnitRecord &u : us) {
        num.str("");
        num << u.pointsPerSec();
        os << "unit " << u.label << " points " << u.points << " records "
           << u.records << " wallNs " << u.wallNs << " points/s "
           << num.str();
        if (!u.simd.empty())
            os << " simd " << u.simd;
        os << '\n';
    }
}

void
Registry::dumpJson(std::ostream &os) const
{
    MetricsSnapshot snap = snapshot();
    // Nest by the first dotted component so consumers address sections
    // ("repo", "dist", ...) directly; undotted names become top-level
    // scalars.  std::map keeps every ordering deterministic.
    std::map<std::string, std::map<std::string, u64>> sections;
    std::map<std::string, u64> toplevel;
    for (const auto &[name, v] : snap.values) {
        size_t dot = name.find('.');
        if (dot == std::string::npos || dot == 0 ||
            dot + 1 == name.size()) {
            toplevel[name] = v;
        } else {
            sections[name.substr(0, dot)][name.substr(dot + 1)] = v;
        }
    }

    os << "{\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (const auto &[name, v] : toplevel) {
        sep();
        os << "  \"" << jsonEscape(name) << "\": " << v;
    }
    for (const auto &[section, values] : sections) {
        sep();
        os << "  \"" << jsonEscape(section) << "\": {";
        bool f2 = true;
        for (const auto &[name, v] : values) {
            os << (f2 ? "\n" : ",\n") << "    \"" << jsonEscape(name)
               << "\": " << v;
            f2 = false;
        }
        os << "\n  }";
    }
    sep();
    os << "  \"host\": {\n    \"sanitizer\": \"" << jsonEscape(sanitizerName())
       << "\"\n  }";
    sep();
    os << "  \"units\": [";
    std::vector<UnitRecord> us = units();
    std::ostringstream pps;
    pps << std::fixed << std::setprecision(1);
    for (size_t i = 0; i < us.size(); ++i) {
        const UnitRecord &u = us[i];
        pps.str("");
        pps << u.pointsPerSec();
        os << (i ? ",\n" : "\n") << "    {\"traceHash\":" << u.traceHash
           << ",\"label\":\"" << jsonEscape(u.label)
           << "\",\"points\":" << u.points << ",\"records\":" << u.records
           << ",\"wallNs\":" << u.wallNs << ",\"pointsPerSec\":"
           << pps.str() << ",\"workerId\":" << u.workerId
           << ",\"simd\":\"" << jsonEscape(u.simd) << "\"}";
    }
    os << (us.empty() ? "]" : "\n  ]") << "\n}\n";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (u8(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", unsigned(u8(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

// ---- live progress -------------------------------------------------------

void
setProgress(ProgressMode mode, std::FILE *stream)
{
    gProgressStream = stream;
    gProgressMode.store(mode, std::memory_order_relaxed);
}

ProgressMode
progressMode()
{
    return gProgressMode.load(std::memory_order_relaxed);
}

Progress::Progress(std::string what, u64 total)
    : what_(std::move(what)), total_(total)
{
    if (progressMode() != ProgressMode::Off)
        startNs_ = nowNs();
}

void
Progress::update(u64 done, const std::string &extra)
{
    if (progressMode() == ProgressMode::Off)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    constexpr u64 minGapNs = 200'000'000; // at most ~5 lines a second
    u64 now = nowNs();
    if (lastEmitNs_ != 0 && now - lastEmitNs_ < minGapNs)
        return;
    lastEmitNs_ = now;
    emit(done, extra, false);
}

void
Progress::finish(u64 done)
{
    if (progressMode() == ProgressMode::Off)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    emit(done, std::string(), true);
}

void
Progress::emit(u64 done, const std::string &extra, bool final)
{
    std::FILE *out = gProgressStream ? gProgressStream : stderr;
    double elapsedS = double(nowNs() - startNs_) / 1e9;
    double rate = elapsedS > 0 ? double(done) / elapsedS : 0.0;
    double etaS =
        (rate > 0 && total_ > done) ? double(total_ - done) / rate : 0.0;
    if (progressMode() == ProgressMode::Jsonl) {
        std::fprintf(out,
                     "{\"type\":\"%s\",\"what\":\"%s\",\"done\":%" PRIu64
                     ",\"total\":%" PRIu64
                     ",\"elapsedS\":%.3f,\"pointsPerSec\":%.1f,"
                     "\"etaS\":%.1f%s%s%s}\n",
                     final ? "done" : "progress",
                     jsonEscape(what_).c_str(), done, total_, elapsedS,
                     rate, etaS, extra.empty() ? "" : ",\"extra\":\"",
                     extra.empty() ? "" : jsonEscape(extra).c_str(),
                     extra.empty() ? "" : "\"");
    } else {
        double pct = total_ ? 100.0 * double(done) / double(total_) : 100.0;
        std::fprintf(out,
                     "progress: %s %" PRIu64 "/%" PRIu64
                     " (%.1f%%) %.1f points/s eta %.1fs%s%s%s\n",
                     what_.c_str(), done, total_, pct, rate, etaS,
                     extra.empty() ? "" : " [", extra.c_str(),
                     extra.empty() ? "" : "]");
    }
    std::fflush(out);
}

} // namespace vmmx::telemetry
