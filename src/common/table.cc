#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace vmmx
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        panic("table row arity %zu != header arity %zu", row.size(),
              header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto line = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c ? "  " : "");
            os << cells[c];
            os << std::string(width[c] - cells[c].size(), ' ');
        }
        os << '\n';
    };

    line(header_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        line(row);
}

} // namespace vmmx
