#include "common/config.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace vmmx
{

Config::Config(const std::vector<std::string> &assignments)
{
    for (const auto &a : assignments) {
        auto eq = a.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("malformed config assignment '%s' (want key=value)",
                  a.c_str());
        set(a.substr(0, eq), a.substr(eq + 1));
    }
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, s64 value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
Config::getString(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        fatal("missing required config key '%s'", key.c_str());
    return it->second;
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
}

s64
Config::getInt(const std::string &key) const
{
    const std::string v = getString(key);
    char *end = nullptr;
    s64 r = std::strtoll(v.c_str(), &end, 0);
    if (end == v.c_str() || *end != '\0')
        fatal("config key '%s'='%s' is not an integer", key.c_str(),
              v.c_str());
    return r;
}

s64
Config::getInt(const std::string &key, s64 dflt) const
{
    return has(key) ? getInt(key) : dflt;
}

u64
Config::getUint(const std::string &key) const
{
    s64 v = getInt(key);
    if (v < 0)
        fatal("config key '%s' must be non-negative, got %lld", key.c_str(),
              static_cast<long long>(v));
    return static_cast<u64>(v);
}

u64
Config::getUint(const std::string &key, u64 dflt) const
{
    return has(key) ? getUint(key) : dflt;
}

double
Config::getDouble(const std::string &key) const
{
    const std::string v = getString(key);
    char *end = nullptr;
    double r = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        fatal("config key '%s'='%s' is not a number", key.c_str(), v.c_str());
    return r;
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    return has(key) ? getDouble(key) : dflt;
}

bool
Config::getBool(const std::string &key) const
{
    const std::string v = getString(key);
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    fatal("config key '%s'='%s' is not a boolean", key.c_str(), v.c_str());
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    return has(key) ? getBool(key) : dflt;
}

void
Config::merge(const Config &other)
{
    for (const auto &kv : other.values_)
        values_[kv.first] = kv.second;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

} // namespace vmmx
