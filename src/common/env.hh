/**
 * @file
 * The one place environment variables are parsed.
 *
 * Every VMMX_* knob used to have its own ad-hoc parser (the sweep
 * engine's flag reader, the trace repository's budget reader, the CLI
 * front ends); they all live here now so a flag spelled "off" or a
 * budget spelled "64M" means the same thing to every consumer, and so
 * garbage input is diagnosed once, the same way, everywhere.
 *
 * Policy: an unset or empty variable always means "use the built-in
 * default"; an unparsable value warns once at the call site and falls
 * back to the default rather than aborting, because environment
 * variables are ambient state a user may not even know is set.
 */

#ifndef VMMX_COMMON_ENV_HH
#define VMMX_COMMON_ENV_HH

#include <string>

#include "common/types.hh"

namespace vmmx::env
{

/**
 * Parse an on/off flag: "1"/"on"/"true"/"yes" and "0"/"off"/"false"/
 * "no" (case-sensitive, as documented everywhere the knobs appear).
 * @return false when @p text is null, empty, or none of the above.
 */
bool parseFlag(const char *text, bool &value);

/** Flag from the environment; unset/empty = @p dflt, junk warns and
 *  falls back to @p dflt. */
bool flag(const char *var, bool dflt);

/**
 * Parse a byte size: a non-negative integer with an optional k/K, m/M
 * or g/G binary suffix ("64M" = 64 MiB, "4096" = 4096 bytes).  A
 * leading '-' is rejected rather than wrapped to a huge value.
 * @return false on junk; @p bytes is untouched then.
 */
bool parseByteSize(const char *text, u64 &bytes);

/** Byte size from the environment; unset/empty = @p dflt, junk warns
 *  and falls back to @p dflt. */
u64 byteSize(const char *var, u64 dflt = 0);

/**
 * Parse a plain decimal count into an unsigned.  Rejects negatives
 * (strtoul would silently wrap them) and values that overflow unsigned.
 * @return false on junk; @p value is untouched then.
 */
bool parseUnsigned(const char *text, unsigned &value);

/** String from the environment; unset or empty = @p dflt. */
std::string str(const char *var, const std::string &dflt = "");

} // namespace vmmx::env

#endif // VMMX_COMMON_ENV_HH
