/**
 * @file
 * The one place environment variables are parsed.
 *
 * Every VMMX_* knob used to have its own ad-hoc parser (the sweep
 * engine's flag reader, the trace repository's budget reader, the CLI
 * front ends); they all live here now so a flag spelled "off" or a
 * budget spelled "64M" means the same thing to every consumer, and so
 * garbage input is diagnosed once, the same way, everywhere.
 *
 * Policy: an unset or empty variable always means "use the built-in
 * default"; an unparsable value warns once at the call site and falls
 * back to the default rather than aborting, because environment
 * variables are ambient state a user may not even know is set.
 */

#ifndef VMMX_COMMON_ENV_HH
#define VMMX_COMMON_ENV_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace vmmx::env
{

/**
 * Parse an on/off flag: "1"/"on"/"true"/"yes" and "0"/"off"/"false"/
 * "no" (case-sensitive, as documented everywhere the knobs appear).
 * @return false when @p text is null, empty, or none of the above.
 */
bool parseFlag(const char *text, bool &value);

/** Flag from the environment; unset/empty = @p dflt, junk warns and
 *  falls back to @p dflt. */
bool flag(const char *var, bool dflt);

/**
 * Parse a byte size: a non-negative integer with an optional k/K, m/M
 * or g/G binary suffix ("64M" = 64 MiB, "4096" = 4096 bytes).  A
 * leading '-' is rejected rather than wrapped to a huge value.
 * @return false on junk; @p bytes is untouched then.
 */
bool parseByteSize(const char *text, u64 &bytes);

/** Byte size from the environment; unset/empty = @p dflt, junk warns
 *  and falls back to @p dflt. */
u64 byteSize(const char *var, u64 dflt = 0);

/**
 * Parse a plain decimal count into an unsigned.  Rejects negatives
 * (strtoul would silently wrap them) and values that overflow unsigned.
 * @return false on junk; @p value is untouched then.
 */
bool parseUnsigned(const char *text, unsigned &value);

/** Unsigned count from the environment; unset/empty = @p dflt, junk
 *  warns and falls back to @p dflt. */
unsigned number(const char *var, unsigned dflt);

/** String from the environment; unset or empty = @p dflt. */
std::string str(const char *var, const std::string &dflt = "");

// ---- deterministic fault injection --------------------------------------

/**
 * One directive of a $VMMX_FAULT_SPEC: a named fault, an optional
 * numeric argument, and an optional worker scope.  The spec is a
 * comma-separated list of `name[=value][@workerN]` directives, where N
 * is the spawn ordinal of the worker the fault applies to (respawned
 * replacements get fresh ordinals, so a scoped fault fires exactly
 * once); an unscoped directive applies to every worker.  `stall=worker2`
 * is accepted as a synonym for `stall@worker2`.
 *
 * Directives (honored by dist/worker.cc, at the frame layer for
 * CorruptFrame):
 *
 *   kill-after-units=N   _exit(137) when unit N+1 arrives (N complete
 *                        units answered; N = 0 dies on the first unit)
 *   kill-mid-unit=N      run the Nth unit (1-based arrival order) but
 *                        _exit(137) after sending only half its results
 *   kill-on-point=I      _exit(137) whenever a received unit contains
 *                        grid point I -- with an unscoped spec, the
 *                        unit kills every worker it reaches, which is
 *                        the driver's quarantine trigger
 *   corrupt-frame=N      wreck the type byte of the Nth result frame
 *                        this worker sends (the driver must recover
 *                        from the undecodable frame)
 *   stall[=N]            hang forever upon receiving unit N (default
 *                        the first); only the driver's per-unit
 *                        deadline can recover
 *   exit-code=C          finish the session normally but exit with
 *                        status C instead of 0 (exercises the
 *                        post-run abnormal-exit accounting)
 */
struct FaultAction
{
    enum class Kind : u8
    {
        KillAfterUnits,
        KillMidUnit,
        KillOnPoint,
        CorruptFrame,
        Stall,
        ExitCode,
    };

    Kind kind = Kind::Stall;
    u64 value = 0;
    /** Spawn ordinal this directive applies to; -1 = every worker. */
    s64 worker = -1;

    bool applies(u64 workerId) const
    {
        return worker < 0 || u64(worker) == workerId;
    }
};

/**
 * Parse a fault spec (see FaultAction).  Null or empty parses to an
 * empty plan.  @return false on junk with a description in @p err;
 * @p plan is meaningful only on success.
 */
bool parseFaultSpec(const char *text, std::vector<FaultAction> &plan,
                    std::string &err);

} // namespace vmmx::env

#endif // VMMX_COMMON_ENV_HH
