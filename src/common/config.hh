/**
 * @file
 * Small typed key/value configuration store.
 *
 * Machine and memory models are parameterised through Config so that tests
 * and benches can tweak individual knobs without new struct plumbing.
 * Values are stored as strings and converted on access; a missing key with
 * no default is a fatal user error.
 */

#ifndef VMMX_COMMON_CONFIG_HH
#define VMMX_COMMON_CONFIG_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vmmx
{

class Config
{
  public:
    Config() = default;

    /** Construct from a list of "key=value" strings. */
    explicit Config(const std::vector<std::string> &assignments);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, s64 value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    bool has(const std::string &key) const;

    /** Typed getters; the no-default overloads are fatal on missing keys. */
    std::string getString(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &dflt) const;
    s64 getInt(const std::string &key) const;
    s64 getInt(const std::string &key, s64 dflt) const;
    u64 getUint(const std::string &key) const;
    u64 getUint(const std::string &key, u64 dflt) const;
    double getDouble(const std::string &key) const;
    double getDouble(const std::string &key, double dflt) const;
    bool getBool(const std::string &key) const;
    bool getBool(const std::string &key, bool dflt) const;

    /** Merge another config on top of this one (other wins). */
    void merge(const Config &other);

    /** All keys in sorted order (for dumping). */
    std::vector<std::string> keys() const;

    /** Key/value equality (override-set and spec round-trip checks). */
    bool operator==(const Config &o) const = default;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace vmmx

#endif // VMMX_COMMON_CONFIG_HH
