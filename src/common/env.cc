#include "common/env.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.hh"

namespace vmmx::env
{

bool
parseFlag(const char *text, bool &value)
{
    if (!text || !*text)
        return false;
    static const char *const on[] = {"1", "on", "true", "yes"};
    static const char *const off[] = {"0", "off", "false", "no"};
    for (const char *t : on) {
        if (std::strcmp(text, t) == 0) {
            value = true;
            return true;
        }
    }
    for (const char *t : off) {
        if (std::strcmp(text, t) == 0) {
            value = false;
            return true;
        }
    }
    return false;
}

bool
flag(const char *var, bool dflt)
{
    const char *text = std::getenv(var);
    if (!text || !*text)
        return dflt;
    bool value = dflt;
    if (!parseFlag(text, value)) {
        warn("ignoring unparsable %s='%s' (want on/off)", var, text);
        return dflt;
    }
    return value;
}

bool
parseByteSize(const char *text, u64 &bytes)
{
    if (!text || !*text)
        return false;
    // strtoull would silently wrap a leading '-' to a huge size.
    if (text[0] == '-')
        return false;
    char *end = nullptr;
    u64 v = std::strtoull(text, &end, 0);
    if (end == text)
        return false;
    switch (*end) {
      case 'k': case 'K': v <<= 10; ++end; break;
      case 'm': case 'M': v <<= 20; ++end; break;
      case 'g': case 'G': v <<= 30; ++end; break;
      default: break;
    }
    if (*end != '\0')
        return false;
    bytes = v;
    return true;
}

u64
byteSize(const char *var, u64 dflt)
{
    const char *text = std::getenv(var);
    if (!text || !*text)
        return dflt;
    u64 bytes = 0;
    if (!parseByteSize(text, bytes)) {
        warn("ignoring unparsable %s='%s' (want e.g. 256M, 2G, 4096)",
             var, text);
        return dflt;
    }
    return bytes;
}

bool
parseUnsigned(const char *text, unsigned &value)
{
    if (!text || !*text || text[0] == '-')
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE ||
        v > std::numeric_limits<unsigned>::max())
        return false;
    value = unsigned(v);
    return true;
}

std::string
str(const char *var, const std::string &dflt)
{
    const char *text = std::getenv(var);
    if (!text || !*text)
        return dflt;
    return text;
}

} // namespace vmmx::env
