#include "common/env.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.hh"

namespace vmmx::env
{

bool
parseFlag(const char *text, bool &value)
{
    if (!text || !*text)
        return false;
    static const char *const on[] = {"1", "on", "true", "yes"};
    static const char *const off[] = {"0", "off", "false", "no"};
    for (const char *t : on) {
        if (std::strcmp(text, t) == 0) {
            value = true;
            return true;
        }
    }
    for (const char *t : off) {
        if (std::strcmp(text, t) == 0) {
            value = false;
            return true;
        }
    }
    return false;
}

bool
flag(const char *var, bool dflt)
{
    const char *text = std::getenv(var);
    if (!text || !*text)
        return dflt;
    bool value = dflt;
    if (!parseFlag(text, value)) {
        warn("ignoring unparsable %s='%s' (want on/off)", var, text);
        return dflt;
    }
    return value;
}

bool
parseByteSize(const char *text, u64 &bytes)
{
    if (!text || !*text)
        return false;
    // strtoull would silently wrap a leading '-' to a huge size.
    if (text[0] == '-')
        return false;
    char *end = nullptr;
    u64 v = std::strtoull(text, &end, 0);
    if (end == text)
        return false;
    switch (*end) {
      case 'k': case 'K': v <<= 10; ++end; break;
      case 'm': case 'M': v <<= 20; ++end; break;
      case 'g': case 'G': v <<= 30; ++end; break;
      default: break;
    }
    if (*end != '\0')
        return false;
    bytes = v;
    return true;
}

u64
byteSize(const char *var, u64 dflt)
{
    const char *text = std::getenv(var);
    if (!text || !*text)
        return dflt;
    u64 bytes = 0;
    if (!parseByteSize(text, bytes)) {
        warn("ignoring unparsable %s='%s' (want e.g. 256M, 2G, 4096)",
             var, text);
        return dflt;
    }
    return bytes;
}

bool
parseUnsigned(const char *text, unsigned &value)
{
    if (!text || !*text || text[0] == '-')
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE ||
        v > std::numeric_limits<unsigned>::max())
        return false;
    value = unsigned(v);
    return true;
}

unsigned
number(const char *var, unsigned dflt)
{
    const char *text = std::getenv(var);
    if (!text || !*text)
        return dflt;
    unsigned value = dflt;
    if (!parseUnsigned(text, value)) {
        warn("ignoring unparsable %s='%s' (want a non-negative count)",
             var, text);
        return dflt;
    }
    return value;
}

std::string
str(const char *var, const std::string &dflt)
{
    const char *text = std::getenv(var);
    if (!text || !*text)
        return dflt;
    return text;
}

bool
parseFaultSpec(const char *text, std::vector<FaultAction> &plan,
               std::string &err)
{
    plan.clear();
    if (!text || !*text)
        return true;

    std::string spec(text);
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        std::string tok = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (tok.empty())
            continue;

        std::string body = tok, scope, value;
        size_t at = body.find('@');
        if (at != std::string::npos) {
            scope = body.substr(at + 1);
            body = body.substr(0, at);
            if (scope.empty()) {
                err = "fault directive '" + tok + "' has an empty scope";
                return false;
            }
        }
        std::string name = body;
        size_t eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
        }
        // `stall=worker2`: a worker reference in value position is the
        // scope, not a number.
        if (scope.empty() && value.rfind("worker", 0) == 0) {
            scope = value;
            value.clear();
        }

        FaultAction a;
        bool wantsValue = true;
        if (name == "kill-after-units")
            a.kind = FaultAction::Kind::KillAfterUnits;
        else if (name == "kill-mid-unit")
            a.kind = FaultAction::Kind::KillMidUnit;
        else if (name == "kill-on-point")
            a.kind = FaultAction::Kind::KillOnPoint;
        else if (name == "corrupt-frame")
            a.kind = FaultAction::Kind::CorruptFrame;
        else if (name == "exit-code")
            a.kind = FaultAction::Kind::ExitCode;
        else if (name == "stall") {
            a.kind = FaultAction::Kind::Stall;
            wantsValue = false;
        } else {
            err = "unknown fault directive '" + name + "'";
            return false;
        }

        if (!value.empty()) {
            unsigned v = 0;
            if (!parseUnsigned(value.c_str(), v)) {
                err = "fault directive '" + name + "' has a bad value '" +
                      value + "'";
                return false;
            }
            a.value = v;
        } else if (wantsValue) {
            err = "fault directive '" + name + "' needs a value";
            return false;
        }

        if (!scope.empty()) {
            unsigned w = 0;
            if (scope.rfind("worker", 0) != 0 ||
                !parseUnsigned(scope.c_str() + 6, w)) {
                err = "fault scope '" + scope + "' is not workerN";
                return false;
            }
            a.worker = s64(w);
        }
        plan.push_back(a);
    }
    return true;
}

} // namespace vmmx::env
