/**
 * @file
 * Saturating and wrapping sub-word arithmetic helpers used by the packed
 * SIMD emulation and by golden kernel references.
 */

#ifndef VMMX_COMMON_SATURATE_HH
#define VMMX_COMMON_SATURATE_HH

#include <algorithm>
#include <limits>

#include "common/types.hh"

namespace vmmx
{

/** Clamp a wide intermediate to the range of the narrow type T. */
template <typename T>
constexpr T
clampTo(s64 v)
{
    constexpr s64 lo = std::numeric_limits<T>::min();
    constexpr s64 hi = std::numeric_limits<T>::max();
    return static_cast<T>(std::min(hi, std::max(lo, v)));
}

constexpr u8 satAddU8(u8 a, u8 b) { return clampTo<u8>(s64(a) + b); }
constexpr u8 satSubU8(u8 a, u8 b) { return clampTo<u8>(s64(a) - b); }
constexpr s16 satAddS16(s16 a, s16 b) { return clampTo<s16>(s64(a) + b); }
constexpr s16 satSubS16(s16 a, s16 b) { return clampTo<s16>(s64(a) - b); }
constexpr s32 satAddS32(s32 a, s32 b) { return clampTo<s32>(s64(a) + b); }

/** Absolute difference of unsigned bytes (exact; no overflow). */
constexpr u8 absDiffU8(u8 a, u8 b) { return a > b ? a - b : b - a; }

/** Round-to-nearest average of unsigned bytes (pavgb semantics). */
constexpr u8 avgU8(u8 a, u8 b) { return u8((unsigned(a) + b + 1) >> 1); }

/** Arithmetic shift right that is well-defined for negative values. */
constexpr s32
asr(s32 v, unsigned sh)
{
    return v >= 0 ? (v >> sh) : ~((~v) >> sh);
}

constexpr s64
asr64(s64 v, unsigned sh)
{
    return v >= 0 ? (v >> sh) : ~((~v) >> sh);
}

/** Fixed-point multiply with rounding used by the DCT kernels. */
constexpr s32
fixMul(s32 a, s32 coeff, unsigned frac_bits)
{
    s64 p = s64(a) * coeff + (s64(1) << (frac_bits - 1));
    return s32(asr64(p, frac_bits));
}

} // namespace vmmx

#endif // VMMX_COMMON_SATURATE_HH
