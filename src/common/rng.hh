/**
 * @file
 * Deterministic xorshift64* RNG.  All workload generators use this so the
 * whole experiment pipeline is reproducible bit-for-bit across runs.
 */

#ifndef VMMX_COMMON_RNG_HH
#define VMMX_COMMON_RNG_HH

#include "common/types.hh"

namespace vmmx
{

class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) : state_(seed ? seed : 1)
    {}

    u64
    next()
    {
        u64 x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform in [0, bound). bound must be nonzero. */
    u64 below(u64 bound) { return next() % bound; }

    /** Uniform in [lo, hi] inclusive. */
    s64
    range(s64 lo, s64 hi)
    {
        return lo + s64(below(u64(hi - lo + 1)));
    }

    u8 byte() { return u8(next() >> 56); }

  private:
    u64 state_;
};

} // namespace vmmx

#endif // VMMX_COMMON_RNG_HH
