/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  -- an invariant of the simulator itself was violated (a bug in
 *             this code base); aborts so a debugger/core dump is useful.
 * fatal()  -- the simulation cannot continue because of a user-level error
 *             (bad configuration, impossible parameters); exits cleanly.
 * warn()   -- functionality is approximated; results may still be useful.
 * inform() -- plain status message.
 */

#ifndef VMMX_COMMON_LOGGING_HH
#define VMMX_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace vmmx
{

[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() output is suppressed. */
bool quiet();

/**
 * Tag this process's log lines with a worker ordinal (-1 = none).  When
 * $VMMX_LOG_PREFIX is set, every warn()/inform()/fatal()/panic() line
 * carries a "[pid/workerN +ms.mmm]" prefix (monotonic ms since process
 * start) so interleaved multi-process output is attributable.
 */
void setLogWorkerId(int workerId);

/**
 * Assert a simulator invariant.  Unlike assert(3) this is active in all
 * build types: invariants of the timing model must never be compiled out.
 * The stringified condition and message are passed as %s arguments, not
 * spliced into the format string: a condition containing '%' (modulo
 * expressions are common in the cache indexing code) must never be
 * parsed as a conversion specification reading nonexistent varargs.
 */
#define vmmx_assert(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::vmmx::panic("assertion '%s' failed at %s:%d: %s", #cond,  \
                          __FILE__, __LINE__, "" #__VA_ARGS__);         \
        }                                                               \
    } while (0)

} // namespace vmmx

#endif // VMMX_COMMON_LOGGING_HH
