/**
 * @file
 * Flat byte-addressable memory arena shared by the functional emulation
 * (trace DSL) and golden reference implementations.
 *
 * Addresses are allocated bump-pointer style; there is no protection or
 * paging — workloads are cooperative.  Accessors are little-endian and
 * bounds-checked (a wild access is a simulator bug, hence panic).
 */

#ifndef VMMX_COMMON_MEMIMAGE_HH
#define VMMX_COMMON_MEMIMAGE_HH

#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace vmmx
{

class MemImage
{
  public:
    /** @param size arena size in bytes. */
    explicit MemImage(size_t size = 16u << 20);

    /** Allocate @p bytes aligned to @p align; returns base address. */
    Addr alloc(size_t bytes, size_t align = 16);

    /** Reset the allocator and zero the arena. */
    void clear();

    size_t size() const { return data_.size(); }
    Addr brk() const { return brk_; }

    u8 read8(Addr a) const { check(a, 1); return data_[a]; }
    u16 read16(Addr a) const { return readT<u16>(a); }
    u32 read32(Addr a) const { return readT<u32>(a); }
    u64 read64(Addr a) const { return readT<u64>(a); }

    void write8(Addr a, u8 v) { check(a, 1); data_[a] = v; }
    void write16(Addr a, u16 v) { writeT(a, v); }
    void write32(Addr a, u32 v) { writeT(a, v); }
    void write64(Addr a, u64 v) { writeT(a, v); }

    /** Bulk copy helpers for test/bench setup. */
    void copyIn(Addr a, const void *src, size_t n);
    void copyOut(void *dst, Addr a, size_t n) const;

    /** Direct pointer for golden references; valid until clear(). */
    u8 *raw(Addr a, size_t n) { check(a, n); return &data_[a]; }
    const u8 *raw(Addr a, size_t n) const { check(a, n); return &data_[a]; }

  private:
    void
    check(Addr a, size_t n) const
    {
        if (a + n > data_.size() || a + n < a)
            panic("memory access [0x%llx, +%zu) out of arena of %zu bytes",
                  static_cast<unsigned long long>(a), n, data_.size());
    }

    template <typename T>
    T
    readT(Addr a) const
    {
        check(a, sizeof(T));
        T v;
        std::memcpy(&v, &data_[a], sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeT(Addr a, T v)
    {
        check(a, sizeof(T));
        std::memcpy(&data_[a], &v, sizeof(T));
    }

    std::vector<u8> data_;
    Addr brk_;
};

} // namespace vmmx

#endif // VMMX_COMMON_MEMIMAGE_HH
