#include "common/stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace vmmx
{

Counter::Counter(StatGroup *parent, const std::string &name,
                 const std::string &desc)
    : name_(name), desc_(desc)
{
    if (parent)
        parent->addCounter(this);
}

Histogram::Histogram(StatGroup *parent, const std::string &name,
                     const std::string &desc, u64 min, u64 max,
                     size_t buckets)
    : name_(name), desc_(desc), min_(min), max_(max),
      buckets_(buckets, 0)
{
    if (max <= min)
        fatal("histogram '%s': max (%llu) must exceed min (%llu)",
              name.c_str(), (unsigned long long)max,
              (unsigned long long)min);
    if (buckets == 0)
        fatal("histogram '%s': needs at least one bucket", name.c_str());
    if (parent)
        parent->addHistogram(this);
}

void
Histogram::sample(u64 v, u64 count)
{
    samples_ += count;
    sum_ += v * count;
    minSample_ = std::min(minSample_, v);
    maxSample_ = std::max(maxSample_, v);
    if (v < min_) {
        underflow_ += count;
    } else if (v >= max_) {
        overflow_ += count;
    } else {
        size_t idx = size_t((v - min_) * buckets_.size() / (max_ - min_));
        buckets_[idx] += count;
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = samples_ = sum_ = 0;
    minSample_ = ~u64(0);
    maxSample_ = 0;
}

Formula::Formula(StatGroup *parent, const std::string &name,
                 const std::string &desc, std::function<double()> fn)
    : name_(name), desc_(desc), fn_(std::move(fn))
{
    if (parent)
        parent->addFormula(this);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Counter *c : counters_) {
        os << name_ << '.' << c->name() << ' ' << c->value()
           << "  # " << c->desc() << '\n';
    }
    for (const Histogram *h : histograms_) {
        os << name_ << '.' << h->name() << ".samples " << h->samples()
           << "  # " << h->desc() << '\n';
        os << name_ << '.' << h->name() << ".mean "
           << std::fixed << std::setprecision(3) << h->mean() << '\n';
    }
    for (const Formula *f : formulas_) {
        os << name_ << '.' << f->name() << ' '
           << std::fixed << std::setprecision(4) << f->value()
           << "  # " << f->desc() << '\n';
    }
}

void
StatGroup::resetAll()
{
    for (Counter *c : counters_)
        c->reset();
    for (Histogram *h : histograms_)
        h->reset();
}

} // namespace vmmx
