#include "common/stats.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace vmmx
{

Counter::Counter(StatGroup *parent, const std::string &name,
                 const std::string &desc)
    : name_(name), desc_(desc)
{
    if (parent)
        parent->addCounter(this);
}

Histogram::Histogram(StatGroup *parent, const std::string &name,
                     const std::string &desc, u64 min, u64 max,
                     size_t buckets)
    : name_(name), desc_(desc), min_(min), max_(max),
      buckets_(buckets, 0)
{
    // min == max is a valid degenerate range: every sample lands in the
    // underflow or overflow bucket and the bucket array stays untouched.
    if (max < min)
        fatal("histogram '%s': max (%llu) must not be below min (%llu)",
              name.c_str(), static_cast<unsigned long long>(max),
              static_cast<unsigned long long>(min));
    if (buckets == 0)
        fatal("histogram '%s': needs at least one bucket", name.c_str());
    if (parent)
        parent->addHistogram(this);
}

void
Histogram::sample(u64 v, u64 count)
{
    if (count == 0)
        return; // must not perturb minSample_/maxSample_
    samples_ += count;
    sum_ += v * count;
    minSample_ = std::min(minSample_, v);
    maxSample_ = std::max(maxSample_, v);
    if (v < min_) {
        underflow_ += count;
    } else if (v >= max_) {
        overflow_ += count;
    } else {
        // Widen the scaling multiply: (v - min_) * buckets can exceed
        // 64 bits for wide ranges even though the quotient fits.
        using u128 = unsigned __int128;
        size_t idx =
            size_t(u128(v - min_) * buckets_.size() / (max_ - min_));
        buckets_[idx] += count;
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = samples_ = sum_ = 0;
    minSample_ = ~u64(0);
    maxSample_ = 0;
}

Formula::Formula(StatGroup *parent, const std::string &name,
                 const std::string &desc, std::function<double()> fn)
    : name_(name), desc_(desc), fn_(std::move(fn))
{
    if (parent)
        parent->addFormula(this);
}

void
StatGroup::dump(std::ostream &os) const
{
    // Deterministic output: sorted by stat name, independent of
    // registration order.
    std::vector<std::pair<std::string, std::string>> lines;
    std::ostringstream line;
    auto push = [&](const std::string &stat) {
        lines.emplace_back(stat, line.str());
        line.str("");
    };
    for (const Counter *c : counters_) {
        line << name_ << '.' << c->name() << ' ' << c->value()
             << "  # " << c->desc() << '\n';
        push(c->name());
    }
    for (const Histogram *h : histograms_) {
        line << name_ << '.' << h->name() << ".samples " << h->samples()
             << "  # " << h->desc() << '\n'
             << name_ << '.' << h->name() << ".mean "
             << std::fixed << std::setprecision(3) << h->mean() << '\n';
        push(h->name());
    }
    for (const Formula *f : formulas_) {
        line << name_ << '.' << f->name() << ' '
             << std::fixed << std::setprecision(4) << f->value()
             << "  # " << f->desc() << '\n';
        push(f->name());
    }
    std::stable_sort(lines.begin(), lines.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    for (const auto &[stat, text] : lines)
        os << text;
}

void
StatGroup::resetAll()
{
    for (Counter *c : counters_)
        c->reset();
    for (Histogram *h : histograms_)
        h->reset();
}

} // namespace vmmx
