#include "common/memimage.hh"

#include <algorithm>

namespace vmmx
{

MemImage::MemImage(size_t size)
    : data_(size, 0),
      brk_(64) // keep address 0 unmapped-ish: allocations never return 0
{
}

Addr
MemImage::alloc(size_t bytes, size_t align)
{
    vmmx_assert(align != 0 && (align & (align - 1)) == 0,
                "alignment must be a power of two");
    Addr base = (brk_ + align - 1) & ~(Addr(align) - 1);
    if (base + bytes > data_.size())
        fatal("memory arena exhausted: need %zu bytes at 0x%llx (arena %zu)",
              bytes, static_cast<unsigned long long>(base), data_.size());
    brk_ = base + bytes;
    return base;
}

void
MemImage::clear()
{
    std::fill(data_.begin(), data_.end(), 0);
    brk_ = 64;
}

void
MemImage::copyIn(Addr a, const void *src, size_t n)
{
    check(a, n);
    std::memcpy(&data_[a], src, n);
}

void
MemImage::copyOut(void *dst, Addr a, size_t n) const
{
    check(a, n);
    std::memcpy(dst, &data_[a], n);
}

} // namespace vmmx
