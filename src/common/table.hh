/**
 * @file
 * ASCII table printer used by the bench binaries to render paper-style
 * tables and figure series.
 */

#ifndef VMMX_COMMON_TABLE_HH
#define VMMX_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace vmmx
{

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p prec decimals. */
    static std::string num(double v, int prec = 2);

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace vmmx

#endif // VMMX_COMMON_TABLE_HH
