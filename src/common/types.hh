/**
 * @file
 * Fundamental scalar types used across the simulator.
 */

#ifndef VMMX_COMMON_TYPES_HH
#define VMMX_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace vmmx
{

/** Simulated byte address. */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Dynamic instruction sequence number (commit order). */
using SeqNum = std::uint64_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

} // namespace vmmx

#endif // VMMX_COMMON_TYPES_HH
