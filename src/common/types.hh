/**
 * @file
 * Fundamental scalar types used across the simulator.
 */

#ifndef VMMX_COMMON_TYPES_HH
#define VMMX_COMMON_TYPES_HH

#include <bit>
#include <cstdint>
#include <cstddef>
#include <cstring>
#include <type_traits>

namespace vmmx
{

/** Simulated byte address. */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Dynamic instruction sequence number (commit order). */
using SeqNum = std::uint64_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

// ---- byte-buffer scalar access -------------------------------------------
// The sanctioned way to move fixed-width integers in and out of byte
// buffers (wire frames, trace files, checksum tails).  memcpy is free of
// the alignment and strict-aliasing UB a reinterpret_cast load carries
// -- a u8 cursor into a frame has no u32/u64 alignment guarantee -- and
// compiles to a single mov on every target we build for.  The wire
// format is little-endian; the std::endian branch keeps the encoded
// bytes identical on a big-endian host.

/** Load a little-endian T from an arbitrarily aligned byte pointer. */
template <typename T>
inline T
loadLE(const u8 *p)
{
    static_assert(std::is_integral_v<T> && std::is_unsigned_v<T>);
    T v;
    std::memcpy(&v, p, sizeof(T));
    if constexpr (std::endian::native == std::endian::big) {
        T r = 0;
        for (size_t i = 0; i < sizeof(T); ++i)
            r |= T((v >> (8 * (sizeof(T) - 1 - i))) & 0xff) << (8 * i);
        v = r;
    }
    return v;
}

/** Store T little-endian to an arbitrarily aligned byte pointer. */
template <typename T>
inline void
storeLE(u8 *p, T v)
{
    static_assert(std::is_integral_v<T> && std::is_unsigned_v<T>);
    if constexpr (std::endian::native == std::endian::big) {
        T r = 0;
        for (size_t i = 0; i < sizeof(T); ++i)
            r |= T((v >> (8 * (sizeof(T) - 1 - i))) & 0xff) << (8 * i);
        v = r;
    }
    std::memcpy(p, &v, sizeof(T));
}

/** A byte buffer viewed as chars for iostream read()/write().  char is
 *  allowed to alias anything, so the cast is well-defined; centralizing
 *  it here keeps reinterpret_cast out of the serialization code. */
inline const char *
asChars(const u8 *p)
{
    return reinterpret_cast<const char *>(p);
}

} // namespace vmmx

#endif // VMMX_COMMON_TYPES_HH
