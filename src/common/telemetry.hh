/**
 * @file
 * Process-wide observability: a metrics registry, RAII span tracing,
 * and rate-limited run progress -- the measurement substrate for the
 * ROADMAP's cost-model scheduler, TCP fleet, and vmmx_studyd rungs.
 *
 * Everything here is *observational*: no simulation state is read or
 * written, so results are bit-identical with telemetry on or off (CI
 * asserts this).  When disabled -- the default -- every instrumentation
 * site compiles down to one relaxed atomic load and a branch; the
 * expensive parts (string formatting, locking, allocation) only run
 * behind enabled().
 *
 * Three pieces:
 *
 *   Registry  federates named counters/gauges, the existing StatGroups,
 *             and per-unit timing records behind one dumpText()/
 *             dumpJson() with deterministic (name-sorted) ordering and
 *             snapshot/delta support.
 *
 *   Tracer    collects SpanRecords (TELEMETRY_SPAN RAII timers) and
 *             renders them as a Chrome trace-event JSON array that
 *             loads in chrome://tracing and Perfetto.  Worker-side
 *             spans are forwarded to the driver over the protocol's
 *             Event frame and merged into one timeline keyed by
 *             pid/workerId.
 *
 *   Progress  rate-limited live progress (points done/total, points/s,
 *             ETA) to stderr or as streamed JSONL events -- the forward
 *             substrate for vmmx_studyd's streamed events.
 */

#ifndef VMMX_COMMON_TELEMETRY_HH
#define VMMX_COMMON_TELEMETRY_HH

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vmmx
{
class StatGroup;
}

namespace vmmx::telemetry
{

// ---- enable flag ---------------------------------------------------------

namespace detail
{
extern std::atomic<bool> gEnabled;
}

/** The disabled-mode fast path: one relaxed load and a branch.  The
 *  initial value comes from $VMMX_TELEMETRY; tools with --trace-events/
 *  --metrics-json flip it via setEnabled(), and distributed drivers
 *  forward it to workers in the Setup frame. */
inline bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

void setEnabled(bool on);

/** Monotonic nanoseconds (CLOCK_MONOTONIC; comparable across the
 *  processes of one host, which is what the merged timeline needs). */
u64 nowNs();

/** Which sanitizer this binary was built with ("address", "undefined",
 *  "thread"), or "none".  Stamped into metrics dumps and perf records
 *  so sanitizer-build numbers are never mistaken for real timings. */
const char *sanitizerName();

// ---- span tracing --------------------------------------------------------

/** One completed scoped timer.  pid/workerId key the merged timeline:
 *  local spans carry this process's pid and workerId -1; spans
 *  forwarded over the Event frame carry the worker's. */
struct SpanRecord
{
    std::string name;   ///< phase ("decode", "simulate", ...)
    std::string detail; ///< optional argument (trace label, unit id...)
    u64 startNs = 0;    ///< nowNs() at construction
    u64 durNs = 0;      ///< duration
    u64 pid = 0;        ///< originating process
    u32 tid = 0;        ///< per-process thread ordinal
    s32 workerId = -1;  ///< dist spawn ordinal; -1 = driver/local
};

/** Global span buffer; workers drain it into Event frames, drivers and
 *  in-process runs drain it into writeTraceEvents(). */
class Tracer
{
  public:
    static Tracer &instance();

    void record(SpanRecord &&rec);
    /** Remove and return every buffered span (worker-side flush). */
    std::vector<SpanRecord> drain();
    /** Buffered span count (tests). */
    size_t size() const;
    void clear();

    /** Label a pid's track in the rendered timeline ("driver",
     *  "worker0/spawn2", ...). */
    void setProcessName(u64 pid, const std::string &name);

    /**
     * Render every buffered span as a Chrome trace-event JSON array
     * (complete "X" events plus "M" process_name metadata), sorted by
     * (pid, start) with timestamps rebased to the earliest span.  Loads
     * directly in chrome://tracing and ui.perfetto.dev.
     */
    void writeTraceEvents(std::ostream &os) const;

  private:
    mutable std::mutex mu_;
    std::vector<SpanRecord> spans_;
    std::map<u64, std::string> processNames_;
};

/** RAII scoped timer.  Construction and destruction are no-ops beyond
 *  the enabled() branch when telemetry is off; pass expensive detail
 *  strings as `enabled() ? mk() : std::string()` at the call site. */
class Span
{
  public:
    explicit Span(const char *name, std::string detail = std::string())
    {
        if (enabled())
            begin(name, std::move(detail));
    }
    ~Span()
    {
        if (live_)
            end();
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    void begin(const char *name, std::string &&detail);
    void end();

    bool live_ = false;
    SpanRecord rec_;
};

#define VMMX_TELEMETRY_CAT2(a, b) a##b
#define VMMX_TELEMETRY_CAT(a, b) VMMX_TELEMETRY_CAT2(a, b)
/** TELEMETRY_SPAN("decode", detailString) -- a scoped timer covering
 *  the rest of the enclosing block. */
#define TELEMETRY_SPAN(...)                                               \
    ::vmmx::telemetry::Span VMMX_TELEMETRY_CAT(telemetrySpan_,            \
                                               __LINE__)(__VA_ARGS__)

// ---- metrics registry ----------------------------------------------------

/** One executed sweep unit: the per-(trace, width) cost record the
 *  future cost-model scheduler trains on. */
struct UnitRecord
{
    u64 traceHash = 0;  ///< FNV-1a of the lead point's trace identity
    std::string label;  ///< lead point label (human-readable key)
    u32 points = 0;     ///< configs batched into the unit (its width)
    u64 records = 0;    ///< trace length replayed
    u64 wallNs = 0;     ///< wall-clock of the whole unit
    s32 workerId = -1;  ///< dist spawn ordinal; -1 = driver/local
    std::string simd;   ///< step-kernel path (scalar/sse2/avx2/avx512)

    double pointsPerSec() const
    {
        return wallNs ? double(points) * 1e9 / double(wallNs) : 0.0;
    }
};

/** Flattened name->value view of the registry at one instant. */
struct MetricsSnapshot
{
    std::map<std::string, u64> values;
};

/**
 * The process-wide metrics registry.  Counters accumulate, gauges are
 * last-write-wins, registered StatGroups are flattened into
 * "group.stat" entries at dump/snapshot time, and unit records
 * accumulate into the "units" section of dumpJson().  All orderings are
 * deterministic (sorted by name; units in record order).
 */
class Registry
{
  public:
    static Registry &instance();

    void addCounter(const std::string &name, u64 delta);
    void setGauge(const std::string &name, u64 value);
    void addGroup(const StatGroup *group);
    void removeGroup(const StatGroup *group);
    void addUnit(UnitRecord &&rec);
    /** Remove and return every buffered unit record (worker flush). */
    std::vector<UnitRecord> drainUnits();
    std::vector<UnitRecord> units() const;
    void clear();

    /** Flattened counters + gauges + group stats, sorted by name. */
    MetricsSnapshot snapshot() const;
    /** after - before per key (missing keys read as 0; underflow
     *  clamps to 0 so a reset stat cannot wrap). */
    static MetricsSnapshot delta(const MetricsSnapshot &before,
                                 const MetricsSnapshot &after);

    /** "name value" lines, sorted by name, then one line per unit. */
    void dumpText(std::ostream &os) const;
    /** One JSON object, nested by the first dotted name component
     *  ("dist.respawns" -> {"dist": {"respawns": N}}), plus a "units"
     *  array of per-unit timing records.  Deterministically ordered. */
    void dumpJson(std::ostream &os) const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, u64> counters_;
    std::map<std::string, u64> gauges_;
    std::vector<const StatGroup *> groups_;
    std::vector<UnitRecord> units_;
};

/** JSON string escaping for names/details/labels. */
std::string jsonEscape(const std::string &s);

// ---- live progress -------------------------------------------------------

enum class ProgressMode : u8
{
    Off,    ///< the default: Progress methods return immediately
    Stderr, ///< human-readable rate-limited lines on stderr
    Jsonl,  ///< one JSON event per line on the configured stream
};

/** Select the process-wide progress mode; @p stream (Jsonl mode) stays
 *  owned by the caller and defaults to stderr. */
void setProgress(ProgressMode mode, std::FILE *stream = nullptr);
ProgressMode progressMode();

/**
 * Rate-limited progress for one run.  update() emits at most every
 * ~200ms; finish() always emits.  Thread-safe: pool workers may tick
 * concurrently.  All methods are no-ops in ProgressMode::Off.
 */
class Progress
{
  public:
    Progress(std::string what, u64 total);

    /** @p done is absolute (points completed so far); @p extra is an
     *  optional free-form suffix (per-worker in-flight counts...). */
    void update(u64 done, const std::string &extra = std::string());
    void finish(u64 done);

  private:
    void emit(u64 done, const std::string &extra, bool final);

    std::mutex mu_;
    std::string what_;
    u64 total_ = 0;
    u64 startNs_ = 0;
    u64 lastEmitNs_ = 0;
};

} // namespace vmmx::telemetry

#endif // VMMX_COMMON_TELEMETRY_HH
