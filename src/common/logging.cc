#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace vmmx
{

namespace
{
/** Atomic so sweep worker threads and bench mains can race setQuiet()
 *  against warn()/inform() without UB. */
std::atomic<bool> quietFlag{false};

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace vmmx
