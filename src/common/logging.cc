#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include <unistd.h>

#include "common/env.hh"
#include "common/types.hh"

namespace vmmx
{

namespace
{
/** Atomic so sweep worker threads and bench mains can race setQuiet()
 *  against warn()/inform() without UB. */
std::atomic<bool> quietFlag{false};

std::atomic<int> logWorkerId{-1};

u64
monotonicNs()
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return u64(ts.tv_sec) * 1000000000ull + u64(ts.tv_nsec);
}

/** $VMMX_LOG_PREFIX goes through env::str() (which never warns, so no
 *  recursion through this file) rather than env::flag() (which does):
 *  any nonempty value other than "0" turns the prefix on. */
bool
prefixEnabled()
{
    static const bool on = [] {
        std::string v = env::str("VMMX_LOG_PREFIX");
        return !v.empty() && v != "0";
    }();
    return on;
}

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    if (prefixEnabled()) {
        static const u64 t0 = monotonicNs();
        u64 ms = (monotonicNs() - t0) / 1000000ull;
        u64 us = ((monotonicNs() - t0) / 1000ull) % 1000ull;
        int worker = logWorkerId.load(std::memory_order_relaxed);
        if (worker >= 0) {
            std::fprintf(stderr, "%s: [%d/worker%d +%llu.%03llu] ", tag,
                         int(getpid()), worker, static_cast<unsigned long long>(ms),
                         static_cast<unsigned long long>(us));
        } else {
            std::fprintf(stderr, "%s: [%d +%llu.%03llu] ", tag,
                         int(getpid()), static_cast<unsigned long long>(ms),
                         static_cast<unsigned long long>(us));
        }
    } else {
        std::fprintf(stderr, "%s: ", tag);
    }
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

void
setLogWorkerId(int workerId)
{
    logWorkerId.store(workerId, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace vmmx
