/**
 * @file
 * Lightweight statistics package (counters, histograms, derived formulas).
 *
 * Stats belong to a StatGroup; groups can be dumped as text.  The design
 * follows the gem5 stats package in spirit: stats are registered once with
 * a name and description and accumulate over a simulation.
 */

#ifndef VMMX_COMMON_STATS_HH
#define VMMX_COMMON_STATS_HH

#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vmmx
{

class StatGroup;

/** Monotonic event counter. */
class Counter
{
  public:
    Counter() = default;
    Counter(StatGroup *parent, const std::string &name,
            const std::string &desc);

    Counter &operator++() { value_ += 1; return *this; }
    Counter &operator+=(u64 n) { value_ += n; return *this; }
    u64 value() const { return value_; }
    void reset() { value_ = 0; }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    u64 value_ = 0;
};

/** Fixed-bucket histogram over a [min, max) range with uniform buckets. */
class Histogram
{
  public:
    Histogram() = default;
    Histogram(StatGroup *parent, const std::string &name,
              const std::string &desc, u64 min, u64 max, size_t buckets);

    void sample(u64 v, u64 count = 1);

    u64 samples() const { return samples_; }
    u64 sum() const { return sum_; }
    double mean() const { return samples_ ? double(sum_) / samples_ : 0.0; }
    u64 bucketCount(size_t i) const { return buckets_.at(i); }
    size_t numBuckets() const { return buckets_.size(); }
    u64 underflow() const { return underflow_; }
    u64 overflow() const { return overflow_; }
    u64 minSample() const { return minSample_; }
    u64 maxSample() const { return maxSample_; }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }
    void reset();

  private:
    std::string name_;
    std::string desc_;
    u64 min_ = 0;
    u64 max_ = 1;
    std::vector<u64> buckets_;
    u64 underflow_ = 0;
    u64 overflow_ = 0;
    u64 samples_ = 0;
    u64 sum_ = 0;
    u64 minSample_ = ~u64(0);
    u64 maxSample_ = 0;
};

/** Derived value computed on demand (e.g. IPC = insts / cycles). */
class Formula
{
  public:
    Formula() = default;
    Formula(StatGroup *parent, const std::string &name,
            const std::string &desc, std::function<double()> fn);

    double value() const { return fn_ ? fn_() : 0.0; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::function<double()> fn_;
};

/**
 * A named collection of statistics.  Groups register their member stats at
 * construction; dump() renders "group.stat  value  # desc" lines.
 */
class StatGroup
{
  public:
    explicit StatGroup(const std::string &name) : name_(name) {}

    void addCounter(Counter *c) { counters_.push_back(c); }
    void addHistogram(Histogram *h) { histograms_.push_back(h); }
    void addFormula(Formula *f) { formulas_.push_back(f); }

    void dump(std::ostream &os) const;
    void resetAll();

    const std::string &name() const { return name_; }
    const std::vector<Counter *> &counters() const { return counters_; }
    const std::vector<Histogram *> &histograms() const
    {
        return histograms_;
    }
    const std::vector<Formula *> &formulas() const { return formulas_; }

  private:
    std::string name_;
    std::vector<Counter *> counters_;
    std::vector<Histogram *> histograms_;
    std::vector<Formula *> formulas_;
};

} // namespace vmmx

#endif // VMMX_COMMON_STATS_HH
