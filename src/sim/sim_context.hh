/**
 * @file
 * Per-configuration simulation context and the batched trace-replay
 * entry point.
 *
 * A SimContext owns every piece of mutable per-run state of the
 * out-of-order timing model -- the width gates, issue queue, functional-
 * unit pools, branch predictor, register free lists, ready tables, ROB
 * and store rings, and the statistics of the run in flight -- bound to
 * one CoreParams and one MemorySystem.  Pulling that state out of
 * OoOCore is what makes batched simulation possible: N contexts can be
 * stepped against the *same* dynamic instruction stream, so a sweep
 * over N machine configurations decodes and streams the trace once
 * instead of N times.
 *
 * The decode split: everything about an InstRecord that does not depend
 * on the machine configuration (opcode traits, source/destination
 * register lists, memory footprint bounds, branch kind and outcome) is
 * resolved once into a DecodedInst and shared by every context.  Only
 * the configuration-dependent arbitration (gate widths, queue and pool
 * occupancy, cache state) runs per context.
 *
 * runBatch() processes the trace in cache-resident blocks: each block
 * is decoded once, then every context steps through it before the next
 * block is touched.  Contexts are mutually independent, so the result
 * of a batched run is bit-identical to running each context over the
 * full trace alone -- the guarantee the sweep and dist layers assert.
 */

#ifndef VMMX_SIM_SIM_CONTEXT_HH
#define VMMX_SIM_SIM_CONTEXT_HH

#include <span>
#include <vector>

#include "isa/inst.hh"
#include "mem/memsys.hh"
#include "sim/bpred.hh"
#include "sim/params.hh"
#include "sim/resources.hh"
#include "sim/runstats.hh"

namespace vmmx
{

/**
 * Configuration-independent decode of one InstRecord: opcode traits,
 * packed operand lists and the memory footprint, pre-resolved so the
 * per-context step never re-derives them.  Built once per trace block
 * and shared read-only by every context of a batch.
 */
struct DecodedInst
{
    /** Sentinel register class index: no destination register. */
    static constexpr u8 noDst = 0xff;

    // Flag bits (kept out of per-config state: all trace-determined).
    static constexpr u8 kLoad = 1 << 0;     ///< memory read
    static constexpr u8 kStore = 1 << 1;    ///< memory write
    static constexpr u8 kBranch = 1 << 2;   ///< any control transfer
    static constexpr u8 kCondBr = 1 << 3;   ///< conditional (predicted)
    static constexpr u8 kTaken = 1 << 4;    ///< resolved branch outcome
    static constexpr u8 kReadsDst = 1 << 5; ///< merges into destination
    static constexpr u8 kTakesIq = 1 << 6;  ///< occupies an IQ entry
    static constexpr u8 kVecMem = 1 << 7;   ///< matrix (vector-port) access
    Addr addr = 0;     ///< memory: resolved effective address
    Addr lo = 0;       ///< memory: footprint lower bound (inclusive)
    Addr hi = 0;       ///< memory: footprint upper bound (exclusive)
    u32 staticId = 0;  ///< static site (branch predictor)
    s32 stride = 0;    ///< memory: byte stride between rows
    u16 vl = 0;        ///< raw vector length (0 = scalar / 1-D)
    u16 rows = 1;      ///< rows processed (vl, or 1)
    u16 rowBytes = 0;  ///< bytes per row
    u16 region = 0;    ///< cycle-attribution region tag
    u8 fu = 0;         ///< FuType of the executing unit
    u8 latency = 0;    ///< post-issue execution latency
    u8 clsIdx = 0;     ///< InstClass index (stats bucket)
    u8 flags = 0;
    u8 mulOcc = 1;     ///< IntMul pool occupancy
    u8 transp = 0;     ///< occupies the lane-exchange network (VTRANSP)
    u8 dstCls = noDst; ///< destination register class index, or noDst
    u8 dstReg = 0;     ///< destination slot in the flat ready table
    u8 nSrcs = 0;      ///< valid entries in srcReg
    u8 srcReg[3] = {}; ///< source slots in the flat ready table

    bool has(u8 flag) const { return flags & flag; }
};

/** Resolve the configuration-independent properties of @p inst. */
DecodedInst decodeInst(const InstRecord &inst);

/**
 * All mutable per-run state of the timing model for one machine
 * configuration.  step() advances it by one decoded instruction;
 * contexts never share state, so any interleaving of steps across
 * contexts over the same stream yields identical per-context results.
 */
class SimContext
{
  public:
    /** @param mem the configuration's memory system; not owned. */
    SimContext(const CoreParams &params, MemorySystem *mem);

    /** Return to a cold pipeline and zeroed statistics.  Cache state in
     *  the memory system is left untouched (reset it separately). */
    void reset();

    /** Advance by one instruction of the shared decoded stream. */
    void step(const DecodedInst &inst);

    /** Finish the run: stamp the cycle total and return the stats. */
    RunStats finish();

    const CoreParams &params() const { return params_; }
    MemorySystem *mem() const { return mem_; }

  private:
    CoreParams params_;
    MemorySystem *mem_;

    WidthGate fetchGate_;
    WidthGate renameGate_;
    WidthGate commitGate_;
    IssueQueueModel iq_;
    SlotPool intPool_;
    SlotPool fpPool_;
    SlotPool simdPool_;
    SlotPool simdIssuePool_;
    BranchPredictor bpred_;

    std::vector<RegFreeList> freeLists_;

    /** Flat per-logical-register ready table: all classes side by side
     *  at fixed offsets (64 Int | 64 Fp | 64 Simd | 8 Acc), indexed by
     *  the slot numbers DecodedInst precomputes. */
    static constexpr size_t readySlots = 200;
    std::array<Cycle, readySlots> regReady_;

    /** Commit-cycle ring for the ROB-occupancy constraint; robPos_
     *  walks it without the modulo of the seq counter it replaced. */
    std::vector<Cycle> robRing_;
    u32 robPos_ = 0;
    /** ceil(vl / lanesPerFu) for every legal vl, precomputed so the
     *  SIMD occupancy needs no per-instruction division. */
    std::array<u8, 17> lanesOcc_;
    Cycle lastCommit_ = 0;
    Cycle fetchRedirect_ = 0;

    struct PendingStore
    {
        Addr lo;
        Addr hi;
        Cycle done;
    };

    /**
     * The last storeWindow stores, kept in a fixed ring (the newest
     * overwrites the oldest).  The interval and completion-time bounds
     * over the live entries let the per-load disambiguation walk be
     * skipped outright when no pending store can overlap or is still in
     * flight; they are conservative (never under-approximate) and are
     * tightened on every full walk.
     */
    std::vector<PendingStore> stores_;
    size_t storeHead_ = 0;
    Cycle storesMaxDone_ = 0;
    Addr storesLoMin_ = ~Addr(0);
    Addr storesHiMax_ = 0;

    void pushStore(Addr lo, Addr hi, Cycle done);
    /** @return the load's issue cycle after waiting for overlapping
     *  older stores still in flight at @p issue. */
    Cycle disambiguate(Addr lo, Addr hi, Cycle issue);
    void resetStores();

    RunStats stats_;
};

/**
 * Replay @p trace once, stepping every context in @p ctxs against each
 * record: one decode, one pass over trace memory, N configurations'
 * worth of statistics.  Each context is reset() first; collect results
 * with SimContext::finish().  Bit-identical to running each context
 * over the trace alone.
 */
void runBatch(const std::vector<InstRecord> &trace,
              std::span<SimContext *const> ctxs);

} // namespace vmmx

#endif // VMMX_SIM_SIM_CONTEXT_HH
