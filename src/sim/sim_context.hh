/**
 * @file
 * Per-configuration simulation context and the batched trace-replay
 * entry point.
 *
 * A SimContext owns every piece of mutable per-run state of the
 * out-of-order timing model -- the width gates, issue queue, functional-
 * unit pools, branch predictor, register free lists, ready tables, ROB
 * and store rings, and the statistics of the run in flight -- bound to
 * one CoreParams and one MemorySystem.  Pulling that state out of
 * OoOCore is what makes batched simulation possible: N contexts can be
 * stepped against the *same* dynamic instruction stream, so a sweep
 * over N machine configurations decodes and streams the trace once
 * instead of N times.
 *
 * The decode split: everything about an InstRecord that does not depend
 * on the machine configuration is resolved once into a DecodedInst
 * (trace/decoded.hh -- the decode lives in the trace layer so the
 * TraceRepository can cache whole decoded streams as its tier 2) and
 * shared by every context.  Only the configuration-dependent
 * arbitration (gate widths, queue and pool occupancy, cache state) runs
 * per context.
 *
 * runBatch() comes in two shapes.  Given a raw trace it processes it in
 * cache-resident blocks, decoding each block once before every context
 * steps through it.  Given an already-decoded DecodedStream (the
 * repository's tier 2) it skips decode entirely and streams the warm
 * blocks -- the per-record step order is identical, so both shapes are
 * bit-identical to running each context over the full trace alone, the
 * guarantee the sweep and dist layers assert.
 */

#ifndef VMMX_SIM_SIM_CONTEXT_HH
#define VMMX_SIM_SIM_CONTEXT_HH

#include <span>
#include <vector>

#include "isa/inst.hh"
#include "mem/memsys.hh"
#include "sim/bpred.hh"
#include "sim/params.hh"
#include "sim/resources.hh"
#include "sim/runstats.hh"
#include "trace/decoded.hh"

namespace vmmx
{

/**
 * All mutable per-run state of the timing model for one machine
 * configuration.  step() advances it by one decoded instruction;
 * contexts never share state, so any interleaving of steps across
 * contexts over the same stream yields identical per-context results.
 */
class SimContext
{
    /** The SoA batch view (sim/sim_batch.hh) hoists this context's hot
     *  state into lane arrays and reaches back in for the scalar
     *  sub-phases (free lists, memory, predictor, ROB ring). */
    friend struct SimBatch;

  public:
    /** @param mem the configuration's memory system; not owned. */
    SimContext(const CoreParams &params, MemorySystem *mem);

    /** Return to a cold pipeline and zeroed statistics.  Cache state in
     *  the memory system is left untouched (reset it separately). */
    void reset();

    /** Advance by one instruction of the shared decoded stream. */
    void step(const DecodedInst &inst);

    /** Finish the run: stamp the cycle total and return the stats. */
    RunStats finish();

    const CoreParams &params() const { return params_; }
    MemorySystem *mem() const { return mem_; }

  private:
    CoreParams params_;
    MemorySystem *mem_;

    WidthGate fetchGate_;
    WidthGate renameGate_;
    WidthGate commitGate_;
    IssueQueueModel iq_;
    SlotPool intPool_;
    SlotPool fpPool_;
    SlotPool simdPool_;
    SlotPool simdIssuePool_;
    BranchPredictor bpred_;

    std::vector<RegFreeList> freeLists_;

    /** Flat per-logical-register ready table: all classes side by side
     *  at fixed offsets (64 Int | 64 Fp | 64 Simd | 8 Acc), indexed by
     *  the slot numbers DecodedInst precomputes. */
    static constexpr size_t readySlots = decodedReadySlots;
    std::array<Cycle, readySlots> regReady_;

    /** Commit-cycle ring for the ROB-occupancy constraint; robPos_
     *  walks it without the modulo of the seq counter it replaced. */
    std::vector<Cycle> robRing_;
    u32 robPos_ = 0;
    /** ceil(vl / lanesPerFu) for every legal vl, precomputed so the
     *  SIMD occupancy needs no per-instruction division. */
    std::array<u8, 17> lanesOcc_;
    Cycle lastCommit_ = 0;
    Cycle fetchRedirect_ = 0;

    struct PendingStore
    {
        Addr lo;
        Addr hi;
        Cycle done;
    };

    /**
     * The last storeWindow stores, kept in a fixed ring (the newest
     * overwrites the oldest).  The interval and completion-time bounds
     * over the live entries let the per-load disambiguation walk be
     * skipped outright when no pending store can overlap or is still in
     * flight; they are conservative (never under-approximate) and are
     * tightened on every full walk.
     */
    std::vector<PendingStore> stores_;
    size_t storeHead_ = 0;
    Cycle storesMaxDone_ = 0;
    Addr storesLoMin_ = ~Addr(0);
    Addr storesHiMax_ = 0;

    void pushStore(Addr lo, Addr hi, Cycle done);
    /** @return the load's issue cycle after waiting for overlapping
     *  older stores still in flight at @p issue. */
    Cycle disambiguate(Addr lo, Addr hi, Cycle issue);
    void resetStores();

    RunStats stats_;
};

/**
 * Replay @p trace once, stepping every context in @p ctxs against each
 * record: one decode, one pass over trace memory, N configurations'
 * worth of statistics.  Each context is reset() first; collect results
 * with SimContext::finish().  Bit-identical to running each context
 * over the trace alone.
 */
void runBatch(const std::vector<InstRecord> &trace,
              std::span<SimContext *const> ctxs);

/**
 * Replay an already-decoded stream (e.g. the TraceRepository's tier 2)
 * through every context in @p ctxs: no decode at all, one pass over the
 * warm decoded blocks.  Step order per context is identical to the
 * raw-trace overload, so results are bit-identical to it -- and to
 * running each context alone.
 */
void runBatch(const DecodedStream &stream,
              std::span<SimContext *const> ctxs);

} // namespace vmmx

#endif // VMMX_SIM_SIM_CONTEXT_HH
