/**
 * @file
 * Structural-resource models used by the single-pass out-of-order timing
 * core: per-cycle width gates for the in-order stages, slot pools for
 * functional units, a windowed issue-queue model, and per-class physical
 * register free lists.
 *
 * Instructions are processed in program order; these helpers answer "at
 * which cycle >= c can this instruction acquire the resource" while
 * keeping the acquired reservations.
 */

#ifndef VMMX_SIM_RESOURCES_HH
#define VMMX_SIM_RESOURCES_HH

#include <queue>
#include <vector>

#include "common/types.hh"

namespace vmmx
{

/**
 * In-order pipeline stage of fixed width: at most @p width instructions
 * pass per cycle, in program order.
 */
class WidthGate
{
  public:
    explicit WidthGate(unsigned width) : width_(width) {}

    /** @return the cycle at which the next instruction passes (>= c). */
    Cycle pass(Cycle c);

    void reset();

  private:
    unsigned width_;
    Cycle cur_ = 0;
    unsigned used_ = 0;
};

/**
 * A pool of identical units; acquiring takes the earliest-free unit and
 * occupies it for @p occupancy cycles.  Models functional units (and,
 * with occupancy 1, per-cycle issue slots).
 */
class SlotPool
{
  public:
    explicit SlotPool(unsigned slots) : free_(slots, 0) {}

    /** @return start cycle >= c at which a unit was acquired. */
    Cycle acquire(Cycle c, Cycle occupancy = 1);

    void reset();

  private:
    std::vector<Cycle> free_;
};

/**
 * Issue-queue occupancy: entries are held from rename until issue.  The
 * caller asks for space before renaming and registers the (later
 * computed) issue cycle afterwards.
 */
class IssueQueueModel
{
  public:
    explicit IssueQueueModel(unsigned capacity) : capacity_(capacity) {}

    /** @return earliest cycle >= c with a free entry. */
    Cycle waitForSpace(Cycle c);

    /** Record that the instruction renamed here leaves at @p issueCycle. */
    void insert(Cycle issueCycle) { resident_.push(issueCycle); }

    void reset();

  private:
    unsigned capacity_;
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>>
        resident_;
};

/**
 * Physical register free list for one register class.  A rename consumes
 * one register; committing a later writer of the same logical register
 * releases the previous mapping.
 */
class RegFreeList
{
  public:
    RegFreeList(unsigned physRegs, unsigned logicalRegs);

    /** @return earliest cycle >= c at which a register can be allocated;
     *  performs the allocation. */
    Cycle allocate(Cycle c);

    /** A previous mapping becomes free when its successor commits. */
    void release(Cycle commitCycle) { releases_.push(commitCycle); }

    void reset();

    unsigned freeNow() const { return free_; }

  private:
    void harvest(Cycle c);

    unsigned total_;
    unsigned free_;
    unsigned initialFree_;
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>>
        releases_;
};

} // namespace vmmx

#endif // VMMX_SIM_RESOURCES_HH
