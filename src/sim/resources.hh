/**
 * @file
 * Structural-resource models used by the single-pass out-of-order timing
 * core: per-cycle width gates for the in-order stages, slot pools for
 * functional units, a windowed issue-queue model, and per-class physical
 * register free lists.
 *
 * Instructions are processed in program order; these helpers answer "at
 * which cycle >= c can this instruction acquire the resource" while
 * keeping the acquired reservations.
 *
 * Every model here sits on the per-instruction hot path of the timing
 * loop (the profile is dominated by them, not by the caches), so they
 * are defined inline and avoid heap-backed containers: the issue queue
 * is a flat array with a min scan (capacity is a handful of entries),
 * and the free lists exploit that releases arrive in non-decreasing
 * commit order, turning the priority queue this replaced into a plain
 * FIFO ring with identical semantics.
 */

#ifndef VMMX_SIM_RESOURCES_HH
#define VMMX_SIM_RESOURCES_HH

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace vmmx
{

/**
 * In-order pipeline stage of fixed width: at most @p width instructions
 * pass per cycle, in program order.
 */
class WidthGate
{
  public:
    explicit WidthGate(unsigned width) : width_(width) {}

    /** @return the cycle at which the next instruction passes (>= c). */
    Cycle pass(Cycle c)
    {
        if (c > cur_) {
            cur_ = c;
            used_ = 1;
            return cur_;
        }
        // In-order stage: c <= cur_ means this instruction is ready no
        // later than the stage's current cycle.
        if (used_ < width_) {
            ++used_;
            return cur_;
        }
        ++cur_;
        used_ = 1;
        return cur_;
    }

    void reset()
    {
        cur_ = 0;
        used_ = 0;
    }

  private:
    unsigned width_;
    Cycle cur_ = 0;
    unsigned used_ = 0;
};

/**
 * A pool of identical units; acquiring takes the earliest-free unit and
 * occupies it for @p occupancy cycles.  Models functional units (and,
 * with occupancy 1, per-cycle issue slots).
 */
class SlotPool
{
  public:
    explicit SlotPool(unsigned slots) : free_(slots, 0)
    {
        vmmx_assert(slots > 0, "slot pool with zero units");
    }

    /** @return start cycle >= c at which a unit was acquired. */
    Cycle acquire(Cycle c, Cycle occupancy = 1)
    {
        Cycle *slot = free_.data();
        for (size_t i = 1; i < free_.size(); ++i)
            if (free_[i] < *slot)
                slot = &free_[i];
        Cycle start = std::max(c, *slot);
        *slot = start + std::max<Cycle>(occupancy, 1);
        return start;
    }

    void reset() { std::fill(free_.begin(), free_.end(), 0); }

  private:
    std::vector<Cycle> free_;
};

/**
 * Issue-queue occupancy: entries are held from rename until issue.  The
 * caller asks for space before renaming and registers the (later
 * computed) issue cycle afterwards.
 *
 * Resident issue cycles live in a flat array of at most capacity
 * entries; taking space when full extracts the minimum (the entry that
 * leaves earliest) by linear scan, exactly the order the min-heap this
 * replaced produced.
 */
class IssueQueueModel
{
  public:
    explicit IssueQueueModel(unsigned capacity) : capacity_(capacity)
    {
        resident_.reserve(capacity);
    }

    /** @return earliest cycle >= c with a free entry. */
    Cycle waitForSpace(Cycle c)
    {
        while (resident_.size() >= capacity_) {
            size_t m = 0;
            for (size_t i = 1; i < resident_.size(); ++i)
                if (resident_[i] < resident_[m])
                    m = i;
            Cycle leaves = resident_[m];
            resident_[m] = resident_.back();
            resident_.pop_back();
            if (leaves >= c)
                c = leaves + 1;
        }
        return c;
    }

    /** Record that the instruction renamed here leaves at @p issueCycle. */
    void insert(Cycle issueCycle) { resident_.push_back(issueCycle); }

    void reset() { resident_.clear(); }

  private:
    unsigned capacity_;
    std::vector<Cycle> resident_;
};

/**
 * Physical register free list for one register class.  A rename consumes
 * one register; committing a later writer of the same logical register
 * releases the previous mapping.
 *
 * Commit is in order, so release() sees non-decreasing cycles and the
 * pending releases form a sorted FIFO: a power-of-two ring indexed by
 * monotone head/tail counters replaces the priority queue bit for bit.
 * At most total physical registers can be awaiting release, bounding
 * the ring occupancy.
 */
class RegFreeList
{
  public:
    RegFreeList(unsigned physRegs, unsigned logicalRegs);

    /** @return earliest cycle >= c at which a register can be allocated;
     *  performs the allocation. */
    Cycle allocate(Cycle c)
    {
        harvest(c);
        while (free_ == 0) {
            vmmx_assert(head_ != tail_,
                        "rename deadlock: no free registers and none in "
                        "flight");
            c = std::max(c, ring_[head_ & mask_]);
            harvest(c);
        }
        --free_;
        return c;
    }

    /** A previous mapping becomes free when its successor commits;
     *  successive commits never move backwards in time (the ring is
     *  sorted only because of this -- fail fast if a caller breaks it,
     *  since harvest() would otherwise silently strand entries). */
    void release(Cycle commitCycle)
    {
        vmmx_assert(head_ == tail_ ||
                        commitCycle >= ring_[(tail_ - 1) & mask_],
                    "free-list releases must be in commit order");
        ring_[tail_ & mask_] = commitCycle;
        ++tail_;
    }

    void reset()
    {
        head_ = tail_ = 0;
        free_ = initialFree_;
    }

    unsigned freeNow() const { return free_; }

  private:
    void harvest(Cycle c)
    {
        while (head_ != tail_ && ring_[head_ & mask_] <= c) {
            ++head_;
            ++free_;
        }
    }

    std::vector<Cycle> ring_; ///< pending release cycles, oldest first
    u32 head_ = 0;
    u32 tail_ = 0;
    u32 mask_;
    unsigned free_;
    unsigned initialFree_;
};

} // namespace vmmx

#endif // VMMX_SIM_RESOURCES_HH
