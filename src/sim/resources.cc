#include "sim/resources.hh"

namespace vmmx
{

namespace
{

u32
nextPow2(u32 v)
{
    u32 p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

RegFreeList::RegFreeList(unsigned physRegs, unsigned logicalRegs)
    : free_(physRegs - logicalRegs), initialFree_(physRegs - logicalRegs)
{
    vmmx_assert(physRegs > logicalRegs,
                "physical registers must exceed logical registers");
    // At most physRegs mappings can be pending release at once; one
    // spare slot keeps head != tail unambiguous at full occupancy.
    u32 cap = nextPow2(u32(physRegs) + 1);
    ring_.assign(cap, 0);
    mask_ = cap - 1;
}

} // namespace vmmx
