#include "sim/resources.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vmmx
{

Cycle
WidthGate::pass(Cycle c)
{
    if (c > cur_) {
        cur_ = c;
        used_ = 1;
        return cur_;
    }
    // In-order stage: c <= cur_ means this instruction is ready no later
    // than the stage's current cycle.
    if (used_ < width_) {
        ++used_;
        return cur_;
    }
    ++cur_;
    used_ = 1;
    return cur_;
}

void
WidthGate::reset()
{
    cur_ = 0;
    used_ = 0;
}

Cycle
SlotPool::acquire(Cycle c, Cycle occupancy)
{
    vmmx_assert(!free_.empty(), "slot pool with zero units");
    auto slot = std::min_element(free_.begin(), free_.end());
    Cycle start = std::max(c, *slot);
    *slot = start + std::max<Cycle>(occupancy, 1);
    return start;
}

void
SlotPool::reset()
{
    std::fill(free_.begin(), free_.end(), 0);
}

Cycle
IssueQueueModel::waitForSpace(Cycle c)
{
    while (resident_.size() >= capacity_) {
        Cycle leaves = resident_.top();
        resident_.pop();
        if (leaves >= c)
            c = leaves + 1;
    }
    return c;
}

void
IssueQueueModel::reset()
{
    resident_ = {};
}

RegFreeList::RegFreeList(unsigned physRegs, unsigned logicalRegs)
    : total_(physRegs),
      free_(physRegs - logicalRegs),
      initialFree_(physRegs - logicalRegs)
{
    vmmx_assert(physRegs > logicalRegs,
                "physical registers must exceed logical registers");
}

void
RegFreeList::harvest(Cycle c)
{
    while (!releases_.empty() && releases_.top() <= c) {
        releases_.pop();
        ++free_;
    }
}

Cycle
RegFreeList::allocate(Cycle c)
{
    harvest(c);
    while (free_ == 0) {
        vmmx_assert(!releases_.empty(),
                    "rename deadlock: no free registers and none in flight");
        c = std::max(c, releases_.top());
        harvest(c);
    }
    --free_;
    return c;
}

void
RegFreeList::reset()
{
    releases_ = {};
    free_ = initialFree_;
}

} // namespace vmmx
