/** SSE2 instantiation of the batched step kernel: 2 configurations
 *  per vector op.  Compiled with -msse2 (see CMakeLists.txt); the
 *  whole file vanishes when the build does not define
 *  VMMX_KERNEL_SSE2, so no wide code ever leaks into a build whose
 *  compiler lacks the flag. */

#ifdef VMMX_KERNEL_SSE2

#include "sim/simd_dispatch.hh"
#include "sim/simd_step.hh"

namespace vmmx::simd
{

void
stepBlockSse2(SimBatch &b, const DecodedInst *insts, size_t n)
{
    stepBlockT<Sse2Ops>(b, insts, n);
}

} // namespace vmmx::simd

#endif // VMMX_KERNEL_SSE2
