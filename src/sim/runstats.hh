/**
 * @file
 * Aggregate results of one timed run.
 */

#ifndef VMMX_SIM_RUNSTATS_HH
#define VMMX_SIM_RUNSTATS_HH

#include <array>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace vmmx
{

struct RunStats
{
    Cycle cycles = 0;            ///< total execution time
    u64 instructions = 0;        ///< committed dynamic instructions
    std::array<u64, numInstClasses> instByClass{};

    Cycle scalarCycles = 0;      ///< cycles attributed to scalar regions
    Cycle vectorCycles = 0;      ///< cycles attributed to vector regions

    u64 branches = 0;
    u64 mispredicts = 0;
    u64 memOps = 0;

    u64 renameStallRegs = 0;     ///< renames delayed by register pressure
    u64 renameStallRob = 0;      ///< renames delayed by a full ROB
    u64 renameStallIq = 0;       ///< renames delayed by a full issue queue

    /** Bit-exact comparison (sweep determinism checks). */
    bool operator==(const RunStats &o) const = default;

    double ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }

    u64
    classCount(InstClass c) const
    {
        return instByClass[static_cast<size_t>(c)];
    }

    u64
    vectorInsts() const
    {
        return classCount(InstClass::VMEM) + classCount(InstClass::VARITH);
    }
};

} // namespace vmmx

#endif // VMMX_SIM_RUNSTATS_HH
