#include "sim/simd_dispatch.hh"

#include <atomic>
#include <mutex>

#include "common/env.hh"
#include "common/logging.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace vmmx::simd
{

namespace
{

#if defined(__x86_64__) || defined(__i386__)

/** xgetbv(0): which register state the OS saves/restores.  Only valid
 *  when cpuid reports OSXSAVE; callers check that first. */
u64
xcr0()
{
    u32 eax, edx;
    __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
    return (u64(edx) << 32) | eax;
}

/**
 * The ax_ext probe: a vector extension is usable only when (a) cpuid
 * advertises the feature, and (b) for YMM/ZMM-register families, cpuid
 * advertises OSXSAVE and xgetbv confirms the OS context-switches the
 * wide state (XCR0 bits 1-2 for YMM, plus 5-7 for ZMM/opmask).
 */
u32
probeHost()
{
    u32 mask = 1u << u32(Path::Scalar);

    u32 eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return mask;
    if (edx & (1u << 26)) // SSE2
        mask |= 1u << u32(Path::Sse2);

    bool osxsave = ecx & (1u << 27);
    u64 x = osxsave ? xcr0() : 0;
    bool ymmEnabled = (x & 0x6) == 0x6;
    bool zmmEnabled = (x & 0xe6) == 0xe6;

    u32 eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
    if (!__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7))
        return mask;
    if ((ebx7 & (1u << 5)) && ymmEnabled) // AVX2
        mask |= 1u << u32(Path::Avx2);
    if ((ebx7 & (1u << 16)) && zmmEnabled) // AVX512F
        mask |= 1u << u32(Path::Avx512);
    return mask;
}

#else // non-x86 host: only the scalar reference exists

u32
probeHost()
{
    return 1u << u32(Path::Scalar);
}

#endif

/** Diagnostic for a rejected explicit path request, or "" if usable. */
std::string
rejectReason(Path p)
{
    u32 bit = 1u << u32(p);
    if (!(compiledMask() & bit))
        return std::string("SIMD path '") + pathName(p) +
               "' is not compiled into this binary (compiler lacks the "
               "-m flags); available paths are listed in compiledMask";
    if (!(supportedMask() & bit))
        return std::string("SIMD path '") + pathName(p) +
               "' is not supported by this host CPU (cpuid/xgetbv probe "
               "failed); use VMMX_SIMD=auto or a narrower path";
    return "";
}

/** The pinned/resolved active path; numPaths = "not resolved yet". */
std::atomic<u8> activeOrdinal{numPaths};
std::mutex resolveMu;

/** Resolve `VMMX_SIMD` once: auto/unset -> bestPath(), a real path
 *  name -> that path or a fatal diagnostic, junk -> warn + auto. */
Path
resolveFromEnv()
{
    std::string text = env::str("VMMX_SIMD");
    if (!text.empty()) {
        Path p{};
        bool isAuto = false;
        if (!parsePath(text, p, isAuto)) {
            warn("VMMX_SIMD='%s' is not scalar|sse2|avx2|avx512|auto; "
                 "using auto",
                 text.c_str());
        } else if (!isAuto) {
            std::string why = rejectReason(p);
            if (!why.empty())
                fatal("VMMX_SIMD=%s: %s", text.c_str(), why.c_str());
            return p;
        }
    }
    return bestPath();
}

} // namespace

const char *
pathName(Path p)
{
    switch (p) {
      case Path::Scalar: return "scalar";
      case Path::Sse2: return "sse2";
      case Path::Avx2: return "avx2";
      case Path::Avx512: return "avx512";
    }
    panic("bad SIMD path %d", int(p));
}

unsigned
pathLanes(Path p)
{
    switch (p) {
      case Path::Scalar: return 1;
      case Path::Sse2: return 2;
      case Path::Avx2: return 4;
      case Path::Avx512: return 8;
    }
    panic("bad SIMD path %d", int(p));
}

bool
parsePath(std::string_view text, Path &p, bool &isAuto)
{
    isAuto = false;
    if (text == "auto") {
        isAuto = true;
        return true;
    }
    if (text == "scalar")
        p = Path::Scalar;
    else if (text == "sse2")
        p = Path::Sse2;
    else if (text == "avx2")
        p = Path::Avx2;
    else if (text == "avx512")
        p = Path::Avx512;
    else
        return false;
    return true;
}

u32
compiledMask()
{
    u32 mask = 1u << u32(Path::Scalar);
#ifdef VMMX_KERNEL_SSE2
    mask |= 1u << u32(Path::Sse2);
#endif
#ifdef VMMX_KERNEL_AVX2
    mask |= 1u << u32(Path::Avx2);
#endif
#ifdef VMMX_KERNEL_AVX512
    mask |= 1u << u32(Path::Avx512);
#endif
    return mask;
}

u32
supportedMask()
{
    static const u32 mask = probeHost();
    return mask;
}

Path
bestPath()
{
    u32 usable = compiledMask() & supportedMask();
    for (int p = numPaths - 1; p > 0; --p)
        if (usable & (1u << p))
            return Path(p);
    return Path::Scalar;
}

Path
activePath()
{
    u8 ord = activeOrdinal.load(std::memory_order_acquire);
    if (ord < numPaths)
        return Path(ord);
    std::lock_guard<std::mutex> lock(resolveMu);
    ord = activeOrdinal.load(std::memory_order_acquire);
    if (ord < numPaths)
        return Path(ord);
    Path p = resolveFromEnv();
    activeOrdinal.store(u8(p), std::memory_order_release);
    return p;
}

std::string
setActivePath(Path p)
{
    std::string why = rejectReason(p);
    if (!why.empty())
        return why;
    std::lock_guard<std::mutex> lock(resolveMu);
    activeOrdinal.store(u8(p), std::memory_order_release);
    return "";
}

void
setActivePathAuto()
{
    std::lock_guard<std::mutex> lock(resolveMu);
    activeOrdinal.store(u8(bestPath()), std::memory_order_release);
}

Path
pathFor(size_t batchWidth)
{
    return batchWidth >= 2 ? activePath() : Path::Scalar;
}

StepFn
stepFn(Path p)
{
    switch (p) {
      case Path::Scalar:
        return &stepBlockScalar;
#ifdef VMMX_KERNEL_SSE2
      case Path::Sse2:
        return &stepBlockSse2;
#endif
#ifdef VMMX_KERNEL_AVX2
      case Path::Avx2:
        return &stepBlockAvx2;
#endif
#ifdef VMMX_KERNEL_AVX512
      case Path::Avx512:
        return &stepBlockAvx512;
#endif
      default:
        panic("SIMD path '%s' is not compiled into this binary",
              pathName(p));
    }
}

} // namespace vmmx::simd
