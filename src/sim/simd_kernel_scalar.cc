/** The scalar reference instantiation of the batched step kernel --
 *  always compiled, the bit-identity baseline for every wider path. */

#include "sim/simd_dispatch.hh"
#include "sim/simd_step.hh"

namespace vmmx::simd
{

void
stepBlockScalar(SimBatch &b, const DecodedInst *insts, size_t n)
{
    stepBlockT<ScalarOps>(b, insts, n);
}

} // namespace vmmx::simd
