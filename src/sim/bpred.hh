/**
 * @file
 * gshare conditional-branch predictor: a table of 2-bit saturating
 * counters indexed by (static site hash XOR global history).
 */

#ifndef VMMX_SIM_BPRED_HH
#define VMMX_SIM_BPRED_HH

#include <vector>

#include "common/types.hh"

namespace vmmx
{

class BranchPredictor
{
  public:
    explicit BranchPredictor(unsigned entries);

    /**
     * Predict and update for one dynamic branch.
     * @param staticId static branch site
     * @param taken actual outcome from the trace
     * @return true when the prediction matched the outcome.
     */
    bool predict(u32 staticId, bool taken);

    void reset();

    u64 lookups() const { return lookups_; }
    u64 mispredicts() const { return mispredicts_; }

  private:
    std::vector<u8> table_;
    u32 mask_;
    u32 history_ = 0;
    u64 lookups_ = 0;
    u64 mispredicts_ = 0;
};

} // namespace vmmx

#endif // VMMX_SIM_BPRED_HH
