#include "sim/sim_batch.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vmmx
{

SimBatch::SimBatch(std::span<SimContext *const> ctxs)
{
    lanes = ctxs.size();
    padded = (lanes + padLanes - 1) / padLanes * padLanes;
    ctx.assign(ctxs.begin(), ctxs.end());

    auto zeroed = [&](std::vector<u64> &v) { v.assign(padded, 0); };
    zeroed(gateW);
    zeroed(frontDepth);
    zeroed(penalty);
    zeroed(lanesPerFu);
    zeroed(fCur);
    zeroed(fUsed);
    zeroed(rCur);
    zeroed(rUsed);
    zeroed(cCur);
    zeroed(cUsed);
    zeroed(redirect);
    zeroed(lastCommit);
    zeroed(iqCap);
    zeroed(iqOcc);
    zeroed(robPos);
    zeroed(robSize);
    zeroed(stallRob);
    zeroed(stallIq);
    zeroed(stallRegs);
    zeroed(mispredicts);
    zeroed(scalarCyc);
    zeroed(vectorCyc);
    zeroed(rn);
    zeroed(ready);
    zeroed(issue);
    zeroed(done);
    zeroed(cc);
    zeroed(occ);
    zeroed(robFree);
    zeroed(t0);
    zeroed(t1);

    regReady.assign(decodedReadySlots * padded, 0);
    lanesOcc.assign(17 * padded, 0);
    robRing.assign(padded, nullptr);

    size_t maxIq = 0, maxInt = 0, maxFp = 0, maxSimd = 0, maxIssue = 0;
    for (size_t l = 0; l < lanes; ++l) {
        const CoreParams &p = ctx[l]->params();
        maxIq = std::max<size_t>(maxIq, p.iqSize);
        maxInt = std::max<size_t>(maxInt, p.intFus);
        maxFp = std::max<size_t>(maxFp, p.fpFus);
        maxSimd = std::max<size_t>(maxSimd, p.simdFus);
        maxIssue = std::max<size_t>(maxIssue, p.simdIssue);
    }
    iqRows = maxIq;
    iqSlots.assign(iqRows * padded, kInf);

    auto initPool = [&](Pool &pool, size_t rows, auto slotsOf) {
        pool.rows = rows;
        pool.slots.assign(rows * padded, kInf);
        // A lane's real slots start free at cycle 0; slots it does not
        // have keep the sentinel so no min scan ever selects them.
        for (size_t l = 0; l < lanes; ++l) {
            size_t n = slotsOf(ctx[l]->params());
            for (size_t s = 0; s < n; ++s)
                pool.slots[s * padded + l] = 0;
        }
    };
    initPool(intPool, maxInt, [](const CoreParams &p) { return p.intFus; });
    initPool(fpPool, maxFp, [](const CoreParams &p) { return p.fpFus; });
    initPool(simdPool, maxSimd,
             [](const CoreParams &p) { return p.simdFus; });
    initPool(simdIssuePool, maxIssue,
             [](const CoreParams &p) { return p.simdIssue; });

    bpredShared = true;
    for (size_t l = 0; l < lanes; ++l) {
        SimContext &sc = *ctx[l];
        const CoreParams &p = sc.params();
        gateW[l] = p.way;
        frontDepth[l] = p.frontDepth;
        penalty[l] = p.mispredictPenalty;
        lanesPerFu[l] = p.lanesPerFu;
        iqCap[l] = p.iqSize;
        for (size_t vl = 0; vl < sc.lanesOcc_.size(); ++vl)
            lanesOcc[vl * padded + l] = sc.lanesOcc_[vl];
        robRing[l] = sc.robRing_.data();
        robPos[l] = sc.robPos_;
        robSize[l] = sc.robRing_.size();
        if (p.bpredEntries != ctx[0]->params().bpredEntries)
            bpredShared = false;
    }
    // Pad lanes ride along in every vector op but are never read back;
    // give them a benign gate width so their state stays small.
    for (size_t l = lanes; l < padded; ++l)
        gateW[l] = 1;
}

void
SimBatch::finish()
{
    for (size_t l = 0; l < lanes; ++l) {
        SimContext &sc = *ctx[l];
        sc.lastCommit_ = lastCommit[l];
        sc.fetchRedirect_ = redirect[l];
        sc.robPos_ = u32(robPos[l]);
        RunStats &st = sc.stats_;
        st.instructions = instructions;
        st.branches = branches;
        st.memOps = memOps;
        st.instByClass = instByClass;
        st.mispredicts = mispredicts[l];
        st.renameStallRob = stallRob[l];
        st.renameStallIq = stallIq[l];
        st.renameStallRegs = stallRegs[l];
        st.scalarCycles = scalarCyc[l];
        st.vectorCycles = vectorCyc[l];
    }
}

} // namespace vmmx
