/**
 * @file
 * Structure-of-arrays view of a batch of SimContexts, the state the
 * host-SIMD step kernels (sim/simd_step.hh) operate on.
 *
 * The batched runBatch() used to advance configurations context-major:
 * every context replayed a decoded block to completion before the next
 * context touched it.  The SoA restructure turns that inside out: the
 * per-config mutable timing state the inner step touches every record
 * -- the width gates, the ready table, ROB heads, issue-queue and
 * functional-unit pool slots, the stall counters -- is hoisted into
 * parallel u64 arrays indexed by configuration ("lane"), so one
 * DecodedInst advances all N configurations with vector arithmetic:
 * cycle compares, maxes and blends across lanes.
 *
 * Layout rules the kernels rely on:
 *  - every per-lane array is padded to a multiple of 8 lanes (the
 *    widest kernel) so any vector width can stream it without tail
 *    handling; pad lanes hold inert values and are never read back,
 *  - multi-slot structures (ready table, IQ, pools) are slot-major,
 *    `[slot * padded + lane]`, so one slot across all lanes is one
 *    contiguous vector load,
 *  - IQ and pool slot arrays are sized to the widest lane; slots a
 *    lane does not have hold the kInf sentinel, which no min scan can
 *    select (real cycle values stay far below it),
 *  - the IQ keeps the scalar model's compact-array semantics per lane:
 *    rows [0, occ) hold resident issue cycles in the exact order the
 *    flat-vector model would, rows [occ, rows) hold kInf.
 *
 * What stays scalar per lane -- the data-dependent tails vectorization
 * cannot reach: free-list FIFO bookkeeping, memory-system accesses and
 * store-set disambiguation, branch-predictor updates (skipped for
 * lanes 1..N-1 when every lane has the same predictor geometry, since
 * prediction inputs are trace-determined and the tables then evolve
 * identically), and the O(1) writebacks after each vector min scan.
 * These go through the inline helpers below, which reach into the
 * borrowed SimContexts (SimBatch is a friend).
 *
 * Statistics that are trace-determined (instruction, branch, mem-op
 * and class counts -- identical for every lane by construction) are
 * accumulated once per batch and fanned out in finish(), which writes
 * every lane's results back into its SimContext so finish()/collect()
 * work exactly as on the serial path.
 */

#ifndef VMMX_SIM_SIM_BATCH_HH
#define VMMX_SIM_SIM_BATCH_HH

#include <array>
#include <span>
#include <vector>

#include "sim/sim_context.hh"

namespace vmmx
{

struct SimBatch
{
    /** Sentinel for slots a lane does not have: larger than any cycle
     *  value a run can reach, far below 2^63 so the signed vector
     *  compare tricks stay exact. */
    static constexpr u64 kInf = u64(1) << 62;

    /** Lane padding: the widest kernel's vector width. */
    static constexpr size_t padLanes = 8;

    /** Hoist the (freshly reset) contexts into SoA form. */
    explicit SimBatch(std::span<SimContext *const> ctxs);

    /** Write every lane's results back into its SimContext (stats,
     *  commit frontier, ROB head) so SimContext::finish() returns the
     *  same RunStats the serial path would. */
    void finish();

    size_t lanes = 0;  ///< live configurations
    size_t padded = 0; ///< lanes rounded up to a multiple of padLanes

    std::vector<SimContext *> ctx;

    // ---- per-lane parameters (u64 so vector ops load them directly)
    std::vector<u64> gateW;      ///< way: fetch = rename = commit width
    std::vector<u64> frontDepth;
    std::vector<u64> penalty;    ///< mispredict redirect cycles
    std::vector<u64> lanesPerFu; ///< for the vl > 16 occupancy divide

    // ---- per-lane pipeline state (WidthGate cur/used triples) ----
    std::vector<u64> fCur, fUsed; ///< fetch gate
    std::vector<u64> rCur, rUsed; ///< rename gate
    std::vector<u64> cCur, cUsed; ///< commit gate
    std::vector<u64> redirect;    ///< fetchRedirect_
    std::vector<u64> lastCommit;

    /** Ready table, slot-major: decodedReadySlots rows x padded. */
    std::vector<u64> regReady;
    /** ceil(vl / lanesPerFu) table, slot-major: 17 rows x padded. */
    std::vector<u64> lanesOcc;

    // ---- issue queue (slot-major, compact per lane) ----
    size_t iqRows = 0;      ///< widest lane's capacity
    std::vector<u64> iqCap; ///< per-lane capacity
    std::vector<u64> iqOcc; ///< per-lane residency
    std::vector<u64> iqSlots;

    // ---- functional-unit pools (slot-major) ----
    struct Pool
    {
        size_t rows = 0; ///< widest lane's unit count
        std::vector<u64> slots;
    };
    Pool intPool, fpPool, simdPool, simdIssuePool;

    // ---- ROB ring (storage stays inside each context) ----
    std::vector<Cycle *> robRing;
    std::vector<u64> robPos, robSize;

    // ---- per-lane statistics ----
    std::vector<u64> stallRob, stallIq, stallRegs, mispredicts;
    std::vector<u64> scalarCyc, vectorCyc;

    // ---- trace-determined counters (identical for every lane) ----
    u64 instructions = 0;
    u64 branches = 0;
    u64 memOps = 0;
    std::array<u64, numInstClasses> instByClass{};
    /** Every lane has the same predictor geometry, so predicting on
     *  lane 0 stands for all of them (inputs are trace-determined). */
    bool bpredShared = false;

    // ---- per-record scratch, padded like the state arrays ----
    std::vector<u64> rn, ready, issue, done, cc, occ, robFree, t0, t1;

    // ---- scalar sub-phases reaching into the borrowed contexts ----

    Cycle
    flAllocate(size_t l, u8 cls, Cycle c)
    {
        return ctx[l]->freeLists_[cls].allocate(c);
    }

    void
    flRelease(size_t l, u8 cls, Cycle commitCycle)
    {
        ctx[l]->freeLists_[cls].release(commitCycle);
    }

    bool
    predictLane(size_t l, u32 staticId, bool taken)
    {
        return ctx[l]->bpred_.predict(staticId, taken);
    }

    /** The whole Mem-FU case for one lane: disambiguation, the cache
     *  access, store-window push.  Reads ready[l], writes issue[l] and
     *  done[l]. */
    void
    memAccess(size_t l, const DecodedInst &inst)
    {
        SimContext &sc = *ctx[l];
        Cycle is = ready[l];
        if (inst.has(DecodedInst::kLoad))
            is = sc.disambiguate(inst.lo, inst.hi, is);
        bool isWrite = inst.has(DecodedInst::kStore);
        Cycle dn;
        if (inst.has(DecodedInst::kVecMem)) {
            dn = sc.mem_->vectorAccess(inst.addr, inst.rowBytes,
                                       inst.stride, inst.rows, isWrite,
                                       is);
        } else {
            dn = sc.mem_->scalarAccess(inst.addr, inst.rowBytes, isWrite,
                                       is);
        }
        if (isWrite)
            sc.pushStore(inst.lo, inst.hi, dn);
        issue[l] = is;
        done[l] = dn;
    }
};

} // namespace vmmx

#endif // VMMX_SIM_SIM_BATCH_HH
