/**
 * @file
 * The batched step kernel, written once against a tiny vector-ops
 * trait and instantiated per host ISA (see sim/simd_dispatch.hh for
 * how an instantiation is chosen at runtime).
 *
 * stepBlockT() advances every lane of a SimBatch by one DecodedInst at
 * a time, replicating SimContext::step() phase for phase.  All cycle
 * arithmetic is unsigned 64-bit adds, subtracts, compares, maxes and
 * blends with no lane interaction, so every instantiation is
 * bit-identical to the scalar reference by construction -- the only
 * differences between paths are how many lanes one vector op covers.
 *
 * Exactness of the compare tricks: cycle values are bounded far below
 * 2^62 (kInf is the pool sentinel), so unsigned u64 ordering coincides
 * with signed ordering and the SSE2 sign-of-difference / AVX2 signed-
 * compare idioms are exact.  The min scans reproduce the scalar
 * models' first-strict-minimum scan order, so tie-breaking is
 * identical, not just equivalent.
 *
 * This header is included only by the per-ISA kernel translation
 * units, each compiled with the matching -m flags; the ISA-specific
 * ops structs are guarded by the compiler's own feature macros so the
 * header itself stays portable.
 */

#ifndef VMMX_SIM_SIMD_STEP_HH
#define VMMX_SIM_SIMD_STEP_HH

#include <algorithm>

#include "common/logging.hh"
#include "sim/sim_batch.hh"

#if defined(__SSE2__) || defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace vmmx::simd
{

/** Reference ops: one configuration per "vector" op.  The kernel
 *  instantiated with these is the scalar dispatch path every wider
 *  path must match bit for bit. */
struct ScalarOps
{
    static constexpr size_t W = 1;
    using Vec = u64;
    using Mask = bool;

    static Vec load(const u64 *p) { return *p; }
    static void store(u64 *p, Vec v) { *p = v; }
    static Vec bcast(u64 x) { return x; }
    static Vec add(Vec a, Vec b) { return a + b; }
    static Vec sub(Vec a, Vec b) { return a - b; }
    static Mask gtU(Vec a, Vec b) { return a > b; }
    static Mask ltU(Vec a, Vec b) { return a < b; }
    static Vec max(Vec a, Vec b) { return a > b ? a : b; }
    static Vec blend(Mask m, Vec a, Vec b) { return m ? a : b; }
    static Vec addWhere(Vec v, Mask m) { return v + (m ? 1 : 0); }
    static Mask andM(Mask a, Mask b) { return a && b; }
    static Mask notM(Mask a) { return !a; }
};

#ifdef __SSE2__
/** Two lanes per op.  SSE2 has 64-bit add/sub but no 64-bit compare;
 *  a > b is materialized as the sign of (b - a), exact for values
 *  below 2^62 (ours).  Masks are all-ones-per-lane vectors, so
 *  "+1 where mask" is a subtract of the mask. */
struct Sse2Ops
{
    static constexpr size_t W = 2;
    using Vec = __m128i;
    using Mask = __m128i;

    static Vec load(const u64 *p)
    {
        return _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    }
    static void store(u64 *p, Vec v)
    {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
    }
    static Vec bcast(u64 x) { return _mm_set1_epi64x(s64(x)); }
    static Vec add(Vec a, Vec b) { return _mm_add_epi64(a, b); }
    static Vec sub(Vec a, Vec b) { return _mm_sub_epi64(a, b); }
    static Mask gtU(Vec a, Vec b)
    {
        __m128i d = _mm_sub_epi64(b, a);
        d = _mm_shuffle_epi32(d, _MM_SHUFFLE(3, 3, 1, 1));
        return _mm_srai_epi32(d, 31);
    }
    static Mask ltU(Vec a, Vec b) { return gtU(b, a); }
    static Vec max(Vec a, Vec b) { return blend(gtU(a, b), a, b); }
    static Vec blend(Mask m, Vec a, Vec b)
    {
        return _mm_or_si128(_mm_and_si128(m, a), _mm_andnot_si128(m, b));
    }
    static Vec addWhere(Vec v, Mask m) { return _mm_sub_epi64(v, m); }
    static Mask andM(Mask a, Mask b) { return _mm_and_si128(a, b); }
    static Mask notM(Mask a)
    {
        return _mm_xor_si128(a, _mm_set1_epi32(-1));
    }
};
#endif // __SSE2__

#ifdef __AVX2__
/** Four lanes per op.  The signed 64-bit compare is exact for values
 *  below 2^62. */
struct Avx2Ops
{
    static constexpr size_t W = 4;
    using Vec = __m256i;
    using Mask = __m256i;

    static Vec load(const u64 *p)
    {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
    }
    static void store(u64 *p, Vec v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }
    static Vec bcast(u64 x) { return _mm256_set1_epi64x(s64(x)); }
    static Vec add(Vec a, Vec b) { return _mm256_add_epi64(a, b); }
    static Vec sub(Vec a, Vec b) { return _mm256_sub_epi64(a, b); }
    static Mask gtU(Vec a, Vec b) { return _mm256_cmpgt_epi64(a, b); }
    static Mask ltU(Vec a, Vec b) { return _mm256_cmpgt_epi64(b, a); }
    static Vec max(Vec a, Vec b) { return blend(gtU(a, b), a, b); }
    static Vec blend(Mask m, Vec a, Vec b)
    {
        return _mm256_blendv_epi8(b, a, m);
    }
    static Vec addWhere(Vec v, Mask m) { return _mm256_sub_epi64(v, m); }
    static Mask andM(Mask a, Mask b) { return _mm256_and_si256(a, b); }
    static Mask notM(Mask a)
    {
        return _mm256_xor_si256(a, _mm256_set1_epi32(-1));
    }
};
#endif // __AVX2__

#ifdef __AVX512F__
/** Eight lanes per op with real predicate masks and native unsigned
 *  64-bit compares and maxes. */
struct Avx512Ops
{
    static constexpr size_t W = 8;
    using Vec = __m512i;
    using Mask = __mmask8;

    static Vec load(const u64 *p) { return _mm512_loadu_si512(p); }
    static void store(u64 *p, Vec v) { _mm512_storeu_si512(p, v); }
    static Vec bcast(u64 x) { return _mm512_set1_epi64(s64(x)); }
    static Vec add(Vec a, Vec b) { return _mm512_add_epi64(a, b); }
    static Vec sub(Vec a, Vec b) { return _mm512_sub_epi64(a, b); }
    static Mask gtU(Vec a, Vec b) { return _mm512_cmpgt_epu64_mask(a, b); }
    static Mask ltU(Vec a, Vec b) { return _mm512_cmplt_epu64_mask(a, b); }
    static Vec max(Vec a, Vec b) { return _mm512_max_epu64(a, b); }
    static Vec blend(Mask m, Vec a, Vec b)
    {
        return _mm512_mask_blend_epi64(m, b, a);
    }
    static Vec addWhere(Vec v, Mask m)
    {
        return _mm512_mask_add_epi64(v, m, v, _mm512_set1_epi64(1));
    }
    static Mask andM(Mask a, Mask b) { return Mask(a & b); }
    static Mask notM(Mask a) { return Mask(~a); }
};
#endif // __AVX512F__

/**
 * WidthGate::pass() across one chunk of lanes: the three cases (ahead
 * of the stage / same cycle with width left / stage full) become two
 * masks and two blends.  State is updated in place; @return the pass
 * cycle (>= @p cIn in every lane).
 */
template <class V>
inline typename V::Vec
gatePass(u64 *cur, u64 *used, const u64 *width, typename V::Vec cIn)
{
    auto curV = V::load(cur);
    auto usedV = V::load(used);
    auto one = V::bcast(1);
    auto gt = V::gtU(cIn, curV);
    auto space = V::ltU(usedV, V::load(width));
    auto ret =
        V::blend(gt, cIn, V::blend(space, curV, V::add(curV, one)));
    auto keep = V::andM(V::notM(gt), space);
    V::store(cur, ret);
    V::store(used, V::blend(keep, V::add(usedV, one), one));
    return ret;
}

/**
 * SlotPool::acquire() minus the occupancy writeback: a first-strict-
 * minimum scan over the pool's slot rows per lane, then
 * issue = max(cIn, earliest free).  Leaves the acquired start cycles
 * in b.issue and the winning slot index per lane in b.t1; the caller
 * writes the occupancy back (it can differ per lane).
 */
template <class V>
inline void
poolAcquire(SimBatch &b, const SimBatch::Pool &pool, const u64 *cIn)
{
    const size_t P = b.padded;
    for (size_t c = 0; c < P; c += V::W) {
        auto bestV = V::bcast(SimBatch::kInf);
        auto bestI = V::bcast(0);
        for (size_t r = 0; r < pool.rows; ++r) {
            auto v = V::load(&pool.slots[r * P + c]);
            auto lt = V::ltU(v, bestV);
            bestV = V::blend(lt, v, bestV);
            bestI = V::blend(lt, V::bcast(r), bestI);
        }
        V::store(&b.issue[c], V::max(V::load(&cIn[c]), bestV));
        V::store(&b.t1[c], bestI);
    }
}

/** The occupancy writeback after poolAcquire(): occupy each lane's
 *  winning slot until issue + max(occ, 1).  @p occArr overrides
 *  @p occConst per lane when non-null. */
inline void
poolWriteback(SimBatch &b, SimBatch::Pool &pool, const u64 *occArr,
              u64 occConst)
{
    const size_t P = b.padded;
    for (size_t l = 0; l < b.lanes; ++l) {
        u64 o = occArr ? occArr[l] : occConst;
        if (o < 1)
            o = 1;
        pool.slots[size_t(b.t1[l]) * P + l] = b.issue[l] + o;
    }
}

/**
 * Advance every lane of @p b through @p n decoded records.  The phase
 * order is SimContext::step()'s, record for record; trace-determined
 * branches (FU type, flags, operand lists) are taken once per record
 * outside the lane loops.
 */
template <class V>
void
stepBlockT(SimBatch &b, const DecodedInst *insts, size_t n)
{
    const size_t P = b.padded;
    const size_t L = b.lanes;
    const auto one = V::bcast(1);

    for (size_t k = 0; k < n; ++k) {
        const DecodedInst &inst = insts[k];
        const bool takesIq = inst.has(DecodedInst::kTakesIq);
        const bool hasDst = inst.dstCls != DecodedInst::noDst;

        // ---- fetch ----
        for (size_t c = 0; c < P; c += V::W) {
            auto fetch = gatePass<V>(&b.fCur[c], &b.fUsed[c], &b.gateW[c],
                                     V::load(&b.redirect[c]));
            V::store(&b.rn[c],
                     V::add(fetch, V::load(&b.frontDepth[c])));
        }

        // ---- ROB space ----
        for (size_t l = 0; l < L; ++l)
            b.robFree[l] = b.robRing[l][b.robPos[l]];
        for (size_t c = 0; c < P; c += V::W) {
            auto rnV = V::load(&b.rn[c]);
            auto rf1 = V::add(V::load(&b.robFree[c]), one);
            auto st = V::gtU(rf1, rnV);
            V::store(&b.rn[c], V::blend(st, rf1, rnV));
            V::store(&b.stallRob[c],
                     V::addWhere(V::load(&b.stallRob[c]), st));
        }

        // ---- issue-queue space ----
        if (takesIq) {
            bool anyFull = false;
            for (size_t l = 0; l < L; ++l)
                anyFull |= b.iqOcc[l] == b.iqCap[l];
            if (anyFull) {
                // One min scan serves every full lane; lanes with room
                // ignore the result, exactly as their scalar model
                // would not have scanned at all.
                for (size_t c = 0; c < P; c += V::W) {
                    auto bestV = V::bcast(SimBatch::kInf);
                    auto bestI = V::bcast(0);
                    for (size_t r = 0; r < b.iqRows; ++r) {
                        auto v = V::load(&b.iqSlots[r * P + c]);
                        auto lt = V::ltU(v, bestV);
                        bestV = V::blend(lt, v, bestV);
                        bestI = V::blend(lt, V::bcast(r), bestI);
                    }
                    V::store(&b.t0[c], bestV);
                    V::store(&b.t1[c], bestI);
                }
                for (size_t l = 0; l < L; ++l) {
                    if (b.iqOcc[l] != b.iqCap[l])
                        continue;
                    size_t m = size_t(b.t1[l]);
                    u64 leaves = b.t0[l];
                    size_t back = size_t(--b.iqOcc[l]);
                    b.iqSlots[m * P + l] = b.iqSlots[back * P + l];
                    b.iqSlots[back * P + l] = SimBatch::kInf;
                    if (leaves >= b.rn[l]) {
                        b.rn[l] = leaves + 1;
                        ++b.stallIq[l];
                    }
                }
            }
        }

        // ---- physical destination register ----
        if (hasDst) {
            for (size_t l = 0; l < L; ++l) {
                Cycle r = b.flAllocate(l, inst.dstCls, b.rn[l]);
                if (r > b.rn[l]) {
                    b.rn[l] = r;
                    ++b.stallRegs[l];
                }
            }
        }

        // ---- rename gate + operand readiness ----
        const bool readsDst = inst.has(DecodedInst::kReadsDst);
        for (size_t c = 0; c < P; c += V::W) {
            auto rnV = gatePass<V>(&b.rCur[c], &b.rUsed[c], &b.gateW[c],
                                   V::load(&b.rn[c]));
            V::store(&b.rn[c], rnV);
            auto ready = V::add(rnV, one);
            for (unsigned s = 0; s < inst.nSrcs; ++s)
                ready = V::max(
                    ready,
                    V::load(&b.regReady[size_t(inst.srcReg[s]) * P + c]));
            if (readsDst)
                ready = V::max(
                    ready,
                    V::load(&b.regReady[size_t(inst.dstReg) * P + c]));
            V::store(&b.ready[c], ready);
        }

        // ---- issue and execute ----
        switch (static_cast<FuType>(inst.fu)) {
          case FuType::IntAlu:
          case FuType::IntMul: {
            poolAcquire<V>(b, b.intPool, b.ready.data());
            poolWriteback(b, b.intPool, nullptr,
                          FuType(inst.fu) == FuType::IntMul ? inst.mulOcc
                                                            : 1);
            auto lat = V::bcast(inst.latency);
            for (size_t c = 0; c < P; c += V::W)
                V::store(&b.done[c], V::add(V::load(&b.issue[c]), lat));
            break;
          }
          case FuType::Fp: {
            poolAcquire<V>(b, b.fpPool, b.ready.data());
            poolWriteback(b, b.fpPool, nullptr, 1);
            auto lat = V::bcast(inst.latency);
            for (size_t c = 0; c < P; c += V::W)
                V::store(&b.done[c], V::add(V::load(&b.issue[c]), lat));
            break;
          }
          case FuType::Simd: {
            if (inst.vl == 0) {
                std::fill_n(b.occ.data(), P, u64(1));
            } else if (inst.transp) {
                std::fill_n(b.occ.data(), P, u64(inst.vl));
            } else if (inst.vl <= 16) {
                const u64 *row = &b.lanesOcc[size_t(inst.vl) * P];
                for (size_t c = 0; c < P; c += V::W)
                    V::store(&b.occ[c], V::load(&row[c]));
            } else {
                for (size_t l = 0; l < L; ++l)
                    b.occ[l] = (inst.vl + b.lanesPerFu[l] - 1) /
                               b.lanesPerFu[l];
            }
            poolAcquire<V>(b, b.simdIssuePool, b.ready.data());
            poolWriteback(b, b.simdIssuePool, nullptr, 1);
            poolAcquire<V>(b, b.simdPool, b.issue.data());
            poolWriteback(b, b.simdPool, b.occ.data(), 1);
            // done = issue + occ - 1 + latency (occ >= 1, so the
            // unsigned wrap of latency - 1 cancels exactly).
            auto latM1 = V::bcast(u64(inst.latency) - 1);
            for (size_t c = 0; c < P; c += V::W)
                V::store(&b.done[c],
                         V::add(V::add(V::load(&b.issue[c]),
                                       V::load(&b.occ[c])),
                                latM1));
            break;
          }
          case FuType::Mem: {
            for (size_t l = 0; l < L; ++l)
                b.memAccess(l, inst);
            ++b.memOps;
            break;
          }
          case FuType::None: {
            for (size_t c = 0; c < P; c += V::W) {
                auto is = V::add(V::load(&b.rn[c]), one);
                V::store(&b.issue[c], is);
                V::store(&b.done[c], is);
            }
            break;
          }
          default:
            panic("unknown FU type");
        }

        if (takesIq) {
            for (size_t l = 0; l < L; ++l)
                b.iqSlots[size_t(b.iqOcc[l]++) * P + l] = b.issue[l];
        }

        // ---- writeback ----
        if (hasDst) {
            u64 *row = &b.regReady[size_t(inst.dstReg) * P];
            for (size_t c = 0; c < P; c += V::W)
                V::store(&row[c], V::load(&b.done[c]));
        }

        // ---- branch resolution ----
        if (inst.has(DecodedInst::kBranch)) {
            ++b.branches;
            if (inst.has(DecodedInst::kCondBr)) {
                const bool taken = inst.has(DecodedInst::kTaken);
                if (b.bpredShared) {
                    if (!b.predictLane(0, inst.staticId, taken)) {
                        for (size_t l = 0; l < L; ++l)
                            ++b.mispredicts[l];
                        for (size_t c = 0; c < P; c += V::W) {
                            auto r = V::add(V::load(&b.done[c]),
                                            V::load(&b.penalty[c]));
                            V::store(&b.redirect[c],
                                     V::max(V::load(&b.redirect[c]), r));
                        }
                    }
                } else {
                    for (size_t l = 0; l < L; ++l) {
                        if (b.predictLane(l, inst.staticId, taken))
                            continue;
                        ++b.mispredicts[l];
                        Cycle r = b.done[l] + b.penalty[l];
                        if (r > b.redirect[l])
                            b.redirect[l] = r;
                    }
                }
            }
        }

        // ---- commit (in order) ----
        u64 *cyc =
            inst.region != 0 ? b.vectorCyc.data() : b.scalarCyc.data();
        for (size_t c = 0; c < P; c += V::W) {
            auto lc = V::load(&b.lastCommit[c]);
            auto ccV = V::max(V::add(V::load(&b.done[c]), one), lc);
            ccV = gatePass<V>(&b.cCur[c], &b.cUsed[c], &b.gateW[c], ccV);
            V::store(&b.cc[c], ccV);
            V::store(&b.lastCommit[c], ccV);
            V::store(&cyc[c], V::add(V::load(&cyc[c]), V::sub(ccV, lc)));
        }

        if (hasDst) {
            for (size_t l = 0; l < L; ++l)
                b.flRelease(l, inst.dstCls, b.cc[l]);
        }

        for (size_t l = 0; l < L; ++l) {
            b.robRing[l][b.robPos[l]] = b.cc[l];
            if (++b.robPos[l] == b.robSize[l])
                b.robPos[l] = 0;
        }

        ++b.instructions;
        ++b.instByClass[inst.clsIdx];
    }
}

} // namespace vmmx::simd

#endif // VMMX_SIM_SIMD_STEP_HH
