#include "sim/sim_context.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/sim_batch.hh"
#include "sim/simd_dispatch.hh"

namespace vmmx
{

namespace
{

/** Records decoded per block.  Context state (register tables, ROB and
 *  store rings, cache tags) is large enough that switching contexts too
 *  often costs more than re-streaming decoded records, so blocks are
 *  sized for a 2 MiB decoded footprint: measured fastest on both short
 *  kernel traces (single block) and multi-MiB app traces, while
 *  bounding the scratch buffer for arbitrarily long traces.  The
 *  pre-decoded (DecodedStream) overload windows its pass with the same
 *  constant so both shapes step contexts in the same block pattern. */
constexpr size_t decodeBlock = 32768;

} // namespace

SimContext::SimContext(const CoreParams &params, MemorySystem *mem)
    : params_(params),
      mem_(mem),
      fetchGate_(params.way),
      renameGate_(params.way),
      commitGate_(params.way),
      iq_(params.iqSize),
      intPool_(params.intFus),
      fpPool_(params.fpFus),
      simdPool_(params.simdFus),
      simdIssuePool_(params.simdIssue),
      bpred_(params.bpredEntries),
      robRing_(params.robSize, 0)
{
    vmmx_assert(mem_ != nullptr, "simulation context needs a memory system");
    stores_.reserve(params.storeWindow);

    freeLists_.reserve(numRegClasses);
    freeLists_.emplace_back(params.physInt, params.logicalInt);
    freeLists_.emplace_back(params.physFp, params.logicalFp);
    freeLists_.emplace_back(params.physSimd, params.logicalSimd);
    freeLists_.emplace_back(params.physAcc, params.logicalAcc);

    static_assert(readySlots == decodedReadySlots,
                  "ready table must match the decoded slot numbering");
    regReady_.fill(0);

    vmmx_assert(params.lanesPerFu > 0, "lanesPerFu must be positive");
    lanesOcc_[0] = 1;
    for (u16 vl = 1; vl <= 16; ++vl)
        lanesOcc_[vl] = u8((vl + params.lanesPerFu - 1) / params.lanesPerFu);
}

void
SimContext::reset()
{
    stats_ = RunStats{};
    fetchGate_.reset();
    renameGate_.reset();
    commitGate_.reset();
    iq_.reset();
    intPool_.reset();
    fpPool_.reset();
    simdPool_.reset();
    simdIssuePool_.reset();
    bpred_.reset();
    for (auto &fl : freeLists_)
        fl.reset();
    regReady_.fill(0);
    std::fill(robRing_.begin(), robRing_.end(), 0);
    resetStores();
    robPos_ = 0;
    lastCommit_ = 0;
    fetchRedirect_ = 0;
}

void
SimContext::pushStore(Addr lo, Addr hi, Cycle done)
{
    if (params_.storeWindow == 0)
        return;
    if (stores_.size() < params_.storeWindow) {
        stores_.push_back({lo, hi, done});
    } else {
        stores_[storeHead_] = {lo, hi, done};
        if (++storeHead_ == stores_.size())
            storeHead_ = 0;
    }
    storesMaxDone_ = std::max(storesMaxDone_, done);
    storesLoMin_ = std::min(storesLoMin_, lo);
    storesHiMax_ = std::max(storesHiMax_, hi);
}

Cycle
SimContext::disambiguate(Addr lo, Addr hi, Cycle issue)
{
    // The bounds over-approximate the live window, so a miss here proves
    // no overlapping store is still in flight.
    if (stores_.empty() || issue >= storesMaxDone_ ||
        hi <= storesLoMin_ || lo >= storesHiMax_) {
        return issue;
    }

    // The final issue cycle is max(issue, done of overlapping in-flight
    // stores) -- order independent, so the ring is walked linearly while
    // the bounds are re-tightened to the exact live set.
    Cycle maxDone = 0;
    Addr loMin = ~Addr(0);
    Addr hiMax = 0;
    for (const PendingStore &st : stores_) {
        if (st.done > issue && st.lo < hi && lo < st.hi)
            issue = st.done;
        maxDone = std::max(maxDone, st.done);
        loMin = std::min(loMin, st.lo);
        hiMax = std::max(hiMax, st.hi);
    }
    storesMaxDone_ = maxDone;
    storesLoMin_ = loMin;
    storesHiMax_ = hiMax;
    return issue;
}

void
SimContext::resetStores()
{
    stores_.clear();
    storeHead_ = 0;
    storesMaxDone_ = 0;
    storesLoMin_ = ~Addr(0);
    storesHiMax_ = 0;
}

void
SimContext::step(const DecodedInst &inst)
{
    // ---- fetch ----
    Cycle fetch = fetchGate_.pass(fetchRedirect_);

    // ---- rename / dispatch ----
    Cycle rn = fetch + params_.frontDepth;

    // ROB space: the instruction robSize places earlier must have
    // committed.
    Cycle robFree = robRing_[robPos_];
    if (robFree + 1 > rn) {
        rn = robFree + 1;
        ++stats_.renameStallRob;
    }

    // Issue-queue space (VSETVL folds into rename and takes no entry).
    bool takesIq = inst.has(DecodedInst::kTakesIq);
    if (takesIq) {
        Cycle iqReady = iq_.waitForSpace(rn);
        if (iqReady > rn) {
            rn = iqReady;
            ++stats_.renameStallIq;
        }
    }

    // Physical destination register.
    if (inst.dstCls != DecodedInst::noDst) {
        RegFreeList &fl = freeLists_[inst.dstCls];
        Cycle regReady = fl.allocate(rn);
        if (regReady > rn) {
            rn = regReady;
            ++stats_.renameStallRegs;
        }
    }

    rn = renameGate_.pass(rn);

    // ---- operand readiness ----
    Cycle ready = rn + 1;
    for (unsigned s = 0; s < inst.nSrcs; ++s)
        ready = std::max(ready, regReady_[inst.srcReg[s]]);
    if (inst.has(DecodedInst::kReadsDst))
        ready = std::max(ready, regReady_[inst.dstReg]);

    // ---- issue and execute ----
    Cycle done;
    Cycle issue = ready;
    switch (static_cast<FuType>(inst.fu)) {
      case FuType::IntAlu:
        issue = intPool_.acquire(ready);
        done = issue + inst.latency;
        break;
      case FuType::IntMul:
        issue = intPool_.acquire(ready, inst.mulOcc);
        done = issue + inst.latency;
        break;
      case FuType::Fp:
        issue = fpPool_.acquire(ready);
        done = issue + inst.latency;
        break;
      case FuType::Simd: {
        // Vector instructions stream vl rows through lanesPerFu lanes.
        Cycle occ = 1;
        if (inst.vl > 0) {
            if (inst.transp)
                occ = inst.vl; // lane-exchange network
            else if (inst.vl <= 16)
                occ = lanesOcc_[inst.vl];
            else
                occ = (inst.vl + params_.lanesPerFu - 1) / params_.lanesPerFu;
        }
        issue = simdIssuePool_.acquire(ready);
        issue = simdPool_.acquire(issue, occ);
        done = issue + occ - 1 + inst.latency;
        break;
      }
      case FuType::Mem: {
        issue = ready;
        if (inst.has(DecodedInst::kLoad)) {
            // Wait for older overlapping stores still in flight.
            issue = disambiguate(inst.lo, inst.hi, issue);
        }
        bool isWrite = inst.has(DecodedInst::kStore);
        if (inst.has(DecodedInst::kVecMem)) {
            done = mem_->vectorAccess(inst.addr, inst.rowBytes, inst.stride,
                                      inst.rows, isWrite, issue);
        } else {
            done = mem_->scalarAccess(inst.addr, inst.rowBytes, isWrite,
                                      issue);
        }
        if (isWrite)
            pushStore(inst.lo, inst.hi, done);
        ++stats_.memOps;
        break;
      }
      case FuType::None:
        issue = rn + 1;
        done = issue;
        break;
      default:
        panic("unknown FU type");
    }

    if (takesIq)
        iq_.insert(issue);

    // ---- writeback ----
    if (inst.dstCls != DecodedInst::noDst)
        regReady_[inst.dstReg] = done;

    // ---- branch resolution ----
    if (inst.has(DecodedInst::kBranch)) {
        ++stats_.branches;
        bool correct = inst.has(DecodedInst::kCondBr)
                           ? bpred_.predict(inst.staticId,
                                            inst.has(DecodedInst::kTaken))
                           : true; // J/CALL/RET: target known (RAS)
        if (!correct) {
            ++stats_.mispredicts;
            fetchRedirect_ =
                std::max(fetchRedirect_, done + params_.mispredictPenalty);
        }
    }

    // ---- commit (in order) ----
    Cycle cc = std::max(done + 1, lastCommit_);
    cc = commitGate_.pass(cc);

    // Cycle attribution: the interval (lastCommit_, cc] belongs to the
    // region of the committing instruction.
    Cycle delta = cc > lastCommit_ ? cc - lastCommit_ : 0;
    if (inst.region != 0)
        stats_.vectorCycles += delta;
    else
        stats_.scalarCycles += delta;
    lastCommit_ = cc;

    // Free the previous mapping of the destination's logical register.
    if (inst.dstCls != DecodedInst::noDst)
        freeLists_[inst.dstCls].release(cc);

    robRing_[robPos_] = cc;
    if (++robPos_ == robRing_.size())
        robPos_ = 0;

    ++stats_.instructions;
    ++stats_.instByClass[inst.clsIdx];
}

RunStats
SimContext::finish()
{
    stats_.cycles = lastCommit_;
    return stats_;
}

void
runBatch(const std::vector<InstRecord> &trace,
         std::span<SimContext *const> ctxs)
{
    for (SimContext *ctx : ctxs) {
        vmmx_assert(ctx != nullptr, "null context in batch");
        ctx->reset();
    }
    if (ctxs.empty())
        return;

    if (ctxs.size() == 1) {
        // Single configuration: fuse decode and step so no block buffer
        // is materialized (this is the runTrace / OoOCore::run path).
        SimContext &ctx = *ctxs[0];
        for (const InstRecord &inst : trace)
            ctx.step(decodeInst(inst));
        return;
    }

    // Batched: decode each block once, then advance every context
    // through it record-major in SoA form -- one DecodedInst drives
    // all configurations as host-SIMD lanes (sim/simd_step.hh), with
    // the kernel width picked once per process by the cpuid dispatch.
    // The step order per context is unchanged, so results stay
    // bit-identical to the serial fused path above.
    SimBatch batch(ctxs);
    simd::StepFn step = simd::stepFn(simd::activePath());
    std::vector<DecodedInst> block(std::min(decodeBlock, trace.size()));
    for (size_t base = 0; base < trace.size(); base += decodeBlock) {
        size_t n = std::min(decodeBlock, trace.size() - base);
        for (size_t i = 0; i < n; ++i)
            block[i] = decodeInst(trace[base + i]);
        step(batch, block.data(), n);
    }
    batch.finish();
}

void
runBatch(const DecodedStream &stream, std::span<SimContext *const> ctxs)
{
    for (SimContext *ctx : ctxs) {
        vmmx_assert(ctx != nullptr, "null context in batch");
        ctx->reset();
    }
    if (ctxs.empty())
        return;

    const std::vector<DecodedInst> &insts = stream.insts;
    if (ctxs.size() == 1) {
        SimContext &ctx = *ctxs[0];
        for (const DecodedInst &inst : insts)
            ctx.step(inst);
        return;
    }

    // Pre-decoded stream: one SoA pass over the whole stream.  The
    // record-major kernel touches each record exactly once, so the
    // block windowing of the decoding overload is unnecessary; the
    // per-context step order is identical record for record.
    SimBatch batch(ctxs);
    simd::stepFn(simd::activePath())(batch, insts.data(), insts.size());
    batch.finish();
}

} // namespace vmmx
