#include "sim/bpred.hh"

#include "common/logging.hh"

namespace vmmx
{

BranchPredictor::BranchPredictor(unsigned entries)
{
    vmmx_assert(entries && (entries & (entries - 1)) == 0,
                "predictor entries must be a power of two");
    table_.assign(entries, 2); // weakly taken
    mask_ = entries - 1;
}

bool
BranchPredictor::predict(u32 staticId, bool taken)
{
    ++lookups_;
    // Knuth multiplicative hash spreads the dense site ids.
    u32 pc = staticId * 2654435761u;
    u32 idx = (pc ^ history_) & mask_;
    u8 &ctr = table_[idx];
    bool pred = ctr >= 2;

    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;

    history_ = ((history_ << 1) | u32(taken)) & mask_;

    bool correct = pred == taken;
    if (!correct)
        ++mispredicts_;
    return correct;
}

void
BranchPredictor::reset()
{
    for (auto &c : table_)
        c = 2;
    history_ = 0;
    lookups_ = mispredicts_ = 0;
}

} // namespace vmmx
