/**
 * @file
 * Runtime selection of the host-SIMD batch-stepping kernel.
 *
 * The SoA batch stepper (sim/sim_batch.hh) is one templated kernel
 * instantiated at several host vector widths: a scalar reference (one
 * configuration per "lane"), SSE2 (2 lanes), AVX2 (4) and AVX-512 (8).
 * Each instantiation lives in its own translation unit compiled with
 * the matching -m flags, so the library as a whole stays runnable on
 * any x86-64 (and non-x86) host: nothing outside those files emits
 * wide instructions.
 *
 * Which kernel actually runs is decided once per process: the cpuid
 * probe (the classic ax_ext capability check -- feature bit plus
 * OSXSAVE/xgetbv state-enable for the wide register files) yields the
 * supported set, the build yields the compiled set, and the widest
 * path in both wins.  `VMMX_SIMD` / `--simd` can pin any compiled+
 * supported path instead; asking for a path the host cannot execute is
 * a hard error, because silently falling back would mislabel every
 * benchmark number recorded downstream.
 *
 * All kernels are bit-identical by construction -- the timing model is
 * pure u64 arithmetic with no lane interaction -- and the randomized
 * grid tests assert it against the serial fused path for every
 * compiled path on every run.
 */

#ifndef VMMX_SIM_SIMD_DISPATCH_HH
#define VMMX_SIM_SIMD_DISPATCH_HH

#include <cstddef>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace vmmx
{

struct SimBatch;
struct DecodedInst;

namespace simd
{

/** The batch-stepping kernels, narrowest first.  Ordinals are the
 *  bit positions of the compiled/supported masks. */
enum class Path : u8
{
    Scalar = 0, ///< SoA reference kernel, one config per step
    Sse2 = 1,   ///< 2 configs per vector op
    Avx2 = 2,   ///< 4 configs per vector op
    Avx512 = 3, ///< 8 configs per vector op
};

constexpr unsigned numPaths = 4;

/** Canonical lower-case name ("scalar", "sse2", "avx2", "avx512"). */
const char *pathName(Path p);

/** Host-SIMD lanes (configs advanced per vector op) of @p p. */
unsigned pathLanes(Path p);

/**
 * Parse a path name or "auto".  @return false on junk; on success
 * either @p isAuto is set (text was "auto") or @p p holds the path.
 */
bool parsePath(std::string_view text, Path &p, bool &isAuto);

/** Bitmask of paths this binary was built with (bit = ordinal).
 *  Scalar is always compiled. */
u32 compiledMask();

/** Bitmask of paths the host CPU can execute, from cpuid (feature
 *  bits) plus xgetbv (OS enabled the YMM/ZMM state).  Scalar is
 *  always supported. */
u32 supportedMask();

/** Widest path that is both compiled and supported. */
Path bestPath();

/**
 * The path runBatch() uses for batched (>= 2 config) groups.  Resolved
 * once on first use: `VMMX_SIMD` if set (junk warns and falls back to
 * auto, per the env policy; a real path name that is unsupported or
 * not compiled in is fatal), otherwise bestPath().
 */
Path activePath();

/**
 * Pin the active path explicitly (the --simd flags).  @return an empty
 * string on success, else a diagnostic naming the path and why it was
 * rejected (not compiled in / host cpuid lacks it); the active path is
 * unchanged on failure.
 */
std::string setActivePath(Path p);

/** Reset the pin back to auto-selection (bestPath()). */
void setActivePathAuto();

/** The path a batch of @p batchWidth configurations runs on: width-1
 *  batches take the fused serial step (always scalar), wider batches
 *  take activePath().  This is what telemetry stamps per unit. */
Path pathFor(size_t batchWidth);

/** Signature shared by every kernel instantiation. */
using StepFn = void (*)(SimBatch &, const DecodedInst *, size_t);

/** Kernel entry for @p p; panics if the path was not compiled in. */
StepFn stepFn(Path p);

// Kernel entry points, one per translation unit.  Only the ones the
// build compiled (VMMX_KERNEL_*) exist; stepFn() guards access.
void stepBlockScalar(SimBatch &b, const DecodedInst *insts, size_t n);
#ifdef VMMX_KERNEL_SSE2
void stepBlockSse2(SimBatch &b, const DecodedInst *insts, size_t n);
#endif
#ifdef VMMX_KERNEL_AVX2
void stepBlockAvx2(SimBatch &b, const DecodedInst *insts, size_t n);
#endif
#ifdef VMMX_KERNEL_AVX512
void stepBlockAvx512(SimBatch &b, const DecodedInst *insts, size_t n);
#endif

} // namespace simd

} // namespace vmmx

#endif // VMMX_SIM_SIMD_DISPATCH_HH
