#include "sim/params.hh"

#include "common/logging.hh"

namespace vmmx
{

CoreParams
CoreParams::forConfig(SimdKind kind, unsigned way, const Config &cfg)
{
    if (way != 2 && way != 4 && way != 8)
        fatal("unsupported superscalar width %u (want 2, 4 or 8)", way);

    unsigned idx = way == 2 ? 0 : way == 4 ? 1 : 2;
    bool matrix = isMatrix(kind);

    CoreParams p;
    p.kind = kind;
    p.way = way;
    p.intFus = way;
    p.fpFus = way / 2 ? way / 2 : 1;

    // Table III.
    static const unsigned mmxPhys[3] = {40, 64, 96};
    static const unsigned vmmxPhys[3] = {20, 36, 64};
    static const unsigned vmmxIssue[3] = {1, 2, 3};
    static const unsigned mmxPorts[3] = {1, 2, 4};
    static const unsigned vmmxPorts[3] = {1, 1, 2};

    if (matrix) {
        p.simdIssue = vmmxIssue[idx];
        p.simdFus = vmmxIssue[idx];
        p.lanesPerFu = 4;
        p.physSimd = vmmxPhys[idx];
        p.logicalSimd = 16;
        p.memPorts = vmmxPorts[idx];
        p.physAcc = 8;
        p.logicalAcc = 4;
    } else {
        p.simdIssue = way;
        p.simdFus = way;
        p.lanesPerFu = 1;
        p.physSimd = mmxPhys[idx];
        p.logicalSimd = 32;
        p.memPorts = mmxPorts[idx];
        // The 1-D flavours have no architected accumulators; keep a
        // minimal pool so the rename model stays uniform.
        p.physAcc = 2;
        p.logicalAcc = 1;
    }

    // Scalar core scaling (R10000-like; not specified in Table III).
    p.physInt = mmxPhys[idx];
    p.physFp = 40 + 16 * idx;
    p.robSize = 16u * way;
    p.iqSize = 8u * way;

    // Overrides for ablations and tests.
    p.robSize = unsigned(cfg.getUint("core.rob", p.robSize));
    p.iqSize = unsigned(cfg.getUint("core.iq", p.iqSize));
    p.frontDepth = unsigned(cfg.getUint("core.front_depth", p.frontDepth));
    p.mispredictPenalty =
        unsigned(cfg.getUint("core.mispredict", p.mispredictPenalty));
    p.bpredEntries = unsigned(cfg.getUint("core.bpred", p.bpredEntries));
    p.lanesPerFu = unsigned(cfg.getUint("core.lanes", p.lanesPerFu));
    p.simdFus = unsigned(cfg.getUint("core.simd_fus", p.simdFus));
    p.simdIssue = unsigned(cfg.getUint("core.simd_issue", p.simdIssue));
    p.physSimd = unsigned(cfg.getUint("core.phys_simd", p.physSimd));
    p.storeWindow = unsigned(cfg.getUint("core.store_window",
                                         p.storeWindow));

    if (p.physInt <= p.logicalInt || p.physSimd <= p.logicalSimd)
        fatal("physical register file must exceed the logical one");
    return p;
}

} // namespace vmmx
