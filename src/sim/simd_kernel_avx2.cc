/** AVX2 instantiation of the batched step kernel: 4 configurations
 *  per vector op.  Compiled with -mavx2 (see CMakeLists.txt); empty
 *  unless the build defines VMMX_KERNEL_AVX2. */

#ifdef VMMX_KERNEL_AVX2

#include "sim/simd_dispatch.hh"
#include "sim/simd_step.hh"

namespace vmmx::simd
{

void
stepBlockAvx2(SimBatch &b, const DecodedInst *insts, size_t n)
{
    stepBlockT<Avx2Ops>(b, insts, n);
}

} // namespace vmmx::simd

#endif // VMMX_KERNEL_AVX2
