/** AVX-512F instantiation of the batched step kernel: 8 configurations
 *  per vector op, native unsigned 64-bit compares/maxes and predicate
 *  masks.  Compiled with -mavx512f (see CMakeLists.txt); empty unless
 *  the build defines VMMX_KERNEL_AVX512. */

#ifdef VMMX_KERNEL_AVX512

#include "sim/simd_dispatch.hh"
#include "sim/simd_step.hh"

namespace vmmx::simd
{

void
stepBlockAvx512(SimBatch &b, const DecodedInst *insts, size_t n)
{
    stepBlockT<Avx512Ops>(b, insts, n);
}

} // namespace vmmx::simd

#endif // VMMX_KERNEL_AVX512
