/**
 * @file
 * Core (pipeline) parameters -- paper Table III.
 *
 * The baseline is a MIPS R10000-like out-of-order superscalar scaled to
 * 2/4/8-way.  The MMX flavours add `way` SIMD functional units fed by a
 * centralized SIMD register file; the VMMX flavours add 1/2/3 vector
 * units of 4 lanes each fed by a lane-distributed matrix register file.
 */

#ifndef VMMX_SIM_PARAMS_HH
#define VMMX_SIM_PARAMS_HH

#include "common/config.hh"
#include "isa/simd_kind.hh"

namespace vmmx
{

struct CoreParams
{
    SimdKind kind = SimdKind::MMX64;
    unsigned way = 2;          ///< fetch = decode = graduate width

    unsigned intFus = 2;       ///< integer ALUs (Table III)
    unsigned fpFus = 1;        ///< floating-point units
    unsigned simdFus = 2;      ///< SIMD/vector execution units
    unsigned lanesPerFu = 1;   ///< 4 for the matrix flavours
    unsigned simdIssue = 2;    ///< SIMD instructions issued per cycle
    unsigned memPorts = 1;     ///< scalar L1 ports (= Mem FUs)

    unsigned physInt = 40;
    unsigned physFp = 32;
    unsigned physSimd = 40;    ///< Table III "Physical SIMD registers"
    unsigned physAcc = 8;      ///< packed accumulators (VMMX only)
    unsigned logicalInt = 32;
    unsigned logicalFp = 32;
    unsigned logicalSimd = 32; ///< 32 for MMX, 16 for VMMX
    unsigned logicalAcc = 4;

    unsigned robSize = 32;
    unsigned iqSize = 16;

    unsigned frontDepth = 3;          ///< fetch-to-rename stages
    unsigned mispredictPenalty = 8;   ///< redirect cycles
    unsigned bpredEntries = 4096;     ///< gshare table entries
    unsigned storeWindow = 64;        ///< disambiguation window

    /**
     * Table III configuration for @p kind at @p way, with optional
     * overrides (keys: core.rob, core.iq, core.mispredict, ...).
     */
    static CoreParams forConfig(SimdKind kind, unsigned way,
                                const Config &overrides = {});
};

} // namespace vmmx

#endif // VMMX_SIM_PARAMS_HH
